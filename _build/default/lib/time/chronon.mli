(** Chronons: the prototype's representation of time.

    A chronon is "a 32 bit integer with a resolution of one second" (paper,
    section 4), counted from the epoch 1970-01-01 00:00:00 UTC.  Two
    distinguished values exist: {!beginning} (the earliest representable
    instant) and {!forever}, used as the transaction-stop / valid-to value of
    current tuple versions.

    Input accepts "various formats of date and time" and output "resolutions
    ranging from a second to a year are selectable", as in the paper. *)

type t
(** An instant in time.  Totally ordered. *)

val of_seconds : int -> t
(** [of_seconds s] is the instant [s] seconds after the epoch.  Raises
    [Invalid_argument] outside the signed 32-bit range. *)

val to_seconds : t -> int

val beginning : t
(** The earliest representable instant (-2^31 seconds). *)

val forever : t
(** The latest representable instant (2^31 - 1 seconds); means "still
    current" when stored in a stop attribute. *)

val is_forever : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val succ : t -> t
(** The next chronon; saturates at {!forever}. *)

val add_seconds : t -> int -> t
(** Saturating addition. *)

type civil = {
  year : int;
  month : int;  (** 1..12 *)
  day : int;  (** 1..31 *)
  hour : int;
  minute : int;
  second : int;
}

val to_civil : t -> civil
val of_civil : civil -> t
(** Raises [Invalid_argument] on out-of-range fields or if the result does
    not fit in 32 bits. *)

type resolution = Second | Minute | Hour | Day | Month | Year

val resolution_of_string : string -> resolution option
val truncate : resolution -> t -> t
(** [truncate res t] is [t] rounded down to the start of its second, minute,
    ..., or year. *)

val to_string : ?resolution:resolution -> t -> string
(** Renders as e.g. ["1980-01-01 08:00:00"]; coarser resolutions drop
    fields (["1980-01-01 08:00"], ["1980-01-01"], ["1980"]).  The
    distinguished values render as ["beginning"] and ["forever"]. *)

val pp : t Fmt.t

val parse : ?now:t -> string -> (t, string) result
(** Accepts, case-insensitively:
    - ["now"] (requires [?now]; defaults to the epoch otherwise an error),
      ["forever"], ["beginning"];
    - ["HH:MM M/D/YY"] and ["HH:MM:SS M/D/YYYY"] (the paper's examples,
      e.g. ["08:00 1/1/80"]);
    - ["M/D/YY"] and ["M/D/YYYY"];
    - a bare year ["1981"];
    - ISO-style ["YYYY-MM-DD"], ["YYYY-MM-DD HH:MM"], ["YYYY-MM-DD HH:MM:SS"].

    Two-digit years 70..99 are 19xx and 00..69 are 20xx. *)

val parse_exn : ?now:t -> string -> t
(** Like {!parse} but raises [Invalid_argument]. *)
