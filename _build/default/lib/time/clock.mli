(** Logical session clocks.

    The prototype stamps every modification with the transaction time "now".
    To make experiments reproducible, "now" comes from an explicit logical
    clock that the application (or the benchmark driver) advances, rather
    than from the wall clock.  A clock never moves backwards. *)

type t

val create : ?start:Chronon.t -> unit -> t
(** A new clock; [start] defaults to 1980-01-01 00:00:00. *)

val now : t -> Chronon.t

val advance : t -> int -> unit
(** [advance c s] moves the clock forward by [s] seconds ([s >= 0]).
    Raises [Invalid_argument] on negative [s]. *)

val set : t -> Chronon.t -> unit
(** Jump forward to an absolute instant.  Raises [Invalid_argument] if the
    instant is in the clock's past. *)

val tick : t -> Chronon.t
(** Advance by one second and return the new time: a convenient source of
    strictly increasing transaction times. *)
