lib/time/clock.ml: Chronon
