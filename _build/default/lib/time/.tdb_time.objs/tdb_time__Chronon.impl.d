lib/time/chronon.ml: Fmt Int List Printf String
