lib/time/period.mli: Chronon Fmt
