lib/time/chronon.mli: Fmt
