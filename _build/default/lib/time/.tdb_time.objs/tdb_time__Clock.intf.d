lib/time/clock.mli: Chronon
