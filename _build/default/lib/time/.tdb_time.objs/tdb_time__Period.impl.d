lib/time/period.ml: Chronon Fmt Printf
