(** Periods: anchored intervals of chronons, and TQuel's temporal operators.

    A period is a half-open interval [\[from_, to_)] except that an {e event}
    is represented as the degenerate period [\[at, at\]] ([from_ = to_]); an
    event at [t] is considered to overlap any interval containing [t].  This
    mirrors TQuel, where both tuple variables (intervals) and time constants
    (events) appear as operands of [overlap], [extend] and [precede]. *)

type t = private { from_ : Chronon.t; to_ : Chronon.t }

val make : Chronon.t -> Chronon.t -> t
(** [make from_ to_].  Raises [Invalid_argument] if [to_ < from_]. *)

val at : Chronon.t -> t
(** The event period at a single instant. *)

val from_ : t -> Chronon.t
val to_ : t -> Chronon.t
val is_event : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val contains : t -> Chronon.t -> bool
(** [contains p c] is true iff [c] falls within [p]; for an event period
    this means [c] equals its instant. *)

val overlaps : t -> t -> bool
(** True iff the two periods share at least one chronon (the [when]-clause
    predicate [a overlap b]). *)

val overlap : t -> t -> t option
(** The intersection period, when {!overlaps} holds (the [valid]-clause
    expression [a overlap b]). *)

val extend : t -> t -> t
(** [extend a b] is the period from the start of [a] to the end of [b],
    widened to cover both ([a extend b] in TQuel). *)

val precede : t -> t -> bool
(** [precede a b] is true iff [a] ends no later than [b] begins. *)

val start_of : t -> t
(** The event at the period's first chronon. *)

val end_of : t -> t
(** The event at the period's last chronon. *)

val pp : t Fmt.t
val to_string : t -> string
