type t = { from_ : Chronon.t; to_ : Chronon.t }

let make from_ to_ =
  if Chronon.compare to_ from_ < 0 then
    invalid_arg "Period.make: to_ earlier than from_"
  else { from_; to_ }

let at c = { from_ = c; to_ = c }
let from_ p = p.from_
let to_ p = p.to_
let is_event p = Chronon.equal p.from_ p.to_

let equal a b = Chronon.equal a.from_ b.from_ && Chronon.equal a.to_ b.to_

let compare a b =
  match Chronon.compare a.from_ b.from_ with
  | 0 -> Chronon.compare a.to_ b.to_
  | c -> c

let contains p c =
  if is_event p then Chronon.equal p.from_ c
  else Chronon.compare p.from_ c <= 0 && Chronon.compare c p.to_ < 0

(* Treating an event [t, t] as the single chronon t and an interval as
   [from, to): they overlap iff they share a chronon.  When the candidate
   instant is the boundary (lo = hi), it counts only if both periods
   actually contain it - so [0,10) and [10,20) are disjoint, but the event
   at 10 overlaps [10,20). *)
let overlaps a b =
  let lo = Chronon.max a.from_ b.from_ in
  let hi = Chronon.min a.to_ b.to_ in
  match Chronon.compare lo hi with
  | c when c < 0 -> true
  | 0 -> contains a lo && contains b lo
  | _ -> false

let overlap a b =
  if not (overlaps a b) then None
  else
    let lo = Chronon.max a.from_ b.from_ in
    let hi = Chronon.min a.to_ b.to_ in
    Some (make lo hi)

let extend a b =
  let lo = Chronon.min a.from_ b.from_ in
  let hi = Chronon.max a.to_ b.to_ in
  let hi = Chronon.max hi lo in
  make lo hi

let precede a b = Chronon.compare a.to_ b.from_ <= 0

let start_of p = at p.from_

let end_of p =
  if is_event p then p
  else
    (* last chronon of the half-open interval *)
    at (Chronon.add_seconds p.to_ (-1))

let to_string p =
  if is_event p then Printf.sprintf "at %s" (Chronon.to_string p.from_)
  else
    Printf.sprintf "[%s, %s)" (Chronon.to_string p.from_)
      (Chronon.to_string p.to_)

let pp ppf p = Fmt.string ppf (to_string p)
