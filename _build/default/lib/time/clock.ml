type t = { mutable current : Chronon.t }

let default_start = Chronon.of_civil
    { year = 1980; month = 1; day = 1; hour = 0; minute = 0; second = 0 }

let create ?(start = default_start) () = { current = start }
let now c = c.current

let advance c s =
  if s < 0 then invalid_arg "Clock.advance: negative amount";
  c.current <- Chronon.add_seconds c.current s

let set c t =
  if Chronon.compare t c.current < 0 then
    invalid_arg "Clock.set: cannot move a clock backwards";
  c.current <- t

let tick c =
  advance c 1;
  c.current
