type t = int

let min_int32 = -0x8000_0000
let max_int32 = 0x7FFF_FFFF

let of_seconds s =
  if s < min_int32 || s > max_int32 then
    invalid_arg (Printf.sprintf "Chronon.of_seconds: %d outside 32-bit range" s)
  else s

let to_seconds t = t
let beginning = min_int32
let forever = max_int32
let is_forever t = t = forever
let compare = Int.compare
let equal = Int.equal
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let succ t = if t >= forever then forever else t + 1

let add_seconds t s =
  let r = t + s in
  if r < min_int32 then min_int32 else if r > max_int32 then max_int32 else r

type civil = {
  year : int;
  month : int;
  day : int;
  hour : int;
  minute : int;
  second : int;
}

(* Civil-date conversion after Howard Hinnant's algorithms: a proleptic
   Gregorian calendar addressed by days since 1970-01-01. *)

let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let days_in_month year month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 ->
      let leap = (year mod 4 = 0 && year mod 100 <> 0) || year mod 400 = 0 in
      if leap then 29 else 28
  | _ -> invalid_arg "Chronon.days_in_month"

let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let floor_mod a b = a - (floor_div a b * b)

let to_civil t =
  let days = floor_div t 86400 in
  let secs = floor_mod t 86400 in
  let year, month, day = civil_from_days days in
  {
    year;
    month;
    day;
    hour = secs / 3600;
    minute = secs / 60 mod 60;
    second = secs mod 60;
  }

let of_civil { year; month; day; hour; minute; second } =
  if month < 1 || month > 12 then invalid_arg "Chronon.of_civil: month";
  if day < 1 || day > days_in_month year month then
    invalid_arg "Chronon.of_civil: day";
  if hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0
     || second > 59
  then invalid_arg "Chronon.of_civil: time of day";
  let days = days_from_civil ~year ~month ~day in
  let s = (days * 86400) + (hour * 3600) + (minute * 60) + second in
  of_seconds s

type resolution = Second | Minute | Hour | Day | Month | Year

let resolution_of_string s =
  match String.lowercase_ascii s with
  | "second" -> Some Second
  | "minute" -> Some Minute
  | "hour" -> Some Hour
  | "day" -> Some Day
  | "month" -> Some Month
  | "year" -> Some Year
  | _ -> None

let truncate res t =
  if t = beginning || t = forever then t
  else
    let c = to_civil t in
    let c =
      match res with
      | Second -> c
      | Minute -> { c with second = 0 }
      | Hour -> { c with second = 0; minute = 0 }
      | Day -> { c with second = 0; minute = 0; hour = 0 }
      | Month -> { c with second = 0; minute = 0; hour = 0; day = 1 }
      | Year -> { c with second = 0; minute = 0; hour = 0; day = 1; month = 1 }
    in
    of_civil c

let to_string ?(resolution = Second) t =
  if t = beginning then "beginning"
  else if t = forever then "forever"
  else
    let c = to_civil t in
    match resolution with
    | Year -> Printf.sprintf "%04d" c.year
    | Month -> Printf.sprintf "%04d-%02d" c.year c.month
    | Day -> Printf.sprintf "%04d-%02d-%02d" c.year c.month c.day
    | Hour -> Printf.sprintf "%04d-%02d-%02d %02d" c.year c.month c.day c.hour
    | Minute ->
        Printf.sprintf "%04d-%02d-%02d %02d:%02d" c.year c.month c.day c.hour
          c.minute
    | Second ->
        Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" c.year c.month c.day
          c.hour c.minute c.second

let pp ppf t = Fmt.string ppf (to_string t)

(* --- parsing --- *)

let is_digit c = c >= '0' && c <= '9'
let all_digits s = s <> "" && String.for_all is_digit s

let expand_year y = if y >= 100 then y else if y >= 70 then 1900 + y else 2000 + y

let split_on c s = String.split_on_char c s |> List.map String.trim

let parse_time_of_day s =
  (* "HH:MM" or "HH:MM:SS" *)
  match split_on ':' s with
  | [ h; m ] when all_digits h && all_digits m ->
      Some (int_of_string h, int_of_string m, 0)
  | [ h; m; sec ] when all_digits h && all_digits m && all_digits sec ->
      Some (int_of_string h, int_of_string m, int_of_string sec)
  | _ -> None

let parse_slash_date s =
  (* "M/D/YY" or "M/D/YYYY" *)
  match split_on '/' s with
  | [ m; d; y ] when all_digits m && all_digits d && all_digits y ->
      Some (expand_year (int_of_string y), int_of_string m, int_of_string d)
  | _ -> None

let parse_iso_date s =
  (* "YYYY-MM-DD" *)
  match split_on '-' s with
  | [ y; m; d ]
    when all_digits y && String.length y = 4 && all_digits m && all_digits d ->
      Some (int_of_string y, int_of_string m, int_of_string d)
  | _ -> None

let build ~date:(year, month, day) ~time:(hour, minute, second) =
  match of_civil { year; month; day; hour; minute; second } with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg

let parse ?now s =
  let s = String.trim s in
  match String.lowercase_ascii s with
  | "forever" -> Ok forever
  | "beginning" -> Ok beginning
  | "now" -> (
      match now with
      | Some t -> Ok t
      | None -> Error "\"now\" is not available in this context")
  | _ -> (
      if all_digits s && String.length s = 4 then
        (* bare year, e.g. "1981" *)
        build ~date:(int_of_string s, 1, 1) ~time:(0, 0, 0)
      else
        (* Try "<time> <date>", "<date> <time>", "<date>". *)
        let words =
          String.split_on_char ' ' s |> List.filter (fun w -> w <> "")
        in
        let date_of w =
          match parse_slash_date w with
          | Some d -> Some d
          | None -> parse_iso_date w
        in
        match words with
        | [ w ] -> (
            match date_of w with
            | Some d -> build ~date:d ~time:(0, 0, 0)
            | None -> Error (Printf.sprintf "unrecognized time literal %S" s))
        | [ w1; w2 ] -> (
            match (parse_time_of_day w1, date_of w2) with
            | Some tod, Some d -> build ~date:d ~time:tod
            | _ -> (
                match (date_of w1, parse_time_of_day w2) with
                | Some d, Some tod -> build ~date:d ~time:tod
                | _ -> Error (Printf.sprintf "unrecognized time literal %S" s)))
        | _ -> Error (Printf.sprintf "unrecognized time literal %S" s))

let parse_exn ?now s =
  match parse ?now s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Chronon.parse_exn: " ^ msg)
