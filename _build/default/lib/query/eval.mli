(** Evaluation of TQuel expressions and predicates over bound tuples. *)

type binding = {
  var : string;
  schema : Tdb_relation.Schema.t;
  tuple : Tdb_relation.Tuple.t;
}

type context = {
  bindings : binding list;
  now : Tdb_time.Chronon.t;  (** the session clock's reading, for ["now"] *)
}

exception Eval_error of string
(** Raised on conditions the semantic checker cannot rule out statically
    (e.g. division by zero). *)

val expr : context -> Tdb_tquel.Ast.expr -> Tdb_relation.Value.t
(** Raises {!Eval_error} on an [Eagg] node: aggregates are folded by the
    executor, not evaluated per tuple. *)

val pred : context -> Tdb_tquel.Ast.pred -> bool

val apply_binop :
  Tdb_tquel.Ast.binop -> Tdb_relation.Value.t -> Tdb_relation.Value.t ->
  Tdb_relation.Value.t
(** Arithmetic on already-computed values (used when folding aggregate
    results back into their enclosing expressions). *)

val negate : Tdb_relation.Value.t -> Tdb_relation.Value.t

val compare_values :
  now:Tdb_time.Chronon.t ->
  Tdb_relation.Value.t ->
  Tdb_relation.Value.t ->
  int
(** Like {!Tdb_relation.Value.compare} but a string compared against a time
    is parsed as a time constant. *)

val tempexpr : context -> Tdb_tquel.Ast.tempexpr -> Tdb_time.Period.t option
(** The period denoted by a temporal expression, or [None] when it is
    undefined ([overlap] of disjoint periods).  A tuple variable denotes its
    tuple's valid period.  A temporal predicate with an undefined operand is
    false. *)

val temppred : context -> Tdb_tquel.Ast.temppred -> bool

val exclusive_end : context -> Tdb_tquel.Ast.tempexpr -> Tdb_time.Chronon.t option
(** The exclusive upper bound denoted by the [to]-expression of a valid
    clause: [valid from a to b] builds the interval [\[a, bound)].  For
    [end of e] the bound lies just after [e]'s last chronon; for any other
    expression it is the expression's own endpoint (so [to "1980-06-01"]
    ends exactly at midnight, exclusive). *)

val valid_of_tuple : binding -> Tdb_time.Period.t
(** The valid period of a bound tuple (its whole lifetime for relations
    without valid time, so joins against static relations stay sane). *)
