module Value = Tdb_relation.Value
module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
open Tdb_tquel.Ast

type binding = { var : string; schema : Schema.t; tuple : Tuple.t }
type context = { bindings : binding list; now : Chronon.t }

exception Eval_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let find_binding ctx var =
  let rec go = function
    | [] -> errf "tuple variable %S is not bound" var
    | b :: rest -> if b.var = var then b else go rest
  in
  go ctx.bindings

let attr_value ctx var attr =
  let b = find_binding ctx var in
  match Schema.index_of b.schema attr with
  | Some i -> b.tuple.(i)
  | None -> errf "relation of %s has no attribute %S" var attr

let as_number = function
  | Value.Int n -> float_of_int n
  | Value.Float f -> f
  | v -> errf "expected a number, got %s" (Value.to_string v)

let arith op a b =
  match (op, a, b) with
  | Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Div, Value.Int _, Value.Int 0 -> errf "division by zero"
  | Div, Value.Int x, Value.Int y -> Value.Int (x / y)
  | Mod, Value.Int _, Value.Int 0 -> errf "mod by zero"
  | Mod, Value.Int x, Value.Int y -> Value.Int (x mod y)
  | Mod, _, _ -> errf "mod needs integer operands"
  | _ ->
      let x = as_number a and y = as_number b in
      Value.Float
        (match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> if y = 0. then errf "division by zero" else x /. y
        | Mod -> assert false)

let apply_binop = arith

let negate = function
  | Value.Int n -> Value.Int (-n)
  | Value.Float f -> Value.Float (-.f)
  | v -> errf "cannot negate %s" (Value.to_string v)

let rec expr ctx = function
  | Eattr (v, a) -> attr_value ctx v a
  | Eint n -> Value.Int n
  | Efloat f -> Value.Float f
  | Estring s -> Value.Str s
  | Euminus e -> negate (expr ctx e)
  | Ebinop (op, a, b) -> arith op (expr ctx a) (expr ctx b)
  | Eagg (agg, _, _) ->
      (* Aggregates are folded by the executor, never evaluated per tuple. *)
      errf "aggregate %s outside an aggregate target list"
        (Tdb_tquel.Ast.aggregate_name agg)

let time_of_string ~now s =
  match Chronon.parse ~now s with
  | Ok t -> t
  | Error e -> errf "bad time constant %S: %s" s e

let compare_values ~now a b =
  match (a, b) with
  | Value.Time t, Value.Str s -> Chronon.compare t (time_of_string ~now s)
  | Value.Str s, Value.Time t -> Chronon.compare (time_of_string ~now s) t
  | _ -> Value.compare a b

let rec pred ctx = function
  | Pcompare (op, a, b) ->
      let c = compare_values ~now:ctx.now (expr ctx a) (expr ctx b) in
      (match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)
  | Wand (a, b) -> pred ctx a && pred ctx b
  | Wor (a, b) -> pred ctx a || pred ctx b
  | Wnot a -> not (pred ctx a)

let valid_of_tuple b =
  match Tuple.valid_period b.schema b.tuple with
  | Some p -> p
  | None ->
      (* A relation without valid time: its tuples are valid always, so
         temporal joins against them behave like the identity. *)
      Period.make Chronon.beginning Chronon.forever

let rec tempexpr ctx = function
  | Tvar v -> Some (valid_of_tuple (find_binding ctx v))
  | Tconst s -> Some (Period.at (time_of_string ~now:ctx.now s))
  | Toverlap (a, b) -> (
      match (tempexpr ctx a, tempexpr ctx b) with
      | Some pa, Some pb -> Period.overlap pa pb
      | _ -> None)
  | Textend (a, b) -> (
      match (tempexpr ctx a, tempexpr ctx b) with
      | Some pa, Some pb -> Some (Period.extend pa pb)
      | _ -> None)
  | Tstart_of e -> Option.map Period.start_of (tempexpr ctx e)
  | Tend_of e -> Option.map Period.end_of (tempexpr ctx e)

let exclusive_end ctx e =
  match e with
  | Tend_of inner ->
      (* "to end of e": the interval covers e's last chronon, so the
         exclusive bound is just past it. *)
      Option.map
        (fun p ->
          if Period.is_event p then Chronon.succ (Period.from_ p)
          else Period.to_ p)
        (tempexpr ctx inner)
  | _ ->
      Option.map
        (fun p -> if Period.is_event p then Period.from_ p else Period.to_ p)
        (tempexpr ctx e)

let rec temppred ctx = function
  | Poverlap (a, b) -> (
      match (tempexpr ctx a, tempexpr ctx b) with
      | Some pa, Some pb -> Period.overlaps pa pb
      | _ -> false)
  | Pprecede (a, b) -> (
      match (tempexpr ctx a, tempexpr ctx b) with
      | Some pa, Some pb -> Period.precede pa pb
      | _ -> false)
  | Pequal (a, b) -> (
      match (tempexpr ctx a, tempexpr ctx b) with
      | Some pa, Some pb -> Period.equal pa pb
      | _ -> false)
  | Pand (a, b) -> temppred ctx a && temppred ctx b
  | Por (a, b) -> temppred ctx a || temppred ctx b
  | Pnot a -> not (temppred ctx a)
