type access =
  | Seq_scan
  | Keyed_probe of Tdb_tquel.Ast.expr
  | Range_probe of Conjuncts.bound option * Conjuncts.bound option

type t =
  | Const_emit
  | Single of { var : string; access : access }
  | Tuple_substitution of {
      detached : string;
      substituted : string;
      probe_attr : string;
    }
  | Detach_both of { outer : string; inner : string }
  | Nested_scan of { outer : string; inner : string }
  | Nested_general of string list

type source_info = {
  var : string;
  key : (string * [ `Hash | `Isam ]) option;
}

let single_access source conjuncts =
  match source.key with
  | Some (attr, kind) -> (
      match Conjuncts.constant_key_probe conjuncts ~var:source.var ~attr with
      | Some e -> Keyed_probe e
      | None -> (
          (* An ISAM key admits range probes; hashing does not. *)
          match kind with
          | `Isam -> (
              match Conjuncts.range_bounds conjuncts ~var:source.var ~attr with
              | (None, None) -> Seq_scan
              | (lo, hi) -> Range_probe (lo, hi))
          | `Hash -> Seq_scan))
  | None -> Seq_scan

let has_restriction var conjuncts =
  Conjuncts.for_var var conjuncts <> []

let choose ~sources ~conjuncts =
  match sources with
  | [] -> Const_emit
  | [ s ] -> Single { var = s.var; access = single_access s conjuncts }
  | [ a; b ] -> (
      (* Prefer tuple substitution: an equi-join whose one side is a
         relation's key lets each outer tuple probe instead of scan. *)
      let keyed_side je =
        let hit (s : source_info) v attr =
          match s.key with
          | Some (key_attr, _) -> s.var = v && key_attr = attr
          | None -> false
        in
        let open Conjuncts in
        if hit a je.left_var je.left_attr || hit b je.left_var je.left_attr
        then Some (je.left_var, je.right_var, je.right_attr)
        else if
          hit a je.right_var je.right_attr || hit b je.right_var je.right_attr
        then Some (je.right_var, je.left_var, je.left_attr)
        else None
      in
      match List.find_map keyed_side (Conjuncts.join_equalities conjuncts) with
      | Some (substituted, detached, probe_attr) ->
          Tuple_substitution { detached; substituted; probe_attr }
      | None ->
          if has_restriction a.var conjuncts && has_restriction b.var conjuncts
          then Detach_both { outer = a.var; inner = b.var }
          else Nested_scan { outer = a.var; inner = b.var })
  | many -> Nested_general (List.map (fun s -> s.var) many)

let to_string = function
  | Const_emit -> "constant emit"
  | Single { var; access = Seq_scan } -> Printf.sprintf "scan(%s)" var
  | Single { var; access = Keyed_probe _ } -> Printf.sprintf "keyed(%s)" var
  | Single { var; access = Range_probe _ } -> Printf.sprintf "range(%s)" var
  | Tuple_substitution { detached; substituted; probe_attr } ->
      Printf.sprintf "detach(%s) then substitute into %s via %s.%s" detached
        substituted detached probe_attr
  | Detach_both { outer; inner } ->
      Printf.sprintf "detach(%s) join detach(%s)" outer inner
  | Nested_scan { outer; inner } ->
      Printf.sprintf "nested scan(%s, %s)" outer inner
  | Nested_general vars ->
      Printf.sprintf "nested scans(%s)" (String.concat ", " vars)
