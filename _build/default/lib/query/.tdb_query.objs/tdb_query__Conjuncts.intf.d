lib/query/conjuncts.mli: Tdb_tquel
