lib/query/executor.mli: Plan Tdb_relation Tdb_storage Tdb_time Tdb_tquel
