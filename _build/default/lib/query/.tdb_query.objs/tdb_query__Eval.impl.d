lib/query/eval.ml: Array Option Printf Tdb_relation Tdb_time Tdb_tquel
