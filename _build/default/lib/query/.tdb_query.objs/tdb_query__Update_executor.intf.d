lib/query/update_executor.mli: Executor Tdb_storage Tdb_time Tdb_tquel
