lib/query/plan.ml: Conjuncts List Printf String Tdb_tquel
