lib/query/plan.mli: Conjuncts Tdb_tquel
