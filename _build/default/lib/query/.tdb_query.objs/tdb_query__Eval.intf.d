lib/query/eval.mli: Tdb_relation Tdb_time Tdb_tquel
