lib/query/update_executor.ml: Array Conjuncts Eval Executor List Option Printf Tdb_relation Tdb_storage Tdb_time Tdb_tquel
