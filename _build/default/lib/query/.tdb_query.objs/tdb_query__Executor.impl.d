lib/query/executor.ml: Array Conjuncts Eval Hashtbl List Option Plan Printf String Tdb_relation Tdb_storage Tdb_time Tdb_tquel
