lib/query/conjuncts.ml: List Tdb_tquel
