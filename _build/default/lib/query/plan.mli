(** Query plans: the decomposition strategies of the Ingres-based prototype
    (paper, section 5.3).

    - a one-variable query uses keyed access when a constant equality on the
      relation's hash/ISAM key exists, otherwise a sequential scan;
    - a two-variable query with an equi-join landing on one relation's key
      uses {e one-variable detachment} of the other relation into a
      temporary, then {e tuple substitution} probing the keyed relation
      (Q09/Q10);
    - a two-variable query whose variables both carry selective
      single-variable restrictions is evaluated by detaching both into
      temporaries and joining those (Q12);
    - anything else is a nested sequential scan (Q11). *)

type access =
  | Seq_scan
  | Keyed_probe of Tdb_tquel.Ast.expr
      (** constant expression supplying the key *)
  | Range_probe of Conjuncts.bound option * Conjuncts.bound option
      (** ISAM only: read the data pages covering \[lo, hi\] instead of
          scanning (an extension beyond the prototype; strict bounds are
          widened to inclusive and re-filtered by the restriction) *)

type t =
  | Const_emit  (** no tuple variables at all *)
  | Single of { var : string; access : access }
  | Tuple_substitution of {
      detached : string;  (** scanned into a temporary *)
      substituted : string;  (** probed by key for each temporary tuple *)
      probe_attr : string;  (** the detached variable's attribute whose value probes *)
    }
  | Detach_both of { outer : string; inner : string }
  | Nested_scan of { outer : string; inner : string }
  | Nested_general of string list  (** 3+ variables: nested scans in order *)

type source_info = {
  var : string;
  key : (string * [ `Hash | `Isam ]) option;
      (** the relation's key attribute name, when hash/ISAM organized *)
}

val choose :
  sources:source_info list -> conjuncts:Conjuncts.conjunct list -> t
(** [sources] in order of first appearance in the query. *)

val to_string : t -> string
