(** The four kinds of databases of the paper's taxonomy (Figure 1).

    Two orthogonal criteria: support for {e historical queries} (valid time)
    and support for {e rollback} (transaction time).  A relation is created
    as one of the four kinds; historical and temporal relations additionally
    model either {e intervals} or {e events}. *)

type kind = Interval | Event
(** Whether a relation with valid time models facts holding over an interval
    or instantaneous events (paper, section 3: the [create] statement
    distinguishes the two). *)

type t =
  | Static
  | Rollback
  | Historical of kind
  | Temporal of kind

val has_valid_time : t -> bool
(** Historical and temporal relations carry valid-time attributes. *)

val has_transaction_time : t -> bool
(** Rollback and temporal relations carry transaction-time attributes. *)

val kind : t -> kind option

val implicit_attribute_count : t -> int
(** 0 for static; 2 for rollback and historical intervals; 1 for historical
    events; 4 for temporal intervals; 3 for temporal events. *)

val supports_when : t -> bool
(** The [when] clause requires valid time. *)

val supports_as_of : t -> bool
(** The [as of] clause requires transaction time. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val pp : t Fmt.t
val equal : t -> t -> bool
