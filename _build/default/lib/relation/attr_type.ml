type t = I1 | I2 | I4 | F4 | F8 | C of int | Time

let size = function
  | I1 -> 1
  | I2 -> 2
  | I4 -> 4
  | F4 -> 4
  | F8 -> 8
  | C n -> n
  | Time -> 4

let to_string = function
  | I1 -> "i1"
  | I2 -> "i2"
  | I4 -> "i4"
  | F4 -> "f4"
  | F8 -> "f8"
  | C n -> Printf.sprintf "c%d" n
  | Time -> "time"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "i1" -> Ok I1
  | "i2" -> Ok I2
  | "i4" -> Ok I4
  | "f4" -> Ok F4
  | "f8" -> Ok F8
  | "time" -> Ok Time
  | s when String.length s >= 2 && s.[0] = 'c' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 1 && n <= 255 -> Ok (C n)
      | Some n -> Error (Printf.sprintf "string width %d out of range 1..255" n)
      | None -> Error (Printf.sprintf "unknown attribute type %S" s))
  | s -> Error (Printf.sprintf "unknown attribute type %S" s)

let equal (a : t) (b : t) = a = b
let pp ppf t = Fmt.string ppf (to_string t)
let is_numeric = function I1 | I2 | I4 | F4 | F8 -> true | C _ | Time -> false
let is_string = function C _ -> true | _ -> false
