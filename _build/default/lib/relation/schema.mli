(** Relation schemas: explicit (user-declared) attributes plus the implicit
    time attributes mandated by the relation's database type.

    The prototype "adopts the scheme of augmenting each tuple with two
    transaction time attributes for a rollback and a temporal relation, and
    one or two valid time attributes for a historical and a temporal
    relation" (paper, section 4).  The stored layout is: user attributes,
    then valid-time attributes, then transaction-time attributes. *)

type attr = { name : string; ty : Attr_type.t }

type t

val create : db_type:Db_type.t -> attr list -> (t, string) result
(** Validates: at least one attribute, unique names (case-insensitive), and
    no clash with the implicit attribute names. *)

val create_exn : db_type:Db_type.t -> attr list -> t
val db_type : t -> Db_type.t

val user_attrs : t -> attr array
val all_attrs : t -> attr array
(** User attributes followed by the implicit time attributes. *)

val user_arity : t -> int
val arity : t -> int
val attr : t -> int -> attr

val index_of : t -> string -> int option
(** Case-insensitive lookup over all (user and implicit) attributes;
    underscores match spaces, so ["valid_from"] finds "valid from". *)

val tuple_size : t -> int
(** Bytes occupied by one stored tuple: the sum of all attribute sizes. *)

(** Positions of the implicit attributes, when present: *)

val valid_from_index : t -> int option
val valid_to_index : t -> int option
val valid_at_index : t -> int option
val transaction_start_index : t -> int option
val transaction_stop_index : t -> int option

val norm_name : string -> string
(** The normal form used for attribute-name comparison: trimmed,
    lower-cased, underscores as spaces. *)

val implicit_names : Db_type.t -> string list
(** The implicit attribute names for a database type, in layout order:
    a subset of ["valid from"; "valid to"; "valid at"; "transaction start";
    "transaction stop"]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
