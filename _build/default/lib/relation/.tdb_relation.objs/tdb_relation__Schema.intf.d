lib/relation/schema.mli: Attr_type Db_type Fmt
