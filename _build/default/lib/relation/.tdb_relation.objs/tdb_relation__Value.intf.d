lib/relation/value.mli: Attr_type Fmt Tdb_time
