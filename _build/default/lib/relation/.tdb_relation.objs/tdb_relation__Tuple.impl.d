lib/relation/tuple.ml: Array Attr_type Bytes Fmt List Printf Schema Tdb_time Value
