lib/relation/db_type.ml: Fmt List Printf String
