lib/relation/attr_type.ml: Fmt Printf String
