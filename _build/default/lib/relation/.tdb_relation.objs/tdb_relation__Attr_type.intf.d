lib/relation/attr_type.mli: Fmt
