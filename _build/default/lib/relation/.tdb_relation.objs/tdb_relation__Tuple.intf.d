lib/relation/tuple.mli: Fmt Schema Tdb_time Value
