lib/relation/value.ml: Attr_type Bytes Float Fmt Hashtbl Int Int32 Int64 Printf String Tdb_time
