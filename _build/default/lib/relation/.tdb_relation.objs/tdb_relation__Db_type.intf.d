lib/relation/db_type.mli: Fmt
