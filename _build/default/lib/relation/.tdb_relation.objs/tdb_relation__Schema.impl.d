lib/relation/schema.ml: Array Attr_type Db_type Fmt List Printf String
