(** Attribute types, in Ingres/Quel notation: [i1], [i2], [i4], [f4], [f8],
    [cN] (fixed-width character string of N bytes) and the prototype's
    distinct [time] type ("a 32 bit integer with a resolution of one
    second"). *)

type t =
  | I1
  | I2
  | I4
  | F4
  | F8
  | C of int  (** fixed width, 1..255 bytes *)
  | Time

val size : t -> int
(** Stored size in bytes. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val equal : t -> t -> bool
val pp : t Fmt.t

val is_numeric : t -> bool
val is_string : t -> bool
