module Chronon = Tdb_time.Chronon

type t = Int of int | Float of float | Str of string | Time of Chronon.t

let type_of = function
  | Int _ -> Attr_type.I4
  | Float _ -> Attr_type.F8
  | Str s -> Attr_type.C (max 1 (String.length s))
  | Time _ -> Attr_type.Time

let int_range = function
  | Attr_type.I1 -> Some (-128, 127)
  | Attr_type.I2 -> Some (-32768, 32767)
  | Attr_type.I4 -> Some (-0x8000_0000, 0x7FFF_FFFF)
  | _ -> None

let matches ty v =
  match (ty, v) with
  | (Attr_type.I1 | I2 | I4), Int n -> (
      match int_range ty with
      | Some (lo, hi) -> n >= lo && n <= hi
      | None -> false)
  | (Attr_type.F4 | F8), Float _ -> true
  | Attr_type.C _, Str _ -> true
  | Attr_type.Time, Time _ -> true
  | _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Time x, Time y -> Chronon.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ ->
      invalid_arg
        (Printf.sprintf "Value.compare: incompatible values %s / %s"
           (Attr_type.to_string (type_of a))
           (Attr_type.to_string (type_of b)))

let equal a b = compare a b = 0

let to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Time t -> Chronon.to_string t

let pp ppf v = Fmt.string ppf (to_string v)

let type_error ty v =
  invalid_arg
    (Printf.sprintf "Value.encode: cannot store %s into a %s column"
       (to_string v) (Attr_type.to_string ty))

let encode ty v buf off =
  match (ty, v) with
  | Attr_type.I1, Int n -> Bytes.set_int8 buf off n
  | Attr_type.I2, Int n -> Bytes.set_int16_be buf off n
  | Attr_type.I4, Int n -> Bytes.set_int32_be buf off (Int32.of_int n)
  | Attr_type.F4, Float f ->
      Bytes.set_int32_be buf off (Int32.bits_of_float f)
  | Attr_type.F8, Float f ->
      Bytes.set_int64_be buf off (Int64.bits_of_float f)
  | Attr_type.C n, Str s ->
      let len = min n (String.length s) in
      Bytes.blit_string s 0 buf off len;
      Bytes.fill buf (off + len) (n - len) '\000'
  | Attr_type.Time, Time t ->
      Bytes.set_int32_be buf off (Int32.of_int (Chronon.to_seconds t))
  | _ -> type_error ty v

let decode ty buf off =
  match ty with
  | Attr_type.I1 -> Int (Bytes.get_int8 buf off)
  | Attr_type.I2 -> Int (Bytes.get_int16_be buf off)
  | Attr_type.I4 -> Int (Int32.to_int (Bytes.get_int32_be buf off))
  | Attr_type.F4 -> Float (Int32.float_of_bits (Bytes.get_int32_be buf off))
  | Attr_type.F8 -> Float (Int64.float_of_bits (Bytes.get_int64_be buf off))
  | Attr_type.C n ->
      (* Single copy: find the NUL padding in place first. *)
      let len =
        let rec go i = if i >= n || Bytes.get buf (off + i) = '\000' then i else go (i + 1) in
        go 0
      in
      Str (Bytes.sub_string buf off len)
  | Attr_type.Time ->
      Time (Chronon.of_seconds (Int32.to_int (Bytes.get_int32_be buf off)))

let coerce ty v =
  match (ty, v) with
  | (Attr_type.I1 | I2 | I4), Int n -> (
      match int_range ty with
      | Some (lo, hi) when n >= lo && n <= hi -> Ok v
      | _ ->
          Error
            (Printf.sprintf "%d out of range for %s" n (Attr_type.to_string ty)))
  | (Attr_type.F4 | F8), Float _ -> Ok v
  | (Attr_type.F4 | F8), Int n -> Ok (Float (float_of_int n))
  | Attr_type.C n, Str s ->
      if String.length s <= n then Ok v else Ok (Str (String.sub s 0 n))
  | Attr_type.Time, Time _ -> Ok v
  | Attr_type.Time, Int n -> Ok (Time (Chronon.of_seconds n))
  | _ ->
      Error
        (Printf.sprintf "cannot store %s value %s into a %s column"
           (Attr_type.to_string (type_of v))
           (to_string v) (Attr_type.to_string ty))

(* Ingres hashed integer keys essentially by value (bucket = key mod
   npages), which spreads consecutive benchmark ids almost perfectly - the
   paper's hash files carry at most a page or two of overflow at update
   count 0.  A "better" mixing hash would give a binomial spread and ~40%
   overflow pages, quite unlike the prototype.  Strings hash structurally. *)
let hash = function
  | Int n -> n land max_int
  | Time t -> Chronon.to_seconds t land max_int
  | Float f -> Int64.to_int (Int64.bits_of_float f) land max_int
  | Str s -> Hashtbl.hash s
