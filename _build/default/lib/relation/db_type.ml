type kind = Interval | Event

type t =
  | Static
  | Rollback
  | Historical of kind
  | Temporal of kind

let has_valid_time = function
  | Historical _ | Temporal _ -> true
  | Static | Rollback -> false

let has_transaction_time = function
  | Rollback | Temporal _ -> true
  | Static | Historical _ -> false

let kind = function
  | Historical k | Temporal k -> Some k
  | Static | Rollback -> None

let implicit_attribute_count = function
  | Static -> 0
  | Rollback -> 2
  | Historical Interval -> 2
  | Historical Event -> 1
  | Temporal Interval -> 4
  | Temporal Event -> 3

let supports_when = has_valid_time
let supports_as_of = has_transaction_time

let to_string = function
  | Static -> "static"
  | Rollback -> "rollback"
  | Historical Interval -> "historical interval"
  | Historical Event -> "historical event"
  | Temporal Interval -> "temporal interval"
  | Temporal Event -> "temporal event"

let of_string s =
  match
    String.lowercase_ascii (String.trim s)
    |> String.split_on_char ' '
    |> List.filter (fun w -> w <> "")
  with
  | [ "static" ] -> Ok Static
  | [ "rollback" ] -> Ok Rollback
  | [ "historical" ] | [ "historical"; "interval" ] -> Ok (Historical Interval)
  | [ "historical"; "event" ] -> Ok (Historical Event)
  | [ "temporal" ] | [ "temporal"; "interval" ] -> Ok (Temporal Interval)
  | [ "temporal"; "event" ] -> Ok (Temporal Event)
  | _ -> Error (Printf.sprintf "unknown database type %S" s)

let pp ppf t = Fmt.string ppf (to_string t)
let equal (a : t) (b : t) = a = b
