type attr = { name : string; ty : Attr_type.t }

type t = {
  db_type : Db_type.t;
  user : attr array;
  all : attr array;
  size : int;
  valid_from : int option;
  valid_to : int option;
  valid_at : int option;
  tstart : int option;
  tstop : int option;
}

let implicit_names db_type =
  let valid =
    match Db_type.kind db_type with
    | Some Db_type.Interval -> [ "valid from"; "valid to" ]
    | Some Db_type.Event -> [ "valid at" ]
    | None -> []
  in
  let trans =
    if Db_type.has_transaction_time db_type then
      [ "transaction start"; "transaction stop" ]
    else []
  in
  valid @ trans

(* Attribute lookup is case-insensitive, and underscores match spaces so
   the implicit attributes ("valid from", ...) are reachable from TQuel's
   dotted syntax as h.valid_from. *)
let norm s =
  String.lowercase_ascii (String.trim s)
  |> String.map (fun c -> if c = '_' then ' ' else c)

let norm_name = norm

let create ~db_type user_list =
  let implicit =
    List.map (fun name -> { name; ty = Attr_type.Time }) (implicit_names db_type)
  in
  if user_list = [] then Error "a relation needs at least one attribute"
  else
    let names = List.map (fun a -> norm a.name) (user_list @ implicit) in
    let rec dup = function
      | [] -> None
      | n :: rest -> if List.mem n rest then Some n else dup rest
    in
    match dup names with
    | Some n -> Error (Printf.sprintf "duplicate attribute name %S" n)
    | None ->
        if List.exists (fun a -> norm a.name = "") user_list then
          Error "empty attribute name"
        else
          let user = Array.of_list user_list in
          let all = Array.of_list (user_list @ implicit) in
          let size =
            Array.fold_left (fun acc a -> acc + Attr_type.size a.ty) 0 all
          in
          let find name =
            let rec go i =
              if i >= Array.length all then None
              else if norm all.(i).name = name then Some i
              else go (i + 1)
            in
            go (Array.length user)
          in
          Ok
            {
              db_type;
              user;
              all;
              size;
              valid_from = find "valid from";
              valid_to = find "valid to";
              valid_at = find "valid at";
              tstart = find "transaction start";
              tstop = find "transaction stop";
            }

let create_exn ~db_type user_list =
  match create ~db_type user_list with
  | Ok t -> t
  | Error msg -> invalid_arg ("Schema.create_exn: " ^ msg)

let db_type t = t.db_type
let user_attrs t = t.user
let all_attrs t = t.all
let user_arity t = Array.length t.user
let arity t = Array.length t.all
let attr t i = t.all.(i)

let index_of t name =
  let name = norm name in
  let rec go i =
    if i >= Array.length t.all then None
    else if norm t.all.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let tuple_size t = t.size
let valid_from_index t = t.valid_from
let valid_to_index t = t.valid_to
let valid_at_index t = t.valid_at
let transaction_start_index t = t.tstart
let transaction_stop_index t = t.tstop

let equal a b =
  Db_type.equal a.db_type b.db_type
  && Array.length a.all = Array.length b.all
  && Array.for_all2
       (fun x y -> norm x.name = norm y.name && Attr_type.equal x.ty y.ty)
       a.all b.all

let pp ppf t =
  Fmt.pf ppf "(%s: %a)"
    (Db_type.to_string t.db_type)
    Fmt.(array ~sep:(any ", ") (fun ppf a ->
        Fmt.pf ppf "%s = %s" a.name (Attr_type.to_string a.ty)))
    t.all
