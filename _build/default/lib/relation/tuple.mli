(** Tuples: arrays of values conforming to a schema, and their binary codec.

    A stored tuple is the concatenation of its attributes' fixed-width
    encodings, [Schema.tuple_size] bytes long. *)

type t = Value.t array

val validate : Schema.t -> t -> (unit, string) result
(** Arity and per-attribute type check against the full schema. *)

val encode : Schema.t -> t -> bytes
val encode_into : Schema.t -> t -> bytes -> int -> unit
val decode : Schema.t -> bytes -> int -> t

val valid_period : Schema.t -> t -> Tdb_time.Period.t option
(** The tuple's valid-time period: \[valid from, valid to) for interval
    relations, the event at [valid at] for event relations, [None] for
    relations without valid time. *)

val transaction_period : Schema.t -> t -> Tdb_time.Period.t option
(** \[transaction start, transaction stop), or [None] without transaction
    time. *)

val is_current : Schema.t -> t -> bool
(** True iff the version has not been (logically) deleted: its transaction
    stop is [forever] when transaction time exists, otherwise its valid-to
    is [forever] (historical relations), otherwise always (static). *)

val get_time : t -> int -> Tdb_time.Chronon.t
(** [get_time tu i] reads attribute [i], which must hold a [Time] value. *)

val set_time : t -> int -> Tdb_time.Chronon.t -> t
(** Functional update of a time attribute. *)

val project : t -> int list -> t
val equal : t -> t -> bool
val pp : Schema.t -> t Fmt.t
val to_string : Schema.t -> t -> string
