(** Attribute values and their fixed-width binary codec. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Time of Tdb_time.Chronon.t

val type_of : t -> Attr_type.t
(** The narrowest type describing the value ([Int] maps to [i4]). *)

val matches : Attr_type.t -> t -> bool
(** Whether the value may be stored in a column of the given type (integers
    fit any integer width whose range contains them; strings fit any [cN]
    after truncation/padding). *)

val compare : t -> t -> int
(** Total order within a type family; comparing values of incompatible
    families (e.g. [Int] vs [Str]) raises [Invalid_argument]. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : t Fmt.t

val encode : Attr_type.t -> t -> bytes -> int -> unit
(** [encode ty v buf off] writes the fixed-width representation of [v] as a
    [ty] at offset [off].  Strings are padded with NULs or truncated to the
    declared width.  Raises [Invalid_argument] on a type mismatch. *)

val decode : Attr_type.t -> bytes -> int -> t
(** Inverse of {!encode}; NUL padding is stripped from strings. *)

val coerce : Attr_type.t -> t -> (t, string) result
(** Checked conversion used when loading external data: pads/truncates
    strings, range-checks integers, accepts [Int] for [Time] columns. *)

val hash : t -> int
(** A deterministic hash for hash files and hash indexes; multiplicative
    (Knuth) for integers so that consecutive keys spread over buckets
    imperfectly, as in the paper's prototype. *)
