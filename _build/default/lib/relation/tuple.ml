module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period

type t = Value.t array

let validate schema tu =
  let n = Schema.arity schema in
  if Array.length tu <> n then
    Error
      (Printf.sprintf "arity mismatch: tuple has %d values, schema needs %d"
         (Array.length tu) n)
  else
    let rec go i =
      if i >= n then Ok ()
      else
        let a = Schema.attr schema i in
        if Value.matches a.Schema.ty tu.(i) then go (i + 1)
        else
          Error
            (Printf.sprintf "attribute %s: %s does not fit type %s"
               a.Schema.name
               (Value.to_string tu.(i))
               (Attr_type.to_string a.Schema.ty))
    in
    go 0

let encode_into schema tu buf off =
  let n = Schema.arity schema in
  assert (Array.length tu = n);
  let pos = ref off in
  for i = 0 to n - 1 do
    let ty = (Schema.attr schema i).Schema.ty in
    Value.encode ty tu.(i) buf !pos;
    pos := !pos + Attr_type.size ty
  done

let encode schema tu =
  let buf = Bytes.create (Schema.tuple_size schema) in
  encode_into schema tu buf 0;
  buf

let decode schema buf off =
  let n = Schema.arity schema in
  let tu = Array.make n (Value.Int 0) in
  let pos = ref off in
  for i = 0 to n - 1 do
    let ty = (Schema.attr schema i).Schema.ty in
    tu.(i) <- Value.decode ty buf !pos;
    pos := !pos + Attr_type.size ty
  done;
  tu

let get_time tu i =
  match tu.(i) with
  | Value.Time t -> t
  | v ->
      invalid_arg
        (Printf.sprintf "Tuple.get_time: attribute %d holds %s" i
           (Value.to_string v))

let set_time tu i t =
  let tu' = Array.copy tu in
  tu'.(i) <- Value.Time t;
  tu'

let valid_period schema tu =
  match (Schema.valid_from_index schema, Schema.valid_at_index schema) with
  | Some f, _ ->
      let from_ = get_time tu f in
      let to_ =
        match Schema.valid_to_index schema with
        | Some t -> get_time tu t
        | None -> Chronon.forever
      in
      (* A tuple logically deleted in the same chronon it appeared: treat as
         an event at its start rather than an invalid interval. *)
      if Chronon.compare to_ from_ < 0 then Some (Period.at from_)
      else Some (Period.make from_ to_)
  | None, Some a -> Some (Period.at (get_time tu a))
  | None, None -> None

let transaction_period schema tu =
  match
    (Schema.transaction_start_index schema, Schema.transaction_stop_index schema)
  with
  | Some s, Some e ->
      let start = get_time tu s and stop = get_time tu e in
      if Chronon.compare stop start < 0 then Some (Period.at start)
      else Some (Period.make start stop)
  | _ -> None

let is_current schema tu =
  match Schema.transaction_stop_index schema with
  | Some i -> Chronon.is_forever (get_time tu i)
  | None -> (
      match Schema.valid_to_index schema with
      | Some i -> Chronon.is_forever (get_time tu i)
      | None -> true)

let project tu idxs = Array.of_list (List.map (fun i -> tu.(i)) idxs)

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let pp schema ppf tu =
  let n = Schema.arity schema in
  Fmt.pf ppf "(";
  for i = 0 to n - 1 do
    if i > 0 then Fmt.pf ppf ", ";
    Fmt.pf ppf "%s" (Value.to_string tu.(i))
  done;
  Fmt.pf ppf ")"

let to_string schema tu = Fmt.str "%a" (pp schema) tu
