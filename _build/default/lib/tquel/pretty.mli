(** Pretty-printing of TQuel syntax trees back to concrete syntax.

    [Parser.parse_statement (statement s)] returns a tree equal to [s] —
    a property the test suite checks. *)

val tempexpr : Ast.tempexpr -> string
val binop_to_string : Ast.binop -> string
val temppred : Ast.temppred -> string
val expr : Ast.expr -> string
val pred : Ast.pred -> string
val statement : Ast.statement -> string
