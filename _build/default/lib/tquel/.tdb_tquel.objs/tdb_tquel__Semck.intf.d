lib/tquel/semck.mli: Ast Tdb_relation
