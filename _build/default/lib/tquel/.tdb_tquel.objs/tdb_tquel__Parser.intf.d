lib/tquel/parser.mli: Ast
