lib/tquel/semck.ml: Ast List Pretty Printf Result String Tdb_relation Tdb_time
