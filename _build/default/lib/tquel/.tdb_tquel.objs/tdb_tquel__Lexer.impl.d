lib/tquel/lexer.ml: Buffer List Printf String Token
