lib/tquel/ast.ml: Tdb_relation
