lib/tquel/lexer.mli: Token
