lib/tquel/parser.ml: Array Ast Lexer List Printf Tdb_relation Token
