lib/tquel/token.ml: List Printf String
