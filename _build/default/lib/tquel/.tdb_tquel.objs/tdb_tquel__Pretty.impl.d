lib/tquel/pretty.ml: Ast List Option Printf String Tdb_relation
