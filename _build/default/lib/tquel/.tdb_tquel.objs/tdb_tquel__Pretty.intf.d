lib/tquel/pretty.mli: Ast
