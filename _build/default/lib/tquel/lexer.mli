(** The TQuel lexer.

    Comments run from [/*] to [*/] (Quel style).  String literals use double
    quotes with backslash escapes.  Keywords and identifiers are
    case-insensitive; identifiers are lower-cased. *)

type positioned = { token : Token.t; line : int; col : int }

val tokenize : string -> (positioned list, string) result
(** The full token stream, or a lexical error message with position. *)
