(** Semantic analysis of TQuel statements.

    Enforces the legality rules of the four database types (paper, sections
    2–3): the [when] clause needs valid time, the [as of] clause needs
    transaction time, modification targets must be user attributes, types
    in comparisons must be compatible, and so on. *)

type rel_info = {
  schema : Tdb_relation.Schema.t;
  db_type : Tdb_relation.Db_type.t;
}

type env = {
  find_relation : string -> rel_info option;
  find_range : string -> string option;
      (** tuple variable -> relation name, from previous [range of]
          statements *)
}

type family = Fnum | Fstr | Ftime
(** Type families used for comparison compatibility: all numeric types
    compare with one another; [time] compares with [time] and with string
    literals (which are read as time constants). *)

val infer_expr :
  env -> Ast.expr -> (family, string) result
(** Type-checks a scalar expression (also verifying every [var.attr]
    resolves). *)

val expr_has_aggregate : Ast.expr -> bool
val expr_has_global_aggregate : Ast.expr -> bool

val check_statement : env -> Ast.statement -> (unit, string) result
(** [Ok ()] when the statement is well-formed against the environment. *)
