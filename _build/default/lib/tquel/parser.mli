(** Recursive-descent parser for TQuel.

    Statements may be separated by semicolons or simply juxtaposed.
    Errors carry the line and column of the offending token. *)

val parse_program : string -> (Ast.statement list, string) result
(** Parses a script of zero or more statements. *)

val parse_statement : string -> (Ast.statement, string) result
(** Parses exactly one statement (trailing semicolon permitted). *)
