type positioned = { token : Token.t; line : int; col : int }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let error st msg =
  Error (Printf.sprintf "lexical error at line %d, column %d: %s" st.line st.col msg)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit ~line ~col token = tokens := { token; line; col } :: !tokens in
  let rec skip_comment depth =
    if depth = 0 then Ok ()
    else
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
          advance st;
          advance st;
          skip_comment (depth - 1)
      | Some '/', Some '*' ->
          advance st;
          advance st;
          skip_comment (depth + 1)
      | Some _, _ ->
          advance st;
          skip_comment depth
      | None, _ -> error st "unterminated comment"
  in
  let lex_string ~line ~col =
    advance st (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> error st "unterminated string literal"
      | Some '"' ->
          advance st;
          emit ~line ~col (Token.String_lit (Buffer.contents buf));
          Ok ()
      | Some '\\' -> (
          advance st;
          match peek st with
          | Some c ->
              Buffer.add_char buf (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
              advance st;
              go ()
          | None -> error st "unterminated string literal")
      | Some c ->
          Buffer.add_char buf c;
          advance st;
          go ()
    in
    go ()
  in
  let lex_number ~line ~col =
    let start = st.pos in
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float =
      match (peek st, peek2 st) with
      | Some '.', Some c when is_digit c -> true
      | _ -> false
    in
    if is_float then begin
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    end;
    let text = String.sub st.src start (st.pos - start) in
    if is_float then
      match float_of_string_opt text with
      | Some f ->
          emit ~line ~col (Token.Float_lit f);
          Ok ()
      | None -> error st (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some n ->
          emit ~line ~col (Token.Int_lit n);
          Ok ()
      | None -> error st (Printf.sprintf "number %S too large" text)
  in
  let lex_word ~line ~col =
    let start = st.pos in
    while (match peek st with Some c -> is_ident_char c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    let lowered = String.lowercase_ascii text in
    if Token.is_keyword lowered then emit ~line ~col (Token.Kw lowered)
    else emit ~line ~col (Token.Ident lowered)
  in
  let rec go () =
    match peek st with
    | None -> Ok (List.rev !tokens)
    | Some c -> (
        let line = st.line and col = st.col in
        match c with
        | ' ' | '\t' | '\r' | '\n' ->
            advance st;
            go ()
        | '/' when peek2 st = Some '*' ->
            advance st;
            advance st;
            (match skip_comment 1 with Ok () -> go () | Error e -> Error e)
        | '"' -> ( match lex_string ~line ~col with Ok () -> go () | Error e -> Error e)
        | c when is_digit c -> (
            match lex_number ~line ~col with Ok () -> go () | Error e -> Error e)
        | c when is_ident_start c ->
            lex_word ~line ~col;
            go ()
        | '(' -> advance st; emit ~line ~col Token.Lparen; go ()
        | ')' -> advance st; emit ~line ~col Token.Rparen; go ()
        | ',' -> advance st; emit ~line ~col Token.Comma; go ()
        | '.' -> advance st; emit ~line ~col Token.Dot; go ()
        | ';' -> advance st; emit ~line ~col Token.Semicolon; go ()
        | '+' -> advance st; emit ~line ~col Token.Plus; go ()
        | '-' -> advance st; emit ~line ~col Token.Minus; go ()
        | '*' -> advance st; emit ~line ~col Token.Star; go ()
        | '/' -> advance st; emit ~line ~col Token.Slash; go ()
        | '=' -> advance st; emit ~line ~col Token.Equal; go ()
        | '!' when peek2 st = Some '=' ->
            advance st; advance st;
            emit ~line ~col Token.Not_equal;
            go ()
        | '<' when peek2 st = Some '=' ->
            advance st; advance st;
            emit ~line ~col Token.Less_equal;
            go ()
        | '<' when peek2 st = Some '>' ->
            advance st; advance st;
            emit ~line ~col Token.Not_equal;
            go ()
        | '<' -> advance st; emit ~line ~col Token.Less; go ()
        | '>' when peek2 st = Some '=' ->
            advance st; advance st;
            emit ~line ~col Token.Greater_equal;
            go ()
        | '>' -> advance st; emit ~line ~col Token.Greater; go ()
        | c -> error st (Printf.sprintf "unexpected character %C" c))
  in
  go ()
