lib/twostore/secondary_index.mli: Tdb_relation Tdb_storage
