lib/twostore/history_store.ml: Bytes Hashtbl Int32 Option Tdb_relation Tdb_storage
