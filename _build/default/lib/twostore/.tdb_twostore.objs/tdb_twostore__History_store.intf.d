lib/twostore/history_store.mli: Tdb_relation Tdb_storage
