lib/twostore/two_level_store.ml: Array Hashtbl History_store List Option Printf Secondary_index Tdb_relation Tdb_storage Tdb_time
