lib/twostore/secondary_index.ml: Bytes List Tdb_relation Tdb_storage
