lib/twostore/two_level_store.mli: Secondary_index Tdb_relation Tdb_storage Tdb_time
