module Attr_type = Tdb_relation.Attr_type
module Value = Tdb_relation.Value
module Heap_file = Tdb_storage.Heap_file
module Hash_file = Tdb_storage.Hash_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Disk = Tdb_storage.Disk
module Tid = Tdb_storage.Tid

type structure = Heap_index | Hash_index

type impl = Heap_impl of Heap_file.t | Hash_impl of Hash_file.t

type t = {
  structure : structure;
  key_type : Attr_type.t;
  key_size : int;
  stats : Io_stats.t;
  pool : Buffer_pool.t;
  impl : impl;
  mutable entries : int;
}

let record_size t = t.key_size + Tid.encoded_size

let encode_entry t key tid =
  let record = Bytes.create (record_size t) in
  Value.encode t.key_type key record 0;
  Tid.encode tid record t.key_size;
  record

let decode_key t record = Value.decode t.key_type record 0
let decode_tid t record = Tid.decode record t.key_size

let create ~structure ~key_type () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create (Disk.create_mem ()) stats in
  let key_size = Attr_type.size key_type in
  let rs = key_size + Tid.encoded_size in
  let impl =
    match structure with
    | Heap_index -> Heap_impl (Heap_file.create pool ~record_size:rs)
    | Hash_index ->
        let key_of record = Value.decode key_type record 0 in
        Hash_impl (Hash_file.build pool ~record_size:rs ~key_of ~fillfactor:100 [])
  in
  { structure; key_type; key_size; stats; pool; impl; entries = 0 }

let insert t key tid =
  let record = encode_entry t key tid in
  (match t.impl with
  | Heap_impl h -> ignore (Heap_file.insert h record)
  | Hash_impl h -> ignore (Hash_file.insert h record));
  t.entries <- t.entries + 1

let build ~structure ~key_type entries =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create (Disk.create_mem ()) stats in
  let key_size = Attr_type.size key_type in
  let rs = key_size + Tid.encoded_size in
  let t0 =
    {
      structure;
      key_type;
      key_size;
      stats;
      pool;
      impl = Heap_impl (Heap_file.attach pool ~record_size:rs);
      entries = 0;
    }
  in
  let records = List.map (fun (k, tid) -> encode_entry t0 k tid) entries in
  let impl =
    match structure with
    | Heap_index ->
        let h = Heap_file.create pool ~record_size:rs in
        List.iter (fun r -> ignore (Heap_file.insert h r)) records;
        Heap_impl h
    | Hash_index ->
        let key_of record = Value.decode key_type record 0 in
        Hash_impl
          (Hash_file.build pool ~record_size:rs ~key_of ~fillfactor:100 records)
  in
  { t0 with impl; entries = List.length entries }

let remove t key tid =
  let found = ref None in
  (match t.impl with
  | Heap_impl h ->
      Heap_file.iter h (fun etid record ->
          if
            !found = None
            && Value.equal (decode_key t record) key
            && Tid.equal (decode_tid t record) tid
          then found := Some etid);
      (match !found with Some etid -> Heap_file.delete h etid | None -> ())
  | Hash_impl h ->
      Hash_file.lookup h key (fun etid record ->
          if !found = None && Tid.equal (decode_tid t record) tid then
            found := Some etid);
      (match !found with Some etid -> Hash_file.delete h etid | None -> ()));
  match !found with
  | Some _ ->
      t.entries <- t.entries - 1;
      true
  | None -> false

let lookup t key =
  let acc = ref [] in
  (match t.impl with
  | Heap_impl h ->
      Heap_file.iter h (fun _ record ->
          if Value.equal (decode_key t record) key then
            acc := decode_tid t record :: !acc)
  | Hash_impl h ->
      Hash_file.lookup h key (fun _ record -> acc := decode_tid t record :: !acc));
  List.rev !acc

let entry_count t = t.entries
let npages t = Buffer_pool.npages t.pool
let structure t = t.structure
let io t = Io_stats.snapshot t.stats

let reset_io t =
  Buffer_pool.invalidate t.pool;
  Io_stats.reset t.stats
