module Pfile = Tdb_storage.Pfile
module Tid = Tdb_storage.Tid
module Page = Tdb_storage.Page
module Buffer_pool = Tdb_storage.Buffer_pool
module Value = Tdb_relation.Value

type t = {
  pf : Pfile.t;
  tuple_size : int;
  clustered : bool;
  cluster_tail : (Value.t, int) Hashtbl.t;
      (** clustered policy: the page currently receiving this tuple's
          versions *)
  mutable fill_tail : int;
      (** simple policy: the page currently receiving appends (-1 before
          the first) *)
}

let ptr_size = 4

let create pool ~tuple_size ~clustered =
  let pf = Pfile.create pool ~record_size:(tuple_size + ptr_size) in
  if Pfile.npages pf <> 0 then
    invalid_arg "History_store.create: disk is not empty";
  { pf; tuple_size; clustered; cluster_tail = Hashtbl.create 64; fill_tail = -1 }

let clustered t = t.clustered
let npages t = Pfile.npages t.pf

let encode t tuple prev =
  let record = Bytes.create (t.tuple_size + ptr_size) in
  Bytes.blit tuple 0 record 0 t.tuple_size;
  (match prev with
  | None -> Bytes.set_int32_be record t.tuple_size 0l
  | Some p -> Tid.encode p record t.tuple_size);
  (* Tid encoding of page 0 slot 0 is 0, which collides with "none"; shift
     by one so every real pointer is nonzero. *)
  (match prev with
  | Some _ ->
      let raw = Bytes.get_int32_be record t.tuple_size in
      Bytes.set_int32_be record t.tuple_size (Int32.add raw 1l)
  | None -> ());
  record

let decode t record =
  let tuple = Bytes.sub record 0 t.tuple_size in
  let raw = Bytes.get_int32_be record t.tuple_size in
  let prev =
    if raw = 0l then None
    else begin
      let buf = Bytes.create 4 in
      Bytes.set_int32_be buf 0 (Int32.sub raw 1l);
      Some (Tid.decode buf 0)
    end
  in
  (tuple, prev)

let write_at t page record =
  match
    Page.find_free_slot
      ~record_size:(Pfile.record_size t.pf)
      (Buffer_pool.read (Pfile.pool t.pf) page)
  with
  | Some slot ->
      let tid = { Tid.page; slot } in
      Pfile.write_record t.pf tid record;
      Some tid
  | None -> None

let push t ~cluster ~tuple ~prev =
  let record = encode t tuple prev in
  if t.clustered then begin
    let try_tail =
      match Hashtbl.find_opt t.cluster_tail cluster with
      | Some page -> write_at t page record
      | None -> None
    in
    match try_tail with
    | Some tid -> tid
    | None ->
        let page = Pfile.allocate_page t.pf in
        Hashtbl.replace t.cluster_tail cluster page;
        let tid = Option.get (write_at t page record) in
        tid
  end
  else begin
    let try_tail =
      if t.fill_tail >= 0 then write_at t t.fill_tail record else None
    in
    match try_tail with
    | Some tid -> tid
    | None ->
        let page = Pfile.allocate_page t.pf in
        t.fill_tail <- page;
        Option.get (write_at t page record)
  end

let read t tid = decode t (Pfile.read_record t.pf tid)

let walk t ~head f =
  let rec go = function
    | None -> ()
    | Some tid ->
        let tuple, prev = read t tid in
        f tid tuple;
        go prev
  in
  go head

let iter t f =
  for page = 0 to Pfile.npages t.pf - 1 do
    Pfile.page_iter t.pf ~page (fun tid record -> f tid (fst (decode t record)))
  done
