lib/core/catalog.mli: Tdb_relation Tdb_storage
