lib/core/database.mli: Tdb_relation Tdb_storage Tdb_time Tdb_tquel
