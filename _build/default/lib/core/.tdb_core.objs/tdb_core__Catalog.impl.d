lib/core/catalog.ml: Fun List Printf Result String Sys Tdb_relation Tdb_storage
