lib/core/engine.ml: Array Buffer Database Fun List Option Printf Result String Sys Tdb_query Tdb_relation Tdb_storage Tdb_time Tdb_tquel
