lib/core/database.ml: Array Catalog Filename Fun Hashtbl List Option Printf String Sys Tdb_relation Tdb_storage Tdb_time Tdb_tquel
