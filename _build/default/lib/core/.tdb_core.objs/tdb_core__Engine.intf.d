lib/core/engine.mli: Database Tdb_query Tdb_relation Tdb_tquel
