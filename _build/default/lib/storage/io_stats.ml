type t = { mutable r : int; mutable w : int }

let create () = { r = 0; w = 0 }
let reads t = t.r
let writes t = t.w
let total t = t.r + t.w
let count_read t = t.r <- t.r + 1
let count_write t = t.w <- t.w + 1

let reset t =
  t.r <- 0;
  t.w <- 0

type snapshot = { reads : int; writes : int }

let snapshot t = { reads = t.r; writes = t.w }

let diff ~before ~after =
  { reads = after.reads - before.reads; writes = after.writes - before.writes }

let add a b = { reads = a.reads + b.reads; writes = a.writes + b.writes }
let zero = { reads = 0; writes = 0 }

let pp_snapshot ppf s = Fmt.pf ppf "%d reads, %d writes" s.reads s.writes
