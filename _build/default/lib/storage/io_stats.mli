(** Page I/O accounting.

    The paper's sole metric is "the number of disk accesses per query at a
    granularity of a page", counting only accesses to user relations.  Every
    buffer pool owns one of these counter records; the engine aggregates
    them per query.  A read is counted when a page must be fetched from the
    disk (a buffer miss); a write when a dirty page is flushed. *)

type t

val create : unit -> t
val reads : t -> int
val writes : t -> int
val total : t -> int
val count_read : t -> unit
val count_write : t -> unit
val reset : t -> unit

type snapshot = { reads : int; writes : int }

val snapshot : t -> snapshot
val diff : before:snapshot -> after:snapshot -> snapshot
val add : snapshot -> snapshot -> snapshot
val zero : snapshot
val pp_snapshot : snapshot Fmt.t
