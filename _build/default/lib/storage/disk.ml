type backend =
  | Mem of { mutable pages : bytes array; mutable used : int }
  | File of { fd : Unix.file_descr; mutable npages : int }

type t = { backend : backend }

let create_mem () = { backend = Mem { pages = [||]; used = 0 } }

let open_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let len = (Unix.fstat fd).Unix.st_size in
  if len mod Page.size <> 0 then (
    Unix.close fd;
    failwith (Printf.sprintf "Disk.open_file: %s is not page-aligned" path));
  { backend = File { fd; npages = len / Page.size } }

let npages t =
  match t.backend with Mem m -> m.used | File f -> f.npages

let check_id t id =
  if id < 0 || id >= npages t then
    invalid_arg (Printf.sprintf "Disk: page id %d out of range (npages=%d)" id
                   (npages t))

let read_exactly fd buf =
  let rec go off =
    if off < Bytes.length buf then begin
      let n = Unix.read fd buf off (Bytes.length buf - off) in
      if n = 0 then failwith "Disk: short read";
      go (off + n)
    end
  in
  go 0

let write_exactly fd buf =
  let rec go off =
    if off < Bytes.length buf then begin
      let n = Unix.write fd buf off (Bytes.length buf - off) in
      go (off + n)
    end
  in
  go 0

let allocate t =
  match t.backend with
  | Mem m ->
      if m.used >= Array.length m.pages then begin
        let cap = max 8 (2 * Array.length m.pages) in
        let pages = Array.make cap Bytes.empty in
        Array.blit m.pages 0 pages 0 m.used;
        m.pages <- pages
      end;
      m.pages.(m.used) <- Page.create ();
      m.used <- m.used + 1;
      m.used - 1
  | File f ->
      let id = f.npages in
      ignore (Unix.lseek f.fd (id * Page.size) Unix.SEEK_SET);
      write_exactly f.fd (Page.create ());
      f.npages <- id + 1;
      id

let read_page t id =
  check_id t id;
  match t.backend with
  | Mem m -> Bytes.copy m.pages.(id)
  | File f ->
      let buf = Bytes.create Page.size in
      ignore (Unix.lseek f.fd (id * Page.size) Unix.SEEK_SET);
      read_exactly f.fd buf;
      buf

let write_page t id page =
  check_id t id;
  if Bytes.length page <> Page.size then
    invalid_arg "Disk.write_page: wrong page size";
  match t.backend with
  | Mem m -> m.pages.(id) <- Bytes.copy page
  | File f ->
      ignore (Unix.lseek f.fd (id * Page.size) Unix.SEEK_SET);
      write_exactly f.fd page

let truncate t =
  match t.backend with
  | Mem m ->
      m.pages <- [||];
      m.used <- 0
  | File f ->
      Unix.ftruncate f.fd 0;
      f.npages <- 0

let close t =
  match t.backend with Mem _ -> () | File f -> Unix.close f.fd

let is_file_backed t =
  match t.backend with Mem _ -> false | File _ -> true
