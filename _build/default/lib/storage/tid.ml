type t = { page : int; slot : int }

let compare a b =
  match Int.compare a.page b.page with
  | 0 -> Int.compare a.slot b.slot
  | c -> c

let equal a b = compare a b = 0
let pp ppf t = Fmt.pf ppf "<%d,%d>" t.page t.slot
let encoded_size = 4

let encode t buf off =
  if t.page < 0 || t.page >= 1 lsl 24 || t.slot < 0 || t.slot >= 256 then
    invalid_arg "Tid.encode: out of range";
  Bytes.set_int32_be buf off (Int32.of_int ((t.page lsl 8) lor t.slot))

let decode buf off =
  let v = Int32.to_int (Bytes.get_int32_be buf off) land 0xFFFF_FFFF in
  { page = v lsr 8; slot = v land 0xFF }
