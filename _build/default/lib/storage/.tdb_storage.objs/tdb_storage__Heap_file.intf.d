lib/storage/heap_file.mli: Buffer_pool Pfile Tid
