lib/storage/buffer_pool.ml: Array Bytes Disk Io_stats Page
