lib/storage/pfile.mli: Buffer_pool Tid
