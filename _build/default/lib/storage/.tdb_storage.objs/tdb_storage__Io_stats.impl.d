lib/storage/io_stats.ml: Fmt
