lib/storage/relation_file.ml: Buffer_pool Disk Hash_file Heap_file Io_stats Isam_file List Pfile Printf Tdb_relation
