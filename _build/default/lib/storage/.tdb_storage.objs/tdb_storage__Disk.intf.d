lib/storage/disk.mli:
