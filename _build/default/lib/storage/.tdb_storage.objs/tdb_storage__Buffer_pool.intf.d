lib/storage/buffer_pool.mli: Disk Io_stats
