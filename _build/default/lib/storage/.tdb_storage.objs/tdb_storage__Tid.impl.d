lib/storage/tid.ml: Bytes Fmt Int Int32
