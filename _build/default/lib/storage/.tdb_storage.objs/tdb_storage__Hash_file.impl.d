lib/storage/hash_file.ml: List Pfile Printf Tdb_relation
