lib/storage/page.mli:
