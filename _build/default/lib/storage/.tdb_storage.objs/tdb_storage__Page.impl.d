lib/storage/page.ml: Bytes Int32 Printf
