lib/storage/hash_file.mli: Buffer_pool Pfile Tdb_relation Tid
