lib/storage/tid.mli: Fmt
