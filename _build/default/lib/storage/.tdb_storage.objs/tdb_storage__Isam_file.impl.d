lib/storage/isam_file.ml: Array Bytes List Option Pfile Printf Tdb_relation Tdb_time Tid
