lib/storage/relation_file.mli: Buffer_pool Io_stats Tdb_relation Tid
