lib/storage/heap_file.ml: Buffer_pool Page Pfile Tid
