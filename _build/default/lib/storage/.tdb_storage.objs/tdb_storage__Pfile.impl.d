lib/storage/pfile.ml: Buffer_pool Hashtbl List Page Tid
