lib/storage/disk.ml: Array Bytes Page Printf Unix
