(** Tuple identifiers: the physical address of a record. *)

type t = { page : int; slot : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

val encode : t -> bytes -> int -> unit
(** 4-byte packed encoding (24-bit page id, 8-bit slot), as used by
    secondary-index entries. *)

val decode : bytes -> int -> t
val encoded_size : int
