(** Page stores.

    Each relation lives in its own disk of {!Page.size}-byte pages addressed
    by dense integer ids.  Two backends: an in-memory store (used by the
    benchmark: the paper's metric is page {e accesses}, which the buffer
    pool counts identically for either backend) and a real file. *)

type t

val create_mem : unit -> t

val open_file : string -> t
(** Opens (or creates) a page file on disk.  Raises [Sys_error]/[Unix_error]
    on failure. *)

val npages : t -> int

val allocate : t -> int
(** Extends the store by one zeroed page and returns its id. *)

val read_page : t -> int -> bytes
(** A fresh copy of the page.  Raises [Invalid_argument] on a bad id. *)

val write_page : t -> int -> bytes -> unit

val truncate : t -> unit
(** Drops every page (used by [modify], which rebuilds a relation). *)

val close : t -> unit
val is_file_backed : t -> bool
