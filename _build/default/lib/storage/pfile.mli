(** Paged record files: the machinery shared by every access method.

    A [Pfile.t] couples a buffer pool with a fixed record size and provides
    record-level reads and writes plus overflow-chain operations.  All
    records handed out are fresh copies; page frames never escape. *)

type t

val create : Buffer_pool.t -> record_size:int -> t
val pool : t -> Buffer_pool.t
val record_size : t -> int
val capacity : t -> int
(** Records per page for this record size. *)

val npages : t -> int
val allocate_page : t -> int

val read_record : t -> Tid.t -> bytes
(** Raises [Invalid_argument] if the slot is free. *)

val record_exists : t -> Tid.t -> bool
val write_record : t -> Tid.t -> bytes -> unit
val clear_record : t -> Tid.t -> unit

val next_overflow : t -> int -> int option
val set_next_overflow : t -> int -> int option -> unit

val set_first_fit : t -> bool -> unit
(** Chooses the overflow placement policy: first-fit (default; reuses slack
    anywhere along the chain, as Ingres does) or tail-append (only the
    newest chain page accepts records).  Exposed for the bench ablation. *)

val first_fit : t -> bool

val chain_insert : t -> head:int -> bytes -> Tid.t
(** First-fit insertion along the overflow chain starting at page [head];
    appends a new overflow page when every page of the chain is full.
    First-fit is what makes odd-numbered update rounds at 50% loading fill
    the slack left by previous rounds (Figure 8(b)'s jagged lines).
    A per-head hint makes repeated insertion into long chains cheap. *)

val chain_iter : t -> head:int -> (Tid.t -> bytes -> unit) -> unit
(** Visits every used record of the chain, touching each page once. *)

val chain_pages : t -> head:int -> int list
val chain_length : t -> head:int -> int

val page_iter : t -> page:int -> (Tid.t -> bytes -> unit) -> unit
(** Visits the used records of a single page (no chain traversal). *)

val free_slots_on : t -> page:int -> int
val drop_hints : t -> unit
(** Clears first-fit hints (after a rebuild). *)
