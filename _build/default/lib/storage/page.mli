(** The physical page format.

    Pages are {!size} (1024) bytes, matching the prototype.  The last
    {!trailer} (4) bytes hold the page id of the next overflow page in the
    chain (or 0 for none; stored ids are offset by one).  The rest of the
    page is an array of fixed-size record slots, each prefixed by a 2-byte
    slot header (0 = free, 1 = used), giving a capacity of
    [(1024 - 4) / (record_size + 2)] records per page:

    - 9 static tuples of 108 bytes,
    - 8 rollback/historical tuples of 116 bytes,
    - 8 temporal tuples of 124 bytes,
    - 170 ISAM directory entries for 4-byte keys,
    - 102 secondary-index entries of 8 bytes,

    in line with the paper's figures. *)

val size : int
val trailer : int

val capacity : record_size:int -> int
(** Records per page.  Raises [Invalid_argument] if even one record does not
    fit. *)

val create : unit -> bytes
(** A zeroed page: all slots free, no overflow successor. *)

val get_overflow : bytes -> int option
val set_overflow : bytes -> int option -> unit

val slot_used : record_size:int -> bytes -> int -> bool
val read_record : record_size:int -> bytes -> int -> bytes
(** [read_record ~record_size page slot] copies the record out of the page.
    The slot must be in use. *)

val write_record : record_size:int -> bytes -> int -> bytes -> unit
(** Stores a record and marks the slot used. *)

val clear_slot : record_size:int -> bytes -> int -> unit

val find_free_slot : record_size:int -> bytes -> int option
val used_count : record_size:int -> bytes -> int
