let table ?title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let cell row i = try List.nth row i with _ -> "" in
  let widths =
    List.init cols (fun i ->
        List.fold_left (fun w row -> max w (String.length (cell row i))) 0 all)
  in
  let line =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render row =
    "|"
    ^ String.concat "|"
        (List.mapi (fun i w -> Printf.sprintf " %*s " w (cell row i)) widths)
    ^ "|"
  in
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (line ^ "\n");
  Buffer.add_string buf (render header ^ "\n");
  Buffer.add_string buf (line ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render r ^ "\n")) rows;
  Buffer.add_string buf line;
  Buffer.contents buf

let plot ?(width = 64) ?(height = 20) ~title ~series () =
  let marks = "ABCDEFGHIJKL" in
  let all_points = List.concat_map snd series in
  match all_points with
  | [] -> title ^ "\n(no data)"
  | _ ->
      let xmax = List.fold_left (fun m (x, _) -> max m x) 1 all_points in
      let ymax = List.fold_left (fun m (_, y) -> max m y) 1 all_points in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, points) ->
          let mark = marks.[si mod String.length marks] in
          List.iter
            (fun (x, y) ->
              let px = x * (width - 1) / xmax in
              let py = height - 1 - (y * (height - 1) / ymax) in
              if grid.(py).(px) = ' ' then grid.(py).(px) <- mark
              else if grid.(py).(px) <> mark then grid.(py).(px) <- '*')
            points)
        series;
      let buf = Buffer.create 2048 in
      Buffer.add_string buf (title ^ "\n");
      Buffer.add_string buf (Printf.sprintf "%8d |" ymax);
      Buffer.add_string buf (String.concat "" (List.map (String.make 1) (Array.to_list grid.(0))));
      Buffer.add_char buf '\n';
      for row = 1 to height - 1 do
        let label =
          if row = height - 1 then Printf.sprintf "%8d |" 0
          else String.make 8 ' ' ^ " |"
        in
        Buffer.add_string buf label;
        Array.iter (Buffer.add_char buf) grid.(row);
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make 10 ' ');
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%10s0%*d  (update count)" "" (width - 1) xmax);
      Buffer.add_char buf '\n';
      List.iteri
        (fun si (label, _) ->
          Buffer.add_string buf
            (Printf.sprintf "  %c = %s\n" marks.[si mod String.length marks] label))
        series;
      Buffer.contents buf

let centi f = Printf.sprintf "%.2f" f
