(** The twelve benchmark queries of Figure 4, specialized per database type:
    queries Q05–Q10 drop the [when] clause on a static database and use
    [as of "now"] on a rollback database (paper, section 5.1); Q03/Q04 need
    transaction time; Q11/Q12 are "relevant only for a temporal
    database". *)

type id =
  | Q01 | Q02 | Q03 | Q04 | Q05 | Q06 | Q07 | Q08 | Q09 | Q10 | Q11 | Q12

val all : id list
val name : id -> string

val text : id -> Workload.kind -> string option
(** The TQuel source of the query on this kind of database, or [None] when
    the query is not applicable. *)

val description : id -> string
(** The paper's one-line characterization (version scan, rollback query,
    ...). *)
