type id = Q01 | Q02 | Q03 | Q04 | Q05 | Q06 | Q07 | Q08 | Q09 | Q10 | Q11 | Q12

let all = [ Q01; Q02; Q03; Q04; Q05; Q06; Q07; Q08; Q09; Q10; Q11; Q12 ]

let name = function
  | Q01 -> "Q01" | Q02 -> "Q02" | Q03 -> "Q03" | Q04 -> "Q04"
  | Q05 -> "Q05" | Q06 -> "Q06" | Q07 -> "Q07" | Q08 -> "Q08"
  | Q09 -> "Q09" | Q10 -> "Q10" | Q11 -> "Q11" | Q12 -> "Q12"

let description = function
  | Q01 -> "version scan, hashed file, given key"
  | Q02 -> "version scan, ISAM file, given key"
  | Q03 -> "rollback query, hashed file"
  | Q04 -> "rollback query, ISAM file"
  | Q05 -> "static query, hashed file, given key"
  | Q06 -> "static query, ISAM file, given key"
  | Q07 -> "static query, hashed file, non-key attribute (sequential scan)"
  | Q08 -> "static query, ISAM file, non-key attribute (sequential scan)"
  | Q09 -> "join of current versions via the hashed file"
  | Q10 -> "join of current versions via the ISAM file"
  | Q11 -> "temporal join with rollback"
  | Q12 -> "all TQuel clauses combined"

(* Q05..Q10 restrict attention to current versions: nothing needed on a
   static database, [as of "now"] on a rollback database, and
   [when _ overlap "now"] where valid time exists. *)
let current_suffix kind ~vars =
  match (kind : Workload.kind) with
  | Workload.Static -> ""
  | Workload.Rollback -> {| as of "now"|}
  | Workload.Historical | Workload.Temporal ->
      let clauses =
        List.map (fun v -> Printf.sprintf {|%s overlap "now"|} v) vars
      in
      " when " ^ String.concat " and " clauses

let text qid kind =
  let has_transaction_time =
    match kind with
    | Workload.Rollback | Workload.Temporal -> true
    | Workload.Static | Workload.Historical -> false
  in
  match qid with
  | Q01 -> Some "retrieve (h.id, h.seq) where h.id = 500"
  | Q02 -> Some "retrieve (i.id, i.seq) where i.id = 500"
  | Q03 ->
      if has_transaction_time then
        Some {|retrieve (h.id, h.seq) as of "08:00 1/1/80"|}
      else None
  | Q04 ->
      if has_transaction_time then
        Some {|retrieve (i.id, i.seq) as of "08:00 1/1/80"|}
      else None
  | Q05 ->
      Some
        ("retrieve (h.id, h.seq) where h.id = 500"
        ^ current_suffix kind ~vars:[ "h" ])
  | Q06 ->
      Some
        ("retrieve (i.id, i.seq) where i.id = 500"
        ^ current_suffix kind ~vars:[ "i" ])
  | Q07 ->
      Some
        ("retrieve (h.id, h.seq) where h.amount = 69400"
        ^ current_suffix kind ~vars:[ "h" ])
  | Q08 ->
      Some
        ("retrieve (i.id, i.seq) where i.amount = 73700"
        ^ current_suffix kind ~vars:[ "i" ])
  | Q09 -> (
      let base = "retrieve (h.id, i.id, i.amount) where h.id = i.amount" in
      match kind with
      | Workload.Static -> Some base
      | Workload.Rollback -> Some (base ^ {| as of "now"|})
      | Workload.Historical | Workload.Temporal ->
          Some (base ^ {| when h overlap i and i overlap "now"|}))
  | Q10 -> (
      let base = "retrieve (i.id, h.id, h.amount) where i.id = h.amount" in
      match kind with
      | Workload.Static -> Some base
      | Workload.Rollback -> Some (base ^ {| as of "now"|})
      | Workload.Historical | Workload.Temporal ->
          Some (base ^ {| when h overlap i and h overlap "now"|}))
  | Q11 ->
      if kind = Workload.Temporal then
        Some
          {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
            valid from start of h to end of i
            when start of h precede i
            as of "4:00 1/1/80"|}
      else None
  | Q12 ->
      if kind = Workload.Temporal then
        Some
          {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
            valid from start of (h overlap i) to end of (h extend i)
            where h.id = 500 and i.amount = 73700
            when h overlap i
            as of "now"|}
      else None
