(** The paper's analytical cost model (section 5.3):

    {v cost(n) = fixed + variable * (1 + growth_rate * n) v}

    where [n] is the average update count, the {e fixed} cost covers work
    independent of the update count (ISAM directory traversal, small
    temporaries), the {e variable} cost is the rest of the cost at [n = 0],
    and the {e growth rate} depends only on the database type and loading
    factor:

    - 0 for a static database,
    - the loading factor for rollback and historical databases,
    - twice the loading factor for a temporal database. *)

val growth_rate : Workload.kind -> loading:int -> float

type decomposition = { fixed : float; variable : float; rate : float }

val decompose :
  kind:Workload.kind ->
  loading:int ->
  cost0:int ->
  cost_n:int ->
  n:int ->
  decomposition
(** Recovers fixed and variable costs from two measurements using the
    type-determined growth rate: [variable = slope / rate] (or the whole
    [cost0] when the rate is 0) and [fixed = cost0 - variable]. *)

val predict : decomposition -> int -> float
(** [predict d n] is the modelled cost at update count [n]. *)

val relative_error : predicted:float -> measured:int -> float
