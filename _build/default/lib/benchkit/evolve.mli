(** Database evolution (paper, sections 5.1 and 5.4).

    Uniform evolution replaces every current version once per round
    ("incrementing the value of the seq attribute in each of the current
    versions"), raising the average update count by one.  The non-uniform
    variant repeatedly updates a single tuple so that the average update
    count rises by one per 1024 replacements — the maximum-variance case
    of section 5.4. *)

val uniform_round : Workload.t -> round:int -> unit
(** Runs one uniform update round: sets the clock to a fresh instant
    (1980-03-01 + round days), then replaces every current version of both
    relations once. *)

val non_uniform_round : Workload.t -> round:int -> key:int -> unit
(** Replaces the single tuple [key] of the hashed relation 1024 times (one
    clock tick apart), raising its average update count by one — the
    paper's section 5.4 studies hashed access under this maximum-variance
    skew.  (Each replacement re-reads the tuple's ever-growing overflow
    chain: the O(n^2) update cost the paper notes.) *)

val hashed_access_cost : Workload.t -> key:int -> int
(** Pages read by a hashed access to one key of [h] (Q01's operation),
    measured cold through the storage layer. *)

val measure_query : Workload.t -> string -> int
(** Input cost (pages read) of one TQuel query, measured cold: buffers
    emptied and counters reset first.  Raises [Failure] on errors. *)

val measure_query_result : Workload.t -> string -> int * int
(** (input pages, result rows). *)

val sizes : Workload.t -> int * int
(** Current (h, i) file sizes in pages. *)
