let growth_rate kind ~loading =
  let lf = float_of_int loading /. 100. in
  match (kind : Workload.kind) with
  | Workload.Static -> 0.
  | Workload.Rollback | Workload.Historical -> lf
  | Workload.Temporal -> 2. *. lf

type decomposition = { fixed : float; variable : float; rate : float }

let decompose ~kind ~loading ~cost0 ~cost_n ~n =
  let rate = growth_rate kind ~loading in
  let slope = float_of_int (cost_n - cost0) /. float_of_int n in
  let variable =
    if rate = 0. then float_of_int cost0 else slope /. rate
  in
  let fixed = float_of_int cost0 -. variable in
  { fixed; variable; rate }

let predict d n =
  d.fixed +. (d.variable *. (1. +. (d.rate *. float_of_int n)))

let relative_error ~predicted ~measured =
  if measured = 0 then Float.abs predicted
  else Float.abs (predicted -. float_of_int measured) /. float_of_int measured
