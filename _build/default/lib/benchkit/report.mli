(** Plain-text tables and ASCII graphs for the benchmark reports. *)

val table : ?title:string -> header:string list -> string list list -> string
(** A bordered, column-aligned table. *)

val plot :
  ?width:int ->
  ?height:int ->
  title:string ->
  series:(string * (int * int) list) list ->
  unit ->
  string
(** An ASCII chart of one or more (x, y) series (Figure 8's graphs).  Each
    series is marked with its own letter; the legend maps letters to
    labels. *)

val centi : float -> string
(** A float with two decimals. *)
