lib/benchkit/report.mli:
