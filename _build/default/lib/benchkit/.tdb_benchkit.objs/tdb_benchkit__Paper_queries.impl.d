lib/benchkit/paper_queries.ml: List Printf String Workload
