lib/benchkit/evolve.ml: List Printf Tdb_core Tdb_query Tdb_relation Tdb_storage Tdb_time Workload
