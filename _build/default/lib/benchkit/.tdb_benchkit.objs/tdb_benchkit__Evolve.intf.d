lib/benchkit/evolve.mli: Workload
