lib/benchkit/paper_queries.mli: Workload
