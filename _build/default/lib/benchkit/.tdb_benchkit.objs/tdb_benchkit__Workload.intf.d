lib/benchkit/workload.mli: Tdb_core Tdb_relation Tdb_storage Tdb_time
