lib/benchkit/cost_model.mli: Workload
