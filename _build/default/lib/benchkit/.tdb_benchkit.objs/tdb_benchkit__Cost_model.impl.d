lib/benchkit/cost_model.ml: Float Workload
