lib/benchkit/workload.ml: Array Char List Option Random String Tdb_core Tdb_relation Tdb_storage Tdb_time
