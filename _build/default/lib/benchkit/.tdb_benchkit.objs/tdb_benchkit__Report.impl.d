lib/benchkit/report.ml: Array Buffer List Printf String
