module Disk = Tdb_storage.Disk
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Isam_file = Tdb_storage.Isam_file
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type

(* 124-byte records (temporal tuple): 8 per page. *)
let record_size = 124

let record k =
  let b = Bytes.make record_size '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int k);
  b

let key_of b = Value.Int (Int32.to_int (Bytes.get_int32_be b 0))

let build ?(fillfactor = 100) keys =
  let disk = Disk.create_mem () in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create disk stats in
  let t =
    Isam_file.build pool ~record_size ~key_of ~key_type:Attr_type.I4
      ~fillfactor (List.map record keys)
  in
  (t, stats, pool)

let test_paper_sizing_100 () =
  (* 1024 temporal tuples at 100%: 128 data pages + 1 directory page = 129,
     exactly the paper's Figure 5. *)
  let t, _, _ = build (List.init 1024 (fun i -> i)) in
  Alcotest.(check int) "128 data pages" 128 (Isam_file.data_pages t);
  Alcotest.(check int) "1 directory page" 1 (Isam_file.directory_pages t);
  Alcotest.(check int) "height 1" 1 (Isam_file.directory_height t);
  Alcotest.(check int) "129 total" 129 (Isam_file.npages t)

let test_paper_sizing_50 () =
  (* At 50%: 256 data pages, two directory levels (2 leaf + 1 root = 3
     pages), 259 total - the paper's Figure 5 for I at 50% loading. *)
  let t, _, _ = build ~fillfactor:50 (List.init 1024 (fun i -> i)) in
  Alcotest.(check int) "256 data pages" 256 (Isam_file.data_pages t);
  Alcotest.(check int) "height 2" 2 (Isam_file.directory_height t);
  Alcotest.(check int) "3 directory pages" 3 (Isam_file.directory_pages t);
  Alcotest.(check int) "259 total" 259 (Isam_file.npages t)

let test_lookup_cost () =
  (* ISAM access at 100%: 1 directory page + 1 data page = 2 reads (Q02's
     cost at update count 0). *)
  let t, stats, pool = build (List.init 1024 (fun i -> i)) in
  Buffer_pool.invalidate pool;
  Io_stats.reset stats;
  let found = ref 0 in
  Isam_file.lookup t (Value.Int 500) (fun _ _ -> incr found);
  Alcotest.(check int) "found the key" 1 !found;
  Alcotest.(check int) "2 page reads" 2 (Io_stats.reads stats);
  (* At 50% the directory is two levels: 2 + 1 = 3 reads. *)
  let t50, stats50, pool50 = build ~fillfactor:50 (List.init 1024 (fun i -> i)) in
  Buffer_pool.invalidate pool50;
  Io_stats.reset stats50;
  Isam_file.lookup t50 (Value.Int 500) (fun _ _ -> ());
  Alcotest.(check int) "3 page reads at 50%" 3 (Io_stats.reads stats50)

let test_lookup_all_keys () =
  let keys = List.init 300 (fun i -> i * 2) in
  let t, _, _ = build keys in
  List.iter
    (fun k ->
      let found = ref 0 in
      Isam_file.lookup t (Value.Int k) (fun _ _ -> incr found);
      Alcotest.(check int) (Printf.sprintf "key %d" k) 1 !found)
    keys;
  (* Keys that fall between stored keys or outside the range. *)
  List.iter
    (fun k ->
      let found = ref 0 in
      Isam_file.lookup t (Value.Int k) (fun _ _ -> incr found);
      Alcotest.(check int) (Printf.sprintf "absent key %d" k) 0 !found)
    [ -5; 1; 599; 10000 ]

let test_unsorted_input () =
  let keys = [ 42; 7; 99; 1; 63; 28 ] in
  let t, _, _ = build keys in
  let seen = ref [] in
  Isam_file.iter t (fun _ r ->
      match key_of r with Value.Int k -> seen := k :: !seen | _ -> ());
  Alcotest.(check (list int)) "iter is key-ordered after build"
    (List.sort compare keys) (List.rev !seen)

let test_insert_goes_to_key_page () =
  let t, _, _ = build (List.init 64 (fun i -> i)) in
  (* 8 full data pages; key 17 belongs to page 2, which is full at 100%
     loading, so the new version must land in page 2's overflow chain. *)
  let tid = Isam_file.insert t (record 17) in
  let chain = Tdb_storage.Pfile.chain_pages (Isam_file.pfile t) ~head:2 in
  Alcotest.(check bool) "inserted into page 2's chain" true
    (List.mem tid.Tdb_storage.Tid.page chain);
  Alcotest.(check int) "chain grew to 2 pages" 2 (List.length chain);
  let found = ref 0 in
  Isam_file.lookup t (Value.Int 17) (fun _ _ -> incr found);
  Alcotest.(check int) "both versions found" 2 !found

let test_overflow_chain_growth () =
  (* Version scan cost 1 (dir) + 1 (data) + 2n (overflow) - Q02's shape. *)
  let t, stats, pool = build (List.init 8 (fun i -> i)) in
  for round = 1 to 4 do
    for k = 0 to 7 do
      ignore (Isam_file.insert t (record k));
      ignore (Isam_file.insert t (record k))
    done;
    Buffer_pool.invalidate pool;
    Io_stats.reset stats;
    Isam_file.lookup t (Value.Int 3) (fun _ _ -> ());
    Alcotest.(check int)
      (Printf.sprintf "after %d rounds" round)
      (2 + (2 * round))
      (Io_stats.reads stats)
  done

let test_scan_skips_directory () =
  let t, stats, pool = build (List.init 1024 (fun i -> i)) in
  Buffer_pool.invalidate pool;
  Io_stats.reset stats;
  let n = ref 0 in
  Isam_file.iter t (fun _ _ -> incr n);
  Alcotest.(check int) "sees all records" 1024 !n;
  Alcotest.(check int) "reads only the 128 data pages" 128 (Io_stats.reads stats)

let test_iter_range () =
  let t, _, _ = build (List.init 200 (fun i -> i)) in
  let seen = ref [] in
  Isam_file.iter_range t ~lo:(Value.Int 50) ~hi:(Value.Int 59) (fun _ r ->
      match key_of r with Value.Int k -> seen := k :: !seen | _ -> ());
  Alcotest.(check (list int)) "inclusive range"
    (List.init 10 (fun i -> 50 + i))
    (List.rev !seen);
  let below = ref 0 in
  Isam_file.iter_range t ~hi:(Value.Int 2) (fun _ _ -> incr below);
  Alcotest.(check int) "open lower bound" 3 !below;
  let above = ref 0 in
  Isam_file.iter_range t ~lo:(Value.Int 197) (fun _ _ -> incr above);
  Alcotest.(check int) "open upper bound" 3 !above

let test_empty_build () =
  let t, _, _ = build [] in
  Alcotest.(check int) "one data page for inserts" 1 (Isam_file.data_pages t);
  let tid = Isam_file.insert t (record 5) in
  Alcotest.(check int) "insert lands on page 0" 0 tid.Tdb_storage.Tid.page;
  let found = ref 0 in
  Isam_file.lookup t (Value.Int 5) (fun _ _ -> incr found);
  Alcotest.(check int) "found" 1 !found

let test_three_level_directory () =
  (* Force height 3: > 170*170 data pages would need 29k+ records; instead
     use a wider key so the directory fanout is small.  A c200 key gives
     fanout (1020 / 202) = 5; 30 data pages need ceil(30/5)=6 + 2 + 1
     levels. *)
  let record_size = 1000 in
  let record k =
    let b = Bytes.make record_size '\000' in
    Bytes.set_int32_be b 0 (Int32.of_int k);
    b
  in
  let key_of b =
    Value.Str (Printf.sprintf "%08ld" (Bytes.get_int32_be b 0))
  in
  let disk = Disk.create_mem () in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create disk stats in
  let t =
    Isam_file.build pool ~record_size ~key_of ~key_type:(Attr_type.C 200)
      ~fillfactor:100
      (List.map record (List.init 30 (fun i -> i)))
  in
  (* 1000-byte records: 1 per page -> 30 data pages; fanout 5 -> levels of
     6 and 2 pages, then a root: height 3. *)
  Alcotest.(check int) "30 data pages" 30 (Isam_file.data_pages t);
  Alcotest.(check int) "height 3" 3 (Isam_file.directory_height t);
  List.iter
    (fun k ->
      let found = ref 0 in
      Isam_file.lookup t (Value.Str (Printf.sprintf "%08d" k)) (fun _ _ ->
          incr found);
      Alcotest.(check int) (Printf.sprintf "deep key %d" k) 1 !found)
    [ 0; 7; 15; 29 ]

let prop_multiset_preserved =
  QCheck2.Test.make ~name:"isam: scan = multiset of inserts" ~count:30
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 300) (int_range 0 100))
        (oneofl [ 50; 75; 100 ]))
    (fun (keys, ff) ->
      let t, _, _ = build ~fillfactor:ff keys in
      let seen = ref [] in
      Isam_file.iter t (fun _ r ->
          match key_of r with Value.Int k -> seen := k :: !seen | _ -> ());
      List.sort compare !seen = List.sort compare keys)

let prop_lookup_complete_after_inserts =
  QCheck2.Test.make ~name:"isam: lookup complete after post-build inserts"
    ~count:30
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 150) (int_range 0 50))
        (list_size (int_range 0 100) (int_range 0 50)))
    (fun (initial, extra) ->
      let t, _, _ = build initial in
      List.iter (fun k -> ignore (Isam_file.insert t (record k))) extra;
      let all = initial @ extra in
      List.for_all
        (fun k ->
          let expected = List.length (List.filter (( = ) k) all) in
          let found = ref 0 in
          Isam_file.lookup t (Value.Int k) (fun _ _ -> incr found);
          !found = expected)
        (List.sort_uniq compare all))

let suites =
  [
    ( "isam_file",
      [
        Alcotest.test_case "paper sizing 100%" `Quick test_paper_sizing_100;
        Alcotest.test_case "paper sizing 50%" `Quick test_paper_sizing_50;
        Alcotest.test_case "lookup cost" `Quick test_lookup_cost;
        Alcotest.test_case "lookup all keys" `Quick test_lookup_all_keys;
        Alcotest.test_case "unsorted input" `Quick test_unsorted_input;
        Alcotest.test_case "insert goes to key page" `Quick
          test_insert_goes_to_key_page;
        Alcotest.test_case "overflow chain growth (Q02 shape)" `Quick
          test_overflow_chain_growth;
        Alcotest.test_case "scan skips directory" `Quick test_scan_skips_directory;
        Alcotest.test_case "iter_range" `Quick test_iter_range;
        Alcotest.test_case "empty build" `Quick test_empty_build;
        Alcotest.test_case "three-level directory" `Quick test_three_level_directory;
        QCheck_alcotest.to_alcotest prop_multiset_preserved;
        QCheck_alcotest.to_alcotest prop_lookup_complete_after_inserts;
      ] );
  ]
