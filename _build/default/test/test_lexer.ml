module Lexer = Tdb_tquel.Lexer
module Token = Tdb_tquel.Token

let tokens src =
  match Lexer.tokenize src with
  | Ok l -> List.map (fun p -> p.Lexer.token) l
  | Error e -> Alcotest.failf "lex %S: %s" src e

let test_keywords_and_idents () =
  Alcotest.(check bool) "keywords case-insensitive" true
    (tokens "RETRIEVE Retrieve retrieve"
    = [ Token.Kw "retrieve"; Token.Kw "retrieve"; Token.Kw "retrieve" ]);
  Alcotest.(check bool) "identifiers lower-cased" true
    (tokens "Temporal_h" = [ Token.Ident "temporal_h" ])

let test_paper_query () =
  (* Q12's text must lex fully. *)
  let src =
    {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
      valid from start of (h overlap i) to end of (h extend i)
      where h.id = 500 and i.amount = 73700
      when h overlap i
      as of "now"|}
  in
  let ts = tokens src in
  Alcotest.(check bool) "nonempty" true (List.length ts > 30);
  Alcotest.(check bool) "contains as" true (List.mem (Token.Kw "as") ts);
  Alcotest.(check bool) "contains string" true (List.mem (Token.String_lit "now") ts)

let test_numbers () =
  Alcotest.(check bool) "int" true (tokens "73700" = [ Token.Int_lit 73700 ]);
  Alcotest.(check bool) "float" true (tokens "3.25" = [ Token.Float_lit 3.25 ]);
  Alcotest.(check bool) "int dot ident stays separate" true
    (tokens "h.id" = [ Token.Ident "h"; Token.Dot; Token.Ident "id" ])

let test_strings () =
  Alcotest.(check bool) "simple" true
    (tokens {|"08:00 1/1/80"|} = [ Token.String_lit "08:00 1/1/80" ]);
  Alcotest.(check bool) "escapes" true
    (tokens {|"a\"b"|} = [ Token.String_lit {|a"b|} ]);
  match Lexer.tokenize {|"unterminated|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated string accepted"

let test_operators () =
  Alcotest.(check bool) "all comparison operators" true
    (tokens "= != < <= > >= <>"
    = Token.[ Equal; Not_equal; Less; Less_equal; Greater; Greater_equal; Not_equal ])

let test_comments () =
  Alcotest.(check bool) "comment skipped" true
    (tokens "a /* hello */ b" = [ Token.Ident "a"; Token.Ident "b" ]);
  Alcotest.(check bool) "nested comments" true
    (tokens "a /* x /* y */ z */ b" = [ Token.Ident "a"; Token.Ident "b" ]);
  match Lexer.tokenize "a /* no end" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated comment accepted"

let contains_substring s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

let test_error_position () =
  match Lexer.tokenize "abc\n  @" with
  | Error e ->
      Alcotest.(check bool) "mentions line 2" true (contains_substring e "line 2")
  | Ok _ -> Alcotest.fail "bad character accepted"

let suites =
  [
    ( "lexer",
      [
        Alcotest.test_case "keywords and idents" `Quick test_keywords_and_idents;
        Alcotest.test_case "paper query" `Quick test_paper_query;
        Alcotest.test_case "numbers" `Quick test_numbers;
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "operators" `Quick test_operators;
        Alcotest.test_case "comments" `Quick test_comments;
        Alcotest.test_case "error position" `Quick test_error_position;
      ] );
  ]
