open Tdb_tquel.Ast
module Parser = Tdb_tquel.Parser
module Pretty = Tdb_tquel.Pretty

let parse src =
  match Parser.parse_statement src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse %S: %s" src e

let parse_err src =
  match Parser.parse_statement src with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" src
  | Error _ -> ()

let test_range () =
  match parse "range of h is temporal_h" with
  | Range { var = "h"; rel = "temporal_h" } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_q01 () =
  match parse "retrieve (h.id, h.seq) where h.id = 500" with
  | Retrieve r ->
      Alcotest.(check int) "two targets" 2 (List.length r.targets);
      Alcotest.(check bool) "names default to attrs" true
        (List.map (fun t -> t.out_name) r.targets = [ Some "id"; Some "seq" ]);
      Alcotest.(check bool) "where present" true (r.where <> None);
      Alcotest.(check bool) "no when" true (r.when_ = None)
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_q03_as_of () =
  match parse {|retrieve (h.id, h.seq) as of "08:00 1/1/80"|} with
  | Retrieve { as_of = Some { at = "08:00 1/1/80"; through = None }; _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_q05_when () =
  match parse {|retrieve (h.id, h.seq) where h.id = 500 when h overlap "now"|} with
  | Retrieve { when_ = Some (Poverlap (Tvar "h", Tconst "now")); _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_q09_join () =
  match
    parse
      {|retrieve (h.id, i.id, i.amount)
        where h.id = i.amount
        when h overlap i and i overlap "now"|}
  with
  | Retrieve
      {
        when_ =
          Some (Pand (Poverlap (Tvar "h", Tvar "i"), Poverlap (Tvar "i", Tconst "now")));
        where = Some (Pcompare (Eq, Eattr ("h", "id"), Eattr ("i", "amount")));
        _;
      } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_q11_temporal_join () =
  match
    parse
      {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
        valid from start of h to end of i
        when start of h precede i
        as of "4:00 1/1/80"|}
  with
  | Retrieve
      {
        valid = Some (Valid_interval (Tstart_of (Tvar "h"), Tend_of (Tvar "i")));
        when_ = Some (Pprecede (Tstart_of (Tvar "h"), Tvar "i"));
        as_of = Some { at = "4:00 1/1/80"; _ };
        _;
      } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_q12_full () =
  match
    parse
      {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
        valid from start of (h overlap i) to end of (h extend i)
        where h.id = 500 and i.amount = 73700
        when h overlap i
        as of "now"|}
  with
  | Retrieve
      {
        valid =
          Some
            (Valid_interval
               (Tstart_of (Toverlap (Tvar "h", Tvar "i")),
                Tend_of (Textend (Tvar "h", Tvar "i"))));
        when_ = Some (Poverlap (Tvar "h", Tvar "i"));
        where = Some (Wand (_, _));
        as_of = Some { at = "now"; _ };
        _;
      } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_create_figure3 () =
  (* The paper's Figure 3, verbatim. *)
  match
    parse
      {|create persistent interval Temporal_h
          (id = i4, amount = i4, seq = i4, string = c96)|}
  with
  | Create c ->
      Alcotest.(check bool) "persistent" true c.persistent;
      Alcotest.(check bool) "interval" true
        (c.kind = Some Tdb_relation.Db_type.Interval);
      Alcotest.(check string) "name lower-cased" "temporal_h" c.rel;
      Alcotest.(check int) "4 attrs" 4 (List.length c.attrs);
      Alcotest.(check bool) "temporal type" true
        (db_type_of_create c
        = Tdb_relation.Db_type.Temporal Tdb_relation.Db_type.Interval)
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_create_variants () =
  let ty src =
    match parse src with
    | Create c -> db_type_of_create c
    | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)
  in
  Alcotest.(check bool) "static" true
    (ty "create s (x = i4)" = Tdb_relation.Db_type.Static);
  Alcotest.(check bool) "rollback" true
    (ty "create persistent r (x = i4)" = Tdb_relation.Db_type.Rollback);
  Alcotest.(check bool) "historical event" true
    (ty "create event e (x = i4)"
    = Tdb_relation.Db_type.Historical Tdb_relation.Db_type.Event)

let test_modify_figure3 () =
  match parse "modify Temporal_h to hash on id where fillfactor = 100" with
  | Modify { rel = "temporal_h"; organization = Org_hash; on_attr = Some "id";
             fillfactor = Some 100 } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_modifications () =
  (match parse "append to x (id = 5, amount = 2 + 3)" with
  | Append { rel = "x"; targets = [ _; _ ]; _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s));
  (match parse {|delete h where h.id = 5 when h overlap "now"|} with
  | Delete { var = "h"; where = Some _; when_ = Some _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s));
  (match parse {|replace h (seq = h.seq + 1) valid from "now" to "forever" where h.id = 3|} with
  | Replace { var = "h"; targets = [ _ ]; valid = Some _; where = Some _; _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s));
  match parse {|copy temporal_h from "/tmp/data.txt"|} with
  | Copy { rel = "temporal_h"; direction = Copy_from; path = "/tmp/data.txt" } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_retrieve_into () =
  match parse "retrieve into result (x = h.id)" with
  | Retrieve { into = Some "result"; _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_expression_precedence () =
  match parse "retrieve (x = h.a + h.b * 2 - h.c / 4)" with
  | Retrieve { targets = [ { value; _ } ]; _ } ->
      Alcotest.(check string) "precedence"
        "((h.a + (h.b * 2)) - (h.c / 4))" (Pretty.expr value)
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_where_precedence () =
  match parse "retrieve (x = h.a) where h.a = 1 or h.b = 2 and h.c = 3" with
  | Retrieve { where = Some (Wor (_, Wand (_, _))); _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_parenthesized_predicates () =
  (match parse "retrieve (x = h.a) where (h.a = 1 or h.b = 2) and h.c = 3" with
  | Retrieve { where = Some (Wand (Wor (_, _), _)); _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s));
  (* parens as arithmetic grouping must still work *)
  match parse "retrieve (x = h.a) where (h.a + 1) * 2 = 6" with
  | Retrieve { where = Some (Pcompare (Eq, _, _)); _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_when_not () =
  match parse {|retrieve (x = h.a) when not (h precede "1981")|} with
  | Retrieve { when_ = Some (Pnot (Pprecede (Tvar "h", Tconst "1981"))); _ } -> ()
  | s -> Alcotest.failf "wrong tree: %s" (Pretty.statement s)

let test_program () =
  match
    Parser.parse_program
      {|range of h is temporal_h;
        retrieve (h.id) where h.id = 500
        delete h|}
  with
  | Ok [ Range _; Retrieve _; Delete _ ] -> ()
  | Ok l -> Alcotest.failf "expected 3 statements, got %d" (List.length l)
  | Error e -> Alcotest.fail e

let test_errors () =
  parse_err "retrieve";
  parse_err "retrieve (h.id";
  parse_err "retrieve (h.id) where";
  parse_err "retrieve (h.id) when h";
  parse_err "retrieve (h.id) where h.id = ";
  parse_err "range of h temporal_h";
  parse_err "create (x = i4)";
  parse_err "modify x to btree on id";
  parse_err "retrieve (h.id) where h.id = 5 extra";
  parse_err "retrieve (h.id) where where h.id = 5"

(* Round trip: parse . pretty . parse = parse *)
let round_trip_sources =
  [
    "range of h is temporal_h";
    "retrieve (h.id, h.seq) where h.id = 500";
    {|retrieve (h.id, h.seq) as of "08:00 1/1/80"|};
    {|retrieve (h.id, i.id, i.amount) where h.id = i.amount when h overlap i and i overlap "now"|};
    {|retrieve (h.id, h.seq, i.id, i.seq, i.amount) valid from start of h to end of i when start of h precede i as of "4:00 1/1/80"|};
    {|retrieve (h.id, h.seq, i.id, i.seq, i.amount) valid from start of (h overlap i) to end of (h extend i) where h.id = 500 and i.amount = 73700 when h overlap i as of "now"|};
    "create persistent interval temporal_h (id = i4, amount = i4, seq = i4, string = c96)";
    "modify temporal_h to hash on id where fillfactor = 100";
    "append to x (id = 5)";
    {|replace h (seq = h.seq + 1) valid from "now" to "forever" where h.id = 3|};
    "delete h where h.id = 5";
    "destroy temporal_h";
    {|copy x into "/tmp/out.txt"|};
  ]

let test_round_trip () =
  List.iter
    (fun src ->
      let ast1 = parse src in
      let printed = Pretty.statement ast1 in
      let ast2 =
        match Parser.parse_statement printed with
        | Ok s -> s
        | Error e -> Alcotest.failf "re-parse of %S failed: %s" printed e
      in
      if ast1 <> ast2 then
        Alcotest.failf "round trip changed the tree for %S -> %S" src printed)
    round_trip_sources

let suites =
  [
    ( "parser",
      [
        Alcotest.test_case "range" `Quick test_range;
        Alcotest.test_case "Q01" `Quick test_q01;
        Alcotest.test_case "Q03 as-of" `Quick test_q03_as_of;
        Alcotest.test_case "Q05 when" `Quick test_q05_when;
        Alcotest.test_case "Q09 join" `Quick test_q09_join;
        Alcotest.test_case "Q11 temporal join" `Quick test_q11_temporal_join;
        Alcotest.test_case "Q12 all clauses" `Quick test_q12_full;
        Alcotest.test_case "create (Figure 3)" `Quick test_create_figure3;
        Alcotest.test_case "create variants" `Quick test_create_variants;
        Alcotest.test_case "modify (Figure 3)" `Quick test_modify_figure3;
        Alcotest.test_case "modifications" `Quick test_modifications;
        Alcotest.test_case "retrieve into" `Quick test_retrieve_into;
        Alcotest.test_case "expression precedence" `Quick test_expression_precedence;
        Alcotest.test_case "where precedence" `Quick test_where_precedence;
        Alcotest.test_case "parenthesized predicates" `Quick
          test_parenthesized_predicates;
        Alcotest.test_case "when not" `Quick test_when_not;
        Alcotest.test_case "program" `Quick test_program;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "pretty round trip" `Quick test_round_trip;
      ] );
  ]
