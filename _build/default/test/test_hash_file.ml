module Disk = Tdb_storage.Disk
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Hash_file = Tdb_storage.Hash_file
module Pfile = Tdb_storage.Pfile
module Value = Tdb_relation.Value

(* 124-byte records, the paper's temporal tuple size: 8 per page. *)
let record_size = 124

let record k =
  let b = Bytes.make record_size '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int k);
  b

let key_of b = Value.Int (Int32.to_int (Bytes.get_int32_be b 0))

let build ?(fillfactor = 100) keys =
  let disk = Disk.create_mem () in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create disk stats in
  let h =
    Hash_file.build pool ~record_size ~key_of ~fillfactor
      (List.map record keys)
  in
  (h, stats, pool)

let test_paper_primary_sizing () =
  (* 1024 temporal tuples at 100% loading: 128 primary buckets; total size
     close to the paper's 129 pages (a few overflow pages from hash
     collisions are expected and correct). *)
  let h, _, _ = build (List.init 1024 (fun i -> i)) in
  Alcotest.(check int) "128 buckets" 128 (Hash_file.buckets h);
  let n = Hash_file.npages h in
  Alcotest.(check bool)
    (Printf.sprintf "total size %d within 128..140" n)
    true
    (n >= 128 && n <= 140);
  (* 50% loading doubles the primary area. *)
  let h50, _, _ = build ~fillfactor:50 (List.init 1024 (fun i -> i)) in
  Alcotest.(check int) "256 buckets at 50%" 256 (Hash_file.buckets h50)

let test_lookup_finds_all_versions () =
  (* Multiple records share key 500, as versions of a tuple do. *)
  let keys = List.concat [ List.init 20 (fun i -> i); [ 500; 500; 500 ] ] in
  let h, _, _ = build keys in
  let found = ref 0 in
  Hash_file.lookup h (Value.Int 500) (fun _ _ -> incr found);
  Alcotest.(check int) "all three versions" 3 !found;
  let missing = ref 0 in
  Hash_file.lookup h (Value.Int 9999) (fun _ _ -> incr missing);
  Alcotest.(check int) "absent key" 0 !missing

let test_lookup_reads_whole_chain () =
  (* Hashed access reads the key's full bucket chain: 1 + overflow pages. *)
  let h, stats, pool = build (List.init 8 (fun i -> i * 8)) in
  (* one bucket (8 records, capacity 8) -> single page *)
  Alcotest.(check int) "one bucket" 1 (Hash_file.buckets h);
  for v = 1 to 16 do
    ignore (Hash_file.insert h (record (1000 + v)))
  done;
  (* now 24 records: 3 pages in the chain *)
  Buffer_pool.invalidate pool;
  Io_stats.reset stats;
  Hash_file.lookup h (Value.Int 0) (fun _ _ -> ());
  Alcotest.(check int) "reads all 3 chain pages" 3 (Io_stats.reads stats)

let test_version_chain_growth () =
  (* The paper's Q01 shape: with 8 tuples/page at 100% loading, each round
     of 2 new versions per tuple adds 2 pages to every bucket chain, so a
     version scan costs 1 + 2n pages. *)
  let h, stats, pool = build (List.init 8 (fun i -> i)) in
  Alcotest.(check int) "starts at one page" 1 (Hash_file.npages h);
  for round = 1 to 5 do
    for k = 0 to 7 do
      ignore (Hash_file.insert h (record k));
      ignore (Hash_file.insert h (record k))
    done;
    Buffer_pool.invalidate pool;
    Io_stats.reset stats;
    Hash_file.lookup h (Value.Int 0) (fun _ _ -> ());
    Alcotest.(check int)
      (Printf.sprintf "version scan after %d rounds" round)
      (1 + (2 * round))
      (Io_stats.reads stats)
  done

let test_scan_touches_every_page_once () =
  let h, stats, pool = build (List.init 200 (fun i -> i)) in
  Buffer_pool.invalidate pool;
  Io_stats.reset stats;
  let n = ref 0 in
  Hash_file.iter h (fun _ _ -> incr n);
  Alcotest.(check int) "sees every record" 200 !n;
  Alcotest.(check int) "scan reads = total pages" (Hash_file.npages h)
    (Io_stats.reads stats)

let test_update_delete () =
  let h, _, _ = build [ 1; 2; 3 ] in
  let tid = ref None in
  Hash_file.lookup h (Value.Int 2) (fun t _ -> tid := Some t);
  let tid = Option.get !tid in
  let r = Hash_file.read h tid in
  Bytes.set_int32_be r 4 77l;
  Hash_file.update h tid r;
  let updated = Hash_file.read h tid in
  Alcotest.(check int32) "update visible" 77l (Bytes.get_int32_be updated 4);
  Hash_file.delete h tid;
  let found = ref 0 in
  Hash_file.lookup h (Value.Int 2) (fun _ _ -> incr found);
  Alcotest.(check int) "deleted" 0 !found

let test_first_fit_fills_slack () =
  (* At 50% loading a bucket page starts half full; the next insertions
     fill the slack before any overflow page is allocated (Figure 8(b)). *)
  let h, _, _ = build ~fillfactor:50 [ 0; 8; 16; 24 ] in
  Alcotest.(check int) "one bucket" 1 (Hash_file.buckets h);
  Alcotest.(check int) "one page" 1 (Hash_file.npages h);
  for i = 1 to 4 do
    ignore (Hash_file.insert h (record (100 + i)))
  done;
  Alcotest.(check int) "slack absorbed 4 more records" 1 (Hash_file.npages h);
  ignore (Hash_file.insert h (record 200));
  Alcotest.(check int) "9th record overflows" 2 (Hash_file.npages h)

let test_tail_append_policy () =
  (* With tail-append, slack in earlier chain pages is never reused. *)
  let h, _, _ = build ~fillfactor:50 [ 0; 8; 16; 24 ] in
  Tdb_storage.Pfile.set_first_fit (Hash_file.pfile h) false;
  Alcotest.(check bool) "policy readable" false
    (Tdb_storage.Pfile.first_fit (Hash_file.pfile h));
  (* page 0 is half full, but the next insert that arrives when an overflow
     page already exists must go to the tail *)
  for i = 1 to 9 do
    ignore (Hash_file.insert h (record (100 + i)))
  done;
  (* 13 records: first-fit would need 2 pages; tail-append fills page 0
     only while it is the tail (first 4 inserts), then pages 1 (8) ... *)
  Alcotest.(check int) "keeps growing at the tail" 2 (Hash_file.npages h);
  let n = ref 0 in
  Hash_file.iter h (fun _ _ -> incr n);
  Alcotest.(check int) "no records lost" 13 !n;
  Tdb_storage.Pfile.set_first_fit (Hash_file.pfile h) true;
  ignore (Hash_file.insert h (record 999));
  Alcotest.(check int) "first-fit reuses slack again" 14
    (let n = ref 0 in Hash_file.iter h (fun _ _ -> incr n); !n)

let test_empty_build () =
  let h, _, _ = build [] in
  Alcotest.(check int) "one empty bucket" 1 (Hash_file.buckets h);
  let n = ref 0 in
  Hash_file.iter h (fun _ _ -> incr n);
  Alcotest.(check int) "empty scan" 0 !n

let test_bad_fillfactor () =
  Alcotest.(check bool) "fillfactor 0 rejected" true
    (try ignore (build ~fillfactor:0 [ 1 ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "fillfactor 101 rejected" true
    (try ignore (build ~fillfactor:101 [ 1 ]); false
     with Invalid_argument _ -> true)

let prop_multiset_preserved =
  QCheck2.Test.make ~name:"hash: scan = multiset of inserts" ~count:40
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 300) (int_range 0 100))
        (oneofl [ 50; 75; 100 ]))
    (fun (keys, ff) ->
      let h, _, _ = build ~fillfactor:ff keys in
      let seen = ref [] in
      Hash_file.iter h (fun _ r ->
          match key_of r with
          | Value.Int k -> seen := k :: !seen
          | _ -> ());
      List.sort compare !seen = List.sort compare keys)

let prop_lookup_complete =
  QCheck2.Test.make ~name:"hash: lookup finds every version of a key" ~count:40
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 30))
    (fun keys ->
      let h, _, _ = build keys in
      List.for_all
        (fun k ->
          let expected = List.length (List.filter (( = ) k) keys) in
          let found = ref 0 in
          Hash_file.lookup h (Value.Int k) (fun _ _ -> incr found);
          !found = expected)
        (List.sort_uniq compare keys))

let suites =
  [
    ( "hash_file",
      [
        Alcotest.test_case "paper primary sizing" `Quick test_paper_primary_sizing;
        Alcotest.test_case "lookup finds all versions" `Quick
          test_lookup_finds_all_versions;
        Alcotest.test_case "lookup reads whole chain" `Quick
          test_lookup_reads_whole_chain;
        Alcotest.test_case "version chain growth (Q01 shape)" `Quick
          test_version_chain_growth;
        Alcotest.test_case "scan touches every page once" `Quick
          test_scan_touches_every_page_once;
        Alcotest.test_case "update/delete" `Quick test_update_delete;
        Alcotest.test_case "first fit fills slack" `Quick test_first_fit_fills_slack;
        Alcotest.test_case "tail-append policy" `Quick test_tail_append_policy;
        Alcotest.test_case "empty build" `Quick test_empty_build;
        Alcotest.test_case "bad fillfactor" `Quick test_bad_fillfactor;
        QCheck_alcotest.to_alcotest prop_multiset_preserved;
        QCheck_alcotest.to_alcotest prop_lookup_complete;
      ] );
  ]
