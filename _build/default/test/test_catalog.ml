module Catalog = Tdb_core.Catalog
module Schema = Tdb_relation.Schema
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Relation_file = Tdb_storage.Relation_file

let attr name ty = { Schema.name; ty }

let sample_entries =
  [
    {
      Catalog.name = "plain";
      db_type = Db_type.Static;
      attrs = [ attr "k" Attr_type.I4 ];
      meta = Relation_file.Heap_meta;
    };
    {
      Catalog.name = "hashed";
      db_type = Db_type.Rollback;
      attrs = [ attr "k" Attr_type.I4; attr "s" (Attr_type.C 20) ];
      meta = Relation_file.Hash_meta { key_attr = 0; fillfactor = 50; buckets = 17 };
    };
    {
      Catalog.name = "indexed";
      db_type = Db_type.Temporal Db_type.Interval;
      attrs = [ attr "k" Attr_type.I4; attr "f" Attr_type.F8 ];
      meta =
        Relation_file.Isam_meta
          { key_attr = 0; fillfactor = 100; ndata = 128; levels = [ (128, 128) ] };
    };
    {
      Catalog.name = "deep_isam";
      db_type = Db_type.Historical Db_type.Event;
      attrs = [ attr "k" Attr_type.I4 ];
      meta =
        Relation_file.Isam_meta
          {
            key_attr = 0;
            fillfactor = 75;
            ndata = 300;
            levels = [ (300, 300); (302, 2) ];
          };
    };
  ]

let test_entry_round_trip () =
  List.iter
    (fun e ->
      match Catalog.decode_entry (Catalog.encode_entry e) with
      | Ok e' ->
          Alcotest.(check bool) e.Catalog.name true (e = e')
      | Error msg -> Alcotest.failf "%s: %s" e.Catalog.name msg)
    sample_entries

let test_file_round_trip () =
  let path = Filename.temp_file "tdb_catalog" ".tdb" in
  Catalog.save ~path sample_entries;
  (match Catalog.load ~path with
  | Ok entries -> Alcotest.(check bool) "all entries" true (entries = sample_entries)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_missing_file_is_empty () =
  match Catalog.load ~path:"/nonexistent/catalog.tdb" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "phantom entries"
  | Error msg -> Alcotest.fail msg

let test_corrupt_line () =
  match Catalog.decode_entry "not a catalog line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_schema_of_entry () =
  let e = List.nth sample_entries 2 in
  let schema = Catalog.schema_of_entry e in
  Alcotest.(check int) "user attrs + 4 implicit" 6 (Schema.arity schema);
  Alcotest.(check bool) "temporal" true
    (Db_type.equal (Schema.db_type schema) (Db_type.Temporal Db_type.Interval))

let test_spacey_attr_names () =
  (* implicit-style names with spaces must survive the codec *)
  let e =
    {
      Catalog.name = "odd";
      db_type = Db_type.Static;
      attrs = [ attr "first value" Attr_type.I4 ];
      meta = Relation_file.Heap_meta;
    }
  in
  match Catalog.decode_entry (Catalog.encode_entry e) with
  | Ok e' -> Alcotest.(check bool) "round trip" true (e = e')
  | Error msg -> Alcotest.fail msg

let suites =
  [
    ( "catalog",
      [
        Alcotest.test_case "entry round trip" `Quick test_entry_round_trip;
        Alcotest.test_case "file round trip" `Quick test_file_round_trip;
        Alcotest.test_case "missing file" `Quick test_missing_file_is_empty;
        Alcotest.test_case "corrupt line" `Quick test_corrupt_line;
        Alcotest.test_case "schema of entry" `Quick test_schema_of_entry;
        Alcotest.test_case "attr names with spaces" `Quick test_spacey_attr_names;
      ] );
  ]
