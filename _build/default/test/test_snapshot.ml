(* Bitemporal snapshot consistency: after an arbitrary sequence of
   modifications, rolling the database back to any recorded instant must
   reproduce exactly the state that held then.

   This is the semantic heart of transaction time - "the ability to
   rollback to the past state of a database" (paper, section 2) - checked
   against an independent model under randomized workloads. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))

let rows db src =
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; _ } -> tuples
  | _ -> Alcotest.fail "expected rows"

type op = Append of int * int | Replace of int * int | Delete of int

let gen_ops rng n =
  List.init n (fun _ ->
      let k = Random.State.int rng 8 in
      match Random.State.int rng 3 with
      | 0 -> Append (k, Random.State.int rng 1000)
      | 1 -> Replace (k, Random.State.int rng 1000)
      | _ -> Delete k)

(* The model: a multiset of (k, v) currently believed valid. *)
let apply_model model = function
  | Append (k, v) -> (k, v) :: model
  | Replace (k, v) ->
      (* replace rewrites every current version of k *)
      List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) model
  | Delete k -> List.filter (fun (k', _) -> k' <> k) model

let apply_db db = function
  | Append (k, v) -> exec db (Printf.sprintf "append to r (k = %d, v = %d)" k v)
  | Replace (k, v) ->
      exec db (Printf.sprintf "replace r (v = %d) where r.k = %d" v k)
  | Delete k -> exec db (Printf.sprintf "delete r where r.k = %d" k)

let state_query kind t =
  match kind with
  | `Rollback -> Printf.sprintf {|retrieve (r.k, r.v) as of "%s"|} t
  | `Temporal ->
      Printf.sprintf {|retrieve (r.k, r.v) when r overlap "%s" as of "%s"|} t t

let normalize tuples =
  List.sort compare
    (List.map
       (fun tu ->
         match (tu.(0), tu.(1)) with
         | Value.Int k, Value.Int v -> (k, v)
         | _ -> Alcotest.fail "row shape")
       tuples)

let run_scenario ~kind ~seed ~nops =
  let rng = Random.State.make [| seed |] in
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-01-01") ()) in
  let create =
    match kind with
    | `Rollback -> "create persistent r (k = i4, v = i4)"
    | `Temporal -> "create persistent interval r (k = i4, v = i4)"
  in
  exec db create;
  exec db "range of r is r";
  let snapshots = ref [] in
  let model = ref [] in
  List.iter
    (fun op ->
      apply_db db op;
      model := apply_model !model op;
      (* occasionally remember the instant and the state *)
      if Random.State.int rng 3 = 0 then
        snapshots :=
          (Chronon.to_string (Database.now db), List.sort compare !model)
          :: !snapshots)
    (gen_ops rng nops);
  (* now check every remembered instant against the rolled-back database *)
  List.iter
    (fun (t, expected) ->
      let got = normalize (rows db (state_query kind t)) in
      if got <> expected then
        Alcotest.failf
          "snapshot divergence (%s) at %s:\n  db:    %s\n  model: %s"
          (match kind with `Rollback -> "rollback" | `Temporal -> "temporal")
          t
          (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%d=%d" k v) got))
          (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%d=%d" k v) expected)))
    !snapshots;
  List.length !snapshots

let test_rollback_snapshots () =
  let checked = ref 0 in
  for seed = 1 to 10 do
    checked := !checked + run_scenario ~kind:`Rollback ~seed ~nops:60
  done;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d snapshots" !checked)
    true (!checked > 50)

let test_temporal_snapshots () =
  let checked = ref 0 in
  for seed = 100 to 109 do
    checked := !checked + run_scenario ~kind:`Temporal ~seed ~nops:60
  done;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d snapshots" !checked)
    true (!checked > 50)

let test_snapshots_survive_modify () =
  (* reorganizing the file must not change any rolled-back state *)
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-01-01") ()) in
  exec db "create persistent r (k = i4, v = i4)";
  exec db "range of r is r";
  let rng = Random.State.make [| 77 |] in
  let model = ref [] in
  let mid = ref ("", []) in
  List.iteri
    (fun i op ->
      apply_db db op;
      model := apply_model !model op;
      if i = 20 then mid := (Chronon.to_string (Database.now db), List.sort compare !model))
    (gen_ops rng 40);
  let t, expected = !mid in
  let before = normalize (rows db (state_query `Rollback t)) in
  Alcotest.(check bool) "pre-modify state correct" true (before = expected);
  exec db "modify r to hash on k where fillfactor = 50";
  let after_hash = normalize (rows db (state_query `Rollback t)) in
  exec db "modify r to isam on k";
  let after_isam = normalize (rows db (state_query `Rollback t)) in
  Alcotest.(check bool) "hash preserves history" true (after_hash = expected);
  Alcotest.(check bool) "isam preserves history" true (after_isam = expected)

let suites =
  [
    ( "snapshot_consistency",
      [
        Alcotest.test_case "rollback databases" `Quick test_rollback_snapshots;
        Alcotest.test_case "temporal databases" `Quick test_temporal_snapshots;
        Alcotest.test_case "survives modify" `Quick test_snapshots_survive_modify;
      ] );
  ]
