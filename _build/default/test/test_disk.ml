module Disk = Tdb_storage.Disk
module Page = Tdb_storage.Page

let test_mem_basics () =
  let d = Disk.create_mem () in
  Alcotest.(check int) "empty" 0 (Disk.npages d);
  let a = Disk.allocate d in
  let b = Disk.allocate d in
  Alcotest.(check (list int)) "dense ids" [ 0; 1 ] [ a; b ];
  let p = Page.create () in
  Bytes.set p 100 'Z';
  Disk.write_page d a p;
  Alcotest.(check char) "read back" 'Z' (Bytes.get (Disk.read_page d a) 100);
  (* pages are copied on both sides: mutating the caller's buffer after a
     write must not leak into the store *)
  Bytes.set p 100 '!';
  Alcotest.(check char) "isolated" 'Z' (Bytes.get (Disk.read_page d a) 100);
  let r = Disk.read_page d a in
  Bytes.set r 100 '?';
  Alcotest.(check char) "reads are copies" 'Z' (Bytes.get (Disk.read_page d a) 100)

let test_bad_ids () =
  let d = Disk.create_mem () in
  ignore (Disk.allocate d);
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative id" true (raises (fun () -> ignore (Disk.read_page d (-1))));
  Alcotest.(check bool) "past the end" true (raises (fun () -> ignore (Disk.read_page d 1)));
  Alcotest.(check bool) "write past the end" true
    (raises (fun () -> Disk.write_page d 7 (Page.create ())));
  Alcotest.(check bool) "wrong page size" true
    (raises (fun () -> Disk.write_page d 0 (Bytes.create 10)))

let test_truncate () =
  let d = Disk.create_mem () in
  for _ = 1 to 5 do
    ignore (Disk.allocate d)
  done;
  Disk.truncate d;
  Alcotest.(check int) "empty again" 0 (Disk.npages d);
  Alcotest.(check int) "ids restart" 0 (Disk.allocate d)

let test_file_backend () =
  let path = Filename.temp_file "tdb_disk" ".pages" in
  let d = Disk.open_file path in
  Alcotest.(check bool) "file backed" true (Disk.is_file_backed d);
  let a = Disk.allocate d in
  let p = Page.create () in
  Bytes.set p 0 'F';
  Disk.write_page d a p;
  Disk.close d;
  let d2 = Disk.open_file path in
  Alcotest.(check int) "page survived" 1 (Disk.npages d2);
  Alcotest.(check char) "content survived" 'F' (Bytes.get (Disk.read_page d2 0) 0);
  Disk.truncate d2;
  Disk.close d2;
  Alcotest.(check int) "truncated on disk" 0
    (let d3 = Disk.open_file path in
     let n = Disk.npages d3 in
     Disk.close d3;
     n);
  Sys.remove path

let test_unaligned_file_rejected () =
  let path = Filename.temp_file "tdb_disk" ".pages" in
  let oc = open_out path in
  output_string oc "not a page multiple";
  close_out oc;
  (match Disk.open_file path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unaligned file accepted");
  Sys.remove path

let suites =
  [
    ( "disk",
      [
        Alcotest.test_case "mem basics" `Quick test_mem_basics;
        Alcotest.test_case "bad ids" `Quick test_bad_ids;
        Alcotest.test_case "truncate" `Quick test_truncate;
        Alcotest.test_case "file backend" `Quick test_file_backend;
        Alcotest.test_case "unaligned file rejected" `Quick
          test_unaligned_file_rejected;
      ] );
  ]
