module Chronon = Tdb_time.Chronon

let check = Alcotest.(check int)
let check_str = Alcotest.(check string)

let civil y mo d h mi s =
  Chronon.of_civil
    { Chronon.year = y; month = mo; day = d; hour = h; minute = mi; second = s }

let test_epoch () =
  check "epoch is zero" 0 (Chronon.to_seconds (civil 1970 1 1 0 0 0))

let test_known_instants () =
  (* 1980-01-01 00:00:00 = 3652 days after the epoch (leap years 1972 and
     1976 within 1970..1979). *)
  check "1980-01-01" (3652 * 86400) (Chronon.to_seconds (civil 1980 1 1 0 0 0));
  check "1980-01-01 08:00" ((3652 * 86400) + (8 * 3600))
    (Chronon.to_seconds (civil 1980 1 1 8 0 0));
  (* 1980 is a leap year: Feb 29 exists. *)
  check "1980-02-29 + 1 day = 1980-03-01"
    (Chronon.to_seconds (civil 1980 3 1 0 0 0))
    (Chronon.to_seconds (Chronon.add_seconds (civil 1980 2 29 0 0 0) 86400))

let test_civil_round_trip () =
  List.iter
    (fun (y, mo, d, h, mi, s) ->
      let t = civil y mo d h mi s in
      let c = Chronon.to_civil t in
      Alcotest.(check (list int))
        (Printf.sprintf "%d-%d-%d" y mo d)
        [ y; mo; d; h; mi; s ]
        [ c.Chronon.year; c.month; c.day; c.hour; c.minute; c.second ])
    [
      (1970, 1, 1, 0, 0, 0);
      (1980, 1, 1, 8, 0, 0);
      (1980, 2, 15, 23, 59, 59);
      (1981, 12, 31, 0, 0, 1);
      (2000, 2, 29, 12, 30, 30);
      (2038, 1, 19, 3, 14, 7);
      (1901, 12, 13, 20, 45, 52);
    ]

let test_forever () =
  Alcotest.(check bool) "forever is forever" true (Chronon.is_forever Chronon.forever);
  Alcotest.(check bool)
    "ordinary time is not forever" false
    (Chronon.is_forever (civil 1980 1 1 0 0 0));
  check_str "prints as forever" "forever" (Chronon.to_string Chronon.forever);
  check_str "prints as beginning" "beginning" (Chronon.to_string Chronon.beginning);
  Alcotest.(check bool)
    "succ saturates" true
    (Chronon.equal (Chronon.succ Chronon.forever) Chronon.forever)

let test_out_of_range () =
  Alcotest.check_raises "too large" (Invalid_argument
    "Chronon.of_seconds: 2147483648 outside 32-bit range") (fun () ->
      ignore (Chronon.of_seconds 2147483648))

let parse_ok ?now s =
  match Chronon.parse ?now s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_parse_paper_formats () =
  (* The forms appearing in the paper's benchmark queries. *)
  check "08:00 1/1/80"
    (Chronon.to_seconds (civil 1980 1 1 8 0 0))
    (Chronon.to_seconds (parse_ok "08:00 1/1/80"));
  check "4:00 1/1/80"
    (Chronon.to_seconds (civil 1980 1 1 4 0 0))
    (Chronon.to_seconds (parse_ok "4:00 1/1/80"));
  check "bare year 1981"
    (Chronon.to_seconds (civil 1981 1 1 0 0 0))
    (Chronon.to_seconds (parse_ok "1981"));
  check "m/d/yy date only"
    (Chronon.to_seconds (civil 1980 2 15 0 0 0))
    (Chronon.to_seconds (parse_ok "2/15/80"))

let test_parse_other_formats () =
  check "iso date"
    (Chronon.to_seconds (civil 1985 11 1 0 0 0))
    (Chronon.to_seconds (parse_ok "1985-11-01"));
  check "iso date + time"
    (Chronon.to_seconds (civil 1985 11 1 13 5 7))
    (Chronon.to_seconds (parse_ok "1985-11-01 13:05:07"));
  check "4-digit slash year"
    (Chronon.to_seconds (civil 1980 1 2 0 0 0))
    (Chronon.to_seconds (parse_ok "1/2/1980"));
  check "2-digit year 30 maps to 2030"
    (Chronon.to_seconds (civil 2030 1 1 0 0 0))
    (Chronon.to_seconds (parse_ok "1/1/30"));
  (match Chronon.parse "1/1/69" with
  | Error _ -> () (* 2069 is past the 32-bit horizon (Jan 2038) *)
  | Ok _ -> Alcotest.fail "2069 should not fit in 32 bits");
  let now = civil 1980 6 1 0 0 0 in
  check "now" (Chronon.to_seconds now) (Chronon.to_seconds (parse_ok ~now "NOW"));
  Alcotest.(check bool) "forever keyword" true
    (Chronon.is_forever (parse_ok "forever"))

let test_parse_errors () =
  let bad s =
    match Chronon.parse s with
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
    | Error _ -> ()
  in
  bad "not a date";
  bad "13:00:00:00 1/1/80";
  bad "2/30/80" (* no Feb 30 *);
  bad "25:00 1/1/80" (* no hour 25 *);
  bad "";
  bad "now" (* no clock supplied *)

let test_to_string_resolutions () =
  let t = civil 1980 1 2 8 30 45 in
  check_str "second" "1980-01-02 08:30:45" (Chronon.to_string t);
  check_str "minute" "1980-01-02 08:30"
    (Chronon.to_string ~resolution:Chronon.Minute t);
  check_str "hour" "1980-01-02 08" (Chronon.to_string ~resolution:Chronon.Hour t);
  check_str "day" "1980-01-02" (Chronon.to_string ~resolution:Chronon.Day t);
  check_str "month" "1980-01" (Chronon.to_string ~resolution:Chronon.Month t);
  check_str "year" "1980" (Chronon.to_string ~resolution:Chronon.Year t)

let test_truncate () =
  let t = civil 1980 7 15 13 45 59 in
  let at res = Chronon.to_civil (Chronon.truncate res t) in
  Alcotest.(check int) "minute zeroes seconds" 0 (at Chronon.Minute).Chronon.second;
  Alcotest.(check int) "hour zeroes minutes" 0 (at Chronon.Hour).Chronon.minute;
  Alcotest.(check int) "day zeroes hours" 0 (at Chronon.Day).Chronon.hour;
  Alcotest.(check int) "month resets day" 1 (at Chronon.Month).Chronon.day;
  Alcotest.(check int) "year resets month" 1 (at Chronon.Year).Chronon.month;
  Alcotest.(check bool) "truncate forever is forever" true
    (Chronon.is_forever (Chronon.truncate Chronon.Year Chronon.forever))

let test_resolution_of_string () =
  Alcotest.(check bool) "year" true
    (Chronon.resolution_of_string "Year" = Some Chronon.Year);
  Alcotest.(check bool) "junk" true (Chronon.resolution_of_string "week" = None)

(* --- properties --- *)

let chronon_gen =
  (* Stay away from the extremes so add_seconds in properties cannot saturate. *)
  QCheck2.Gen.map Chronon.of_seconds (QCheck2.Gen.int_range (-2000000000) 2000000000)

let prop_civil_round_trip =
  QCheck2.Test.make ~name:"of_civil (to_civil t) = t" ~count:500 chronon_gen
    (fun t -> Chronon.equal (Chronon.of_civil (Chronon.to_civil t)) t)

let prop_parse_print_round_trip =
  QCheck2.Test.make ~name:"parse (to_string t) = t" ~count:500 chronon_gen
    (fun t ->
      match Chronon.parse (Chronon.to_string t) with
      | Ok t' -> Chronon.equal t t'
      | Error _ -> false)

let prop_truncate_idempotent =
  QCheck2.Test.make ~name:"truncate is idempotent" ~count:300
    QCheck2.Gen.(pair chronon_gen (oneofl Chronon.[ Second; Minute; Hour; Day; Month; Year ]))
    (fun (t, res) ->
      let once = Chronon.truncate res t in
      Chronon.equal once (Chronon.truncate res once))

let prop_truncate_monotone =
  QCheck2.Test.make ~name:"truncate never increases" ~count:300
    QCheck2.Gen.(pair chronon_gen (oneofl Chronon.[ Second; Minute; Hour; Day; Month; Year ]))
    (fun (t, res) -> Chronon.compare (Chronon.truncate res t) t <= 0)

let prop_order_by_seconds =
  QCheck2.Test.make ~name:"compare agrees with seconds" ~count:300
    QCheck2.Gen.(pair chronon_gen chronon_gen)
    (fun (a, b) ->
      Chronon.compare a b = Int.compare (Chronon.to_seconds a) (Chronon.to_seconds b))

let suites =
  [
    ( "chronon",
      [
        Alcotest.test_case "epoch" `Quick test_epoch;
        Alcotest.test_case "known instants" `Quick test_known_instants;
        Alcotest.test_case "civil round trip" `Quick test_civil_round_trip;
        Alcotest.test_case "forever/beginning" `Quick test_forever;
        Alcotest.test_case "out of range" `Quick test_out_of_range;
        Alcotest.test_case "parse paper formats" `Quick test_parse_paper_formats;
        Alcotest.test_case "parse other formats" `Quick test_parse_other_formats;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "to_string resolutions" `Quick test_to_string_resolutions;
        Alcotest.test_case "truncate" `Quick test_truncate;
        Alcotest.test_case "resolution names" `Quick test_resolution_of_string;
        QCheck_alcotest.to_alcotest prop_civil_round_trip;
        QCheck_alcotest.to_alcotest prop_parse_print_round_trip;
        QCheck_alcotest.to_alcotest prop_truncate_idempotent;
        QCheck_alcotest.to_alcotest prop_truncate_monotone;
        QCheck_alcotest.to_alcotest prop_order_by_seconds;
      ] );
  ]
