  $ ../../bin/tquel.exe -c "retrieve (answer = 41 + 1)"
  $ cat > setup.tq <<'SCRIPT'
  > create persistent interval emp (name = c20, salary = i4);
  > range of e is emp;
  > append to emp (name = "ahn", salary = 30000);
  > append to emp (name = "snodgrass", salary = 35000);
  > modify emp to hash on name where fillfactor = 100;
  > SCRIPT
  $ ../../bin/tquel.exe -d mydb -f setup.tq
  $ ../../bin/tquel.exe -d mydb -c "range of e is emp retrieve (e.name, e.salary) when e overlap \"now\""
  $ ../../bin/tquel.exe -c "retrieve (nope.x)"
