A single statement from the command line:

  $ ../../bin/tquel.exe -c "retrieve (answer = 41 + 1)"
  +--------+
  | answer |
  +--------+
  | 42     |
  +--------+
  (1 rows)

A script through a persistent database, reopened across invocations:

  $ cat > setup.tq <<'SCRIPT'
  > create persistent interval emp (name = c20, salary = i4);
  > range of e is emp;
  > append to emp (name = "ahn", salary = 30000);
  > append to emp (name = "snodgrass", salary = 35000);
  > modify emp to hash on name where fillfactor = 100;
  > SCRIPT
  $ ../../bin/tquel.exe -d mydb -f setup.tq
  created temporal interval relation emp
  range of e is emp
  1 tuples qualified, 1 versions inserted
  1 tuples qualified, 1 versions inserted
  modified emp to hash(attr 0, fillfactor 100)

  $ ../../bin/tquel.exe -d mydb -c "range of e is emp retrieve (e.name, e.salary) when e overlap \"now\""
  range of e is emp
  +-----------+--------+---------------------+----------+
  | name      | salary | valid from          | valid to |
  +-----------+--------+---------------------+----------+
  | ahn       | 30000  | 1980-01-01 00:00:01 | forever  |
  | snodgrass | 35000  | 1980-01-01 00:00:02 | forever  |
  +-----------+--------+---------------------+----------+
  (2 rows)

Errors are reported, not fatal:

  $ ../../bin/tquel.exe -c "retrieve (nope.x)"
  error: tuple variable "nope" has no range statement
