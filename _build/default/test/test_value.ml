module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Chronon = Tdb_time.Chronon

let encode_decode ty v =
  let buf = Bytes.create (Attr_type.size ty) in
  Value.encode ty v buf 0;
  Value.decode ty buf 0

let test_int_codec () =
  List.iter
    (fun (ty, n) ->
      match encode_decode ty (Value.Int n) with
      | Value.Int n' -> Alcotest.(check int) (Attr_type.to_string ty) n n'
      | _ -> Alcotest.fail "wrong constructor")
    [
      (Attr_type.I1, 0); (Attr_type.I1, -128); (Attr_type.I1, 127);
      (Attr_type.I2, -32768); (Attr_type.I2, 32767);
      (Attr_type.I4, -0x8000_0000); (Attr_type.I4, 0x7FFF_FFFF);
      (Attr_type.I4, 500);
    ]

let test_float_codec () =
  List.iter
    (fun f ->
      match encode_decode Attr_type.F8 (Value.Float f) with
      | Value.Float f' -> Alcotest.(check (float 0.0)) "f8 exact" f f'
      | _ -> Alcotest.fail "wrong constructor")
    [ 0.; -1.5; 3.14159; 1e300; -1e-300 ]

let test_string_codec () =
  (match encode_decode (Attr_type.C 10) (Value.Str "hello") with
  | Value.Str s -> Alcotest.(check string) "padded then stripped" "hello" s
  | _ -> Alcotest.fail "wrong constructor");
  (match encode_decode (Attr_type.C 3) (Value.Str "overflow") with
  | Value.Str s -> Alcotest.(check string) "truncated to width" "ove" s
  | _ -> Alcotest.fail "wrong constructor");
  match encode_decode (Attr_type.C 4) (Value.Str "") with
  | Value.Str s -> Alcotest.(check string) "empty string" "" s
  | _ -> Alcotest.fail "wrong constructor"

let test_time_codec () =
  let t = Chronon.parse_exn "08:00 1/1/80" in
  match encode_decode Attr_type.Time (Value.Time t) with
  | Value.Time t' -> Alcotest.(check bool) "time round trip" true (Chronon.equal t t')
  | _ -> Alcotest.fail "wrong constructor"

let test_type_mismatch () =
  let buf = Bytes.create 8 in
  Alcotest.(check bool) "encode str into i4 raises" true
    (try
       Value.encode Attr_type.I4 (Value.Str "x") buf 0;
       false
     with Invalid_argument _ -> true)

let test_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (Str "a") (Str "b") < 0);
  Alcotest.(check bool) "int vs float" true
    (Value.compare (Int 1) (Float 1.5) < 0);
  Alcotest.(check bool) "incompatible raises" true
    (try
       ignore (Value.compare (Int 1) (Str "x"));
       false
     with Invalid_argument _ -> true)

let test_coerce () =
  (match Value.coerce Attr_type.I2 (Value.Int 40000) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range i2 accepted");
  (match Value.coerce (Attr_type.C 3) (Value.Str "abcdef") with
  | Ok (Value.Str s) -> Alcotest.(check string) "truncates" "abc" s
  | _ -> Alcotest.fail "coerce string");
  (match Value.coerce Attr_type.F8 (Value.Int 3) with
  | Ok (Value.Float f) -> Alcotest.(check (float 0.)) "int to float" 3.0 f
  | _ -> Alcotest.fail "coerce int to float");
  match Value.coerce Attr_type.Time (Value.Int 77) with
  | Ok (Value.Time t) -> Alcotest.(check int) "int to time" 77 (Chronon.to_seconds t)
  | _ -> Alcotest.fail "coerce int to time"

let test_matches () =
  Alcotest.(check bool) "i1 range" false (Value.matches Attr_type.I1 (Value.Int 200));
  Alcotest.(check bool) "i4 ok" true (Value.matches Attr_type.I4 (Value.Int 200));
  Alcotest.(check bool) "str vs c" true (Value.matches (Attr_type.C 5) (Value.Str "aa"));
  Alcotest.(check bool) "time vs int" false (Value.matches Attr_type.Time (Value.Int 0))

let test_hash_deterministic () =
  Alcotest.(check int) "same value same hash"
    (Value.hash (Value.Int 500)) (Value.hash (Value.Int 500));
  (* Multiplicative hashing must spread 0..1023 over 128 buckets without
     leaving any bucket empty or grossly overloaded. *)
  let counts = Array.make 128 0 in
  for i = 0 to 1023 do
    let b = Value.hash (Value.Int i) mod 128 in
    counts.(b) <- counts.(b) + 1
  done;
  Array.iteri
    (fun b c ->
      if c = 0 then Alcotest.failf "bucket %d empty" b;
      if c > 24 then Alcotest.failf "bucket %d overloaded: %d" b c)
    counts

(* --- properties --- *)

let value_type_gen : (Attr_type.t * Value.t) QCheck2.Gen.t =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> (Attr_type.I4, Value.Int n)) (int_range (-1000000) 1000000);
        map (fun n -> (Attr_type.I2, Value.Int n)) (int_range (-32768) 32767);
        map (fun f -> (Attr_type.F8, Value.Float f)) (float_range (-1e6) 1e6);
        map
          (fun s -> (Attr_type.C 16, Value.Str s))
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 16));
        map
          (fun n -> (Attr_type.Time, Value.Time (Chronon.of_seconds n)))
          (int_range 0 2000000000);
      ])

let prop_codec_round_trip =
  QCheck2.Test.make ~name:"encode/decode round trip" ~count:500 value_type_gen
    (fun (ty, v) -> Value.equal (encode_decode ty v) v)

let prop_compare_total_within_ints =
  QCheck2.Test.make ~name:"compare antisymmetric on ints" ~count:300
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      Value.compare (Int a) (Int b) = -Value.compare (Int b) (Int a))

let suites =
  [
    ( "value",
      [
        Alcotest.test_case "int codec" `Quick test_int_codec;
        Alcotest.test_case "float codec" `Quick test_float_codec;
        Alcotest.test_case "string codec" `Quick test_string_codec;
        Alcotest.test_case "time codec" `Quick test_time_codec;
        Alcotest.test_case "type mismatch" `Quick test_type_mismatch;
        Alcotest.test_case "compare" `Quick test_compare;
        Alcotest.test_case "coerce" `Quick test_coerce;
        Alcotest.test_case "matches" `Quick test_matches;
        Alcotest.test_case "hash spreads" `Quick test_hash_deterministic;
        QCheck_alcotest.to_alcotest prop_codec_round_trip;
        QCheck_alcotest.to_alcotest prop_compare_total_within_ints;
      ] );
  ]
