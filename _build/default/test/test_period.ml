module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period

let c s = Chronon.of_seconds s
let p a b = Period.make (c a) (c b)

let test_make () =
  let q = p 10 20 in
  Alcotest.(check int) "from" 10 (Chronon.to_seconds (Period.from_ q));
  Alcotest.(check int) "to" 20 (Chronon.to_seconds (Period.to_ q));
  Alcotest.(check bool) "interval is not an event" false (Period.is_event q);
  Alcotest.(check bool) "event" true (Period.is_event (Period.at (c 5)));
  Alcotest.check_raises "backwards interval"
    (Invalid_argument "Period.make: to_ earlier than from_") (fun () ->
      ignore (p 20 10))

let test_contains () =
  let q = p 10 20 in
  Alcotest.(check bool) "start inside" true (Period.contains q (c 10));
  Alcotest.(check bool) "middle inside" true (Period.contains q (c 15));
  Alcotest.(check bool) "end excluded (half-open)" false (Period.contains q (c 20));
  Alcotest.(check bool) "before" false (Period.contains q (c 9));
  let e = Period.at (c 7) in
  Alcotest.(check bool) "event contains its instant" true (Period.contains e (c 7));
  Alcotest.(check bool) "event excludes others" false (Period.contains e (c 8))

let test_overlaps () =
  Alcotest.(check bool) "proper overlap" true (Period.overlaps (p 0 10) (p 5 15));
  Alcotest.(check bool) "disjoint" false (Period.overlaps (p 0 10) (p 10 20));
  Alcotest.(check bool) "nested" true (Period.overlaps (p 0 100) (p 20 30));
  Alcotest.(check bool) "event inside interval" true
    (Period.overlaps (Period.at (c 5)) (p 0 10));
  Alcotest.(check bool) "event at closed end" false
    (Period.overlaps (Period.at (c 10)) (p 0 10));
  Alcotest.(check bool) "event at start" true
    (Period.overlaps (Period.at (c 0)) (p 0 10));
  Alcotest.(check bool) "current version overlaps now" true
    (Period.overlaps (p 100 (Chronon.to_seconds Chronon.forever)) (Period.at (c 500)))

let test_overlap_intersection () =
  (match Period.overlap (p 0 10) (p 5 15) with
  | Some q ->
      Alcotest.(check int) "from" 5 (Chronon.to_seconds (Period.from_ q));
      Alcotest.(check int) "to" 10 (Chronon.to_seconds (Period.to_ q))
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "no overlap -> None" true
    (Period.overlap (p 0 5) (p 6 10) = None)

let test_extend () =
  let q = Period.extend (p 5 10) (p 20 30) in
  Alcotest.(check int) "extend from" 5 (Chronon.to_seconds (Period.from_ q));
  Alcotest.(check int) "extend to" 30 (Chronon.to_seconds (Period.to_ q));
  (* extend of disjoint periods covers the gap *)
  Alcotest.(check bool) "covers gap" true (Period.contains q (c 15))

let test_precede () =
  Alcotest.(check bool) "before" true (Period.precede (p 0 5) (p 5 10));
  Alcotest.(check bool) "overlapping" false (Period.precede (p 0 6) (p 5 10));
  Alcotest.(check bool) "after" false (Period.precede (p 5 10) (p 0 5))

let test_start_end () =
  let q = p 10 20 in
  Alcotest.(check bool) "start_of is an event" true (Period.is_event (Period.start_of q));
  Alcotest.(check int) "start_of at from" 10
    (Chronon.to_seconds (Period.from_ (Period.start_of q)));
  Alcotest.(check int) "end_of at last chronon" 19
    (Chronon.to_seconds (Period.from_ (Period.end_of q)));
  let e = Period.at (c 3) in
  Alcotest.(check bool) "end_of event is itself" true
    (Period.equal (Period.end_of e) e)

(* --- properties --- *)

let gen_period =
  QCheck2.Gen.(
    let* a = int_range 0 10000 in
    let* len = int_range 0 1000 in
    return (p a (a + len)))

let prop_overlaps_commutative =
  QCheck2.Test.make ~name:"overlaps is commutative" ~count:500
    QCheck2.Gen.(pair gen_period gen_period)
    (fun (a, b) -> Period.overlaps a b = Period.overlaps b a)

let prop_overlap_within_both =
  QCheck2.Test.make ~name:"overlap result is within both operands" ~count:500
    QCheck2.Gen.(pair gen_period gen_period)
    (fun (a, b) ->
      match Period.overlap a b with
      | None -> true
      | Some o ->
          Chronon.compare (Period.from_ o) (Period.from_ a) >= 0
          && Chronon.compare (Period.from_ o) (Period.from_ b) >= 0
          && Chronon.compare (Period.to_ o) (Period.to_ a) <= 0
          && Chronon.compare (Period.to_ o) (Period.to_ b) <= 0)

let prop_extend_covers_both =
  QCheck2.Test.make ~name:"extend covers both operands" ~count:500
    QCheck2.Gen.(pair gen_period gen_period)
    (fun (a, b) ->
      let e = Period.extend a b in
      Chronon.compare (Period.from_ e) (Period.from_ a) <= 0
      && Chronon.compare (Period.from_ e) (Period.from_ b) <= 0
      && Chronon.compare (Period.to_ e) (Period.to_ a) >= 0
      && Chronon.compare (Period.to_ e) (Period.to_ b) >= 0)

let prop_precede_excludes_overlap =
  QCheck2.Test.make ~name:"precede implies not overlaps" ~count:500
    QCheck2.Gen.(pair gen_period gen_period)
    (fun (a, b) ->
      (* Exception: an event touching an interval's start overlaps it and
         also "precedes" it (end <= start); restrict to proper intervals. *)
      if Period.is_event a || Period.is_event b then true
      else if Period.precede a b then not (Period.overlaps a b)
      else true)

let prop_overlap_idempotent =
  QCheck2.Test.make ~name:"overlap with self is self" ~count:200 gen_period
    (fun a ->
      match Period.overlap a a with Some o -> Period.equal o a | None -> false)

let suites =
  [
    ( "period",
      [
        Alcotest.test_case "make" `Quick test_make;
        Alcotest.test_case "contains" `Quick test_contains;
        Alcotest.test_case "overlaps" `Quick test_overlaps;
        Alcotest.test_case "overlap intersection" `Quick test_overlap_intersection;
        Alcotest.test_case "extend" `Quick test_extend;
        Alcotest.test_case "precede" `Quick test_precede;
        Alcotest.test_case "start/end" `Quick test_start_end;
        QCheck_alcotest.to_alcotest prop_overlaps_commutative;
        QCheck_alcotest.to_alcotest prop_overlap_within_both;
        QCheck_alcotest.to_alcotest prop_extend_covers_both;
        QCheck_alcotest.to_alcotest prop_precede_excludes_overlap;
        QCheck_alcotest.to_alcotest prop_overlap_idempotent;
      ] );
  ]
