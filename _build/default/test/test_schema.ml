module Schema = Tdb_relation.Schema
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type

let attr name ty = { Schema.name; ty }

(* The paper's benchmark relations: id = i4, amount = i4, seq = i4,
   string = c96 -> 108 bytes of user data. *)
let paper_attrs =
  [
    attr "id" Attr_type.I4;
    attr "amount" Attr_type.I4;
    attr "seq" Attr_type.I4;
    attr "string" (Attr_type.C 96);
  ]

let test_paper_sizes () =
  let size db_type = Schema.tuple_size (Schema.create_exn ~db_type paper_attrs) in
  Alcotest.(check int) "static tuple = 108 bytes" 108 (size Db_type.Static);
  Alcotest.(check int) "rollback tuple = 116 bytes" 116 (size Db_type.Rollback);
  Alcotest.(check int) "historical tuple = 116 bytes" 116
    (size (Db_type.Historical Db_type.Interval));
  Alcotest.(check int) "temporal tuple = 124 bytes" 124
    (size (Db_type.Temporal Db_type.Interval))

let test_implicit_attributes () =
  let s = Schema.create_exn ~db_type:(Db_type.Temporal Db_type.Interval) paper_attrs in
  Alcotest.(check int) "user arity" 4 (Schema.user_arity s);
  Alcotest.(check int) "full arity" 8 (Schema.arity s);
  Alcotest.(check bool) "valid from present" true (Schema.valid_from_index s <> None);
  Alcotest.(check bool) "valid to present" true (Schema.valid_to_index s <> None);
  Alcotest.(check bool) "tstart present" true
    (Schema.transaction_start_index s <> None);
  Alcotest.(check bool) "tstop present" true
    (Schema.transaction_stop_index s <> None);
  Alcotest.(check bool) "no valid-at on interval relation" true
    (Schema.valid_at_index s = None)

let test_event_relation () =
  let s = Schema.create_exn ~db_type:(Db_type.Historical Db_type.Event) paper_attrs in
  Alcotest.(check int) "one implicit attr" 5 (Schema.arity s);
  Alcotest.(check bool) "valid at present" true (Schema.valid_at_index s <> None);
  Alcotest.(check bool) "no interval attrs" true (Schema.valid_from_index s = None)

let test_static_relation () =
  let s = Schema.create_exn ~db_type:Db_type.Static paper_attrs in
  Alcotest.(check int) "no implicit attrs" 4 (Schema.arity s);
  Alcotest.(check bool) "no time indices" true
    (Schema.valid_from_index s = None
    && Schema.transaction_start_index s = None)

let test_lookup () =
  let s = Schema.create_exn ~db_type:Db_type.Rollback paper_attrs in
  Alcotest.(check (option int)) "user attr" (Some 1) (Schema.index_of s "amount");
  Alcotest.(check (option int)) "case insensitive" (Some 0) (Schema.index_of s "ID");
  Alcotest.(check (option int)) "implicit attr" (Some 4)
    (Schema.index_of s "transaction start");
  Alcotest.(check (option int)) "missing" None (Schema.index_of s "salary")

let test_validation () =
  (match Schema.create ~db_type:Db_type.Static [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty schema accepted");
  (match
     Schema.create ~db_type:Db_type.Static [ attr "x" Attr_type.I4; attr "X" Attr_type.I2 ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate names accepted");
  match
    Schema.create ~db_type:Db_type.Rollback
      [ attr "transaction start" Attr_type.I4 ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "clash with implicit name accepted"

let test_db_type_properties () =
  Alcotest.(check bool) "static: no when" false (Db_type.supports_when Db_type.Static);
  Alcotest.(check bool) "rollback: as-of" true (Db_type.supports_as_of Db_type.Rollback);
  Alcotest.(check bool) "rollback: no when" false (Db_type.supports_when Db_type.Rollback);
  Alcotest.(check bool) "historical: when" true
    (Db_type.supports_when (Db_type.Historical Db_type.Interval));
  Alcotest.(check bool) "historical: no as-of" false
    (Db_type.supports_as_of (Db_type.Historical Db_type.Interval));
  Alcotest.(check bool) "temporal: both" true
    (Db_type.supports_when (Db_type.Temporal Db_type.Interval)
    && Db_type.supports_as_of (Db_type.Temporal Db_type.Interval));
  Alcotest.(check int) "implicit counts" 4
    (Db_type.implicit_attribute_count (Db_type.Temporal Db_type.Interval));
  Alcotest.(check int) "event historical" 1
    (Db_type.implicit_attribute_count (Db_type.Historical Db_type.Event))

let test_db_type_strings () =
  List.iter
    (fun ty ->
      match Db_type.of_string (Db_type.to_string ty) with
      | Ok ty' -> Alcotest.(check bool) (Db_type.to_string ty) true (Db_type.equal ty ty')
      | Error e -> Alcotest.fail e)
    [
      Db_type.Static;
      Db_type.Rollback;
      Db_type.Historical Db_type.Interval;
      Db_type.Historical Db_type.Event;
      Db_type.Temporal Db_type.Interval;
      Db_type.Temporal Db_type.Event;
    ]

let suites =
  [
    ( "schema",
      [
        Alcotest.test_case "paper tuple sizes" `Quick test_paper_sizes;
        Alcotest.test_case "implicit attributes" `Quick test_implicit_attributes;
        Alcotest.test_case "event relation" `Quick test_event_relation;
        Alcotest.test_case "static relation" `Quick test_static_relation;
        Alcotest.test_case "lookup" `Quick test_lookup;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "db type properties" `Quick test_db_type_properties;
        Alcotest.test_case "db type strings" `Quick test_db_type_strings;
      ] );
  ]
