(* The section-4 version semantics, checked at the stored-tuple level:
   which versions exist, with which time stamps, after each operation. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Relation_file = Tdb_storage.Relation_file
module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let fresh () = ok (Database.create ())
let exec db src = ignore (ok (Engine.execute db src))

let all_versions db name =
  let rel = Option.get (Database.find_relation db name) in
  let acc = ref [] in
  Relation_file.scan rel (fun _ tu -> acc := tu :: !acc);
  (Relation_file.schema rel, List.rev !acc)

let time_at schema tu field =
  Tuple.get_time tu (Option.get (Schema.index_of schema field))

let test_rollback_replace_is_append_only () =
  let db = fresh () in
  exec db
    {|create persistent r (k = i4, v = i4)
      range of r is r
      append to r (k = 1, v = 10)|};
  let t1 = Database.now db in
  Clock.advance (Database.clock db) 100;
  exec db "replace r (v = 20)";
  let t2 = Database.now db in
  let schema, versions = all_versions db "r" in
  Alcotest.(check int) "two stored versions" 2 (List.length versions);
  let old_v =
    List.find (fun tu -> Value.equal tu.(1) (Value.Int 10)) versions
  in
  let new_v =
    List.find (fun tu -> Value.equal tu.(1) (Value.Int 20)) versions
  in
  Alcotest.(check bool) "old: tstart = insert time" true
    (Chronon.equal (time_at schema old_v "transaction start") t1);
  Alcotest.(check bool) "old: tstop stamped at replace time" true
    (Chronon.equal (time_at schema old_v "transaction stop") t2);
  Alcotest.(check bool) "new: tstart = replace time" true
    (Chronon.equal (time_at schema new_v "transaction start") t2);
  Alcotest.(check bool) "new: tstop = forever" true
    (Chronon.is_forever (time_at schema new_v "transaction stop"))

let test_historical_replace () =
  let db = fresh () in
  exec db
    {|create interval h (k = i4, v = i4)
      range of h is h
      append to h (k = 1, v = 10)|};
  Clock.advance (Database.clock db) 100;
  exec db "replace h (v = 20)";
  let t2 = Database.now db in
  let schema, versions = all_versions db "h" in
  Alcotest.(check int) "two stored versions" 2 (List.length versions);
  let old_v = List.find (fun tu -> Value.equal tu.(1) (Value.Int 10)) versions in
  let new_v = List.find (fun tu -> Value.equal tu.(1) (Value.Int 20)) versions in
  Alcotest.(check bool) "old: valid-to closed" true
    (Chronon.equal (time_at schema old_v "valid to") t2);
  Alcotest.(check bool) "new: valid-from = now, valid-to = forever" true
    (Chronon.equal (time_at schema new_v "valid from") t2
    && Chronon.is_forever (time_at schema new_v "valid to"))

let test_temporal_replace_three_versions () =
  (* "each replace operation in a temporal relation inserts two new
     versions": old (tstop closed), terminated copy, and the new one. *)
  let db = fresh () in
  exec db
    {|create persistent interval t (k = i4, v = i4)
      range of t is t
      append to t (k = 1, v = 10)|};
  let t1 = Database.now db in
  Clock.advance (Database.clock db) 100;
  exec db "replace t (v = 20)";
  let t2 = Database.now db in
  let schema, versions = all_versions db "t" in
  Alcotest.(check int) "three stored versions" 3 (List.length versions);
  let has pred = List.exists pred versions in
  Alcotest.(check bool) "superseded: v=10, vt=forever, tstop=t2" true
    (has (fun tu ->
         Value.equal tu.(1) (Value.Int 10)
         && Chronon.is_forever (time_at schema tu "valid to")
         && Chronon.equal (time_at schema tu "transaction stop") t2));
  Alcotest.(check bool) "terminated: v=10, vt=t2, tstart=t2, tstop=forever" true
    (has (fun tu ->
         Value.equal tu.(1) (Value.Int 10)
         && Chronon.equal (time_at schema tu "valid to") t2
         && Chronon.equal (time_at schema tu "transaction start") t2
         && Chronon.is_forever (time_at schema tu "transaction stop")));
  Alcotest.(check bool) "new: v=20, vf=t2, everything open" true
    (has (fun tu ->
         Value.equal tu.(1) (Value.Int 20)
         && Chronon.equal (time_at schema tu "valid from") t2
         && Chronon.is_forever (time_at schema tu "valid to")
         && Chronon.is_forever (time_at schema tu "transaction stop")));
  ignore t1

let test_temporal_append_only () =
  (* No stored version is ever physically removed by temporal updates, and
     old stamps never change except the closing of transaction-stop. *)
  let db = fresh () in
  exec db
    {|create persistent interval t (k = i4, v = i4)
      range of t is t|};
  for k = 0 to 9 do
    exec db (Printf.sprintf "append to t (k = %d, v = 0)" k)
  done;
  let count () = snd (all_versions db "t") |> List.length in
  let before = count () in
  Clock.advance (Database.clock db) 50;
  exec db "replace t (v = t.v + 1)";
  Alcotest.(check int) "replace adds 2 per tuple" (before + 20) (count ());
  Clock.advance (Database.clock db) 50;
  exec db "delete t where t.k = 3";
  Alcotest.(check int) "delete adds 1" (before + 21) (count ())

let test_valid_clause_on_append () =
  let db = fresh () in
  exec db
    {|create interval h (k = i4)
      range of h is h
      append to h (k = 1) valid from "1980-05-01" to "1980-06-01"|};
  let schema, versions = all_versions db "h" in
  match versions with
  | [ tu ] ->
      Alcotest.(check string) "vf" "1980-05-01 00:00:00"
        (Chronon.to_string (time_at schema tu "valid from"));
      Alcotest.(check string) "vt" "1980-06-01 00:00:00"
        (Chronon.to_string (time_at schema tu "valid to"))
  | l -> Alcotest.failf "expected 1 version, got %d" (List.length l)

let test_event_relations () =
  let db = fresh () in
  exec db
    {|create event ev (k = i4)
      range of e is ev
      append to ev (k = 1) valid at "1980-04-01"|};
  let schema, versions = all_versions db "ev" in
  (match versions with
  | [ tu ] ->
      Alcotest.(check string) "valid at" "1980-04-01 00:00:00"
        (Chronon.to_string (time_at schema tu "valid at"))
  | l -> Alcotest.failf "expected 1 version, got %d" (List.length l));
  (* historical event deletion is physical *)
  exec db "delete e where e.k = 1";
  Alcotest.(check int) "event physically deleted" 0
    (List.length (snd (all_versions db "ev")))

let test_temporal_event () =
  let db = fresh () in
  exec db
    {|create persistent event tev (k = i4)
      range of e is tev
      append to tev (k = 1) valid at "1980-04-01"|};
  Clock.advance (Database.clock db) 100;
  exec db "delete e where e.k = 1";
  let schema, versions = all_versions db "tev" in
  (* a temporal event is terminated through transaction time, not removed *)
  match versions with
  | [ tu ] ->
      Alcotest.(check bool) "tstop closed" true
        (not (Chronon.is_forever (time_at schema tu "transaction stop")))
  | l -> Alcotest.failf "expected 1 version, got %d" (List.length l)

let test_when_clause_on_delete () =
  (* delete only the versions whose validity overlaps a window *)
  let db = fresh () in
  exec db
    {|create interval h (k = i4)
      range of h is h
      append to h (k = 1) valid from "1980-01-01" to "1980-02-01"
      append to h (k = 2) valid from "1980-06-01" to "forever"|};
  exec db {|delete h when h overlap "1980-07-01"|};
  let _, versions = all_versions db "h" in
  (* both versions still stored (historical delete just closes valid-to of
     the matching current version) *)
  Alcotest.(check int) "both stored" 2 (List.length versions)

let test_defaults_on_append () =
  let db = fresh () in
  exec db
    {|create static_r (a = i4, b = f8, c = c10)
      range of s is static_r
      append to static_r (a = 5)|};
  let _, versions = all_versions db "static_r" in
  match versions with
  | [ [| Value.Int 5; Value.Float b; Value.Str c |] ] ->
      Alcotest.(check (float 0.)) "float defaults to 0" 0. b;
      Alcotest.(check string) "string defaults to empty" "" c
  | _ -> Alcotest.fail "defaults"

let suites =
  [
    ( "update_semantics",
      [
        Alcotest.test_case "rollback replace append-only" `Quick
          test_rollback_replace_is_append_only;
        Alcotest.test_case "historical replace" `Quick test_historical_replace;
        Alcotest.test_case "temporal replace: 3 versions" `Quick
          test_temporal_replace_three_versions;
        Alcotest.test_case "temporal append-only growth" `Quick
          test_temporal_append_only;
        Alcotest.test_case "valid clause on append" `Quick
          test_valid_clause_on_append;
        Alcotest.test_case "event relations" `Quick test_event_relations;
        Alcotest.test_case "temporal event" `Quick test_temporal_event;
        Alcotest.test_case "when clause on delete" `Quick
          test_when_clause_on_delete;
        Alcotest.test_case "defaults on append" `Quick test_defaults_on_append;
      ] );
  ]
