(* Event relations end to end: instantaneous facts with a single
   [valid at] stamp (shipments, sensor readings, releases), historical and
   temporal flavours. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))

let rows db src =
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; _ } -> tuples
  | _ -> Alcotest.fail "expected rows"

let fresh_shipments () =
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-01-01") ()) in
  exec db
    {|create event shipment (order_no = i4, qty = i4)
      range of s is shipment|};
  List.iter
    (fun (o, q, at) ->
      exec db
        (Printf.sprintf
           {|append to shipment (order_no = %d, qty = %d) valid at "%s"|} o q at))
    [
      (1, 10, "1980-02-01"); (2, 5, "1980-02-15"); (3, 7, "1980-03-01");
      (4, 2, "1980-03-15");
    ];
  db

let test_event_at_query () =
  let db = fresh_shipments () in
  (* which shipments happened during February? *)
  let feb =
    rows db
      {|retrieve (s.order_no)
        when s overlap "1980-02-01" or s overlap "1980-02-15"|}
  in
  Alcotest.(check int) "exact-instant matches" 2 (List.length feb)

let test_event_precede () =
  let db = fresh_shipments () in
  let early =
    rows db {|retrieve (s.order_no) when s precede "1980-02-20"|}
  in
  Alcotest.(check int) "two shipments precede Feb 20" 2 (List.length early)

let test_event_valid_at_output () =
  let db = fresh_shipments () in
  match rows db "retrieve (s.order_no, stamp = s.valid_at) where s.order_no = 3" with
  | [ [| Value.Int 3; Value.Time t; _; _ |] ] ->
      Alcotest.(check string) "stamp" "1980-03-01 00:00:00" (Chronon.to_string t)
  | l -> Alcotest.failf "got %d rows" (List.length l)

let test_event_join_with_interval () =
  (* events joined against an interval relation: which shipments fell
     within an order's handling period? *)
  let db = fresh_shipments () in
  exec db
    {|create interval handling (order_no = i4)
      range of h is handling
      append to handling (order_no = 9)
          valid from "1980-02-10" to "1980-03-10"|};
  let inside =
    rows db {|retrieve (s.order_no) when s overlap h|}
  in
  (* shipments on Feb 15 and Mar 1 fall inside [Feb 10, Mar 10) *)
  Alcotest.(check int) "two shipments inside the period" 2 (List.length inside)

let test_temporal_event_rollback () =
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-01-01") ()) in
  exec db
    {|create persistent event reading (sensor = i4, v = i4)
      range of r is reading|};
  exec db {|append to reading (sensor = 1, v = 100) valid at "1980-01-05"|};
  let before_fix = Chronon.to_string (Database.now db) in
  Clock.advance (Database.clock db) 3600;
  (* the reading turns out to be bogus and is deleted (temporal event:
     terminated through transaction time, not physically removed) *)
  exec db "delete r where r.sensor = 1";
  Alcotest.(check int) "gone now" 0 (List.length (rows db "retrieve (r.v)"));
  Alcotest.(check int) "still there under rollback" 1
    (List.length
       (rows db (Printf.sprintf {|retrieve (r.v) as of "%s"|} before_fix)))

let test_event_aggregate () =
  let db = fresh_shipments () in
  match rows db "retrieve (total = sum(s.qty), latest = max(s.valid_at))" with
  | [ [| Value.Int 24; Value.Time t |] ] ->
      Alcotest.(check string) "latest" "1980-03-15 00:00:00" (Chronon.to_string t)
  | l -> Alcotest.failf "got %d rows" (List.length l)

let test_event_result_schema () =
  (* a plain retrieve from an event relation produces interval results from
     the default valid computation (the overlap of event periods) *)
  let db = fresh_shipments () in
  match rows db "retrieve (s.order_no) where s.order_no = 1" with
  | [ tu ] -> Alcotest.(check int) "order_no + valid attrs" 3 (Array.length tu)
  | l -> Alcotest.failf "got %d rows" (List.length l)

let suites =
  [
    ( "events",
      [
        Alcotest.test_case "exact-instant query" `Quick test_event_at_query;
        Alcotest.test_case "precede" `Quick test_event_precede;
        Alcotest.test_case "valid-at output" `Quick test_event_valid_at_output;
        Alcotest.test_case "join with interval" `Quick test_event_join_with_interval;
        Alcotest.test_case "temporal event rollback" `Quick
          test_temporal_event_rollback;
        Alcotest.test_case "aggregates over events" `Quick test_event_aggregate;
        Alcotest.test_case "result schema" `Quick test_event_result_schema;
      ] );
  ]
