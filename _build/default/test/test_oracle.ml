(* Oracle testing: the engine's answers to randomly generated queries must
   match a naive in-memory evaluator, across access methods.  This is the
   broadest correctness net in the suite: it exercises the parser, checker,
   planner (keyed/range/scan/substitution/nested), evaluator and storage
   together, and checks that the *optimized* plans never change answers. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Value = Tdb_relation.Value

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))

(* The data model mirrored in plain OCaml: two tables of (id, amount, seq). *)
type row = { id : int; amount : int; seq : int }

let gen_rows rng n =
  List.init n (fun id ->
      { id; amount = Random.State.int rng 40; seq = Random.State.int rng 5 })

let build_db rows_a rows_b ~org_a ~org_b =
  let db = ok (Database.create ()) in
  exec db
    {|create ta (id = i4, amount = i4, seq = i4)
      create tb (id = i4, amount = i4, seq = i4)
      range of a is ta
      range of b is tb|};
  List.iter
    (fun r ->
      exec db
        (Printf.sprintf "append to ta (id = %d, amount = %d, seq = %d)" r.id
           r.amount r.seq))
    rows_a;
  List.iter
    (fun r ->
      exec db
        (Printf.sprintf "append to tb (id = %d, amount = %d, seq = %d)" r.id
           r.amount r.seq))
    rows_b;
  (match org_a with
  | `Heap -> ()
  | `Hash -> exec db "modify ta to hash on id where fillfactor = 50"
  | `Isam -> exec db "modify ta to isam on id where fillfactor = 50");
  (match org_b with
  | `Heap -> ()
  | `Hash -> exec db "modify tb to hash on id"
  | `Isam -> exec db "modify tb to isam on id");
  db

(* Random single-variable predicates over `a`, as both TQuel text and an
   OCaml function. *)
type cmp = Lt | Le | Eq | Ge | Gt | Ne

let cmp_text = function
  | Lt -> "<" | Le -> "<=" | Eq -> "=" | Ge -> ">=" | Gt -> ">" | Ne -> "!="

let cmp_fn = function
  | Lt -> ( < ) | Le -> ( <= ) | Eq -> ( = ) | Ge -> ( >= ) | Gt -> ( > )
  | Ne -> ( <> )

type atom = { field : [ `Id | `Amount | `Seq ]; op : cmp; const : int }

let field_text = function `Id -> "id" | `Amount -> "amount" | `Seq -> "seq"
let field_get r = function `Id -> r.id | `Amount -> r.amount | `Seq -> r.seq

let gen_atom rng =
  {
    field = List.nth [ `Id; `Amount; `Seq ] (Random.State.int rng 3);
    op = List.nth [ Lt; Le; Eq; Ge; Gt; Ne ] (Random.State.int rng 6);
    const = Random.State.int rng 45;
  }

let atom_text var a =
  Printf.sprintf "%s.%s %s %d" var (field_text a.field) (cmp_text a.op) a.const

let atom_fn a r = cmp_fn a.op (field_get r a.field) a.const

(* a conjunction/disjunction tree of atoms *)
type ptree = Atom of atom | And of ptree * ptree | Or of ptree * ptree

let rec gen_ptree rng depth =
  if depth = 0 || Random.State.int rng 3 = 0 then Atom (gen_atom rng)
  else if Random.State.bool rng then
    And (gen_ptree rng (depth - 1), gen_ptree rng (depth - 1))
  else Or (gen_ptree rng (depth - 1), gen_ptree rng (depth - 1))

let rec ptree_text var = function
  | Atom a -> atom_text var a
  | And (x, y) -> Printf.sprintf "(%s and %s)" (ptree_text var x) (ptree_text var y)
  | Or (x, y) -> Printf.sprintf "(%s or %s)" (ptree_text var x) (ptree_text var y)

let rec ptree_fn p r =
  match p with
  | Atom a -> atom_fn a r
  | And (x, y) -> ptree_fn x r && ptree_fn y r
  | Or (x, y) -> ptree_fn x r || ptree_fn y r

let run_query db src =
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; _ } ->
      List.sort compare
        (List.map
           (fun tu ->
             Array.to_list
               (Array.map
                  (function Value.Int n -> n | _ -> Alcotest.fail "int expected")
                  tu))
           tuples)
  | _ -> Alcotest.fail "expected rows"

let orgs = [ `Heap; `Hash; `Isam ]

let test_single_variable_oracle () =
  let rng = Random.State.make [| 4242 |] in
  for trial = 1 to 60 do
    let rows = gen_rows rng (20 + Random.State.int rng 60) in
    let org = List.nth orgs (trial mod 3) in
    let db = build_db rows [] ~org_a:org ~org_b:`Heap in
    let p = gen_ptree rng 2 in
    let src =
      Printf.sprintf "retrieve (a.id, a.seq) where %s" (ptree_text "a" p)
    in
    let got = run_query db src in
    let want =
      List.sort compare
        (List.filter_map
           (fun r -> if ptree_fn p r then Some [ r.id; r.seq ] else None)
           rows)
    in
    if got <> want then
      Alcotest.failf "trial %d diverged on %s (%d vs %d rows)" trial src
        (List.length got) (List.length want)
  done

let test_join_oracle () =
  let rng = Random.State.make [| 777 |] in
  for trial = 1 to 30 do
    let rows_a = gen_rows rng 40 and rows_b = gen_rows rng 40 in
    let org_a = List.nth orgs (trial mod 3) in
    let org_b = List.nth orgs ((trial / 3) mod 3) in
    let db = build_db rows_a rows_b ~org_a ~org_b in
    let pa = Atom (gen_atom rng) and pb = Atom (gen_atom rng) in
    (* join on a.id = b.amount: exercises tuple substitution when `a` is
       keyed, detach-both / nested otherwise *)
    let src =
      Printf.sprintf
        "retrieve (a.id, b.id) where a.id = b.amount and %s and %s"
        (ptree_text "a" pa) (ptree_text "b" pb)
    in
    let got = run_query db src in
    let want =
      List.sort compare
        (List.concat_map
           (fun ra ->
             List.filter_map
               (fun rb ->
                 if ra.id = rb.amount && ptree_fn pa ra && ptree_fn pb rb then
                   Some [ ra.id; rb.id ]
                 else None)
               rows_b)
           rows_a)
    in
    if got <> want then
      Alcotest.failf "join trial %d diverged on %s (%d vs %d rows)" trial src
        (List.length got) (List.length want)
  done

let test_range_oracle () =
  let rng = Random.State.make [| 909 |] in
  for trial = 1 to 30 do
    let rows = gen_rows rng 80 in
    let db = build_db rows [] ~org_a:`Isam ~org_b:`Heap in
    let lo = Random.State.int rng 80 and span = Random.State.int rng 30 in
    let src =
      Printf.sprintf "retrieve (a.id) where a.id >= %d and a.id < %d" lo
        (lo + span)
    in
    let got = run_query db src in
    let want =
      List.sort compare
        (List.filter_map
           (fun r -> if r.id >= lo && r.id < lo + span then Some [ r.id ] else None)
           rows)
    in
    if got <> want then
      Alcotest.failf "range trial %d diverged on %s" trial src
  done

let test_aggregate_oracle () =
  let rng = Random.State.make [| 1331 |] in
  for trial = 1 to 30 do
    let rows = gen_rows rng 50 in
    let db = build_db rows [] ~org_a:(List.nth orgs (trial mod 3)) ~org_b:`Heap in
    let p = gen_ptree rng 1 in
    let src =
      Printf.sprintf "retrieve (c = count(a.id), s = sum(a.amount)) where %s"
        (ptree_text "a" p)
    in
    let qualifying = List.filter (ptree_fn p) rows in
    let want =
      [ [ List.length qualifying;
          List.fold_left (fun acc r -> acc + r.amount) 0 qualifying ] ]
    in
    let got = run_query db src in
    if got <> want then Alcotest.failf "aggregate trial %d diverged on %s" trial src
  done

let suites =
  [
    ( "oracle",
      [
        Alcotest.test_case "single variable, all access methods" `Quick
          test_single_variable_oracle;
        Alcotest.test_case "joins under every plan" `Quick test_join_oracle;
        Alcotest.test_case "range probes" `Quick test_range_oracle;
        Alcotest.test_case "aggregates" `Quick test_aggregate_oracle;
      ] );
  ]
