module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let test_default_start () =
  let c = Clock.create () in
  Alcotest.(check string)
    "starts at 1980-01-01" "1980-01-01 00:00:00"
    (Chronon.to_string (Clock.now c))

let test_advance_and_tick () =
  let c = Clock.create ~start:(Chronon.of_seconds 100) () in
  Clock.advance c 10;
  Alcotest.(check int) "advanced" 110 (Chronon.to_seconds (Clock.now c));
  let t = Clock.tick c in
  Alcotest.(check int) "tick returns new now" 111 (Chronon.to_seconds t);
  Alcotest.(check int) "tick advanced the clock" 111
    (Chronon.to_seconds (Clock.now c))

let test_monotone () =
  let c = Clock.create ~start:(Chronon.of_seconds 100) () in
  Alcotest.check_raises "no negative advance"
    (Invalid_argument "Clock.advance: negative amount") (fun () ->
      Clock.advance c (-1));
  Alcotest.check_raises "no backwards set"
    (Invalid_argument "Clock.set: cannot move a clock backwards") (fun () ->
      Clock.set c (Chronon.of_seconds 99));
  Clock.set c (Chronon.of_seconds 200);
  Alcotest.(check int) "set forward" 200 (Chronon.to_seconds (Clock.now c))

let test_independent () =
  let a = Clock.create ~start:(Chronon.of_seconds 0) () in
  let b = Clock.create ~start:(Chronon.of_seconds 0) () in
  Clock.advance a 5;
  Alcotest.(check int) "b unaffected" 0 (Chronon.to_seconds (Clock.now b))

let suites =
  [
    ( "clock",
      [
        Alcotest.test_case "default start" `Quick test_default_start;
        Alcotest.test_case "advance and tick" `Quick test_advance_and_tick;
        Alcotest.test_case "monotone" `Quick test_monotone;
        Alcotest.test_case "independent clocks" `Quick test_independent;
      ] );
  ]
