module Relation_file = Tdb_storage.Relation_file
module Io_stats = Tdb_storage.Io_stats
module Buffer_pool = Tdb_storage.Buffer_pool
module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Chronon = Tdb_time.Chronon

let attr name ty = { Schema.name; ty }

(* The paper's relation layout over a temporal database. *)
let schema =
  Schema.create_exn
    ~db_type:(Db_type.Temporal Db_type.Interval)
    [
      attr "id" Attr_type.I4;
      attr "amount" Attr_type.I4;
      attr "seq" Attr_type.I4;
      attr "string" (Attr_type.C 96);
    ]

let t0 = Value.Time (Chronon.of_seconds 0)
let tf = Value.Time Chronon.forever

let tuple id =
  [| Value.Int id; Value.Int (id * 100); Value.Int 0; Value.Str "payload";
     t0; tf; t0; tf |]

let make () = Relation_file.create ~name:"test" ~schema ()

let fill rel n =
  for i = 0 to n - 1 do
    ignore (Relation_file.insert rel (tuple i))
  done

let test_heap_then_scan () =
  let rel = make () in
  fill rel 20;
  let n = ref 0 in
  Relation_file.scan rel (fun _ tu ->
      incr n;
      Alcotest.(check int) "arity" 8 (Array.length tu));
  Alcotest.(check int) "all scanned" 20 !n;
  Alcotest.(check int) "tuple_count agrees" 20 (Relation_file.tuple_count rel)

let test_modify_to_hash () =
  let rel = make () in
  fill rel 1024;
  Relation_file.modify rel (Relation_file.Hash { key_attr = 0; fillfactor = 100 });
  Alcotest.(check int) "count preserved" 1024 (Relation_file.tuple_count rel);
  let found = ref [] in
  Relation_file.lookup rel (Value.Int 500) (fun _ tu -> found := tu :: !found);
  (match !found with
  | [ tu ] -> Alcotest.(check bool) "right tuple" true (Value.equal tu.(0) (Value.Int 500))
  | l -> Alcotest.failf "expected 1 tuple, got %d" (List.length l));
  match Relation_file.key_attr rel with
  | Some 0 -> ()
  | _ -> Alcotest.fail "key attr"

let test_modify_to_isam () =
  let rel = make () in
  fill rel 1024;
  Relation_file.modify rel (Relation_file.Isam { key_attr = 0; fillfactor = 100 });
  (* 128 data + 1 directory *)
  Alcotest.(check int) "129 pages" 129 (Relation_file.npages rel);
  let found = ref 0 in
  Relation_file.lookup rel (Value.Int 500) (fun _ _ -> incr found);
  Alcotest.(check int) "lookup" 1 !found

let test_modify_back_to_heap () =
  let rel = make () in
  fill rel 100;
  Relation_file.modify rel (Relation_file.Hash { key_attr = 0; fillfactor = 100 });
  Relation_file.modify rel Relation_file.Heap;
  Alcotest.(check int) "count preserved" 100 (Relation_file.tuple_count rel);
  Alcotest.(check bool) "no key" true (Relation_file.key_attr rel = None)

let test_update_delete () =
  let rel = make () in
  fill rel 10;
  let target = ref None in
  Relation_file.scan rel (fun tid tu ->
      if Value.equal tu.(0) (Value.Int 5) then target := Some (tid, tu));
  let tid, tu = Option.get !target in
  let tu' = Array.copy tu in
  tu'.(2) <- Value.Int 42;
  Relation_file.update rel tid tu';
  let back = Relation_file.read rel tid in
  Alcotest.(check bool) "seq updated" true (Value.equal back.(2) (Value.Int 42));
  Relation_file.delete rel tid;
  Alcotest.(check int) "one fewer" 9 (Relation_file.tuple_count rel)

let test_io_accounting_per_relation () =
  let rel = make () in
  fill rel 100;
  Buffer_pool.invalidate (Relation_file.pool rel);
  Io_stats.reset (Relation_file.stats rel);
  Relation_file.scan rel (fun _ _ -> ());
  Alcotest.(check int) "scan cost = npages"
    (Relation_file.npages rel)
    (Io_stats.reads (Relation_file.stats rel))

let test_bad_key_attr () =
  let rel = make () in
  fill rel 4;
  Alcotest.(check bool) "key attr out of range" true
    (try
       Relation_file.modify rel (Relation_file.Hash { key_attr = 99; fillfactor = 100 });
       false
     with Invalid_argument _ -> true)

let test_file_backed () =
  let path = Filename.temp_file "tdb_rel" ".pages" in
  Sys.remove path;
  let rel =
    Relation_file.create ~backing:(`File path) ~name:"durable" ~schema ()
  in
  fill rel 10;
  Relation_file.close rel;
  (* Reopen as heap and count records. *)
  let rel2 =
    Relation_file.create ~backing:(`File path) ~name:"durable" ~schema ()
  in
  Alcotest.(check int) "records survived" 10 (Relation_file.tuple_count rel2);
  Relation_file.close rel2;
  Sys.remove path

let prop_modify_preserves_multiset =
  QCheck2.Test.make ~name:"modify preserves the tuple multiset" ~count:25
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 200) (int_range 0 50))
        (oneofl
           [
             Relation_file.Heap;
             Relation_file.Hash { key_attr = 0; fillfactor = 100 };
             Relation_file.Hash { key_attr = 0; fillfactor = 50 };
             Relation_file.Isam { key_attr = 0; fillfactor = 100 };
             Relation_file.Isam { key_attr = 1; fillfactor = 50 };
           ]))
    (fun (ids, org) ->
      let rel = make () in
      List.iter (fun i -> ignore (Relation_file.insert rel (tuple i))) ids;
      Relation_file.modify rel org;
      let seen = ref [] in
      Relation_file.scan rel (fun _ tu ->
          match tu.(0) with Value.Int k -> seen := k :: !seen | _ -> ());
      List.sort compare !seen = List.sort compare ids)

let suites =
  [
    ( "relation_file",
      [
        Alcotest.test_case "heap then scan" `Quick test_heap_then_scan;
        Alcotest.test_case "modify to hash" `Quick test_modify_to_hash;
        Alcotest.test_case "modify to isam" `Quick test_modify_to_isam;
        Alcotest.test_case "modify back to heap" `Quick test_modify_back_to_heap;
        Alcotest.test_case "update/delete" `Quick test_update_delete;
        Alcotest.test_case "per-relation io accounting" `Quick
          test_io_accounting_per_relation;
        Alcotest.test_case "bad key attr" `Quick test_bad_key_attr;
        Alcotest.test_case "file backed" `Quick test_file_backed;
        QCheck_alcotest.to_alcotest prop_modify_preserves_multiset;
      ] );
  ]
