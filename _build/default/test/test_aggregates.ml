(* Quel aggregates: count, sum, avg, min, max, any - including aggregates
   over temporal attributes and over temporally-restricted sets. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))

let query db src =
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; schema; _ } -> (schema, tuples)
  | _ -> Alcotest.fail "expected rows"

let one_row db src =
  match query db src with
  | _, [ tu ] -> tu
  | _, l -> Alcotest.failf "expected one row, got %d" (List.length l)

let fresh_static () =
  let db = ok (Database.create ()) in
  exec db
    {|create nums (k = i4, v = i4, f = f8)
      range of n is nums|};
  List.iter
    (fun (k, v, f) ->
      exec db (Printf.sprintf "append to nums (k = %d, v = %d, f = %f)" k v f))
    [ (1, 10, 0.5); (2, 20, 1.5); (3, 30, 2.5); (4, 40, 3.5) ];
  db

let test_basic_aggregates () =
  let db = fresh_static () in
  (match one_row db "retrieve (n = count(n.k), s = sum(n.v), lo = min(n.v), hi = max(n.v))" with
  | [| Value.Int 4; Value.Int 100; Value.Int 10; Value.Int 40 |] -> ()
  | tu -> Alcotest.failf "got %s" (String.concat "," (Array.to_list (Array.map Value.to_string tu))));
  (match one_row db "retrieve (a = avg(n.v))" with
  | [| Value.Float a |] -> Alcotest.(check (float 0.001)) "avg" 25.0 a
  | _ -> Alcotest.fail "avg");
  match one_row db "retrieve (s = sum(n.f))" with
  | [| Value.Float s |] -> Alcotest.(check (float 0.001)) "float sum" 8.0 s
  | _ -> Alcotest.fail "float sum"

let test_aggregates_with_where () =
  let db = fresh_static () in
  (match one_row db "retrieve (c = count(n.k), s = sum(n.v)) where n.v > 15" with
  | [| Value.Int 3; Value.Int 90 |] -> ()
  | tu -> Alcotest.failf "got %s" (String.concat "," (Array.to_list (Array.map Value.to_string tu))));
  (* empty qualifying set: count/sum/any degrade gracefully *)
  (match one_row db "retrieve (c = count(n.k), s = sum(n.v), a = any(n.k)) where n.v > 999" with
  | [| Value.Int 0; Value.Int 0; Value.Int 0 |] -> ()
  | _ -> Alcotest.fail "empty set");
  (* ... but min/max over nothing is an error *)
  match Engine.execute_one db "retrieve (m = min(n.v)) where n.v > 999" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "min over empty set accepted"

let test_aggregate_expressions () =
  let db = fresh_static () in
  (* aggregates compose in arithmetic; operands are full expressions *)
  match one_row db "retrieve (x = sum(n.v * 2) + count(n.k), y = max(n.v) - min(n.v))" with
  | [| Value.Int 204; Value.Int 30 |] -> ()
  | tu -> Alcotest.failf "got %s" (String.concat "," (Array.to_list (Array.map Value.to_string tu)))

let test_any () =
  let db = fresh_static () in
  (match one_row db "retrieve (a = any(n.k)) where n.v = 20" with
  | [| Value.Int 1 |] -> ()
  | _ -> Alcotest.fail "any hit");
  match one_row db "retrieve (a = any(n.k)) where n.v = 21" with
  | [| Value.Int 0 |] -> ()
  | _ -> Alcotest.fail "any miss"

let test_temporal_aggregates () =
  (* aggregates respect temporal qualification and work on time values *)
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-01-01") ()) in
  exec db
    {|create persistent interval t (k = i4, v = i4)
      range of t is t|};
  for k = 1 to 5 do
    exec db (Printf.sprintf "append to t (k = %d, v = %d)" k (k * 10))
  done;
  Clock.advance (Database.clock db) 1000;
  exec db "replace t (v = t.v + 1) where t.k <= 2";
  (* currently valid: 11, 21, 30, 40, 50 *)
  (match one_row db {|retrieve (s = sum(t.v)) when t overlap "now"|} with
  | [| Value.Int 152 |] -> ()
  | tu -> Alcotest.failf "temporal sum: %s" (Value.to_string tu.(0)));
  (* over the full known history (default as-of "now" keeps the
     transaction-current versions: 5 current + 2 terminated records) *)
  (match one_row db "retrieve (c = count(t.k))" with
  | [| Value.Int 7 |] -> ()
  | tu -> Alcotest.failf "version count: %s" (Value.to_string tu.(0)));
  (* earliest transaction start among transaction-current versions: the
     first two appends (:01, :02) were superseded by the replace, so the
     oldest surviving record is tuple 3's append at :03 *)
  (match one_row db "retrieve (first = min(t.transaction_start))" with
  | [| Value.Time c |] ->
      Alcotest.(check string) "min over time" "1980-01-01 00:00:03"
        (Chronon.to_string c)
  | _ -> Alcotest.fail "min over time");
  (* rolled back before the replace, the first stamp IS the first append *)
  match
    one_row db
      {|retrieve (first = min(t.transaction_start)) as of "1980-01-01 00:10:00"|}
  with
  | [| Value.Time c |] ->
      Alcotest.(check string) "min over time, rolled back"
        "1980-01-01 00:00:01" (Chronon.to_string c)
  | _ -> Alcotest.fail "min over time, rolled back"

let test_aggregate_join () =
  let db = fresh_static () in
  exec db
    {|create pairs (k = i4)
      range of p is pairs
      append to pairs (k = 1)
      append to pairs (k = 3)|};
  (* count of join results *)
  match one_row db "retrieve (c = count(n.k)) where n.k = p.k" with
  | [| Value.Int 2 |] -> ()
  | tu -> Alcotest.failf "join count: %s" (Value.to_string tu.(0))

let test_aggregate_errors () =
  let db = fresh_static () in
  let err src =
    match Engine.execute_one db src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S accepted" src
  in
  err "retrieve (x = count(n.k), y = n.v)" (* bare attr next to aggregate *);
  err "retrieve (x = count(sum(n.v)))" (* nested *);
  err "retrieve (n.v) where sum(n.v) > 5" (* aggregate in where *);
  err "replace n (v = sum(n.v))" (* aggregate in modification *);
  err "retrieve (s = sum(n.k)) valid from \"now\" to \"forever\""
    (* would need temporal aggregate semantics *);
  err "retrieve (s = avg(n.k)) where n.k > 999" (* avg over empty *)

let fresh_employees () =
  let db = ok (Database.create ()) in
  exec db
    {|create emp (name = c10, dept = c10, salary = i4)
      range of e is emp|};
  List.iter
    (fun (n, d, s) ->
      exec db
        (Printf.sprintf
           {|append to emp (name = "%s", dept = "%s", salary = %d)|} n d s))
    [
      ("ahn", "cs", 100); ("snodgrass", "cs", 200); ("kim", "cs", 300);
      ("lee", "math", 50); ("cho", "math", 150);
    ];
  db

let test_by_aggregates () =
  let db = fresh_employees () in
  (* Quel's aggregate functions: per-binding values grouped on the by-list *)
  let r =
    query db
      "retrieve unique (e.dept, total = sum(e.salary by e.dept),
                        head = count(e.name by e.dept))"
  in
  let rows =
    List.sort compare
      (List.map
         (fun tu ->
           match tu with
           | [| Value.Str d; Value.Int t; Value.Int c |] -> (d, t, c)
           | _ -> Alcotest.fail "row shape")
         (snd r))
  in
  Alcotest.(check bool) "grouped sums and counts" true
    (rows = [ ("cs", 600, 3); ("math", 200, 2) ]);
  (* without unique: one row per binding, each carrying its group's value *)
  let all = query db "retrieve (e.name, share = sum(e.salary by e.dept))" in
  Alcotest.(check int) "per-binding rows" 5 (List.length (snd all))

let test_by_aggregate_composition () =
  let db = fresh_employees () in
  (* by-aggregates compose in arithmetic with plain attributes *)
  match
    one_row db
      {|retrieve (frac = e.salary * 100 / sum(e.salary by e.dept))
        where e.name = "kim"|}
  with
  | [| Value.Int 50 |] -> () (* 300 of 600 *)
  | tu -> Alcotest.failf "got %s" (Value.to_string tu.(0))

let test_by_aggregate_errors () =
  let db = fresh_employees () in
  let err src =
    match Engine.execute_one db src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S accepted" src
  in
  (* mixing a global aggregate with a by-aggregate *)
  err "retrieve (a = sum(e.salary), b = sum(e.salary by e.dept))";
  (* by-list entry that is not an attribute *)
  err "retrieve (x = sum(e.salary by 5))";
  (* by-list crossing tuple variables *)
  exec db "create other (k = i4)";
  exec db "range of o is other";
  err "retrieve (x = sum(e.salary by o.k))"

let test_aggregate_result_is_static () =
  (* even over a temporal source, an aggregate result has no time attrs *)
  let db = ok (Database.create ()) in
  exec db
    {|create persistent interval t (k = i4)
      range of t is t
      append to t (k = 5)|};
  let schema, rows = query db "retrieve (c = count(t.k))" in
  Alcotest.(check int) "single attribute" 1
    (Tdb_relation.Schema.arity schema);
  Alcotest.(check int) "single row" 1 (List.length rows)

let suites =
  [
    ( "aggregates",
      [
        Alcotest.test_case "basic" `Quick test_basic_aggregates;
        Alcotest.test_case "with where" `Quick test_aggregates_with_where;
        Alcotest.test_case "in expressions" `Quick test_aggregate_expressions;
        Alcotest.test_case "any" `Quick test_any;
        Alcotest.test_case "temporal aggregates" `Quick test_temporal_aggregates;
        Alcotest.test_case "over a join" `Quick test_aggregate_join;
        Alcotest.test_case "errors" `Quick test_aggregate_errors;
        Alcotest.test_case "by-aggregates (grouping)" `Quick test_by_aggregates;
        Alcotest.test_case "by-aggregate composition" `Quick
          test_by_aggregate_composition;
        Alcotest.test_case "by-aggregate errors" `Quick test_by_aggregate_errors;
        Alcotest.test_case "result is static" `Quick
          test_aggregate_result_is_static;
      ] );
  ]
