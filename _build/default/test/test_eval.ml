module Eval = Tdb_query.Eval
module Schema = Tdb_relation.Schema
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
open Tdb_tquel.Ast

let attr name ty = { Schema.name; ty }

let schema =
  Schema.create_exn
    ~db_type:(Db_type.Temporal Db_type.Interval)
    [ attr "id" Attr_type.I4; attr "name" (Attr_type.C 8) ]

let t s = Value.Time (Chronon.of_seconds s)

let tuple ~id ~vf ~vt ~ts ~te =
  [| Value.Int id; Value.Str "x"; t vf; t vt; t ts; t te |]

let ctx ?(now = 1000) bindings =
  {
    Eval.bindings =
      List.map (fun (var, tuple) -> { Eval.var; schema; tuple }) bindings;
    now = Chronon.of_seconds now;
  }

let h = tuple ~id:500 ~vf:100 ~vt:200 ~ts:50 ~te:Chronon.(to_seconds forever)
let i = tuple ~id:7 ~vf:150 ~vt:300 ~ts:60 ~te:Chronon.(to_seconds forever)
let c = ctx [ ("h", h); ("i", i) ]

let test_expr () =
  let e v = Eval.expr c v in
  Alcotest.(check bool) "attr" true (Value.equal (e (Eattr ("h", "id"))) (Value.Int 500));
  Alcotest.(check bool) "implicit attr via underscore" true
    (Value.equal (e (Eattr ("h", "valid_from"))) (t 100));
  Alcotest.(check bool) "arith" true
    (Value.equal
       (e (Ebinop (Add, Eattr ("h", "id"), Ebinop (Mul, Eint 2, Eint 10))))
       (Value.Int 520));
  Alcotest.(check bool) "unary minus" true
    (Value.equal (e (Euminus (Eint 3))) (Value.Int (-3)));
  Alcotest.(check bool) "mod" true
    (Value.equal (e (Ebinop (Mod, Eint 17, Eint 5))) (Value.Int 2));
  Alcotest.(check bool) "float division" true
    (Value.equal (e (Ebinop (Div, Efloat 1., Efloat 4.))) (Value.Float 0.25))

let test_expr_errors () =
  let raises v =
    try
      ignore (Eval.expr c v);
      false
    with Eval.Eval_error _ -> true
  in
  Alcotest.(check bool) "unbound var" true (raises (Eattr ("z", "id")));
  Alcotest.(check bool) "missing attr" true (raises (Eattr ("h", "salary")));
  Alcotest.(check bool) "div by zero" true (raises (Ebinop (Div, Eint 1, Eint 0)));
  Alcotest.(check bool) "negate string" true (raises (Euminus (Estring "x")))

let test_pred () =
  let p v = Eval.pred c v in
  Alcotest.(check bool) "eq" true (p (Pcompare (Eq, Eattr ("h", "id"), Eint 500)));
  Alcotest.(check bool) "ne" false (p (Pcompare (Ne, Eattr ("h", "id"), Eint 500)));
  Alcotest.(check bool) "lt across vars" true
    (p (Pcompare (Lt, Eattr ("i", "id"), Eattr ("h", "id"))));
  Alcotest.(check bool) "and/or/not" true
    (p
       (Wand
          ( Wor (Pcompare (Eq, Eint 1, Eint 2), Pcompare (Eq, Eint 3, Eint 3)),
            Wnot (Pcompare (Eq, Eint 1, Eint 2)) )));
  (* time attribute vs string literal *)
  Alcotest.(check bool) "time vs string" true
    (p (Pcompare (Lt, Eattr ("h", "valid_from"), Estring "1981")))

let test_tempexpr () =
  let te v = Eval.tempexpr c v in
  (match te (Tvar "h") with
  | Some p ->
      Alcotest.(check int) "h period from" 100 (Chronon.to_seconds (Period.from_ p));
      Alcotest.(check int) "h period to" 200 (Chronon.to_seconds (Period.to_ p))
  | None -> Alcotest.fail "h period");
  (match te (Toverlap (Tvar "h", Tvar "i")) with
  | Some p ->
      Alcotest.(check int) "overlap from" 150 (Chronon.to_seconds (Period.from_ p));
      Alcotest.(check int) "overlap to" 200 (Chronon.to_seconds (Period.to_ p))
  | None -> Alcotest.fail "overlap");
  (match te (Textend (Tvar "h", Tvar "i")) with
  | Some p ->
      Alcotest.(check int) "extend from" 100 (Chronon.to_seconds (Period.from_ p));
      Alcotest.(check int) "extend to" 300 (Chronon.to_seconds (Period.to_ p))
  | None -> Alcotest.fail "extend");
  (match te (Tstart_of (Tvar "h")) with
  | Some p -> Alcotest.(check bool) "start is event" true (Period.is_event p)
  | None -> Alcotest.fail "start of");
  (* overlap of disjoint periods is undefined *)
  let j = tuple ~id:1 ~vf:500 ~vt:600 ~ts:0 ~te:10 in
  let c2 = ctx [ ("h", h); ("j", j) ] in
  Alcotest.(check bool) "disjoint overlap undefined" true
    (Eval.tempexpr c2 (Toverlap (Tvar "h", Tvar "j")) = None)

let test_tconst_now () =
  match Eval.tempexpr c (Tconst "now") with
  | Some p ->
      Alcotest.(check bool) "now is an event" true (Period.is_event p);
      Alcotest.(check int) "now value" 1000 (Chronon.to_seconds (Period.from_ p))
  | None -> Alcotest.fail "now"

let test_temppred () =
  let tp v = Eval.temppred c v in
  Alcotest.(check bool) "overlap" true (tp (Poverlap (Tvar "h", Tvar "i")));
  Alcotest.(check bool) "precede" true
    (tp (Pprecede (Tstart_of (Tvar "h"), Tvar "i")));
  Alcotest.(check bool) "not precede (overlapping)" false
    (tp (Pprecede (Tvar "h", Tvar "i")));
  Alcotest.(check bool) "equal self" true (tp (Pequal (Tvar "h", Tvar "h")));
  Alcotest.(check bool) "undefined operand is false" false
    (let j = tuple ~id:1 ~vf:500 ~vt:600 ~ts:0 ~te:10 in
     let c2 = ctx [ ("h", h); ("j", j) ] in
     Eval.temppred c2 (Poverlap (Toverlap (Tvar "h", Tvar "j"), Tvar "h")));
  (* current version overlaps "now" *)
  let cur = tuple ~id:2 ~vf:100 ~vt:Chronon.(to_seconds forever) ~ts:0
      ~te:Chronon.(to_seconds forever) in
  let c3 = ctx [ ("h", cur) ] in
  Alcotest.(check bool) "current overlaps now" true
    (Eval.temppred c3 (Poverlap (Tvar "h", Tconst "now")))

let test_static_relation_in_tempexpr () =
  let s = Schema.create_exn ~db_type:Db_type.Static [ attr "id" Attr_type.I4 ] in
  let b = { Eval.var = "s"; schema = s; tuple = [| Value.Int 1 |] } in
  let p = Eval.valid_of_tuple b in
  Alcotest.(check bool) "static tuples are always valid" true
    (Period.contains p (Chronon.of_seconds 12345))

let suites =
  [
    ( "eval",
      [
        Alcotest.test_case "expressions" `Quick test_expr;
        Alcotest.test_case "expression errors" `Quick test_expr_errors;
        Alcotest.test_case "predicates" `Quick test_pred;
        Alcotest.test_case "temporal expressions" `Quick test_tempexpr;
        Alcotest.test_case "now constant" `Quick test_tconst_now;
        Alcotest.test_case "temporal predicates" `Quick test_temppred;
        Alcotest.test_case "static in tempexpr" `Quick
          test_static_relation_in_tempexpr;
      ] );
  ]
