module Semck = Tdb_tquel.Semck
module Parser = Tdb_tquel.Parser
module Schema = Tdb_relation.Schema
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type

let attr name ty = { Schema.name; ty }

let paper_attrs =
  [
    attr "id" Attr_type.I4;
    attr "amount" Attr_type.I4;
    attr "seq" Attr_type.I4;
    attr "string" (Attr_type.C 96);
  ]

let mk db_type = { Semck.schema = Schema.create_exn ~db_type paper_attrs; db_type }

let relations =
  [
    ("static_h", mk Db_type.Static);
    ("rollback_h", mk Db_type.Rollback);
    ("historical_h", mk (Db_type.Historical Db_type.Interval));
    ("temporal_h", mk (Db_type.Temporal Db_type.Interval));
    ("temporal_i", mk (Db_type.Temporal Db_type.Interval));
  ]

let ranges =
  [ ("s", "static_h"); ("r", "rollback_h"); ("hh", "historical_h");
    ("h", "temporal_h"); ("i", "temporal_i") ]

let env =
  {
    Semck.find_relation = (fun name -> List.assoc_opt name relations);
    find_range = (fun v -> List.assoc_opt v ranges);
  }

let check src =
  match Parser.parse_statement src with
  | Error e -> Alcotest.failf "parse %S: %s" src e
  | Ok stmt -> Semck.check_statement env stmt

let expect_ok src =
  match check src with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%S rejected: %s" src e

let expect_err src =
  match check src with
  | Ok () -> Alcotest.failf "%S accepted" src
  | Error _ -> ()

let test_paper_queries_legal () =
  expect_ok "retrieve (h.id, h.seq) where h.id = 500";
  expect_ok {|retrieve (h.id, h.seq) as of "08:00 1/1/80"|};
  expect_ok {|retrieve (h.id, h.seq) where h.id = 500 when h overlap "now"|};
  expect_ok
    {|retrieve (h.id, i.id, i.amount) where h.id = i.amount
      when h overlap i and i overlap "now"|};
  expect_ok
    {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
      valid from start of h to end of i
      when start of h precede i as of "4:00 1/1/80"|};
  expect_ok
    {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
      valid from start of (h overlap i) to end of (h extend i)
      where h.id = 500 and i.amount = 73700
      when h overlap i as of "now"|}

let test_db_type_legality () =
  (* when needs valid time *)
  expect_err {|retrieve (s.id) when s overlap "now"|};
  expect_err {|retrieve (r.id) when r overlap "now"|};
  expect_ok {|retrieve (hh.id) when hh overlap "now"|};
  (* as of needs transaction time *)
  expect_err {|retrieve (s.id) as of "1981"|};
  expect_err {|retrieve (hh.id) as of "1981"|};
  expect_ok {|retrieve (r.id) as of "1981"|};
  expect_ok {|retrieve (h.id) as of "1981"|}

let test_unknown_names () =
  expect_err "retrieve (z.id)" (* no range *);
  expect_err "retrieve (h.salary)" (* no attribute *);
  expect_err "range of x is nothing" (* no relation *);
  expect_err "destroy nothing";
  expect_err "modify nothing to heap"

let test_type_checking () =
  expect_err {|retrieve (h.id) where h.id = "abc"|};
  expect_ok {|retrieve (h.id) where h.string = "abc"|};
  expect_err {|retrieve (h.id) where h.string = 5|};
  expect_ok "retrieve (x = h.id + h.amount * 2)";
  expect_err {|retrieve (x = h.string + 1)|};
  (* time attribute vs string literal is allowed *)
  expect_ok {|retrieve (h.id) where h.valid_from < "1981"|};
  expect_ok {|retrieve (h.id) where h.transaction_start < h.valid_to|}

let test_targets () =
  expect_err "retrieve (x = h.id, x = h.amount)" (* dup name *);
  expect_err "retrieve (5)" (* no name *);
  expect_ok "retrieve (five = 5)"

let test_modifications () =
  expect_ok "append to temporal_h (id = 1, amount = 2)";
  expect_err "append to temporal_h (salary = 1)";
  expect_err "append to temporal_h (valid_from = 1)" (* implicit attr *);
  expect_err {|append to static_h (id = 1) valid from "now" to "forever"|};
  expect_ok {|append to temporal_h (id = 1) valid from "now" to "forever"|};
  expect_ok "replace h (seq = h.seq + 1) where h.id = 3";
  expect_err "replace h (nope = 1)";
  expect_ok "delete h where h.id = 5";
  expect_ok "create brand_new (x = i4, y = c20)";
  expect_err "create temporal_h (x = i4)" (* already exists *);
  expect_err "create bad (x = i9)" (* bad type *);
  expect_ok "modify temporal_h to hash on id where fillfactor = 50";
  expect_err "modify temporal_h to hash where fillfactor = 50" (* no key *);
  expect_err "modify temporal_h to hash on id where fillfactor = 0";
  expect_err "modify temporal_h to heap on id" (* heap takes no key *)

let test_when_var_needs_valid_time () =
  (* a static variable inside a temporal expression *)
  expect_err {|retrieve (h.id) when s overlap "now"|};
  expect_err {|retrieve (h.id) valid from start of s to end of h|}

let test_bad_time_constants () =
  expect_err {|retrieve (h.id) when h overlap "not a date"|};
  expect_err {|retrieve (h.id) as of "13:99 1/1/80"|}

let suites =
  [
    ( "semck",
      [
        Alcotest.test_case "paper queries legal" `Quick test_paper_queries_legal;
        Alcotest.test_case "db type legality" `Quick test_db_type_legality;
        Alcotest.test_case "unknown names" `Quick test_unknown_names;
        Alcotest.test_case "type checking" `Quick test_type_checking;
        Alcotest.test_case "targets" `Quick test_targets;
        Alcotest.test_case "modifications" `Quick test_modifications;
        Alcotest.test_case "when needs valid time" `Quick
          test_when_var_needs_valid_time;
        Alcotest.test_case "bad time constants" `Quick test_bad_time_constants;
      ] );
  ]
