module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period

let attr name ty = { Schema.name; ty }

let temporal_schema =
  Schema.create_exn
    ~db_type:(Db_type.Temporal Db_type.Interval)
    [ attr "id" Attr_type.I4; attr "name" (Attr_type.C 8) ]

let t sec = Value.Time (Chronon.of_seconds sec)

let sample_tuple =
  [| Value.Int 500; Value.Str "ahn"; t 100; Value.Time Chronon.forever;
     t 50; Value.Time Chronon.forever |]

let test_round_trip () =
  let buf = Tuple.encode temporal_schema sample_tuple in
  Alcotest.(check int) "encoded size" (Schema.tuple_size temporal_schema)
    (Bytes.length buf);
  let back = Tuple.decode temporal_schema buf 0 in
  Alcotest.(check bool) "round trip" true (Tuple.equal sample_tuple back)

let test_validate () =
  (match Tuple.validate temporal_schema sample_tuple with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Tuple.validate temporal_schema [| Value.Int 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "arity mismatch accepted");
  match
    Tuple.validate temporal_schema
      [| Value.Str "oops"; Value.Str "x"; t 0; t 0; t 0; t 0 |]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "type mismatch accepted"

let test_periods () =
  (match Tuple.valid_period temporal_schema sample_tuple with
  | Some p ->
      Alcotest.(check int) "valid from" 100 (Chronon.to_seconds (Period.from_ p));
      Alcotest.(check bool) "valid to forever" true
        (Chronon.is_forever (Period.to_ p))
  | None -> Alcotest.fail "no valid period");
  (match Tuple.transaction_period temporal_schema sample_tuple with
  | Some p ->
      Alcotest.(check int) "tstart" 50 (Chronon.to_seconds (Period.from_ p))
  | None -> Alcotest.fail "no transaction period");
  let static_schema =
    Schema.create_exn ~db_type:Db_type.Static [ attr "id" Attr_type.I4 ]
  in
  Alcotest.(check bool) "static has no periods" true
    (Tuple.valid_period static_schema [| Value.Int 1 |] = None
    && Tuple.transaction_period static_schema [| Value.Int 1 |] = None)

let test_is_current () =
  Alcotest.(check bool) "current version" true
    (Tuple.is_current temporal_schema sample_tuple);
  let dead =
    Tuple.set_time sample_tuple
      (Option.get (Schema.transaction_stop_index temporal_schema))
      (Chronon.of_seconds 60)
  in
  Alcotest.(check bool) "logically deleted version" false
    (Tuple.is_current temporal_schema dead)

let test_event_valid_period () =
  let es =
    Schema.create_exn ~db_type:(Db_type.Historical Db_type.Event)
      [ attr "id" Attr_type.I4 ]
  in
  let tu = [| Value.Int 1; t 42 |] in
  match Tuple.valid_period es tu with
  | Some p ->
      Alcotest.(check bool) "event period" true (Period.is_event p);
      Alcotest.(check int) "at 42" 42 (Chronon.to_seconds (Period.from_ p))
  | None -> Alcotest.fail "no valid period"

let test_project () =
  let p = Tuple.project sample_tuple [ 1; 0 ] in
  Alcotest.(check bool) "projection" true
    (Tuple.equal p [| Value.Str "ahn"; Value.Int 500 |])

let test_get_set_time () =
  let i = Option.get (Schema.valid_from_index temporal_schema) in
  Alcotest.(check int) "get_time" 100
    (Chronon.to_seconds (Tuple.get_time sample_tuple i));
  let updated = Tuple.set_time sample_tuple i (Chronon.of_seconds 999) in
  Alcotest.(check int) "set_time is functional" 100
    (Chronon.to_seconds (Tuple.get_time sample_tuple i));
  Alcotest.(check int) "updated copy" 999
    (Chronon.to_seconds (Tuple.get_time updated i));
  Alcotest.(check bool) "get_time on non-time raises" true
    (try ignore (Tuple.get_time sample_tuple 0); false
     with Invalid_argument _ -> true)

(* property: encode/decode round trip over random tuples *)
let gen_tuple =
  QCheck2.Gen.(
    let* id = int_range (-100000) 100000 in
    let* name = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
    let* vf = int_range 0 1000000 in
    let* len = int_range 0 1000000 in
    let* ts = int_range 0 1000000 in
    return
      [| Value.Int id; Value.Str name;
         Value.Time (Chronon.of_seconds vf);
         Value.Time (Chronon.of_seconds (vf + len));
         Value.Time (Chronon.of_seconds ts);
         Value.Time Chronon.forever |])

let prop_round_trip =
  QCheck2.Test.make ~name:"tuple codec round trip" ~count:300 gen_tuple
    (fun tu ->
      let buf = Tuple.encode temporal_schema tu in
      Tuple.equal tu (Tuple.decode temporal_schema buf 0))

let suites =
  [
    ( "tuple",
      [
        Alcotest.test_case "round trip" `Quick test_round_trip;
        Alcotest.test_case "validate" `Quick test_validate;
        Alcotest.test_case "periods" `Quick test_periods;
        Alcotest.test_case "is_current" `Quick test_is_current;
        Alcotest.test_case "event valid period" `Quick test_event_valid_period;
        Alcotest.test_case "project" `Quick test_project;
        Alcotest.test_case "get/set time" `Quick test_get_set_time;
        QCheck_alcotest.to_alcotest prop_round_trip;
      ] );
  ]
