test/test_isam_file.ml: Alcotest Bytes Int32 List Printf QCheck2 QCheck_alcotest Tdb_relation Tdb_storage
