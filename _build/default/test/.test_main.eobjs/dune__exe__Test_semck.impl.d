test/test_semck.ml: Alcotest List Tdb_relation Tdb_tquel
