test/test_period.ml: Alcotest QCheck2 QCheck_alcotest Tdb_time
