test/test_value.ml: Alcotest Array Bytes List QCheck2 QCheck_alcotest Tdb_relation Tdb_time
