test/test_hash_file.ml: Alcotest Bytes Int32 List Option Printf QCheck2 QCheck_alcotest Tdb_relation Tdb_storage
