test/test_engine.ml: Alcotest Array Filename List Printf String Sys Tdb_core Tdb_relation Tdb_time
