test/test_executor.ml: Alcotest Array List Printf Tdb_core Tdb_query Tdb_relation Tdb_time
