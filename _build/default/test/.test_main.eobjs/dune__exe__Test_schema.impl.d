test/test_schema.ml: Alcotest List Tdb_relation
