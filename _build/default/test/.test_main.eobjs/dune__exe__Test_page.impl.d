test/test_page.ml: Alcotest Bytes Char QCheck2 QCheck_alcotest Tdb_storage
