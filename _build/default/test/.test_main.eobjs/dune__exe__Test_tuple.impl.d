test/test_tuple.ml: Alcotest Bytes Option QCheck2 QCheck_alcotest Tdb_relation Tdb_time
