test/test_chronon.ml: Alcotest Int List Printf QCheck2 QCheck_alcotest Tdb_time
