test/test_lexer.ml: Alcotest List String Tdb_tquel
