test/test_snapshot.ml: Alcotest Array List Printf Random String Tdb_core Tdb_relation Tdb_time
