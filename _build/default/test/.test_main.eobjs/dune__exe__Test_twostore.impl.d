test/test_twostore.ml: Alcotest Array List Option Printf QCheck2 QCheck_alcotest Tdb_relation Tdb_storage Tdb_time Tdb_twostore
