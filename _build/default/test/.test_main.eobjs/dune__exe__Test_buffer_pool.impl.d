test/test_buffer_pool.ml: Alcotest Bytes Filename Sys Tdb_storage
