test/test_catalog.ml: Alcotest Filename List Sys Tdb_core Tdb_relation Tdb_storage
