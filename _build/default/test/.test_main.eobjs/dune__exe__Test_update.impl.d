test/test_update.ml: Alcotest Array List Option Printf Tdb_core Tdb_relation Tdb_storage Tdb_time
