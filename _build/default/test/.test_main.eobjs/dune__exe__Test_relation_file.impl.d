test/test_relation_file.ml: Alcotest Array Filename List Option QCheck2 QCheck_alcotest Sys Tdb_relation Tdb_storage Tdb_time
