test/test_plan.ml: Alcotest List Tdb_query Tdb_tquel
