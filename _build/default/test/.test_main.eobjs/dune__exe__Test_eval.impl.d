test/test_eval.ml: Alcotest List Tdb_query Tdb_relation Tdb_time Tdb_tquel
