test/test_oracle.ml: Alcotest Array List Printf Random Tdb_core Tdb_relation
