test/test_heap_file.ml: Alcotest Bytes Int32 List QCheck2 QCheck_alcotest Tdb_storage
