test/test_clock.ml: Alcotest Tdb_time
