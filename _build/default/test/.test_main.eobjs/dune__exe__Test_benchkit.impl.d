test/test_benchkit.ml: Alcotest Array List Option Printf String Tdb_benchkit Tdb_relation Tdb_storage
