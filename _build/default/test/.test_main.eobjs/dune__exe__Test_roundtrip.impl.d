test/test_roundtrip.ml: QCheck2 QCheck_alcotest Tdb_tquel
