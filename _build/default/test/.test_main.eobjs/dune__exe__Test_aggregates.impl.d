test/test_aggregates.ml: Alcotest Array List Printf String Tdb_core Tdb_relation Tdb_time
