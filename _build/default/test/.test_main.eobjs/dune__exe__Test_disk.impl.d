test/test_disk.ml: Alcotest Bytes Filename Sys Tdb_storage
