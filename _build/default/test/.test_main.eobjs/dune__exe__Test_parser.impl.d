test/test_parser.ml: Alcotest List Tdb_relation Tdb_tquel
