test/test_events.ml: Alcotest Array List Printf Tdb_core Tdb_relation Tdb_time
