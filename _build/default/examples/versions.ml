(* Design-version management over the two-level store.

   Run with:  dune exec examples/versions.exe

   The paper's introduction points at "version management and design
   control in computer aided design" as a driver for temporal support, and
   its section 6 proposes the two-level store: current versions in a
   primary store that updates in place, history versions clustered in a
   history store.  This example manages revisions of circuit-board parts
   through that structure's public API and shows why it exists: lookups of
   the current revision stay at one page no matter how many revisions
   pile up. *)

module Two_level_store = Tdb_twostore.Two_level_store
module Secondary_index = Tdb_twostore.Secondary_index
module Relation_file = Tdb_storage.Relation_file
module Io_stats = Tdb_storage.Io_stats
module Schema = Tdb_relation.Schema
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Chronon = Tdb_time.Chronon

let schema =
  Schema.create_exn
    ~db_type:(Db_type.Temporal Db_type.Interval)
    [
      { Schema.name = "part"; ty = Attr_type.I4 };
      { Schema.name = "revision"; ty = Attr_type.I4 };
      { Schema.name = "engineer"; ty = Attr_type.C 12 };
      { Schema.name = "layer_count"; ty = Attr_type.I4 };
    ]

let t0 = Chronon.parse_exn "1980-01-01"
let at day = Chronon.add_seconds t0 (day * 86400)

let initial_part id =
  [| Value.Int id; Value.Int 1; Value.Str "kim"; Value.Int 2;
     Value.Time (at 0); Value.Time Chronon.forever;
     Value.Time (at 0); Value.Time Chronon.forever |]

let () =
  let store =
    Two_level_store.create ~name:"parts" ~schema
      ~organization:(Relation_file.Hash { key_attr = 0; fillfactor = 100 })
      ~clustered:true
      (List.init 256 initial_part)
  in
  (* Three months of engineering churn: every part revised twice a month. *)
  for month = 1 to 3 do
    for bump = 0 to 1 do
      for part = 0 to 255 do
        ignore
          (Two_level_store.replace store
             ~now:(at ((month * 30) + bump))
             ~key:(Value.Int part)
             (fun tu ->
               (match tu.(1) with
               | Value.Int r -> tu.(1) <- Value.Int (r + 1)
               | _ -> ());
               tu.(3) <- Value.Int (2 + month);
               tu))
      done
    done
  done;

  Printf.printf "primary store: %d pages (constant); history store: %d pages\n\n"
    (Two_level_store.primary_pages store)
    (Two_level_store.history_pages store);

  (* Current revision of part 42: one page, regardless of history depth. *)
  Two_level_store.reset_io store;
  Two_level_store.current_lookup store (Value.Int 42) (fun tu ->
      Printf.printf "part 42 current revision: r%s by %s, %s layers\n"
        (Value.to_string tu.(1)) (Value.to_string tu.(2))
        (Value.to_string tu.(3)));
  Printf.printf "  cost: %d page read(s)\n\n"
    (Two_level_store.io store).Io_stats.reads;

  (* The full revision history, newest first - the clustered history store
     packs it into a handful of pages. *)
  Two_level_store.reset_io store;
  print_endline "part 42 revision history (validity intervals):";
  Two_level_store.version_scan store (Value.Int 42) (fun tu ->
      match Tdb_relation.Tuple.valid_period schema tu with
      | Some p ->
          Printf.printf "  r%-3s %-28s\n" (Value.to_string tu.(1))
            (Tdb_time.Period.to_string p)
      | None -> ());
  Printf.printf "  cost: %d page read(s)\n\n"
    (Two_level_store.io store).Io_stats.reads;

  (* A secondary index on layer_count answers "which parts currently need
     4-layer boards?" without scanning. *)
  let entries =
    List.map
      (fun (tid, tu) -> (tu.(3), tid))
      (Two_level_store.current_tids store)
  in
  let index =
    Secondary_index.build ~structure:Secondary_index.Hash_index
      ~key_type:Attr_type.I4 entries
  in
  Two_level_store.reset_io store;
  Secondary_index.reset_io index;
  let four_layer = Secondary_index.lookup index (Value.Int 5) in
  Printf.printf "parts currently at 5 layers: %d (via %d-page current index)\n"
    (List.length four_layer)
    (Secondary_index.npages index);
  Printf.printf "  cost: %d index + %d data page read(s)\n"
    (Secondary_index.io index).Io_stats.reads
    (Two_level_store.io store).Io_stats.reads
