examples/quickstart.mli:
