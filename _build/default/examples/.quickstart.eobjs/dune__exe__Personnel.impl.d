examples/personnel.ml: Printf Tdb_core Tdb_time
