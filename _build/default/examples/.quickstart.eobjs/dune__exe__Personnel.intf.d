examples/personnel.mli:
