examples/versions.mli:
