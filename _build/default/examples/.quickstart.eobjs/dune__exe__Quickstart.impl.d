examples/quickstart.ml: Printf String Tdb_core Tdb_time
