examples/versions.ml: Array List Printf Tdb_relation Tdb_storage Tdb_time Tdb_twostore
