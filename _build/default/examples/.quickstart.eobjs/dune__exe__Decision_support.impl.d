examples/decision_support.ml: Array List Printf Tdb_core Tdb_relation Tdb_time
