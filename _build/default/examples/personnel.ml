(* Personnel records with error correction and audit trail.

   Run with:  dune exec examples/personnel.exe

   The paper's introduction motivates temporal support with retroactive
   and postactive changes and audit trails: "support for error correction
   or audit trail necessitates costly maintenance of backups, checkpoints,
   journals or transaction logs" without it.  This example plays out a
   small HR scenario:

   - Kim joins in January at 1000/month.
   - In March, payroll discovers Kim was promoted in FEBRUARY but the
     raise was never entered: a retroactive correction.
   - In April, a planned raise effective in MAY is entered early: a
     postactive change.
   - Auditors then ask both what was true and what the database believed
     at each moment - no log replay needed. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Clock = Tdb_time.Clock
module Chronon = Tdb_time.Chronon

let ok = function Ok v -> v | Error e -> failwith e

let show db label src =
  Printf.printf "\n-- %s\n" label;
  match ok (Engine.execute_one db src) with
  | Engine.Rows { schema; tuples; _ } ->
      print_endline (Engine.format_rows schema tuples)
  | _ -> ()

let () =
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-01-01") ()) in
  let exec src = ignore (ok (Engine.execute db src)) in
  let goto date = Clock.set (Database.clock db) (Chronon.parse_exn date) in

  exec
    {|create persistent interval pay (name = c16, monthly = i4)
      range of p is pay|};

  (* January 5: Kim joins. *)
  goto "1980-01-05";
  exec {|append to pay (name = "kim", monthly = 1000)|};

  (* March 10: the February promotion surfaces.  Close the old rate as of
     February 1 and record the corrected rate from then on - all in valid
     time, while transaction time remembers that we only learned this in
     March. *)
  goto "1980-03-10";
  exec {|delete p where p.name = "kim"|};
  exec
    {|append to pay (name = "kim", monthly = 1000)
        valid from "1980-01-05" to "1980-02-01"|};
  exec
    {|append to pay (name = "kim", monthly = 1200)
        valid from "1980-02-01" to "forever"|};

  (* April 20: a raise effective May 1 is entered ahead of time. *)
  goto "1980-04-20";
  exec {|delete p where p.name = "kim" when p overlap "1980-05-01"|};
  exec
    {|append to pay (name = "kim", monthly = 1200)
        valid from "1980-02-01" to "1980-05-01"|};
  exec
    {|append to pay (name = "kim", monthly = 1350)
        valid from "1980-05-01" to "forever"|};

  goto "1980-06-15";

  show db "What is Kim paid today (June 15)?"
    {|retrieve (p.name, p.monthly) where p.name = "kim" when p overlap "now"|};

  show db
    "Every recorded belief about Feb 15 pay, stamped with when it was \
     entered\n   (the section-4 scheme keeps superseded beliefs, closed at \
     correction time):"
    {|retrieve (p.monthly, recorded = p.transaction_start)
      where p.name = "kim" when p overlap "1980-02-15"|};

  show db
    "Audit: on March 1, what did the database BELIEVE Kim was paid on Feb 15?"
    {|retrieve (p.monthly) where p.name = "kim"
      when p overlap "1980-02-15" as of "1980-03-01"|};

  show db "Audit: and what did it believe after the March correction?"
    {|retrieve (p.monthly) where p.name = "kim"
      when p overlap "1980-02-15" as of "1980-03-15"|};

  show db "The postactive raise is already on record (validity starts May 1):"
    {|retrieve (p.monthly, p.valid_from, p.valid_to)
      where p.name = "kim" when p overlap "1980-05-02"|};

  show db "Full pay history as currently known:"
    {|retrieve (p.monthly, p.valid_from, p.valid_to) where p.name = "kim"|}
