(* Trend analysis over a historical relation.

   Run with:  dune exec examples/decision_support.exe

   "Conventional DBMS's cannot support historical queries about the past
   status, much less trend analysis which is essential for applications
   such as decision support systems" (paper, section 1).  Here a
   historical relation tracks warehouse inventory; because every change
   closes the old version's validity and opens a new one, asking "how much
   did we hold on date D?" is just a [when] query, and a trend is a loop
   of them. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Clock = Tdb_time.Clock
module Chronon = Tdb_time.Chronon
module Value = Tdb_relation.Value

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-01-01") ()) in
  let exec src = ignore (ok (Engine.execute db src)) in
  (* Advance the session clock to a date (statements tick it by a second
     each, so two movements on the same day just keep ticking). *)
  let goto date =
    let t = Chronon.parse_exn date in
    if Chronon.compare t (Database.now db) > 0 then
      Clock.set (Database.clock db) t
  in

  (* A historical relation: valid time only ("create interval").  *)
  exec
    {|create interval stock (item = c12, units = i4)
      range of s is stock|};

  (* Inventory moves over the first half of 1980. *)
  let movements =
    [
      ("1980-01-02", "widgets", 500);
      ("1980-01-02", "gadgets", 120);
      ("1980-02-15", "widgets", 430);
      ("1980-03-01", "gadgets", 260);
      ("1980-03-20", "widgets", 610);
      ("1980-04-11", "gadgets", 190);
      ("1980-05-05", "widgets", 380);
      ("1980-06-01", "gadgets", 240);
    ]
  in
  List.iter
    (fun (date, item, units) ->
      goto date;
      (* replace-or-insert: close the current version if there is one *)
      exec (Printf.sprintf {|delete s where s.item = "%s"|} item);
      exec (Printf.sprintf {|append to stock (item = "%s", units = %d)|} item units))
    movements;
  goto "1980-07-01";

  (* The trend: month-end stock levels reconstructed from history. *)
  print_endline "month-end inventory (reconstructed by historical queries):";
  print_endline "  date         widgets  gadgets";
  List.iter
    (fun date ->
      let level item =
        match
          ok
            (Engine.execute_one db
               (Printf.sprintf
                  {|retrieve (s.units) where s.item = "%s" when s overlap "%s"|}
                  item date))
        with
        | Engine.Rows { tuples = [ tu ]; _ } -> (
            match tu.(0) with Value.Int n -> n | _ -> 0)
        | _ -> 0
      in
      Printf.printf "  %s   %7d  %7d\n" date (level "widgets") (level "gadgets"))
    [
      "1980-01-31"; "1980-02-29"; "1980-03-31"; "1980-04-30"; "1980-05-31";
      "1980-06-30";
    ];

  (* Which intervals saw widgets below 450 units? Just scan the history. *)
  print_endline "\nperiods with widgets below 450 units:";
  (match
     ok
       (Engine.execute_one db
          {|retrieve (s.units, s.valid_from, s.valid_to)
            where s.item = "widgets" and s.units < 450|})
   with
  | Engine.Rows { schema; tuples; _ } ->
      print_endline (Engine.format_rows schema tuples)
  | _ -> ());

  (* Grouped aggregates fold over the whole history; anchoring the query
     on the current versions yields one summary row per item. *)
  print_endline
    "current state annotated with its history (grouped aggregates):";
  (match
     ok
       (Engine.execute_one db
          {|retrieve (s.item, now = s.units,
                      versions = count(s.units by s.item),
                      low = min(s.units by s.item),
                      high = max(s.units by s.item))
            when s overlap "now"|})
   with
  | Engine.Rows { schema; tuples; _ } ->
      print_endline (Engine.format_rows schema tuples)
  | _ -> ());

  (* And a temporal join: when were BOTH items below 300? (gadgets always
     are; the answer tracks widget dips) *)
  print_endline "when were both items below 450 at the same time?";
  exec "range of g is stock";
  match
    ok
      (Engine.execute_one db
         {|retrieve (w = s.units, g = g.units)
           valid from start of (s overlap g) to end of (s overlap g)
           where s.item = "widgets" and g.item = "gadgets"
                 and s.units < 450 and g.units < 450
           when s overlap g|})
  with
  | Engine.Rows { schema; tuples; _ } ->
      print_endline (Engine.format_rows schema tuples)
  | _ -> ()
