(* Quickstart: the public API in two minutes.

   Run with:  dune exec examples/quickstart.exe

   A temporal relation records both what was true (valid time) and what
   the database believed (transaction time).  We create one, change it,
   and ask the four kinds of questions the paper's taxonomy names. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Clock = Tdb_time.Clock
module Chronon = Tdb_time.Chronon

let ok = function Ok v -> v | Error e -> failwith e

let show db src =
  Printf.printf "tquel> %s\n" (String.concat " " (String.split_on_char '\n' src));
  match ok (Engine.execute_one db src) with
  | Engine.Rows { schema; tuples; _ } ->
      print_endline (Engine.format_rows schema tuples)
  | Engine.Modified { matched; inserted; _ } ->
      Printf.printf "-- %d qualified, %d versions inserted\n" matched inserted
  | Engine.Ack msg -> Printf.printf "-- %s\n" msg
  | Engine.Stored { relation; count; _ } ->
      Printf.printf "-- stored %d tuples into %s\n" count relation

let () =
  (* An in-memory database whose clock starts in June 1980.  Pass ~dir to
     Database.create for a persistent one. *)
  let db = ok (Database.create ~start:(Chronon.parse_exn "1980-06-01") ()) in
  let exec src = ignore (ok (Engine.execute db src)) in

  (* "create persistent interval" = temporal: valid AND transaction time. *)
  exec
    {|create persistent interval salary (name = c20, amount = i4)
      range of s is salary|};

  show db {|append to salary (name = "ahn", amount = 30000)|};
  show db {|append to salary (name = "snodgrass", amount = 35000)|};

  (* Remember this moment, then move time forward and give a raise. *)
  let before_raise = Chronon.to_string (Database.now db) in
  Clock.advance (Database.clock db) 86400;
  show db {|replace s (amount = 32000) where s.name = "ahn"|};

  print_endline "\n-- 1. A static query: the current state --";
  show db {|retrieve (s.name, s.amount) when s overlap "now"|};

  print_endline "-- 2. A historical query: what held the day before? --";
  show db
    (Printf.sprintf {|retrieve (s.name, s.amount) when s overlap "%s"|}
       before_raise);

  print_endline "-- 3. A rollback query: what did the database say then? --";
  show db
    (Printf.sprintf {|retrieve (s.name, s.amount) as of "%s"|} before_raise);

  print_endline "-- 4. The full version history of one tuple --";
  show db {|retrieve (s.amount, s.valid_from, s.valid_to) where s.name = "ahn"|};

  print_endline "-- Access methods work like Ingres: modify, then query --";
  show db "modify salary to hash on name where fillfactor = 100";
  show db {|retrieve (s.amount) where s.name = "ahn" when s overlap "now"|}
