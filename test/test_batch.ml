(* Batch-boundary regressions around the cursors' 64-record target: empty
   sources, exactly one batch, one record either side of the target, an
   overflow chain straddling a batch flush, and fence pruning under
   batching — plus the executor pipeline's row batcher at the same
   boundaries, observed end to end through the engine. *)

module Disk = Tdb_storage.Disk
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Pfile = Tdb_storage.Pfile
module Cursor = Tdb_storage.Cursor
module Time_fence = Tdb_storage.Time_fence
module Heap_file = Tdb_storage.Heap_file
module Hash_file = Tdb_storage.Hash_file
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
module Engine = Tdb_core.Engine
module Database = Tdb_core.Database

(* 124-byte records: 8 per page, so the 64-record batch target is exactly
   8 pages. *)
let record_size = 124
let c s = Chronon.of_seconds s

let record k =
  let b = Bytes.make record_size '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int k);
  Bytes.set_int32_be b 4 (Int32.of_int (k * 10));
  Bytes.set_int32_be b 8 (Int32.of_int ((k * 10) + 10));
  b

let field b off = Int32.to_int (Bytes.get_int32_be b off)

let stamp b =
  Time_fence.stamp
    ~transaction:(Some (c (field b 4), c (field b 8)))
    ~valid:None

let fresh_pool () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create (Disk.create_mem ()) stats in
  (pool, stats)

let heap_of n =
  let pool, stats = fresh_pool () in
  let h = Heap_file.create pool ~record_size in
  Pfile.enable_fences (Heap_file.pfile h) ~stamp;
  for k = 0 to n - 1 do
    ignore (Heap_file.insert h (record k))
  done;
  (h, pool, stats)

let batch_sizes cursor =
  let rec go acc =
    match Cursor.next cursor with
    | None -> List.rev acc
    | Some b ->
        Alcotest.(check int)
          "tids and records stay parallel"
          (Array.length b.Cursor.tids)
          (Array.length b.Cursor.records);
        go (Array.length b.Cursor.records :: acc)
  in
  go []

let test_empty_relation () =
  let h, _, _ = heap_of 0 in
  Alcotest.(check (list int)) "no batches" []
    (batch_sizes (Heap_file.scan_cursor h));
  Alcotest.(check bool) "empty cursor" true
    (Cursor.next Cursor.empty = None)

let test_exactly_one_batch () =
  let h, _, _ = heap_of Cursor.target in
  Alcotest.(check (list int)) "one full batch" [ Cursor.target ]
    (batch_sizes (Heap_file.scan_cursor h))

let test_target_minus_one () =
  let h, _, _ = heap_of (Cursor.target - 1) in
  Alcotest.(check (list int)) "one short batch" [ Cursor.target - 1 ]
    (batch_sizes (Heap_file.scan_cursor h))

let test_target_plus_one () =
  let h, _, _ = heap_of (Cursor.target + 1) in
  Alcotest.(check (list int))
    "a full batch, then the spilled page" [ Cursor.target; 1 ]
    (batch_sizes (Heap_file.scan_cursor h))

(* An overflow chain much longer than one batch: the walk must keep its
   position across batch flushes, deliver every record once, and read
   each chain page exactly once. *)
let test_chain_straddles_flush () =
  let key_of b = Value.Int (field b 0) in
  let pool, stats = fresh_pool () in
  let h =
    Hash_file.build pool ~record_size ~key_of ~fillfactor:100
      (List.map record (List.init 8 Fun.id))
  in
  (* Pile 200 duplicate versions of key 0 onto its bucket: a chain many
     pages past one batch. *)
  for _ = 1 to 200 do
    ignore (Hash_file.insert h (record 0))
  done;
  let chain_pages = Hash_file.chain_pages h (Value.Int 0) in
  Alcotest.(check bool) "chain outgrows a batch" true
    (chain_pages * 8 > Cursor.target);
  Buffer_pool.invalidate pool;
  Io_stats.reset stats;
  let seen = ref 0 in
  let sizes = ref [] in
  let cursor = Hash_file.lookup_cursor h (Value.Int 0) in
  let rec go () =
    match Cursor.next cursor with
    | None -> ()
    | Some b ->
        sizes := Array.length b.Cursor.records :: !sizes;
        Array.iter
          (fun r ->
            Alcotest.(check bool) "only the probed key" true
              (Value.equal (key_of r) (Value.Int 0));
            incr seen)
          b.Cursor.records;
        go ()
  in
  go ();
  Alcotest.(check int) "every version exactly once" 201 !seen;
  Alcotest.(check bool) "several batches" true (List.length !sizes > 1);
  Alcotest.(check int) "each chain page read once" chain_pages
    (Io_stats.snapshot stats).Io_stats.reads

(* Fence pruning is batch-invariant: a window that skips pages in the
   middle of a heap yields the same records, reads and skips whether the
   records are drained batch by batch or page by page. *)
let test_pruning_under_batching () =
  let h, pool, stats = fresh_pool () |> fun (pool, stats) ->
    let h = Heap_file.create pool ~record_size in
    Pfile.enable_fences (Heap_file.pfile h) ~stamp;
    for k = 0 to 127 do
      ignore (Heap_file.insert h (record k))
    done;
    (h, pool, stats)
  in
  let window =
    { Time_fence.transaction = Some (Period.make (c 305) (c 805));
      valid = None }
  in
  let run f =
    Buffer_pool.invalidate pool;
    Io_stats.reset stats;
    Time_fence.reset_pages_skipped ();
    let out = ref [] in
    f (fun r -> out := field r 0 :: !out);
    ( List.sort compare !out,
      (Io_stats.snapshot stats).Io_stats.reads,
      Time_fence.pages_skipped () )
  in
  let batched =
    run (fun visit ->
        Cursor.iter (Heap_file.scan_cursor ~window h) (fun _ r -> visit r))
  in
  let paged =
    run (fun visit ->
        let pf = Heap_file.pfile h in
        for page = 0 to Pfile.npages pf - 1 do
          Pfile.page_iter ~window pf ~page (fun _ r -> visit r)
        done)
  in
  Alcotest.(check bool) "same records, reads and skips" true (batched = paged);
  let _, reads, skips = batched in
  Alcotest.(check bool) "the window pruned" true (skips > 0);
  Alcotest.(check int) "reads + skips cover the heap" 16 (reads + skips)

(* The executor's row batcher at the same boundaries, end to end: result
   cardinality through the engine with 63, 64 and 65 source tuples. *)
let test_pipeline_row_boundaries () =
  List.iter
    (fun n ->
      let db =
        match Database.create () with
        | Ok db -> db
        | Error e -> Alcotest.failf "db: %s" e
      in
      let script = Buffer.create 1024 in
      Buffer.add_string script "create t (k = i4)\nrange of x is t\n";
      for k = 0 to n - 1 do
        Buffer.add_string script (Printf.sprintf "append to t (k = %d)\n" k)
      done;
      (match Engine.execute db (Buffer.contents script) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "script: %s" e);
      match Engine.execute_one db "retrieve (x.k) where x.k >= 0" with
      | Ok (Engine.Rows { tuples; _ }) ->
          Alcotest.(check int)
            (Printf.sprintf "all %d rows" n)
            n (List.length tuples)
      | Ok _ -> Alcotest.fail "expected rows"
      | Error e -> Alcotest.failf "retrieve: %s" e)
    [ 63; 64; 65 ]

let suites =
  [
    ( "batch",
      [
        Alcotest.test_case "empty relation" `Quick test_empty_relation;
        Alcotest.test_case "exactly one batch" `Quick test_exactly_one_batch;
        Alcotest.test_case "target - 1" `Quick test_target_minus_one;
        Alcotest.test_case "target + 1" `Quick test_target_plus_one;
        Alcotest.test_case "chain straddles a flush" `Quick
          test_chain_straddles_flush;
        Alcotest.test_case "pruning under batching" `Quick
          test_pruning_under_batching;
        Alcotest.test_case "pipeline row boundaries" `Quick
          test_pipeline_row_boundaries;
      ] );
  ]
