(* Fence pruning must be invisible in results: every paper query returns
   the same tuples and performs the same writes with pruning on and off,
   reading at most as many pages.  Plus the ISAM range-probe boundary
   cases the skip-scan leans on. *)

module Workload = Tdb_benchkit.Workload
module Evolve = Tdb_benchkit.Evolve
module Paper_queries = Tdb_benchkit.Paper_queries
module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Executor = Tdb_query.Executor
module Time_fence = Tdb_storage.Time_fence
module Relation_file = Tdb_storage.Relation_file
module Value = Tdb_relation.Value

let evolved_temporal ~rounds =
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:11 () in
  for round = 1 to rounds do
    Evolve.uniform_round w ~round
  done;
  w

let run_rows (w : Workload.t) src =
  Database.reset_io w.Workload.db;
  match Engine.execute w.Workload.db src with
  | Ok [ Engine.Rows { tuples; io; _ } ] -> (tuples, io)
  | Ok _ -> Alcotest.failf "expected a single retrieve: %s" src
  | Error e -> Alcotest.failf "query failed (%s): %s" e src

(* The experiment's core property, as a test: on the evolved temporal
   database every Q01..Q12 is bit-identical pruning on vs off — same
   tuples in the same order, same page writes — and never reads more. *)
let test_grid_identical () =
  let w = evolved_temporal ~rounds:2 in
  List.iter
    (fun qid ->
      match Paper_queries.text qid Workload.Temporal with
      | None -> ()
      | Some src ->
          let name = Paper_queries.name qid in
          let rows_off, io_off =
            Time_fence.with_pruning false (fun () -> run_rows w src)
          in
          let rows_on, io_on =
            Time_fence.with_pruning true (fun () -> run_rows w src)
          in
          Alcotest.(check bool)
            (name ^ ": identical tuples") true (rows_off = rows_on);
          Alcotest.(check int)
            (name ^ ": identical writes")
            io_off.Executor.output_writes io_on.Executor.output_writes;
          Alcotest.(check bool)
            (name ^ ": reads never increase") true
            (io_on.Executor.input_reads <= io_off.Executor.input_reads))
    Paper_queries.all

(* The rollback queries bound transaction time before the evolution
   rounds: with fences on they must read strictly fewer pages, and the
   skipped pages must be charged to the raw prune counter. *)
let test_as_of_strictly_fewer () =
  let w = evolved_temporal ~rounds:2 in
  List.iter
    (fun qid ->
      let src = Option.get (Paper_queries.text qid Workload.Temporal) in
      let name = Paper_queries.name qid in
      let _, io_off = Time_fence.with_pruning false (fun () -> run_rows w src) in
      Time_fence.reset_pages_skipped ();
      let _, io_on = Time_fence.with_pruning true (fun () -> run_rows w src) in
      let skipped = Time_fence.pages_skipped () in
      Alcotest.(check bool)
        (name ^ ": strictly fewer reads") true
        (io_on.Executor.input_reads < io_off.Executor.input_reads);
      Alcotest.(check bool) (name ^ ": pages skipped") true (skipped > 0);
      Alcotest.(check bool)
        (name ^ ": reads + skips cover the unfenced scan") true
        (io_on.Executor.input_reads + skipped >= io_off.Executor.input_reads))
    Tdb_benchkit.Pruning.as_of_queries

(* ------------------------------------------------------------------ *)
(* ISAM range-probe boundary cases                                     *)
(* ------------------------------------------------------------------ *)

(* 64 tuples at 8 per page and 100% loading: data pages hold keys
   [0..7], [8..15], ..., [56..63], so page edges are the multiples of 8. *)
let isam_rel () =
  let schema = Workload.schema_for Workload.Static in
  let rel = Relation_file.create ~name:"range_probe" ~schema () in
  for k = 0 to 63 do
    ignore
      (Relation_file.insert rel
         [| Value.Int k; Value.Int (k * 10); Value.Int 0; Value.Str "x" |])
  done;
  Relation_file.modify rel (Relation_file.Isam { key_attr = 0; fillfactor = 100 });
  rel

let range_keys rel ?lo ?hi () =
  let acc = ref [] in
  Relation_file.lookup_range rel ?lo ?hi (fun _ tu ->
      match tu.(0) with
      | Value.Int k -> acc := k :: !acc
      | _ -> Alcotest.fail "non-integer key");
  List.rev !acc

let check_range rel ?lo ?hi label =
  let within k =
    (match lo with Some (Value.Int l) -> k >= l | _ -> true)
    && match hi with Some (Value.Int h) -> k <= h | _ -> true
  in
  let expected = List.filter within (List.init 64 Fun.id) in
  Alcotest.(check (list int)) label expected (range_keys rel ?lo ?hi ())

let test_range_probe_boundaries () =
  let rel = isam_rel () in
  check_range rel "open both bounds";
  check_range rel ~lo:(Value.Int 20) "open hi";
  check_range rel ~hi:(Value.Int 20) "open lo";
  check_range rel ~lo:(Value.Int 0) ~hi:(Value.Int 63) "exact full range";
  check_range rel ~lo:(Value.Int 8) ~hi:(Value.Int 15) "one whole page";
  check_range rel ~lo:(Value.Int 7) ~hi:(Value.Int 8) "straddles a page edge";
  check_range rel ~lo:(Value.Int 15) ~hi:(Value.Int 16) "straddles the next edge";
  check_range rel ~lo:(Value.Int 0) ~hi:(Value.Int 0) "first key alone";
  check_range rel ~lo:(Value.Int 63) ~hi:(Value.Int 63) "last key alone";
  check_range rel ~lo:(Value.Int 56) "lo at the last page's edge";
  check_range rel ~hi:(Value.Int 55) "hi just below the last page"

let test_range_probe_empty () =
  let rel = isam_rel () in
  check_range rel ~lo:(Value.Int 30) ~hi:(Value.Int 20) "inverted bounds";
  check_range rel ~lo:(Value.Int 64) "lo beyond every key";
  check_range rel ~lo:(Value.Int 64) ~hi:(Value.Int 100) "range beyond every key";
  check_range rel ~hi:(Value.Int (-1)) "hi below every key"

let suites =
  [
    ( "pruning",
      [
        Alcotest.test_case "Q01..Q12 identical on vs off" `Quick
          test_grid_identical;
        Alcotest.test_case "as-of queries strictly cheaper" `Quick
          test_as_of_strictly_fewer;
        Alcotest.test_case "ISAM range probe boundaries" `Quick
          test_range_probe_boundaries;
        Alcotest.test_case "ISAM range probe empty ranges" `Quick
          test_range_probe_empty;
      ] );
  ]
