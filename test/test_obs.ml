module Metric = Tdb_obs.Metric
module Trace = Tdb_obs.Trace
module Json = Tdb_obs.Json
module Workload = Tdb_benchkit.Workload
module Evolve = Tdb_benchkit.Evolve
module Paper_queries = Tdb_benchkit.Paper_queries
module Database = Tdb_core.Database
module Engine = Tdb_core.Engine
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool

(* Global observability state is shared across the whole test binary:
   every test restores the enabled flags it touched. *)
let with_flags ~metrics ~tracing f =
  let m = Metric.enabled () and t = Trace.enabled () in
  Metric.set_enabled metrics;
  Trace.set_enabled tracing;
  Fun.protect
    ~finally:(fun () ->
      Metric.set_enabled m;
      Trace.set_enabled t)
    f

(* --- histogram geometry --- *)

let test_bucket_boundaries () =
  Alcotest.(check int) "34 buckets" 34 Metric.buckets;
  Alcotest.(check (float 0.)) "bucket 16 tops at 1.0" 1.0 (Metric.bucket_le 16);
  Alcotest.(check (float 0.)) "bucket 17 tops at 2.0" 2.0 (Metric.bucket_le 17);
  Alcotest.(check (float 0.))
    "bucket 0 tops at 2^-16"
    (2.0 ** -16.)
    (Metric.bucket_le 0);
  Alcotest.(check bool)
    "last bucket is +Inf" true
    (Metric.bucket_le (Metric.buckets - 1) = infinity);
  for i = 1 to Metric.buckets - 1 do
    Alcotest.(check bool)
      "upper bounds strictly increase" true
      (Metric.bucket_le (i - 1) < Metric.bucket_le i)
  done

let test_bucket_index () =
  (* le is inclusive: a value exactly on a boundary lands in that bucket *)
  Alcotest.(check int) "1.0 -> bucket 16" 16 (Metric.bucket_index 1.0);
  Alcotest.(check int) "just above 1.0 -> 17" 17 (Metric.bucket_index 1.000001);
  Alcotest.(check int) "0.75 -> bucket 16" 16 (Metric.bucket_index 0.75);
  Alcotest.(check int) "0.5 -> bucket 15" 15 (Metric.bucket_index 0.5);
  Alcotest.(check int) "tiny -> bucket 0" 0 (Metric.bucket_index 1e-9);
  Alcotest.(check int) "zero -> bucket 0" 0 (Metric.bucket_index 0.);
  Alcotest.(check int)
    "2^16 is the last finite bucket" (Metric.buckets - 2)
    (Metric.bucket_index 65536.);
  Alcotest.(check int)
    "beyond 2^16 -> +Inf bucket" (Metric.buckets - 1)
    (Metric.bucket_index 1e9);
  Alcotest.(check int)
    "nan -> +Inf bucket" (Metric.buckets - 1)
    (Metric.bucket_index nan);
  (* every finite bound classifies into its own bucket *)
  for i = 0 to Metric.buckets - 2 do
    Alcotest.(check int)
      (Printf.sprintf "bound of bucket %d" i)
      i
      (Metric.bucket_index (Metric.bucket_le i))
  done

let test_histogram_dump_cumulative () =
  with_flags ~metrics:true ~tracing:false @@ fun () ->
  let h = Metric.histogram "test_obs_hist_seconds" in
  Metric.observe h 0.5;
  Metric.observe h 0.5;
  Metric.observe h 3.0;
  let recs =
    List.filter
      (fun (r : Metric.record) ->
        String.length r.name >= 13
        && String.sub r.name 0 13 = "test_obs_hist")
      (Metric.dump ())
  in
  let bucket le =
    List.find_map
      (fun (r : Metric.record) ->
        if
          r.name = "test_obs_hist_seconds_bucket"
          && List.assoc_opt "le" r.labels = Some le
        then match r.value with Metric.Int n -> Some n | _ -> None
        else None)
      recs
  in
  Alcotest.(check (option int)) "le=0.5 holds 2" (Some 2) (bucket "0.5");
  Alcotest.(check (option int)) "le=4 holds all 3" (Some 3) (bucket "4");
  Alcotest.(check (option int)) "le=+Inf holds all 3" (Some 3) (bucket "+Inf");
  let count =
    List.find_map
      (fun (r : Metric.record) ->
        if r.name = "test_obs_hist_seconds_count" then
          match r.value with Metric.Int n -> Some n | _ -> None
        else None)
      recs
  in
  Alcotest.(check (option int)) "count" (Some 3) count

(* --- counters and gating --- *)

let test_counter_gating () =
  with_flags ~metrics:true ~tracing:false @@ fun () ->
  let c = Metric.counter "test_obs_gated_total" in
  Metric.reset_counter c;
  Metric.incr c;
  Metric.set_enabled false;
  Metric.incr c;
  Metric.incr c;
  Metric.set_enabled true;
  Alcotest.(check int) "disabled increments dropped" 1 (Metric.count c);
  let r = Metric.raw () in
  Metric.set_enabled false;
  Metric.incr r;
  Metric.set_enabled true;
  Alcotest.(check int) "raw counters never gate" 1 (Metric.count r)

let test_registry_identity () =
  let a = Metric.counter "test_obs_same_total" ~labels:[ ("k", "v") ] in
  let b = Metric.counter "test_obs_same_total" ~labels:[ ("k", "v") ] in
  Metric.reset_counter a;
  Metric.incr a;
  Alcotest.(check int) "same name+labels is the same counter" 1 (Metric.count b)

(* --- JSON --- *)

let roundtrip name v =
  (match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) (name ^ " (compact)") true (Json.equal v v')
  | Error e -> Alcotest.fail (name ^ ": " ^ e));
  match Json.parse (Json.to_string_pretty v) with
  | Ok v' -> Alcotest.(check bool) (name ^ " (pretty)") true (Json.equal v v')
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_json_roundtrip () =
  roundtrip "scalars"
    (Json.List
       [ Json.Null; Json.Bool true; Json.Bool false; Json.int 42;
         Json.Num (-0.125); Json.Num 1e15; Json.Str "plain" ]);
  roundtrip "escapes"
    (Json.Str "quote \" backslash \\ newline \n tab \t control \x01");
  roundtrip "nesting"
    (Json.Obj
       [
         ("empty_list", Json.List []);
         ("empty_obj", Json.Obj []);
         ("deep", Json.List [ Json.Obj [ ("k", Json.List [ Json.int 1 ]) ] ]);
       ]);
  Alcotest.(check string)
    "integral floats print as integers" "[5,-3,0]"
    (Json.to_string (Json.List [ Json.int 5; Json.int (-3); Json.Num 0. ]));
  Alcotest.(check string)
    "non-finite degrades to null" "[null,null]"
    (Json.to_string (Json.List [ Json.Num infinity; Json.Num nan ]))

let test_metrics_json_roundtrip () =
  with_flags ~metrics:true ~tracing:false @@ fun () ->
  Metric.incr (Metric.counter "test_obs_json_total");
  let doc = Metric.to_json () in
  match Json.parse (Json.to_string doc) with
  | Ok v -> Alcotest.(check bool) "metrics dump" true (Json.equal doc v)
  | Error e -> Alcotest.fail e

(* --- spans --- *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_span_nesting_and_order () =
  with_flags ~metrics:true ~tracing:true @@ fun () ->
  let root = Trace.start "root" in
  Trace.within "first" (fun _ -> Trace.note_read ());
  Trace.within "second" (fun n ->
      Trace.note_read ();
      Trace.note_read ();
      Trace.within "inner" (fun _ -> Trace.note_write ());
      Alcotest.(check int) "second's own reads" 2 n.Trace.reads);
  let probe = Trace.branch root "probe" in
  for _ = 1 to 3 do
    Trace.enter probe;
    Trace.note_read ();
    Trace.exit probe
  done;
  Trace.finish root;
  Alcotest.(check (list string))
    "children in creation order" [ "first"; "second"; "probe" ]
    (List.map (fun (n : Trace.node) -> n.Trace.name) (Trace.children root));
  Alcotest.(check int) "subtree reads" 6 (Trace.total_reads root);
  Alcotest.(check int) "subtree writes" 1 (Trace.total_writes root);
  Alcotest.(check int) "branch accumulated activations" 3 probe.Trace.reads;
  let rendered = Trace.render root in
  Alcotest.(check bool) "render mentions totals" true
    (contains rendered "total: 6 pages in, 1 pages out")

let test_disabled_spans_are_free () =
  with_flags ~metrics:true ~tracing:false @@ fun () ->
  let n = Trace.start "off" in
  Alcotest.(check bool) "dummy node" false (Trace.is_real n);
  Alcotest.(check bool) "no result" true (Trace.result n = None);
  Trace.note_read ();
  Trace.note_write ();
  Trace.finish n;
  Alcotest.(check int) "dummy accumulates nothing" 0 (Trace.total_reads n)

let test_event_ring () =
  with_flags ~metrics:true ~tracing:false @@ fun () ->
  Trace.clear_events ();
  for i = 1 to Trace.event_capacity + 10 do
    Trace.event ~attrs:[ ("i", string_of_int i) ] "tick"
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "capped at capacity" Trace.event_capacity
    (List.length evs);
  let seqs = List.map (fun (e : Trace.event) -> e.Trace.seq) evs in
  Alcotest.(check bool) "oldest-first, contiguous" true
    (seqs = List.init (List.length seqs) (fun i -> List.hd seqs + i));
  Trace.clear_events ();
  Metric.set_enabled false;
  Trace.event "dropped";
  Alcotest.(check int) "gated when metrics disabled" 0
    (List.length (Trace.events ()))

(* --- engine integration --- *)

let q05 kind =
  match Paper_queries.text Paper_queries.Q05 kind with
  | Some src -> src
  | None -> Alcotest.fail "Q05 undefined for kind"

let test_disabled_metrics_same_page_counts () =
  (* The acceptance bar: the observability layer must not perturb the
     paper's numbers.  Identical cold-cache page counts with the registry
     enabled and disabled. *)
  let measure ~metrics ~tracing =
    with_flags ~metrics ~tracing @@ fun () ->
    let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:99 () in
    List.map
      (fun qid ->
        match Paper_queries.text qid Workload.Temporal with
        | Some src -> Evolve.measure_query w src
        | None -> -1)
      Paper_queries.[ Q01; Q03; Q05; Q07; Q09; Q11 ]
  in
  let on = measure ~metrics:true ~tracing:false in
  let off = measure ~metrics:false ~tracing:false in
  let traced = measure ~metrics:true ~tracing:true in
  Alcotest.(check (list int)) "metrics off: identical page counts" on off;
  Alcotest.(check (list int)) "tracing on: identical page counts" on traced

let test_q05_span_sum_equals_io_total () =
  (* profile on Q05: the summed per-operator reads of the span tree must
     equal the executor's Io_stats total. *)
  with_flags ~metrics:true ~tracing:true @@ fun () ->
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:7 () in
  Database.reset_io w.Workload.db;
  match Engine.execute w.Workload.db (q05 Workload.Temporal) with
  | Ok [ Engine.Rows { io; trace = Some node; _ } ] ->
      Alcotest.(check bool) "some pages were read" true
        (io.Tdb_query.Executor.input_reads > 0);
      Alcotest.(check int) "span tree sums to the Io_stats total"
        io.Tdb_query.Executor.input_reads (Trace.total_reads node);
      Alcotest.(check int) "writes attributed too"
        io.Tdb_query.Executor.output_writes (Trace.total_writes node)
  | Ok [ Engine.Rows { trace = None; _ } ] ->
      Alcotest.fail "tracing enabled but no trace attached"
  | Ok _ -> Alcotest.fail "expected a single Rows outcome"
  | Error e -> Alcotest.fail e

let test_nested_query_span_sum () =
  (* Same invariant on a join (nested-loop plan, branch/enter/exit path). *)
  with_flags ~metrics:true ~tracing:true @@ fun () ->
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:7 () in
  match Paper_queries.text Paper_queries.Q11 Workload.Temporal with
  | None -> Alcotest.fail "Q11 undefined"
  | Some src -> (
      Database.reset_io w.Workload.db;
      match Engine.execute w.Workload.db src with
      | Ok [ Engine.Rows { io; trace = Some node; _ } ] ->
          Alcotest.(check int) "join span tree sums to the Io_stats total"
            io.Tdb_query.Executor.input_reads (Trace.total_reads node);
          Alcotest.(check bool) "tree has operator children" true
            (Trace.children node <> [])
      | Ok _ -> Alcotest.fail "expected a traced Rows outcome"
      | Error e -> Alcotest.fail e)

(* --- parallel scans: partition attribution --- *)

let chill (w : Workload.t) =
  let db = w.Workload.db in
  List.iter
    (fun name ->
      match Database.find_relation db name with
      | Some rel -> Buffer_pool.invalidate (Relation_file.pool rel)
      | None -> ())
    (Database.relation_names db)

let rec collect_partitions (n : Trace.node) acc =
  let acc =
    if
      String.length n.Trace.name >= 9
      && String.sub n.Trace.name 0 9 = "partition"
    then n :: acc
    else acc
  in
  List.fold_left (fun acc c -> collect_partitions c acc) acc (Trace.children n)

let test_parallel_partition_span_sum () =
  (* The acceptance bar for explain-analyze under parallelism: at update
     count 15 with 4 workers, the executed plan must carry one child span
     per partition with that worker's domain and busy time, and the page
     reads must still sum to the Io_stats total exactly — the
     worker-private counters are folded without double counting. *)
  with_flags ~metrics:true ~tracing:false @@ fun () ->
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:31 () in
  for round = 1 to 15 do
    Evolve.uniform_round w ~round
  done;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_parallelism None;
      Tdb_query.Executor.set_parallel_min_pages None)
  @@ fun () ->
  Engine.set_parallelism (Some 4);
  (* paper-scale relations sit under the parallelism admission floor;
     drop it so the fan-out machinery is exercised *)
  Tdb_query.Executor.set_parallel_min_pages (Some 0);
  List.iter
    (fun (qid, scan_only) ->
      let name = Paper_queries.name qid in
      match Paper_queries.text qid Workload.Temporal with
      | None -> Alcotest.failf "%s undefined" name
      | Some src -> (
          chill w;
          match Engine.analyze w.Workload.db src with
          | Error e -> Alcotest.failf "%s: %s" name e
          | Ok a -> (
              Alcotest.(check int)
                (name ^ ": ran with 4 workers") 4 a.Engine.a_workers;
              match a.Engine.a_outcome with
              | Engine.Rows { io; trace = Some node; _ } ->
                  Alcotest.(check int)
                    (name ^ ": span tree sums to the Io_stats total")
                    io.Tdb_query.Executor.input_reads (Trace.total_reads node);
                  let parts = collect_partitions node [] in
                  Alcotest.(check bool)
                    (name ^ ": scan split into partitions") true
                    (List.length parts >= 2);
                  List.iter
                    (fun (p : Trace.node) ->
                      Alcotest.(check bool)
                        (name ^ ": partition records its domain") true
                        (List.mem_assoc "domain" p.Trace.attrs);
                      Alcotest.(check bool)
                        (name ^ ": partition busy time recorded") true
                        (p.Trace.elapsed >= 0.0))
                    parts;
                  let part_reads =
                    List.fold_left (fun s (p : Trace.node) -> s + p.Trace.reads) 0 parts
                  in
                  if scan_only then
                    (* single-relation scan: every page read happens inside
                       a partition's private pool *)
                    Alcotest.(check int)
                      (name ^ ": partition reads sum to the Io_stats total")
                      io.Tdb_query.Executor.input_reads part_reads
                  else
                    Alcotest.(check bool)
                      (name ^ ": partitions read pages") true (part_reads > 0)
              | _ -> Alcotest.failf "%s: expected a traced Rows outcome" name)))
    [ (Paper_queries.Q03, true); (Paper_queries.Q11, false) ]

let rec find_span pred (n : Trace.node) =
  if pred n then Some n
  else List.find_map (find_span pred) (Trace.children n)

let test_temporal_join_span_sum () =
  (* The operator I/O attribution pin for the temporal join: on a
     Q11-class query at update count 15 with 4 workers, the trace must
     carry a tjoin operator span, the subtree page reads must sum to the
     Io_stats total exactly (the envelope-narrowed inner scan and its
     partitions charge under the join span), and the invariant must hold
     identically with the operator disabled. *)
  with_flags ~metrics:true ~tracing:false @@ fun () ->
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:43 () in
  for round = 1 to 15 do
    Evolve.uniform_round w ~round
  done;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_parallelism None;
      Tdb_query.Executor.set_parallel_min_pages None)
  @@ fun () ->
  Engine.set_parallelism (Some 4);
  Tdb_query.Executor.set_parallel_min_pages (Some 0);
  let src =
    match Paper_queries.text Paper_queries.Q11 Workload.Temporal with
    | Some src -> src
    | None -> Alcotest.fail "Q11 undefined"
  in
  let analyze () =
    chill w;
    match Engine.analyze w.Workload.db src with
    | Error e -> Alcotest.fail e
    | Ok a -> (
        match a.Engine.a_outcome with
        | Engine.Rows { io; tuples; trace = Some node; _ } ->
            (io, tuples, node)
        | _ -> Alcotest.fail "expected a traced Rows outcome")
  in
  let statements = Metric.counter "tdb_tjoin_statements_total" in
  let before = Metric.count statements in
  let io_tj, tuples_tj, node_tj =
    Tdb_query.Executor.with_temporal_join true (fun () -> analyze ())
  in
  Alcotest.(check bool) "temporal join metric ticked" true
    (Metric.count statements > before);
  let is_tjoin (n : Trace.node) =
    String.length n.Trace.name >= 6 && String.sub n.Trace.name 0 6 = "tjoin["
  in
  let jspan =
    match find_span is_tjoin node_tj with
    | Some n -> n
    | None -> Alcotest.fail "no tjoin operator span in the trace"
  in
  Alcotest.(check int) "tjoin span tree sums to the Io_stats total"
    io_tj.Tdb_query.Executor.input_reads
    (Trace.total_reads node_tj);
  (* the inner side's pages (and its parallel partitions) charge under
     the join span, not to some sibling *)
  Alcotest.(check bool) "inner scan charges under the join span" true
    (Trace.total_reads jspan > 0);
  Alcotest.(check bool) "inner partitions hang off the join span" true
    (collect_partitions jspan [] <> []);
  (* the fallback path keeps both the rows and the invariant *)
  let io_nl, tuples_nl, node_nl =
    Tdb_query.Executor.with_temporal_join false (fun () -> analyze ())
  in
  (match find_span is_tjoin node_nl with
  | Some _ -> Alcotest.fail "toggle off must not produce a tjoin span"
  | None -> ());
  Alcotest.(check int) "fallback span tree sums to the Io_stats total"
    io_nl.Tdb_query.Executor.input_reads
    (Trace.total_reads node_nl);
  Alcotest.(check bool) "rows identical across strategies" true
    (tuples_tj = tuples_nl)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "histogram bucket boundaries" `Quick
          test_bucket_boundaries;
        Alcotest.test_case "histogram bucket index" `Quick test_bucket_index;
        Alcotest.test_case "histogram cumulative dump" `Quick
          test_histogram_dump_cumulative;
        Alcotest.test_case "counter gating" `Quick test_counter_gating;
        Alcotest.test_case "registry identity" `Quick test_registry_identity;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "metrics json round-trip" `Quick
          test_metrics_json_roundtrip;
        Alcotest.test_case "span nesting and order" `Quick
          test_span_nesting_and_order;
        Alcotest.test_case "disabled spans are free" `Quick
          test_disabled_spans_are_free;
        Alcotest.test_case "event ring buffer" `Quick test_event_ring;
        Alcotest.test_case "disabled metrics: same page counts" `Quick
          test_disabled_metrics_same_page_counts;
        Alcotest.test_case "q05 span sum = io total" `Quick
          test_q05_span_sum_equals_io_total;
        Alcotest.test_case "nested query span sum" `Quick
          test_nested_query_span_sum;
        Alcotest.test_case "parallel partition span sum (uc 15, 4 workers)"
          `Slow test_parallel_partition_span_sum;
        Alcotest.test_case "temporal join span sum (uc 15, 4 workers)" `Slow
          test_temporal_join_span_sum;
      ] );
  ]
