module Page = Tdb_storage.Page

let test_paper_capacities () =
  (* The physical constants the reproduction depends on (DESIGN.md §3). *)
  Alcotest.(check int) "9 static tuples (108 B)" 9 (Page.capacity ~record_size:108);
  Alcotest.(check int) "8 rollback tuples (116 B)" 8 (Page.capacity ~record_size:116);
  Alcotest.(check int) "8 temporal tuples (124 B)" 8 (Page.capacity ~record_size:124);
  Alcotest.(check int) "168 isam directory keys (4 B)" 168 (Page.capacity ~record_size:4);
  Alcotest.(check int) "101 index entries (8 B)" 101 (Page.capacity ~record_size:8)

let test_seal_and_check () =
  let p = Page.create () in
  Alcotest.(check bool) "fresh page does not verify" false (Page.check p);
  Page.seal ~epoch:7 p;
  Alcotest.(check bool) "sealed page verifies" true (Page.check p);
  Alcotest.(check int) "epoch stamped" 7 (Page.get_epoch p);
  (* Any single flipped bit in the covered region must break the checksum. *)
  for pos = 0 to 20 do
    let byte = pos * 48 mod (Page.size - 4) in
    Bytes.set p byte (Char.chr (Char.code (Bytes.get p byte) lxor 1));
    Alcotest.(check bool)
      (Printf.sprintf "bit flip at byte %d detected" byte)
      false (Page.check p);
    Bytes.set p byte (Char.chr (Char.code (Bytes.get p byte) lxor 1));
    Alcotest.(check bool) "restored page verifies again" true (Page.check p)
  done

let test_seal_covers_payload_and_trailer () =
  let rs = 100 in
  let p = Page.create () in
  Page.write_record ~record_size:rs p 0 (Bytes.make rs 'q');
  Page.set_overflow p (Some 42);
  Page.seal ~epoch:3 p;
  Alcotest.(check bool) "verifies with payload" true (Page.check p);
  Page.set_overflow p (Some 43);
  Alcotest.(check bool) "changing the overflow pointer breaks the seal" false
    (Page.check p);
  Page.set_overflow p (Some 42);
  Alcotest.(check bool) "restoring it heals the seal" true (Page.check p);
  Alcotest.(check int) "payload survived sealing" (Char.code 'q')
    (Char.code (Bytes.get (Page.read_record ~record_size:rs p 0) 0))

let test_record_too_big () =
  Alcotest.(check bool) "record larger than a page" true
    (try ignore (Page.capacity ~record_size:2000); false
     with Invalid_argument _ -> true)

let test_overflow_pointer () =
  let p = Page.create () in
  Alcotest.(check (option int)) "no overflow initially" None (Page.get_overflow p);
  Page.set_overflow p (Some 0);
  Alcotest.(check (option int)) "page id 0 is representable" (Some 0)
    (Page.get_overflow p);
  Page.set_overflow p (Some 12345);
  Alcotest.(check (option int)) "larger id" (Some 12345) (Page.get_overflow p);
  Page.set_overflow p None;
  Alcotest.(check (option int)) "cleared" None (Page.get_overflow p)

let test_slots () =
  let rs = 100 in
  let p = Page.create () in
  let cap = Page.capacity ~record_size:rs in
  Alcotest.(check int) "fresh page empty" 0 (Page.used_count ~record_size:rs p);
  let rec fill i =
    if i < cap then begin
      (match Page.find_free_slot ~record_size:rs p with
      | Some slot -> Alcotest.(check int) "slots fill in order" i slot
      | None -> Alcotest.fail "page full too early");
      Page.write_record ~record_size:rs p i (Bytes.make rs (Char.chr (65 + (i mod 26))));
      fill (i + 1)
    end
  in
  fill 0;
  Alcotest.(check (option int)) "page full" None (Page.find_free_slot ~record_size:rs p);
  Alcotest.(check int) "all used" cap (Page.used_count ~record_size:rs p);
  let r = Page.read_record ~record_size:rs p 2 in
  Alcotest.(check char) "record content" 'C' (Bytes.get r 0);
  Page.clear_slot ~record_size:rs p 2;
  Alcotest.(check (option int)) "freed slot reused" (Some 2)
    (Page.find_free_slot ~record_size:rs p);
  Alcotest.(check bool) "reading a free slot raises" true
    (try ignore (Page.read_record ~record_size:rs p 2); false
     with Invalid_argument _ -> true)

let test_overflow_does_not_clobber_records () =
  let rs = 100 in
  let p = Page.create () in
  let cap = Page.capacity ~record_size:rs in
  for i = 0 to cap - 1 do
    Page.write_record ~record_size:rs p i (Bytes.make rs 'z')
  done;
  Page.set_overflow p (Some 999);
  for i = 0 to cap - 1 do
    let r = Page.read_record ~record_size:rs p i in
    Alcotest.(check bool) "record intact" true (Bytes.for_all (fun c -> c = 'z') r)
  done;
  Alcotest.(check (option int)) "pointer intact" (Some 999) (Page.get_overflow p)

let prop_write_read =
  QCheck2.Test.make ~name:"write then read returns the record" ~count:200
    QCheck2.Gen.(
      let* rs = int_range 1 500 in
      let* slot = int_range 0 (Page.capacity ~record_size:rs - 1) in
      let* byte = char_range 'a' 'z' in
      return (rs, slot, byte))
    (fun (rs, slot, byte) ->
      let p = Page.create () in
      Page.write_record ~record_size:rs p slot (Bytes.make rs byte);
      let r = Page.read_record ~record_size:rs p slot in
      Bytes.length r = rs && Bytes.for_all (fun c -> c = byte) r)

let suites =
  [
    ( "page",
      [
        Alcotest.test_case "paper capacities" `Quick test_paper_capacities;
        Alcotest.test_case "seal and check" `Quick test_seal_and_check;
        Alcotest.test_case "seal covers payload+trailer" `Quick
          test_seal_covers_payload_and_trailer;
        Alcotest.test_case "record too big" `Quick test_record_too_big;
        Alcotest.test_case "overflow pointer" `Quick test_overflow_pointer;
        Alcotest.test_case "slots" `Quick test_slots;
        Alcotest.test_case "overflow vs records" `Quick
          test_overflow_does_not_clobber_records;
        QCheck_alcotest.to_alcotest prop_write_read;
      ] );
  ]
