(* Conformance tests for [retrieve coalesced]: value-equivalent versions
   whose periods touch or overlap merge into maximal periods, and with
   global aggregates the result is the snapshot-semantics temporal
   aggregate (one row per maximal interval of constant value).  The
   rewrite path is pinned against a naive reference built from the same
   query without [coalesced] — output must be bit-identical. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))
let t0 = Chronon.parse_exn "1980-01-01"
let c n = Chronon.add_seconds t0 n
let tlit n = Chronon.to_string (c n)

let historical_db () =
  let db = ok (Database.create ()) in
  exec db
    {|create interval tr (id = i4, amount = i4)
      range of t is tr|};
  db

let append db ~id ~amount ~lo ~hi =
  exec db
    (Printf.sprintf
       {|append to tr (id = %d, amount = %d) valid from %S to %S|} id amount
       (tlit lo) (tlit hi))

let rows db src =
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; _ } ->
      List.map
        (fun tu ->
          String.concat " | " (Array.to_list (Array.map Value.to_string tu)))
        tuples
  | _ -> Alcotest.fail "expected rows"

let row vals times =
  String.concat " | "
    (List.map Value.to_string
       (List.map (fun n -> Value.Int n) vals
       @ List.map (fun n -> Value.Time (c n)) times))

let check_rows name got want =
  Alcotest.(check (list string)) name want got

let test_touching_endpoints () =
  let db = historical_db () in
  append db ~id:1 ~amount:7 ~lo:0 ~hi:10;
  append db ~id:1 ~amount:7 ~lo:10 ~hi:20;
  append db ~id:1 ~amount:7 ~lo:25 ~hi:30;
  (* [0,10) + [10,20) merge; the gap before [25,30) survives *)
  check_rows "touching endpoints merge"
    (rows db "retrieve coalesced (t.id, t.amount)")
    [ row [ 1; 7 ] [ 0; 20 ]; row [ 1; 7 ] [ 25; 30 ] ]

let test_contained_and_overlapping () =
  let db = historical_db () in
  append db ~id:2 ~amount:5 ~lo:0 ~hi:100;
  append db ~id:2 ~amount:5 ~lo:20 ~hi:30;
  (* contained *)
  append db ~id:2 ~amount:5 ~lo:90 ~hi:120;
  (* overlapping tail *)
  append db ~id:3 ~amount:5 ~lo:20 ~hi:30;
  (* different value: untouched *)
  check_rows "containment and overlap"
    (rows db "retrieve coalesced (t.id, t.amount)")
    [ row [ 2; 5 ] [ 0; 120 ]; row [ 3; 5 ] [ 20; 30 ] ]

let test_output_minimal_and_sorted () =
  let db = historical_db () in
  (* appended out of order: the output must still be sorted and minimal *)
  append db ~id:9 ~amount:1 ~lo:50 ~hi:60;
  append db ~id:4 ~amount:1 ~lo:30 ~hi:40;
  append db ~id:4 ~amount:1 ~lo:10 ~hi:20;
  append db ~id:4 ~amount:1 ~lo:20 ~hi:30;
  let got = rows db "retrieve coalesced (t.id)" in
  check_rows "sorted, minimal" got
    [ row [ 4 ] [ 10; 40 ]; row [ 9 ] [ 50; 60 ] ]

(* The naive reference: coalesce the plain (uncoalesced) rows in OCaml. *)
let naive_coalesce n_user plain =
  let parse r = String.split_on_char '|' r |> List.map String.trim in
  let rows = List.map parse plain in
  let user r = List.filteri (fun i _ -> i < n_user) r in
  let times r =
    match List.filteri (fun i _ -> i >= n_user) r with
    | [ f; t ] -> (Chronon.parse_exn f, Chronon.parse_exn t)
    | _ -> Alcotest.fail "expected two time columns"
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare (user a) (user b) with
        | 0 -> Chronon.compare (fst (times a)) (fst (times b))
        | n -> n)
      rows
  in
  let out = ref [] in
  List.iter
    (fun r ->
      let f, t = times r in
      match !out with
      | (u, cf, ct) :: tl
        when u = user r && Chronon.compare f ct <= 0 ->
          out := (u, cf, Chronon.max ct t) :: tl
      | _ -> out := (user r, f, t) :: !out)
    sorted;
  List.rev_map
    (fun (u, f, t) ->
      String.concat " | " (u @ [ Chronon.to_string f; Chronon.to_string t ]))
    !out

let test_rewrite_matches_naive () =
  let rng = Random.State.make [| 5150 |] in
  for trial = 1 to 25 do
    let db = historical_db () in
    for _ = 1 to 30 + Random.State.int rng 40 do
      let lo = Random.State.int rng 300 in
      append db
        ~id:(Random.State.int rng 4)
        ~amount:(Random.State.int rng 3)
        ~lo
        ~hi:(lo + 1 + Random.State.int rng 80)
    done;
    if trial mod 3 = 0 then exec db "modify tr to isam on id where fillfactor = 50";
    let where =
      if Random.State.bool rng then
        Printf.sprintf " where t.amount <= %d" (Random.State.int rng 3)
      else ""
    in
    let plain = rows db ("retrieve (t.id, t.amount)" ^ where) in
    let got = rows db ("retrieve coalesced (t.id, t.amount)" ^ where) in
    let want = naive_coalesce 2 plain in
    if got <> want then
      Alcotest.failf "trial %d: rewrite diverged from naive (%d vs %d rows)"
        trial (List.length got) (List.length want)
  done

let test_chain_across_pages () =
  (* a single value-equivalent chain of 400 touching versions spans many
     heap pages (and, reorganized, many ISAM data segments): the merge
     must not be fooled by storage boundaries *)
  let db = historical_db () in
  for k = 0 to 399 do
    append db ~id:1 ~amount:1 ~lo:(k * 10) ~hi:((k + 1) * 10)
  done;
  check_rows "heap chain"
    (rows db "retrieve coalesced (t.id)")
    [ row [ 1 ] [ 0; 4000 ] ];
  exec db "modify tr to isam on id where fillfactor = 100";
  check_rows "isam chain"
    (rows db "retrieve coalesced (t.id)")
    [ row [ 1 ] [ 0; 4000 ] ]

let test_temporal_aggregation () =
  let db = historical_db () in
  append db ~id:1 ~amount:10 ~lo:0 ~hi:10;
  append db ~id:2 ~amount:20 ~lo:5 ~hi:15;
  (* snapshots: [0,5) -> {1}, [5,10) -> {1,2}, [10,15) -> {2} *)
  check_rows "count per constant interval"
    (rows db "retrieve coalesced (c = count(t.id), s = sum(t.amount))")
    [
      row [ 1; 10 ] [ 0; 5 ];
      row [ 2; 30 ] [ 5; 10 ];
      row [ 1; 20 ] [ 10; 15 ];
    ];
  (* equal-valued adjacent intervals merge to the maximal interval *)
  let db2 = historical_db () in
  append db2 ~id:1 ~amount:10 ~lo:0 ~hi:10;
  append db2 ~id:2 ~amount:10 ~lo:10 ~hi:20;
  check_rows "constant runs merge"
    (rows db2 "retrieve coalesced (c = count(t.id))")
    [ row [ 1 ] [ 0; 20 ] ];
  (* empty input: no rows *)
  let db3 = historical_db () in
  check_rows "empty aggregation"
    (rows db3 "retrieve coalesced (c = count(t.id))")
    []

let test_semck_rejections () =
  let db = historical_db () in
  exec db
    {|create st (id = i4)
      range of s is st|};
  let expect_error src fragment =
    match Engine.execute_one db src with
    | Error e ->
        if
          not
            (let nh = String.length e and nn = String.length fragment in
             let rec go i =
               i + nn <= nh && (String.sub e i nn = fragment || go (i + 1))
             in
             go 0)
        then Alcotest.failf "%s: error %S lacks %S" src e fragment
    | Ok _ -> Alcotest.failf "%s: expected a semantic error" src
  in
  expect_error "retrieve coalesced (s.id)" "valid-time";
  expect_error "retrieve coalesced (c = count(t.id by t.amount))"
    "by-aggregates";
  expect_error
    (Printf.sprintf {|retrieve coalesced (t.id) valid at %S|} (tlit 3))
    "valid at"

let suites =
  [
    ( "coalesce",
      [
        Alcotest.test_case "touching endpoints" `Quick test_touching_endpoints;
        Alcotest.test_case "containment and overlap" `Quick
          test_contained_and_overlapping;
        Alcotest.test_case "sorted, minimal output" `Quick
          test_output_minimal_and_sorted;
        Alcotest.test_case "rewrite = naive reference" `Quick
          test_rewrite_matches_naive;
        Alcotest.test_case "chains across pages and segments" `Quick
          test_chain_across_pages;
        Alcotest.test_case "temporal aggregation" `Quick
          test_temporal_aggregation;
        Alcotest.test_case "semantic rejections" `Quick test_semck_rejections;
      ] );
  ]
