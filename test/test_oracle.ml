(* Oracle testing: the engine's answers to randomly generated queries must
   match a naive in-memory evaluator, across access methods.  This is the
   broadest correctness net in the suite: it exercises the parser, checker,
   planner (keyed/range/scan/substitution/nested), evaluator and storage
   together, and checks that the *optimized* plans never change answers. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Value = Tdb_relation.Value

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))

(* The data model mirrored in plain OCaml: two tables of (id, amount, seq). *)
type row = { id : int; amount : int; seq : int }

let gen_rows rng n =
  List.init n (fun id ->
      { id; amount = Random.State.int rng 40; seq = Random.State.int rng 5 })

let build_db rows_a rows_b ~org_a ~org_b =
  let db = ok (Database.create ()) in
  exec db
    {|create ta (id = i4, amount = i4, seq = i4)
      create tb (id = i4, amount = i4, seq = i4)
      range of a is ta
      range of b is tb|};
  List.iter
    (fun r ->
      exec db
        (Printf.sprintf "append to ta (id = %d, amount = %d, seq = %d)" r.id
           r.amount r.seq))
    rows_a;
  List.iter
    (fun r ->
      exec db
        (Printf.sprintf "append to tb (id = %d, amount = %d, seq = %d)" r.id
           r.amount r.seq))
    rows_b;
  (match org_a with
  | `Heap -> ()
  | `Hash -> exec db "modify ta to hash on id where fillfactor = 50"
  | `Isam -> exec db "modify ta to isam on id where fillfactor = 50");
  (match org_b with
  | `Heap -> ()
  | `Hash -> exec db "modify tb to hash on id"
  | `Isam -> exec db "modify tb to isam on id");
  db

(* Random single-variable predicates over `a`, as both TQuel text and an
   OCaml function. *)
type cmp = Lt | Le | Eq | Ge | Gt | Ne

let cmp_text = function
  | Lt -> "<" | Le -> "<=" | Eq -> "=" | Ge -> ">=" | Gt -> ">" | Ne -> "!="

let cmp_fn = function
  | Lt -> ( < ) | Le -> ( <= ) | Eq -> ( = ) | Ge -> ( >= ) | Gt -> ( > )
  | Ne -> ( <> )

type atom = { field : [ `Id | `Amount | `Seq ]; op : cmp; const : int }

let field_text = function `Id -> "id" | `Amount -> "amount" | `Seq -> "seq"
let field_get r = function `Id -> r.id | `Amount -> r.amount | `Seq -> r.seq

let gen_atom rng =
  {
    field = List.nth [ `Id; `Amount; `Seq ] (Random.State.int rng 3);
    op = List.nth [ Lt; Le; Eq; Ge; Gt; Ne ] (Random.State.int rng 6);
    const = Random.State.int rng 45;
  }

let atom_text var a =
  Printf.sprintf "%s.%s %s %d" var (field_text a.field) (cmp_text a.op) a.const

let atom_fn a r = cmp_fn a.op (field_get r a.field) a.const

(* a conjunction/disjunction tree of atoms *)
type ptree = Atom of atom | And of ptree * ptree | Or of ptree * ptree

let rec gen_ptree rng depth =
  if depth = 0 || Random.State.int rng 3 = 0 then Atom (gen_atom rng)
  else if Random.State.bool rng then
    And (gen_ptree rng (depth - 1), gen_ptree rng (depth - 1))
  else Or (gen_ptree rng (depth - 1), gen_ptree rng (depth - 1))

let rec ptree_text var = function
  | Atom a -> atom_text var a
  | And (x, y) -> Printf.sprintf "(%s and %s)" (ptree_text var x) (ptree_text var y)
  | Or (x, y) -> Printf.sprintf "(%s or %s)" (ptree_text var x) (ptree_text var y)

let rec ptree_fn p r =
  match p with
  | Atom a -> atom_fn a r
  | And (x, y) -> ptree_fn x r && ptree_fn y r
  | Or (x, y) -> ptree_fn x r || ptree_fn y r

let run_query db src =
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; _ } ->
      List.sort compare
        (List.map
           (fun tu ->
             Array.to_list
               (Array.map
                  (function Value.Int n -> n | _ -> Alcotest.fail "int expected")
                  tu))
           tuples)
  | _ -> Alcotest.fail "expected rows"

let orgs = [ `Heap; `Hash; `Isam ]

let test_single_variable_oracle () =
  let rng = Random.State.make [| 4242 |] in
  for trial = 1 to 60 do
    let rows = gen_rows rng (20 + Random.State.int rng 60) in
    let org = List.nth orgs (trial mod 3) in
    let db = build_db rows [] ~org_a:org ~org_b:`Heap in
    let p = gen_ptree rng 2 in
    let src =
      Printf.sprintf "retrieve (a.id, a.seq) where %s" (ptree_text "a" p)
    in
    let got = run_query db src in
    let want =
      List.sort compare
        (List.filter_map
           (fun r -> if ptree_fn p r then Some [ r.id; r.seq ] else None)
           rows)
    in
    if got <> want then
      Alcotest.failf "trial %d diverged on %s (%d vs %d rows)" trial src
        (List.length got) (List.length want)
  done

let test_join_oracle () =
  let rng = Random.State.make [| 777 |] in
  for trial = 1 to 30 do
    let rows_a = gen_rows rng 40 and rows_b = gen_rows rng 40 in
    let org_a = List.nth orgs (trial mod 3) in
    let org_b = List.nth orgs ((trial / 3) mod 3) in
    let db = build_db rows_a rows_b ~org_a ~org_b in
    let pa = Atom (gen_atom rng) and pb = Atom (gen_atom rng) in
    (* join on a.id = b.amount: exercises tuple substitution when `a` is
       keyed, detach-both / nested otherwise *)
    let src =
      Printf.sprintf
        "retrieve (a.id, b.id) where a.id = b.amount and %s and %s"
        (ptree_text "a" pa) (ptree_text "b" pb)
    in
    let got = run_query db src in
    let want =
      List.sort compare
        (List.concat_map
           (fun ra ->
             List.filter_map
               (fun rb ->
                 if ra.id = rb.amount && ptree_fn pa ra && ptree_fn pb rb then
                   Some [ ra.id; rb.id ]
                 else None)
               rows_b)
           rows_a)
    in
    if got <> want then
      Alcotest.failf "join trial %d diverged on %s (%d vs %d rows)" trial src
        (List.length got) (List.length want)
  done

let test_range_oracle () =
  let rng = Random.State.make [| 909 |] in
  for trial = 1 to 30 do
    let rows = gen_rows rng 80 in
    let db = build_db rows [] ~org_a:`Isam ~org_b:`Heap in
    let lo = Random.State.int rng 80 and span = Random.State.int rng 30 in
    let src =
      Printf.sprintf "retrieve (a.id) where a.id >= %d and a.id < %d" lo
        (lo + span)
    in
    let got = run_query db src in
    let want =
      List.sort compare
        (List.filter_map
           (fun r -> if r.id >= lo && r.id < lo + span then Some [ r.id ] else None)
           rows)
    in
    if got <> want then
      Alcotest.failf "range trial %d diverged on %s" trial src
  done

let test_aggregate_oracle () =
  let rng = Random.State.make [| 1331 |] in
  for trial = 1 to 30 do
    let rows = gen_rows rng 50 in
    let db = build_db rows [] ~org_a:(List.nth orgs (trial mod 3)) ~org_b:`Heap in
    let p = gen_ptree rng 1 in
    let src =
      Printf.sprintf "retrieve (c = count(a.id), s = sum(a.amount)) where %s"
        (ptree_text "a" p)
    in
    let qualifying = List.filter (ptree_fn p) rows in
    let want =
      [ [ List.length qualifying;
          List.fold_left (fun acc r -> acc + r.amount) 0 qualifying ] ]
    in
    let got = run_query db src in
    if got <> want then Alcotest.failf "aggregate trial %d diverged on %s" trial src
  done

(* ====================================================================== *)
(* Temporal oracle: random histories over all four database types         *)
(* (static, rollback, historical, temporal), random temporal retrieves    *)
(* (where / when / valid / as of), checked against a naive in-memory      *)
(* model of the TQuel update and retrieve semantics.  Every query is      *)
(* executed through BOTH the sequential and the parallel executor, which  *)
(* must return exactly the same rows in the same order.                   *)
(*                                                                        *)
(* Failures are reproducible: the report names the RNG seed (settable    *)
(* via TDB_ORACLE_SEED) and prints the full generated statement script.  *)
(* ====================================================================== *)

module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period

let oracle_seed =
  match Sys.getenv_opt "TDB_ORACLE_SEED" with
  | None -> 60102
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> Alcotest.failf "TDB_ORACLE_SEED must be an integer, got %S" s)

let oracle_report ~seed ~script ~query ~detail =
  Printf.sprintf
    "temporal oracle mismatch (replay with TDB_ORACLE_SEED=%d)\n\
     --- generated statement script ---\n\
     %s\
     --- failing query ---\n\
     %s\n\
     --- detail ---\n\
     %s"
    seed script query detail

(* --- the four database types of the paper --- *)

type db_kind = K_static | K_rollback | K_historical | K_temporal

let kind_has_valid = function K_historical | K_temporal -> true | _ -> false
let kind_has_tx = function K_rollback | K_temporal -> true | _ -> false

let create_text = function
  | K_static -> "create tr (id = i4, amount = i4)"
  | K_rollback -> "create persistent tr (id = i4, amount = i4)"
  | K_historical -> "create interval tr (id = i4, amount = i4)"
  | K_temporal -> "create persistent interval tr (id = i4, amount = i4)"

(* Time literals: offsets in seconds from the session clock's base, so
   generated valid/as-of constants straddle the statement timestamps. *)
let t_base = Chronon.parse_exn "1980-01-01"
let chron n = Chronon.add_seconds t_base n
let tlit n = Chronon.to_string (chron n)

(* --- the model: a list of versions mirroring the stored tuples --- *)

type version = {
  mutable m_id : int;
  mutable m_amount : int;
  mutable v_from : Chronon.t;  (* meaningful iff the kind has valid time *)
  mutable v_to : Chronon.t;
  mutable tx_from : Chronon.t; (* meaningful iff the kind has tx time *)
  mutable tx_to : Chronon.t;
}

(* Effective periods, with the same degenerate-interval rule as
   [Tuple.valid_period]: a stop before the start reads as an event at the
   start. *)
let eff_period from_ to_ =
  if Chronon.compare to_ from_ < 0 then Period.at from_
  else Period.make from_ to_

let eff_valid v = eff_period v.v_from v.v_to
let eff_tx v = eff_period v.tx_from v.tx_to

(* --- random where clauses over the two user attributes --- *)

type tfield = F_id | F_amount

type twhere =
  | W_atom of tfield * cmp * int
  | W_and of twhere * twhere
  | W_or of twhere * twhere

let tfield_text = function F_id -> "id" | F_amount -> "amount"
let tfield_get v = function F_id -> v.m_id | F_amount -> v.m_amount

let rec twhere_text = function
  | W_atom (f, op, k) ->
      Printf.sprintf "t.%s %s %d" (tfield_text f) (cmp_text op) k
  | W_and (a, b) -> Printf.sprintf "(%s and %s)" (twhere_text a) (twhere_text b)
  | W_or (a, b) -> Printf.sprintf "(%s or %s)" (twhere_text a) (twhere_text b)

let rec twhere_fn p v =
  match p with
  | W_atom (f, op, k) -> cmp_fn op (tfield_get v f) k
  | W_and (a, b) -> twhere_fn a v && twhere_fn b v
  | W_or (a, b) -> twhere_fn a v || twhere_fn b v

let gen_tatom rng =
  W_atom
    ( (if Random.State.bool rng then F_id else F_amount),
      List.nth [ Lt; Le; Eq; Ge; Gt; Ne ] (Random.State.int rng 6),
      Random.State.int rng 40 )

let rec gen_twhere rng depth =
  if depth = 0 || Random.State.int rng 2 = 0 then gen_tatom rng
  else if Random.State.bool rng then
    W_and (gen_twhere rng (depth - 1), gen_twhere rng (depth - 1))
  else W_or (gen_twhere rng (depth - 1), gen_twhere rng (depth - 1))

(* --- random when clauses: temporal predicates over the valid period --- *)

type texpr = T_var | T_const of int

type twhen =
  | T_overlap of texpr * texpr
  | T_precede of texpr * texpr
  | T_equal of texpr * texpr
  | T_and of twhen * twhen
  | T_or of twhen * twhen
  | T_not of twhen

let texpr_text = function
  | T_var -> "t"
  | T_const n -> Printf.sprintf "%S" (tlit n)

let rec twhen_text = function
  | T_overlap (a, b) ->
      Printf.sprintf "%s overlap %s" (texpr_text a) (texpr_text b)
  | T_precede (a, b) ->
      Printf.sprintf "%s precede %s" (texpr_text a) (texpr_text b)
  | T_equal (a, b) -> Printf.sprintf "%s equal %s" (texpr_text a) (texpr_text b)
  | T_and (a, b) -> Printf.sprintf "(%s and %s)" (twhen_text a) (twhen_text b)
  | T_or (a, b) -> Printf.sprintf "(%s or %s)" (twhen_text a) (twhen_text b)
  | T_not a -> Printf.sprintf "not (%s)" (twhen_text a)

let texpr_period vp = function T_var -> vp | T_const n -> Period.at (chron n)

let rec twhen_fn vp = function
  | T_overlap (a, b) -> Period.overlaps (texpr_period vp a) (texpr_period vp b)
  | T_precede (a, b) -> Period.precede (texpr_period vp a) (texpr_period vp b)
  | T_equal (a, b) -> Period.equal (texpr_period vp a) (texpr_period vp b)
  | T_and (a, b) -> twhen_fn vp a && twhen_fn vp b
  | T_or (a, b) -> twhen_fn vp a || twhen_fn vp b
  | T_not a -> not (twhen_fn vp a)

let gen_texpr rng =
  if Random.State.bool rng then T_var else T_const (Random.State.int rng 400)

let gen_twhen_atom rng =
  let a = gen_texpr rng and b = gen_texpr rng in
  (* All-constant predicates are legal but degenerate; mostly make the
     tuple variable appear on one side. *)
  let a =
    match (a, b) with
    | T_const _, T_const _ when Random.State.int rng 3 > 0 -> T_var
    | _ -> a
  in
  match Random.State.int rng 3 with
  | 0 -> T_overlap (a, b)
  | 1 -> T_precede (a, b)
  | _ -> T_equal (a, b)

let rec gen_twhen rng depth =
  if depth = 0 || Random.State.int rng 2 = 0 then gen_twhen_atom rng
  else
    match Random.State.int rng 3 with
    | 0 -> T_and (gen_twhen rng (depth - 1), gen_twhen rng (depth - 1))
    | 1 -> T_or (gen_twhen rng (depth - 1), gen_twhen rng (depth - 1))
    | _ -> T_not (gen_twhen rng (depth - 1))

(* --- random modification statements --- *)

type valid_iv = { vlo : int; vhi : int }  (* ordered offsets *)

let gen_valid_iv rng =
  let a = Random.State.int rng 400 and b = Random.State.int rng 400 in
  { vlo = min a b; vhi = max a b }

let valid_iv_text { vlo; vhi } =
  Printf.sprintf " valid from %S to %S" (tlit vlo) (tlit vhi)

type op =
  | Op_append of { id : int; amount : int; valid : valid_iv option }
  | Op_delete of { where : twhere option; when_ : twhen option }
  | Op_replace of {
      new_id : int option;
      new_amount : int;
      valid : valid_iv option;
      where : twhere option;
      when_ : twhen option;
    }

let where_text = function Some w -> " where " ^ twhere_text w | None -> ""
let when_text = function Some p -> " when " ^ twhen_text p | None -> ""

let op_text = function
  | Op_append { id; amount; valid } ->
      Printf.sprintf "append to tr (id = %d, amount = %d)%s" id amount
        (match valid with Some iv -> valid_iv_text iv | None -> "")
  | Op_delete { where; when_ } ->
      "delete t" ^ where_text where ^ when_text when_
  | Op_replace { new_id; new_amount; valid; where; when_ } ->
      Printf.sprintf "replace t (%samount = %d)%s%s%s"
        (match new_id with
        | Some i -> Printf.sprintf "id = %d, " i
        | None -> "")
        new_amount
        (match valid with Some iv -> valid_iv_text iv | None -> "")
        (where_text where) (when_text when_)

let gen_append rng kind =
  Op_append
    {
      id = Random.State.int rng 9;
      amount = Random.State.int rng 35;
      valid =
        (if kind_has_valid kind && Random.State.int rng 10 < 6 then
           Some (gen_valid_iv rng)
         else None);
    }

(* [allow_id_change] is false on keyed organizations: a static in-place
   replace of the key attribute would strand the tuple in its old bucket,
   which is outside what these histories mean to exercise. *)
let gen_op rng kind ~allow_id_change =
  match Random.State.int rng 4 with
  | 0 | 1 -> gen_append rng kind
  | 2 ->
      Op_delete
        {
          where =
            (if Random.State.int rng 10 < 8 then Some (gen_twhere rng 1)
             else None);
          when_ =
            (if kind_has_valid kind && Random.State.int rng 10 < 4 then
               Some (gen_twhen rng 1)
             else None);
        }
  | _ ->
      Op_replace
        {
          new_id =
            (if allow_id_change && Random.State.int rng 4 = 0 then
               Some (Random.State.int rng 9)
             else None);
          new_amount = Random.State.int rng 35;
          valid =
            (if kind_has_valid kind && Random.State.int rng 10 < 4 then
               Some (gen_valid_iv rng)
             else None);
          where =
            (if Random.State.int rng 10 < 8 then Some (gen_twhere rng 1)
             else None);
          when_ =
            (if kind_has_valid kind && Random.State.int rng 10 < 3 then
               Some (gen_twhen rng 1)
             else None);
        }

(* --- applying a modification to the model (mirrors update_executor) --- *)

let modifiable kind ~now v =
  ((not (kind_has_tx kind)) || Chronon.is_forever v.tx_to)
  && ((not (kind_has_valid kind)) || Chronon.compare now v.v_to < 0)

let op_qualifies kind ~now ~where ~when_ v =
  modifiable kind ~now v
  && (match where with Some w -> twhere_fn w v | None -> true)
  && match when_ with Some p -> twhen_fn (eff_valid v) p | None -> true

let apply_op kind model ~now op =
  match op with
  | Op_append { id; amount; valid } ->
      let v_from, v_to =
        match valid with
        | Some { vlo; vhi } when kind_has_valid kind -> (chron vlo, chron vhi)
        | _ -> (now, Chronon.forever)
      in
      model :=
        !model
        @ [ { m_id = id; m_amount = amount; v_from; v_to; tx_from = now;
              tx_to = Chronon.forever } ]
  | Op_delete { where; when_ } -> (
      let victims = List.filter (op_qualifies kind ~now ~where ~when_) !model in
      match kind with
      | K_static ->
          model := List.filter (fun v -> not (List.memq v victims)) !model
      | K_rollback -> List.iter (fun v -> v.tx_to <- now) victims
      | K_historical -> List.iter (fun v -> v.v_to <- now) victims
      | K_temporal ->
          List.iter
            (fun v ->
              v.tx_to <- now;
              model :=
                !model
                @ [ { m_id = v.m_id; m_amount = v.m_amount; v_from = v.v_from;
                      v_to = now; tx_from = now; tx_to = Chronon.forever } ])
            victims)
  | Op_replace { new_id; new_amount; valid; where; when_ } ->
      let victims = List.filter (op_qualifies kind ~now ~where ~when_) !model in
      let fresh_valid () =
        match valid with
        | Some { vlo; vhi } when kind_has_valid kind -> (chron vlo, chron vhi)
        | _ -> (now, Chronon.forever)
      in
      List.iter
        (fun v ->
          let id = match new_id with Some i -> i | None -> v.m_id in
          match kind with
          | K_static ->
              v.m_id <- id;
              v.m_amount <- new_amount
          | K_rollback ->
              v.tx_to <- now;
              model :=
                !model
                @ [ { m_id = id; m_amount = new_amount; v_from = now;
                      v_to = Chronon.forever; tx_from = now;
                      tx_to = Chronon.forever } ]
          | K_historical ->
              v.v_to <- now;
              let v_from, v_to = fresh_valid () in
              model :=
                !model
                @ [ { m_id = id; m_amount = new_amount; v_from; v_to;
                      tx_from = now; tx_to = Chronon.forever } ]
          | K_temporal ->
              v.tx_to <- now;
              model :=
                !model
                @ [ { m_id = v.m_id; m_amount = v.m_amount; v_from = v.v_from;
                      v_to = now; tx_from = now; tx_to = Chronon.forever } ];
              let v_from, v_to = fresh_valid () in
              model :=
                !model
                @ [ { m_id = id; m_amount = new_amount; v_from; v_to;
                      tx_from = now; tx_to = Chronon.forever } ])
        victims

(* --- random retrieves --- *)

type qvalid = QV_interval of int * int (* may be reversed *) | QV_event of int

type oquery = {
  q_where : twhere option;
  q_when : twhen option;
  q_valid : qvalid option;
  q_as_of : (int * int option) option;
}

let query_text q =
  "retrieve (t.id, t.amount)"
  ^ (match q.q_valid with
    | Some (QV_interval (a, b)) ->
        Printf.sprintf " valid from %S to %S" (tlit a) (tlit b)
    | Some (QV_event a) -> Printf.sprintf " valid at %S" (tlit a)
    | None -> "")
  ^ where_text q.q_where ^ when_text q.q_when
  ^
  match q.q_as_of with
  | Some (a, None) -> Printf.sprintf " as of %S" (tlit a)
  | Some (a, Some b) ->
      Printf.sprintf " as of %S through %S" (tlit a) (tlit b)
  | None -> ""

(* The model's answer, mirroring the executor: the as-of window filters on
   the transaction period (default window: the event at [now]); where and
   when filter on user values and the valid period; an explicit valid
   clause replaces the implicit time columns (a reversed interval drops
   the row); the default time columns are the valid period rendered as
   [from, exclusive end). *)
let model_rows kind model ~now q =
  let window =
    match q.q_as_of with
    | None -> Period.at now
    | Some (a, None) -> Period.at (chron a)
    | Some (a, Some b) -> Period.make (chron a) (Chronon.succ (chron b))
  in
  List.filter_map
    (fun v ->
      let tx_ok =
        (not (kind_has_tx kind)) || Period.overlaps (eff_tx v) window
      in
      let where_ok =
        match q.q_where with Some w -> twhere_fn w v | None -> true
      in
      let when_ok =
        match q.q_when with Some p -> twhen_fn (eff_valid v) p | None -> true
      in
      if not (tx_ok && where_ok && when_ok) then None
      else
        let user = [ Value.Int v.m_id; Value.Int v.m_amount ] in
        match q.q_valid with
        | Some (QV_event a) -> Some (user @ [ Value.Time (chron a) ])
        | Some (QV_interval (a, b)) ->
            if b < a then None (* interval ends before it starts: dropped *)
            else Some (user @ [ Value.Time (chron a); Value.Time (chron b) ])
        | None ->
            if kind_has_valid kind then
              let p = eff_valid v in
              let from_ = Period.from_ p in
              let to_ =
                if Period.is_event p then Chronon.succ from_ else Period.to_ p
              in
              Some (user @ [ Value.Time from_; Value.Time to_ ])
            else Some user)
    !model

let render_row row = String.concat " | " (List.map Value.to_string row)

(* Run one retrieve through both executor paths.  The rows are compared as
   rendered strings so a mismatch report is directly readable. *)
let run_both db src =
  let rows () =
    match Engine.execute_one db src with
    | Ok (Engine.Rows { tuples; _ }) ->
        Ok
          (List.map (fun tu -> render_row (Array.to_list tu)) tuples)
    | Ok _ -> Error "expected rows"
    | Error e -> Error ("engine error: " ^ e)
  in
  Engine.set_parallelism (Some 1);
  let seq = rows () in
  Engine.set_parallelism (Some 4);
  let par = rows () in
  Engine.set_parallelism (Some 1);
  (seq, par)

let verify_rows ~seq ~par ~model_rows =
  match (seq, par) with
  | (Error e, _ | _, Error e) -> Error e
  | Ok seq, Ok par ->
      if seq <> par then
        Error
          (Printf.sprintf
             "sequential and parallel executors disagree:\n\
              sequential (%d rows):\n%s\nparallel (%d rows):\n%s"
             (List.length seq)
             (String.concat "\n" seq)
             (List.length par)
             (String.concat "\n" par))
      else
        let got = List.sort compare seq
        and want = List.sort compare model_rows in
        if got <> want then
          Error
            (Printf.sprintf
               "engine disagrees with the model:\n\
                engine (%d rows):\n%s\nmodel (%d rows):\n%s"
               (List.length got)
               (String.concat "\n" got)
               (List.length want)
               (String.concat "\n" want))
        else Ok ()

let test_temporal_oracle () =
  let rng = Random.State.make [| oracle_seed |] in
  let seen_where = ref 0 and seen_when = ref 0 in
  let seen_valid = ref 0 and seen_as_of = ref 0 in
  let kinds =
    List.concat_map
      (fun k -> [ k; k; k; k ])
      [ K_static; K_rollback; K_historical; K_temporal ]
  in
  Fun.protect ~finally:(fun () -> Engine.set_parallelism None) @@ fun () ->
  List.iteri
    (fun trial kind ->
      let db = ok (Database.create ()) in
      let script = Buffer.create 4096 in
      let model = ref [] in
      let fail_with ~query detail =
        Alcotest.fail
          (oracle_report ~seed:oracle_seed ~script:(Buffer.contents script)
             ~query ~detail)
      in
      let exec_stmt s =
        Buffer.add_string script s;
        Buffer.add_char script '\n';
        match Engine.execute_one db s with
        | Ok _ -> ()
        | Error e -> fail_with ~query:s ("statement failed: " ^ e)
      in
      let run_op op =
        exec_stmt (op_text op);
        (* Modifications tick the clock before executing, so reading the
           clock afterwards gives the [now] the statement used. *)
        apply_op kind model ~now:(Database.now db) op
      in
      exec_stmt (create_text kind);
      exec_stmt "range of t is tr";
      let allow_id_change = trial mod 3 = 0 in
      for _ = 1 to 60 + Random.State.int rng 60 do
        run_op (gen_append rng kind)
      done;
      (match trial mod 3 with
      | 1 -> exec_stmt "modify tr to hash on id where fillfactor = 50"
      | 2 -> exec_stmt "modify tr to isam on id where fillfactor = 80"
      | _ -> ());
      for _ = 1 to 10 + Random.State.int rng 10 do
        run_op (gen_op rng kind ~allow_id_change)
      done;
      for _ = 1 to 8 do
        let q =
          {
            q_where =
              (if Random.State.int rng 10 < 6 then begin
                 incr seen_where;
                 Some (gen_twhere rng 2)
               end
               else None);
            q_when =
              (if kind_has_valid kind && Random.State.int rng 2 = 0 then begin
                 incr seen_when;
                 Some (gen_twhen rng 1)
               end
               else None);
            q_valid =
              (if Random.State.int rng 10 < 4 then begin
                 incr seen_valid;
                 if Random.State.int rng 4 = 0 then
                   Some (QV_event (Random.State.int rng 400))
                 else
                   let a = Random.State.int rng 400
                   and b = Random.State.int rng 400 in
                   let lo = min a b and hi = max a b in
                   if Random.State.int rng 5 = 0 && lo < hi then
                     Some (QV_interval (hi, lo))
                   else Some (QV_interval (lo, hi))
               end
               else None);
            q_as_of =
              (if kind_has_tx kind && Random.State.int rng 2 = 0 then begin
                 incr seen_as_of;
                 let a = Random.State.int rng 120 in
                 if Random.State.bool rng then Some (a, None)
                 else Some (a, Some (a + Random.State.int rng 60))
               end
               else None);
          }
        in
        let src = query_text q in
        Buffer.add_string script src;
        Buffer.add_char script '\n';
        let seq, par = run_both db src in
        let want =
          List.map render_row (model_rows kind model ~now:(Database.now db) q)
        in
        match verify_rows ~seq ~par ~model_rows:want with
        | Ok () -> ()
        | Error detail -> fail_with ~query:src detail
      done)
    kinds;
  (* The run must actually have covered all four clause kinds. *)
  List.iter
    (fun (name, n) ->
      if !n = 0 then
        Alcotest.failf "oracle never generated a %s clause (seed %d)" name
          oracle_seed)
    [ ("where", seen_where); ("when", seen_when); ("valid", seen_valid);
      ("as of", seen_as_of) ]

let test_oracle_mismatch_reporting () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  (* A forced sequential/parallel divergence surfaces through the same
     reporting path the oracle uses, naming the seed and the script. *)
  let detail =
    match
      verify_rows ~seq:(Ok [ "1 | 2" ]) ~par:(Ok [ "1 | 3" ])
        ~model_rows:[ "1 | 2" ]
    with
    | Error d -> d
    | Ok () -> Alcotest.fail "expected a mismatch"
  in
  let report =
    oracle_report ~seed:4321 ~script:"append to tr (id = 1, amount = 2)\n"
      ~query:"retrieve (t.id, t.amount)" ~detail
  in
  Alcotest.(check bool) "report names the seed" true
    (contains report "TDB_ORACLE_SEED=4321");
  Alcotest.(check bool) "report carries the script" true
    (contains report "append to tr (id = 1, amount = 2)");
  Alcotest.(check bool) "report carries the failing query" true
    (contains report "retrieve (t.id, t.amount)");
  Alcotest.(check bool) "report explains the divergence" true
    (contains report "disagree");
  (* A forced model divergence is reported too. *)
  match
    verify_rows ~seq:(Ok [ "1 | 2" ]) ~par:(Ok [ "1 | 2" ]) ~model_rows:[]
  with
  | Error d ->
      Alcotest.(check bool) "model mismatch mentions the model" true
        (contains d "model")
  | Ok () -> Alcotest.fail "expected a model mismatch"

(* Scale-10 probe oracle: the paper workload at ten times the paper's
   row count, queried through randomized keyed and range probes with the
   admission floor dropped to zero so every eligible probe fans out
   across the pool.  Two invariants per query: the 4-worker rows are
   verbatim the sequential rows, and the folded per-partition read
   counters equal the sequential cold-pool read counts exactly. *)
let test_scale10_parallel_probes () =
  let module Workload = Tdb_benchkit.Workload in
  let module Evolve = Tdb_benchkit.Evolve in
  let module Executor = Tdb_query.Executor in
  let module Relation_file = Tdb_storage.Relation_file in
  let module Buffer_pool = Tdb_storage.Buffer_pool in
  let w =
    Workload.build ~scale:10 ~kind:Workload.Temporal ~loading:100 ~seed:77 ()
  in
  for round = 1 to 2 do
    Evolve.uniform_round w ~round
  done;
  let db = w.Workload.db in
  let chill () =
    List.iter
      (fun name ->
        match Database.find_relation db name with
        | Some rel -> Buffer_pool.invalidate (Relation_file.pool rel)
        | None -> ())
      (Database.relation_names db)
  in
  let measure src =
    chill ();
    Database.reset_io db;
    match Engine.execute_one db src with
    | Ok (Engine.Rows { tuples; io; _ }) ->
        ( List.map
            (fun tu ->
              String.concat "|"
                (Array.to_list (Array.map Value.to_string tu)))
            tuples,
          io.Tdb_query.Executor.input_reads )
    | Ok _ -> Alcotest.failf "expected rows: %s" src
    | Error e -> Alcotest.failf "query failed (%s): %s" e src
  in
  let rng = Random.State.make [| 8086 |] in
  let n_ids = Workload.n_tuples * 10 in
  let gen_query () =
    let var = if Random.State.bool rng then "h" else "i" in
    let probe =
      match Random.State.int rng 3 with
      | 0 -> Printf.sprintf "%s.id = %d" var (Random.State.int rng n_ids)
      | 1 ->
          let lo = Random.State.int rng n_ids in
          let hi = min (n_ids - 1) (lo + 1 + Random.State.int rng 400) in
          Printf.sprintf "%s.id >= %d and %s.id <= %d" var lo var hi
      | _ ->
          let hi = Random.State.int rng n_ids in
          Printf.sprintf "%s.id <= %d and %s.id >= %d" var hi var
            (max 0 (hi - 200))
    in
    let temporal =
      match Random.State.int rng 4 with
      | 0 -> Printf.sprintf {| when %s overlap "now"|} var
      | 1 -> {| as of "08:00 1/1/80"|}
      | 2 -> {| as of "now"|}
      | _ -> ""
    in
    Printf.sprintf "retrieve (%s.id, %s.seq, %s.amount) where %s%s" var var
      var probe temporal
  in
  Fun.protect ~finally:(fun () ->
      Engine.set_parallelism None;
      Tdb_query.Executor.set_parallel_min_pages None)
  @@ fun () ->
  Executor.set_parallel_min_pages (Some 0);
  for _ = 1 to 40 do
    let src = gen_query () in
    Engine.set_parallelism (Some 1);
    let rows_seq, reads_seq = measure src in
    Engine.set_parallelism (Some 4);
    let rows_par, reads_par = measure src in
    Engine.set_parallelism (Some 1);
    if rows_seq <> rows_par then
      Alcotest.failf
        "scale-10 probe rows diverge (%s):\nsequential (%d rows)\nparallel \
         (%d rows)"
        src (List.length rows_seq) (List.length rows_par);
    if reads_seq <> reads_par then
      Alcotest.failf "scale-10 probe reads diverge (%s): %d seq vs %d par" src
        reads_seq reads_par
  done

(* ====================================================================== *)
(* Temporal-join oracle: random valid-time histories on two relations,    *)
(* random Allen-classifiable when clauses.  Three invariants per query:   *)
(* the temporal-join plan's rows are VERBATIM the nested-loop rows (same  *)
(* order), the 4-worker rows are verbatim the sequential rows, and the    *)
(* user columns match a naive cross-product model.                        *)
(* ====================================================================== *)

type jatom = {
  j_ep_l : [ `Whole | `Start | `End ];
  j_ep_r : [ `Whole | `Start | `End ];
  j_op : [ `Overlap | `Equal | `Precede ];
}

let jatom_text a =
  let ep e v =
    match e with
    | `Whole -> v
    | `Start -> "start of " ^ v
    | `End -> "end of " ^ v
  in
  let op =
    match a.j_op with
    | `Overlap -> "overlap"
    | `Equal -> "equal"
    | `Precede -> "precede"
  in
  Printf.sprintf "%s %s %s" (ep a.j_ep_l "h") op (ep a.j_ep_r "i")

let jatom_fn a pl pr =
  let ep e p =
    match e with
    | `Whole -> p
    | `Start -> Period.start_of p
    | `End -> Period.end_of p
  in
  let l = ep a.j_ep_l pl and r = ep a.j_ep_r pr in
  match a.j_op with
  | `Overlap -> Period.overlaps l r
  | `Equal -> Period.equal l r
  | `Precede -> Period.precede l r

let gen_jatom rng =
  let ep () =
    match Random.State.int rng 4 with
    | 0 -> `Start
    | 1 -> `End
    | _ -> `Whole
  in
  {
    j_ep_l = ep ();
    j_ep_r = ep ();
    j_op =
      List.nth [ `Overlap; `Equal; `Precede ] (Random.State.int rng 3);
  }

let test_temporal_join_oracle () =
  let module Executor = Tdb_query.Executor in
  let rng = Random.State.make [| oracle_seed + 17 |] in
  Fun.protect ~finally:(fun () -> Engine.set_parallelism None) @@ fun () ->
  for trial = 1 to 24 do
    let db = ok (Database.create ()) in
    exec db
      {|create interval th (id = i4, amount = i4)
        create interval ti (id = i4, amount = i4)
        range of h is th
        range of i is ti|};
    let gen_side rel n =
      List.init n (fun _ ->
          let id = Random.State.int rng 8
          and amount = Random.State.int rng 6 in
          let lo = Random.State.int rng 300 in
          let hi = lo + Random.State.int rng 150 in
          (* hi = lo appends a degenerate interval: stored as an event *)
          exec db
            (Printf.sprintf
               {|append to %s (id = %d, amount = %d) valid from %S to %S|}
               rel id amount (tlit lo) (tlit hi));
          (id, amount, eff_period (chron lo) (chron hi)))
    in
    let hs = gen_side "th" (10 + Random.State.int rng 30) in
    let is_ = gen_side "ti" (10 + Random.State.int rng 30) in
    if trial mod 3 = 0 then exec db "modify ti to isam on id where fillfactor = 50";
    let atom = gen_jatom rng in
    let equi = Random.State.int rng 3 = 0 in
    let src =
      Printf.sprintf
        {|retrieve (h.id, i.id, h.amount) valid from %S to %S %swhen %s|}
        (tlit 0) (tlit 500)
        (if equi then "where h.amount = i.amount " else "")
        (jatom_text atom)
    in
    let run () =
      match Engine.execute_one db src with
      | Ok (Engine.Rows { tuples; plan; _ }) ->
          ( List.map (fun tu -> render_row (Array.to_list tu)) tuples,
            Tdb_query.Plan.to_string plan )
      | Ok _ -> Alcotest.failf "expected rows: %s" src
      | Error e -> Alcotest.failf "query failed (%s): %s" e src
    in
    Engine.set_parallelism (Some 1);
    let rows_tj, plan_tj =
      Executor.with_temporal_join true (fun () -> run ())
    in
    let rows_nl, plan_nl =
      Executor.with_temporal_join false (fun () -> run ())
    in
    Engine.set_parallelism (Some 4);
    let rows_tj4, _ = Executor.with_temporal_join true (fun () -> run ()) in
    Engine.set_parallelism (Some 1);
    (* the plans really are different strategies for the same query *)
    if String.length plan_tj < 8 || String.sub plan_tj 0 8 <> "temporal" then
      Alcotest.failf "trial %d (%s): wanted a temporal join, got %s" trial src
        plan_tj;
    if String.length plan_nl >= 8 && String.sub plan_nl 0 8 = "temporal" then
      Alcotest.failf "trial %d: toggle off still picked %s" trial plan_nl;
    if rows_tj <> rows_nl then
      Alcotest.failf
        "trial %d (seed %d): temporal join and nested loop diverge on %s\n\
         tjoin (%s, %d rows):\n%s\nnested (%s, %d rows):\n%s"
        trial oracle_seed src plan_tj (List.length rows_tj)
        (String.concat "\n" rows_tj)
        plan_nl (List.length rows_nl)
        (String.concat "\n" rows_nl);
    if rows_tj <> rows_tj4 then
      Alcotest.failf "trial %d: 4-worker rows diverge on %s" trial src;
    (* naive cross-product model over the user columns *)
    let want =
      List.concat_map
        (fun (hid, hamt, hp) ->
          List.filter_map
            (fun (iid, iamt, ip) ->
              if jatom_fn atom hp ip && ((not equi) || hamt = iamt) then
                Some
                  (render_row
                     [ Value.Int hid; Value.Int iid; Value.Int hamt;
                       Value.Time (chron 0); Value.Time (chron 500) ])
              else None)
            is_)
        hs
    in
    let got = List.sort compare rows_tj and want = List.sort compare want in
    if got <> want then
      Alcotest.failf
        "trial %d (seed %d): engine disagrees with the model on %s (%d vs %d \
         rows)"
        trial oracle_seed src (List.length got) (List.length want)
  done

(* ====================================================================== *)
(* Snapshot-semantics oracle (the reduction used by Dignös et al.): a     *)
(* coalesced result restricted to any time point must equal the           *)
(* non-temporal evaluation over the snapshot at that point — distinct     *)
(* user rows for plain retrieves, folded aggregates for aggregate ones.   *)
(* ====================================================================== *)

let test_snapshot_semantics_oracle () =
  let rng = Random.State.make [| oracle_seed + 23 |] in
  Fun.protect ~finally:(fun () -> Engine.set_parallelism None) @@ fun () ->
  for trial = 1 to 16 do
    let db = ok (Database.create ()) in
    let script = Buffer.create 2048 in
    let model = ref [] in
    let exec_stmt s =
      Buffer.add_string script s;
      Buffer.add_char script '\n';
      match Engine.execute_one db s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "statement failed (%s): %s" e s
    in
    let run_op op =
      exec_stmt (op_text op);
      apply_op K_historical model ~now:(Database.now db) op
    in
    exec_stmt (create_text K_historical);
    exec_stmt "range of t is tr";
    for _ = 1 to 25 + Random.State.int rng 30 do
      run_op (gen_append rng K_historical)
    done;
    if trial mod 3 = 1 then exec_stmt "modify tr to hash on id where fillfactor = 50";
    for _ = 1 to 6 + Random.State.int rng 6 do
      run_op (gen_op rng K_historical ~allow_id_change:false)
    done;
    let where = if Random.State.bool rng then Some (gen_twhere rng 1) else None in
    let live v =
      (match where with Some w -> twhere_fn w v | None -> true)
    in
    (* sample points: every version endpoint, its neighbors, and noise *)
    let samples =
      List.concat_map
        (fun v ->
          [ v.v_from; Chronon.succ v.v_from; v.v_to; Chronon.succ v.v_to ])
        !model
      @ List.init 20 (fun _ -> chron (Random.State.int rng 500))
    in
    let snapshot_at c =
      List.filter
        (fun v -> live v && Period.contains (eff_valid v) c)
        !model
    in
    let structured src =
      match Engine.execute_one db src with
      | Ok (Engine.Rows { tuples; _ }) -> tuples
      | Ok _ -> Alcotest.failf "expected rows: %s" src
      | Error e -> Alcotest.failf "query failed (%s): %s" e src
    in
    let fail_at src c detail =
      Alcotest.fail
        (oracle_report ~seed:oracle_seed ~script:(Buffer.contents script)
           ~query:src
           ~detail:
             (Printf.sprintf "at chronon %s: %s" (Chronon.to_string c) detail))
    in
    let row_period tu =
      let n = Array.length tu in
      match (tu.(n - 2), tu.(n - 1)) with
      | Value.Time f, Value.Time t -> (f, t)
      | _ -> Alcotest.fail "expected trailing time columns"
    in
    let covers (f, t) c =
      Chronon.compare f c <= 0 && Chronon.compare c t < 0
    in
    let check_workers src =
      Engine.set_parallelism (Some 1);
      let seq = structured src in
      Engine.set_parallelism (Some 4);
      let par = structured src in
      Engine.set_parallelism (Some 1);
      if seq <> par then
        Alcotest.failf
          "sequential and 4-worker coalesced rows diverge (seed %d) on %s"
          oracle_seed src;
      seq
    in
    (* --- plain coalesced retrieve: rows at c = distinct snapshot rows --- *)
    let src = "retrieve coalesced (t.id, t.amount)" ^ where_text where in
    Buffer.add_string script (src ^ "\n");
    let rows = check_workers src in
    (* minimality: no two value-equivalent rows touch or overlap *)
    let by_user = Hashtbl.create 16 in
    List.iter
      (fun tu ->
        let key = (tu.(0), tu.(1)) in
        let f, t = row_period tu in
        let prev = Option.value (Hashtbl.find_opt by_user key) ~default:[] in
        List.iter
          (fun (pf, pt) ->
            if Chronon.compare f pt <= 0 && Chronon.compare pf t <= 0 then
              fail_at src f "value-equivalent result rows touch or overlap")
          prev;
        Hashtbl.replace by_user key ((f, t) :: prev))
      rows;
    List.iter
      (fun c ->
        let got =
          List.filter_map
            (fun tu ->
              if covers (row_period tu) c then Some (tu.(0), tu.(1)) else None)
            rows
          |> List.sort_uniq compare
        in
        let want =
          snapshot_at c
          |> List.map (fun v -> (Value.Int v.m_id, Value.Int v.m_amount))
          |> List.sort_uniq compare
        in
        if got <> want then
          fail_at src c
            (Printf.sprintf
               "coalesced slice has %d distinct rows, snapshot has %d"
               (List.length got) (List.length want)))
      samples;
    (* --- temporal aggregation: the aggregate at c = snapshot fold --- *)
    let src =
      "retrieve coalesced (c = count(t.id), s = sum(t.amount))"
      ^ where_text where
    in
    Buffer.add_string script (src ^ "\n");
    let rows = check_workers src in
    List.iter
      (fun c ->
        let covering =
          List.filter (fun tu -> covers (row_period tu) c) rows
        in
        let snap = snapshot_at c in
        let want_count = List.length snap in
        let want_sum =
          List.fold_left (fun acc v -> acc + v.m_amount) 0 snap
        in
        match covering with
        | [] ->
            if want_count > 0 then
              fail_at src c
                (Printf.sprintf "no aggregate row, snapshot has %d versions"
                   want_count)
        | [ tu ] -> (
            match (tu.(0), tu.(1)) with
            | Value.Int gc, Value.Int gs ->
                if gc <> want_count || gs <> want_sum then
                  fail_at src c
                    (Printf.sprintf "aggregate (%d, %d) vs snapshot (%d, %d)"
                       gc gs want_count want_sum)
            | _ -> fail_at src c "non-integer aggregate values")
        | _ -> fail_at src c "overlapping aggregate intervals")
      samples
  done

let suites =
  [
    ( "oracle",
      [
        Alcotest.test_case "single variable, all access methods" `Quick
          test_single_variable_oracle;
        Alcotest.test_case "joins under every plan" `Quick test_join_oracle;
        Alcotest.test_case "range probes" `Quick test_range_oracle;
        Alcotest.test_case "aggregates" `Quick test_aggregate_oracle;
        Alcotest.test_case "temporal histories, both executors" `Quick
          test_temporal_oracle;
        Alcotest.test_case "mismatch reports are reproducible" `Quick
          test_oracle_mismatch_reporting;
        Alcotest.test_case "temporal joins vs nested loop, both executors"
          `Quick test_temporal_join_oracle;
        Alcotest.test_case "snapshot semantics of coalesced results" `Quick
          test_snapshot_semantics_oracle;
        Alcotest.test_case "scale 10: parallel probes vs sequential" `Slow
          test_scale10_parallel_probes;
      ] );
  ]
