(* Access-path cursor conformance: for every access method, draining the
   cursor yields the same record multiset as the eager page/chain walk it
   replaced, with identical page I/O and identical fence skips — with and
   without a temporal window.  The two-level store's access module is
   checked at the tuple level across both of its stores. *)

module Disk = Tdb_storage.Disk
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Pfile = Tdb_storage.Pfile
module Tid = Tdb_storage.Tid
module Cursor = Tdb_storage.Cursor
module Time_fence = Tdb_storage.Time_fence
module Heap_file = Tdb_storage.Heap_file
module Hash_file = Tdb_storage.Hash_file
module Isam_file = Tdb_storage.Isam_file
module Relation_file = Tdb_storage.Relation_file
module Two_level_store = Tdb_twostore.Two_level_store
module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period

(* 124-byte records (8 per page): an int32 key, then the four time
   chronons as int32 seconds.  Record [k] lives in transaction and valid
   period [10k, 10k+10), so time windows select contiguous key ranges and
   heap pages develop tight, disjoint fences. *)
let record_size = 124
let c s = Chronon.of_seconds s

let record k =
  let b = Bytes.make record_size '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int k);
  Bytes.set_int32_be b 4 (Int32.of_int (k * 10));
  Bytes.set_int32_be b 8 (Int32.of_int ((k * 10) + 10));
  Bytes.set_int32_be b 12 (Int32.of_int (k * 10));
  Bytes.set_int32_be b 16 (Int32.of_int ((k * 10) + 10));
  b

let key_of b = Value.Int (Int32.to_int (Bytes.get_int32_be b 0))
let field b off = Int32.to_int (Bytes.get_int32_be b off)

let stamp b =
  Time_fence.stamp
    ~transaction:(Some (c (field b 4), c (field b 8)))
    ~valid:(Some (c (field b 12), c (field b 16)))

(* A window selecting records whose transaction period meets [lo, hi). *)
let window lo hi =
  { Time_fence.transaction = Some (Period.make (c lo) (c hi)); valid = None }

let fresh_pool () =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create (Disk.create_mem ()) stats in
  (pool, stats)

(* Run [f], observing page reads and fence skips from a cold cache. *)
let measure stats pool f =
  Buffer_pool.invalidate pool;
  Io_stats.reset stats;
  Time_fence.reset_pages_skipped ();
  let out = ref [] in
  f (fun tid record -> out := (tid, Bytes.to_string record) :: !out);
  ( List.sort compare !out,
    (Io_stats.snapshot stats).Io_stats.reads,
    Time_fence.pages_skipped () )

let check_same name (recs_c, reads_c, skips_c) (recs_d, reads_d, skips_d) =
  Alcotest.(check int)
    (name ^ ": same record count")
    (List.length recs_d) (List.length recs_c);
  Alcotest.(check bool) (name ^ ": same records") true (recs_c = recs_d);
  Alcotest.(check int) (name ^ ": same reads") reads_d reads_c;
  Alcotest.(check int) (name ^ ": same skips") skips_d skips_c

let n_records = 100

let test_heap_conformance () =
  let pool, stats = fresh_pool () in
  let h = Heap_file.create pool ~record_size in
  Pfile.enable_fences (Heap_file.pfile h) ~stamp;
  List.iter
    (fun k -> ignore (Heap_file.insert h (record k)))
    (List.init n_records Fun.id);
  let pf = Heap_file.pfile h in
  let direct ?window visit =
    for page = 0 to Pfile.npages pf - 1 do
      Pfile.page_iter ?window pf ~page visit
    done
  in
  List.iter
    (fun w ->
      let name = if w = None then "heap" else "heap+window" in
      check_same name
        (measure stats pool (fun visit ->
             Cursor.iter (Heap_file.scan_cursor ?window:w h) visit))
        (measure stats pool (fun visit -> direct ?window:w visit)))
    [ None; Some (window 305 455) ];
  (* The window genuinely prunes: a fenced walk must skip pages. *)
  let _, _, skips =
    measure stats pool (fun visit ->
        Cursor.iter (Heap_file.scan_cursor ~window:(window 305 455) h) visit)
  in
  Alcotest.(check bool) "heap window prunes" true (skips > 0)

let test_hash_conformance () =
  let pool, stats = fresh_pool () in
  let h =
    Hash_file.build pool ~record_size ~key_of ~fillfactor:50
      (List.map record (List.init n_records Fun.id))
  in
  let pf = Hash_file.pfile h in
  Pfile.enable_fences pf ~stamp;
  for b = 0 to Hash_file.buckets h - 1 do
    Pfile.rebuild_chain_fences pf ~head:b
  done;
  let direct_scan ?window visit =
    for b = 0 to Hash_file.buckets h - 1 do
      Pfile.chain_iter ?window pf ~head:b visit
    done
  in
  List.iter
    (fun w ->
      let name = if w = None then "hash scan" else "hash scan+window" in
      check_same name
        (measure stats pool (fun visit ->
             Cursor.iter (Hash_file.scan_cursor ?window:w h) visit))
        (measure stats pool (fun visit -> direct_scan ?window:w visit)))
    [ None; Some (window 305 455) ];
  (* Keyed probe: cursor vs an eager walk of the key's bucket chain. *)
  let key = Value.Int 42 in
  let direct_lookup ?window visit =
    Pfile.chain_iter ?window pf
      ~head:(Hash_file.bucket_of h key)
      (fun tid r -> if Value.equal (key_of r) key then visit tid r)
  in
  List.iter
    (fun w ->
      let name = if w = None then "hash probe" else "hash probe+window" in
      let (recs, _, _) as cur =
        measure stats pool (fun visit ->
            Cursor.iter (Hash_file.lookup_cursor ?window:w h key) visit)
      in
      check_same name cur
        (measure stats pool (fun visit -> direct_lookup ?window:w visit));
      if w = None then
        Alcotest.(check int) "hash probe finds its key" 1 (List.length recs))
    [ None; Some (window 0 5000) ]

let test_isam_conformance () =
  let pool, stats = fresh_pool () in
  let t =
    Isam_file.build pool ~record_size ~key_of ~key_type:Attr_type.I4
      ~fillfactor:100
      (List.map record (List.init n_records Fun.id))
  in
  let pf = Isam_file.pfile t in
  Pfile.enable_fences pf ~stamp;
  for p = 0 to Isam_file.data_pages t - 1 do
    Pfile.rebuild_chain_fences pf ~head:p
  done;
  let direct_scan ?window visit =
    for p = 0 to Isam_file.data_pages t - 1 do
      Pfile.chain_iter ?window pf ~head:p visit
    done
  in
  List.iter
    (fun w ->
      let name = if w = None then "isam scan" else "isam scan+window" in
      check_same name
        (measure stats pool (fun visit ->
             Cursor.iter (Isam_file.scan_cursor ?window:w t) visit))
        (measure stats pool (fun visit -> direct_scan ?window:w visit)))
    [ None; Some (window 305 455) ];
  (* Keyed and range probes: ground-truth content, bounded cost. *)
  let scan_reads =
    let _, reads, _ =
      measure stats pool (fun visit ->
          Cursor.iter (Isam_file.scan_cursor t) visit)
    in
    reads
  in
  let probe_budget = scan_reads + Isam_file.directory_pages t in
  let recs, reads, _ =
    measure stats pool (fun visit ->
        Cursor.iter (Isam_file.lookup_cursor t (Value.Int 42)) visit)
  in
  Alcotest.(check int) "isam probe finds its key" 1 (List.length recs);
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "isam probe key" true
        (Value.equal (key_of (Bytes.of_string r)) (Value.Int 42)))
    recs;
  Alcotest.(check bool) "isam probe cheaper than scan" true
    (reads <= probe_budget);
  let recs, reads, _ =
    measure stats pool (fun visit ->
        Cursor.iter
          (Isam_file.range_cursor t ~lo:(Some (Value.Int 10))
             ~hi:(Some (Value.Int 19)))
          visit)
  in
  Alcotest.(check int) "isam range finds 10..19" 10 (List.length recs);
  Alcotest.(check bool) "isam range bounded cost" true (reads <= probe_budget)

(* --- the two-level store, at the tuple level --- *)

let ts_attr name ty = { Schema.name; ty }

let ts_schema =
  Schema.create_exn
    ~db_type:(Db_type.Temporal Db_type.Interval)
    [
      ts_attr "id" Attr_type.I4;
      ts_attr "amount" Attr_type.I4;
      ts_attr "seq" Attr_type.I4;
      ts_attr "string" (Attr_type.C 96);
    ]

let ts_tuple id =
  [|
    Value.Int id;
    Value.Int (id * 10);
    Value.Int 0;
    Value.Str "x";
    Value.Time (c 100);
    Value.Time Chronon.forever;
    Value.Time (c 100);
    Value.Time Chronon.forever;
  |]

let ts_n = 32
let ts_rounds = 2

let evolved_store () =
  let store =
    Two_level_store.create ~schema:ts_schema
      ~organization:(Relation_file.Hash { key_attr = 0; fillfactor = 100 })
      ~clustered:true
      (List.init ts_n ts_tuple)
  in
  for r = 1 to ts_rounds do
    for id = 0 to ts_n - 1 do
      ignore
        (Two_level_store.replace store
           ~now:(c (1000 * r))
           ~key:(Value.Int id)
           (fun tu ->
             (match tu.(2) with
             | Value.Int s -> tu.(2) <- Value.Int (s + 1)
             | _ -> ());
             tu))
    done
  done;
  store

let drain_tuples store cursor =
  let out = ref [] in
  Cursor.iter cursor (fun _ record ->
      out := Two_level_store.decode_record store record :: !out);
  List.sort compare !out

let test_twostore_conformance () =
  let store = evolved_store () in
  (* Every replace pushes two history versions; the current version stays
     in the primary store.  One cursor spans both levels. *)
  let all = drain_tuples store (Two_level_store.scan_cursor store) in
  Alcotest.(check int) "all versions"
    (ts_n + (ts_n * ts_rounds * 2))
    (List.length all);
  let eager = ref [] in
  Two_level_store.scan_all store (fun tu -> eager := tu :: !eager);
  Alcotest.(check bool) "cursor = eager scan_all" true
    (all = List.sort compare !eager);
  (* Keyed probe: exactly the versions of that key, from both levels. *)
  let key = Value.Int 7 in
  let versions =
    drain_tuples store (Two_level_store.Access.lookup_cursor store key)
  in
  Alcotest.(check int) "versions of one key"
    (1 + (ts_rounds * 2))
    (List.length versions);
  List.iter
    (fun tu ->
      Alcotest.(check bool) "probe key" true (Value.equal tu.(0) key))
    versions;
  (* Range probe: all versions of keys 4..6. *)
  let ranged =
    drain_tuples store
      (Two_level_store.Access.range_cursor store ~lo:(Some (Value.Int 4))
         ~hi:(Some (Value.Int 6)))
  in
  Alcotest.(check int) "versions in range"
    (3 * (1 + (ts_rounds * 2)))
    (List.length ranged)

let test_twostore_as_of_conformance () =
  let store = evolved_store () in
  (* Roll back to between the evolution rounds: the qualifying versions
     (exact overlap test applied, as the executor does) must be identical
     through the pruned rollback cursor and the full scan, with pruning
     on and off. *)
  let at = c 1500 in
  let qualifying cursor =
    let out = ref [] in
    Cursor.iter cursor (fun _ record ->
        let tu = Two_level_store.decode_record store record in
        match Tuple.transaction_period ts_schema tu with
        | Some p when Period.overlaps p (Period.at at) -> out := tu :: !out
        | _ -> ());
    List.sort compare !out
  in
  let reference =
    Time_fence.with_pruning false (fun () ->
        qualifying (Two_level_store.scan_cursor store))
  in
  (* Two versions per tuple overlap a mid-round instant: the round-1
     replacement, and the "validity ended" version the temporal replace
     semantics record (its transaction time never closes). *)
  Alcotest.(check int) "two versions per tuple" (2 * ts_n)
    (List.length reference);
  List.iter
    (fun prune ->
      Two_level_store.reset_io store;
      let got =
        Time_fence.with_pruning prune (fun () ->
            qualifying (Two_level_store.as_of_cursor store ~at))
      in
      Alcotest.(check bool)
        (Printf.sprintf "as-of cursor (pruning %b)" prune)
        true (got = reference))
    [ false; true ]

(* --- partitioned scans (the parallel executor's fan-out contract) ---

   For every organization and partition count: concatenating the
   partition cursors in list order reproduces the sequential cursor's
   rows exactly (which implies the multiset union), no data page appears
   in two partitions, and the partitions' summed reads plus fence skips
   conserve the sequential scan's. *)

let pr_n = 100

let pr_schema =
  Schema.create_exn
    ~db_type:(Db_type.Temporal Db_type.Interval)
    [
      ts_attr "id" Attr_type.I4;
      ts_attr "amount" Attr_type.I4;
      ts_attr "seq" Attr_type.I4;
      ts_attr "string" (Attr_type.C 96);
    ]

(* Tuple [k] lives in transaction and valid period [10k, 10k+10), exactly
   like [record k] above, so windows select contiguous key ranges. *)
let pr_tuple k =
  [|
    Value.Int k;
    Value.Int (k * 10);
    Value.Int 0;
    Value.Str "x";
    Value.Time (c (k * 10));
    Value.Time (c ((k * 10) + 10));
    Value.Time (c (k * 10));
    Value.Time (c ((k * 10) + 10));
  |]

let pr_rel org =
  let rel = Relation_file.create ~name:"part" ~schema:pr_schema () in
  for k = 0 to pr_n - 1 do
    ignore (Relation_file.insert rel (pr_tuple k))
  done;
  Option.iter (Relation_file.modify rel) org;
  rel

let drain_cursor cursor =
  let out = ref [] in
  Cursor.iter cursor (fun tid r -> out := (tid, Bytes.to_string r) :: !out);
  List.rev !out

let sum_reads stats_list =
  List.fold_left
    (fun acc s -> acc + (Io_stats.snapshot s).Io_stats.reads)
    0 stats_list

let pairwise_disjoint page_sets =
  let rec go = function
    | [] -> true
    | p :: rest ->
        List.for_all
          (fun q -> List.for_all (fun x -> not (List.mem x q)) p)
          rest
        && go rest
  in
  go page_sets

let check_partitions ~expect_prune name rel window parts =
  Buffer_pool.invalidate (Relation_file.pool rel);
  Io_stats.reset (Relation_file.stats rel);
  Time_fence.reset_pages_skipped ();
  let rows_seq =
    drain_cursor (Relation_file.cursor ?window rel Relation_file.Full_scan)
  in
  let reads_seq = (Io_stats.snapshot (Relation_file.stats rel)).Io_stats.reads in
  let skips_seq = Time_fence.pages_skipped () in
  Time_fence.reset_pages_skipped ();
  let ps = Relation_file.partition_scan ?window rel ~parts in
  let drains = List.map (fun (cursor, _) -> drain_cursor cursor) ps in
  let skips_par = Time_fence.pages_skipped () in
  let reads_par = sum_reads (List.map snd ps) in
  Alcotest.(check bool) (name ^ ": at most requested parts") true
    (List.length ps <= max 1 parts);
  Alcotest.(check bool)
    (name ^ ": concatenation = sequential") true
    (List.concat drains = rows_seq);
  Alcotest.(check int)
    (name ^ ": reads+skips conserved")
    (reads_seq + skips_seq) (reads_par + skips_par);
  let page_sets =
    List.map
      (fun rows ->
        List.sort_uniq compare
          (List.map (fun ((tid : Tid.t), _) -> tid.Tid.page) rows))
      drains
  in
  Alcotest.(check bool) (name ^ ": page-disjoint") true
    (pairwise_disjoint page_sets);
  if window <> None && expect_prune then
    Alcotest.(check bool)
      (name ^ ": the window still prunes")
      true
      (skips_par + skips_seq > 0)

let part_counts = [ 1; 2; 3; 7 ]

let test_partition_conformance () =
  List.iter
    (fun (label, expect_prune, org) ->
      let rel = pr_rel org in
      List.iter
        (fun parts ->
          List.iter
            (fun w ->
              let name =
                Printf.sprintf "%s parts=%d%s" label parts
                  (if w = None then "" else "+window")
              in
              check_partitions ~expect_prune name rel w parts)
            [ None; Some (window 305 455) ])
        part_counts)
    [
      (* Insertion (heap) and key (ISAM) order track the stamps, so
         their pages develop tight fences the window can prune; hashing
         scatters the keys, so hash pages keep wide fences — the
         conservation equality is what matters there. *)
      ("heap", true, None);
      ("hash", false, Some (Relation_file.Hash { key_attr = 0; fillfactor = 50 }));
      ("isam", true, Some (Relation_file.Isam { key_attr = 0; fillfactor = 100 }));
    ]

(* Shard-level pruning: a window past every stamp refutes every shard at
   partition-build time, so no worker is assigned any pages (the list
   collapses to one empty partition), nothing is read, and the skip
   accounting still matches the sequential fenced scan page for page. *)
let test_shard_prune_zero_assignment () =
  List.iter
    (fun (label, org) ->
      let rel = pr_rel org in
      let w = Some (window 5000 5100) in
      (* Sequential fenced scan: the baseline skip count. *)
      Buffer_pool.invalidate (Relation_file.pool rel);
      Io_stats.reset (Relation_file.stats rel);
      Time_fence.reset_pages_skipped ();
      let rows_seq =
        drain_cursor (Relation_file.cursor ?window:w rel Relation_file.Full_scan)
      in
      let reads_seq =
        (Io_stats.snapshot (Relation_file.stats rel)).Io_stats.reads
      in
      let skips_seq = Time_fence.pages_skipped () in
      Alcotest.(check int) (label ^ ": sequential reads nothing") 0 reads_seq;
      Alcotest.(check int) (label ^ ": sequential rows empty") 0
        (List.length rows_seq);
      (* The partition build must refute every shard up front. *)
      (match
         Relation_file.partition_preview ?window:w rel ~parts:4
           Relation_file.Full_scan
       with
      | None -> Alcotest.failf "%s: full scan must preview" label
      | Some p ->
          Alcotest.(check int) (label ^ ": preview sees no live pages") 0
            p.Relation_file.pp_pages);
      Alcotest.(check int)
        (label ^ ": scan_partitions collapses")
        1
        (Relation_file.scan_partitions ?window:w rel ~parts:4);
      Io_stats.reset (Relation_file.stats rel);
      Time_fence.reset_pages_skipped ();
      let ps = Relation_file.partition_scan ?window:w rel ~parts:4 in
      let drains = List.map (fun (cursor, _) -> drain_cursor cursor) ps in
      Alcotest.(check int) (label ^ ": one empty partition") 1 (List.length ps);
      Alcotest.(check int) (label ^ ": zero rows assigned") 0
        (List.length (List.concat drains));
      Alcotest.(check int)
        (label ^ ": zero reads")
        0
        (sum_reads (List.map snd ps)
        + (Io_stats.snapshot (Relation_file.stats rel)).Io_stats.reads);
      Alcotest.(check int)
        (label ^ ": skips match the sequential fenced scan")
        skips_seq (Time_fence.pages_skipped ()))
    [
      ("heap", None);
      ("hash", Some (Relation_file.Hash { key_attr = 0; fillfactor = 50 }));
      ("isam", Some (Relation_file.Isam { key_attr = 0; fillfactor = 100 }));
    ]

(* Keyed and range probes through [partition_access]: concatenating the
   partitions reproduces the sequential probe cursor's rows, pages stay
   disjoint, and reads plus fence skips are conserved — including the
   charged ISAM directory descent. *)
let check_probe_partitions name rel window parts access =
  Buffer_pool.invalidate (Relation_file.pool rel);
  Io_stats.reset (Relation_file.stats rel);
  Time_fence.reset_pages_skipped ();
  let rows_seq = drain_cursor (Relation_file.cursor ?window rel access) in
  let reads_seq = (Io_stats.snapshot (Relation_file.stats rel)).Io_stats.reads in
  let skips_seq = Time_fence.pages_skipped () in
  (* Both measurements start cold: the ISAM descent at partition-build
     time goes through the relation's shared pool, like the sequential
     cursor open. *)
  Buffer_pool.invalidate (Relation_file.pool rel);
  Io_stats.reset (Relation_file.stats rel);
  Time_fence.reset_pages_skipped ();
  match Relation_file.partition_access ?window rel ~parts access with
  | None -> Alcotest.failf "%s: expected a partitionable access" name
  | Some ps ->
      let drains = List.map (fun (cursor, _) -> drain_cursor cursor) ps in
      let skips_par = Time_fence.pages_skipped () in
      (* The ISAM descent is charged to the relation's own counters at
         partition-build time, exactly as the sequential cursor open
         charges it. *)
      let reads_par =
        sum_reads (List.map snd ps)
        + (Io_stats.snapshot (Relation_file.stats rel)).Io_stats.reads
      in
      Alcotest.(check bool) (name ^ ": at most requested parts") true
        (List.length ps <= max 1 parts);
      Alcotest.(check bool)
        (name ^ ": concatenation = sequential") true
        (List.concat drains = rows_seq);
      Alcotest.(check int)
        (name ^ ": reads+skips conserved")
        (reads_seq + skips_seq) (reads_par + skips_par);
      let page_sets =
        List.map
          (fun rows ->
            List.sort_uniq compare
              (List.map (fun ((tid : Tid.t), _) -> tid.Tid.page) rows))
          drains
      in
      Alcotest.(check bool) (name ^ ": page-disjoint") true
        (pairwise_disjoint page_sets)

let test_probe_partition_conformance () =
  let probes =
    [
      ("lookup-hit", Relation_file.Key_lookup (Value.Int 50));
      ("lookup-miss", Relation_file.Key_lookup (Value.Int 5000));
      ( "range",
        Relation_file.Key_range
          { lo = Some (Value.Int 20); hi = Some (Value.Int 60) } );
      ("range-open", Relation_file.Key_range { lo = None; hi = None });
    ]
  in
  List.iter
    (fun (label, org) ->
      let rel = pr_rel org in
      List.iter
        (fun parts ->
          List.iter
            (fun w ->
              List.iter
                (fun (tag, access) ->
                  let name =
                    Printf.sprintf "%s %s parts=%d%s" label tag parts
                      (if w = None then "" else "+window")
                  in
                  check_probe_partitions name rel w parts access)
                probes)
            [ None; Some (window 305 455) ])
        part_counts)
    [
      ("hash", Some (Relation_file.Hash { key_attr = 0; fillfactor = 50 }));
      ("isam", Some (Relation_file.Isam { key_attr = 0; fillfactor = 100 }));
      ("heap", None);
    ]

let test_partition_empty () =
  let rel = Relation_file.create ~name:"empty_part" ~schema:pr_schema () in
  let ps = Relation_file.partition_scan rel ~parts:4 in
  Alcotest.(check int) "one partition" 1 (List.length ps);
  Alcotest.(check int) "no rows" 0
    (List.length (drain_cursor (fst (List.hd ps))))

(* The two-level store: partitions span both levels (primary ranges,
   then history segments); concatenation order and I/O conservation as
   above.  Page disjointness within each level is covered by the
   relation-file check and the segment-aligned history split. *)
let test_twostore_partition_conformance () =
  let store = evolved_store () in
  List.iter
    (fun parts ->
      List.iter
        (fun w ->
          let name =
            Printf.sprintf "two-level parts=%d%s" parts
              (if w = None then "" else "+window")
          in
          Two_level_store.reset_io store;
          Time_fence.reset_pages_skipped ();
          let rows_seq =
            drain_cursor (Two_level_store.scan_cursor ?window:w store)
          in
          let reads_seq = (Two_level_store.io store).Io_stats.reads in
          let skips_seq = Time_fence.pages_skipped () in
          Time_fence.reset_pages_skipped ();
          let ps = Two_level_store.partition_scan ?window:w store ~parts in
          let drains = List.map (fun (cursor, _) -> drain_cursor cursor) ps in
          let skips_par = Time_fence.pages_skipped () in
          let reads_par = sum_reads (List.map snd ps) in
          Alcotest.(check bool)
            (name ^ ": concatenation = sequential")
            true
            (List.concat drains = rows_seq);
          Alcotest.(check int)
            (name ^ ": reads+skips conserved")
            (reads_seq + skips_seq) (reads_par + skips_par))
        [ None; Some (window 950 1050) ])
    part_counts

let suites =
  [
    ( "cursor",
      [
        Alcotest.test_case "heap conformance" `Quick test_heap_conformance;
        Alcotest.test_case "hash conformance" `Quick test_hash_conformance;
        Alcotest.test_case "isam conformance" `Quick test_isam_conformance;
        Alcotest.test_case "two-level conformance" `Quick
          test_twostore_conformance;
        Alcotest.test_case "two-level as-of conformance" `Quick
          test_twostore_as_of_conformance;
        Alcotest.test_case "partition conformance" `Quick
          test_partition_conformance;
        Alcotest.test_case "shard pruning: zero assignments" `Quick
          test_shard_prune_zero_assignment;
        Alcotest.test_case "probe partition conformance" `Quick
          test_probe_partition_conformance;
        Alcotest.test_case "partitioning an empty relation" `Quick
          test_partition_empty;
        Alcotest.test_case "two-level partition conformance" `Quick
          test_twostore_partition_conformance;
      ] );
  ]
