(* Property: pretty-printing any well-formed statement tree and re-parsing
   it yields the same tree.  The generator builds random retrieves over the
   full expression/predicate/temporal grammar, so this exercises parser
   corners (precedence, parenthesization, keyword ambiguity) no
   hand-written test reaches. *)

module Parser = Tdb_tquel.Parser
module Pretty = Tdb_tquel.Pretty
open Tdb_tquel.Ast

let gen_name = QCheck2.Gen.oneofl [ "h"; "i"; "x" ]
let gen_attr = QCheck2.Gen.oneofl [ "id"; "amount"; "seq" ]

let gen_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map2 (fun v a -> Eattr (v, a)) gen_name gen_attr;
              map (fun i -> Eint i) (int_range 0 1000);
              map (fun s -> Estring s) (oneofl [ "a"; "now"; "x y" ]);
            ]
        else
          oneof
            [
              map2 (fun v a -> Eattr (v, a)) gen_name gen_attr;
              map (fun i -> Eint i) (int_range 0 1000);
              (let* op = oneofl [ Add; Sub; Mul; Div; Mod ] in
               let* a = self (n / 2) in
               let* b = self (n / 2) in
               return (Ebinop (op, a, b)));
              map (fun e -> Euminus e) (self (n / 2));
              (let* agg = oneofl [ Count; Sum; Avg; Min; Max; Any ] in
               let* e = self (n / 2) in
               let* by =
                 oneof
                   [
                     return [];
                     map2 (fun v a -> [ Eattr (v, a) ]) gen_name gen_attr;
                   ]
               in
               return (Eagg (agg, e, by)));
            ]))

let gen_pred =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let atom =
          let* op = oneofl [ Eq; Ne; Lt; Le; Gt; Ge ] in
          let* a = gen_expr in
          let* b = gen_expr in
          return (Pcompare (op, a, b))
        in
        if n <= 0 then atom
        else
          oneof
            [
              atom;
              map2 (fun a b -> Wand (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Wor (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Wnot a) (self (n / 2));
            ]))

let gen_tempexpr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun v -> Tvar v) gen_name;
              map (fun s -> Tconst s) (oneofl [ "now"; "1981"; "forever" ]);
            ]
        in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun a b -> Toverlap (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Textend (a, b)) (self (n / 2)) (self (n / 2));
              map (fun e -> Tstart_of e) (self (n / 2));
              map (fun e -> Tend_of e) (self (n / 2));
            ]))

let gen_temppred =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let atom =
          oneof
            [
              map2 (fun a b -> Poverlap (a, b)) gen_tempexpr gen_tempexpr;
              map2 (fun a b -> Pprecede (a, b)) gen_tempexpr gen_tempexpr;
              map2 (fun a b -> Pequal (a, b)) gen_tempexpr gen_tempexpr;
            ]
        in
        if n <= 0 then atom
        else
          oneof
            [
              atom;
              map2 (fun a b -> Pand (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Por (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Pnot a) (self (n / 2));
            ]))

let gen_retrieve =
  QCheck2.Gen.(
    let* unique = bool in
    let* coalesce = bool in
    let* targets =
      list_size (int_range 1 4)
        (let* name = oneofl [ "a"; "b"; "c"; "total" ] in
         let* value = gen_expr in
         return { out_name = Some name; value })
    in
    let* where = option gen_pred in
    let* when_ = option gen_temppred in
    let* valid =
      option
        (oneof
           [
             map2 (fun a b -> Valid_interval (a, b)) gen_tempexpr gen_tempexpr;
             map (fun e -> Valid_event e) gen_tempexpr;
           ])
    in
    let* as_of =
      option
        (let* at = oneofl [ "now"; "08:00 1/1/80" ] in
         let* through = option (oneofl [ "1981" ]) in
         return { at; through })
    in
    return
      (Retrieve
         { into = None; unique; coalesce; targets; valid; where; when_; as_of }))

let prop_round_trip =
  QCheck2.Test.make ~name:"parse (pretty stmt) = stmt" ~count:500 gen_retrieve
    (fun stmt ->
      let printed = Pretty.statement stmt in
      match Parser.parse_statement printed with
      | Ok stmt' -> stmt = stmt'
      | Error e ->
          QCheck2.Test.fail_reportf "re-parse of %S failed: %s" printed e)

let suites =
  [ ("roundtrip", [ QCheck_alcotest.to_alcotest prop_round_trip ]) ]
