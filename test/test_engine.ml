(* End-to-end tests of the TQuel engine: scripts through parse, check and
   execute, including the paper's own example query (Figure 2 / Q12 shape)
   and the section-4 version semantics observed from the outside. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let fresh () = ok (Database.create ())

let exec db src = ok (Engine.execute db src)

let exec_err db src =
  match Engine.execute db src with
  | Ok _ -> Alcotest.failf "script unexpectedly succeeded: %s" src
  | Error _ -> ()

let rows db src =
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; _ } -> tuples
  | _ -> Alcotest.fail "expected rows"

let ints_of column tuples = List.map (fun tu -> tu.(column)) tuples

let test_create_append_retrieve () =
  let db = fresh () in
  ignore
    (exec db
       {|create emp (name = c20, salary = i4)
         range of e is emp
         append to emp (name = "ahn", salary = 30000)
         append to emp (name = "snodgrass", salary = 35000)|});
  let r = rows db "retrieve (e.name, e.salary) where e.salary > 32000" in
  Alcotest.(check int) "one row" 1 (List.length r);
  match r with
  | [ [| Value.Str n; Value.Int s |] ] ->
      Alcotest.(check string) "name" "snodgrass" n;
      Alcotest.(check int) "salary" 35000 s
  | _ -> Alcotest.fail "row shape"

let test_static_replace_in_place () =
  let db = fresh () in
  ignore
    (exec db
       {|create counter (k = i4, v = i4)
         range of c is counter
         append to counter (k = 1, v = 10)|});
  ignore (exec db "replace c (v = c.v + 5) where c.k = 1");
  (match rows db "retrieve (c.v)" with
  | [ [| Value.Int 15 |] ] -> ()
  | _ -> Alcotest.fail "in-place update");
  (* a static relation stores exactly one version *)
  Alcotest.(check int) "single version" 1 (List.length (rows db "retrieve (c.k)"))

let test_rollback_semantics () =
  let db = fresh () in
  ignore
    (exec db
       {|create persistent acct (owner = c10, balance = i4)
         range of a is acct
         append to acct (owner = "ahn", balance = 100)|});
  let t_before = Chronon.to_string (Database.now db) in
  Clock.advance (Database.clock db) 1000;
  ignore (exec db {|replace a (balance = 250) where a.owner = "ahn"|});
  (* Default rollback point "now" sees the newest version... *)
  (match rows db "retrieve (a.balance)" with
  | [ [| Value.Int 250 |] ] -> ()
  | r -> Alcotest.failf "current state: got %d rows" (List.length r));
  (* ... and an explicit as-of rolls back. *)
  (match
     rows db (Printf.sprintf {|retrieve (a.balance) as of "%s"|} t_before)
   with
  | [ [| Value.Int 100 |] ] -> ()
  | r -> Alcotest.failf "rollback state: got %d rows" (List.length r));
  (* delete closes the transaction time; the current state becomes empty *)
  Clock.advance (Database.clock db) 1000;
  ignore (exec db "delete a");
  Alcotest.(check int) "deleted now" 0 (List.length (rows db "retrieve (a.balance)"));
  Alcotest.(check int) "history remains" 1
    (List.length
       (rows db (Printf.sprintf {|retrieve (a.balance) as of "%s"|} t_before)))

let test_temporal_replace_inserts_two_versions () =
  let db = fresh () in
  ignore
    (exec db
       {|create persistent interval temp_r (k = i4, v = i4)
         range of t is temp_r
         append to temp_r (k = 1, v = 10)|});
  Clock.advance (Database.clock db) 100;
  (match ok (Engine.execute_one db "replace t (v = 20) where t.k = 1") with
  | Engine.Modified { matched = 1; inserted = 2; _ } -> ()
  | Engine.Modified { matched; inserted; _ } ->
      Alcotest.failf "matched %d inserted %d (wanted 1/2)" matched inserted
  | _ -> Alcotest.fail "expected Modified");
  (* version scan: the full history as currently known = 2 valid versions *)
  let versions = rows db "retrieve (t.v) where t.k = 1" in
  Alcotest.(check int) "two versions visible" 2 (List.length versions);
  (* only one is valid now; the result carries implicit valid-time attrs *)
  (match rows db {|retrieve (t.v) where t.k = 1 when t overlap "now"|} with
  | [ [| Value.Int 20; _; _ |] ] -> ()
  | r -> Alcotest.failf "current version: %d rows" (List.length r))

let test_temporal_delete_keeps_history () =
  let db = fresh () in
  ignore
    (exec db
       {|create persistent interval facts (k = i4)
         range of f is facts
         append to facts (k = 7)|});
  let mid = Chronon.to_string (Database.now db) in
  Clock.advance (Database.clock db) 500;
  ignore (exec db "delete f where f.k = 7");
  Alcotest.(check int) "not valid now" 0
    (List.length (rows db {|retrieve (f.k) when f overlap "now"|}));
  (* rollback into the past: as of mid, the tuple was believed current *)
  Alcotest.(check int) "rollback sees it" 1
    (List.length (rows db (Printf.sprintf {|retrieve (f.k) as of "%s"|} mid)))

let test_historical_retroactive_change () =
  let db = fresh () in
  ignore
    (exec db
       {|create interval hist (k = i4, v = i4)
         range of x is hist
         append to hist (k = 1, v = 5) valid from "1980-06-01" to "forever"|});
  (* a retroactive correction: the value was 4 during May *)
  ignore
    (exec db
       {|append to hist (k = 1, v = 4) valid from "1980-05-01" to "1980-06-01"|});
  let at t =
    rows db (Printf.sprintf {|retrieve (x.v) when x overlap "%s"|} t)
  in
  (match at "1980-05-15" with
  | [ [| Value.Int 4; _; _ |] ] -> ()
  | r -> Alcotest.failf "May value: %d rows" (List.length r));
  match at "1980-07-01" with
  | [ [| Value.Int 5; _; _ |] ] -> ()
  | r -> Alcotest.failf "July value: %d rows" (List.length r)

let test_figure2_query () =
  (* The paper's Figure 2, on a small handmade database. *)
  let db = fresh () in
  ignore
    (exec db
       {|create persistent interval fig_h (id = i4, seq = i4, amount = i4)
         create persistent interval fig_i (id = i4, seq = i4, amount = i4)
         range of h is fig_h
         range of i is fig_i
         append to fig_h (id = 500, seq = 1, amount = 0)
            valid from "1980-06-01" to "forever"
         append to fig_i (id = 9, seq = 2, amount = 73700)
            valid from "1980-07-01" to "forever"|});
  Clock.set (Database.clock db) (Chronon.parse_exn "1982-01-01");
  let r =
    rows db
      {|retrieve (h.id, h.seq, i.id, i.seq, i.amount)
        valid from start of (h overlap i) to end of (h extend i)
        where h.id = 500 and i.amount = 73700
        when h overlap i
        as of "1981"|}
  in
  match r with
  | [ [| Value.Int 500; Value.Int 1; Value.Int 9; Value.Int 2;
         Value.Int 73700; Value.Time vf; Value.Time vt |] ] ->
      (* overlap starts when i starts; extend ends at forever *)
      Alcotest.(check string) "valid from" "1980-07-01 00:00:00"
        (Chronon.to_string vf);
      Alcotest.(check bool) "valid to forever" true (Chronon.is_forever vt)
  | r -> Alcotest.failf "figure 2: %d rows" (List.length r)

let test_as_of_through_window () =
  (* "as of t1 through t2" sees every version whose transaction period
     overlaps the window - the union of the states held across it. *)
  let db = fresh () in
  ignore
    (exec db
       {|create persistent acct (owner = c10, balance = i4)
         range of a is acct
         append to acct (owner = "kim", balance = 100)|});
  let t1 = Chronon.to_string (Database.now db) in
  Clock.advance (Database.clock db) 1000;
  ignore (exec db {|replace a (balance = 200) where a.owner = "kim"|});
  let t2 = Chronon.to_string (Database.now db) in
  Clock.advance (Database.clock db) 1000;
  ignore (exec db {|replace a (balance = 300) where a.owner = "kim"|});
  (* the window [t1, t2] covers the 100 and 200 states but not 300 *)
  let r =
    rows db
      (Printf.sprintf {|retrieve (a.balance) as of "%s" through "%s"|} t1 t2)
  in
  let balances =
    List.sort compare
      (List.map (fun tu -> match tu.(0) with Value.Int n -> n | _ -> 0) r)
  in
  Alcotest.(check (list int)) "both historical states" [ 100; 200 ] balances

let test_retrieve_into () =
  let db = fresh () in
  ignore
    (exec db
       {|create src (k = i4)
         range of s is src
         append to src (k = 1)
         append to src (k = 2)
         append to src (k = 3)|});
  (match ok (Engine.execute_one db "retrieve into copycat (k = s.k) where s.k > 1") with
  | Engine.Stored { relation = "copycat"; count = 2; _ } -> ()
  | _ -> Alcotest.fail "expected Stored with 2 rows");
  ignore (exec db "range of c is copycat");
  Alcotest.(check int) "stored relation queryable" 2
    (List.length (rows db "retrieve (c.k)"))

let test_modify_and_query_equivalence () =
  let db = fresh () in
  ignore (exec db "create r (k = i4, v = i4)");
  ignore (exec db "range of r is r");
  for k = 0 to 99 do
    ignore (exec db (Printf.sprintf "append to r (k = %d, v = %d)" k (k * k)))
  done;
  let q () = ints_of 0 (rows db "retrieve (r.v) where r.k = 7") in
  let as_heap = q () in
  ignore (exec db "modify r to hash on k where fillfactor = 50");
  let as_hash = q () in
  ignore (exec db "modify r to isam on k");
  let as_isam = q () in
  Alcotest.(check bool) "hash agrees with heap" true (as_heap = as_hash);
  Alcotest.(check bool) "isam agrees with heap" true (as_heap = as_isam)

let test_destroy_and_errors () =
  let db = fresh () in
  ignore (exec db "create r (k = i4)");
  exec_err db "create r (k = i4)" (* duplicate *);
  ignore (exec db "destroy r");
  exec_err db "destroy r" (* gone *);
  exec_err db "range of x is r";
  exec_err db "retrieve (x.k)" (* no range *);
  exec_err db "nonsense statement"

let test_copy_round_trip () =
  let db = fresh () in
  ignore
    (exec db
       {|create persistent interval cp (k = i4, s = c10)
         range of c is cp
         append to cp (k = 1, s = "one")
         append to cp (k = 2, s = "two")|});
  let path = Filename.temp_file "tdb_copy" ".txt" in
  ignore (exec db (Printf.sprintf {|copy cp into "%s"|} path));
  ignore (exec db {|create persistent interval cp2 (k = i4, s = c10)|});
  ignore (exec db (Printf.sprintf {|copy cp2 from "%s"|} path));
  ignore (exec db "range of d is cp2");
  let original = rows db "retrieve (c.k, c.s)" in
  let copied = rows db "retrieve (d.k, d.s)" in
  Alcotest.(check int) "same cardinality" (List.length original) (List.length copied);
  Sys.remove path

let test_persistence () =
  let dir = Filename.temp_file "tdb_db" "" in
  Sys.remove dir;
  let db = ok (Database.create ~dir ()) in
  ignore
    (exec db
       {|create persistent interval pers (k = i4, v = i4)
         range of p is pers
         append to pers (k = 1, v = 10)
         append to pers (k = 2, v = 20)
         modify pers to hash on k where fillfactor = 100|});
  Database.close db;
  (* Reopen: catalog, data and access method must survive. *)
  let db2 = ok (Database.create ~dir ()) in
  ignore (exec db2 "range of p is pers");
  let r = rows db2 {|retrieve (p.v) where p.k = 2 when p overlap "now"|} in
  (match r with
  | [ [| Value.Int 20; _; _ |] ] -> ()
  | r -> Alcotest.failf "reopened lookup: %d rows" (List.length r));
  Database.close db2;
  (* clean up *)
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir

let test_query_append () =
  let db = fresh () in
  ignore
    (exec db
       {|create a (k = i4)
         create b (k = i4)
         range of a is a
         range of b is b
         append to a (k = 1)
         append to a (k = 2)|});
  (match ok (Engine.execute_one db "append to b (k = a.k + 10) where a.k > 1") with
  | Engine.Modified { inserted = 1; _ } -> ()
  | _ -> Alcotest.fail "query append");
  match rows db "retrieve (b.k)" with
  | [ [| Value.Int 12 |] ] -> ()
  | r -> Alcotest.failf "appended rows: %d" (List.length r)

let test_format_rows () =
  let db = fresh () in
  ignore
    (exec db
       {|create t (k = i4, s = c5)
         range of t is t
         append to t (k = 1, s = "a")|});
  match ok (Engine.execute_one db "retrieve (t.k, t.s)") with
  | Engine.Rows { schema; tuples; _ } ->
      let s = Engine.format_rows schema tuples in
      let contains sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "mentions header and count" true
        (contains "k" && contains "(1 rows)")
  | _ -> Alcotest.fail "rows"

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "create/append/retrieve" `Quick test_create_append_retrieve;
        Alcotest.test_case "static replace in place" `Quick test_static_replace_in_place;
        Alcotest.test_case "rollback semantics" `Quick test_rollback_semantics;
        Alcotest.test_case "temporal replace = two versions" `Quick
          test_temporal_replace_inserts_two_versions;
        Alcotest.test_case "temporal delete keeps history" `Quick
          test_temporal_delete_keeps_history;
        Alcotest.test_case "historical retroactive change" `Quick
          test_historical_retroactive_change;
        Alcotest.test_case "the paper's Figure 2 query" `Quick test_figure2_query;
        Alcotest.test_case "as of ... through" `Quick test_as_of_through_window;
        Alcotest.test_case "retrieve into" `Quick test_retrieve_into;
        Alcotest.test_case "modify equivalence" `Quick
          test_modify_and_query_equivalence;
        Alcotest.test_case "destroy and errors" `Quick test_destroy_and_errors;
        Alcotest.test_case "copy round trip" `Quick test_copy_round_trip;
        Alcotest.test_case "persistence" `Quick test_persistence;
        Alcotest.test_case "query append" `Quick test_query_append;
        Alcotest.test_case "format rows" `Quick test_format_rows;
      ] );
  ]
