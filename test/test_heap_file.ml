module Disk = Tdb_storage.Disk
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Heap_file = Tdb_storage.Heap_file
module Tid = Tdb_storage.Tid

let record_size = 100

let make () =
  let disk = Disk.create_mem () in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create disk stats in
  (Heap_file.create pool ~record_size, stats)

let record i =
  let b = Bytes.make record_size '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int i);
  b

let key_of b = Int32.to_int (Bytes.get_int32_be b 0)

let test_insert_and_scan () =
  let h, _ = make () in
  let n = 50 in
  for i = 1 to n do
    ignore (Heap_file.insert h (record i))
  done;
  let seen = ref [] in
  Heap_file.iter h (fun _tid r -> seen := key_of r :: !seen);
  Alcotest.(check (list int)) "scan returns all records in insertion order"
    (List.init n (fun i -> i + 1))
    (List.rev !seen)

let test_page_packing () =
  let h, _ = make () in
  (* capacity for 100-byte records: (1024-12)/102 = 9 *)
  for i = 1 to 9 do
    ignore (Heap_file.insert h (record i))
  done;
  Alcotest.(check int) "9 records fill one page" 1 (Heap_file.npages h);
  ignore (Heap_file.insert h (record 10));
  Alcotest.(check int) "10th spills to a second page" 2 (Heap_file.npages h)

let test_read_update_delete () =
  let h, _ = make () in
  let tid = Heap_file.insert h (record 7) in
  Alcotest.(check int) "read back" 7 (key_of (Heap_file.read h tid));
  Heap_file.update h tid (record 8);
  Alcotest.(check int) "updated in place" 8 (key_of (Heap_file.read h tid));
  Heap_file.delete h tid;
  Alcotest.(check int) "gone after delete" 0 (Heap_file.record_count h)

let test_delete_slot_reused () =
  let h, _ = make () in
  let tids = List.init 9 (fun i -> Heap_file.insert h (record i)) in
  let victim = List.nth tids 3 in
  Heap_file.delete h victim;
  let tid' = Heap_file.insert h (record 99) in
  Alcotest.(check bool) "freed slot reused before growing" true
    (Tid.equal victim tid');
  Alcotest.(check int) "still one page" 1 (Heap_file.npages h)

let test_scan_cost () =
  let h, stats = make () in
  for i = 1 to 86 do
    ignore (Heap_file.insert h (record i))
  done;
  Alcotest.(check int) "86 records on 10 pages" 10 (Heap_file.npages h);
  Buffer_pool.invalidate (Tdb_storage.Pfile.pool (Heap_file.pfile h));
  Io_stats.reset stats;
  Heap_file.iter h (fun _ _ -> ());
  Alcotest.(check int) "scan costs exactly npages reads" 10 (Io_stats.reads stats)

let prop_everything_inserted_is_found =
  QCheck2.Test.make ~name:"heap: scan returns exactly what was inserted"
    ~count:50
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 10000))
    (fun keys ->
      let h, _ = make () in
      List.iter (fun k -> ignore (Heap_file.insert h (record k))) keys;
      let seen = ref [] in
      Heap_file.iter h (fun _ r -> seen := key_of r :: !seen);
      List.sort compare !seen = List.sort compare keys)

let suites =
  [
    ( "heap_file",
      [
        Alcotest.test_case "insert and scan" `Quick test_insert_and_scan;
        Alcotest.test_case "page packing" `Quick test_page_packing;
        Alcotest.test_case "read/update/delete" `Quick test_read_update_delete;
        Alcotest.test_case "deleted slot reused" `Quick test_delete_slot_reused;
        Alcotest.test_case "scan cost" `Quick test_scan_cost;
        QCheck_alcotest.to_alcotest prop_everything_inserted_is_found;
      ] );
  ]
