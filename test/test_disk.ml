module Disk = Tdb_storage.Disk
module Page = Tdb_storage.Page

let test_mem_basics () =
  let d = Disk.create_mem () in
  Alcotest.(check int) "empty" 0 (Disk.npages d);
  let a = Disk.allocate d in
  let b = Disk.allocate d in
  Alcotest.(check (list int)) "dense ids" [ 0; 1 ] [ a; b ];
  let p = Page.create () in
  Bytes.set p 100 'Z';
  Disk.write_page d a p;
  Alcotest.(check char) "read back" 'Z' (Bytes.get (Disk.read_page d a) 100);
  (* pages are copied on both sides: mutating the caller's buffer after a
     write must not leak into the store *)
  Bytes.set p 100 '!';
  Alcotest.(check char) "isolated" 'Z' (Bytes.get (Disk.read_page d a) 100);
  let r = Disk.read_page d a in
  Bytes.set r 100 '?';
  Alcotest.(check char) "reads are copies" 'Z' (Bytes.get (Disk.read_page d a) 100)

let test_bad_ids () =
  let d = Disk.create_mem () in
  ignore (Disk.allocate d);
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative id" true (raises (fun () -> ignore (Disk.read_page d (-1))));
  Alcotest.(check bool) "past the end" true (raises (fun () -> ignore (Disk.read_page d 1)));
  Alcotest.(check bool) "write past the end" true
    (raises (fun () -> Disk.write_page d 7 (Page.create ())));
  Alcotest.(check bool) "wrong page size" true
    (raises (fun () -> Disk.write_page d 0 (Bytes.create 10)))

let test_truncate () =
  let d = Disk.create_mem () in
  for _ = 1 to 5 do
    ignore (Disk.allocate d)
  done;
  Disk.truncate d;
  Alcotest.(check int) "empty again" 0 (Disk.npages d);
  Alcotest.(check int) "ids restart" 0 (Disk.allocate d)

let test_file_backend () =
  let path = Filename.temp_file "tdb_disk" ".pages" in
  let d = Disk.open_file path in
  Alcotest.(check bool) "file backed" true (Disk.is_file_backed d);
  let a = Disk.allocate d in
  let p = Page.create () in
  Bytes.set p 0 'F';
  Disk.write_page d a p;
  Disk.close d;
  let d2 = Disk.open_file path in
  Alcotest.(check int) "page survived" 1 (Disk.npages d2);
  Alcotest.(check char) "content survived" 'F' (Bytes.get (Disk.read_page d2 0) 0);
  Disk.truncate d2;
  Disk.close d2;
  Alcotest.(check int) "truncated on disk" 0
    (let d3 = Disk.open_file path in
     let n = Disk.npages d3 in
     Disk.close d3;
     n);
  Sys.remove path

let test_unaligned_file_rejected () =
  let path = Filename.temp_file "tdb_disk" ".pages" in
  let oc = open_out path in
  output_string oc "not a page multiple";
  close_out oc;
  (match Disk.open_file path with
  | exception Tdb_error.Error (Tdb_error.Corruption, _) -> ()
  | _ -> Alcotest.fail "unaligned file accepted");
  Sys.remove path

let with_pages n f =
  let path = Filename.temp_file "tdb_disk" ".pages" in
  let d = Disk.open_file path in
  for i = 0 to n - 1 do
    let id = Disk.allocate d in
    let p = Page.create () in
    Bytes.set p 0 (Char.chr (65 + i));
    Disk.write_page d id p
  done;
  Disk.close d;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let test_recover_unaligned_tail () =
  with_pages 3 (fun path ->
      append_bytes path "torn tail from a crashed write";
      let d = Disk.open_file ~recover:true path in
      Alcotest.(check int) "pages survive" 3 (Disk.npages d);
      (match Disk.recovery_report d with
      | Some r ->
          Alcotest.(check bool) "repair reported" true
            (Disk.recovery_repaired r);
          Alcotest.(check int) "tail bytes dropped" 30 r.Disk.tail_bytes_dropped
      | None -> Alcotest.fail "no recovery report");
      Alcotest.(check char) "first page intact" 'A'
        (Bytes.get (Disk.read_page d 0) 0);
      Alcotest.(check char) "last page intact" 'C'
        (Bytes.get (Disk.read_page d 2) 0);
      Disk.close d;
      (* The repair is durable: a strict reopen succeeds. *)
      let d2 = Disk.open_file path in
      Alcotest.(check int) "clean after repair" 3 (Disk.npages d2);
      Disk.close d2)

let flip_byte path ~pos =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let test_bit_flip_detected () =
  with_pages 3 (fun path ->
      (* Flip a byte in the middle page: not a torn tail, so neither the
         strict open (at read time) nor recovery may serve it as data. *)
      flip_byte path ~pos:(Page.size + 100);
      let d = Disk.open_file path in
      Alcotest.(check char) "good page still served" 'A'
        (Bytes.get (Disk.read_page d 0) 0);
      (match Disk.read_page d 1 with
      | exception Tdb_error.Error (Tdb_error.Corruption, _) -> ()
      | _ -> Alcotest.fail "bit flip served as tuple data");
      Disk.close d;
      match Disk.open_file ~recover:true path with
      | exception Tdb_error.Error (Tdb_error.Corruption, _) -> ()
      | d ->
          Disk.close d;
          Alcotest.fail "recovery accepted mid-file corruption")

let test_recover_torn_tail_page () =
  with_pages 3 (fun path ->
      (* Corrupt the LAST page: recovery may truncate it. *)
      flip_byte path ~pos:((2 * Page.size) + 100);
      let d = Disk.open_file ~recover:true path in
      Alcotest.(check int) "torn tail page dropped" 2 (Disk.npages d);
      (match Disk.recovery_report d with
      | Some r ->
          Alcotest.(check int) "one page dropped" 1 r.Disk.torn_pages_dropped
      | None -> Alcotest.fail "no recovery report");
      Alcotest.(check char) "survivors intact" 'B'
        (Bytes.get (Disk.read_page d 1) 0);
      Disk.close d)

let test_epoch_stamps () =
  let d = Disk.create_mem () in
  let id = Disk.allocate d in
  Disk.write_page d id (Page.create ());
  Alcotest.(check int) "initial epoch" (Disk.epoch d)
    (Page.get_epoch (Disk.read_page d id));
  Disk.bump_epoch d;
  Disk.write_page d id (Page.create ());
  Alcotest.(check int) "bumped epoch stamped" (Disk.epoch d)
    (Page.get_epoch (Disk.read_page d id))

let test_fsync_smoke () =
  let d = Disk.create_mem () in
  Disk.fsync d;
  let path = Filename.temp_file "tdb_disk" ".pages" in
  let f = Disk.open_file path in
  ignore (Disk.allocate f);
  Disk.fsync f;
  Disk.close f;
  Sys.remove path

let suites =
  [
    ( "disk",
      [
        Alcotest.test_case "mem basics" `Quick test_mem_basics;
        Alcotest.test_case "bad ids" `Quick test_bad_ids;
        Alcotest.test_case "truncate" `Quick test_truncate;
        Alcotest.test_case "file backend" `Quick test_file_backend;
        Alcotest.test_case "unaligned file rejected" `Quick
          test_unaligned_file_rejected;
        Alcotest.test_case "recover unaligned tail" `Quick
          test_recover_unaligned_tail;
        Alcotest.test_case "bit flip detected" `Quick test_bit_flip_detected;
        Alcotest.test_case "recover torn tail page" `Quick
          test_recover_torn_tail_page;
        Alcotest.test_case "epoch stamps" `Quick test_epoch_stamps;
        Alcotest.test_case "fsync smoke" `Quick test_fsync_smoke;
      ] );
  ]
