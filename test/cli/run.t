A single statement from the command line:

  $ ../../bin/tquel.exe -c "retrieve (answer = 41 + 1)"
  +--------+
  | answer |
  +--------+
  | 42     |
  +--------+
  (1 rows)

A script through a persistent database, reopened across invocations:

  $ cat > setup.tq <<'SCRIPT'
  > create persistent interval emp (name = c20, salary = i4);
  > range of e is emp;
  > append to emp (name = "ahn", salary = 30000);
  > append to emp (name = "snodgrass", salary = 35000);
  > modify emp to hash on name where fillfactor = 100;
  > SCRIPT
  $ ../../bin/tquel.exe -d mydb -f setup.tq
  created temporal interval relation emp
  range of e is emp
  1 tuples qualified, 1 versions inserted
  1 tuples qualified, 1 versions inserted
  modified emp to hash(attr 0, fillfactor 100)

  $ ../../bin/tquel.exe -d mydb -c "range of e is emp retrieve (e.name, e.salary) when e overlap \"now\""
  range of e is emp
  +-----------+--------+---------------------+----------+
  | name      | salary | valid from          | valid to |
  +-----------+--------+---------------------+----------+
  | ahn       | 30000  | 1980-01-01 00:00:01 | forever  |
  | snodgrass | 35000  | 1980-01-01 00:00:02 | forever  |
  +-----------+--------+---------------------+----------+
  (2 rows)

Prefixing the input with "profile" prints each statement's operator
trace tree with per-operator page I/O (wall times normalized here):

  $ ../../bin/tquel.exe -d mydb -c "profile range of e is emp retrieve (e.name) when e overlap \"now\"" | sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/'
  range of e is emp
  +-----------+---------------------+----------+
  | name      | valid from          | valid to |
  +-----------+---------------------+----------+
  | ahn       | 1980-01-01 00:00:01 | forever  |
  | snodgrass | 1980-01-01 00:00:02 | forever  |
  +-----------+---------------------+----------+
  (2 rows)
  retrieve fence[tx,valid@"now"](scan(e))  [0 in, 0 out; _ ms]
  `- fence[tx,valid@"now"](scan(e))  [1 in, 0 out, 2 tuples, 1 batch; _ ms]
     `- emit  [0 in, 0 out, 2 tuples, 1 batch; _ ms]
  total: 1 pages in, 0 pages out

\explain describes a retrieve's plan without running it; fence[...] marks
the time dimensions the storage layer will prune on:

  $ printf '%s\n' 'range of e is emp;' '\explain retrieve (e.name) when e overlap "now";' | ../../bin/tquel.exe -d mydb | sed -e 's/ *$//'
  tquel - a temporal DBMS speaking TQuel (type \help for help)
  tquel> range of e is emp
  tquel> plan: fence[tx,valid@"now"](scan(e))
  batch pipeline [batch=64]
    fence[tx,valid@"now"](scan(e)) -> emit
  parallel: off (workers=1)
  isolation: snapshot@1
  tquel>

"explain analyze" executes a statement and reports the executed plan —
per-stage rows, batches, page I/O and wall time, plus statement-level
buffer and journal counters (wall clocks and buffer counts normalized):

  $ ../../bin/tquel.exe -d mydb -c "explain analyze range of e is emp; retrieve (e.name) when e overlap \"now\"" | sed -E -e 's/[0-9]+\.[0-9]+ ms/_ ms/' -e 's/[0-9]+ hits, [0-9]+ misses/_ hits, _ misses/'
  explain analyze (range)
  (no operator tree for this statement)
  ack: range of e is emp
  wall: _ ms; workers: 1
  isolation: serialized (writer)
  buffer: _ hits, _ misses; journal: 0 bytes
  explain analyze (retrieve)
  retrieve fence[tx,valid@"now"](scan(e))  [0 in, 0 out; _ ms]
  `- fence[tx,valid@"now"](scan(e))  [1 in, 0 out, 2 tuples, 1 batch; _ ms]
     `- emit  [0 in, 0 out, 2 tuples, 1 batch; _ ms]
  total: 1 pages in, 0 pages out
  wall: _ ms; workers: 1; rows: 2
  parallel: off (workers=1)
  isolation: snapshot@1
  buffer: _ hits, _ misses; journal: 0 bytes

--log appends one JSON record per executed statement:

  $ ../../bin/tquel.exe -d mydb --log stmt.jsonl -c "range of e is emp retrieve (e.name) when e overlap \"now\"" > /dev/null
  $ grep -c '"record":"statement"' stmt.jsonl
  2
  $ grep -c '"kind":"retrieve"' stmt.jsonl
  1

Errors are reported, not fatal, but a failed statement exits non-zero
(2 = query error):

  $ ../../bin/tquel.exe -c "retrieve (nope.x)"
  error: tuple variable "nope" has no range statement
  [2]

A crash that tears the tail of a page file is repaired on reopen, with a
warning on stderr:

  $ printf 'torn half-page from a crashed write' >> mydb/emp.pages
  $ ../../bin/tquel.exe -d mydb -c "range of e is emp retrieve (e.name) when e overlap \"now\""
  warning: recovered relation emp: scanned 1 page(s), dropped 35 unaligned trailing byte(s)
  range of e is emp
  +-----------+---------------------+----------+
  | name      | valid from          | valid to |
  +-----------+---------------------+----------+
  | ahn       | 1980-01-01 00:00:01 | forever  |
  | snodgrass | 1980-01-01 00:00:02 | forever  |
  +-----------+---------------------+----------+
  (2 rows)

A flipped byte in a data page is detected, never served as tuple data.
(Here the damaged page is the file's only page, so recovery truncates it
as a torn tail — and attaching the hash file then refuses the truncated
primary area.  Either way: corruption, exit 3.)

  $ printf '\377' | dd of=mydb/emp.pages bs=1 seek=100 count=1 conv=notrunc status=none
  $ ../../bin/tquel.exe -d mydb -c "range of e is emp retrieve (e.name)"
  fatal corruption error: hash file has 0 page(s) but needs 1 primary bucket page(s); the primary area was truncated
  [3]
