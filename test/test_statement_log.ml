(* The structured statement log (lib/obs/statement_log).

   The engine emits one JSONL record per executed statement while holding
   its statement lock; these tests drive real statements through an
   in-memory database and check the records on disk: field shape, outcome
   mapping (including semantic errors), monotone ids, the slow-statement
   threshold (statements filtered, notices kept) and size-based
   rotation. *)

module Json = Tdb_obs.Json
module Statement_log = Tdb_obs.Statement_log
module Database = Tdb_core.Database
module Engine = Tdb_core.Engine

let with_log ?slow_s ?max_bytes f =
  let path = Filename.temp_file "tdb_stmt_log" ".jsonl" in
  Statement_log.set ?slow_s ?max_bytes (Some path);
  Fun.protect
    ~finally:(fun () ->
      Statement_log.set None;
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"))
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let parse_line line =
  match Json.parse line with
  | Ok (Json.Obj fields as j) -> (
      (* every line must satisfy the shared schema validator *)
      match Tdb_benchkit.Obs_json.validate_statement_record j with
      | Ok () -> fields
      | Error e -> Alcotest.failf "schema violation (%s): %s" e line)
  | Ok _ -> Alcotest.failf "record is not an object: %s" line
  | Error e -> Alcotest.failf "unparseable record (%s): %s" e line

let sfield fields name =
  match List.assoc_opt name fields with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "missing string field %s" name

let ifield fields name =
  match List.assoc_opt name fields with
  | Some (Json.Num f) -> int_of_float f
  | _ -> Alcotest.failf "missing numeric field %s" name

let fresh_db () =
  match Database.create () with
  | Ok db -> db
  | Error e -> Alcotest.fail e

let run db src =
  match Engine.execute db src with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "statement failed (%s): %s" e src

let test_statement_records () =
  with_log @@ fun path ->
  let db = fresh_db () in
  run db "create interval emp (name = c20, salary = i4);";
  run db "range of e is emp;";
  run db "append to emp (name = \"ahn\", salary = 30000);";
  run db "retrieve (e.name, e.salary);";
  (* a semantic error still reaches the engine, so it is logged too *)
  (match Engine.execute db "retrieve (z.name);" with
  | Ok _ -> Alcotest.fail "expected a semantic error"
  | Error _ -> ());
  Database.close db;
  let recs = List.map parse_line (read_lines path) in
  let stmts =
    List.filter (fun r -> sfield r "record" = "statement") recs
  in
  Alcotest.(check int) "five statement records" 5 (List.length stmts);
  let kinds = List.map (fun r -> sfield r "kind") stmts in
  Alcotest.(check (list string))
    "kinds in execution order"
    [ "create"; "range"; "append"; "retrieve"; "retrieve" ]
    kinds;
  let outcomes = List.map (fun r -> sfield r "outcome") stmts in
  Alcotest.(check (list string))
    "outcome mapping"
    [ "ack"; "ack"; "modified"; "rows"; "error" ]
    outcomes;
  (* ids are monotone within the file *)
  let ids =
    List.map
      (fun r ->
        let id = sfield r "id" in
        Alcotest.(check bool) "id shaped S<n>" true (id.[0] = 'S');
        int_of_string (String.sub id 1 (String.length id - 1)))
      stmts
  in
  Alcotest.(check bool) "ids strictly increase" true
    (List.for_all2 ( < ) ids (List.tl ids @ [ max_int ]));
  (* the retrieve carries its row count; every record carries latency *)
  let retrieve = List.nth stmts 3 in
  Alcotest.(check int) "retrieve row count" 1 (ifield retrieve "rows");
  List.iter
    (fun r ->
      match List.assoc_opt "latency_s" r with
      | Some (Json.Num f) when f >= 0.0 -> ()
      | _ -> Alcotest.fail "latency missing")
    stmts;
  (* the failed retrieve records its message *)
  let failed = List.nth stmts 4 in
  match List.assoc_opt "error" failed with
  | Some (Json.Str _) -> ()
  | _ -> Alcotest.fail "error record carries no message"

let test_slow_threshold_filters_statements () =
  with_log ~slow_s:3600.0 @@ fun path ->
  let db = fresh_db () in
  run db "create interval emp (name = c20, salary = i4);";
  run db "range of e is emp; retrieve (e.name);";
  Database.close db;
  Statement_log.note "checkpoint" ~attrs:[ ("n", "1") ];
  let recs = List.map parse_line (read_lines path) in
  Alcotest.(check int) "fast statements filtered out" 0
    (List.length (List.filter (fun r -> sfield r "record" = "statement") recs));
  let notes = List.filter (fun r -> sfield r "record" = "notice") recs in
  Alcotest.(check int) "notices always kept" 1 (List.length notes);
  Alcotest.(check string) "notice name" "checkpoint"
    (sfield (List.hd notes) "notice")

let test_rotation () =
  with_log ~max_bytes:600 @@ fun path ->
  let db = fresh_db () in
  run db "create interval emp (name = c20, salary = i4);";
  run db "range of e is emp;";
  for i = 1 to 10 do
    run db
      (Printf.sprintf "append to emp (name = \"w%d\", salary = %d);" i
         (1000 + i))
  done;
  Database.close db;
  Alcotest.(check bool) "rotated file exists" true
    (Sys.file_exists (path ^ ".1"));
  (* rotation keeps only the newest chunks: the previous chunk in PATH.1,
     the live tail in PATH — both must stay valid JSONL and bounded *)
  let rotated = read_lines (path ^ ".1") and live = read_lines path in
  Alcotest.(check bool) "both files hold records" true
    (rotated <> [] && live <> []);
  List.iter (fun l -> ignore (parse_line l)) (rotated @ live);
  let size p =
    let ic = open_in_bin p in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)
  in
  Alcotest.(check bool) "live file stays under the cap" true
    (size path <= 600)

let test_disabled_writes_nothing () =
  let path = Filename.temp_file "tdb_stmt_off" ".jsonl" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> Statement_log.set None) @@ fun () ->
  Statement_log.set None;
  Alcotest.(check bool) "disabled" false (Statement_log.enabled ());
  let db = fresh_db () in
  run db "create interval emp (name = c20, salary = i4);";
  Database.close db;
  Alcotest.(check bool) "no file appears" false (Sys.file_exists path)

let suites =
  [
    ( "statement_log",
      [
        Alcotest.test_case "statement records" `Quick test_statement_records;
        Alcotest.test_case "slow threshold filters" `Quick
          test_slow_threshold_filters_statements;
        Alcotest.test_case "size rotation" `Quick test_rotation;
        Alcotest.test_case "disabled writes nothing" `Quick
          test_disabled_writes_nothing;
      ] );
  ]
