module Workload = Tdb_benchkit.Workload
module Evolve = Tdb_benchkit.Evolve
module Paper_queries = Tdb_benchkit.Paper_queries
module Cost_model = Tdb_benchkit.Cost_model
module Report = Tdb_benchkit.Report
module Relation_file = Tdb_storage.Relation_file

let test_workload_shapes () =
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:42 () in
  Alcotest.(check int) "h = 128 pages" 128
    (Relation_file.npages (Workload.h_rel w));
  Alcotest.(check int) "i = 129 pages (128 data + directory)" 129
    (Relation_file.npages (Workload.i_rel w));
  Alcotest.(check int) "1024 tuples in h" 1024
    (Relation_file.tuple_count (Workload.h_rel w));
  let w50 = Workload.build ~kind:Workload.Static ~loading:50 ~seed:42 () in
  Alcotest.(check int) "static 50%: 1024 tuples" 1024
    (Relation_file.tuple_count (Workload.h_rel w50))

let test_workload_deterministic () =
  let a = Workload.build ~kind:Workload.Rollback ~loading:100 ~seed:7 () in
  let b = Workload.build ~kind:Workload.Rollback ~loading:100 ~seed:7 () in
  let dump w =
    let acc = ref [] in
    Relation_file.scan (Workload.h_rel w) (fun _ tu ->
        acc := Array.map Tdb_relation.Value.to_string tu :: !acc);
    !acc
  in
  Alcotest.(check bool) "same seed, same data" true (dump a = dump b);
  let c = Workload.build ~kind:Workload.Rollback ~loading:100 ~seed:8 () in
  Alcotest.(check bool) "different seed, different data" true (dump a <> dump c)

let test_query_applicability () =
  let count kind =
    List.length
      (List.filter (fun q -> Paper_queries.text q kind <> None) Paper_queries.all)
  in
  Alcotest.(check int) "static: 8 queries" 8 (count Workload.Static);
  Alcotest.(check int) "rollback: 10 queries" 10 (count Workload.Rollback);
  Alcotest.(check int) "historical: 8 queries" 8 (count Workload.Historical);
  Alcotest.(check int) "temporal: all 12" 12 (count Workload.Temporal)

let test_queries_parse_and_check () =
  (* every applicable query text must pass the parser and the checker on
     its database *)
  List.iter
    (fun kind ->
      let w = Workload.build ~kind ~loading:100 ~seed:3 () in
      List.iter
        (fun qid ->
          match Paper_queries.text qid kind with
          | None -> ()
          | Some src ->
              let _cost, _rows = Evolve.measure_query_result w src in
              ())
        Paper_queries.all)
    [ Workload.Static; Workload.Rollback; Workload.Historical; Workload.Temporal ]

let test_q01_law () =
  (* the paper's headline law on the real workload: Q01 costs 1 + 2n *)
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:5 () in
  let q01 = Option.get (Paper_queries.text Paper_queries.Q01 Workload.Temporal) in
  Alcotest.(check int) "UC 0" 1 (Evolve.measure_query w q01);
  Evolve.uniform_round w ~round:1;
  Alcotest.(check int) "UC 1" 3 (Evolve.measure_query w q01);
  Evolve.uniform_round w ~round:2;
  Alcotest.(check int) "UC 2" 5 (Evolve.measure_query w q01)

let test_q05_single_row () =
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:5 () in
  Evolve.uniform_round w ~round:1;
  let q05 = Option.get (Paper_queries.text Paper_queries.Q05 Workload.Temporal) in
  let _cost, rows = Evolve.measure_query_result w q05 in
  Alcotest.(check int) "one current version" 1 rows

let test_section54_worked_example () =
  (* The paper's own calculation: "if we update one tuple in a temporal
     relation 1024 times, the average update count becomes one ... a hashed
     access to any tuple sharing the same page as the changed tuple costs
     257 page accesses, while a hashed access to any tuple residing on a
     page without an overflow costs just one page access.  Therefore, the
     average cost becomes three page accesses." *)
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:11 () in
  Evolve.non_uniform_round w ~round:1 ~key:500;
  let hot = Evolve.hashed_access_cost w ~key:500 in
  Alcotest.(check int) "hot bucket chain = 257 pages" 257 hot;
  let bucketmate = Evolve.hashed_access_cost w ~key:(500 - 128) in
  Alcotest.(check int) "bucket mates pay the same chain" 257 bucketmate;
  let cold = Evolve.hashed_access_cost w ~key:3 in
  Alcotest.(check int) "other tuples cost one page" 1 cold;
  let total = ref 0 in
  for key = 0 to 1023 do
    total := !total + Evolve.hashed_access_cost w ~key
  done;
  Alcotest.(check int) "average is exactly three pages" 3 (!total / 1024)

let test_growth_rates () =
  Alcotest.(check (float 0.001)) "static" 0.
    (Cost_model.growth_rate Workload.Static ~loading:100);
  Alcotest.(check (float 0.001)) "rollback 100" 1.0
    (Cost_model.growth_rate Workload.Rollback ~loading:100);
  Alcotest.(check (float 0.001)) "historical 50" 0.5
    (Cost_model.growth_rate Workload.Historical ~loading:50);
  Alcotest.(check (float 0.001)) "temporal 100" 2.0
    (Cost_model.growth_rate Workload.Temporal ~loading:100);
  Alcotest.(check (float 0.001)) "temporal 50" 1.0
    (Cost_model.growth_rate Workload.Temporal ~loading:50)

let test_decompose_predict () =
  (* a synthetic query with fixed 2, variable 129, on a temporal db at
     100% loading: cost(n) = 2 + 129*(1+2n) *)
  let cost n = 2 + (129 * (1 + (2 * n))) in
  let d =
    Cost_model.decompose ~kind:Workload.Temporal ~loading:100 ~cost0:(cost 0)
      ~cost_n:(cost 14) ~n:14
  in
  Alcotest.(check (float 0.01)) "fixed" 2. d.Cost_model.fixed;
  Alcotest.(check (float 0.01)) "variable" 129. d.Cost_model.variable;
  for n = 0 to 15 do
    Alcotest.(check (float 0.01))
      (Printf.sprintf "predict %d" n)
      (float_of_int (cost n))
      (Cost_model.predict d n)
  done

let test_report_table () =
  let t = Report.table ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains cells" true
    (let contains sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length t && (String.sub t i n = sub || go (i + 1))
       in
       go 0
     in
     contains "333" && contains "| a" || contains "|   a" || String.length t > 0)

let test_report_plot () =
  let p =
    Report.plot ~title:"test" ~series:[ ("up", [ (0, 0); (5, 100); (10, 200) ]) ] ()
  in
  Alcotest.(check bool) "plot renders" true (String.length p > 100)

(* --- the shared metrics schema (\metrics json and bench --json) --- *)

module Json = Tdb_obs.Json
module Metric = Tdb_obs.Metric
module Obs_json = Tdb_benchkit.Obs_json
module Compare = Tdb_benchkit.Compare

let test_obs_json_schema () =
  (* the live dump round-trips through the validator *)
  Metric.incr (Metric.counter "test_benchkit_schema_total");
  (match Obs_json.validate (Obs_json.metrics ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Json.parse (Json.to_string (Obs_json.metrics ())) with
  | Ok v -> (
      match Obs_json.validate v with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("parsed dump rejected: " ^ e))
  | Error e -> Alcotest.fail e);
  (* malformed documents are rejected with a reason *)
  let rejected doc =
    match Obs_json.validate doc with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "non-list rejected" true (rejected (Json.Obj []));
  Alcotest.(check bool) "missing labels rejected" true
    (rejected
       (Json.List [ Json.Obj [ ("name", Json.Str "x"); ("value", Json.int 1) ] ]));
  Alcotest.(check bool) "string value rejected" true
    (rejected
       (Json.List
          [
            Json.Obj
              [
                ("name", Json.Str "x");
                ("labels", Json.Obj []);
                ("value", Json.Str "1");
              ];
          ]));
  Alcotest.(check bool) "empty name rejected" true
    (rejected
       (Json.List
          [
            Json.Obj
              [
                ("name", Json.Str "");
                ("labels", Json.Obj []);
                ("value", Json.int 1);
              ];
          ]))

(* --- the bench trend harness --- *)

(* A minimal document that passes every internal gate, with knobs for the
   fields the tests perturb. *)
let bench_doc ?(max_uc = 3) ?(smoke = false) ?(h_pages = 7) ?(overhead = 0.5)
    ?(tuples_per_s = 100.0) ?(scale_domains = 1) ?(scale1_speedup = 1.0)
    ?(scale10_speedup = 2.5) ?(cy_domains = 1) ?(cy_speedup = 2.5)
    ?(cy_rate4 = 400.0) ?(tj_domains = 1) ?(tj_speedup = 3.0)
    ?(tj_off = 1.0) ?(tj_identical = true) () =
  let concurrency_cell ~readers ~mode ~rate =
    Json.Obj
      [
        ("readers", Json.int readers);
        ("writers", Json.int 1);
        ("mode", Json.Str mode);
        ("reader_stmts", Json.int (int_of_float rate));
        ("reader_stmts_per_s", Json.Num rate);
        ("p50_ms", Json.Num 0.1);
        ("p99_ms", Json.Num 0.5);
        ("writer_stmts", Json.int 50);
      ]
  in
  let scale_query ~sc ~speedup =
    Json.Obj
      [
        ("query", Json.Str "Q03");
        ("scale", Json.int sc);
        ("identical", Json.Bool true);
        ( "cells",
          Json.List
            (List.map
               (fun (w, s) ->
                 Json.Obj
                   [
                     ("workers", Json.int w);
                     ("wall_s", Json.Num (0.1 /. s));
                     ("speedup", Json.Num s);
                     ("identical", Json.Bool true);
                   ])
               [ (1, 1.0); (4, speedup) ]) );
      ]
  in
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("max_uc", Json.int max_uc);
            ("seed", Json.int 850331);
            ("smoke", Json.Bool smoke);
            ("scale", Json.int 1);
          ] );
      ( "sections",
        Json.List
          [
            Json.Obj [ ("label", Json.Str "grid"); ("wall_s", Json.Num 1.0) ];
          ] );
      ( "grid",
        Json.List
          [
            Json.Obj
              [
                ("kind", Json.Str "temporal");
                ("loading", Json.int 100);
                ( "cells",
                  Json.List
                    [
                      Json.Obj
                        [ ("h_pages", Json.int h_pages); ("i_pages", Json.int 9) ];
                    ] );
              ];
          ] );
      ( "pruning",
        Json.Obj
          [
            ("all_identical", Json.Bool true);
            ( "as_of",
              Json.Obj
                [
                  ("queries", Json.int 4);
                  ("skipped", Json.int 10);
                  ("worst_ratio", Json.Num 0.4);
                ] );
          ] );
      ( "throughput",
        Json.Obj
          [
            ( "queries",
              Json.List
                [
                  Json.Obj
                    [
                      ("query", Json.Str "Q01");
                      ("tuples_per_s", Json.Num tuples_per_s);
                      ("reads", Json.Num 5.0);
                      ("wall_s", Json.Num 0.1);
                    ];
                ] );
          ] );
      ( "parallel",
        Json.Obj
          [
            ("recommended_domains", Json.int 1);
            ( "queries",
              Json.List
                [
                  Json.Obj
                    [
                      ("query", Json.Str "Q03");
                      ("uc", Json.int max_uc);
                      ("identical", Json.Bool true);
                      ( "cells",
                        Json.List
                          [
                            Json.Obj
                              [
                                ("workers", Json.int 4);
                                ("wall_s", Json.Num 0.1);
                                ("speedup", Json.Num 2.0);
                                ("identical", Json.Bool true);
                              ];
                          ] );
                    ];
                ] );
          ] );
      ( "scale",
        Json.Obj
          [
            ("recommended_domains", Json.int scale_domains);
            ("scales", Json.List [ Json.int 1; Json.int 10 ]);
            ("workers", Json.List [ Json.int 1; Json.int 4 ]);
            ("rounds", Json.int 2);
            ( "queries",
              Json.List
                [
                  scale_query ~sc:1 ~speedup:scale1_speedup;
                  scale_query ~sc:10 ~speedup:scale10_speedup;
                ] );
          ] );
      ( "durability",
        Json.Obj
          [
            ("identical", Json.Bool true);
            ("overhead_vs_sync_per_stmt", Json.Num overhead);
            ("ceiling", Json.Num 1.0);
            ( "phases",
              Json.List
                (List.init 4 (fun i ->
                     Json.Obj
                       [
                         ("phase", Json.Str (Printf.sprintf "p%d" i));
                         ("journal_s", Json.Num 0.1);
                       ])) );
          ] );
      ( "concurrency",
        Json.Obj
          [
            ("recommended_domains", Json.int cy_domains);
            ("duration_s", Json.Num 1.0);
            ("speedup_4r_vs_1r", Json.Num cy_speedup);
            ( "cells",
              Json.List
                [
                  concurrency_cell ~readers:1 ~mode:"snapshot"
                    ~rate:(cy_rate4 /. cy_speedup);
                  concurrency_cell ~readers:4 ~mode:"snapshot" ~rate:cy_rate4;
                  concurrency_cell ~readers:4 ~mode:"serialized"
                    ~rate:(cy_rate4 /. 2.0);
                ] );
          ] );
      ( "tjoin",
        Json.Obj
          [
            ("recommended_domains", Json.int tj_domains);
            ("noise_floor_s", Json.Num 0.05);
            ( "queries",
              Json.List
                [
                  Json.Obj
                    [
                      ("query", Json.Str "Q09c");
                      ("uc", Json.int 0);
                      ("scale", Json.int 1);
                      ("rows", Json.int 5);
                      ("off_wall_s", Json.Num tj_off);
                      ("on_wall_s", Json.Num (tj_off /. tj_speedup));
                      ("speedup", Json.Num tj_speedup);
                      ("identical", Json.Bool tj_identical);
                    ];
                ] );
          ] );
      ( "metrics",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.Str "tdb_test_total");
                ("labels", Json.Obj []);
                ("value", Json.int 1);
              ];
          ] );
    ]

let mentions outcome needle =
  List.exists
    (fun f ->
      let n = String.length needle in
      let rec go i =
        i + n <= String.length f && (String.sub f i n = needle || go (i + 1))
      in
      go 0)
    outcome.Compare.failures

let test_compare_identical_docs () =
  let doc = bench_doc () in
  let o = Compare.compare_docs ~old_label:"a" ~new_label:"b" doc doc in
  Alcotest.(check (list string)) "no failures" [] o.Compare.failures;
  Alcotest.(check (list string)) "no warnings" [] o.Compare.warnings

let test_compare_grid_divergence () =
  let o =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~h_pages:8 ())
  in
  Alcotest.(check bool) "a cell change is a hard failure" true
    (o.Compare.failures <> []);
  Alcotest.(check bool) "failure names the grid" true (mentions o "grid")

let test_compare_smoke_runs_skip_grid () =
  (* a smoke run is incomparable on the grid but still passes through the
     internal gates *)
  let o =
    Compare.compare_docs ~old_label:"full" ~new_label:"smoke" (bench_doc ())
      (bench_doc ~max_uc:1 ~smoke:true ~h_pages:99 ())
  in
  Alcotest.(check (list string)) "grid skipped, gates pass" []
    o.Compare.failures

let test_compare_durability_gate () =
  let o =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~overhead:1.4 ())
  in
  Alcotest.(check bool) "overhead past the ceiling fails" true
    (mentions o "durability");
  (* drift within the ceiling only warns *)
  let o' =
    Compare.compare_docs ~old_label:"a" ~new_label:"b"
      (bench_doc ~overhead:0.2 ())
      (bench_doc ~overhead:0.9 ())
  in
  Alcotest.(check (list string)) "within ceiling: no failure" []
    o'.Compare.failures;
  Alcotest.(check bool) "but drift warns" true (o'.Compare.warnings <> [])

let test_compare_concurrency_gates () =
  (* on a small machine the reader-scaling floor self-skips *)
  let small =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~cy_domains:1 ~cy_speedup:1.1 ())
  in
  Alcotest.(check (list string)) "1 domain: floor skipped" []
    small.Compare.failures;
  (* with >= 4 domains, sub-floor reader scaling is a hard failure *)
  let flat =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~cy_domains:4 ~cy_speedup:1.1 ())
  in
  Alcotest.(check bool) "4 domains below the floor fails" true
    (mentions flat "concurrency");
  let fast =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~cy_domains:4 ~cy_speedup:3.0 ())
  in
  Alcotest.(check (list string)) "4 domains above the floor passes" []
    fast.Compare.failures;
  (* a throughput collapse on the 4r snapshot cell warns, never fails *)
  let drift =
    Compare.compare_docs ~old_label:"a" ~new_label:"b"
      (bench_doc ~cy_rate4:400.0 ())
      (bench_doc ~cy_rate4:40.0 ())
  in
  Alcotest.(check (list string)) "drop is not a hard failure" []
    drift.Compare.failures;
  Alcotest.(check bool) "but it warns" true (drift.Compare.warnings <> [])

let test_compare_tjoin_gates () =
  (* row divergence between the strategies is a hard failure anywhere *)
  let diverged =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~tj_identical:false ())
  in
  Alcotest.(check bool) "diverging rows fail" true (mentions diverged "tjoin");
  (* on a small machine the speedup floor self-skips *)
  let small =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~tj_domains:1 ~tj_speedup:1.1 ())
  in
  Alcotest.(check (list string)) "1 domain: floor skipped" []
    small.Compare.failures;
  (* with the cores and a nested wall past the noise floor, sub-2x fails *)
  let slow =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~tj_domains:4 ~tj_speedup:1.1 ())
  in
  Alcotest.(check bool) "4 domains below the floor fails" true
    (mentions slow "tjoin");
  (* a sub-noise nested wall keeps the gate off whatever the ratio *)
  let tiny =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~tj_domains:4 ~tj_speedup:0.9 ~tj_off:0.001 ())
  in
  Alcotest.(check (list string)) "sub-noise cell: floor skipped" []
    tiny.Compare.failures;
  (* a speedup collapse against the old document warns, never fails *)
  let drift =
    Compare.compare_docs ~old_label:"a" ~new_label:"b"
      (bench_doc ~tj_speedup:10.0 ())
      (bench_doc ~tj_speedup:2.5 ())
  in
  Alcotest.(check (list string)) "speedup drop is not a hard failure" []
    drift.Compare.failures;
  Alcotest.(check bool) "but it warns" true (drift.Compare.warnings <> [])

let test_compare_throughput_drift_warns () =
  let o =
    Compare.compare_docs ~old_label:"a" ~new_label:"b"
      (bench_doc ~tuples_per_s:100.0 ())
      (bench_doc ~tuples_per_s:10.0 ())
  in
  Alcotest.(check (list string)) "drop is not a hard failure" []
    o.Compare.failures;
  Alcotest.(check bool) "but it warns" true (o.Compare.warnings <> [])

let test_compare_scale_gates () =
  (* on a small machine the speedup gates self-skip *)
  let small = bench_doc ~scale10_speedup:1.2 ~scale1_speedup:0.5 () in
  let o = Compare.compare_docs ~old_label:"a" ~new_label:"b" small small in
  Alcotest.(check (list string)) "gates skipped below 4 domains" []
    o.Compare.failures;
  (* with cores to spend, scale >= 10 must clear 2x at 4 workers *)
  let o =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~scale_domains:4 ~scale10_speedup:1.5 ())
  in
  Alcotest.(check bool) "slow scale-10 speedup fails" true (mentions o "scale");
  (* and scale 1 must never dip below 0.9x *)
  let o =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~scale_domains:4 ~scale1_speedup:0.5 ())
  in
  Alcotest.(check bool) "scale-1 regression fails" true (mentions o "scale");
  (* a healthy 4-core document passes both *)
  let o =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ~scale_domains:4 ())
  in
  Alcotest.(check (list string)) "healthy doc passes" [] o.Compare.failures

let test_compare_trend_tables () =
  let o =
    Compare.compare_docs ~old_label:"a" ~new_label:"b" (bench_doc ())
      (bench_doc ())
  in
  let has needle =
    let n = String.length needle in
    let s = o.Compare.report in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "parallel trend printed" true (has "parallel trend");
  Alcotest.(check bool) "scale trend printed" true (has "scale trend")

let suites =
  [
    ( "benchkit",
      [
        Alcotest.test_case "workload shapes" `Quick test_workload_shapes;
        Alcotest.test_case "workload deterministic" `Quick test_workload_deterministic;
        Alcotest.test_case "query applicability" `Quick test_query_applicability;
        Alcotest.test_case "queries run everywhere" `Slow
          test_queries_parse_and_check;
        Alcotest.test_case "Q01 law (1 + 2n)" `Slow test_q01_law;
        Alcotest.test_case "Q05 single row" `Slow test_q05_single_row;
        Alcotest.test_case "5.4 worked example" `Slow test_section54_worked_example;
        Alcotest.test_case "growth rates" `Quick test_growth_rates;
        Alcotest.test_case "decompose/predict" `Quick test_decompose_predict;
        Alcotest.test_case "report table" `Quick test_report_table;
        Alcotest.test_case "report plot" `Quick test_report_plot;
        Alcotest.test_case "metrics schema" `Quick test_obs_json_schema;
        Alcotest.test_case "compare: identical docs" `Quick
          test_compare_identical_docs;
        Alcotest.test_case "compare: grid divergence" `Quick
          test_compare_grid_divergence;
        Alcotest.test_case "compare: smoke runs skip the grid" `Quick
          test_compare_smoke_runs_skip_grid;
        Alcotest.test_case "compare: durability gates" `Quick
          test_compare_durability_gate;
        Alcotest.test_case "compare: concurrency gates" `Quick
          test_compare_concurrency_gates;
        Alcotest.test_case "compare: tjoin gates" `Quick
          test_compare_tjoin_gates;
        Alcotest.test_case "compare: throughput drift warns" `Quick
          test_compare_throughput_drift_warns;
        Alcotest.test_case "compare: scale gates" `Quick
          test_compare_scale_gates;
        Alcotest.test_case "compare: trend tables" `Quick
          test_compare_trend_tables;
      ] );
  ]
