(* Plan selection and page-I/O accounting of the query executor, checked
   against the paper's analysis of how each benchmark query is processed
   (section 5.3). *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Plan = Tdb_query.Plan
module Executor = Tdb_query.Executor
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))

(* A miniature version of the paper's temporal database: 64 tuples so the
   exact page counts are easy to derive (8 tuples/page at 100% loading ->
   8 data pages). *)
let small_temporal () =
  let db = ok (Database.create ()) in
  exec db
    {|create persistent interval th (id = i4, amount = i4, seq = i4, string = c96)
      create persistent interval ti (id = i4, amount = i4, seq = i4, string = c96)
      range of h is th
      range of i is ti|};
  for k = 0 to 63 do
    exec db
      (Printf.sprintf {|append to th (id = %d, amount = %d, seq = 0, string = "x")|}
         k (k * 10));
    exec db
      (Printf.sprintf {|append to ti (id = %d, amount = %d, seq = 0, string = "y")|}
         k ((k * 7) mod 64))
  done;
  exec db "modify th to hash on id where fillfactor = 100";
  exec db "modify ti to isam on id where fillfactor = 100";
  db

type rows = {
  tuples : Tdb_relation.Tuple.t list;
  io : Executor.io_summary;
  plan : Plan.t;
}

let query db src =
  Database.reset_io db;
  match ok (Engine.execute_one db src) with
  | Engine.Rows { tuples; io; plan; _ } -> { tuples; io; plan }
  | _ -> Alcotest.fail "expected rows"

let plan_of db src = Plan.to_string (query db src).plan
let cost_of db src = (query db src).io.Executor.input_reads

let test_plan_selection () =
  let db = small_temporal () in
  Alcotest.(check string) "keyed hash probe" "fence[tx](keyed(h))"
    (plan_of db "retrieve (h.id) where h.id = 5");
  Alcotest.(check string) "keyed isam probe" "fence[tx](keyed(i))"
    (plan_of db "retrieve (i.id) where i.id = 5");
  Alcotest.(check string) "non-key predicate scans" "fence[tx](scan(h))"
    (plan_of db "retrieve (h.id) where h.amount = 50");
  Alcotest.(check string) "tuple substitution (Q09 shape)"
    "detach(i) then substitute into h via i.amount"
    (plan_of db
       {|retrieve (h.id, i.id) where h.id = i.amount
         when h overlap i and i overlap "now"|});
  Alcotest.(check string) "reverse substitution (Q10 shape)"
    "detach(h) then substitute into i via h.amount"
    (plan_of db
       {|retrieve (i.id, h.id) where i.id = h.amount
         when h overlap i and h overlap "now"|});
  Executor.with_temporal_join true (fun () ->
      Alcotest.(check string) "temporal join (Q11 shape)"
        "temporal precede join(h, i)"
        (plan_of db
           {|retrieve (h.id, i.id)
             valid from start of h to end of i
             when start of h precede i|}));
  Executor.with_temporal_join false (fun () ->
      Alcotest.(check string) "Q11 shape falls back to nested scan"
        "nested scan(h, i)"
        (plan_of db
           {|retrieve (h.id, i.id)
             valid from start of h to end of i
             when start of h precede i|}));
  Executor.with_temporal_join true (fun () ->
      Alcotest.(check string) "overlap join (Q12 shape)"
        "temporal overlap join(h, i)"
        (plan_of db
           {|retrieve (h.id, i.id)
             where h.id = 5 and i.amount = 7
             when h overlap i|}));
  Executor.with_temporal_join false (fun () ->
      Alcotest.(check string) "Q12 shape falls back to detach both"
        "detach(h) join detach(i)"
        (plan_of db
           {|retrieve (h.id, i.id)
             where h.id = 5 and i.amount = 7
             when h overlap i|}))

let test_exact_costs_small () =
  let db = small_temporal () in
  (* 64 tuples, 8/page: hash = 8 buckets; isam = 8 data pages + 1 dir *)
  Alcotest.(check int) "hashed access = 1 page" 1
    (cost_of db "retrieve (h.id) where h.id = 5");
  Alcotest.(check int) "isam access = dir + data" 2
    (cost_of db "retrieve (i.id) where i.id = 5");
  Alcotest.(check int) "hash scan = 8 pages" 8
    (cost_of db "retrieve (h.id) where h.amount = 50");
  Alcotest.(check int) "isam scan skips directory" 8
    (cost_of db "retrieve (i.id) where i.amount = 3")

let test_version_scan_growth () =
  (* Q01's law: cost = 1 + 2n on a 100% loaded temporal hash file. *)
  let db = small_temporal () in
  for n = 1 to 4 do
    Clock.advance (Database.clock db) 1000;
    exec db "replace h (seq = h.seq + 1)";
    Alcotest.(check int)
      (Printf.sprintf "1 + 2*%d" n)
      (1 + (2 * n))
      (cost_of db "retrieve (h.id, h.seq) where h.id = 5")
  done

let test_output_cost () =
  let db = small_temporal () in
  Database.reset_io db;
  let r =
    query db
      {|retrieve (h.id, i.id) where h.id = i.amount
        when h overlap i and i overlap "now"|}
  in
  Alcotest.(check bool) "substitution writes a temporary" true
    (r.io.Executor.output_writes > 0);
  let r2 = query db "retrieve (h.id) where h.id = 5" in
  Alcotest.(check int) "single-variable query writes nothing" 0
    r2.io.Executor.output_writes

let test_join_correctness () =
  (* The substitution join must produce exactly the expected pairs. *)
  let db = small_temporal () in
  let r =
    query db
      {|retrieve (h.id, i.id) where h.id = i.amount
        when h overlap i and i overlap "now"|}
  in
  (* i.amount = (id*7) mod 64; every amount in 0..63 hits exactly one h.id *)
  Alcotest.(check int) "64 join results" 64 (List.length r.tuples)

let test_nested_join_matches_substitution () =
  (* The same logical join evaluated under two plans must agree. *)
  let db = small_temporal () in
  let sub =
    (query db
       {|retrieve (h.id, i.id) where h.id = i.amount
         when h overlap i and i overlap "now"|}).tuples
  in
  (* force nested scan by comparing non-key attributes *)
  let nested =
    (query db
       {|retrieve (h.id, i.id) where h.amount = i.amount * 10
         when h overlap i and i overlap "now"|}).tuples
  in
  (* h.amount = h.id*10, so h.amount = i.amount*10 <=> h.id = i.amount *)
  let norm l =
    List.sort compare
      (List.map (fun tu -> (tu.(0), tu.(1))) l)
  in
  Alcotest.(check bool) "same results under both plans" true
    (norm sub = norm nested)

let test_as_of_filters_per_relation () =
  let db = small_temporal () in
  let t0 = Database.now db in
  Clock.advance (Database.clock db) 1000;
  exec db "replace h (seq = h.seq + 1) where h.id = 5";
  (* as of t0: only the original version of tuple 5 *)
  let r =
    query db
      (Printf.sprintf {|retrieve (h.seq) where h.id = 5 as of "%s"|}
         (Chronon.to_string t0))
  in
  (match r.tuples with
  | [ [| Value.Int 0; _; _ |] ] | [ [| Value.Int 0 |] ] -> ()
  | l ->
      Alcotest.failf "as-of version: %d rows, first seq %s" (List.length l)
        (match l with
        | tu :: _ -> Value.to_string tu.(0)
        | [] -> "none"));
  (* default as-of "now": both the updated current version and the
     terminated record are transaction-current; seq values are 0 and 1 *)
  let r2 = query db "retrieve (h.seq) where h.id = 5" in
  Alcotest.(check int) "default as-of shows full known history" 2
    (List.length r2.tuples)

let test_range_probe () =
  let db = small_temporal () in
  (* 64 tuples, 8/page over ISAM: keys 16..23 live on data page 2 *)
  Alcotest.(check string) "range plan chosen" "fence[tx](range(i))"
    (plan_of db "retrieve (i.id) where i.id >= 16 and i.id <= 23");
  let r = query db "retrieve (i.id) where i.id >= 16 and i.id <= 23" in
  Alcotest.(check int) "8 tuples in range" 8 (List.length r.tuples);
  Alcotest.(check int) "directory + single data page" 2
    r.io.Executor.input_reads;
  (* strict bounds re-filter after the widened probe *)
  let r2 = query db "retrieve (i.id) where i.id > 16 and i.id < 23" in
  Alcotest.(check int) "strict bounds" 6 (List.length r2.tuples);
  (* half-open ranges work too *)
  let r3 = query db "retrieve (i.id) where i.id >= 56" in
  Alcotest.(check int) "open upper bound" 8 (List.length r3.tuples);
  Alcotest.(check bool) "cheaper than a scan"
    true (r3.io.Executor.input_reads < 8);
  (* ranges against the hash key cannot avoid the scan *)
  Alcotest.(check string) "hash key range still scans" "fence[tx](scan(h))"
    (plan_of db "retrieve (h.id) where h.id >= 16 and h.id <= 23");
  (* a range query agrees with the equivalent scan *)
  let scanned = query db "retrieve (i.id) where i.amount >= 0 and i.id >= 16 and i.id <= 23" in
  let norm l = List.sort compare (List.map (fun tu -> tu.(0)) l) in
  Alcotest.(check bool) "same answers as filtered scan" true
    (norm r.tuples = norm scanned.tuples)

let test_retrieve_unique () =
  let db = ok (Database.create ()) in
  exec db "create dup (k = i4, v = i4)";
  exec db "range of d is dup";
  for k = 0 to 19 do
    exec db (Printf.sprintf "append to dup (k = %d, v = %d)" k (k mod 3))
  done;
  let all = query db "retrieve (d.v)" in
  Alcotest.(check int) "20 rows" 20 (List.length all.tuples);
  let uniq = query db "retrieve unique (d.v)" in
  Alcotest.(check int) "3 distinct rows" 3 (List.length uniq.tuples);
  (* on a temporal source, versions differing in their time stamps stay
     distinct: unique deduplicates whole result tuples *)
  let tdb = small_temporal () in
  let u = query tdb {|retrieve unique (s = h.seq) when h overlap "now"|} in
  Alcotest.(check int) "distinct validity keeps versions apart" 64
    (List.length u.tuples)

let test_const_emit () =
  let db = ok (Database.create ()) in
  let r = query db "retrieve (answer = 42)" in
  match r.tuples with
  | [ [| Value.Int 42 |] ] -> ()
  | _ -> Alcotest.fail "constant retrieve"

let suites =
  [
    ( "executor",
      [
        Alcotest.test_case "plan selection" `Quick test_plan_selection;
        Alcotest.test_case "exact costs (small db)" `Quick test_exact_costs_small;
        Alcotest.test_case "version scan growth" `Quick test_version_scan_growth;
        Alcotest.test_case "output cost" `Quick test_output_cost;
        Alcotest.test_case "join correctness" `Quick test_join_correctness;
        Alcotest.test_case "nested = substitution" `Quick
          test_nested_join_matches_substitution;
        Alcotest.test_case "as-of filtering" `Quick test_as_of_filters_per_relation;
        Alcotest.test_case "ISAM range probe" `Quick test_range_probe;
        Alcotest.test_case "retrieve unique" `Quick test_retrieve_unique;
        Alcotest.test_case "constant emit" `Quick test_const_emit;
      ] );
  ]
