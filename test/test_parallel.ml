(* Parallel query execution under concurrency.

   Two properties guard the domain-pool executor:
   - single caller: every paper query returns bit-identical rows through
     the parallel executor, and the worker-private I/O counters folded on
     join add up to exactly the sequential cold-pool read counts;
   - many callers: N domains each running the full Q01..Q12 mix against
     the same engine complete cleanly and every query's rows stay
     bit-identical to the sequential baseline. *)

module Workload = Tdb_benchkit.Workload
module Evolve = Tdb_benchkit.Evolve
module Paper_queries = Tdb_benchkit.Paper_queries
module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Executor = Tdb_query.Executor
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Value = Tdb_relation.Value

let render_rows tuples =
  List.map
    (fun tu -> String.concat "|" (Array.to_list (Array.map Value.to_string tu)))
    tuples

let evolved_temporal () =
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:23 () in
  for round = 1 to 2 do
    Evolve.uniform_round w ~round
  done;
  w

(* Drop every cached frame so both executors start from a cold pool and
   their read counts are comparable. *)
let chill (w : Workload.t) =
  let db = w.Workload.db in
  List.iter
    (fun name ->
      match Database.find_relation db name with
      | Some rel -> Buffer_pool.invalidate (Relation_file.pool rel)
      | None -> ())
    (Database.relation_names db)

let queries () =
  List.filter_map
    (fun qid ->
      Option.map
        (fun src -> (Paper_queries.name qid, src))
        (Paper_queries.text qid Workload.Temporal))
    Paper_queries.all

let run_query (w : Workload.t) src =
  Database.reset_io w.Workload.db;
  match Engine.execute w.Workload.db src with
  | Ok [ Engine.Rows { tuples; io; _ } ] ->
      (render_rows tuples, io.Executor.input_reads)
  | Ok _ -> Alcotest.failf "expected a single retrieve: %s" src
  | Error e -> Alcotest.failf "query failed (%s): %s" e src

let test_parallel_matches_sequential () =
  let w = evolved_temporal () in
  Fun.protect ~finally:(fun () ->
      Engine.set_parallelism None;
      Executor.set_parallel_min_pages None)
  @@ fun () ->
  (* Paper-scale relations sit under the admission floor; drop it so the
     fan-out machinery is what this test exercises. *)
  Executor.set_parallel_min_pages (Some 0);
  List.iter
    (fun (name, src) ->
      Engine.set_parallelism (Some 1);
      chill w;
      let rows_seq, reads_seq = run_query w src in
      Engine.set_parallelism (Some 4);
      chill w;
      let rows_par, reads_par = run_query w src in
      Alcotest.(check bool)
        (name ^ ": identical rows") true
        (rows_seq = rows_par);
      Alcotest.(check int)
        (name ^ ": folded reads match sequential")
        reads_seq reads_par)
    (queries ())

(* The same parity contract at ten times the paper's row count, with the
   admission floor dropped to zero so keyed and range probes actually fan
   out (at the default floor many stay inline).  Folded per-partition
   read counters must still equal the sequential cold-pool counts for
   every paper query. *)
let test_scale10_matches_sequential () =
  let w = Workload.build ~scale:10 ~kind:Workload.Temporal ~loading:100 ~seed:23 () in
  for round = 1 to 2 do
    Evolve.uniform_round w ~round
  done;
  Fun.protect ~finally:(fun () ->
      Engine.set_parallelism None;
      Executor.set_parallel_min_pages None)
  @@ fun () ->
  Executor.set_parallel_min_pages (Some 0);
  List.iter
    (fun (name, src) ->
      Engine.set_parallelism (Some 1);
      chill w;
      let rows_seq, reads_seq = run_query w src in
      Engine.set_parallelism (Some 4);
      chill w;
      let rows_par, reads_par = run_query w src in
      Alcotest.(check bool)
        (name ^ " (scale 10): identical rows") true
        (rows_seq = rows_par);
      Alcotest.(check int)
        (name ^ " (scale 10): folded reads match sequential")
        reads_seq reads_par)
    (queries ())

(* A keyed probe at paper scale touches a single bucket chain, far under
   the admission floor: the planner must decline the fan-out and say so
   in \explain. *)
let test_explain_declines_small () =
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:23 () in
  Fun.protect ~finally:(fun () -> Engine.set_parallelism None) @@ fun () ->
  Engine.set_parallelism (Some 4);
  match Engine.explain w.Workload.db "retrieve (h.id, h.seq) where h.id = 500" with
  | Error e -> Alcotest.failf "explain failed: %s" e
  | Ok text ->
      let contains needle =
        let nh = String.length text and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        "explain declines the too-small fan-out" true
        (contains "parallel: declined (too small)")

let test_domain_stress () =
  let w = evolved_temporal () in
  let qs = Array.of_list (queries ()) in
  let n = Array.length qs in
  Fun.protect ~finally:(fun () ->
      Engine.set_parallelism None;
      Executor.set_parallel_min_pages None)
  @@ fun () ->
  (* Drop the admission floor so the stress domains really do fan out
     internally, not just interleave statements. *)
  Executor.set_parallel_min_pages (Some 0);
  Engine.set_parallelism (Some 1);
  let baseline =
    Array.to_list
      (Array.map (fun (name, src) -> (name, fst (run_query w src))) qs)
  in
  (* Workers > 1 so the stress domains also fan out scans internally. *)
  Engine.set_parallelism (Some 2);
  (* Each domain walks the mix from its own offset, maximizing statement
     interleaving; results come back as data so all assertions run on the
     test's own domain. *)
  let run_mix k =
    List.init n (fun i ->
        let name, src = qs.((i + k) mod n) in
        match Engine.execute w.Workload.db src with
        | Ok [ Engine.Rows { tuples; _ } ] -> (name, render_rows tuples)
        | Ok _ -> (name, [ "unexpected outcome" ])
        | Error e -> (name, [ "error: " ^ e ]))
  in
  let spawned = List.init 4 (fun k -> Domain.spawn (fun () -> run_mix (k + 1))) in
  let results = run_mix 0 :: List.map Domain.join spawned in
  List.iteri
    (fun d per_domain ->
      List.iter
        (fun (name, rows) ->
          let want = List.assoc name baseline in
          Alcotest.(check bool)
            (Printf.sprintf "domain %d, %s: rows identical to sequential" d name)
            true (rows = want))
        per_domain)
    results

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "paper queries: parallel = sequential" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "scale 10: parallel probes = sequential" `Slow
          test_scale10_matches_sequential;
        Alcotest.test_case "explain declines small fan-outs" `Quick
          test_explain_declines_small;
        Alcotest.test_case "domain stress: concurrent Q01..Q12 mix" `Quick
          test_domain_stress;
      ] );
  ]
