(* Parallel query execution under concurrency.

   Two properties guard the domain-pool executor:
   - single caller: every paper query returns bit-identical rows through
     the parallel executor, and the worker-private I/O counters folded on
     join add up to exactly the sequential cold-pool read counts;
   - many callers: N domains each running the full Q01..Q12 mix against
     the same engine complete cleanly and every query's rows stay
     bit-identical to the sequential baseline. *)

module Workload = Tdb_benchkit.Workload
module Evolve = Tdb_benchkit.Evolve
module Paper_queries = Tdb_benchkit.Paper_queries
module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Executor = Tdb_query.Executor
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Value = Tdb_relation.Value

let render_rows tuples =
  List.map
    (fun tu -> String.concat "|" (Array.to_list (Array.map Value.to_string tu)))
    tuples

let evolved_temporal () =
  let w = Workload.build ~kind:Workload.Temporal ~loading:100 ~seed:23 in
  for round = 1 to 2 do
    Evolve.uniform_round w ~round
  done;
  w

(* Drop every cached frame so both executors start from a cold pool and
   their read counts are comparable. *)
let chill (w : Workload.t) =
  let db = w.Workload.db in
  List.iter
    (fun name ->
      match Database.find_relation db name with
      | Some rel -> Buffer_pool.invalidate (Relation_file.pool rel)
      | None -> ())
    (Database.relation_names db)

let queries () =
  List.filter_map
    (fun qid ->
      Option.map
        (fun src -> (Paper_queries.name qid, src))
        (Paper_queries.text qid Workload.Temporal))
    Paper_queries.all

let run_query (w : Workload.t) src =
  Database.reset_io w.Workload.db;
  match Engine.execute w.Workload.db src with
  | Ok [ Engine.Rows { tuples; io; _ } ] ->
      (render_rows tuples, io.Executor.input_reads)
  | Ok _ -> Alcotest.failf "expected a single retrieve: %s" src
  | Error e -> Alcotest.failf "query failed (%s): %s" e src

let test_parallel_matches_sequential () =
  let w = evolved_temporal () in
  Fun.protect ~finally:(fun () -> Engine.set_parallelism None) @@ fun () ->
  List.iter
    (fun (name, src) ->
      Engine.set_parallelism (Some 1);
      chill w;
      let rows_seq, reads_seq = run_query w src in
      Engine.set_parallelism (Some 4);
      chill w;
      let rows_par, reads_par = run_query w src in
      Alcotest.(check bool)
        (name ^ ": identical rows") true
        (rows_seq = rows_par);
      Alcotest.(check int)
        (name ^ ": folded reads match sequential")
        reads_seq reads_par)
    (queries ())

let test_domain_stress () =
  let w = evolved_temporal () in
  let qs = Array.of_list (queries ()) in
  let n = Array.length qs in
  Fun.protect ~finally:(fun () -> Engine.set_parallelism None) @@ fun () ->
  Engine.set_parallelism (Some 1);
  let baseline =
    Array.to_list
      (Array.map (fun (name, src) -> (name, fst (run_query w src))) qs)
  in
  (* Workers > 1 so the stress domains also fan out scans internally. *)
  Engine.set_parallelism (Some 2);
  (* Each domain walks the mix from its own offset, maximizing statement
     interleaving; results come back as data so all assertions run on the
     test's own domain. *)
  let run_mix k =
    List.init n (fun i ->
        let name, src = qs.((i + k) mod n) in
        match Engine.execute w.Workload.db src with
        | Ok [ Engine.Rows { tuples; _ } ] -> (name, render_rows tuples)
        | Ok _ -> (name, [ "unexpected outcome" ])
        | Error e -> (name, [ "error: " ^ e ]))
  in
  let spawned = List.init 4 (fun k -> Domain.spawn (fun () -> run_mix (k + 1))) in
  let results = run_mix 0 :: List.map Domain.join spawned in
  List.iteri
    (fun d per_domain ->
      List.iter
        (fun (name, rows) ->
          let want = List.assoc name baseline in
          Alcotest.(check bool)
            (Printf.sprintf "domain %d, %s: rows identical to sequential" d name)
            true (rows = want))
        per_domain)
    results

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "paper queries: parallel = sequential" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "domain stress: concurrent Q01..Q12 mix" `Quick
          test_domain_stress;
      ] );
  ]
