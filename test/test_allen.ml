(* The Allen-relation oracle suite guarding the temporal-join operator.

   Allen's thirteen interval relations partition every configuration of
   two intervals.  TQuel's primitive temporal predicates induce a coarser
   partition — [overlap] covers the nine intersecting relations,
   [precede] covers before and meets, [equal] covers equality alone —
   and the planner's classifier plus the sweep-based join must agree
   with that partition exactly: a missed pair would silently drop result
   rows, an unsafe classification would change answers. *)

module Conjuncts = Tdb_query.Conjuncts
module Tjoin = Tdb_query.Tjoin
module Plan = Tdb_query.Plan
module Parser = Tdb_tquel.Parser
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
open Tdb_tquel.Ast

let conjuncts_of src =
  match Parser.parse_statement src with
  | Ok (Retrieve r) -> Conjuncts.split r.where r.when_
  | Ok _ -> Alcotest.fail "not a retrieve"
  | Error e -> Alcotest.fail e

(* --- classifier: syntactic shapes --- *)

let classify src = Conjuncts.temporal_join_between (conjuncts_of src) ~a:"h" ~b:"i"

let check_class src want_class =
  match classify src with
  | Some aj ->
      let name = function
        | `Overlap -> "overlap"
        | `Equal -> "equal"
        | `Precede -> "precede"
      in
      Alcotest.(check string) src (name want_class) (name aj.Conjuncts.aj_class)
  | None -> Alcotest.failf "%s: expected a classification" src

let check_none src =
  match classify src with
  | None -> ()
  | Some _ -> Alcotest.failf "%s: must not classify (safe fallback)" src

let test_classifier () =
  check_class "retrieve (h.id) when h overlap i" `Overlap;
  check_class "retrieve (h.id) when i overlap h" `Overlap;
  check_class "retrieve (h.id) when h equal i" `Equal;
  check_class "retrieve (h.id) when h precede i" `Precede;
  check_class "retrieve (h.id) when start of h precede i" `Precede;
  check_class "retrieve (h.id) when h precede end of i" `Precede;
  check_class "retrieve (h.id) when end of h overlap start of i" `Overlap;
  (* endpoints survive classification *)
  (match classify "retrieve (h.id) when start of h precede end of i" with
  | Some
      {
        Conjuncts.aj_left = { op_var = "h"; op_endpoint = Conjuncts.Ep_start };
        aj_right = { op_var = "i"; op_endpoint = Conjuncts.Ep_end };
        aj_class = `Precede;
      } ->
      ()
  | _ -> Alcotest.fail "endpoint operands lost in classification");
  (* a conjunction splits; the classifiable conjunct is still found *)
  check_class {|retrieve (h.id) when h overlap i and h overlap "now"|} `Overlap;
  (* safe fallbacks: constants, same variable twice, compound predicates,
     derived periods *)
  check_none {|retrieve (h.id) when h overlap "now"|};
  check_none "retrieve (h.id) when h overlap h";
  check_none "retrieve (h.id) when not (h overlap i)";
  check_none "retrieve (h.id) when (h overlap i) or (h precede i)";
  check_none "retrieve (h.id) when (h extend h) overlap i";
  (* where clauses never classify *)
  check_none "retrieve (h.id) where h.id = i.id"

(* --- the thirteen relations, concretely --- *)

let t0 = Chronon.parse_exn "1980-01-01"
let c n = Chronon.add_seconds t0 n
let iv a b = Period.make (c a) (c b)

(* (name, A, B, intersects?) with B fixed at [10, 20).  [precede A B] and
   [precede B A] follow from the endpoints; the nine remaining relations
   all intersect. *)
let thirteen =
  [
    ("before", iv 0 5, false);
    ("meets", iv 0 10, false);
    ("overlaps", iv 5 15, true);
    ("finished-by", iv 5 20, true);
    ("contains", iv 5 25, true);
    ("starts", iv 10 15, true);
    ("equals", iv 10 20, true);
    ("started-by", iv 10 25, true);
    ("during", iv 12 18, true);
    ("finishes", iv 15 20, true);
    ("overlapped-by", iv 15 25, true);
    ("met-by", iv 20 25, false);
    ("after", iv 25 30, false);
  ]

let b_ref = iv 10 20

let pairs_of cls a b =
  Tjoin.join ~cls ~left:[| (a, 0) |] ~right:[| (b, 0) |]

let test_thirteen_relations () =
  List.iter
    (fun (name, a, intersects) ->
      (* the period primitives are the ground truth for the partition *)
      Alcotest.(check bool)
        (name ^ ": Period.overlaps") intersects (Period.overlaps a b_ref);
      let precedes = Chronon.compare (Period.to_ a) (Period.from_ b_ref) <= 0 in
      Alcotest.(check bool)
        (name ^ ": Period.precede") precedes (Period.precede a b_ref);
      (* the sweep join must agree with the primitives, pair by pair *)
      Alcotest.(check bool)
        (name ^ ": overlap join") intersects
        (pairs_of `Overlap a b_ref = [ (0, 0) ]);
      Alcotest.(check bool)
        (name ^ ": precede join") precedes
        (pairs_of `Precede a b_ref = [ (0, 0) ]);
      Alcotest.(check bool)
        (name ^ ": equal join superset")
        (* equal pairs via the overlap sweep: a superset filtered later *)
        (Period.overlaps a b_ref)
        (pairs_of `Equal a b_ref = [ (0, 0) ]))
    thirteen;
  (* equality itself, for the record *)
  Alcotest.(check bool) "equals: Period.equal" true (Period.equal (iv 10 20) b_ref)

(* --- the sweep against a naive quadratic reference --- *)

let gen_period rng =
  let from = Random.State.int rng 400 in
  match Random.State.int rng 10 with
  | 0 -> Period.at (c from) (* event *)
  | 1 -> Period.make (c from) Chronon.forever
  | 2 when Random.State.int rng 20 = 0 -> Period.at Chronon.forever
  | _ -> Period.make (c from) (c (from + 1 + Random.State.int rng 120))

let naive cls left right =
  let test =
    match cls with
    | `Overlap | `Equal -> Period.overlaps
    | `Precede -> Period.precede
  in
  Array.to_list left
  |> List.concat_map (fun (lp, li) ->
         Array.to_list right
         |> List.filter_map (fun (rp, ri) ->
                if test lp rp then Some (li, ri) else None))

let test_sweep_matches_naive () =
  let rng = Random.State.make [| 19851 |] in
  for trial = 1 to 200 do
    let n = 1 + Random.State.int rng 40 in
    let m = 1 + Random.State.int rng 40 in
    let left = Array.init n (fun i -> (gen_period rng, i)) in
    let right = Array.init m (fun i -> (gen_period rng, i)) in
    let cls =
      List.nth [ `Overlap; `Equal; `Precede ] (Random.State.int rng 3)
    in
    let got = List.sort compare (Tjoin.join ~cls ~left ~right) in
    let want = List.sort compare (naive cls left right) in
    if got <> want then
      Alcotest.failf
        "sweep diverged from the quadratic reference (trial %d, %s): %d vs %d \
         pairs"
        trial
        (match cls with
        | `Overlap -> "overlap"
        | `Equal -> "equal"
        | `Precede -> "precede")
        (List.length got) (List.length want)
  done

(* --- plan selection respects classification and the toggle --- *)

let temporal_info var =
  { Plan.var; key = None; transaction_time = true; valid_time = true }

let static_info var =
  { Plan.var; key = None; transaction_time = false; valid_time = false }

let choose ?(temporal_join = true) sources src =
  Plan.choose ~temporal_join ~sources ~conjuncts:(conjuncts_of src) ()

let test_plan_classification () =
  let two = [ temporal_info "h"; temporal_info "i" ] in
  (match choose two "retrieve (h.id) when h overlap i" with
  | Plan.Temporal_join { cls = `Overlap; _ } -> ()
  | p -> Alcotest.failf "wanted temporal overlap join, got %s" (Plan.to_string p));
  (match choose two "retrieve (h.id) when start of h precede i" with
  | Plan.Temporal_join { cls = `Precede; _ } -> ()
  | p -> Alcotest.failf "wanted temporal precede join, got %s" (Plan.to_string p));
  (* unclassifiable predicates fall back to nested evaluation *)
  (match choose two "retrieve (h.id) when not (h overlap i)" with
  | Plan.Nested_scan _ -> ()
  | p -> Alcotest.failf "wanted nested-scan fallback, got %s" (Plan.to_string p));
  (* a side without valid time cannot temporal-join *)
  (match
     choose [ temporal_info "h"; static_info "i" ]
       "retrieve (h.id) when h overlap i"
   with
  | Plan.Temporal_join _ -> Alcotest.fail "static side must not temporal-join"
  | _ -> ());
  (* the toggle forces the classic plans *)
  match choose ~temporal_join:false two "retrieve (h.id) when h overlap i" with
  | Plan.Temporal_join _ -> Alcotest.fail "toggle off must suppress the join"
  | _ -> ()

let suites =
  [
    ( "allen",
      [
        Alcotest.test_case "when-clause classifier" `Quick test_classifier;
        Alcotest.test_case "thirteen relations" `Quick test_thirteen_relations;
        Alcotest.test_case "sweep = quadratic reference" `Quick
          test_sweep_matches_naive;
        Alcotest.test_case "plan classification + toggle" `Quick
          test_plan_classification;
      ] );
  ]
