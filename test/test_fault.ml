(* Fault injection and crash consistency.

   The centrepiece is the crash-at-every-write harness: a reference run
   counts the page writes a small TQuel workload performs, then the
   workload is replayed once per write position with a plan that kills
   the process right after that write.  Every crash site must reopen to
   a checksum-clean database whose contents are a prefix of the appended
   sequence — never a suffix, never garbage. *)

module Disk = Tdb_storage.Disk
module Page = Tdb_storage.Page
module Fault = Tdb_storage.Fault
module Database = Tdb_core.Database
module Engine = Tdb_core.Engine

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tdb_fault_%d_%d" (Unix.getpid ()) !counter)
    in
    Sys.mkdir dir 0o755;
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- determinism ------------------------------------------------------- *)

let test_determinism () =
  (* The same seed must tear the same writes at the same lengths. *)
  let torn_lengths seed =
    let fault = Fault.create ~seed ~torn_write_at:3 () in
    let acc = ref [] in
    for _ = 1 to 5 do
      (match Fault.on_write fault ~len:Page.size with
      | `Torn n -> acc := n :: !acc
      | `Ok -> ()
      | _ -> Alcotest.fail "unexpected fault decision")
    done;
    !acc
  in
  Alcotest.(check (list int)) "same seed, same tears" (torn_lengths 42)
    (torn_lengths 42);
  let torn a = List.length (torn_lengths a) in
  Alcotest.(check int) "exactly one tear per plan" 1 (torn 42);
  Alcotest.(check int) "other seeds tear once too" 1 (torn 43)

let test_counter_plan_is_transparent () =
  let fault = Fault.create () in
  for _ = 1 to 4 do
    match Fault.on_write fault ~len:Page.size with
    | `Ok -> ()
    | _ -> Alcotest.fail "counting plan must not inject"
  done;
  (match Fault.on_read fault ~len:Page.size with
  | `Ok -> ()
  | _ -> Alcotest.fail "counting plan must not inject");
  Alcotest.(check int) "writes counted" 4 (Fault.writes fault);
  Alcotest.(check int) "reads counted" 1 (Fault.reads fault)

let test_dead_plan_raises () =
  let fault = Fault.create ~crash_after_write:1 () in
  (match Fault.on_write fault ~len:Page.size with
  | `Crash_after -> ()
  | _ -> Alcotest.fail "expected crash-after on write 1");
  Alcotest.(check bool) "plan dead" true (Fault.is_dead fault);
  (match Fault.on_write fault ~len:Page.size with
  | exception Fault.Crashed -> ()
  | _ -> Alcotest.fail "dead plan accepted a write");
  match Fault.on_read fault ~len:Page.size with
  | exception Fault.Crashed -> ()
  | _ -> Alcotest.fail "dead plan accepted a read"

(* --- the workload ------------------------------------------------------ *)

let n_appends = 12

let setup_src =
  "create persistent interval emp (name = c20, salary = i4);\n\
   range of e is emp;"

let append_src i =
  Printf.sprintf "append to emp (name = \"w%03d\", salary = %d);" i (1000 + i)

let must_ok db src =
  match Engine.execute db src with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("statement failed: " ^ e)

(* Runs setup + appends, checkpointing after each append so every append
   reaches the disk (otherwise the buffer pool absorbs the whole workload
   and only the final flush writes pages).  Returns whether the plan
   killed the process part-way.  Statements after the crash are not
   attempted: the process is dead. *)
let run_workload db =
  try
    must_ok db setup_src;
    for i = 1 to n_appends do
      (match Engine.execute db (append_src i) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("append failed: " ^ e));
      Database.sync db
    done;
    `Ran
  with Fault.Crashed -> `Crashed

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The committed names, in scan order.  A crash can now land inside the
   setup statement's catalog replacement, in which case the reopened
   database legitimately has no [emp] at all — the empty prefix. *)
let surviving_names db =
  match Engine.execute db "range of e is emp; retrieve (e.name);" with
  | Ok outcomes ->
      List.concat_map
        (function
          | Engine.Rows { tuples; _ } ->
              List.map
                (fun t ->
                  match t.(0) with
                  | Tdb_relation.Value.Str s -> s
                  | v -> Tdb_relation.Value.to_string v)
                tuples
          | _ -> [])
        outcomes
  | Error e when contains e "does not exist" -> []
  | Error e -> Alcotest.fail ("survivor scan failed: " ^ e)

let expected_prefix k = List.init k (fun i -> Printf.sprintf "w%03d" (i + 1))

let is_prefix_of_appends names =
  names = expected_prefix (List.length names)

(* Counts the page writes the full workload performs against real files. *)
let count_workload_writes () =
  with_dir (fun dir ->
      let fault = Fault.create () in
      match Database.create ~dir ~fault () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          (match run_workload db with
          | `Ran -> ()
          | `Crashed -> Alcotest.fail "counting run crashed");
          Database.close db;
          Fault.writes fault)

(* --- crash at every write --------------------------------------------- *)

let test_crash_after_every_write () =
  let total_writes = count_workload_writes () in
  Alcotest.(check bool)
    (Printf.sprintf "workload performs enough writes (%d)" total_writes)
    true
    (total_writes >= n_appends);
  for k = 1 to total_writes do
    with_dir (fun dir ->
        (* Run until the crash... *)
        let fault = Fault.create ~crash_after_write:k () in
        (match Database.create ~dir ~fault () with
        | Error e -> Alcotest.fail e
        | Ok db ->
            (match run_workload db with `Ran | `Crashed -> ());
            Database.abandon db);
        (* ...then reopen without faults, as a fresh process would. *)
        match Database.create ~dir () with
        | Error e ->
            Alcotest.fail (Printf.sprintf "crash at write %d: reopen: %s" k e)
        | Ok db ->
            List.iter
              (fun (name, r) ->
                Alcotest.fail
                  (Printf.sprintf
                     "crash at write %d: page-atomic crash needed repair of \
                      %s: %s"
                     k name
                     (Format.asprintf "%a" Disk.pp_recovery r)))
              (Database.recoveries db);
            let names = surviving_names db in
            Alcotest.(check bool)
              (Printf.sprintf
                 "crash at write %d: %d survivors form a prefix" k
                 (List.length names))
              true
              (is_prefix_of_appends names);
            Database.close db)
  done

let test_torn_crash_recovers_or_refuses () =
  (* The torn-crash model: the k-th write persists only a prefix of the
     page.  Reopening must either repair (torn tail) or refuse
     (mid-file damage) — never serve unverified bytes. *)
  let total_writes = count_workload_writes () in
  let repaired = ref 0 in
  let refused = ref 0 in
  for k = 1 to total_writes do
    with_dir (fun dir ->
        let fault = Fault.create ~seed:(0xC0FFEE + k) ~crash_at_write:k () in
        (match Database.create ~dir ~fault () with
        | Error e -> Alcotest.fail e
        | Ok db ->
            (match run_workload db with `Ran | `Crashed -> ());
            Database.abandon db);
        match Database.create ~dir () with
        | exception Tdb_error.Error (Tdb_error.Corruption, _) -> incr refused
        | Error e ->
            Alcotest.fail (Printf.sprintf "torn write %d: reopen: %s" k e)
        | Ok db ->
            (* Repair work now comes in two flavours: page-level torn-tail
               truncation (Disk recovery) and journal replay/rollback. *)
            if
              Database.recoveries db <> []
              || Database.journal_recovery db <> None
            then incr repaired;
            let names = surviving_names db in
            Alcotest.(check bool)
              (Printf.sprintf "torn write %d: clean prefix" k)
              true
              (is_prefix_of_appends names);
            Database.close db)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some torn tails were repaired (%d repaired, %d refused)"
       !repaired !refused)
    true (!repaired > 0)

(* --- checksum end to end ----------------------------------------------- *)

let test_flipped_byte_never_served () =
  (* Flip one byte in the data page file of a closed database; reopening
     and scanning must report Corruption, not altered tuples. *)
  with_dir (fun dir ->
      (match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          must_ok db setup_src;
          for i = 1 to 3 do
            must_ok db (append_src i)
          done;
          Database.close db);
      let path = Filename.concat dir "emp.pages" in
      let size = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "data file has pages" true (size >= Page.size);
      (* Middle of the first page: tuple payload, not the trailer. *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      ignore (Unix.lseek fd 40 Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
      ignore (Unix.lseek fd 40 Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      match Database.create ~dir () with
      | exception Tdb_error.Error (Tdb_error.Corruption, _) -> ()
      | Error _ -> Alcotest.fail "corruption misreported as a soft error"
      | Ok db -> (
          (* A single bad page that happens to be the tail may have been
             truncated by recovery; in that case the flip must not appear
             in the data.  Otherwise the scan must raise Corruption. *)
          match surviving_names db with
          | names ->
              Database.close db;
              Alcotest.(check bool) "served names untainted" true
                (is_prefix_of_appends names)
          | exception Tdb_error.Error (Tdb_error.Corruption, _) ->
              Database.abandon db))

let test_eio_read_surfaces_as_io_error () =
  with_dir (fun dir ->
      (match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          must_ok db setup_src;
          for i = 1 to 3 do
            must_ok db (append_src i)
          done;
          Database.close db);
      let fault = Fault.create ~eio_read_at:1 () in
      match Database.create ~dir ~fault () with
      | Error e -> Alcotest.fail e
      | Ok db -> (
          match surviving_names db with
          | exception Tdb_error.Error (Tdb_error.Io, _) ->
              Database.abandon db
          | _ ->
              Database.abandon db;
              Alcotest.fail "injected EIO did not surface as an Io error"))

(* --- faults under parallel execution ---------------------------------- *)

(* A read fault firing inside a worker partition must surface exactly as
   it does sequentially: one structured Io error (exit code 4) after all
   workers join — no hang, no crash, and no partially emitted rows. *)
let test_fault_in_worker_partition () =
  List.iter
    (fun (label, fault) ->
      with_dir (fun dir ->
          (match Database.create ~dir () with
          | Error e -> Alcotest.fail e
          | Ok db ->
              must_ok db setup_src;
              for i = 1 to 60 do
                must_ok db (append_src i)
              done;
              Database.close db);
          match Database.create ~dir ~fault () with
          | Error e -> Alcotest.fail e
          | Ok db ->
              Engine.set_parallelism (Some 4);
              Fun.protect
                ~finally:(fun () ->
                  Engine.set_parallelism None;
                  Database.abandon db)
                (fun () ->
                  let rel =
                    match Database.find_relation db "emp" with
                    | Some r -> r
                    | None -> Alcotest.fail "emp missing"
                  in
                  Alcotest.(check bool)
                    (label ^ ": scan spans several partitions")
                    true
                    (Tdb_storage.Relation_file.scan_partitions rel ~parts:4
                    >= 2);
                  let r =
                    match
                      Tdb_tquel.Parser.parse_statement "retrieve (e.name)"
                    with
                    | Ok (Tdb_tquel.Ast.Retrieve r) -> r
                    | _ -> Alcotest.fail "parse failed"
                  in
                  let emitted = ref 0 in
                  (match
                     Tdb_query.Executor.run_retrieve ~now:(Database.now db)
                       ~sources:[ { Tdb_query.Executor.var = "e"; rel } ]
                       r
                       ~on_tuple:(fun _ -> incr emitted)
                   with
                  | exception Tdb_error.Error (Tdb_error.Io, _) -> ()
                  | _ ->
                      Alcotest.fail
                        (label ^ ": injected fault did not surface as Io"));
                  Alcotest.(check int) (label ^ ": no partial rows") 0 !emitted;
                  Alcotest.(check int)
                    (label ^ ": Io maps to exit code 4")
                    4
                    (Tdb_error.exit_code Tdb_error.Io))))
    [
      ("eio", Fault.create ~eio_read_at:2 ());
      ("short read", Fault.create ~short_read_at:2 ());
    ]

let test_exit_codes_distinct () =
  let open Tdb_error in
  let codes = List.map exit_code [ Query; Corruption; Io; Internal ] in
  Alcotest.(check (list int)) "stable class exit codes" [ 2; 3; 4; 5 ] codes;
  Alcotest.(check int) "distinct" (List.length codes)
    (List.length (List.sort_uniq compare codes))

(* === the crash-point oracle ===========================================

   A seeded workload of multi-row replaces and deletes, two
   reorganizations (every record migrates), and a bulk copy-from (which
   checkpoints mid-statement).  A reference run snapshots the complete
   stored state — every relation, every version, implicit attributes
   included — after each statement.  Then the workload is replayed once
   per write position with a crash injected there; the reopened database
   must land on exactly one of those statement-boundary snapshots:
   recovery may lose whole trailing statements, never halves of one. *)

let oracle_seed =
  match Sys.getenv_opt "TDB_ORACLE_SEED" with
  | None -> 60102
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> 60102)

type step = Stmt of string | Sync

(* Content varies with the seed so CI's seed sweep exercises different
   page layouts and victim sets; the step structure is fixed. *)
let oracle_steps dir seed =
  let rng = Random.State.make [| seed; 0xfa17 |] in
  let datafile = Filename.concat dir "aux.copy" in
  let oc = open_out datafile in
  for _ = 1 to 300 do
    Printf.fprintf oc "%d\n" (Random.State.int rng 1000)
  done;
  close_out oc;
  let budget () = Random.State.int rng 90 in
  List.concat
    [
      [
        Stmt "create persistent interval dept (dname = c12, budget = i4)";
        Stmt "range of d is dept";
      ];
      List.init 8 (fun i ->
          Stmt
            (Printf.sprintf "append to dept (dname = \"d%02d\", budget = %d)" i
               (budget ())));
      [
        Sync;
        Stmt
          (Printf.sprintf "replace d (budget = %d) where d.budget < %d"
             (budget ()) (budget ()));
        Stmt "modify dept to hash on dname where fillfactor = 50";
        Stmt (Printf.sprintf "delete d where d.budget < %d" (budget ()));
        Sync;
        Stmt
          (Printf.sprintf "append to dept (dname = \"d99\", budget = %d)"
             (budget ()));
        Stmt "modify dept to isam on dname where fillfactor = 80";
        Stmt
          (Printf.sprintf "replace d (budget = %d) where d.budget >= %d"
             (budget ()) (budget ()));
        Stmt "create aux (g = i4)";
        Stmt (Printf.sprintf "copy aux from %S" datafile);
        Stmt "range of a is aux";
        Stmt
          (Printf.sprintf "delete a where a.g < %d" (Random.State.int rng 1000));
        Sync;
      ];
    ]

(* The full stored state, rendered order-independently: relation name
   plus every attribute of every version (reorganizations permute the
   physical order; sorting makes the dump a function of the logical
   state alone). *)
let dump_state db =
  let rows = ref [] in
  List.iter
    (fun name ->
      match Database.find_relation db name with
      | None -> ()
      | Some rel ->
          Tdb_storage.Relation_file.scan rel (fun _ tu ->
              rows :=
                (name ^ "|"
                ^ String.concat "|"
                    (Array.to_list
                       (Array.map Tdb_relation.Value.to_string tu)))
                :: !rows))
    (Database.relation_names db);
  List.sort compare !rows

let run_step db = function
  | Sync -> Database.sync db
  | Stmt s -> (
      match Engine.execute_one db s with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "oracle step %S failed: %s" s e))

(* Reference run: every statement-boundary state, plus the write count. *)
let oracle_reference dir steps =
  let fault = Fault.create () in
  match Database.create ~dir ~fault () with
  | Error e -> Alcotest.fail e
  | Ok db ->
      let snapshots = Hashtbl.create 64 in
      let remember i = Hashtbl.replace snapshots (dump_state db) i in
      remember (-1);
      List.iteri
        (fun i step ->
          run_step db step;
          remember i)
        steps;
      Database.close db;
      (snapshots, Fault.writes fault)

let test_crash_point_oracle () =
  let total_writes, snapshots =
    with_dir (fun dir ->
        let s, w = oracle_reference dir (oracle_steps dir oracle_seed) in
        (w, s))
  in
  Alcotest.(check bool)
    (Printf.sprintf "oracle workload performs enough writes (%d)" total_writes)
    true (total_writes >= 30);
  let check_crash_run ~label ~torn k =
    with_dir (fun dir ->
        let steps = oracle_steps dir oracle_seed in
        let fault =
          if torn then Fault.create ~seed:(oracle_seed + k) ~crash_at_write:k ()
          else Fault.create ~crash_after_write:k ()
        in
        (match Database.create ~dir ~fault () with
        | Error e -> Alcotest.fail e
        | Ok db ->
            (try List.iter (run_step db) steps with Fault.Crashed -> ());
            Database.abandon db);
        match Database.create ~dir () with
        | exception Tdb_error.Error (Tdb_error.Corruption, _) when torn ->
            (* refusing to serve torn mid-file damage is an acceptable
               outcome for a torn write, never for a clean one *)
            ()
        | Error e ->
            Alcotest.fail (Printf.sprintf "%s %d: reopen: %s" label k e)
        | Ok db ->
            let dump = dump_state db in
            Database.close db;
            if not (Hashtbl.mem snapshots dump) then
              Alcotest.fail
                (Printf.sprintf
                   "%s %d (TDB_ORACLE_SEED=%d): post-recovery state is not \
                    any statement boundary (%d rows)"
                   label k oracle_seed (List.length dump)))
  in
  for k = 1 to total_writes do
    check_crash_run ~label:"crash after write" ~torn:false k;
    check_crash_run ~label:"torn crash at write" ~torn:true k
  done

(* === journal durability unit tests ==================================== *)

(* A committed statement survives a crash even though its data pages
   were never flushed: the journal's post-images are the only durable
   copy, and replay reconstructs the pages from them. *)
let test_journal_commit_survives_unflushed_crash () =
  with_dir (fun dir ->
      (match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          must_ok db setup_src;
          Database.sync db;
          must_ok db (append_src 1);
          must_ok db (append_src 2);
          (* die without flushing the buffer pools *)
          Database.abandon db);
      match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          (match Database.journal_recovery db with
          | Some r ->
              Alcotest.(check bool) "statements were replayed" true
                (r.Tdb_storage.Journal.replayed >= 1)
          | None -> Alcotest.fail "expected a journal recovery report");
          Alcotest.(check (list string))
            "both committed appends replayed"
            [ "w001"; "w002" ] (surviving_names db);
          Database.close db)

(* An uncommitted statement disappears: the commit flush is this
   workload's only journal write, so tearing it leaves the statement
   without its commit record and recovery rolls it back. *)
let test_journal_uncommitted_rolls_back () =
  with_dir (fun dir ->
      (match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          must_ok db setup_src;
          must_ok db (append_src 1);
          Database.close db);
      (match Database.create ~dir ~fault:(Fault.create ~crash_at_write:1 ()) ()
       with
      | Error e -> Alcotest.fail e
      | Ok db ->
          (match Engine.execute db (append_src 2) with
          | exception Fault.Crashed -> ()
          | Ok _ -> Alcotest.fail "expected the commit flush to crash"
          | Error e -> Alcotest.fail e);
          Database.abandon db);
      match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          Alcotest.(check (list string))
            "the torn statement rolled back" [ "w001" ] (surviving_names db);
          Database.close db)

let journal_size dir =
  (Unix.stat (Tdb_storage.Journal.path ~dir)).Unix.st_size

let test_journal_checkpoint_truncates () =
  with_dir (fun dir ->
      match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          Alcotest.(check bool) "journalling on by default" true
            (Database.journaling db);
          must_ok db setup_src;
          must_ok db (append_src 1);
          let before = journal_size dir in
          Alcotest.(check bool) "records accumulated" true (before > 8);
          Database.sync db;
          Alcotest.(check bool) "checkpoint truncated the journal" true
            (journal_size dir < before && journal_size dir <= 8);
          Database.close db)

let test_journal_disable () =
  with_dir (fun dir ->
      match Database.create ~dir ~journal:false () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          Alcotest.(check bool) "journalling off" false (Database.journaling db);
          must_ok db setup_src;
          must_ok db (append_src 1);
          Database.sync db;
          Alcotest.(check bool) "no journal file written" false
            (Sys.file_exists (Tdb_storage.Journal.path ~dir));
          Database.close db)

(* === the atomic-file crash windows ===================================== *)

(* Directly probe both fault points in Atomic_file.write: a crash while
   writing the temp body, a torn temp body, and the window between the
   temp-file fsync and the rename.  The target file must read as the old
   content after every one of them. *)
let test_atomic_file_crash_windows () =
  with_dir (fun dir ->
      let path = Filename.concat dir "meta.txt" in
      let read_file () =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Tdb_storage.Atomic_file.write ~path "old content";
      let crash_cases =
        [
          ("crash in temp body", Fault.create ~crash_after_write:1 ());
          ("torn temp body", Fault.create ~seed:7 ~crash_at_write:1 ());
          ("crash before rename", Fault.create ~crash_after_write:2 ());
        ]
      in
      List.iter
        (fun (label, fault) ->
          (match Tdb_storage.Atomic_file.write ~fault ~path "NEW CONTENT!" with
          | exception Fault.Crashed -> ()
          | () -> Alcotest.fail (label ^ ": expected a crash"));
          Alcotest.(check string)
            (label ^ ": old content intact")
            "old content" (read_file ()))
        crash_cases;
      (* the pre-rename window leaves a complete temp file behind; it
         must not shadow the real one on reread *)
      Alcotest.(check bool) "stray temp file is inert" true
        (read_file () = "old content");
      Tdb_storage.Atomic_file.write ~path "NEW CONTENT!";
      Alcotest.(check string) "faultless write lands" "NEW CONTENT!"
        (read_file ()))

(* The same windows at the database level: a crash exactly between the
   catalog's temp-file fsync and its rename must leave the old catalog
   (and the relations it describes) fully usable. *)
let test_catalog_and_clock_survive_atomic_crash () =
  for k = 1 to 4 do
    with_dir (fun dir ->
        (match Database.create ~dir () with
        | Error e -> Alcotest.fail e
        | Ok db ->
            must_ok db setup_src;
            for i = 1 to 3 do
              must_ok db (append_src i)
            done;
            Database.close db);
        (match Database.create ~dir ~fault:(Fault.create ~crash_after_write:k ())
               ()
         with
        | Error e -> Alcotest.fail e
        | Ok db ->
            (try
               (match
                  Engine.execute db "create persistent interval extra (x = i4);"
                with
               | Ok _ | Error _ -> ());
               Tdb_time.Clock.advance (Database.clock db) 1000;
               Database.sync db
             with Fault.Crashed -> ());
            Database.abandon db);
        match Database.create ~dir () with
        | Error e ->
            Alcotest.fail (Printf.sprintf "catalog crash %d: reopen: %s" k e)
        | Ok db ->
            Alcotest.(check (list string))
              (Printf.sprintf "catalog crash %d: emp rows intact" k)
              [ "w001"; "w002"; "w003" ] (surviving_names db);
            let names = Database.relation_names db in
            Alcotest.(check bool)
              (Printf.sprintf
                 "catalog crash %d: catalog is old or new, never mixed" k)
              true
              (names = [ "emp" ] || names = [ "emp"; "extra" ]);
            (* the clock file parsed (old or advanced, never torn) *)
            let now = Tdb_time.Chronon.to_seconds (Database.now db) in
            Alcotest.(check bool)
              (Printf.sprintf "catalog crash %d: clock readable" k)
              true (now > 0);
            Database.close db)
  done

(* === the fence sidecar is advisory ===================================== *)

(* A corrupt or torn "<name>.pages.fences" sidecar must be distrusted and
   rebuilt from the pages; pruned query results are bit-identical. *)
let test_corrupt_fence_sidecar_rebuilt () =
  let pruned_query db =
    match
      Engine.execute db
        "range of e is emp; retrieve (e.name, e.salary) as of \"1980-01-01\";"
    with
    | Ok outcomes ->
        List.concat_map
          (function
            | Engine.Rows { tuples; _ } ->
                List.map
                  (fun t ->
                    String.concat "|"
                      (Array.to_list
                         (Array.map Tdb_relation.Value.to_string t)))
                  tuples
            | _ -> [])
          outcomes
    | Error e -> Alcotest.fail ("pruned query failed: " ^ e)
  in
  List.iter
    (fun (label, damage) ->
      with_dir (fun dir ->
          (match Database.create ~dir () with
          | Error e -> Alcotest.fail e
          | Ok db ->
              must_ok db setup_src;
              for i = 1 to 30 do
                must_ok db (append_src i)
              done;
              Database.close db);
          let sidecar = Filename.concat dir "emp.pages.fences" in
          Alcotest.(check bool)
            (label ^ ": sidecar was persisted")
            true (Sys.file_exists sidecar);
          let reference =
            match Database.create ~dir () with
            | Error e -> Alcotest.fail e
            | Ok db ->
                let r = pruned_query db in
                Database.close db;
                r
          in
          damage sidecar;
          match Database.create ~dir () with
          | Error e -> Alcotest.fail (label ^ ": reopen: " ^ e)
          | Ok db ->
              Alcotest.(check (list string))
                (label ^ ": pruned rows bit-identical after rebuild")
                reference (pruned_query db);
              Database.close db))
    [
      ( "flipped bytes",
        fun sidecar ->
          let fd = Unix.openfile sidecar [ Unix.O_WRONLY ] 0o644 in
          ignore (Unix.write_substring fd "garbage!" 0 8);
          Unix.close fd );
      ( "torn tail",
        fun sidecar ->
          let size = (Unix.stat sidecar).Unix.st_size in
          let fd = Unix.openfile sidecar [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd (max 1 (size / 2));
          Unix.close fd );
    ]

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "counter plan transparent" `Quick
          test_counter_plan_is_transparent;
        Alcotest.test_case "dead plan raises" `Quick test_dead_plan_raises;
        Alcotest.test_case "crash after every write" `Quick
          test_crash_after_every_write;
        Alcotest.test_case "torn crash recovers or refuses" `Quick
          test_torn_crash_recovers_or_refuses;
        Alcotest.test_case "flipped byte never served" `Quick
          test_flipped_byte_never_served;
        Alcotest.test_case "EIO surfaces as Io" `Quick
          test_eio_read_surfaces_as_io_error;
        Alcotest.test_case "fault inside a worker partition" `Quick
          test_fault_in_worker_partition;
        Alcotest.test_case "exit codes" `Quick test_exit_codes_distinct;
        Alcotest.test_case "crash-point oracle" `Quick test_crash_point_oracle;
        Alcotest.test_case "journal replays unflushed commits" `Quick
          test_journal_commit_survives_unflushed_crash;
        Alcotest.test_case "journal rolls back uncommitted" `Quick
          test_journal_uncommitted_rolls_back;
        Alcotest.test_case "journal checkpoint truncates" `Quick
          test_journal_checkpoint_truncates;
        Alcotest.test_case "journal can be disabled" `Quick test_journal_disable;
        Alcotest.test_case "atomic-file crash windows" `Quick
          test_atomic_file_crash_windows;
        Alcotest.test_case "catalog and clock survive atomic crash" `Quick
          test_catalog_and_clock_survive_atomic_crash;
        Alcotest.test_case "corrupt fence sidecar rebuilt" `Quick
          test_corrupt_fence_sidecar_rebuilt;
      ] );
  ]
