(* Fault injection and crash consistency.

   The centrepiece is the crash-at-every-write harness: a reference run
   counts the page writes a small TQuel workload performs, then the
   workload is replayed once per write position with a plan that kills
   the process right after that write.  Every crash site must reopen to
   a checksum-clean database whose contents are a prefix of the appended
   sequence — never a suffix, never garbage. *)

module Disk = Tdb_storage.Disk
module Page = Tdb_storage.Page
module Fault = Tdb_storage.Fault
module Database = Tdb_core.Database
module Engine = Tdb_core.Engine

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tdb_fault_%d_%d" (Unix.getpid ()) !counter)
    in
    Sys.mkdir dir 0o755;
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- determinism ------------------------------------------------------- *)

let test_determinism () =
  (* The same seed must tear the same writes at the same lengths. *)
  let torn_lengths seed =
    let fault = Fault.create ~seed ~torn_write_at:3 () in
    let acc = ref [] in
    for _ = 1 to 5 do
      (match Fault.on_write fault ~len:Page.size with
      | `Torn n -> acc := n :: !acc
      | `Ok -> ()
      | _ -> Alcotest.fail "unexpected fault decision")
    done;
    !acc
  in
  Alcotest.(check (list int)) "same seed, same tears" (torn_lengths 42)
    (torn_lengths 42);
  let torn a = List.length (torn_lengths a) in
  Alcotest.(check int) "exactly one tear per plan" 1 (torn 42);
  Alcotest.(check int) "other seeds tear once too" 1 (torn 43)

let test_counter_plan_is_transparent () =
  let fault = Fault.create () in
  for _ = 1 to 4 do
    match Fault.on_write fault ~len:Page.size with
    | `Ok -> ()
    | _ -> Alcotest.fail "counting plan must not inject"
  done;
  (match Fault.on_read fault ~len:Page.size with
  | `Ok -> ()
  | _ -> Alcotest.fail "counting plan must not inject");
  Alcotest.(check int) "writes counted" 4 (Fault.writes fault);
  Alcotest.(check int) "reads counted" 1 (Fault.reads fault)

let test_dead_plan_raises () =
  let fault = Fault.create ~crash_after_write:1 () in
  (match Fault.on_write fault ~len:Page.size with
  | `Crash_after -> ()
  | _ -> Alcotest.fail "expected crash-after on write 1");
  Alcotest.(check bool) "plan dead" true (Fault.is_dead fault);
  (match Fault.on_write fault ~len:Page.size with
  | exception Fault.Crashed -> ()
  | _ -> Alcotest.fail "dead plan accepted a write");
  match Fault.on_read fault ~len:Page.size with
  | exception Fault.Crashed -> ()
  | _ -> Alcotest.fail "dead plan accepted a read"

(* --- the workload ------------------------------------------------------ *)

let n_appends = 12

let setup_src =
  "create persistent interval emp (name = c20, salary = i4);\n\
   range of e is emp;"

let append_src i =
  Printf.sprintf "append to emp (name = \"w%03d\", salary = %d);" i (1000 + i)

let must_ok db src =
  match Engine.execute db src with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("statement failed: " ^ e)

(* Runs setup + appends, checkpointing after each append so every append
   reaches the disk (otherwise the buffer pool absorbs the whole workload
   and only the final flush writes pages).  Returns whether the plan
   killed the process part-way.  Statements after the crash are not
   attempted: the process is dead. *)
let run_workload db =
  try
    must_ok db setup_src;
    for i = 1 to n_appends do
      (match Engine.execute db (append_src i) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("append failed: " ^ e));
      Database.sync db
    done;
    `Ran
  with Fault.Crashed -> `Crashed

(* The committed names, in scan order. *)
let surviving_names db =
  match Engine.execute db "range of e is emp; retrieve (e.name);" with
  | Ok outcomes ->
      List.concat_map
        (function
          | Engine.Rows { tuples; _ } ->
              List.map
                (fun t ->
                  match t.(0) with
                  | Tdb_relation.Value.Str s -> s
                  | v -> Tdb_relation.Value.to_string v)
                tuples
          | _ -> [])
        outcomes
  | Error e -> Alcotest.fail ("survivor scan failed: " ^ e)

let expected_prefix k = List.init k (fun i -> Printf.sprintf "w%03d" (i + 1))

let is_prefix_of_appends names =
  names = expected_prefix (List.length names)

(* Counts the page writes the full workload performs against real files. *)
let count_workload_writes () =
  with_dir (fun dir ->
      let fault = Fault.create () in
      match Database.create ~dir ~fault () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          (match run_workload db with
          | `Ran -> ()
          | `Crashed -> Alcotest.fail "counting run crashed");
          Database.close db;
          Fault.writes fault)

(* --- crash at every write --------------------------------------------- *)

let test_crash_after_every_write () =
  let total_writes = count_workload_writes () in
  Alcotest.(check bool)
    (Printf.sprintf "workload performs enough writes (%d)" total_writes)
    true
    (total_writes >= n_appends);
  for k = 1 to total_writes do
    with_dir (fun dir ->
        (* Run until the crash... *)
        let fault = Fault.create ~crash_after_write:k () in
        (match Database.create ~dir ~fault () with
        | Error e -> Alcotest.fail e
        | Ok db ->
            (match run_workload db with `Ran | `Crashed -> ());
            Database.abandon db);
        (* ...then reopen without faults, as a fresh process would. *)
        match Database.create ~dir () with
        | Error e ->
            Alcotest.fail (Printf.sprintf "crash at write %d: reopen: %s" k e)
        | Ok db ->
            List.iter
              (fun (name, r) ->
                Alcotest.fail
                  (Printf.sprintf
                     "crash at write %d: page-atomic crash needed repair of \
                      %s: %s"
                     k name
                     (Format.asprintf "%a" Disk.pp_recovery r)))
              (Database.recoveries db);
            let names = surviving_names db in
            Alcotest.(check bool)
              (Printf.sprintf
                 "crash at write %d: %d survivors form a prefix" k
                 (List.length names))
              true
              (is_prefix_of_appends names);
            Database.close db)
  done

let test_torn_crash_recovers_or_refuses () =
  (* The torn-crash model: the k-th write persists only a prefix of the
     page.  Reopening must either repair (torn tail) or refuse
     (mid-file damage) — never serve unverified bytes. *)
  let total_writes = count_workload_writes () in
  let repaired = ref 0 in
  let refused = ref 0 in
  for k = 1 to total_writes do
    with_dir (fun dir ->
        let fault = Fault.create ~seed:(0xC0FFEE + k) ~crash_at_write:k () in
        (match Database.create ~dir ~fault () with
        | Error e -> Alcotest.fail e
        | Ok db ->
            (match run_workload db with `Ran | `Crashed -> ());
            Database.abandon db);
        match Database.create ~dir () with
        | exception Tdb_error.Error (Tdb_error.Corruption, _) -> incr refused
        | Error e ->
            Alcotest.fail (Printf.sprintf "torn write %d: reopen: %s" k e)
        | Ok db ->
            if Database.recoveries db <> [] then incr repaired;
            let names = surviving_names db in
            Alcotest.(check bool)
              (Printf.sprintf "torn write %d: clean prefix" k)
              true
              (is_prefix_of_appends names);
            Database.close db)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some torn tails were repaired (%d repaired, %d refused)"
       !repaired !refused)
    true (!repaired > 0)

(* --- checksum end to end ----------------------------------------------- *)

let test_flipped_byte_never_served () =
  (* Flip one byte in the data page file of a closed database; reopening
     and scanning must report Corruption, not altered tuples. *)
  with_dir (fun dir ->
      (match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          must_ok db setup_src;
          for i = 1 to 3 do
            must_ok db (append_src i)
          done;
          Database.close db);
      let path = Filename.concat dir "emp.pages" in
      let size = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "data file has pages" true (size >= Page.size);
      (* Middle of the first page: tuple payload, not the trailer. *)
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      ignore (Unix.lseek fd 40 Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
      ignore (Unix.lseek fd 40 Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      match Database.create ~dir () with
      | exception Tdb_error.Error (Tdb_error.Corruption, _) -> ()
      | Error _ -> Alcotest.fail "corruption misreported as a soft error"
      | Ok db -> (
          (* A single bad page that happens to be the tail may have been
             truncated by recovery; in that case the flip must not appear
             in the data.  Otherwise the scan must raise Corruption. *)
          match surviving_names db with
          | names ->
              Database.close db;
              Alcotest.(check bool) "served names untainted" true
                (is_prefix_of_appends names)
          | exception Tdb_error.Error (Tdb_error.Corruption, _) ->
              Database.abandon db))

let test_eio_read_surfaces_as_io_error () =
  with_dir (fun dir ->
      (match Database.create ~dir () with
      | Error e -> Alcotest.fail e
      | Ok db ->
          must_ok db setup_src;
          for i = 1 to 3 do
            must_ok db (append_src i)
          done;
          Database.close db);
      let fault = Fault.create ~eio_read_at:1 () in
      match Database.create ~dir ~fault () with
      | Error e -> Alcotest.fail e
      | Ok db -> (
          match surviving_names db with
          | exception Tdb_error.Error (Tdb_error.Io, _) ->
              Database.abandon db
          | _ ->
              Database.abandon db;
              Alcotest.fail "injected EIO did not surface as an Io error"))

(* --- faults under parallel execution ---------------------------------- *)

(* A read fault firing inside a worker partition must surface exactly as
   it does sequentially: one structured Io error (exit code 4) after all
   workers join — no hang, no crash, and no partially emitted rows. *)
let test_fault_in_worker_partition () =
  List.iter
    (fun (label, fault) ->
      with_dir (fun dir ->
          (match Database.create ~dir () with
          | Error e -> Alcotest.fail e
          | Ok db ->
              must_ok db setup_src;
              for i = 1 to 60 do
                must_ok db (append_src i)
              done;
              Database.close db);
          match Database.create ~dir ~fault () with
          | Error e -> Alcotest.fail e
          | Ok db ->
              Engine.set_parallelism (Some 4);
              Fun.protect
                ~finally:(fun () ->
                  Engine.set_parallelism None;
                  Database.abandon db)
                (fun () ->
                  let rel =
                    match Database.find_relation db "emp" with
                    | Some r -> r
                    | None -> Alcotest.fail "emp missing"
                  in
                  Alcotest.(check bool)
                    (label ^ ": scan spans several partitions")
                    true
                    (Tdb_storage.Relation_file.scan_partitions rel ~parts:4
                    >= 2);
                  let r =
                    match
                      Tdb_tquel.Parser.parse_statement "retrieve (e.name)"
                    with
                    | Ok (Tdb_tquel.Ast.Retrieve r) -> r
                    | _ -> Alcotest.fail "parse failed"
                  in
                  let emitted = ref 0 in
                  (match
                     Tdb_query.Executor.run_retrieve ~now:(Database.now db)
                       ~sources:[ { Tdb_query.Executor.var = "e"; rel } ]
                       r
                       ~on_tuple:(fun _ -> incr emitted)
                   with
                  | exception Tdb_error.Error (Tdb_error.Io, _) -> ()
                  | _ ->
                      Alcotest.fail
                        (label ^ ": injected fault did not surface as Io"));
                  Alcotest.(check int) (label ^ ": no partial rows") 0 !emitted;
                  Alcotest.(check int)
                    (label ^ ": Io maps to exit code 4")
                    4
                    (Tdb_error.exit_code Tdb_error.Io))))
    [
      ("eio", Fault.create ~eio_read_at:2 ());
      ("short read", Fault.create ~short_read_at:2 ());
    ]

let test_exit_codes_distinct () =
  let open Tdb_error in
  let codes = List.map exit_code [ Query; Corruption; Io; Internal ] in
  Alcotest.(check (list int)) "stable class exit codes" [ 2; 3; 4; 5 ] codes;
  Alcotest.(check int) "distinct" (List.length codes)
    (List.length (List.sort_uniq compare codes))

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "counter plan transparent" `Quick
          test_counter_plan_is_transparent;
        Alcotest.test_case "dead plan raises" `Quick test_dead_plan_raises;
        Alcotest.test_case "crash after every write" `Quick
          test_crash_after_every_write;
        Alcotest.test_case "torn crash recovers or refuses" `Quick
          test_torn_crash_recovers_or_refuses;
        Alcotest.test_case "flipped byte never served" `Quick
          test_flipped_byte_never_served;
        Alcotest.test_case "EIO surfaces as Io" `Quick
          test_eio_read_surfaces_as_io_error;
        Alcotest.test_case "fault inside a worker partition" `Quick
          test_fault_in_worker_partition;
        Alcotest.test_case "exit codes" `Quick test_exit_codes_distinct;
      ] );
  ]
