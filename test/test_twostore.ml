module Two_level_store = Tdb_twostore.Two_level_store
module History_store = Tdb_twostore.History_store
module Secondary_index = Tdb_twostore.Secondary_index
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Disk = Tdb_storage.Disk
module Tid = Tdb_storage.Tid
module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Chronon = Tdb_time.Chronon

let attr name ty = { Schema.name; ty }

let schema =
  Schema.create_exn
    ~db_type:(Db_type.Temporal Db_type.Interval)
    [
      attr "id" Attr_type.I4;
      attr "amount" Attr_type.I4;
      attr "seq" Attr_type.I4;
      attr "string" (Attr_type.C 96);
    ]

let t s = Value.Time (Chronon.of_seconds s)

let tuple id =
  [| Value.Int id; Value.Int (id * 10); Value.Int 0; Value.Str "x";
     t 100; Value.Time Chronon.forever; t 100; Value.Time Chronon.forever |]

let n_tuples = 64

let make ~clustered =
  Two_level_store.create ~schema
    ~organization:(Relation_file.Hash { key_attr = 0; fillfactor = 100 })
    ~clustered
    (List.init n_tuples tuple)

let bump_seq tu =
  (match tu.(2) with Value.Int s -> tu.(2) <- Value.Int (s + 1) | _ -> ());
  tu

let evolve store ~rounds =
  for r = 1 to rounds do
    for id = 0 to n_tuples - 1 do
      ignore
        (Two_level_store.replace store
           ~now:(Chronon.of_seconds (1000 + (r * 100)))
           ~key:(Value.Int id) bump_seq)
    done
  done

(* --- history store --- *)

let test_history_store_chain () =
  let pool = Buffer_pool.create (Disk.create_mem ()) (Io_stats.create ()) in
  let hs = History_store.create pool ~tuple_size:124 ~clustered:true in
  let mk i = Tuple.encode schema (Tuple.set_time (tuple i) 2 (Chronon.of_seconds i)) in
  ignore mk;
  let t1 = History_store.push hs ~now:(Chronon.of_seconds 100)
      ~cluster:(Value.Int 1)
      ~tuple:(Tuple.encode schema (tuple 1)) ~prev:None in
  let t2 = History_store.push hs ~now:(Chronon.of_seconds 101)
      ~cluster:(Value.Int 1)
      ~tuple:(Tuple.encode schema (tuple 2)) ~prev:(Some t1) in
  let seen = ref [] in
  History_store.walk hs ~head:(Some t2) (fun tid _ -> seen := tid :: !seen);
  Alcotest.(check int) "walk visits both" 2 (List.length !seen);
  Alcotest.(check bool) "newest first" true
    (match List.rev !seen with a :: b :: _ -> Tid.equal a t2 && Tid.equal b t1 | _ -> false)

let test_history_capacity () =
  (* 124-byte tuples + 4-byte pointer -> 7 per page, the paper's "28
     history versions into 4 pages". *)
  let pool = Buffer_pool.create (Disk.create_mem ()) (Io_stats.create ()) in
  let hs = History_store.create pool ~tuple_size:124 ~clustered:true in
  let prev = ref None in
  for i = 1 to 28 do
    prev :=
      Some
        (History_store.push hs ~now:(Chronon.of_seconds (100 + i))
           ~cluster:(Value.Int 1)
           ~tuple:(Tuple.encode schema (tuple 1)) ~prev:!prev)
  done;
  Alcotest.(check int) "28 versions on 4 pages" 4 (History_store.npages hs)

let test_clustering_separates_tuples () =
  let pool = Buffer_pool.create (Disk.create_mem ()) (Io_stats.create ()) in
  let hs = History_store.create pool ~tuple_size:124 ~clustered:true in
  (* interleave two tuples' versions; clusters must not share pages *)
  let head_a = ref None and head_b = ref None in
  for i = 1 to 10 do
    head_a :=
      Some
        (History_store.push hs ~now:(Chronon.of_seconds (100 + i))
           ~cluster:(Value.Int 1)
           ~tuple:(Tuple.encode schema (tuple 1)) ~prev:!head_a);
    head_b :=
      Some
        (History_store.push hs ~now:(Chronon.of_seconds (100 + i))
           ~cluster:(Value.Int 2)
           ~tuple:(Tuple.encode schema (tuple 2)) ~prev:!head_b)
  done;
  (* 10 versions each, 7/page -> 2 pages per cluster = 4 total *)
  Alcotest.(check int) "two clusters, two pages each" 4 (History_store.npages hs)

(* --- two-level store --- *)

let test_primary_never_grows () =
  let store = make ~clustered:true in
  let before = Two_level_store.primary_pages store in
  evolve store ~rounds:6;
  Alcotest.(check int) "primary size constant" before
    (Two_level_store.primary_pages store);
  Alcotest.(check bool) "history grew" true (Two_level_store.history_pages store > 0)

let test_current_queries_constant_cost () =
  let store = make ~clustered:true in
  let lookup_cost () =
    Two_level_store.reset_io store;
    Two_level_store.current_lookup store (Value.Int 5) (fun _ -> ());
    (Two_level_store.io store).Io_stats.reads
  in
  let c0 = lookup_cost () in
  evolve store ~rounds:6;
  Alcotest.(check int) "lookup cost unchanged by updates" c0 (lookup_cost ());
  Alcotest.(check int) "one page" 1 c0

let test_version_scan_completeness () =
  let store = make ~clustered:true in
  evolve store ~rounds:3;
  let seen = ref [] in
  Two_level_store.version_scan store (Value.Int 5) (fun tu -> seen := tu :: !seen);
  (* 1 current + 2 history versions per round *)
  Alcotest.(check int) "1 + 2*3 versions" 7 (List.length !seen);
  (* newest (current) version has seq = 3 *)
  match !seen with
  | l -> (
      match List.rev l with
      | cur :: _ ->
          Alcotest.(check bool) "current first, seq = rounds" true
            (Value.equal cur.(2) (Value.Int 3))
      | [] -> Alcotest.fail "empty")

let test_clustered_version_scan_cheaper () =
  let simple = make ~clustered:false in
  let clustered = make ~clustered:true in
  evolve simple ~rounds:8;
  evolve clustered ~rounds:8;
  let scan_cost store =
    Two_level_store.reset_io store;
    Two_level_store.version_scan store (Value.Int 5) (fun _ -> ());
    (Two_level_store.io store).Io_stats.reads
  in
  let s = scan_cost simple and c = scan_cost clustered in
  (* 16 history versions: clustered = 1 + ceil(16/7) = 4 pages *)
  Alcotest.(check int) "clustered cost" 4 c;
  Alcotest.(check bool)
    (Printf.sprintf "simple (%d) strictly worse than clustered (%d)" s c)
    true (s > c)

let test_equivalence_with_conventional () =
  (* The set of versions stored by the two-level store equals what the
     conventional temporal relation stores under the same updates. *)
  let store = make ~clustered:true in
  evolve store ~rounds:4;
  let conventional = Relation_file.create ~name:"conv" ~schema () in
  List.iter
    (fun tu -> ignore (Relation_file.insert conventional tu))
    (List.init n_tuples tuple);
  Relation_file.modify conventional
    (Relation_file.Hash { key_attr = 0; fillfactor = 100 });
  (* replay the same updates through the section-4 semantics *)
  for r = 1 to 4 do
    let now = Chronon.of_seconds (1000 + (r * 100)) in
    let victims = ref [] in
    Relation_file.scan conventional (fun tid tu ->
        if
          Chronon.is_forever
            (Tuple.get_time tu (Option.get (Schema.transaction_stop_index schema)))
          && Chronon.is_forever
               (Tuple.get_time tu (Option.get (Schema.valid_to_index schema)))
        then victims := (tid, tu) :: !victims);
    List.iter
      (fun (tid, tu) ->
        let stamped =
          Tuple.set_time tu
            (Option.get (Schema.transaction_stop_index schema))
            now
        in
        Relation_file.update conventional tid stamped;
        let terminated = Array.copy tu in
        terminated.(Option.get (Schema.valid_to_index schema)) <- Value.Time now;
        terminated.(Option.get (Schema.transaction_start_index schema)) <-
          Value.Time now;
        ignore (Relation_file.insert conventional terminated);
        let fresh = bump_seq (Array.copy tu) in
        fresh.(Option.get (Schema.valid_from_index schema)) <- Value.Time now;
        fresh.(Option.get (Schema.transaction_start_index schema)) <- Value.Time now;
        ignore (Relation_file.insert conventional fresh))
      !victims
  done;
  let collect_conv = ref [] in
  Relation_file.scan conventional (fun _ tu -> collect_conv := tu :: !collect_conv);
  let collect_2l = ref [] in
  Two_level_store.scan_all store (fun tu -> collect_2l := tu :: !collect_2l);
  let key tu = Array.map Value.to_string tu |> Array.to_list in
  let norm l = List.sort compare (List.map key l) in
  Alcotest.(check int) "same version count"
    (List.length !collect_conv) (List.length !collect_2l);
  Alcotest.(check bool) "identical version multisets" true
    (norm !collect_conv = norm !collect_2l)

let test_delete_removes_from_primary () =
  let store = make ~clustered:true in
  let n = Two_level_store.delete store ~now:(Chronon.of_seconds 2000)
      ~key:(Value.Int 5) in
  Alcotest.(check int) "one victim" 1 n;
  let found = ref 0 in
  Two_level_store.current_lookup store (Value.Int 5) (fun _ -> incr found);
  Alcotest.(check int) "gone from primary" 0 !found;
  (* but its history survives in the history store *)
  let versions = ref 0 in
  Two_level_store.version_scan store (Value.Int 5) (fun _ -> incr versions);
  (* version_scan needs the primary entry for the chain head; a deleted
     tuple's history is reachable through scan_all *)
  let hist = ref 0 in
  Two_level_store.scan_all store (fun tu ->
      if Value.equal tu.(0) (Value.Int 5) then incr hist);
  Alcotest.(check bool) "history preserved" true (!hist >= 2);
  ignore !versions

let test_append_visible () =
  let store = make ~clustered:true in
  Two_level_store.append store ~now:(Chronon.of_seconds 3000) (tuple 999);
  let found = ref 0 in
  Two_level_store.current_lookup store (Value.Int 999) (fun _ -> incr found);
  Alcotest.(check int) "appended tuple current" 1 !found

let test_rejects_non_temporal () =
  let s = Schema.create_exn ~db_type:Db_type.Rollback [ attr "id" Attr_type.I4 ] in
  Alcotest.(check bool) "rollback schema rejected" true
    (try
       ignore
         (Two_level_store.create ~schema:s
            ~organization:(Relation_file.Hash { key_attr = 0; fillfactor = 100 })
            ~clustered:true []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "heap primary rejected" true
    (try
       ignore
         (Two_level_store.create ~schema ~organization:Relation_file.Heap
            ~clustered:true []);
       false
     with Invalid_argument _ -> true)

(* --- secondary indexes --- *)

let test_index_lookup () =
  List.iter
    (fun structure ->
      let entries =
        List.init 500 (fun i ->
            (Value.Int (i mod 50), { Tid.page = i / 8; slot = i mod 8 }))
      in
      let idx =
        Secondary_index.build ~structure ~key_type:Attr_type.I4 entries
      in
      Alcotest.(check int) "entry count" 500 (Secondary_index.entry_count idx);
      let tids = Secondary_index.lookup idx (Value.Int 7) in
      Alcotest.(check int) "10 entries for key 7" 10 (List.length tids);
      Alcotest.(check int) "absent key" 0
        (List.length (Secondary_index.lookup idx (Value.Int 999))))
    [ Secondary_index.Heap_index; Secondary_index.Hash_index ]

let test_index_insert_remove () =
  List.iter
    (fun structure ->
      let idx = Secondary_index.create ~structure ~key_type:Attr_type.I4 () in
      let tid = { Tid.page = 3; slot = 4 } in
      Secondary_index.insert idx (Value.Int 9) tid;
      Secondary_index.insert idx (Value.Int 9) { Tid.page = 5; slot = 1 };
      Alcotest.(check int) "two entries" 2
        (List.length (Secondary_index.lookup idx (Value.Int 9)));
      Alcotest.(check bool) "remove hits" true
        (Secondary_index.remove idx (Value.Int 9) tid);
      Alcotest.(check int) "one left" 1
        (List.length (Secondary_index.lookup idx (Value.Int 9)));
      Alcotest.(check bool) "remove misses" false
        (Secondary_index.remove idx (Value.Int 9) tid))
    [ Secondary_index.Heap_index; Secondary_index.Hash_index ]

let test_index_page_economy () =
  (* 8-byte entries, 102/page: 1024 entries on 11 pages (the paper's
     current-index size). *)
  let entries =
    List.init 1024 (fun i -> (Value.Int i, { Tid.page = i / 8; slot = i mod 8 }))
  in
  let idx =
    Secondary_index.build ~structure:Secondary_index.Heap_index
      ~key_type:Attr_type.I4 entries
  in
  Alcotest.(check int) "11 pages" 11 (Secondary_index.npages idx)

let test_hash_index_lookup_cheap () =
  let entries =
    List.init 10240 (fun i ->
        (Value.Int (i mod 1024), { Tid.page = i / 8; slot = i mod 8 }))
  in
  let idx =
    Secondary_index.build ~structure:Secondary_index.Hash_index
      ~key_type:Attr_type.I4 entries
  in
  Secondary_index.reset_io idx;
  ignore (Secondary_index.lookup idx (Value.Int 12));
  let hash_reads = (Secondary_index.io idx).Io_stats.reads in
  let heap =
    Secondary_index.build ~structure:Secondary_index.Heap_index
      ~key_type:Attr_type.I4 entries
  in
  Secondary_index.reset_io heap;
  ignore (Secondary_index.lookup heap (Value.Int 12));
  let heap_reads = (Secondary_index.io heap).Io_stats.reads in
  Alcotest.(check bool)
    (Printf.sprintf "hash (%d) beats heap scan (%d)" hash_reads heap_reads)
    true
    (hash_reads * 10 < heap_reads)

let test_attached_index_maintained () =
  (* An attached 2-level index must stay consistent through appends,
     replaces and deletes. *)
  let store = make ~clustered:true in
  Two_level_store.attach_index store ~name:"by_amount" ~attr:1
    ~structure:Secondary_index.Hash_index;
  let check_consistent msg =
    (* every current tuple is findable through the index by its amount,
       and the index returns nothing stale *)
    let currents = ref [] in
    Two_level_store.current_scan store (fun tu -> currents := tu :: !currents);
    List.iter
      (fun tu ->
        let hits = ref 0 in
        Two_level_store.indexed_lookup store ~name:"by_amount" tu.(1)
          (fun found ->
            if Value.equal found.(0) tu.(0) then incr hits);
        if !hits < 1 then
          Alcotest.failf "%s: tuple %s unreachable via index" msg
            (Value.to_string tu.(0)))
      !currents;
    let entries, _ = Two_level_store.index_stats store ~name:"by_amount" ~current:true in
    Alcotest.(check int) (msg ^ ": index entries = current tuples")
      (List.length !currents) entries
  in
  check_consistent "fresh";
  evolve store ~rounds:3;
  check_consistent "after evolution";
  ignore (Two_level_store.delete store ~now:(Chronon.of_seconds 9000) ~key:(Value.Int 7));
  check_consistent "after delete";
  Two_level_store.append store ~now:(Chronon.of_seconds 9500) (tuple 777);
  check_consistent "after append";
  (* the history level grew with evolution: 2 versions per replace round
     per tuple, plus the delete's two closing versions *)
  let h_entries, _ = Two_level_store.index_stats store ~name:"by_amount" ~current:false in
  Alcotest.(check int) "history index entries" ((n_tuples * 3 * 2) + 2) h_entries

let test_indexed_lookup_cost () =
  let store = make ~clustered:true in
  evolve store ~rounds:8;
  Two_level_store.attach_index store ~name:"by_amount" ~attr:1
    ~structure:Secondary_index.Hash_index;
  Two_level_store.reset_io store;
  let n = ref 0 in
  Two_level_store.indexed_lookup store ~name:"by_amount" (Value.Int 50)
    (fun _ -> incr n);
  Alcotest.(check int) "one current match" 1 !n;
  (* only the primary store is touched for the data fetch: 1 page *)
  Alcotest.(check int) "one data page"
    1 (Two_level_store.io store).Io_stats.reads

let prop_index_complete =
  QCheck2.Test.make ~name:"secondary index: lookup finds every inserted tid"
    ~count:30
    QCheck2.Gen.(
      pair (oneofl [ Secondary_index.Heap_index; Secondary_index.Hash_index ])
        (list_size (int_range 0 300) (int_range 0 40)))
    (fun (structure, keys) ->
      let idx = Secondary_index.create ~structure ~key_type:Attr_type.I4 () in
      List.iteri
        (fun i k -> Secondary_index.insert idx (Value.Int k) { Tid.page = i; slot = 0 })
        keys;
      List.for_all
        (fun k ->
          let expected = List.length (List.filter (( = ) k) keys) in
          List.length (Secondary_index.lookup idx (Value.Int k)) = expected)
        (List.sort_uniq compare keys))

(* --- epoch-fenced snapshot boundaries --- *)

let test_history_boundary_within () =
  let pool = Buffer_pool.create (Disk.create_mem ()) (Io_stats.create ()) in
  let hs = History_store.create pool ~tuple_size:124 ~clustered:true in
  let push i prev =
    History_store.push hs ~now:(Chronon.of_seconds (100 + i))
      ~cluster:(Value.Int 1)
      ~tuple:(Tuple.encode schema (tuple i))
      ~prev
  in
  let t1 = push 1 None in
  let t2 = push 2 (Some t1) in
  let b = History_store.boundary hs in
  (* same cluster, so this lands in the free tail of t1/t2's page: the
     page is within the boundary but the slot is not *)
  let t3 = push 3 (Some t2) in
  Alcotest.(check bool) "t3 shares the page" true (t3.Tid.page = t1.Tid.page);
  Alcotest.(check bool) "t1 within" true (History_store.within b t1);
  Alcotest.(check bool) "t2 within" true (History_store.within b t2);
  Alcotest.(check bool) "t3 beyond (slot)" false (History_store.within b t3);
  (* a fresh cluster allocates a new page: beyond by the page bound *)
  let t4 =
    History_store.push hs ~now:(Chronon.of_seconds 200)
      ~cluster:(Value.Int 2)
      ~tuple:(Tuple.encode schema (tuple 4))
      ~prev:None
  in
  Alcotest.(check bool) "t4 beyond (page)" false (History_store.within b t4)

let ts_index = Option.get (Schema.transaction_start_index schema)
let te_index = Option.get (Schema.transaction_stop_index schema)

let visible_at s tu =
  match (tu.(ts_index), tu.(te_index)) with
  | Value.Time a, Value.Time b ->
      Chronon.compare a s <= 0 && Chronon.compare s b < 0
  | _ -> false

let test_snapshot_scan_fenced () =
  let store = make ~clustered:true in
  (* retire ids 32..63 before the boundary so the versions visible at the
     boundary stamp (500) all live where later statements never write:
     untouched primary slots (ids 0..31) and pre-boundary history records
     (ids 32..63, superseded at 1100) *)
  for id = 32 to 63 do
    ignore
      (Two_level_store.replace store ~now:(Chronon.of_seconds 1100)
         ~key:(Value.Int id) bump_seq)
  done;
  let s = Chronon.of_seconds 500 in
  let b = Two_level_store.boundary store ~at:s in
  Alcotest.(check bool) "boundary stamp" true
    (Chronon.equal (Two_level_store.boundary_stamp b) s);
  let collect () =
    let acc = ref [] in
    Two_level_store.snapshot_scan store b (fun tu ->
        if visible_at s tu then acc := tu :: !acc);
    List.sort compare
      (List.map (fun tu -> Array.to_list (Array.map Value.to_string tu)) !acc)
  in
  let baseline = collect () in
  Alcotest.(check int) "one version per tuple at the stamp" n_tuples
    (List.length baseline);
  (* post-boundary statements: more churn on the already-retired tuples
     (their clustered pushes land in the free tails of pre-boundary
     pages), deletes, and brand-new appends *)
  let pages_before = Two_level_store.history_pages store in
  for id = 32 to 63 do
    ignore
      (Two_level_store.replace store ~now:(Chronon.of_seconds 2000)
         ~key:(Value.Int id) bump_seq)
  done;
  for id = 32 to 39 do
    ignore
      (Two_level_store.delete store ~now:(Chronon.of_seconds 2100)
         ~key:(Value.Int id))
  done;
  for id = 100 to 107 do
    Two_level_store.append store ~now:(Chronon.of_seconds 2200) (tuple id)
  done;
  Alcotest.(check int)
    "clustered pushes landed in pre-boundary pages" pages_before
    (Two_level_store.history_pages store);
  Alcotest.(check bool) "snapshot unchanged by later statements" true
    (collect () = baseline)

let suites =
  [
    ( "twostore",
      [
        Alcotest.test_case "history chain walk" `Quick test_history_store_chain;
        Alcotest.test_case "history capacity (7/page)" `Quick test_history_capacity;
        Alcotest.test_case "clusters don't share pages" `Quick
          test_clustering_separates_tuples;
        Alcotest.test_case "primary never grows" `Quick test_primary_never_grows;
        Alcotest.test_case "current queries constant cost" `Quick
          test_current_queries_constant_cost;
        Alcotest.test_case "version scan completeness" `Quick
          test_version_scan_completeness;
        Alcotest.test_case "clustered beats simple" `Quick
          test_clustered_version_scan_cheaper;
        Alcotest.test_case "equivalence with conventional" `Quick
          test_equivalence_with_conventional;
        Alcotest.test_case "delete" `Quick test_delete_removes_from_primary;
        Alcotest.test_case "append" `Quick test_append_visible;
        Alcotest.test_case "rejects non-temporal" `Quick test_rejects_non_temporal;
        Alcotest.test_case "index lookup" `Quick test_index_lookup;
        Alcotest.test_case "index insert/remove" `Quick test_index_insert_remove;
        Alcotest.test_case "index page economy" `Quick test_index_page_economy;
        Alcotest.test_case "hash index beats heap" `Quick
          test_hash_index_lookup_cheap;
        Alcotest.test_case "attached index maintained" `Quick
          test_attached_index_maintained;
        Alcotest.test_case "indexed lookup cost" `Quick test_indexed_lookup_cost;
        Alcotest.test_case "history boundary bounds check" `Quick
          test_history_boundary_within;
        Alcotest.test_case "snapshot scan fenced at boundary" `Quick
          test_snapshot_scan_fenced;
        QCheck_alcotest.to_alcotest prop_index_complete;
      ] );
  ]
