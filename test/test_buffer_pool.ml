module Disk = Tdb_storage.Disk
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Page = Tdb_storage.Page
module Fault = Tdb_storage.Fault

let make ?(frames = 1) () =
  let disk = Disk.create_mem () in
  let stats = Io_stats.create () in
  (Buffer_pool.create ~frames disk stats, stats)

let test_allocate_is_not_a_read () =
  let pool, stats = make () in
  let id = Buffer_pool.allocate pool in
  Alcotest.(check int) "first page id" 0 id;
  Alcotest.(check int) "no reads" 0 (Io_stats.reads stats);
  ignore (Buffer_pool.read pool id);
  Alcotest.(check int) "resident page costs nothing" 0 (Io_stats.reads stats)

let test_miss_counts_read () =
  let pool, stats = make () in
  let a = Buffer_pool.allocate pool in
  let b = Buffer_pool.allocate pool in
  (* b evicted a; a must be fetched again *)
  ignore (Buffer_pool.read pool a);
  Alcotest.(check int) "one miss" 1 (Io_stats.reads stats);
  ignore (Buffer_pool.read pool a);
  Alcotest.(check int) "second access is a hit" 1 (Io_stats.reads stats);
  ignore (Buffer_pool.read pool b);
  Alcotest.(check int) "alternating with 1 frame misses" 2 (Io_stats.reads stats)

let test_dirty_eviction_counts_write () =
  let pool, stats = make () in
  let a = Buffer_pool.allocate pool in
  (* the freshly allocated page is dirty *)
  let _b = Buffer_pool.allocate pool in
  Alcotest.(check int) "eviction flushed the dirty page" 1 (Io_stats.writes stats);
  ignore (Buffer_pool.read pool a);
  let before = Io_stats.writes stats in
  let _c = Buffer_pool.allocate pool in
  Alcotest.(check int) "clean eviction does not write" before
    (Io_stats.writes stats)

let test_modify_persists () =
  let pool, _stats = make () in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.modify pool a (fun page -> Bytes.set page 0 'X');
  let _b = Buffer_pool.allocate pool in
  (* a was evicted and written back; reading it must return the new bytes *)
  let page = Buffer_pool.read pool a in
  Alcotest.(check char) "modification persisted" 'X' (Bytes.get page 0)

let test_flush_keeps_resident () =
  let pool, stats = make () in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.flush pool;
  Alcotest.(check int) "flush wrote the dirty frame" 1 (Io_stats.writes stats);
  ignore (Buffer_pool.read pool a);
  Alcotest.(check int) "still resident" 0 (Io_stats.reads stats);
  Buffer_pool.flush pool;
  Alcotest.(check int) "clean flush writes nothing" 1 (Io_stats.writes stats)

let test_invalidate () =
  let pool, stats = make () in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.invalidate pool;
  ignore (Buffer_pool.read pool a);
  Alcotest.(check int) "page must be re-fetched" 1 (Io_stats.reads stats)

let test_lru_with_multiple_frames () =
  let pool, stats = make ~frames:2 () in
  let a = Buffer_pool.allocate pool in
  let b = Buffer_pool.allocate pool in
  Alcotest.(check int) "both fit" 0 (Io_stats.reads stats);
  ignore (Buffer_pool.read pool a);
  (* now a is more recent than b *)
  let _c = Buffer_pool.allocate pool in
  (* c should evict b (LRU), keeping a *)
  ignore (Buffer_pool.read pool a);
  Alcotest.(check int) "a stayed resident" 0 (Io_stats.reads stats);
  ignore (Buffer_pool.read pool b);
  Alcotest.(check int) "b was evicted" 1 (Io_stats.reads stats)

let test_sequential_scan_cost () =
  (* With 1 frame, scanning n pages costs exactly n reads - the paper's
     set-up. *)
  let pool, stats = make () in
  for _ = 1 to 10 do
    ignore (Buffer_pool.allocate pool)
  done;
  Buffer_pool.invalidate pool;
  Io_stats.reset stats;
  for i = 0 to 9 do
    ignore (Buffer_pool.read pool i)
  done;
  Alcotest.(check int) "10 pages = 10 reads" 10 (Io_stats.reads stats)

let test_file_backed_round_trip () =
  let path = Filename.temp_file "tdb_test" ".pages" in
  let disk = Disk.open_file path in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create disk stats in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.modify pool a (fun page -> Bytes.set page 7 '!');
  Buffer_pool.flush pool;
  Disk.close disk;
  (* Reopen and verify durability. *)
  let disk2 = Disk.open_file path in
  Alcotest.(check int) "page count persisted" 1 (Disk.npages disk2);
  let page = Disk.read_page disk2 0 in
  Alcotest.(check char) "byte persisted" '!' (Bytes.get page 7);
  Disk.close disk2;
  Sys.remove path

let test_failed_read_does_not_poison_frame () =
  (* An injected EIO on the fetch must not leave a stale or half-filled
     frame claiming to hold the page: the retry must hit the disk again
     and succeed. *)
  let fault = Fault.create ~eio_read_at:1 () in
  let disk = Disk.create_mem ~fault () in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~frames:1 disk stats in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.modify pool a (fun page -> Bytes.set page 0 'V');
  let _b = Buffer_pool.allocate pool in
  (* a was evicted; this read is disk-read #1 and fails *)
  (match Buffer_pool.read pool a with
  | exception Tdb_error.Error (Tdb_error.Io, _) -> ()
  | _ -> Alcotest.fail "injected EIO not raised");
  let page = Buffer_pool.read pool a in
  Alcotest.(check char) "retry refetches and succeeds" 'V' (Bytes.get page 0);
  Alcotest.(check int) "both attempts hit the disk" 2 (Fault.reads fault)

let test_write_split_by_cause () =
  (* The single write counter of the paper splits into eviction writes and
     sync writes; the two causes must always sum to the total. *)
  let pool, stats = make () in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.modify pool a (fun page -> Bytes.set page 0 'a');
  let _b = Buffer_pool.allocate pool in
  (* a evicted dirty *)
  Alcotest.(check int) "eviction write" 1 (Io_stats.eviction_writes stats);
  Alcotest.(check int) "no sync write yet" 0 (Io_stats.sync_writes stats);
  Buffer_pool.flush pool;
  (* b flushed dirty in place *)
  Alcotest.(check int) "flush is a sync write" 1 (Io_stats.sync_writes stats);
  Alcotest.(check int) "eviction count unchanged" 1
    (Io_stats.eviction_writes stats);
  Alcotest.(check int) "causes sum to the total"
    (Io_stats.writes stats)
    (Io_stats.eviction_writes stats + Io_stats.sync_writes stats);
  Alcotest.(check int) "total is 2" 2 (Io_stats.writes stats)

let test_sync_reaches_disk () =
  let path = Filename.temp_file "tdb_test" ".pages" in
  let disk = Disk.open_file path in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create disk stats in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.modify pool a (fun page -> Bytes.set page 3 'S');
  Buffer_pool.sync pool;
  Disk.close disk;
  let disk2 = Disk.open_file path in
  Alcotest.(check char) "synced byte on disk" 'S'
    (Bytes.get (Disk.read_page disk2 0) 3);
  Disk.close disk2;
  Sys.remove path

let suites =
  [
    ( "buffer_pool",
      [
        Alcotest.test_case "allocate is not a read" `Quick test_allocate_is_not_a_read;
        Alcotest.test_case "miss counts read" `Quick test_miss_counts_read;
        Alcotest.test_case "dirty eviction counts write" `Quick
          test_dirty_eviction_counts_write;
        Alcotest.test_case "modify persists" `Quick test_modify_persists;
        Alcotest.test_case "flush keeps resident" `Quick test_flush_keeps_resident;
        Alcotest.test_case "invalidate" `Quick test_invalidate;
        Alcotest.test_case "LRU with 2 frames" `Quick test_lru_with_multiple_frames;
        Alcotest.test_case "sequential scan cost" `Quick test_sequential_scan_cost;
        Alcotest.test_case "file-backed round trip" `Quick test_file_backed_round_trip;
        Alcotest.test_case "failed read does not poison frame" `Quick
          test_failed_read_does_not_poison_frame;
        Alcotest.test_case "write split by cause" `Quick test_write_split_by_cause;
        Alcotest.test_case "sync reaches disk" `Quick test_sync_reaches_disk;
      ] );
  ]
