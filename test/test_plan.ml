(* Direct unit tests of predicate analysis and plan choice (the query
   layers below the engine). *)

module Conjuncts = Tdb_query.Conjuncts
module Plan = Tdb_query.Plan
module Parser = Tdb_tquel.Parser
open Tdb_tquel.Ast

let parse_retrieve src =
  match Parser.parse_statement src with
  | Ok (Retrieve r) -> r
  | Ok _ -> Alcotest.fail "not a retrieve"
  | Error e -> Alcotest.fail e

let conjuncts_of src =
  let r = parse_retrieve src in
  Conjuncts.split r.where r.when_

let test_split () =
  let cs =
    conjuncts_of
      {|retrieve (h.id) where h.id = 5 and h.amount > 3 or h.seq = 0
        when h overlap i and i overlap "now"|}
  in
  (* the top-level OR keeps the where clause whole: 1 where + 2 when *)
  Alcotest.(check int) "3 conjuncts" 3 (List.length cs);
  let cs2 = conjuncts_of "retrieve (h.id) where h.id = 5 and h.amount > 3" in
  Alcotest.(check int) "and splits" 2 (List.length cs2)

let test_vars_and_for_var () =
  let cs =
    conjuncts_of
      {|retrieve (h.id) where h.id = i.amount and h.seq = 0 when i overlap "now"|}
  in
  Alcotest.(check int) "h-only conjuncts" 1
    (List.length (Conjuncts.for_var "h" cs));
  Alcotest.(check int) "i-only conjuncts" 1
    (List.length (Conjuncts.for_var "i" cs));
  Alcotest.(check int) "join conjuncts" 1 (List.length (Conjuncts.multi_var cs))

let test_constant_key_probe () =
  let cs = conjuncts_of "retrieve (h.id) where 500 = h.id and h.seq > 1" in
  (match Conjuncts.constant_key_probe cs ~var:"h" ~attr:"id" with
  | Some (Eint 500) -> ()
  | _ -> Alcotest.fail "mirrored equality not found");
  (* an equality against another variable is not a constant probe *)
  let cs2 = conjuncts_of "retrieve (h.id) where h.id = i.amount" in
  Alcotest.(check bool) "join equality is not a probe" true
    (Conjuncts.constant_key_probe cs2 ~var:"h" ~attr:"id" = None);
  (* an OR-protected equality is not extractable *)
  let cs3 = conjuncts_of "retrieve (h.id) where h.id = 5 or h.seq = 0" in
  Alcotest.(check bool) "disjunction is not a probe" true
    (Conjuncts.constant_key_probe cs3 ~var:"h" ~attr:"id" = None)

let test_range_bounds () =
  let cs = conjuncts_of "retrieve (h.id) where h.id >= 10 and h.id < 20" in
  (match Conjuncts.range_bounds cs ~var:"h" ~attr:"id" with
  | Some { expr = Eint 10; inclusive = true }, Some { expr = Eint 20; inclusive = false } ->
      ()
  | _ -> Alcotest.fail "bounds");
  let cs2 = conjuncts_of "retrieve (h.id) where 10 < h.id" in
  (match Conjuncts.range_bounds cs2 ~var:"h" ~attr:"id" with
  | Some { expr = Eint 10; inclusive = false }, None -> ()
  | _ -> Alcotest.fail "mirrored lower bound");
  let cs3 = conjuncts_of "retrieve (h.id) where h.amount < 5" in
  Alcotest.(check bool) "different attribute" true
    (Conjuncts.range_bounds cs3 ~var:"h" ~attr:"id" = (None, None))

let test_join_equalities () =
  let cs = conjuncts_of "retrieve (h.id) where h.id = i.amount and h.seq = i.seq" in
  Alcotest.(check int) "two equalities" 2
    (List.length (Conjuncts.join_equalities cs))

let static_info var key =
  { Plan.var; key; transaction_time = false; valid_time = false }

let hash_info var = static_info var (Some ("id", `Hash))
let isam_info var = static_info var (Some ("id", `Isam))
let heap_info var = static_info var None

let temporal_hash_info var =
  { Plan.var; key = Some ("id", `Hash); transaction_time = true; valid_time = true }

let test_plan_choice () =
  let choose sources src =
    Plan.choose ~sources ~conjuncts:(conjuncts_of src) ()
  in
  (match choose [ hash_info "h" ] "retrieve (h.id) where h.id = 5" with
  | Plan.Single { access = Plan.Keyed_probe _; _ } -> ()
  | p -> Alcotest.failf "wanted keyed, got %s" (Plan.to_string p));
  (match choose [ heap_info "h" ] "retrieve (h.id) where h.id = 5" with
  | Plan.Single { access = Plan.Seq_scan; _ } -> ()
  | p -> Alcotest.failf "heap cannot probe, got %s" (Plan.to_string p));
  (match choose [ isam_info "i" ] "retrieve (i.id) where i.id > 3" with
  | Plan.Single { access = Plan.Range_probe _; _ } -> ()
  | p -> Alcotest.failf "wanted range, got %s" (Plan.to_string p));
  (match
     choose [ hash_info "h"; isam_info "i" ]
       "retrieve (h.id) where h.id = i.amount"
   with
  | Plan.Tuple_substitution { substituted = "h"; detached = "i"; probe_attr = "amount" } -> ()
  | p -> Alcotest.failf "wanted substitution, got %s" (Plan.to_string p));
  (match
     choose [ hash_info "h"; isam_info "i" ]
       "retrieve (h.id) where h.seq = 1 and i.seq = 2"
   with
  | Plan.Detach_both _ -> ()
  | p -> Alcotest.failf "wanted detach-both, got %s" (Plan.to_string p));
  (match
     choose [ hash_info "h"; isam_info "i" ]
       {|retrieve (h.id) when start of h precede i|}
   with
  | Plan.Nested_scan { outer = "h"; inner = "i" } -> ()
  | p -> Alcotest.failf "wanted nested, got %s" (Plan.to_string p));
  match
    choose
      [ hash_info "a"; hash_info "b"; hash_info "c" ]
      "retrieve (a.id) where a.id = b.id and b.id = c.id"
  with
  | Plan.Nested_general
      { vars = [ "a"; "b"; "c" ];
        probe = Some { probe_var = "c"; probe_attr = "id"; from_var = "b"; _ } }
    -> ()
  | p -> Alcotest.failf "wanted general with probe, got %s" (Plan.to_string p)

let test_nested_general_no_probe () =
  (* no equi-join lands on the innermost key: every level scans *)
  match
    Plan.choose
      ~sources:[ hash_info "a"; hash_info "b"; heap_info "c" ]
      ~conjuncts:(conjuncts_of "retrieve (a.id) where a.id = b.id and b.seq = c.seq")
      ()
  with
  | Plan.Nested_general { vars = [ "a"; "b"; "c" ]; probe = None } -> ()
  | p -> Alcotest.failf "wanted general without probe, got %s" (Plan.to_string p)

let test_time_fence_refinement () =
  (* a temporal source's access is fence-wrapped; a static one's is not *)
  (match
     Plan.choose
       ~sources:[ temporal_hash_info "h" ]
       ~conjuncts:(conjuncts_of {|retrieve (h.id) when h overlap "now"|})
       ()
   with
  | Plan.Single
      { access =
          Plan.Time_fence
            { transaction = true; valid_const = Some "now"; base = Plan.Seq_scan };
        _ } -> ()
  | p -> Alcotest.failf "wanted fenced scan, got %s" (Plan.to_string p));
  (match
     Plan.choose
       ~sources:[ temporal_hash_info "h" ]
       ~conjuncts:(conjuncts_of "retrieve (h.id) where h.id = 5")
       ()
   with
  | Plan.Single
      { access =
          Plan.Time_fence
            { transaction = true; valid_const = None; base = Plan.Keyed_probe _ };
        _ } -> ()
  | p -> Alcotest.failf "wanted fenced probe, got %s" (Plan.to_string p));
  match
    Plan.choose ~sources:[ hash_info "h" ]
      ~conjuncts:(conjuncts_of "retrieve (h.id) where h.seq = 1")
      ()
  with
  | Plan.Single { access = Plan.Seq_scan; _ } -> ()
  | p -> Alcotest.failf "static source must not be fenced, got %s" (Plan.to_string p)

let test_overlap_constant () =
  let cs = conjuncts_of {|retrieve (h.id) when h overlap "1985-01-01" and h precede i|} in
  Alcotest.(check (option string)) "extracted" (Some "1985-01-01")
    (Conjuncts.overlap_constant cs ~var:"h");
  Alcotest.(check (option string)) "no bound on i" None
    (Conjuncts.overlap_constant cs ~var:"i");
  (* mirrored orientation *)
  let cs2 = conjuncts_of {|retrieve (h.id) when "now" overlap h|} in
  Alcotest.(check (option string)) "mirrored" (Some "now")
    (Conjuncts.overlap_constant cs2 ~var:"h")

let test_no_sources () =
  match Plan.choose ~sources:[] ~conjuncts:[] () with
  | Plan.Const_emit -> ()
  | p -> Alcotest.failf "wanted const emit, got %s" (Plan.to_string p)

let suites =
  [
    ( "plan",
      [
        Alcotest.test_case "conjunct split" `Quick test_split;
        Alcotest.test_case "vars / for_var" `Quick test_vars_and_for_var;
        Alcotest.test_case "constant key probe" `Quick test_constant_key_probe;
        Alcotest.test_case "range bounds" `Quick test_range_bounds;
        Alcotest.test_case "join equalities" `Quick test_join_equalities;
        Alcotest.test_case "plan choice" `Quick test_plan_choice;
        Alcotest.test_case "nested general without probe" `Quick
          test_nested_general_no_probe;
        Alcotest.test_case "time fence refinement" `Quick
          test_time_fence_refinement;
        Alcotest.test_case "overlap constant" `Quick test_overlap_constant;
        Alcotest.test_case "no sources" `Quick test_no_sources;
      ] );
  ]
