(* The session layer: snapshot-isolated readers over one shared database
   instance (lib/session).

   Unit tests pin down the visibility rule — a snapshot resolves the
   published commit record at statement start, so writes that have not
   published an epoch (a writer "mid-statement") are invisible — and the
   statement-log / isolation-label plumbing.

   The concurrent oracle is the concurrency analogue of test_oracle: M
   writer domains replay a random history of appends/deletes/replaces
   through serialized sessions while N reader domains run lock-free
   snapshot retrieves; every reader result must equal a naive in-memory
   model evaluated at the stamp the reader pinned (no torn reads, no
   phantom epochs).  Failures name the seed; replay with
   TDB_ORACLE_SEED=<n>. *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Db_instance = Tdb_session.Db_instance
module Session = Tdb_session.Session
module Chronon = Tdb_time.Chronon
module Value = Tdb_relation.Value
module Json = Tdb_obs.Json
module Metric = Tdb_obs.Metric
module Statement_log = Tdb_obs.Statement_log
module Parser = Tdb_tquel.Parser

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let exec db src = ignore (ok (Engine.execute db src))

let seed =
  match Sys.getenv_opt "TDB_ORACLE_SEED" with
  | None -> 77031
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> Alcotest.failf "TDB_ORACLE_SEED must be an integer, got %S" s)

(* --- helpers --- *)

let fresh_instance () =
  let db = ok (Database.create ()) in
  exec db
    {|create persistent tr (id = i4, amount = i4)
      range of t is tr|};
  (db, Db_instance.of_database db)

let rows_of = function
  | Engine.Rows { tuples; _ } ->
      List.sort compare
        (List.map
           (fun tu ->
             Array.to_list
               (Array.map
                  (function
                    | Value.Int n -> n
                    | v -> Alcotest.failf "int expected, got %s" (Value.to_string v))
                  tu))
           tuples)
  | _ -> Alcotest.fail "expected rows"

let session_rows s src = rows_of (ok (Session.execute_one s src))

let retrieve_all = "retrieve (t.id, t.amount)"

(* --- unit: snapshots pin the published epoch, not live state --- *)

let test_snapshot_pins_published_epoch () =
  let db, inst = fresh_instance () in
  let w = Session.open_ ~name:"w" inst in
  ignore (ok (Session.execute_one w "append to tr (id = 1, amount = 10)"));
  Alcotest.(check int) "one publish so far" 1 (Db_instance.epoch inst);
  let r = Session.open_ ~name:"r" inst in
  Alcotest.(check (list (list int)))
    "reader sees the published row"
    [ [ 1; 10 ] ]
    (session_rows r retrieve_all);
  (* A write that bypasses the session layer mutates the database but
     publishes no epoch: the instance is "mid-statement" as far as
     snapshots are concerned, and a reader opened now must see exactly
     the pre-statement epoch. *)
  ignore
    (ok
       (Engine.execute_serialized db
          (ok (Parser.parse_statement "append to tr (id = 2, amount = 20)"))));
  Alcotest.(check int) "no epoch published" 1 (Db_instance.epoch inst);
  let r2 = Session.open_ ~name:"r2" inst in
  Alcotest.(check (list (list int)))
    "unpublished write is invisible"
    [ [ 1; 10 ] ]
    (session_rows r2 retrieve_all);
  (* The next session write publishes; its stamp covers the earlier
     unpublished append too (its transaction time is in the past). *)
  ignore (ok (Session.execute_one w "append to tr (id = 3, amount = 30)"));
  Alcotest.(check int) "second publish" 2 (Db_instance.epoch inst);
  Alcotest.(check (list (list int)))
    "new snapshot sees everything committed"
    [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 30 ] ]
    (session_rows r retrieve_all);
  Session.close r;
  Session.close r2;
  Session.close w;
  Database.close db

(* --- unit: an old commit record stays a consistent snapshot --- *)

let test_pinned_snapshot_is_stable () =
  let db, inst = fresh_instance () in
  let w = Session.open_ inst in
  ignore (ok (Session.execute_one w "append to tr (id = 1, amount = 10)"));
  let c1 = Db_instance.commit inst in
  ignore (ok (Session.execute_one w "append to tr (id = 2, amount = 20)"));
  ignore (ok (Session.execute_one w "delete t where t.id = 1"));
  (* Re-running against the old record must reproduce the old answer:
     the later append is refuted by value, the in-place delete stamp is
     in the snapshot's future. *)
  let sources = Session.sources_of c1 in
  let env = Session.semck_env_of c1 in
  let stmt = ok (Parser.parse_statement retrieve_all) in
  let o =
    ok
      (Engine.execute_snapshot ~now:c1.Db_instance.stamp ~sources
         ~semck_env:env ~epoch:c1.Db_instance.epoch stmt)
  in
  Alcotest.(check (list (list int)))
    "old epoch still answers as of its stamp"
    [ [ 1; 10 ] ]
    (rows_of o);
  Alcotest.(check (list (list int)))
    "latest snapshot sees the delete"
    [ [ 2; 20 ] ]
    (session_rows w retrieve_all);
  Session.close w;
  Database.close db

(* --- unit: routing and labels --- *)

let test_snapshot_rejects_writes () =
  let db, inst = fresh_instance () in
  let c = Db_instance.commit inst in
  let stmt = ok (Parser.parse_statement "append to tr (id = 9, amount = 9)") in
  (match
     Engine.execute_snapshot ~now:c.Db_instance.stamp
       ~sources:(Session.sources_of c)
       ~semck_env:(Session.semck_env_of c)
       ~epoch:c.Db_instance.epoch stmt
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "snapshot path accepted a mutating statement");
  Alcotest.(check bool) "read_only classification" false (Engine.read_only stmt);
  Alcotest.(check string)
    "writer label" "serialized (writer)"
    (Engine.isolation_label ~epoch:3 stmt);
  let r = ok (Parser.parse_statement retrieve_all) in
  Alcotest.(check string)
    "snapshot label" "snapshot@3"
    (Engine.isolation_label ~epoch:3 r);
  Alcotest.(check string)
    "no epoch means serialized" "serialized (writer)"
    (Engine.isolation_label r);
  Database.close db

let test_explain_and_analyze_isolation () =
  let db, inst = fresh_instance () in
  let s = Session.open_ inst in
  ignore (ok (Session.execute_one s "append to tr (id = 1, amount = 10)"));
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let plan = ok (Session.explain s retrieve_all) in
  Alcotest.(check bool) "explain names the snapshot epoch" true
    (contains plan "isolation: snapshot@1");
  let plan_w = ok (Session.explain s "append to tr (id = 2, amount = 2)") in
  Alcotest.(check bool) "explain names the writer path" true
    (contains plan_w "isolation: serialized (writer)");
  let a = ok (Session.analyze s retrieve_all) in
  Alcotest.(check string) "analysis isolation" "snapshot@1" a.Engine.a_isolation;
  Alcotest.(check bool) "analysis renders the isolation line" true
    (contains (Engine.render_analysis a) "isolation: snapshot@1");
  (match Engine.analysis_to_json a with
  | Json.Obj fields -> (
      match List.assoc_opt "isolation" fields with
      | Some (Json.Str "snapshot@1") -> ()
      | _ -> Alcotest.fail "analysis json carries no isolation")
  | _ -> Alcotest.fail "analysis json is not an object");
  let aw = ok (Session.analyze s "append to tr (id = 2, amount = 2)") in
  Alcotest.(check string)
    "writer analysis isolation" "serialized (writer)" aw.Engine.a_isolation;
  Alcotest.(check int) "analyze on the writer path published" 2
    (Session.epoch s);
  Session.close s;
  Database.close db

(* --- unit: statement-log attribution --- *)

let test_log_session_fields () =
  let path = Filename.temp_file "tdb_session_log" ".jsonl" in
  (* the sink opens after setup, so only the session statements land *)
  let db, inst = fresh_instance () in
  Statement_log.set (Some path);
  Fun.protect
    ~finally:(fun () ->
      Statement_log.set None;
      if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let s = Session.open_ ~name:"sess-a" inst in
  ignore (ok (Session.execute_one s "append to tr (id = 1, amount = 10)"));
  ignore (ok (Session.execute_one s retrieve_all));
  Session.close s;
  Database.close db;
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let records =
    List.filter_map
      (fun l ->
        match Json.parse l with
        | Ok (Json.Obj fields as j) ->
            (match Tdb_benchkit.Obs_json.validate_statement_record j with
            | Ok () -> ()
            | Error e -> Alcotest.failf "schema violation (%s): %s" e l);
            if List.assoc_opt "record" fields = Some (Json.Str "statement")
            then Some fields
            else None
        | _ -> Alcotest.failf "unparseable line: %s" l)
      lines
  in
  (* only the two session statements ran while the sink was open *)
  Alcotest.(check int) "two statement records" 2 (List.length records);
  let append = List.nth records 0 and retrieve = List.nth records 1 in
  let str fields name =
    match List.assoc_opt name fields with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.failf "missing %s" name
  in
  let num fields name =
    match List.assoc_opt name fields with
    | Some (Json.Num f) -> int_of_float f
    | _ -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check string) "append session" "sess-a" (str append "session");
  Alcotest.(check int) "append publishes epoch 1" 1 (num append "epoch");
  Alcotest.(check string) "retrieve session" "sess-a" (str retrieve "session");
  Alcotest.(check int) "retrieve pinned epoch 1" 1 (num retrieve "epoch");
  (* per-instance ids are gap-free from 0 *)
  Alcotest.(check string) "first instance id" "S0" (str append "id");
  Alcotest.(check string) "second instance id" "S1" (str retrieve "id")

(* --- unit: session metrics --- *)

let test_session_metrics () =
  let was = Metric.enabled () in
  Metric.reset_all ();
  Metric.set_enabled true;
  Fun.protect ~finally:(fun () -> Metric.set_enabled was) @@ fun () ->
  let db, inst = fresh_instance () in
  let s = Session.open_ inst in
  Alcotest.(check (float 0.001))
    "open-sessions gauge tracks opens" 1.0
    (Metric.gauge_value Db_instance.open_sessions_gauge);
  ignore (ok (Session.execute_one s "append to tr (id = 1, amount = 10)"));
  ignore (ok (Session.execute_one s retrieve_all));
  ignore (ok (Session.execute_one s retrieve_all));
  Alcotest.(check int) "snapshot statements counted" 2
    (Metric.count Db_instance.snapshot_statements_counter);
  Alcotest.(check int) "serialized statements counted" 1
    (Metric.count Db_instance.serialized_statements_counter);
  Alcotest.(check (float 0.001))
    "snapshot lag is zero without concurrent writers" 0.0
    (Metric.gauge_value Db_instance.snapshot_lag_gauge);
  Session.close s;
  Alcotest.(check (float 0.001))
    "open-sessions gauge tracks closes" 0.0
    (Metric.gauge_value Db_instance.open_sessions_gauge);
  Database.close db

(* --- the concurrent oracle --- *)

type op = Append of int * int | Delete of int | Replace of int * int

let op_text = function
  | Append (id, amount) ->
      Printf.sprintf "append to tr (id = %d, amount = %d)" id amount
  | Delete id -> Printf.sprintf "delete t where t.id = %d" id
  | Replace (id, amount) ->
      Printf.sprintf "replace t (amount = %d) where t.id = %d" amount id

let apply_op rows = function
  | Append (id, amount) -> (id, amount) :: rows
  | Delete id -> List.filter (fun (i, _) -> i <> id) rows
  | Replace (id, amount) ->
      List.map (fun (i, a) -> if i = id then (i, amount) else (i, a)) rows

let gen_op rng =
  let id = Random.State.int rng 12 in
  match Random.State.int rng 4 with
  | 0 | 1 -> Append (id, Random.State.int rng 100)
  | 2 -> Delete id
  | _ -> Replace (id, Random.State.int rng 100)

let model_rows rows =
  List.sort compare (List.map (fun (i, a) -> [ i; a ]) rows)

(* M writer domains replay random histories through serialized sessions;
   N reader domains run snapshot retrieves with no lock and check every
   answer against the model state at the stamp they pinned.  A test-side
   lock makes (execute, apply to model, record stamp -> state) atomic
   with respect to other writers; readers only take it for the map
   lookup, after their lock-free retrieve finished. *)
let test_concurrent_oracle () =
  let writers = 2 and readers = 3 and ops_per_writer = 40 in
  let db, inst = fresh_instance () in
  let model_lock = Mutex.create () in
  let by_stamp : (Chronon.t, int list list) Hashtbl.t = Hashtbl.create 256 in
  let current = ref [] in
  Hashtbl.replace by_stamp (Db_instance.commit inst).Db_instance.stamp
    (model_rows !current);
  let failures = Atomic.make 0 in
  let complaints = Atomic.make [] in
  let complain fmt =
    Printf.ksprintf
      (fun msg ->
        Atomic.incr failures;
        let rec push () =
          let old = Atomic.get complaints in
          if not (Atomic.compare_and_set complaints old (msg :: old)) then
            push ()
        in
        push ())
      fmt
  in
  let writers_done = Atomic.make 0 in
  let writer w =
    (* [writers_done] must advance even on an exception, or the readers
       spin forever and the failure never surfaces *)
    Fun.protect ~finally:(fun () -> Atomic.incr writers_done) @@ fun () ->
    let rng = Random.State.make [| seed; w |] in
    let s = Session.open_ ~name:(Printf.sprintf "w%d" w) inst in
    for _ = 1 to ops_per_writer do
      let op = gen_op rng in
      Mutex.lock model_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock model_lock)
        (fun () ->
          match Session.execute_one s (op_text op) with
          | Ok _ ->
              current := apply_op !current op;
              Hashtbl.replace by_stamp
                (Db_instance.commit inst).Db_instance.stamp
                (model_rows !current)
          | Error e -> complain "writer %d: %s failed: %s" w (op_text op) e)
    done;
    Session.close s
  in
  let reader r =
    let s = Session.open_ ~name:(Printf.sprintf "r%d" r) inst in
    let checks = ref 0 in
    (* keep reading until every writer finished, then once more so the
       final state is checked too *)
    let continue = ref true in
    while !continue do
      if Atomic.get writers_done = writers then continue := false;
      (match Session.execute_one s retrieve_all with
      | Ok o ->
          let got = rows_of o in
          let stamp = Session.clock s in
          Mutex.lock model_lock;
          let expected = Hashtbl.find_opt by_stamp stamp in
          Mutex.unlock model_lock;
          (match expected with
          | None ->
              complain "reader %d pinned an unknown stamp %s" r
                (Chronon.to_string stamp)
          | Some want ->
              if got <> want then
                complain
                  "reader %d: snapshot at %s returned %d row(s), model has %d"
                  r (Chronon.to_string stamp) (List.length got)
                  (List.length want));
          incr checks
      | Error e -> complain "reader %d: retrieve failed: %s" r e)
    done;
    Session.close s;
    !checks
  in
  let domains =
    List.init readers (fun r -> Domain.spawn (fun () -> reader r))
  in
  let writer_domains =
    List.init writers (fun w -> Domain.spawn (fun () -> writer w))
  in
  List.iter Domain.join writer_domains;
  let checks = List.map Domain.join domains in
  Database.close db;
  if Atomic.get failures > 0 then
    Alcotest.failf
      "concurrent oracle mismatch (replay with TDB_ORACLE_SEED=%d):\n%s" seed
      (String.concat "\n" (Atomic.get complaints));
  List.iteri
    (fun r n ->
      if n < 1 then Alcotest.failf "reader %d never completed a check" r)
    checks;
  Alcotest.(check int) "all epochs published"
    (writers * ops_per_writer)
    (Db_instance.epoch inst)

let suites =
  [
    ( "session",
      [
        Alcotest.test_case "snapshot pins published epoch" `Quick
          test_snapshot_pins_published_epoch;
        Alcotest.test_case "pinned snapshot is stable" `Quick
          test_pinned_snapshot_is_stable;
        Alcotest.test_case "snapshot path rejects writes" `Quick
          test_snapshot_rejects_writes;
        Alcotest.test_case "explain and analyze isolation" `Quick
          test_explain_and_analyze_isolation;
        Alcotest.test_case "statement-log session fields" `Quick
          test_log_session_fields;
        Alcotest.test_case "session metrics" `Quick test_session_metrics;
        Alcotest.test_case "concurrent oracle" `Slow test_concurrent_oracle;
      ] );
  ]
