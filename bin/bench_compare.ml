(* bench_compare OLD.json NEW.json [TOLERANCE]

   The CI entry point for the bench trend harness: diff two bench result
   documents and exit 0 (clean), 1 (hard regression: a cost-grid cell
   changed between comparable runs, rows diverged, a durability or
   parallel gate failed) or 2 (unreadable input).  The report goes to
   stdout so CI can tee it into an artifact.  Equivalent to
   `bench --compare OLD NEW`, without dragging the benchmark's workload
   machinery along. *)

let () =
  match Sys.argv with
  | [| _; old_path; new_path |] ->
      exit (Tdb_benchkit.Compare.run ~old_path ~new_path ())
  | [| _; old_path; new_path; tol |] -> (
      match float_of_string_opt tol with
      | Some tolerance ->
          exit (Tdb_benchkit.Compare.run ~tolerance ~old_path ~new_path ())
      | None ->
          prerr_endline ("bench_compare: bad tolerance: " ^ tol);
          exit 2)
  | _ ->
      prerr_endline "usage: bench_compare OLD.json NEW.json [TOLERANCE]";
      exit 2
