(* The interactive TQuel shell.

   Usage:
     tquel                 in-memory session
     tquel -d DIR          persistent database rooted at DIR
     tquel -f SCRIPT       run a script, then exit (combine with -d)
     tquel -c "STATEMENT"  run one statement, then exit

   Inside the shell, statements may span lines and end with ';'.
   Meta commands: \q quit, \l list relations, \ranges, \timing toggles
   page-I/O reporting, \clock shows the session clock, \advance N moves it
   forward N seconds, \session shows the session and its commit epoch,
   \metrics [json|reset] dumps engine metrics, \explain shows a
   retrieve's plan without running it, \explain analyze executes a
   statement and prints the executed plan tree with per-stage counters,
   \help.

   Statements route through the session layer (lib/session): displayed
   retrieves resolve the published commit epoch and run on the snapshot
   path, everything else serializes through the writer and publishes the
   next epoch.  --sessions N is a stress mode: every displayed retrieve
   is executed by N concurrent snapshot sessions on separate domains and
   their answers are checked for agreement.

   Prefixing input with "profile" enables span tracing for just that
   input and prints each statement's operator tree with per-node page I/O
   and wall time; --profile keeps tracing on for the whole session.
   Prefixing input with "explain analyze" runs each statement through
   Engine.analyze instead.  --log PATH appends one JSON record per
   statement to PATH (see Tdb_obs.Statement_log). *)

module Engine = Tdb_core.Engine
module Database = Tdb_core.Database
module Db_instance = Tdb_session.Db_instance
module Session = Tdb_session.Session
module Relation_file = Tdb_storage.Relation_file
module Disk = Tdb_storage.Disk
module Schema = Tdb_relation.Schema
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock
module Executor = Tdb_query.Executor
module Plan = Tdb_query.Plan

(* The shell's execution context: the shared instance, the interactive
   session, and the --sessions stress width. *)
type ctx = { inst : Db_instance.t; session : Session.t; stress : int }

let db_of ctx = Db_instance.database ctx.inst

let show_timing = ref false

let trace_of = function
  | Engine.Rows { trace; _ }
  | Engine.Stored { trace; _ }
  | Engine.Modified { trace; _ } ->
      trace
  | Engine.Ack _ -> None

let print_outcome outcome =
  (match outcome with
  | Engine.Rows { schema; tuples; io; plan; _ } ->
      print_endline (Engine.format_rows schema tuples);
      if !show_timing then
        Printf.printf "-- %d pages in, %d pages out, plan: %s\n"
          io.Executor.input_reads io.Executor.output_writes
          (Plan.to_string plan)
  | Engine.Stored { relation; count; io; plan; _ } ->
      Printf.printf "stored %d tuples into %s\n" count relation;
      if !show_timing then
        Printf.printf "-- %d pages in, %d pages out, plan: %s\n"
          io.Executor.input_reads io.Executor.output_writes
          (Plan.to_string plan)
  | Engine.Modified { matched; inserted; _ } ->
      Printf.printf "%d tuples qualified, %d versions inserted\n" matched
        inserted
  | Engine.Ack msg -> print_endline msg);
  match trace_of outcome with
  | Some node when Tdb_obs.Trace.enabled () ->
      print_string (Tdb_obs.Trace.render node)
  | _ -> ()

(* Leading-keyword prefixes: "profile <statements>" runs the rest of the
   input with span tracing enabled for just that input; "explain analyze
   <statements>" runs each statement through [Engine.analyze]. *)
let strip_word w src =
  let t = String.trim src in
  let n = String.length w in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  if
    String.length t > n
    && String.lowercase_ascii (String.sub t 0 n) = w
    && is_space t.[n]
  then Some (String.sub t (n + 1) (String.length t - n - 1))
  else None

let strip_profile = strip_word "profile"

let strip_analyze src =
  Option.bind (strip_word "explain" src) (strip_word "analyze")

(* --sessions N: run one displayed retrieve through N concurrent
   snapshot sessions, one domain each, and require identical answers.
   The first session's rows are printed (all are checked equal), then
   an agreement line naming the epochs the readers pinned. *)
let run_stress_retrieve ctx stmt =
  let n = ctx.stress in
  let results =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let s =
              Session.open_ ~name:(Printf.sprintf "stress%d" i) ctx.inst
            in
            Fun.protect
              ~finally:(fun () -> Session.close s)
              (fun () ->
                let r = Session.execute_statement s stmt in
                (r, Session.pinned_epoch s))))
    |> List.map Domain.join
  in
  match results with
  | [] -> true
  | ((first, _) :: _ as all) -> (
      match first with
      | Error e ->
          Printf.printf "error: %s\n" e;
          false
      | Ok outcome ->
          let render = function
            | Ok (Engine.Rows { schema; tuples; _ }) ->
                Engine.format_rows schema tuples
            | Ok _ -> "(not rows)"
            | Error e -> "error: " ^ e
          in
          let reference = render first in
          let disagree =
            List.filter (fun (r, _) -> render r <> reference) all
          in
          print_outcome outcome;
          if disagree <> [] then begin
            Printf.printf
              "error: %d of %d concurrent sessions disagreed with the first\n"
              (List.length disagree) n;
            false
          end
          else begin
            let epochs =
              List.sort_uniq compare (List.map (fun (_, e) -> e) all)
            in
            Printf.printf "sessions: %d concurrent readers agreed (epoch %s)\n"
              n
              (String.concat ", " (List.map string_of_int epochs));
            true
          end)

let run_plain ctx src =
  if ctx.stress > 1 then
    match Tdb_tquel.Parser.parse_program src with
    | Error e ->
        Printf.printf "error: %s\n" e;
        false
    | Ok stmts ->
        List.for_all
          (fun stmt ->
            if Engine.read_only stmt then run_stress_retrieve ctx stmt
            else
              match Session.execute_statement ctx.session stmt with
              | Ok outcome ->
                  print_outcome outcome;
                  true
              | Error e ->
                  Printf.printf "error: %s\n" e;
                  false)
          stmts
  else
    match Session.execute ctx.session src with
    | Ok outcomes ->
        List.iter print_outcome outcomes;
        true
    | Error e ->
        Printf.printf "error: %s\n" e;
        false

let run_analyze ctx src =
  match Tdb_tquel.Parser.parse_program src with
  | Error e ->
      Printf.printf "error: %s\n" e;
      false
  | Ok stmts ->
      List.for_all
        (fun stmt ->
          match Session.analyze_statement ctx.session stmt with
          | Ok a ->
              print_string (Engine.render_analysis a);
              true
          | Error e ->
              Printf.printf "error: %s\n" e;
              false)
        stmts

let run_source ctx src =
  match strip_analyze src with
  | Some rest -> run_analyze ctx rest
  | None -> (
      match strip_profile src with
      | None -> run_plain ctx src
      | Some rest ->
          let prev = Tdb_obs.Trace.enabled () in
          Tdb_obs.Trace.set_enabled true;
          Fun.protect
            ~finally:(fun () -> Tdb_obs.Trace.set_enabled prev)
            (fun () -> run_plain ctx rest))

let list_relations db =
  match Database.relation_names db with
  | [] -> print_endline "(no relations)"
  | names ->
      List.iter
        (fun name ->
          match Database.find_relation db name with
          | None -> ()
          | Some rel ->
              let schema = Relation_file.schema rel in
              Printf.printf "%-20s %-20s %-28s %5d pages\n" name
                (Tdb_relation.Db_type.to_string (Schema.db_type schema))
                (Relation_file.organization_to_string
                   (Relation_file.organization rel))
                (Relation_file.npages rel))
        names

let help () =
  print_string
    "TQuel statements end with ';'.  Examples:\n\
    \  create persistent interval emp (name = c20, salary = i4);\n\
    \  range of e is emp;\n\
    \  append to emp (name = \"ahn\", salary = 30000);\n\
    \  retrieve (e.name, e.salary) when e overlap \"now\";\n\
    \  retrieve (e.salary) as of \"1980-06-01\";\n\
     Prefix any input with 'profile' to print its operator trace tree:\n\
    \  profile retrieve (e.name) when e overlap \"now\";\n\
     Prefix with 'explain analyze' to execute and print per-stage counters:\n\
    \  explain analyze retrieve (e.name) when e overlap \"now\";\n\
     Meta commands: \\q quit, \\l relations, \\ranges, \\timing, \\clock,\n\
    \  \\advance N, \\session, \\metrics [json|reset], \\explain STMT,\n\
    \  \\explain analyze [json] STMT, \\recoveries, \\help\n\
     \\explain shows a retrieve's plan (fence[...] marks temporal pruning)\n\
     without running it; \\explain analyze runs the statement and reports\n\
     the executed plan (rows, batches, pages, skips, wall time per stage).\n"

(* tolerate a trailing ';' as in ordinary statements *)
let strip_semi words =
  let t = String.trim (String.concat " " words) in
  if String.length t > 0 && t.[String.length t - 1] = ';' then
    String.sub t 0 (String.length t - 1)
  else t

let meta ctx line =
  let db = db_of ctx in
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\q" ] | [ "\\quit" ] -> `Quit
  | [ "\\l" ] | [ "\\list" ] ->
      list_relations db;
      `Continue
  | [ "\\ranges" ] ->
      List.iter
        (fun (v, r) -> Printf.printf "range of %s is %s\n" v r)
        (Database.ranges db);
      `Continue
  | [ "\\timing" ] ->
      show_timing := not !show_timing;
      Printf.printf "timing %s\n" (if !show_timing then "on" else "off");
      `Continue
  | [ "\\clock" ] ->
      Printf.printf "session clock: %s\n" (Chronon.to_string (Database.now db));
      `Continue
  | [ "\\advance"; n ] -> (
      match int_of_string_opt n with
      | Some s when s >= 0 ->
          Clock.advance (Database.clock db) s;
          (* snapshots pin published state: make the moved clock
             visible to them *)
          Db_instance.republish ctx.inst;
          Printf.printf "session clock: %s\n"
            (Chronon.to_string (Database.now db));
          `Continue
      | _ ->
          print_endline "usage: \\advance SECONDS";
          `Continue)
  | [ "\\session" ] ->
      let c = Db_instance.commit ctx.inst in
      Printf.printf "session: %s\nepoch: %d (stamp %s)\nopen sessions: %d\n"
        (Session.name ctx.session) c.Db_instance.epoch
        (Chronon.to_string c.Db_instance.stamp)
        (Atomic.get (Db_instance.open_sessions ctx.inst));
      `Continue
  | [ "\\metrics" ] ->
      print_endline
        (Tdb_benchkit.Report.table ~title:"engine metrics"
           ~header:[ "metric"; "kind"; "value" ]
           (Tdb_obs.Metric.table ()));
      `Continue
  | [ "\\metrics"; "json" ] ->
      (* Shared schema with `bench --json`: Obs_json validates the dump
         before it reaches any consumer. *)
      print_endline (Tdb_obs.Json.to_string (Tdb_benchkit.Obs_json.metrics ()));
      `Continue
  | [ "\\metrics"; "reset" ] ->
      Tdb_obs.Metric.reset_all ();
      print_endline "metrics reset";
      `Continue
  | "\\explain" :: "analyze" :: "json" :: rest when rest <> [] ->
      (match Session.analyze ctx.session (strip_semi rest) with
      | Ok a -> print_endline (Tdb_obs.Json.to_string (Engine.analysis_to_json a))
      | Error e -> Printf.printf "error: %s\n" e);
      `Continue
  | "\\explain" :: "analyze" :: rest when rest <> [] ->
      (match Session.analyze ctx.session (strip_semi rest) with
      | Ok a -> print_string (Engine.render_analysis a)
      | Error e -> Printf.printf "error: %s\n" e);
      `Continue
  | "\\explain" :: rest when rest <> [] ->
      let stmt = strip_semi rest in
      (match Session.explain ctx.session stmt with
      | Ok plan -> Printf.printf "plan: %s\n" plan
      | Error e -> Printf.printf "error: %s\n" e);
      `Continue
  | [ "\\explain" ] ->
      print_endline "usage: \\explain [analyze [json]] STATEMENT";
      `Continue
  | [ "\\recoveries" ] ->
      let page_level = Database.recoveries db in
      let journal = Database.journal_recovery db in
      if page_level = [] && journal = None then
        print_endline "(no recovery was needed when this database was opened)"
      else begin
        Option.iter
          (fun r ->
            Printf.printf "journal: %s\n"
              (Format.asprintf "%a" Tdb_storage.Journal.pp_report r))
          journal;
        List.iter
          (fun (name, r) ->
            Printf.printf "relation %s: %s\n" name
              (Format.asprintf "%a" Disk.pp_recovery r))
          page_level
      end;
      `Continue
  | [ "\\help" ] | [ "\\h" ] | [ "\\?" ] ->
      help ();
      `Continue
  | _ ->
      print_endline "unknown meta command (try \\help)";
      `Continue

let repl ctx =
  print_endline
    "tquel - a temporal DBMS speaking TQuel (type \\help for help)";
  let buffer = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buffer = 0 then "tquel> " else "   ... ");
    match read_line () with
    | exception End_of_file -> print_newline ()
    | line when Buffer.length buffer = 0 && String.length (String.trim line) > 0
                && (String.trim line).[0] = '\\' -> (
        match meta ctx line with `Quit -> () | `Continue -> loop ())
    | line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        let trimmed = String.trim text in
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
        then begin
          Buffer.clear buffer;
          ignore (run_source ctx trimmed)
        end;
        loop ()
  in
  loop ()

let warn_recoveries db =
  Option.iter
    (fun r ->
      Printf.eprintf
        "notice: journal recovery ran: %s (details: \\recoveries)\n%!"
        (Format.asprintf "%a" Tdb_storage.Journal.pp_report r))
    (Database.journal_recovery db);
  List.iter
    (fun (name, r) ->
      Printf.eprintf "warning: recovered relation %s: %s\n%!" name
        (Format.asprintf "%a" Disk.pp_recovery r))
    (Database.recoveries db)

let statement_exit ok = if ok then 0 else Tdb_error.exit_code Tdb_error.Query

let run_session dir script command stress =
  match Database.create ?dir () with
  | Error e ->
      Printf.eprintf "cannot open database: %s\n" e;
      1
  | Ok db ->
      warn_recoveries db;
      let inst = Db_instance.of_database db in
      let session = Session.open_ ~name:"main" inst in
      let ctx = { inst; session; stress } in
      let finish code =
        Session.close session;
        Database.close db;
        code
      in
      (match (script, command) with
      | Some path, _ ->
          if not (Sys.file_exists path) then begin
            Printf.eprintf "no such script: %s\n" path;
            finish 1
          end
          else begin
            let ic = open_in path in
            let n = in_channel_length ic in
            let src = really_input_string ic n in
            close_in ic;
            finish (statement_exit (run_source ctx src))
          end
      | None, Some stmt -> finish (statement_exit (run_source ctx stmt))
      | None, None ->
          repl ctx;
          finish 0)

(* Storage-level failures — corruption, I/O — stop the process with a
   class-specific exit code and a one-line message, never a backtrace. *)
let main dir script command profile workers log sessions =
  if profile then Tdb_obs.Trace.set_enabled true;
  Option.iter
    (fun path ->
      (* --log overrides TDB_LOG but keeps the env-tuned knobs. *)
      let slow_s =
        Option.map
          (fun ms -> ms /. 1000.)
          (Option.bind (Sys.getenv_opt "TDB_LOG_SLOW_MS") float_of_string_opt)
      in
      let max_bytes =
        Option.bind (Sys.getenv_opt "TDB_LOG_MAX_BYTES") int_of_string_opt
      in
      Tdb_obs.Statement_log.set ?slow_s ?max_bytes (Some path))
    log;
  Engine.set_parallelism workers;
  let stress = max 1 sessions in
  try run_session dir script command stress
  with Tdb_error.Error (cls, msg) ->
    Printf.eprintf "fatal %s\n" (Tdb_error.message cls msg);
    Tdb_error.exit_code cls

open Cmdliner

let dir =
  let doc = "Open (or create) a persistent database rooted at $(docv)." in
  Arg.(value & opt (some string) None & info [ "d"; "database" ] ~docv:"DIR" ~doc)

let script =
  let doc = "Run the TQuel script $(docv) and exit." in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"SCRIPT" ~doc)

let command =
  let doc = "Run a single TQuel statement and exit." in
  Arg.(value & opt (some string) None & info [ "c"; "command" ] ~docv:"STMT" ~doc)

let profile =
  let doc =
    "Enable span tracing for the whole session: every statement prints its \
     operator trace tree (page I/O and wall time per operator)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let workers =
  let doc =
    "Number of worker domains for parallel scans (at least 1; 1 disables \
     parallelism).  Defaults to the $(b,TDB_WORKERS) environment variable, \
     or the machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)

let log =
  let doc =
    "Append one JSON record per executed statement to $(docv) (statement \
     text, outcome, latency, page I/O, journal bytes).  Equivalent to \
     setting $(b,TDB_LOG); $(b,TDB_LOG_SLOW_MS) and $(b,TDB_LOG_MAX_BYTES) \
     tune the slow-statement threshold and size-based rotation."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"PATH" ~doc)

let sessions =
  let doc =
    "Stress mode: run every displayed retrieve on $(docv) concurrent \
     snapshot sessions (each pins the published epoch and executes with \
     no lock held) and check they agree.  1 (the default) keeps the \
     ordinary single-session behaviour."
  in
  Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N" ~doc)

let cmd =
  let doc = "a temporal database management system speaking TQuel" in
  let info = Cmd.info "tquel" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const main $ dir $ script $ command $ profile $ workers $ log $ sessions)

let () = exit (Cmd.eval' cmd)
