module Schema = Tdb_relation.Schema
module Db_type = Tdb_relation.Db_type
module Attr_type = Tdb_relation.Attr_type
open Ast

type rel_info = { schema : Schema.t; db_type : Db_type.t }

type env = {
  find_relation : string -> rel_info option;
  find_range : string -> string option;
}

type family = Fnum | Fstr | Ftime

let family_of_type = function
  | Attr_type.I1 | I2 | I4 | F4 | F8 -> Fnum
  | C _ -> Fstr
  | Time -> Ftime

let ( let* ) = Result.bind

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let resolve_var env var =
  match env.find_range var with
  | None -> errf "tuple variable %S has no range statement" var
  | Some rel -> (
      match env.find_relation rel with
      | None -> errf "relation %S (range of %s) does not exist" rel var
      | Some info -> Ok (rel, info))

let resolve_attr env var attr =
  let* _rel, info = resolve_var env var in
  match Schema.index_of info.schema attr with
  | None -> errf "relation of %s has no attribute %S" var attr
  | Some i -> Ok (info, (Schema.attr info.schema i).Schema.ty)

let rec infer_expr env = function
  | Eattr (var, attr) ->
      let* _, ty = resolve_attr env var attr in
      Ok (family_of_type ty)
  | Eint _ | Efloat _ -> Ok Fnum
  | Estring _ -> Ok Fstr
  | Euminus e -> (
      let* f = infer_expr env e in
      match f with
      | Fnum -> Ok Fnum
      | _ -> Error "unary minus needs a numeric operand")
  | Ebinop (op, a, b) -> (
      let* fa = infer_expr env a in
      let* fb = infer_expr env b in
      match (fa, fb) with
      | Fnum, Fnum -> Ok Fnum
      | _ ->
          errf "arithmetic operator %s needs numeric operands"
            (Pretty.binop_to_string op))
  | Eagg (agg, e, by) -> (
      let* () =
        List.fold_left
          (fun acc b ->
            let* () = acc in
            match b with
            | Eattr _ -> Result.map ignore (infer_expr env b)
            | _ -> errf "by-list entries must be attribute references")
          (Ok ()) by
      in
      let* () =
        (* the operand and the by-list must speak about one tuple
           variable: a by-aggregate is a grouped fold over that relation *)
        let rec vars acc = function
          | Eattr (v, _) -> if List.mem v acc then acc else v :: acc
          | Eint _ | Efloat _ | Estring _ -> acc
          | Ebinop (_, a, b) -> vars (vars acc a) b
          | Euminus e -> vars acc e
          | Eagg (_, e, by) -> List.fold_left vars (vars acc e) by
        in
        match List.fold_left vars (vars [] e) by with
        | [] when by <> [] -> errf "a by-aggregate needs a tuple variable"
        | [] | [ _ ] -> Ok ()
        | vs ->
            errf "aggregate mixes tuple variables (%s)"
              (String.concat ", " vs)
      in
      let* f = infer_expr env e in
      match agg with
      | Count | Any -> Ok Fnum
      | Sum | Avg ->
          if f = Fnum then Ok Fnum
          else errf "%s needs a numeric operand" (aggregate_name agg)
      | Min | Max -> Ok f)

let rec expr_has_aggregate = function
  | Eagg _ -> true
  | Eattr _ | Eint _ | Efloat _ | Estring _ -> false
  | Ebinop (_, a, b) -> expr_has_aggregate a || expr_has_aggregate b
  | Euminus e -> expr_has_aggregate e

(* A global aggregate (no by-list) collapses the retrieve to one row;
   by-aggregates evaluate per binding and behave like ordinary values. *)
let rec expr_has_global_aggregate = function
  | Eagg (_, _, []) -> true
  | Eagg (_, _, _ :: _) -> false (* by-aggregate; no nesting inside anyway *)
  | Eattr _ | Eint _ | Efloat _ | Estring _ -> false
  | Ebinop (_, a, b) ->
      expr_has_global_aggregate a || expr_has_global_aggregate b
  | Euminus e -> expr_has_global_aggregate e

let check_no_aggregate context e =
  if expr_has_aggregate e then
    errf "aggregates are not allowed in %s" context
  else Ok ()

(* In a global-aggregate target list, attribute references must sit inside
   an aggregate operand, aggregates do not nest, and per-binding
   by-aggregates cannot mix in (there is no binding left to evaluate them
   against). *)
let check_aggregate_placement e =
  let rec go ~inside = function
    | Eattr (v, a) ->
        if inside then Ok ()
        else
          errf
            "attribute %s.%s must appear inside an aggregate when the \
             target list aggregates"
            v a
    | Eint _ | Efloat _ | Estring _ -> Ok ()
    | Ebinop (_, a, b) ->
        let* () = go ~inside a in
        go ~inside b
    | Euminus e -> go ~inside e
    | Eagg (agg, inner, by) ->
        if inside then
          errf "aggregate %s may not nest inside another aggregate"
            (aggregate_name agg)
        else if by <> [] then
          errf
            "by-aggregates cannot mix with global aggregates in one target \
             list"
        else go ~inside:true inner
  in
  go ~inside:false e

(* A by-aggregate target list: no nesting (by-aggs are fine anywhere). *)
let check_by_aggregate_nesting e =
  let rec go ~inside = function
    | Eattr _ | Eint _ | Efloat _ | Estring _ -> Ok ()
    | Ebinop (_, a, b) ->
        let* () = go ~inside a in
        go ~inside b
    | Euminus e -> go ~inside e
    | Eagg (agg, inner, by) ->
        if inside then
          errf "aggregate %s may not nest inside another aggregate"
            (aggregate_name agg)
        else
          let* () = go ~inside:true inner in
          List.fold_left
            (fun acc b ->
              let* () = acc in
              go ~inside:true b)
            (Ok ()) by
  in
  go ~inside:false e

let compatible fa fb =
  match (fa, fb) with
  | Fnum, Fnum | Fstr, Fstr | Ftime, Ftime -> true
  (* A string literal compared with a time attribute is read as a time
     constant, e.g. h.valid_from < "1981". *)
  | Ftime, Fstr | Fstr, Ftime -> true
  | _ -> false

let rec check_pred env = function
  | Pcompare (_, a, b) ->
      let* () = check_no_aggregate "a where clause" a in
      let* () = check_no_aggregate "a where clause" b in
      let* fa = infer_expr env a in
      let* fb = infer_expr env b in
      if compatible fa fb then Ok ()
      else
        errf "type mismatch in comparison: %s vs %s" (Pretty.expr a)
          (Pretty.expr b)
  | Wand (a, b) | Wor (a, b) ->
      let* () = check_pred env a in
      check_pred env b
  | Wnot a -> check_pred env a

(* Every tuple variable inside a temporal expression must range over a
   relation with valid time; every time constant must be parseable. *)
let rec check_tempexpr env = function
  | Tvar var ->
      let* _, info = resolve_var env var in
      if Db_type.has_valid_time info.db_type then Ok ()
      else
        errf
          "tuple variable %s appears in a temporal expression but its \
           relation is %s (no valid time)"
          var
          (Db_type.to_string info.db_type)
  | Tconst s -> (
      match Tdb_time.Chronon.parse ~now:(Tdb_time.Chronon.of_seconds 0) s with
      | Ok _ -> Ok ()
      | Error e -> errf "bad time constant %S: %s" s e)
  | Toverlap (a, b) | Textend (a, b) ->
      let* () = check_tempexpr env a in
      check_tempexpr env b
  | Tstart_of e | Tend_of e -> check_tempexpr env e

let rec check_temppred env = function
  | Poverlap (a, b) | Pprecede (a, b) | Pequal (a, b) ->
      let* () = check_tempexpr env a in
      check_tempexpr env b
  | Pand (a, b) | Por (a, b) ->
      let* () = check_temppred env a in
      check_temppred env b
  | Pnot a -> check_temppred env a

let check_valid_clause env = function
  | Valid_interval (a, b) ->
      let* () = check_tempexpr env a in
      check_tempexpr env b
  | Valid_event e -> check_tempexpr env e

let check_as_of { at; through } =
  let now = Tdb_time.Chronon.of_seconds 0 in
  let* _ =
    Result.map_error
      (fun e -> Printf.sprintf "bad as-of constant %S: %s" at e)
      (Tdb_time.Chronon.parse ~now at)
  in
  match through with
  | None -> Ok ()
  | Some t ->
      let* _ =
        Result.map_error
          (fun e -> Printf.sprintf "bad as-of constant %S: %s" t e)
          (Tdb_time.Chronon.parse ~now t)
      in
      Ok ()

(* Tuple variables mentioned anywhere in a statement. *)
let vars_of_statement stmt =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec expr = function
    | Eattr (v, _) -> add v
    | Eint _ | Efloat _ | Estring _ -> ()
    | Ebinop (_, a, b) -> expr a; expr b
    | Euminus e -> expr e
    | Eagg (_, e, by) -> expr e; List.iter expr by
  in
  let rec pred = function
    | Pcompare (_, a, b) -> expr a; expr b
    | Wand (a, b) | Wor (a, b) -> pred a; pred b
    | Wnot a -> pred a
  in
  let rec te = function
    | Tvar v -> add v
    | Tconst _ -> ()
    | Toverlap (a, b) | Textend (a, b) -> te a; te b
    | Tstart_of e | Tend_of e -> te e
  in
  let rec tp = function
    | Poverlap (a, b) | Pprecede (a, b) | Pequal (a, b) -> te a; te b
    | Pand (a, b) | Por (a, b) -> tp a; tp b
    | Pnot a -> tp a
  in
  let targets ts = List.iter (fun t -> expr t.value) ts in
  let valid = function
    | Some (Valid_interval (a, b)) -> te a; te b
    | Some (Valid_event e) -> te e
    | None -> ()
  in
  let opt_pred = function Some p -> pred p | None -> () in
  let opt_tp = function Some p -> tp p | None -> () in
  (match stmt with
  | Range _ | Create _ | Modify _ | Destroy _ | Copy _ -> ()
  | Retrieve r ->
      targets r.targets; valid r.valid; opt_pred r.where; opt_tp r.when_
  | Append a -> targets a.targets; valid a.valid; opt_pred a.where; opt_tp a.when_
  | Delete d -> add d.var; opt_pred d.where; opt_tp d.when_
  | Replace r ->
      add r.var; targets r.targets; valid r.valid; opt_pred r.where;
      opt_tp r.when_);
  List.rev !acc

let rec check_all f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      check_all f rest

let check_targets env targets =
  let* () = check_all (fun t -> Result.map ignore (infer_expr env t.value)) targets in
  (* Every target needs a name.  Targets named by default after their
     attribute (h.id) may collide - the paper's Q09 retrieves (h.id, i.id) -
     and are uniquified at execution; explicitly chosen names must be
     unique. *)
  let* names =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        match (t.out_name, t.value) with
        | Some n, Eattr (_, a) when n = a -> Ok ((n, false) :: acc)
        | Some n, _ -> Ok ((n, true) :: acc)
        | None, _ ->
            errf "target %S needs a result name (use name = expression)"
              (Pretty.expr t.value))
      (Ok []) targets
  in
  let count n = List.length (List.filter (fun (m, _) -> m = n) names) in
  let rec dup = function
    | [] -> Ok ()
    | (n, explicit) :: rest ->
        if explicit && count n > 1 then errf "duplicate result attribute %S" n
        else dup rest
  in
  dup names

(* [as of] is legal only when every participating relation records
   transaction time. *)
let check_as_of_applicability env stmt vars =
  match stmt with
  | Retrieve { as_of = Some _; _ } ->
      check_all
        (fun v ->
          let* _, info = resolve_var env v in
          if Db_type.has_transaction_time info.db_type then Ok ()
          else
            errf
              "as of: relation of %s is %s, which records no transaction time"
              v
              (Db_type.to_string info.db_type))
        vars
  | _ -> Ok ()

let check_modification_targets rel_schema targets =
  check_all
    (fun t ->
      match t.out_name with
      | None -> errf "modification target %S needs an attribute name" (Pretty.expr t.value)
      | Some name -> (
          match Schema.index_of rel_schema name with
          | None -> errf "relation has no attribute %S" name
          | Some i ->
              if i >= Schema.user_arity rel_schema then
                errf
                  "attribute %S is implicit; use the valid clause (or the \
                   system clock) instead of assigning it directly"
                  name
              else Ok ()))
    targets

let check_statement env stmt =
  let vars = vars_of_statement stmt in
  let* () = check_all (fun v -> Result.map ignore (resolve_var env v)) vars in
  let check_opt_pred = function Some p -> check_pred env p | None -> Ok () in
  let check_opt_tp = function Some p -> check_temppred env p | None -> Ok () in
  let check_opt_valid = function
    | Some v -> check_valid_clause env v
    | None -> Ok ()
  in
  match stmt with
  | Range { rel; _ } -> (
      match env.find_relation rel with
      | Some _ -> Ok ()
      | None -> errf "relation %S does not exist" rel)
  | Retrieve r ->
      let* () = check_targets env r.targets in
      let* () =
        if List.exists (fun t -> expr_has_global_aggregate t.value) r.targets
        then
          let* () =
            check_all (fun t -> check_aggregate_placement t.value) r.targets
          in
          match r.valid with
          | Some _ -> errf "a valid clause cannot be combined with aggregates"
          | None -> Ok ()
        else check_all (fun t -> check_by_aggregate_nesting t.value) r.targets
      in
      let* () =
        if not r.coalesce then Ok ()
        else
          let rec has_by_aggregate = function
            | Eagg (_, _, _ :: _) -> true
            | Eagg (_, e, []) | Euminus e -> has_by_aggregate e
            | Ebinop (_, a, b) -> has_by_aggregate a || has_by_aggregate b
            | Eattr _ | Eint _ | Efloat _ | Estring _ -> false
          in
          let valid_time_var v =
            match resolve_var env v with
            | Ok (_, info) -> Db_type.has_valid_time info.db_type
            | Error _ -> false
          in
          if List.exists (fun t -> has_by_aggregate t.value) r.targets then
            errf "coalesced cannot be combined with by-aggregates"
          else if not (List.exists valid_time_var vars) then
            errf
              "coalesced needs a tuple variable ranging over a valid-time \
               relation"
          else
            match r.valid with
            | Some (Valid_event _) ->
                errf "coalesced produces intervals; valid at cannot apply"
            | Some (Valid_interval _) | None -> Ok ()
      in
      let* () = check_opt_valid r.valid in
      let* () = check_opt_pred r.where in
      let* () = check_opt_tp r.when_ in
      let* () =
        match r.as_of with Some a -> check_as_of a | None -> Ok ()
      in
      check_as_of_applicability env stmt vars
  | Append a -> (
      match env.find_relation a.rel with
      | None -> errf "relation %S does not exist" a.rel
      | Some info ->
          let* () = check_modification_targets info.schema a.targets in
          let* () =
            check_all
              (fun t ->
                let* () = check_no_aggregate "an append" t.value in
                Result.map ignore (infer_expr env t.value))
              a.targets
          in
          let* () =
            match a.valid with
            | Some _ when not (Db_type.has_valid_time info.db_type) ->
                errf "valid clause on %s relation %S"
                  (Db_type.to_string info.db_type)
                  a.rel
            | v -> check_opt_valid v
          in
          let* () = check_opt_pred a.where in
          check_opt_tp a.when_)
  | Delete d ->
      let* () = check_opt_pred d.where in
      check_opt_tp d.when_
  | Replace r ->
      let* _, info = resolve_var env r.var in
      let* () = check_modification_targets info.schema r.targets in
      let* () =
        check_all
          (fun t ->
            let* () = check_no_aggregate "a replace" t.value in
            Result.map ignore (infer_expr env t.value))
          r.targets
      in
      let* () =
        match r.valid with
        | Some _ when not (Db_type.has_valid_time info.db_type) ->
            errf "valid clause on %s relation" (Db_type.to_string info.db_type)
        | v -> check_opt_valid v
      in
      let* () = check_opt_pred r.where in
      check_opt_tp r.when_
  | Create c -> (
      match env.find_relation c.rel with
      | Some _ -> errf "relation %S already exists" c.rel
      | None ->
          let* attrs =
            List.fold_left
              (fun acc (name, ty) ->
                let* acc = acc in
                match Attr_type.of_string ty with
                | Ok ty -> Ok ({ Schema.name; ty } :: acc)
                | Error e -> errf "attribute %S: %s" name e)
              (Ok []) c.attrs
          in
          let db_type = db_type_of_create c in
          Result.map ignore (Schema.create ~db_type (List.rev attrs)))
  | Modify m -> (
      match env.find_relation m.rel with
      | None -> errf "relation %S does not exist" m.rel
      | Some info -> (
          let* () =
            match m.fillfactor with
            | Some f when f < 1 || f > 100 ->
                errf "fillfactor %d not in 1..100" f
            | _ -> Ok ()
          in
          match m.organization with
          | Org_heap ->
              if m.on_attr <> None then errf "heap takes no key attribute"
              else Ok ()
          | Org_hash | Org_isam -> (
              match m.on_attr with
              | None -> errf "hash and isam need a key: modify ... on attr"
              | Some attr -> (
                  match Schema.index_of info.schema attr with
                  | Some _ -> Ok ()
                  | None -> errf "relation %S has no attribute %S" m.rel attr))))
  | Destroy rel -> (
      match env.find_relation rel with
      | Some _ -> Ok ()
      | None -> errf "relation %S does not exist" rel)
  | Copy c -> (
      match env.find_relation c.rel with
      | Some _ -> Ok ()
      | None -> errf "relation %S does not exist" c.rel)
