open Ast

let rec tempexpr = function
  | Tvar v -> v
  | Tconst s -> Printf.sprintf "%S" s
  | Toverlap (a, b) -> Printf.sprintf "(%s overlap %s)" (tempexpr a) (tempexpr b)
  | Textend (a, b) -> Printf.sprintf "(%s extend %s)" (tempexpr a) (tempexpr b)
  | Tstart_of e -> Printf.sprintf "start of %s" (tempexpr e)
  | Tend_of e -> Printf.sprintf "end of %s" (tempexpr e)

let rec temppred = function
  | Poverlap (a, b) -> Printf.sprintf "(%s overlap %s)" (tempexpr a) (tempexpr b)
  | Pprecede (a, b) -> Printf.sprintf "(%s precede %s)" (tempexpr a) (tempexpr b)
  | Pequal (a, b) -> Printf.sprintf "(%s equal %s)" (tempexpr a) (tempexpr b)
  | Pand (a, b) -> Printf.sprintf "(%s and %s)" (temppred a) (temppred b)
  | Por (a, b) -> Printf.sprintf "(%s or %s)" (temppred a) (temppred b)
  | Pnot a -> Printf.sprintf "not %s" (temppred a)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"

let rec expr = function
  | Eattr (v, a) -> Printf.sprintf "%s.%s" v a
  | Eint n -> string_of_int n
  | Efloat f -> Printf.sprintf "%g" f
  | Estring s -> Printf.sprintf "%S" s
  | Ebinop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr a) (binop_to_string op) (expr b)
  | Euminus e -> Printf.sprintf "(- %s)" (expr e)
  | Eagg (agg, e, []) -> Printf.sprintf "%s(%s)" (aggregate_name agg) (expr e)
  | Eagg (agg, e, by) ->
      Printf.sprintf "%s(%s by %s)" (aggregate_name agg) (expr e)
        (String.concat ", " (List.map expr by))

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pred = function
  | Pcompare (op, a, b) ->
      Printf.sprintf "%s %s %s" (expr a) (comparison_to_string op) (expr b)
  | Wand (a, b) -> Printf.sprintf "(%s and %s)" (pred a) (pred b)
  | Wor (a, b) -> Printf.sprintf "(%s or %s)" (pred a) (pred b)
  | Wnot a -> Printf.sprintf "not (%s)" (pred a)

let target t =
  match (t.out_name, t.value) with
  | Some name, Eattr (v, a) when name = a -> Printf.sprintf "%s.%s" v a
  | Some name, e -> Printf.sprintf "%s = %s" name (expr e)
  | None, e -> expr e

let target_list ts = "(" ^ String.concat ", " (List.map target ts) ^ ")"

let valid_clause = function
  | Valid_interval (a, b) ->
      Printf.sprintf "valid from %s to %s" (tempexpr a) (tempexpr b)
  | Valid_event e -> Printf.sprintf "valid at %s" (tempexpr e)

let as_of_clause { at; through } =
  match through with
  | None -> Printf.sprintf "as of %S" at
  | Some t -> Printf.sprintf "as of %S through %S" at t

let opt f = function None -> [] | Some x -> [ f x ]

let clauses ?valid ?where ?when_ ?as_of () =
  String.concat " "
    (List.concat
       [
         opt valid_clause (Option.join valid);
         opt (fun p -> "where " ^ pred p) (Option.join where);
         opt (fun p -> "when " ^ temppred p) (Option.join when_);
         opt as_of_clause (Option.join as_of);
       ])

let glue parts = String.concat " " (List.filter (fun s -> s <> "") parts)

let statement = function
  | Range { var; rel } -> Printf.sprintf "range of %s is %s" var rel
  | Retrieve r ->
      glue
        [
          "retrieve";
          (if r.unique then "unique" else "");
          (if r.coalesce then "coalesced" else "");
          (match r.into with Some rel -> "into " ^ rel | None -> "");
          target_list r.targets;
          clauses ~valid:r.valid ~where:r.where ~when_:r.when_ ~as_of:r.as_of ();
        ]
  | Append a ->
      glue
        [
          "append to";
          a.rel;
          target_list a.targets;
          clauses ~valid:a.valid ~where:a.where ~when_:a.when_ ();
        ]
  | Delete d ->
      glue [ "delete"; d.var; clauses ~where:d.where ~when_:d.when_ () ]
  | Replace r ->
      glue
        [
          "replace";
          r.var;
          target_list r.targets;
          clauses ~valid:r.valid ~where:r.where ~when_:r.when_ ();
        ]
  | Create c ->
      glue
        [
          "create";
          (if c.persistent then "persistent" else "");
          (match c.kind with
          | Some Tdb_relation.Db_type.Interval -> "interval"
          | Some Tdb_relation.Db_type.Event -> "event"
          | None -> "");
          c.rel;
          "("
          ^ String.concat ", "
              (List.map (fun (n, ty) -> Printf.sprintf "%s = %s" n ty) c.attrs)
          ^ ")";
        ]
  | Modify m ->
      glue
        [
          "modify";
          m.rel;
          "to";
          (match m.organization with
          | Org_heap -> "heap"
          | Org_hash -> "hash"
          | Org_isam -> "isam");
          (match m.on_attr with Some a -> "on " ^ a | None -> "");
          (match m.fillfactor with
          | Some f -> Printf.sprintf "where fillfactor = %d" f
          | None -> "");
        ]
  | Destroy rel -> "destroy " ^ rel
  | Copy c ->
      glue
        [
          "copy";
          c.rel;
          (match c.direction with Copy_from -> "from" | Copy_into -> "into");
          Printf.sprintf "%S" c.path;
        ]
