open Ast

exception Parse_error of string

type cursor = { tokens : Lexer.positioned array; mutable pos : int }

let fail cur msg =
  let where =
    if cur.pos < Array.length cur.tokens then
      let p = cur.tokens.(cur.pos) in
      Printf.sprintf "line %d, column %d (at %S)" p.Lexer.line p.Lexer.col
        (Token.to_string p.Lexer.token)
    else "end of input"
  in
  raise (Parse_error (Printf.sprintf "parse error at %s: %s" where msg))

let peek cur =
  if cur.pos < Array.length cur.tokens then Some cur.tokens.(cur.pos).Lexer.token
  else None

let advance cur = cur.pos <- cur.pos + 1

let eat cur token =
  match peek cur with
  | Some t when Token.equal t token -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %s" (Token.to_string token))

let eat_kw cur kw = eat cur (Token.Kw kw)

let accept cur token =
  match peek cur with
  | Some t when Token.equal t token ->
      advance cur;
      true
  | _ -> false

let accept_kw cur kw = accept cur (Token.Kw kw)

let ident cur =
  match peek cur with
  | Some (Token.Ident s) ->
      advance cur;
      s
  | _ -> fail cur "expected an identifier"

let string_lit cur =
  match peek cur with
  | Some (Token.String_lit s) ->
      advance cur;
      s
  | _ -> fail cur "expected a string literal"

let int_lit cur =
  match peek cur with
  | Some (Token.Int_lit n) ->
      advance cur;
      n
  | _ -> fail cur "expected an integer"

(* Backtracking: run [f]; on Parse_error restore the cursor and run [g]. *)
let attempt cur f g =
  let saved = cur.pos in
  try f () with Parse_error _ ->
    cur.pos <- saved;
    g ()

(* --- scalar expressions --- *)

let rec parse_expr cur =
  let lhs = parse_term cur in
  let rec go lhs =
    match peek cur with
    | Some Token.Plus ->
        advance cur;
        go (Ebinop (Add, lhs, parse_term cur))
    | Some Token.Minus ->
        advance cur;
        go (Ebinop (Sub, lhs, parse_term cur))
    | _ -> lhs
  in
  go lhs

and parse_term cur =
  let lhs = parse_factor cur in
  let rec go lhs =
    match peek cur with
    | Some Token.Star ->
        advance cur;
        go (Ebinop (Mul, lhs, parse_factor cur))
    | Some Token.Slash ->
        advance cur;
        go (Ebinop (Div, lhs, parse_factor cur))
    | Some (Token.Kw "mod") ->
        advance cur;
        go (Ebinop (Mod, lhs, parse_factor cur))
    | _ -> lhs
  in
  go lhs

and parse_factor cur =
  match peek cur with
  | Some Token.Minus ->
      advance cur;
      Euminus (parse_factor cur)
  | Some (Token.Int_lit n) ->
      advance cur;
      Eint n
  | Some (Token.Float_lit f) ->
      advance cur;
      Efloat f
  | Some (Token.String_lit s) ->
      advance cur;
      Estring s
  | Some Token.Lparen ->
      advance cur;
      let e = parse_expr cur in
      eat cur Token.Rparen;
      e
  | Some (Token.Ident v) -> (
      advance cur;
      if accept cur Token.Dot then Eattr (v, ident cur)
      else
        match Ast.aggregate_of_name v with
        | Some agg when peek cur = Some Token.Lparen ->
            advance cur;
            let e = parse_expr cur in
            let by =
              if accept_kw cur "by" then begin
                let rec attrs acc =
                  let v = ident cur in
                  eat cur Token.Dot;
                  let a = ident cur in
                  let acc = Eattr (v, a) :: acc in
                  if accept cur Token.Comma then attrs acc else List.rev acc
                in
                attrs []
              end
              else []
            in
            eat cur Token.Rparen;
            Eagg (agg, e, by)
        | _ ->
            fail cur
              "expected '.' after a tuple variable (attributes are var.attr)")
  | _ -> fail cur "expected an expression"

(* --- predicates (where clause) --- *)

let parse_comparison cur =
  let lhs = parse_expr cur in
  let op =
    match peek cur with
    | Some Token.Equal -> Eq
    | Some Token.Not_equal -> Ne
    | Some Token.Less -> Lt
    | Some Token.Less_equal -> Le
    | Some Token.Greater -> Gt
    | Some Token.Greater_equal -> Ge
    | _ -> fail cur "expected a comparison operator"
  in
  advance cur;
  let rhs = parse_expr cur in
  Pcompare (op, lhs, rhs)

let rec parse_pred cur =
  let lhs = parse_and_pred cur in
  if accept_kw cur "or" then Wor (lhs, parse_pred cur) else lhs

and parse_and_pred cur =
  let lhs = parse_not_pred cur in
  if accept_kw cur "and" then Wand (lhs, parse_and_pred cur) else lhs

and parse_not_pred cur =
  if accept_kw cur "not" then Wnot (parse_not_pred cur)
  else
    match peek cur with
    | Some Token.Lparen ->
        (* Either a parenthesized predicate or a parenthesized expression
           starting a comparison; try the predicate reading first. *)
        attempt cur
          (fun () ->
            eat cur Token.Lparen;
            let p = parse_pred cur in
            eat cur Token.Rparen;
            (* Guard: if a comparison operator follows, the parentheses
               belonged to an expression after all. *)
            (match peek cur with
            | Some
                ( Token.Equal | Token.Not_equal | Token.Less | Token.Less_equal
                | Token.Greater | Token.Greater_equal | Token.Plus | Token.Minus
                | Token.Star | Token.Slash ) ->
                fail cur "parenthesized expression, not predicate"
            | _ -> ());
            p)
          (fun () -> parse_comparison cur)
    | _ -> parse_comparison cur

(* --- temporal expressions and predicates --- *)

let rec parse_tempexpr cur =
  let lhs = parse_tempfactor cur in
  let rec go lhs =
    if accept_kw cur "overlap" then go (Toverlap (lhs, parse_tempfactor cur))
    else if accept_kw cur "extend" then go (Textend (lhs, parse_tempfactor cur))
    else lhs
  in
  go lhs

and parse_tempfactor cur =
  match peek cur with
  | Some (Token.Kw "start") ->
      advance cur;
      eat_kw cur "of";
      Tstart_of (parse_tempfactor cur)
  | Some (Token.Kw "end") ->
      advance cur;
      eat_kw cur "of";
      Tend_of (parse_tempfactor cur)
  | Some (Token.Ident v) ->
      advance cur;
      Tvar v
  | Some (Token.String_lit s) ->
      advance cur;
      Tconst s
  | Some Token.Lparen ->
      advance cur;
      let e = parse_tempexpr cur in
      eat cur Token.Rparen;
      e
  | _ -> fail cur "expected a temporal expression"

(* A temporal atom: either [e1 precede e2], [e1 equal e2], or a bare
   temporal expression whose top-level operator is [overlap], which TQuel
   reads as the overlap predicate. *)
let parse_temp_atom cur =
  let lhs = parse_tempexpr cur in
  if accept_kw cur "precede" then Pprecede (lhs, parse_tempexpr cur)
  else if accept_kw cur "equal" then Pequal (lhs, parse_tempexpr cur)
  else
    match lhs with
    | Toverlap (a, b) -> Poverlap (a, b)
    | _ ->
        fail cur
          "expected a temporal predicate (overlap, precede or equal)"

let rec parse_temppred cur =
  let lhs = parse_temp_and cur in
  if accept_kw cur "or" then Por (lhs, parse_temppred cur) else lhs

and parse_temp_and cur =
  let lhs = parse_temp_not cur in
  if accept_kw cur "and" then Pand (lhs, parse_temp_and cur) else lhs

and parse_temp_not cur =
  if accept_kw cur "not" then Pnot (parse_temp_not cur)
  else
    match peek cur with
    | Some Token.Lparen ->
        attempt cur
          (fun () ->
            eat cur Token.Lparen;
            let p = parse_temppred cur in
            eat cur Token.Rparen;
            (match peek cur with
            | Some (Token.Kw ("overlap" | "extend" | "precede" | "equal")) ->
                fail cur "parenthesized temporal expression, not predicate"
            | _ -> ());
            p)
          (fun () -> parse_temp_atom cur)
    | _ -> parse_temp_atom cur

(* --- clauses --- *)

let parse_target cur =
  match (peek cur, if cur.pos + 1 < Array.length cur.tokens then Some cur.tokens.(cur.pos + 1).Lexer.token else None) with
  | Some (Token.Ident name), Some Token.Equal ->
      advance cur;
      advance cur;
      { out_name = Some name; value = parse_expr cur }
  | _ ->
      let e = parse_expr cur in
      let out_name =
        match e with Eattr (_, attr) -> Some attr | _ -> None
      in
      { out_name; value = e }

let parse_target_list cur =
  eat cur Token.Lparen;
  let rec go acc =
    let t = parse_target cur in
    if accept cur Token.Comma then go (t :: acc)
    else begin
      eat cur Token.Rparen;
      List.rev (t :: acc)
    end
  in
  go []

let parse_valid cur =
  (* after the keyword [valid] *)
  if accept_kw cur "at" then Valid_event (parse_tempexpr cur)
  else begin
    eat_kw cur "from";
    let from_ = parse_tempexpr cur in
    eat_kw cur "to";
    let to_ = parse_tempexpr cur in
    Valid_interval (from_, to_)
  end

let parse_as_of cur =
  (* after the keywords [as of] *)
  let at = string_lit cur in
  let through = if accept_kw cur "through" then Some (string_lit cur) else None in
  { at; through }

type clauses = {
  mutable c_valid : valid_clause option;
  mutable c_where : pred option;
  mutable c_when : temppred option;
  mutable c_as_of : as_of_clause option;
}

let parse_clauses ?(allow_as_of = true) ?(allow_valid = true) cur =
  let c = { c_valid = None; c_where = None; c_when = None; c_as_of = None } in
  let dup name = fail cur (Printf.sprintf "duplicate %s clause" name) in
  let rec go () =
    match peek cur with
    | Some (Token.Kw "valid") when allow_valid ->
        advance cur;
        if c.c_valid <> None then dup "valid";
        c.c_valid <- Some (parse_valid cur);
        go ()
    | Some (Token.Kw "where") ->
        advance cur;
        if c.c_where <> None then dup "where";
        c.c_where <- Some (parse_pred cur);
        go ()
    | Some (Token.Kw "when") ->
        advance cur;
        if c.c_when <> None then dup "when";
        c.c_when <- Some (parse_temppred cur);
        go ()
    | Some (Token.Kw "as") when allow_as_of ->
        advance cur;
        eat_kw cur "of";
        if c.c_as_of <> None then dup "as of";
        c.c_as_of <- Some (parse_as_of cur);
        go ()
    | _ -> ()
  in
  go ();
  c

(* --- statements --- *)

let parse_retrieve cur =
  (* after [retrieve]; [unique] and [coalesced] may appear in either
     order, before or after [into rel] *)
  let modifiers () =
    let unique = ref false and coalesce = ref false in
    let rec go () =
      if accept_kw cur "unique" then (unique := true; go ())
      else if accept_kw cur "coalesced" then (coalesce := true; go ())
    in
    go ();
    (!unique, !coalesce)
  in
  let unique, coalesce = modifiers () in
  let into = if accept_kw cur "into" then Some (ident cur) else None in
  let unique', coalesce' = modifiers () in
  let unique = unique || unique' and coalesce = coalesce || coalesce' in
  let targets = parse_target_list cur in
  let c = parse_clauses cur in
  Retrieve
    {
      into;
      unique;
      coalesce;
      targets;
      valid = c.c_valid;
      where = c.c_where;
      when_ = c.c_when;
      as_of = c.c_as_of;
    }

let parse_append cur =
  ignore (accept_kw cur "to");
  let rel = ident cur in
  let targets = parse_target_list cur in
  let c = parse_clauses ~allow_as_of:false cur in
  Append { rel; targets; valid = c.c_valid; where = c.c_where; when_ = c.c_when }

let parse_delete cur =
  let var = ident cur in
  let c = parse_clauses ~allow_as_of:false ~allow_valid:false cur in
  Delete { var; where = c.c_where; when_ = c.c_when }

let parse_replace cur =
  let var = ident cur in
  let targets = parse_target_list cur in
  let c = parse_clauses ~allow_as_of:false cur in
  Replace { var; targets; valid = c.c_valid; where = c.c_where; when_ = c.c_when }

let parse_create cur =
  let persistent = accept_kw cur "persistent" in
  let kind =
    if accept_kw cur "interval" then Some Tdb_relation.Db_type.Interval
    else if accept_kw cur "event" then Some Tdb_relation.Db_type.Event
    else None
  in
  let rel = ident cur in
  eat cur Token.Lparen;
  let rec attrs acc =
    let name = ident cur in
    eat cur Token.Equal;
    let ty = ident cur in
    let acc = (name, ty) :: acc in
    if accept cur Token.Comma then attrs acc
    else begin
      eat cur Token.Rparen;
      List.rev acc
    end
  in
  Create { rel; persistent; kind; attrs = attrs [] }

let parse_modify cur =
  let rel = ident cur in
  eat_kw cur "to";
  let organization =
    match peek cur with
    | Some (Token.Kw "hash") -> advance cur; Org_hash
    | Some (Token.Kw "isam") -> advance cur; Org_isam
    | Some (Token.Kw "heap") -> advance cur; Org_heap
    | _ -> fail cur "expected hash, isam or heap"
  in
  let on_attr = if accept_kw cur "on" then Some (ident cur) else None in
  let fillfactor =
    if accept_kw cur "where" then begin
      eat_kw cur "fillfactor";
      eat cur Token.Equal;
      Some (int_lit cur)
    end
    else None
  in
  Modify { rel; organization; on_attr; fillfactor }

let parse_copy cur =
  let rel = ident cur in
  let direction =
    if accept_kw cur "from" then Copy_from
    else if accept_kw cur "into" then Copy_into
    else fail cur "expected from or into"
  in
  let path = string_lit cur in
  Copy { rel; direction; path }

let parse_one cur =
  match peek cur with
  | Some (Token.Kw "range") ->
      advance cur;
      eat_kw cur "of";
      let var = ident cur in
      eat_kw cur "is";
      let rel = ident cur in
      Range { var; rel }
  | Some (Token.Kw "retrieve") ->
      advance cur;
      parse_retrieve cur
  | Some (Token.Kw "append") ->
      advance cur;
      parse_append cur
  | Some (Token.Kw "delete") ->
      advance cur;
      parse_delete cur
  | Some (Token.Kw "replace") ->
      advance cur;
      parse_replace cur
  | Some (Token.Kw "create") ->
      advance cur;
      parse_create cur
  | Some (Token.Kw "modify") ->
      advance cur;
      parse_modify cur
  | Some (Token.Kw "destroy") ->
      advance cur;
      Destroy (ident cur)
  | Some (Token.Kw "copy") ->
      advance cur;
      parse_copy cur
  | _ -> fail cur "expected a statement"

let with_tokens src f =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok tokens -> (
      let cur = { tokens = Array.of_list tokens; pos = 0 } in
      try Ok (f cur) with Parse_error msg -> Error msg)

let parse_program src =
  with_tokens src (fun cur ->
      let rec go acc =
        while accept cur Token.Semicolon do
          ()
        done;
        if cur.pos >= Array.length cur.tokens then List.rev acc
        else go (parse_one cur :: acc)
      in
      go [])

let parse_statement src =
  with_tokens src (fun cur ->
      let s = parse_one cur in
      while accept cur Token.Semicolon do
        ()
      done;
      if cur.pos < Array.length cur.tokens then
        fail cur "trailing input after statement"
      else s)
