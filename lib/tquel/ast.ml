(** Abstract syntax of TQuel.

    TQuel extends Quel with three clauses (paper, section 3):
    - the [when] clause: a temporal predicate over participating tuples;
    - the [valid] clause: how the implicit time attributes of result tuples
      are computed;
    - the [as of] clause: the rollback operation.

    The [create] statement grammar follows the paper's Figure 3:
    [create \[persistent\] \[interval|event\] name (attrs)] where
    [persistent] asks for transaction time and [interval]/[event] for valid
    time, yielding the four database types. *)

(** {1 Temporal expressions} — denote periods *)

type tempexpr =
  | Tvar of string  (** a tuple variable's valid period *)
  | Tconst of string  (** a time literal: ["now"], ["1981"], ... (an event) *)
  | Toverlap of tempexpr * tempexpr  (** intersection *)
  | Textend of tempexpr * tempexpr  (** from the start of one to the end of the other *)
  | Tstart_of of tempexpr
  | Tend_of of tempexpr

(** {1 Temporal predicates} — the [when] clause *)

type temppred =
  | Poverlap of tempexpr * tempexpr
  | Pprecede of tempexpr * tempexpr
  | Pequal of tempexpr * tempexpr
  | Pand of temppred * temppred
  | Por of temppred * temppred
  | Pnot of temppred

(** {1 Scalar expressions} — target lists and the [where] clause *)

type binop = Add | Sub | Mul | Div | Mod

type aggregate = Count | Sum | Avg | Min | Max | Any
(** Quel's aggregate operators.  A {e global} aggregate ([sum(h.amount)])
    collapses the retrieve to a single tuple; attribute references may then
    appear only inside aggregate operands.  An aggregate with a {e by-list}
    ([sum(e.salary by e.dept)]) is an aggregate function in Quel's sense:
    evaluated per binding as the fold over all tuples sharing the binding's
    by-values, so it composes with ordinary targets ([retrieve (e.dept,
    total = sum(e.salary by e.dept))]).  [min]/[max] also work on [time]
    attributes (earliest/latest instant). *)

type expr =
  | Eattr of string * string  (** [h.id]; also reaches implicit attributes
                                  via underscore aliases, e.g. [h.valid_from] *)
  | Eint of int
  | Efloat of float
  | Estring of string
  | Ebinop of binop * expr * expr
  | Euminus of expr
  | Eagg of aggregate * expr * expr list
      (** operator, operand, by-list (empty = global); by-list entries are
          attribute references of the operand's tuple variable *)

let aggregate_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Any -> "any"

let aggregate_of_name = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "any" -> Some Any
  | _ -> None

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Pcompare of comparison * expr * expr
  | Wand of pred * pred
  | Wor of pred * pred
  | Wnot of pred

(** {1 Clauses} *)

type target = { out_name : string option; value : expr }
(** A target-list element: [h.id] (name defaults to the attribute name) or
    [total = h.amount + i.amount]. *)

type valid_clause =
  | Valid_interval of tempexpr * tempexpr  (** [valid from e1 to e2] *)
  | Valid_event of tempexpr  (** [valid at e] *)

type as_of_clause = { at : string; through : string option }
(** [as of "t1" \[through "t2"\]]: roll the database back to [t1] (or to the
    transaction-time window [t1..t2]). *)

(** {1 Statements} *)

type retrieve = {
  into : string option;
  unique : bool;  (** [retrieve unique (...)]: drop duplicate result tuples *)
  coalesce : bool;
      (** [retrieve coalesced (...)]: merge value-equivalent
          adjacent/overlapping result versions into maximal periods; with
          global aggregates, fold them per maximal constant interval
          (snapshot-semantics temporal aggregation) *)
  targets : target list;
  valid : valid_clause option;
  where : pred option;
  when_ : temppred option;
  as_of : as_of_clause option;
}

type append = {
  rel : string;
  targets : target list;
  valid : valid_clause option;
  where : pred option;
  when_ : temppred option;
}

type delete = {
  var : string;
  where : pred option;
  when_ : temppred option;
}

type replace = {
  var : string;
  targets : target list;
  valid : valid_clause option;
  where : pred option;
  when_ : temppred option;
}

type create = {
  rel : string;
  persistent : bool;  (** transaction time: rollback/temporal *)
  kind : Tdb_relation.Db_type.kind option;  (** valid time: historical/temporal *)
  attrs : (string * string) list;  (** (name, type notation e.g. "i4") *)
}

type organization = Org_heap | Org_hash | Org_isam

type modify = {
  rel : string;
  organization : organization;
  on_attr : string option;
  fillfactor : int option;
}

type copy_direction = Copy_from | Copy_into

type copy = { rel : string; direction : copy_direction; path : string }

type statement =
  | Range of { var : string; rel : string }
  | Retrieve of retrieve
  | Append of append
  | Delete of delete
  | Replace of replace
  | Create of create
  | Modify of modify
  | Destroy of string
  | Copy of copy

let db_type_of_create (c : create) : Tdb_relation.Db_type.t =
  match (c.persistent, c.kind) with
  | false, None -> Tdb_relation.Db_type.Static
  | true, None -> Tdb_relation.Db_type.Rollback
  | false, Some k -> Tdb_relation.Db_type.Historical k
  | true, Some k -> Tdb_relation.Db_type.Temporal k
