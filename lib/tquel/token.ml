(** Lexical tokens of TQuel. *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Kw of string  (** lower-cased keyword *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Equal
  | Not_equal
  | Less
  | Less_equal
  | Greater
  | Greater_equal
  | Plus
  | Minus
  | Star
  | Slash
  | Semicolon

(* Keywords are case-insensitive, as in Quel. *)
let keywords =
  [
    "range"; "of"; "is"; "retrieve"; "into"; "unique"; "where"; "when";
    "valid"; "from"; "to"; "at"; "as"; "append"; "delete"; "replace";
    "create"; "destroy"; "modify"; "copy"; "persistent"; "interval"; "event";
    "on"; "and"; "or"; "not"; "overlap"; "extend"; "precede"; "equal";
    "coalesced";
    "start"; "end"; "hash"; "isam"; "heap"; "fillfactor"; "through"; "mod";
    "by";
  ]

let is_keyword s = List.mem (String.lowercase_ascii s) keywords

let to_string = function
  | Ident s -> s
  | Int_lit n -> string_of_int n
  | Float_lit f -> Printf.sprintf "%g" f
  | String_lit s -> Printf.sprintf "%S" s
  | Kw s -> s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Equal -> "="
  | Not_equal -> "!="
  | Less -> "<"
  | Less_equal -> "<="
  | Greater -> ">"
  | Greater_equal -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Semicolon -> ";"

let equal (a : t) (b : t) = a = b
