(* Structured statement log: one JSONL record per executed statement.

   The engine emits a record for every statement it runs (CLI, bench and
   tests all go through the engine, so they get logging for free); the
   database layer adds "notice" records for recovery work done at open.
   Disabled unless a sink is configured — via [set] (the CLI's --log) or
   the TDB_LOG environment variable — so the default hot path is one
   branch and the paper's numbers are untouched.

   Records are rendered with the shared obs Json codec and appended with
   a single [output_string] per line.  A slow-statement threshold
   (TDB_LOG_SLOW_MS) keeps only statements at or above the threshold;
   size-based rotation (TDB_LOG_MAX_BYTES) renames the live file to
   PATH.1 and starts over, bounding disk use for long sessions. *)

type sink = {
  path : string;
  mutable oc : out_channel;
  mutable size : int;
  max_bytes : int option;
  slow_s : float option;
}

type state = { mutable sink : sink option; mutable configured : bool }

let state = { sink = None; configured = false }
let lock = Mutex.create ()

(* Monotone statement/trace ids; atomic so worker-side notices (none
   today, but cheap insurance) cannot tear. *)
let seq = Atomic.make 0

let close_sink () =
  match state.sink with
  | None -> ()
  | Some s ->
      (try close_out s.oc with Sys_error _ -> ());
      state.sink <- None

let open_sink ~slow_s ~max_bytes path =
  close_sink ();
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let size = out_channel_length oc in
  state.sink <- Some { path; oc; size; max_bytes; slow_s }

let env_float name =
  match Sys.getenv_opt name with None -> None | Some v -> float_of_string_opt v

let env_int name =
  match Sys.getenv_opt name with None -> None | Some v -> int_of_string_opt v

(* Lazily honour the environment the first time anyone asks, so every
   entry point (engine, CLI, bench) sees the same configuration without
   having to call an init function. *)
let ensure_configured () =
  if not state.configured then begin
    state.configured <- true;
    match Sys.getenv_opt "TDB_LOG" with
    | None | Some "" -> ()
    | Some path ->
        let slow_s =
          Option.map (fun ms -> ms /. 1000.0) (env_float "TDB_LOG_SLOW_MS")
        in
        open_sink ~slow_s ~max_bytes:(env_int "TDB_LOG_MAX_BYTES") path
  end

let set ?slow_s ?max_bytes path =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      state.configured <- true;
      match path with
      | None -> close_sink ()
      | Some p -> open_sink ~slow_s ~max_bytes p)

let enabled () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      ensure_configured ();
      state.sink <> None)

let path () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      ensure_configured ();
      Option.map (fun s -> s.path) state.sink)

let rotate s =
  (try close_out s.oc with Sys_error _ -> ());
  (try Sys.rename s.path (s.path ^ ".1") with Sys_error _ -> ());
  s.oc <- open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 s.path;
  s.size <- 0

let write_line s line =
  let len = String.length line + 1 in
  (match s.max_bytes with
  | Some cap when s.size > 0 && s.size + len > cap -> rotate s
  | _ -> ());
  output_string s.oc line;
  output_char s.oc '\n';
  flush s.oc;
  s.size <- s.size + len

let emit ?id ~always fields =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      ensure_configured ();
      match state.sink with
      | None -> ()
      | Some s ->
          let latency =
            List.assoc_opt "latency_s" fields
            |> Option.map (function Json.Num f -> f | _ -> 0.0)
          in
          let keep =
            always
            ||
            match (s.slow_s, latency) with
            | Some th, Some l -> l >= th
            | Some _, None -> true
            | None, _ -> true
          in
          if keep then begin
            (* A caller-provided id (the session layer's per-instance
               sequence) wins over the process-wide fallback counter, so
               multi-instance runs stay gap-free per database. *)
            let id =
              match id with
              | Some i -> i
              | None -> Atomic.fetch_and_add seq 1
            in
            let record =
              Json.Obj
                (("id", Json.Str (Printf.sprintf "S%d" id))
                :: ("ts", Json.Num (Metric.now_s ()))
                :: fields)
            in
            write_line s (Json.to_string record)
          end)

type entry = {
  id : int option;
  session : string option;
  epoch : int option;
  kind : string;
  text : string;
  outcome : string;
  error : string option;
  rows : int option;
  latency_s : float;
  reads : int;
  writes : int;
  journal_bytes : int;
}

let log e =
  emit ?id:e.id ~always:false
    [
      ("record", Json.Str "statement");
      ("kind", Json.Str e.kind);
      ("text", Json.Str e.text);
      ("outcome", Json.Str e.outcome);
      ("error", match e.error with None -> Json.Null | Some m -> Json.Str m);
      ("rows", match e.rows with None -> Json.Null | Some n -> Json.int n);
      ("latency_s", Json.Num e.latency_s);
      ("reads", Json.int e.reads);
      ("writes", Json.int e.writes);
      ("journal_bytes", Json.int e.journal_bytes);
      ( "session",
        match e.session with None -> Json.Null | Some s -> Json.Str s );
      ("epoch", match e.epoch with None -> Json.Null | Some n -> Json.int n);
    ]

let note ?(attrs = []) name =
  emit ~always:true
    (("record", Json.Str "notice")
    :: ("notice", Json.Str name)
    :: List.map (fun (k, v) -> (k, Json.Str v)) attrs)
