type node = {
  id : int;
  name : string;
  mutable attrs : (string * string) list;
  mutable reads : int;
  mutable writes : int;
  mutable skips : int;
  mutable tuples : int;
  mutable batches : int;
  mutable started : float;
  mutable elapsed : float;
  mutable children : node list;
}

let on = ref false
let set_enabled b = on := b
let enabled () = !on

let dummy =
  {
    id = -1;
    name = "<disabled>";
    attrs = [];
    reads = 0;
    writes = 0;
    skips = 0;
    tuples = 0;
    batches = 0;
    started = 0.0;
    elapsed = 0.0;
    children = [];
  }

let is_real n = n != dummy
let result n = if is_real n then Some n else None

let next_id = ref 0

let fresh name =
  let id = !next_id in
  incr next_id;
  {
    id;
    name;
    attrs = [];
    reads = 0;
    writes = 0;
    skips = 0;
    tuples = 0;
    batches = 0;
    started = Metric.monotonic_s ();
    elapsed = 0.0;
    children = [];
  }

(* The current-span stack.  Innermost span at the head.

   The tracer is single-threaded by construction: spans are opened and
   closed only by the main domain.  Worker domains spawned for parallel
   scans charge their page I/O to a private [Io_stats] instead, and the
   executor notes the folded totals on the main domain after the join —
   so the note_* hot paths below simply ignore calls from other domains
   rather than corrupting the shared stack. *)
let main_domain = Domain.self ()
let on_main () = Domain.self () = main_domain

let stack : node list ref = ref []

let start name =
  if (not !on) || not (on_main ()) then dummy
  else begin
    let n = fresh name in
    (match !stack with
    | parent :: _ -> parent.children <- n :: parent.children
    | [] -> ());
    stack := n :: !stack;
    n
  end

let finish n =
  if is_real n then begin
    let now = Metric.monotonic_s () in
    (* Pop until (and including) [n]: anything above it was left open by
       an exception unwinding through [within]. *)
    let rec pop () =
      match !stack with
      | [] -> ()
      | top :: rest ->
          stack := rest;
          top.elapsed <- top.elapsed +. (now -. top.started);
          if top != n then pop ()
    in
    pop ()
  end

let within name f =
  let n = start name in
  Fun.protect ~finally:(fun () -> finish n) (fun () -> f n)

let branch parent name =
  if (not !on) || not (is_real parent) then dummy
  else begin
    let n = fresh name in
    n.elapsed <- 0.0;
    parent.children <- n :: parent.children;
    n
  end

let enter n =
  if is_real n then begin
    n.started <- Metric.monotonic_s ();
    stack := n :: !stack
  end

let exit n =
  if is_real n then
    match !stack with
    | top :: rest when top == n ->
        stack := rest;
        top.elapsed <- top.elapsed +. (Metric.monotonic_s () -. top.started)
    | _ -> ()

let current () = match !stack with n :: _ when on_main () -> n | _ -> dummy

let note_read () =
  if on_main () then
    match !stack with [] -> () | n :: _ -> n.reads <- n.reads + 1

let note_write () =
  if on_main () then
    match !stack with [] -> () | n :: _ -> n.writes <- n.writes + 1

let note_skip k =
  if on_main () then
    match !stack with [] -> () | n :: _ -> n.skips <- n.skips + k

let add_tuples n k = if is_real n then n.tuples <- n.tuples + k
let note_batch n = if is_real n then n.batches <- n.batches + 1
let set_attr n k v = if is_real n then n.attrs <- (k, v) :: n.attrs
let children n = List.rev n.children

(* One child span per parallel-scan partition, built after the Pool join
   from the worker's private Io_stats and its measured busy time.  The
   worker domain could not touch the span stack itself (the tracer is
   main-domain only), so the fold attributes its pages here instead of
   dumping them on the parent — making per-domain skew visible while the
   subtree still sums to the query's exact page total. *)
let note_partition ~parent ~index ~domain ~busy_s ~rows ~reads ~writes =
  if is_real parent then begin
    let n = fresh (Printf.sprintf "partition %d" index) in
    n.attrs <- [ ("domain", string_of_int domain) ];
    n.reads <- reads;
    n.writes <- writes;
    n.tuples <- rows;
    n.elapsed <- busy_s;
    parent.children <- n :: parent.children
  end

let rec total_reads n =
  List.fold_left (fun acc c -> acc + total_reads c) n.reads n.children

let rec total_writes n =
  List.fold_left (fun acc c -> acc + total_writes c) n.writes n.children

let rec total_skips n =
  List.fold_left (fun acc c -> acc + total_skips c) n.skips n.children

let describe n =
  let attrs =
    match List.rev n.attrs with
    | [] -> ""
    | ls ->
        " "
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
  in
  let tuples = if n.tuples > 0 then Printf.sprintf ", %d tuples" n.tuples else "" in
  let batches =
    if n.batches > 0 then
      Printf.sprintf ", %d batch%s" n.batches (if n.batches = 1 then "" else "es")
    else ""
  in
  let skips =
    if n.skips > 0 then Printf.sprintf ", %d pruned" n.skips else ""
  in
  Printf.sprintf "%s%s  [%d in, %d out%s%s%s; %.2f ms]" n.name attrs n.reads
    n.writes skips tuples batches (1000.0 *. n.elapsed)

let render root =
  let buf = Buffer.create 256 in
  let rec go prefix child_prefix n =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (describe n);
    Buffer.add_char buf '\n';
    let cs = children n in
    let last = List.length cs - 1 in
    List.iteri
      (fun i c ->
        if i = last then
          go (child_prefix ^ "`- ") (child_prefix ^ "   ") c
        else go (child_prefix ^ "|- ") (child_prefix ^ "|  ") c)
      cs
  in
  go "" "" root;
  let skips = total_skips root in
  let pruned =
    if skips > 0 then Printf.sprintf ", %d pages pruned" skips else ""
  in
  Buffer.add_string buf
    (Printf.sprintf "total: %d pages in, %d pages out%s\n" (total_reads root)
       (total_writes root) pruned);
  Buffer.contents buf

(* The executed-plan tree in the shared obs JSON form; [explain analyze]
   emits this next to the rendered text tree. *)
let rec to_json n =
  Json.Obj
    [
      ("name", Json.Str n.name);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (List.rev n.attrs)));
      ("reads", Json.int n.reads);
      ("writes", Json.int n.writes);
      ("skips", Json.int n.skips);
      ("tuples", Json.int n.tuples);
      ("batches", Json.int n.batches);
      ("elapsed_s", Json.Num n.elapsed);
      ("children", Json.List (List.map to_json (children n)));
    ]

(* --- event log --- *)

type event = {
  seq : int;
  at : float;
  ev_name : string;
  ev_attrs : (string * string) list;
}

let event_capacity = 512
let ring : event option array = Array.make event_capacity None
let event_seq = ref 0

let event ?(attrs = []) name =
  if Metric.enabled () then begin
    let s = !event_seq in
    incr event_seq;
    ring.(s mod event_capacity) <-
      Some { seq = s; at = Metric.now_s (); ev_name = name; ev_attrs = attrs }
  end

let events () =
  Array.to_list ring
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare a.seq b.seq)

let clear_events () =
  Array.fill ring 0 event_capacity None;
  event_seq := 0
