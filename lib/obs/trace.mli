(** Lightweight span tracer with per-span page-I/O attribution and a
    ring-buffer event log.

    Spans form a tree.  A global stack tracks the {e current} span;
    [note_read]/[note_write] (called from the storage layer's page-I/O
    counters) charge one page to the innermost active span, which gives
    exact per-operator I/O attribution without extra bookkeeping at the
    call sites.

    Tracing is off by default.  When disabled every constructor returns
    the shared [dummy] node and every operation is a single branch, so
    the engine's page counts are untouched. *)

type node = {
  id : int;
  name : string;
  mutable attrs : (string * string) list;
  mutable reads : int;
  mutable writes : int;
  mutable skips : int;  (** pages skipped by temporal pruning *)
  mutable tuples : int;
  mutable batches : int;  (** pipeline batches produced by this stage *)
  mutable started : float;
  mutable elapsed : float;  (** seconds, accumulated over enter/exit *)
  mutable children : node list;  (** reverse order; see [children] *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val start : string -> node
(** Open a span as a child of the current span (or as a root) and make it
    current.  Returns [dummy] when disabled. *)

val finish : node -> unit
(** Close the span, popping it (and, defensively, anything opened above
    it that escaped via an exception) off the current stack. *)

val within : string -> (node -> 'a) -> 'a
(** [within name f] = [start]; run [f]; [finish] (exception-safe). *)

val branch : node -> string -> node
(** A child span that is {e not} made current — use with [enter]/[exit]
    to re-activate one span many times (e.g. the inner side of a nested
    loop), accumulating I/O and elapsed time across activations. *)

val enter : node -> unit
val exit : node -> unit

val note_read : unit -> unit
val note_write : unit -> unit
(** Charge one page read/write to the current span; no-op with no span. *)

val note_skip : int -> unit
(** Charge [k] pruned (skipped-without-reading) pages to the current
    span; no-op with no span. *)

val add_tuples : node -> int -> unit

val note_batch : node -> unit
(** Count one pipeline batch produced by this span's stage. *)

val set_attr : node -> string -> string -> unit

val current : unit -> node
(** The innermost active span, or [dummy] when there is none (or when
    called off the main domain). *)

val note_partition :
  parent:node ->
  index:int ->
  domain:int ->
  busy_s:float ->
  rows:int ->
  reads:int ->
  writes:int ->
  unit
(** Record one parallel-scan partition as a child span of [parent],
    carrying the worker's folded page I/O, row count, domain id and busy
    wall time.  Built on the main domain after the Pool join (the tracer
    stack is main-domain only); keeps the subtree page sum exact. *)

val is_real : node -> bool
(** [false] exactly for the shared disabled-path [dummy] node. *)

val result : node -> node option
(** [Some n] if real, [None] for [dummy] — for storing in outcomes. *)

val children : node -> node list
(** In creation order. *)

val total_reads : node -> int
val total_writes : node -> int
val total_skips : node -> int
(** Subtree sums, root included. *)

val render : node -> string
(** An indented tree: per node its page I/O, tuple count and wall time,
    with subtree totals on the root line. *)

val to_json : node -> Json.t
(** The span tree in the shared obs JSON form: per node name, attrs,
    reads/writes/skips, tuples, batches, elapsed seconds, children. *)

(** {1 Event log} *)

type event = {
  seq : int;
  at : float;
  ev_name : string;
  ev_attrs : (string * string) list;
}

val event : ?attrs:(string * string) list -> string -> unit
(** Append to the ring buffer (capacity {!event_capacity}).  Gated on
    [Metric.enabled], not on span tracing. *)

val event_capacity : int
val events : unit -> event list
(** Oldest first; at most [event_capacity]. *)

val clear_events : unit -> unit
