(** Engine metrics: counters, gauges and log-scaled latency histograms.

    Two kinds of counter coexist:

    - {b raw} counters ([raw]) always count and live outside the registry.
      They back [Io_stats], the paper's page-I/O instrument, which must
      keep exact numbers whether or not observability is enabled.
    - {b registered} metrics ([counter], [gauge], [histogram]) appear in
      [dump]/[table] and are gated on [enabled ()]: when disabled, the
      hot path is a single branch and no state changes. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool
(** Registered metrics observe only while enabled (default: enabled). *)

(** {1 Raw counters} *)

val raw : unit -> counter
(** An anonymous, ungated counter: [incr] always counts.  Not registered;
    never appears in [dump]. *)

(** {1 Registered metrics} *)

val counter : ?labels:(string * string) list -> string -> counter
(** Registered counter; same [(name, labels)] returns the same counter. *)

val gauge : ?labels:(string * string) list -> string -> gauge

val histogram : ?labels:(string * string) list -> string -> histogram
(** Log2-bucketed histogram: bucket upper bounds are powers of two from
    2^-16 (~15 us if observing seconds) to 2^16, plus a +Inf bucket. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val reset_counter : counter -> unit
(** Zero one counter (works on raw counters too, unlike [reset_all]). *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** {1 Histogram geometry} (exposed for tests) *)

val buckets : int
(** Number of buckets, including the +Inf bucket. *)

val bucket_le : int -> float
(** Upper bound of bucket [i]; [bucket_le (buckets - 1)] is [infinity]. *)

val bucket_index : float -> int
(** The bucket a value falls into: smallest [i] with [v <= bucket_le i]. *)

(** {1 Dump} *)

type value = Int of int | Float of float
type record = { name : string; labels : (string * string) list; value : value }

val dump : unit -> record list
(** Prometheus-style flat records.  Histograms expand to cumulative
    [_bucket] records (with an ["le"] label, non-empty buckets plus
    +Inf), a [_count] and a [_sum]. *)

val table : unit -> string list list
(** [[name; labels; value]] rows for [Benchkit.Report.table]-style
    printing; histograms render as one summary row. *)

val to_json : unit -> Json.t
(** [dump] as a JSON list of [{name; labels; value}] objects. *)

val reset_all : unit -> unit
(** Zero every registered metric (raw counters are untouched). *)

(** {1 Clock} *)

val now_s : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); exposed so libraries that
    do not link [unix] can still time spans. *)

val monotonic_s : unit -> float
(** Like [now_s] but clamped to be non-decreasing across all domains
    (a CAS-max over the last reading), so stage timers never observe a
    negative interval when the wall clock steps backwards. *)
