type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* --- emitter --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec emit buf ~indent ~level v =
  let nl pad =
    match indent with
    | None -> ()
    | Some _ ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * pad) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent <> None then Buffer.add_char buf ' ';
          emit buf ~indent ~level:(level + 1) item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf ~indent:None ~level:0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  emit buf ~indent:(Some 2) ~level:0 v;
  Buffer.contents buf

(* --- parser --- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* Encode as UTF-8; our own emitter only produces codes
                 below 0x20 so this branch suffices in practice. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_error (at, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg at)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> x = y
  | List x, List y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
  | Obj x, Obj y -> (
      try List.for_all2 (fun (k, v) (k', v') -> k = k' && equal v v') x y
      with Invalid_argument _ -> false)
  | _ -> false
