(** A minimal JSON value, emitter and parser.

    Deliberately tiny: just enough to serialize metric dumps and bench
    results, and to parse them back for round-trip tests.  No external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [int n] is [Num (float_of_int n)]. *)

val to_string : t -> string
(** Compact rendering.  Integral numbers print without a decimal point;
    non-finite numbers degrade to [null] (JSON has no inf/nan). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by people. *)

val parse : string -> (t, string) result
(** Standard JSON.  Errors carry a character offset. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare order-sensitively. *)
