let on = ref true
let set_enabled b = on := b
let enabled () = !on

let now_s = Unix.gettimeofday

(* A non-decreasing clock for stage timers.  [Unix.gettimeofday] can step
   backwards under NTP adjustment; a CAS-max over the last reading keeps
   elapsed-time subtraction from ever going negative.  The float is boxed
   through [Atomic.t], which is fine for a per-stage (not per-page) clock. *)
let monotonic_last = Atomic.make 0.0

let rec monotonic_s () =
  let now = now_s () in
  let last = Atomic.get monotonic_last in
  if now >= last then
    if Atomic.compare_and_set monotonic_last last now then now
    else monotonic_s ()
  else last

type counter = {
  c_gated : bool;
  c_count : int Atomic.t;
      (* Atomic so hot counters can be bumped from worker domains during
         parallel scans without tearing or lost updates. *)
}

type gauge = { mutable g_value : float }

(* Buckets 0..32 have upper bound 2^(i-16); bucket 33 is +Inf. *)
let buckets = 34

let bucket_le i = if i >= buckets - 1 then infinity else 2.0 ** float_of_int (i - 16)

let bucket_index v =
  if not (v <= bucket_le (buckets - 2)) then buckets - 1
  else begin
    let i = ref 0 in
    while v > bucket_le !i do
      incr i
    done;
    !i
  end

type histogram = {
  h_buckets : int array; (* length [buckets] *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_max : float;
}

(* Histograms update several fields per observation; a single lock keeps
   them coherent when worker domains observe (e.g. chain lengths). *)
let h_lock = Mutex.create ()

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type entry = { name : string; labels : (string * string) list; metric : metric }

let registry : entry list ref = ref []

let find name labels =
  List.find_opt (fun e -> e.name = name && e.labels = labels) !registry

let register name labels metric =
  registry := { name; labels; metric } :: !registry

let raw () = { c_gated = false; c_count = Atomic.make 0 }

let counter ?(labels = []) name =
  match find name labels with
  | Some { metric = Counter c; _ } -> c
  | Some _ -> invalid_arg (name ^ " is registered as a different metric kind")
  | None ->
      let c = { c_gated = true; c_count = Atomic.make 0 } in
      register name labels (Counter c);
      c

let gauge ?(labels = []) name =
  match find name labels with
  | Some { metric = Gauge g; _ } -> g
  | Some _ -> invalid_arg (name ^ " is registered as a different metric kind")
  | None ->
      let g = { g_value = 0.0 } in
      register name labels (Gauge g);
      g

let histogram ?(labels = []) name =
  match find name labels with
  | Some { metric = Histogram h; _ } -> h
  | Some _ -> invalid_arg (name ^ " is registered as a different metric kind")
  | None ->
      let h =
        { h_buckets = Array.make buckets 0; h_sum = 0.0; h_count = 0;
          h_max = neg_infinity }
      in
      register name labels (Histogram h);
      h

let incr c = if (not c.c_gated) || !on then ignore (Atomic.fetch_and_add c.c_count 1)
let add c n = if (not c.c_gated) || !on then ignore (Atomic.fetch_and_add c.c_count n)
let count c = Atomic.get c.c_count
let reset_counter c = Atomic.set c.c_count 0

let set_gauge g v = if !on then g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  if !on then begin
    Mutex.lock h_lock;
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1;
    if v > h.h_max then h.h_max <- v;
    Mutex.unlock h_lock
  end

(* --- dump --- *)

type value = Int of int | Float of float

type record = { name : string; labels : (string * string) list; value : value }

let le_label le =
  if le = infinity then "+Inf"
  else if Float.is_integer le && Float.abs le < 1e15 then
    Printf.sprintf "%.0f" le
  else Printf.sprintf "%g" le

let entries () =
  List.sort
    (fun (a : entry) (b : entry) ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    !registry

let dump () =
  List.concat_map
    (fun (e : entry) ->
      match e.metric with
      | Counter c ->
          [ { name = e.name; labels = e.labels; value = Int (Atomic.get c.c_count) } ]
      | Gauge g -> [ { name = e.name; labels = e.labels; value = Float g.g_value } ]
      | Histogram h ->
          let cumulative = ref 0 in
          let bucket_records = ref [] in
          for i = 0 to buckets - 1 do
            cumulative := !cumulative + h.h_buckets.(i);
            if h.h_buckets.(i) > 0 || i = buckets - 1 then
              bucket_records :=
                {
                  name = e.name ^ "_bucket";
                  labels = e.labels @ [ ("le", le_label (bucket_le i)) ];
                  value = Int !cumulative;
                }
                :: !bucket_records
          done;
          List.rev !bucket_records
          @ [
              { name = e.name ^ "_count"; labels = e.labels; value = Int h.h_count };
              {
                name = e.name ^ "_sum";
                labels = e.labels;
                value = Float (if h.h_count = 0 then 0.0 else h.h_sum);
              };
            ])
    (entries ())

let labels_str labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls)
      ^ "}"

let table () =
  List.map
    (fun (e : entry) ->
      let name = e.name ^ labels_str e.labels in
      match e.metric with
      | Counter c -> [ name; "counter"; string_of_int (Atomic.get c.c_count) ]
      | Gauge g -> [ name; "gauge"; Printf.sprintf "%g" g.g_value ]
      | Histogram h ->
          let summary =
            if h.h_count = 0 then "count=0"
            else
              Printf.sprintf "count=%d mean=%.4g max=%.4g" h.h_count
                (h.h_sum /. float_of_int h.h_count)
                h.h_max
          in
          [ name; "histogram"; summary ])
    (entries ())

let to_json () =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.Str r.name);
             ( "labels",
               Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.labels) );
             ( "value",
               match r.value with
               | Int n -> Json.int n
               | Float f -> Json.Num f );
           ])
       (dump ()))

let reset_all () =
  List.iter
    (fun (e : entry) ->
      match e.metric with
      | Counter c -> Atomic.set c.c_count 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
          Array.fill h.h_buckets 0 buckets 0;
          h.h_sum <- 0.0;
          h.h_count <- 0;
          h.h_max <- neg_infinity)
    !registry
