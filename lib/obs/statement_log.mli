(** Structured statement log: one JSONL record per executed statement.

    Disabled by default.  A sink is configured either programmatically
    ([set], backing the CLI's [--log PATH]) or from the environment the
    first time the log is touched:

    - [TDB_LOG=PATH] — append records to PATH;
    - [TDB_LOG_SLOW_MS=N] — keep only statements taking >= N ms
      (notices are always kept);
    - [TDB_LOG_MAX_BYTES=N] — when the next record would push the file
      past N bytes, rename it to PATH.1 and start a fresh file.

    Each record is one line of JSON (shared obs codec) carrying a
    monotone id ("S0", "S1", ...) usable as a trace/request id, a
    wall-clock timestamp, and either a statement body (kind, text,
    outcome, error, rows, latency, page I/O and journal bytes) or a
    free-form notice (e.g. recovery work at database open).

    The engine emits statement records while holding its statement lock,
    so records are totally ordered; the module still carries its own
    mutex so notices from other entry points interleave safely. *)

val set : ?slow_s:float -> ?max_bytes:int -> string option -> unit
(** [set (Some path)] opens (appending) a log sink, replacing any
    configured one; [set None] closes it.  Overrides the environment. *)

val enabled : unit -> bool
val path : unit -> string option

type entry = {
  id : int option;
      (** per-database-instance statement id (the session layer's
          gap-free sequence); [None] falls back to the process-wide
          counter *)
  session : string option;  (** issuing session's name, when known *)
  epoch : int option;
      (** snapshot epoch a read ran at, or the commit epoch a write
          published *)
  kind : string;  (** statement kind, e.g. "retrieve", "append" *)
  text : string;  (** the statement, pretty-printed *)
  outcome : string;  (** "rows" | "stored" | "modified" | "ack" | "error" *)
  error : string option;
  rows : int option;
  latency_s : float;
  reads : int;  (** pages read by this statement *)
  writes : int;  (** pages written by this statement *)
  journal_bytes : int;  (** intent-journal bytes appended *)
}

val log : entry -> unit
(** Append one statement record (subject to the slow threshold). *)

val note : ?attrs:(string * string) list -> string -> unit
(** Append a notice record (never filtered by the slow threshold). *)
