module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock
module Ast = Tdb_tquel.Ast
module Parser = Tdb_tquel.Parser
module Semck = Tdb_tquel.Semck
module Executor = Tdb_query.Executor
module Update_executor = Tdb_query.Update_executor
module Plan = Tdb_query.Plan
module Metric = Tdb_obs.Metric
module Trace = Tdb_obs.Trace
module Json = Tdb_obs.Json
module Statement_log = Tdb_obs.Statement_log
module Pretty = Tdb_tquel.Pretty

type outcome =
  | Rows of {
      schema : Schema.t;
      tuples : Tuple.t list;
      io : Executor.io_summary;
      plan : Plan.t;
      trace : Trace.node option;
    }
  | Stored of {
      relation : string;
      count : int;
      io : Executor.io_summary;
      plan : Plan.t;
      trace : Trace.node option;
    }
  | Modified of { matched : int; inserted : int; trace : Trace.node option }
  | Ack of string

let ( let* ) = Result.bind

(* --- parallelism --- *)

let set_parallelism n = Tdb_par.Pool.set_workers n
let parallelism () = Tdb_par.Pool.workers ()

(* Statements are serialized: parallelism lives {e inside} one statement
   (scan fan-out across domains), never across statements.  The lock is
   what lets concurrent callers (the stress test, a future server loop)
   share one engine while the executor's fold-on-join metric accounting
   stays attributable to a single statement. *)
let stmt_lock = Mutex.create ()

let serialized f =
  Mutex.lock stmt_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock stmt_lock) f

let sources_of db =
  List.filter_map
    (fun (var, rel_name) ->
      Option.map
        (fun rel -> { Executor.var; rel })
        (Database.find_relation db rel_name))
    (Database.ranges db)

let source_for db var =
  match Database.find_range db var with
  | None -> Error (Printf.sprintf "tuple variable %S has no range statement" var)
  | Some rel_name -> (
      match Database.find_relation db rel_name with
      | None -> Error (Printf.sprintf "relation %S does not exist" rel_name)
      | Some rel -> Ok { Executor.var; rel })

(* Query-class failures become [Error] results: the statement was bad, the
   database is fine.  Corruption / Io / Internal errors propagate as
   [Tdb_error.Error] so the boundary (CLI, bench) can stop with a
   class-specific exit code instead of misreporting storage damage as a
   query problem. *)
let run_protected f =
  match f () with
  | v -> Ok v
  | exception Executor.Execution_error msg -> Error msg
  | exception Update_executor.Execution_error msg -> Error msg
  | exception Tdb_query.Eval.Eval_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception Tdb_error.Error (Tdb_error.Query, msg) -> Error msg

(* --- copy: a simple tab-separated batch format over all attributes --- *)

let copy_into db rel path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let count = ref 0 in
      Relation_file.scan rel (fun _ tuple ->
          let fields =
            Array.to_list (Array.map Value.to_string tuple)
          in
          output_string oc (String.concat "\t" fields ^ "\n");
          incr count);
      ignore db;
      !count)

let parse_field ~now ty s =
  match ty with
  | Attr_type.I1 | I2 | I4 -> (
      match int_of_string_opt s with
      | Some n -> Ok (Value.Int n)
      | None -> Error (Printf.sprintf "bad integer %S" s))
  | F4 | F8 -> (
      match float_of_string_opt s with
      | Some f -> Ok (Value.Float f)
      | None -> Error (Printf.sprintf "bad float %S" s))
  | C _ -> Ok (Value.Str s)
  | Time -> Result.map (fun t -> Value.Time t) (Chronon.parse ~now s)

let copy_from db rel path =
  let schema = Relation_file.schema rel in
  let now = Database.now db in
  if not (Sys.file_exists path) then Error (Printf.sprintf "no such file %S" path)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let arity = Schema.arity schema in
        let line_no = ref 0 in
        let rec go count =
          match input_line ic with
          | exception End_of_file -> Ok count
          | line when String.trim line = "" -> go count
          | line -> (
              incr line_no;
              let fields = String.split_on_char '\t' line in
              if List.length fields <> arity then
                Error
                  (Printf.sprintf "line %d: expected %d fields, found %d"
                     !line_no arity (List.length fields))
              else begin
                let tuple = Array.make arity (Value.Int 0) in
                let rec fill i = function
                  | [] -> Ok ()
                  | f :: rest -> (
                      match
                        parse_field ~now (Schema.attr schema i).Schema.ty f
                      with
                      | Ok v ->
                          tuple.(i) <- v;
                          fill (i + 1) rest
                      | Error e ->
                          Error (Printf.sprintf "line %d: %s" !line_no e))
                in
                match fill 0 fields with
                | Error e -> Error e
                | Ok () ->
                    ignore (Relation_file.insert rel tuple);
                    go (count + 1)
              end)
        in
        go 0)
  end

(* --- statement dispatch --- *)

let execute_checked db stmt =
  match (stmt : Ast.statement) with
  | Ast.Range { var; rel } ->
      let* () = Database.set_range db ~var ~rel in
      Ok (Ack (Printf.sprintf "range of %s is %s" var rel))
  | Ast.Create c ->
      let db_type = Ast.db_type_of_create c in
      let* attrs =
        List.fold_left
          (fun acc (name, ty) ->
            let* acc = acc in
            let* ty = Attr_type.of_string ty in
            Ok ({ Schema.name; ty } :: acc))
          (Ok []) c.attrs
      in
      let* schema = Schema.create ~db_type (List.rev attrs) in
      let* _rel = Database.create_relation db ~name:c.rel schema in
      Ok (Ack (Printf.sprintf "created %s relation %s"
                 (Tdb_relation.Db_type.to_string db_type) c.rel))
  | Ast.Destroy name ->
      let* () = Database.destroy_relation db name in
      Ok (Ack (Printf.sprintf "destroyed %s" name))
  | Ast.Modify m ->
      let* rel =
        match Database.find_relation db m.rel with
        | Some r -> Ok r
        | None -> Error (Printf.sprintf "relation %S does not exist" m.rel)
      in
      let schema = Relation_file.schema rel in
      let fillfactor = Option.value m.fillfactor ~default:100 in
      let* org =
        match m.organization with
        | Ast.Org_heap -> Ok Relation_file.Heap
        | Ast.Org_hash | Ast.Org_isam -> (
            match m.on_attr with
            | None -> Error "hash and isam need a key attribute"
            | Some attr -> (
                match Schema.index_of schema attr with
                | None ->
                    Error (Printf.sprintf "no attribute %S in %s" attr m.rel)
                | Some key_attr ->
                    Ok
                      (match m.organization with
                      | Ast.Org_hash -> Relation_file.Hash { key_attr; fillfactor }
                      | Ast.Org_isam -> Relation_file.Isam { key_attr; fillfactor }
                      | Ast.Org_heap -> assert false)))
      in
      let* () = Database.modify_relation db m.rel org in
      Ok (Ack (Printf.sprintf "modified %s to %s" m.rel
                 (Relation_file.organization_to_string org)))
  | Ast.Copy c -> (
      let* rel =
        match Database.find_relation db c.rel with
        | Some r -> Ok r
        | None -> Error (Printf.sprintf "relation %S does not exist" c.rel)
      in
      match c.direction with
      | Ast.Copy_into ->
          let count = copy_into db rel c.path in
          Ok (Ack (Printf.sprintf "copied %d tuples into %s" count c.path))
      | Ast.Copy_from ->
          let* count = copy_from db rel c.path in
          Database.sync db;
          Ok (Ack (Printf.sprintf "copied %d tuples from %s" count c.path)))
  | Ast.Retrieve r -> (
      let now = Database.now db in
      let sources = sources_of db in
      match r.into with
      | None ->
          run_protected (fun () ->
              let tuples = ref [] in
              let outcome =
                Executor.run_retrieve ~now ~sources r ~on_tuple:(fun t ->
                    tuples := t :: !tuples)
              in
              Rows
                {
                  schema = outcome.Executor.schema;
                  tuples = List.rev !tuples;
                  io = outcome.Executor.io;
                  plan = outcome.Executor.plan;
                  trace = outcome.Executor.trace;
                })
      | Some into_name ->
          let* result_schema =
            run_protected (fun () -> Executor.result_schema ~sources r)
          in
          let* target = Database.create_relation db ~name:into_name result_schema in
          run_protected (fun () ->
              let outcome =
                Executor.run_retrieve ~now ~sources r ~on_tuple:(fun t ->
                    ignore (Relation_file.insert target t))
              in
              Buffer_pool.flush (Relation_file.pool target);
              Database.sync db;
              let stored =
                Io_stats.snapshot (Relation_file.stats target)
              in
              Stored
                {
                  relation = into_name;
                  count = outcome.Executor.count;
                  io =
                    {
                      Executor.input_reads = outcome.Executor.io.Executor.input_reads;
                      output_writes =
                        outcome.Executor.io.Executor.output_writes
                        + stored.Io_stats.writes;
                    };
                  plan = outcome.Executor.plan;
                  trace = outcome.Executor.trace;
                }))
  | Ast.Append a ->
      let* rel =
        match Database.find_relation db a.rel with
        | Some r -> Ok r
        | None -> Error (Printf.sprintf "relation %S does not exist" a.rel)
      in
      let now = Clock.tick (Database.clock db) in
      let sources = sources_of db in
      run_protected (fun () ->
          let c = Update_executor.run_append ~now ~rel ~sources a in
          Modified { matched = c.Update_executor.matched;
                     inserted = c.Update_executor.inserted;
                     trace = c.Update_executor.trace })
  | Ast.Delete d ->
      let* source = source_for db d.var in
      let now = Clock.tick (Database.clock db) in
      run_protected (fun () ->
          let c = Update_executor.run_delete ~now ~source d in
          Modified { matched = c.Update_executor.matched;
                     inserted = c.Update_executor.inserted;
                     trace = c.Update_executor.trace })
  | Ast.Replace r ->
      let* source = source_for db r.var in
      let now = Clock.tick (Database.clock db) in
      run_protected (fun () ->
          let c = Update_executor.run_replace ~now ~source r in
          Modified { matched = c.Update_executor.matched;
                     inserted = c.Update_executor.inserted;
                     trace = c.Update_executor.trace })

let statement_kind = function
  | Ast.Range _ -> "range"
  | Ast.Create _ -> "create"
  | Ast.Destroy _ -> "destroy"
  | Ast.Modify _ -> "modify"
  | Ast.Copy _ -> "copy"
  | Ast.Retrieve _ -> "retrieve"
  | Ast.Append _ -> "append"
  | Ast.Delete _ -> "delete"
  | Ast.Replace _ -> "replace"

(* Does this statement write stored pages?  These run inside a journal
   statement so a crash mid-way rolls their page writes back to the
   statement boundary.  Catalog-only statements (range, create, destroy)
   rely on the atomic catalog replacement instead. *)
let mutates = function
  | Ast.Append _ | Ast.Delete _ | Ast.Replace _ | Ast.Modify _ -> true
  | Ast.Copy { direction = Ast.Copy_from; _ } -> true
  | Ast.Retrieve { into = Some _; _ } -> true
  | Ast.Range _ | Ast.Create _ | Ast.Destroy _
  | Ast.Copy { direction = Ast.Copy_into; _ }
  | Ast.Retrieve { into = None; _ } ->
      false

(* The one classification the session layer routes on: a read-only
   statement touches neither stored pages nor the catalog, so a session
   can run it against a pinned snapshot with no lock held.  Note this is
   strictly narrower than [not (mutates stmt)]: range/create/destroy and
   [copy into] don't write pages, but they read or change state a
   snapshot doesn't pin (catalog, the filesystem), so they stay on the
   serialized path. *)
let read_only = function
  | Ast.Retrieve { into = None; _ } -> true
  | Ast.Range _ | Ast.Create _ | Ast.Destroy _ | Ast.Modify _ | Ast.Copy _
  | Ast.Retrieve { into = Some _; _ }
  | Ast.Append _ | Ast.Delete _ | Ast.Replace _ ->
      false

let isolation_label ?epoch stmt =
  match epoch with
  | Some e when read_only stmt -> Printf.sprintf "snapshot@%d" e
  | _ -> "serialized (writer)"

(* Bracket a mutating statement with the journal's begin/commit.  Commit
   happens on any normal return — including [Error]: a failed statement
   may already have made page writes (the executors have no undo of
   their own), and those in-memory effects must stay durable so the
   stored state matches what a reader of this session sees.  Exceptions
   (injected crashes, real I/O failures) skip the commit deliberately:
   recovery rolls the half-statement back. *)
let execute_journaled db stmt =
  if mutates stmt then begin
    Database.begin_statement db;
    let result = execute_checked db stmt in
    Database.commit_statement db;
    result
  end
  else execute_checked db stmt

let outcome_trace = function
  | Rows { trace; _ } | Stored { trace; _ } | Modified { trace; _ } -> trace
  | Ack _ -> None

let outcome_rows = function
  | Rows { tuples; _ } -> Some (List.length tuples)
  | Stored { count; _ } -> Some count
  | Modified { inserted; _ } -> Some inserted
  | Ack _ -> None

(* Registered elsewhere (journal, buffer pool) at module init; looking
   them up by name here avoids new cross-layer hooks just to read them. *)
let journal_bytes_counter = Metric.counter "tdb_journal_bytes_total"
let pool_hits_counter = Metric.counter "tdb_pool_hits_total"
let pool_misses_counter = Metric.counter "tdb_pool_misses_total"

(* One JSONL record per statement, emitted while the statement lock is
   still held so records are totally ordered.  The deltas lean on the
   raw page counters ([Database.total_io]) and the registered journal
   counter; when the log is off this is a single branch. *)
let outcome_fields result =
  match result with
  | Ok o ->
      ( (match o with
        | Rows _ -> "rows"
        | Stored _ -> "stored"
        | Modified _ -> "modified"
        | Ack _ -> "ack"),
        outcome_rows o,
        None )
  | Error e -> ("error", None, Some e)

let log_statement db stmt ~t0 ~io0 ~jb0 ?id ?session ?epoch result =
  let io1 = Database.total_io db in
  let outcome, rows, error = outcome_fields result in
  Statement_log.log
    {
      Statement_log.id;
      session;
      epoch;
      kind = statement_kind stmt;
      text = Pretty.statement stmt;
      outcome;
      error;
      rows;
      latency_s = Metric.now_s () -. t0;
      reads = io1.Io_stats.reads - io0.Io_stats.reads;
      writes = io1.Io_stats.writes - io0.Io_stats.writes;
      journal_bytes = Metric.count journal_bytes_counter - jb0;
    }

let execute_serialized db ?session ?epoch ?log_id stmt =
  serialized @@ fun () ->
  let logging = Statement_log.enabled () in
  let t0 = if logging then Metric.now_s () else 0.0 in
  let io0 = if logging then Database.total_io db else Io_stats.zero in
  let jb0 = if logging then Metric.count journal_bytes_counter else 0 in
  let result =
    let* () = Semck.check_statement (Database.semck_env db) stmt in
    if not (Metric.enabled ()) then execute_journaled db stmt
    else begin
      let kind = statement_kind stmt in
      Metric.incr
        (Metric.counter ~labels:[ ("kind", kind) ] "tdb_engine_statements_total");
      let t0 = Metric.now_s () in
      let result = execute_journaled db stmt in
      Metric.observe
        (Metric.histogram ~labels:[ ("kind", kind) ]
           "tdb_engine_statement_seconds")
        (Metric.now_s () -. t0);
      result
    end
  in
  if logging then log_statement db stmt ~t0 ~io0 ~jb0 ?id:log_id ?session ?epoch result;
  result

let execute_statement db stmt = execute_serialized db stmt

(* --- snapshot execution (the session layer's lock-free read path) ---

   Runs a read-only retrieve against an explicit snapshot: the caller
   supplies the pinned timestamp [now] (queries see exactly the state as
   of it — post-snapshot appends carry later transaction times and are
   refuted by value), the reader-view [sources], and a semantic-check
   environment built from the published commit record rather than the
   live catalog.  No engine lock is taken; any number of these run
   concurrently with each other and with one serialized writer.

   Constraints the caller (the session layer) upholds: the calling
   domain is pinned sequential (no nested fan-out, no cross-domain trace
   notes), and the sources are private reader views so I/O accounting
   never races the shared pools. *)

(* Pre-registered at module init: snapshot readers must never touch the
   metric registry at runtime (find-or-register walks a shared list
   unlocked); these are the same series the serialized path looks up by
   name, so single-session counts land in the same place. *)
let retrieve_statements_counter =
  Metric.counter ~labels:[ ("kind", "retrieve") ] "tdb_engine_statements_total"

let retrieve_seconds_histogram =
  Metric.histogram ~labels:[ ("kind", "retrieve") ]
    "tdb_engine_statement_seconds"

let run_snapshot_retrieve ~now ~sources r =
  run_protected (fun () ->
      let tuples = ref [] in
      let outcome =
        Executor.run_retrieve ~now ~sources r ~on_tuple:(fun t ->
            tuples := t :: !tuples)
      in
      Rows
        {
          schema = outcome.Executor.schema;
          tuples = List.rev !tuples;
          io = outcome.Executor.io;
          plan = outcome.Executor.plan;
          trace = outcome.Executor.trace;
        })

let execute_snapshot ~now ~sources ~semck_env ~epoch ?session ?log_id stmt =
  match (stmt : Ast.statement) with
  | Ast.Retrieve ({ into = None; _ } as r) ->
      let logging = Statement_log.enabled () in
      let metrics = Metric.enabled () in
      let t0 = if logging || metrics then Metric.now_s () else 0.0 in
      let result =
        let* () = Semck.check_statement semck_env stmt in
        if metrics then Metric.incr retrieve_statements_counter;
        let result = run_snapshot_retrieve ~now ~sources r in
        if metrics then
          Metric.observe retrieve_seconds_histogram (Metric.now_s () -. t0);
        result
      in
      if logging then begin
        let outcome, rows, error = outcome_fields result in
        (* The snapshot path charges the outcome's own I/O summary:
           [Database.total_io] sums the shared pools, which concurrent
           writers are moving. *)
        let reads =
          match result with
          | Ok (Rows { io; _ }) -> io.Executor.input_reads
          | _ -> 0
        in
        Statement_log.log
          {
            Statement_log.id = log_id;
            session;
            epoch = Some epoch;
            kind = statement_kind stmt;
            text = Pretty.statement stmt;
            outcome;
            error;
            rows;
            latency_s = Metric.now_s () -. t0;
            reads;
            writes = 0;
            journal_bytes = 0;
          }
      end;
      result
  | stmt ->
      Error
        (Printf.sprintf
           "%s is not read-only: snapshot sessions route it to the writer"
           (statement_kind stmt))

(* The plan a retrieve would run, without running it (the CLI's
   [\explain]): the decomposition plan, then the batch pipeline it
   lowers to.  Fence refinements show which time dimensions the storage
   layer will prune on; the pipeline stages carry the same labels the
   trace spans use. *)
let explain ?epoch db src =
  let* stmt = Parser.parse_statement src in
  let* () = Semck.check_statement (Database.semck_env db) stmt in
  let isolation =
    Printf.sprintf "isolation: %s" (isolation_label ?epoch stmt)
  in
  match stmt with
  | Ast.Retrieve r ->
      run_protected (fun () ->
          let sources = sources_of db in
          let plan = Executor.plan_retrieve ~sources r in
          let pipe = Executor.pipeline_retrieve ~sources r in
          Plan.to_string plan ^ "\n"
          ^ Tdb_query.Pipeline.to_string pipe
          ^ "\n"
          ^ Executor.explain_parallelism ~now:(Database.now db) ~sources r
          ^ "\n" ^ isolation)
  | stmt ->
      Ok (Printf.sprintf "%s: no plan (only retrieve statements are planned)\n%s"
            (statement_kind stmt) isolation)

(* --- explain analyze: run the statement, report the executed plan --- *)

type analysis = {
  a_outcome : outcome;
  a_kind : string;
  a_text : string;
  a_wall_s : float;
  a_hits : int;  (** buffer-pool hits during the statement *)
  a_misses : int;  (** buffer-pool misses during the statement *)
  a_journal_bytes : int;
  a_workers : int;
  a_parallel : string option;
  a_isolation : string;  (** "snapshot@N" or "serialized (writer)" *)
}

(* Execute one statement with span tracing forced on, and capture the
   counter deltas the trace tree cannot carry (buffer hits/misses and
   journal bytes are global registered counters, not per-span).  The
   trace tree itself rides in the outcome; for parallel scans it holds
   one child span per partition with that worker's busy time, pages and
   rows (see [Trace.note_partition]). *)
let analyze_core ~parallel_ctx ~isolation stmt run =
  let trace_was = Trace.enabled () in
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled trace_was) @@ fun () ->
  let h0 = Metric.count pool_hits_counter in
  let m0 = Metric.count pool_misses_counter in
  let jb0 = Metric.count journal_bytes_counter in
  let t0 = Metric.monotonic_s () in
  let* o = run () in
  let wall_s = Metric.monotonic_s () -. t0 in
  (* The parallelism decision the executor took (admission is
     deterministic, so re-deriving it after the run describes the run);
     charge-free — previews size partitions from fence summaries only. *)
  let parallel =
    match stmt with
    | Ast.Retrieve r -> (
        try
          let now, sources = parallel_ctx () in
          Some (Executor.explain_parallelism ~now ~sources r)
        with _ -> None)
    | _ -> None
  in
  Ok
    {
      a_outcome = o;
      a_kind = statement_kind stmt;
      a_text = Pretty.statement stmt;
      a_wall_s = wall_s;
      a_hits = Metric.count pool_hits_counter - h0;
      a_misses = Metric.count pool_misses_counter - m0;
      a_journal_bytes = Metric.count journal_bytes_counter - jb0;
      a_workers = parallelism ();
      a_parallel = parallel;
      a_isolation = isolation;
    }

let analyze_statement db stmt =
  analyze_core
    ~parallel_ctx:(fun () -> (Database.now db, sources_of db))
    ~isolation:(isolation_label stmt) stmt
    (fun () -> execute_statement db stmt)

(* [explain analyze] on a session's snapshot: the statement executes on
   the snapshot path (no lock) with tracing forced on — sound because
   the caller runs on the main domain (off-main domains trace-silently)
   and the sources are private reader views. *)
let analyze_snapshot ~now ~sources ~semck_env ~epoch ?session ?log_id stmt =
  analyze_core
    ~parallel_ctx:(fun () -> (now, sources))
    ~isolation:(isolation_label ~epoch stmt) stmt
    (fun () -> execute_snapshot ~now ~sources ~semck_env ~epoch ?session ?log_id stmt)

let analyze db src =
  let* stmt = Parser.parse_statement src in
  analyze_statement db stmt

let render_analysis a =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "explain analyze (%s)\n" a.a_kind);
  (match outcome_trace a.a_outcome with
  | Some t -> Buffer.add_string buf (Trace.render t)
  | None ->
      Buffer.add_string buf "(no operator tree for this statement)\n");
  (match a.a_outcome with
  | Ack msg -> Buffer.add_string buf (Printf.sprintf "ack: %s\n" msg)
  | _ -> ());
  let rows =
    match outcome_rows a.a_outcome with
    | Some r -> Printf.sprintf "; rows: %d" r
    | None -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "wall: %.2f ms; workers: %d%s\n" (1000.0 *. a.a_wall_s)
       a.a_workers rows);
  (match a.a_parallel with
  | Some p -> Buffer.add_string buf (p ^ "\n")
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "isolation: %s\n" a.a_isolation);
  Buffer.add_string buf
    (Printf.sprintf "buffer: %d hits, %d misses; journal: %d bytes\n" a.a_hits
       a.a_misses a.a_journal_bytes);
  Buffer.contents buf

let analysis_to_json a =
  Json.Obj
    [
      ("statement", Json.Str a.a_text);
      ("kind", Json.Str a.a_kind);
      ("wall_s", Json.Num a.a_wall_s);
      ("workers", Json.int a.a_workers);
      ( "parallel",
        match a.a_parallel with Some p -> Json.Str p | None -> Json.Null );
      ("isolation", Json.Str a.a_isolation);
      ( "rows",
        match outcome_rows a.a_outcome with
        | Some r -> Json.int r
        | None -> Json.Null );
      ( "buffer",
        Json.Obj
          [ ("hits", Json.int a.a_hits); ("misses", Json.int a.a_misses) ] );
      ("journal_bytes", Json.int a.a_journal_bytes);
      ( "tree",
        match outcome_trace a.a_outcome with
        | Some t -> Trace.to_json t
        | None -> Json.Null );
    ]

let execute db src =
  let* stmts = Parser.parse_program src in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        let* o = execute_statement db s in
        go (o :: acc) rest
  in
  go [] stmts

let execute_one db src =
  let* stmt = Parser.parse_statement src in
  execute_statement db stmt

(* --- result formatting --- *)

let format_rows ?(max_rows = 50) schema tuples =
  let attrs = Schema.all_attrs schema in
  let headers = Array.map (fun a -> a.Schema.name) attrs in
  let render_value v =
    match v with
    | Value.Time t -> Chronon.to_string t
    | v -> Value.to_string v
  in
  let shown = List.filteri (fun i _ -> i < max_rows) tuples in
  let rows = List.map (fun t -> Array.map render_value t) shown in
  let widths =
    Array.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length row.(i)))
          (String.length h) rows)
      headers
  in
  let line c =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) c) widths))
    ^ "+"
  in
  let render_row cells =
    "|"
    ^ String.concat "|"
        (Array.to_list
           (Array.mapi
              (fun i c -> Printf.sprintf " %-*s " widths.(i) c)
              cells))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render_row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  let total = List.length tuples in
  if total > max_rows then
    Buffer.add_string buf
      (Printf.sprintf "\n(%d of %d rows shown)" max_rows total)
  else Buffer.add_string buf (Printf.sprintf "\n(%d rows)" total);
  Buffer.contents buf
