module Schema = Tdb_relation.Schema
module Db_type = Tdb_relation.Db_type
module Attr_type = Tdb_relation.Attr_type
module Relation_file = Tdb_storage.Relation_file

type entry = {
  name : string;
  db_type : Db_type.t;
  attrs : Schema.attr list;
  meta : Relation_file.org_meta;
}

let schema_of_entry e = Schema.create_exn ~db_type:e.db_type e.attrs

let encode_attrs attrs =
  String.concat ","
    (List.map
       (fun (a : Schema.attr) ->
         (* Attribute names may contain spaces but never ':' or ','. *)
         Printf.sprintf "%s:%s" a.Schema.name (Attr_type.to_string a.Schema.ty))
       attrs)

let decode_attrs s =
  let parts = String.split_on_char ',' s in
  List.fold_left
    (fun acc part ->
      Result.bind acc (fun acc ->
          match String.index_opt part ':' with
          | None -> Error (Printf.sprintf "bad attribute %S" part)
          | Some i ->
              let name = String.sub part 0 i in
              let ty = String.sub part (i + 1) (String.length part - i - 1) in
              Result.bind (Attr_type.of_string ty) (fun ty ->
                  Ok ({ Schema.name; ty } :: acc))))
    (Ok []) parts
  |> Result.map List.rev

let encode_meta = function
  | Relation_file.Heap_meta -> "heap"
  | Relation_file.Hash_meta { key_attr; fillfactor; buckets } ->
      Printf.sprintf "hash:%d:%d:%d" key_attr fillfactor buckets
  | Relation_file.Isam_meta { key_attr; fillfactor; ndata; levels } ->
      Printf.sprintf "isam:%d:%d:%d:%s" key_attr fillfactor ndata
        (String.concat ";"
           (List.map (fun (fp, ec) -> Printf.sprintf "%d.%d" fp ec) levels))

let decode_meta s =
  match String.split_on_char ':' s with
  | [ "heap" ] -> Ok Relation_file.Heap_meta
  | [ "hash"; k; f; b ] -> (
      match (int_of_string_opt k, int_of_string_opt f, int_of_string_opt b) with
      | Some key_attr, Some fillfactor, Some buckets ->
          Ok (Relation_file.Hash_meta { key_attr; fillfactor; buckets })
      | _ -> Error (Printf.sprintf "bad hash metadata %S" s))
  | [ "isam"; k; f; n; lv ] -> (
      match (int_of_string_opt k, int_of_string_opt f, int_of_string_opt n) with
      | Some key_attr, Some fillfactor, Some ndata ->
          let levels =
            List.filter_map
              (fun pair ->
                match String.split_on_char '.' pair with
                | [ fp; ec ] -> (
                    match (int_of_string_opt fp, int_of_string_opt ec) with
                    | Some fp, Some ec -> Some (fp, ec)
                    | _ -> None)
                | _ -> None)
              (if lv = "" then [] else String.split_on_char ';' lv)
          in
          Ok (Relation_file.Isam_meta { key_attr; fillfactor; ndata; levels })
      | _ -> Error (Printf.sprintf "bad isam metadata %S" s))
  | _ -> Error (Printf.sprintf "bad organization metadata %S" s)

let encode_entry e =
  String.concat "\t"
    [ e.name; Db_type.to_string e.db_type; encode_attrs e.attrs; encode_meta e.meta ]

let decode_entry line =
  match String.split_on_char '\t' line with
  | [ name; db_type; attrs; meta ] ->
      Result.bind (Db_type.of_string db_type) (fun db_type ->
          Result.bind (decode_attrs attrs) (fun attrs ->
              Result.bind (decode_meta meta) (fun meta ->
                  Ok { name; db_type; attrs; meta })))
  | _ -> Error (Printf.sprintf "bad catalog line %S" line)

let save ?fault ~path entries =
  (* Atomically: the catalog is the database's identity — a crash during
     an in-place rewrite would orphan every relation. *)
  let buf = Buffer.create 256 in
  List.iter (fun e -> Buffer.add_string buf (encode_entry e ^ "\n")) entries;
  Tdb_storage.Atomic_file.write ?fault ~path (Buffer.contents buf)

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line when String.trim line = "" -> go acc
          | line -> (
              match decode_entry line with
              | Ok e -> go (e :: acc)
              | Error msg -> Error msg)
          | exception End_of_file -> Ok (List.rev acc)
        in
        go [])
  end
