(** A database: a set of named relations, a session clock, and the range
    declarations of the current session.

    Databases are in-memory by default; give [dir] to create or reopen a
    file-backed database (one page file per relation plus a catalog file).
    Transaction-time stamps come from the database clock, which modification
    statements advance by one second each — deterministic, monotone
    "now". *)

type t

val create :
  ?dir:string ->
  ?fault:Tdb_storage.Fault.t ->
  ?journal:bool ->
  ?start:Tdb_time.Chronon.t ->
  unit ->
  (t, string) result
(** In-memory, or rooted at [dir] (created if missing; reopened if it
    already holds a catalog).  [start] sets the clock's origin for fresh
    databases (default 1980-01-01, as in the paper's benchmark).

    Opening a file-backed database first replays its write-ahead journal,
    if one was left behind by a crashed session: committed statements are
    rolled forward, the uncommitted one (there is at most one — statements
    are serialized) rolled back, so the data files land exactly on a
    statement boundary.  The replay's findings are reported by
    {!journal_recovery}.

    Then a recovery pass runs over every relation file: checksums are
    validated, torn tails truncated, dangling overflow pointers cleared;
    what was repaired is reported by {!recoveries}.  Damage that cannot be
    repaired (a checksum failure that is not a torn tail, a file shorter
    than its catalog accounting) raises {!Tdb_error.Error}
    with class [Corruption].

    [journal] controls whether this session writes the journal (default:
    on for file-backed databases unless [TDB_JOURNAL] is [0], [false] or
    [off] in the environment; always off for in-memory databases).
    Recovery of an existing journal happens regardless — a journal left
    by an earlier crash must be honoured even by a non-journalling
    session.

    [fault] attaches a deterministic fault-injection plan to every
    relation file opened by this database — the crash-consistency
    harness's entry point.  The plan also covers journal writes and the
    atomic catalog/clock replacement windows. *)

val recoveries : t -> (string * Tdb_storage.Disk.recovery) list
(** Relations whose backing file needed repair at open, oldest first. *)

val journal_recovery : t -> Tdb_storage.Journal.report option
(** What the journal replay at open found, if a journal with statements
    was present. *)

val journaling : t -> bool
(** Whether this session writes the statement journal. *)

val begin_statement : t -> unit
(** Marks the start of a mutating statement in the journal (no-op without
    one).  An unfinished previous statement is committed first.  Called
    by the engine around every mutating statement; exposed for harnesses
    that drive the storage layer directly. *)

val commit_statement : t -> unit
(** Makes the current statement's effects durable: post-images and final
    extents are journalled, then the journal is fsynced.  The statement's
    effects survive any later crash; without the matching call, a crash
    rolls them back. *)

val clock : t -> Tdb_time.Clock.t
val now : t -> Tdb_time.Chronon.t

val create_relation :
  t -> name:string -> Tdb_relation.Schema.t -> (Tdb_storage.Relation_file.t, string) result

val adopt_relation :
  t -> Tdb_storage.Relation_file.t -> (unit, string) result
(** Registers an externally built relation (e.g. the primary store of a
    {!Tdb_twostore.Two_level_store}) under its own name so TQuel queries can
    run against it.  In-memory databases only. *)

val find_relation : t -> string -> Tdb_storage.Relation_file.t option
val relation_names : t -> string list
val destroy_relation : t -> string -> (unit, string) result
val modify_relation :
  t -> string -> Tdb_storage.Relation_file.organization -> (unit, string) result

val set_range : t -> var:string -> rel:string -> (unit, string) result
val find_range : t -> string -> string option
val ranges : t -> (string * string) list

val relations : t -> (string * Tdb_storage.Relation_file.t) list
(** Snapshot of the open relations, [(normalized name, file)]. *)

val flush_pools : t -> unit
(** Flushes every relation's buffer pool down to its disk (no fsync, no
    epoch bump), so snapshot reader views reading the shared disks see
    every published page.  Called by the session layer before publishing
    a commit epoch. *)

val semck_env : t -> Tdb_tquel.Semck.env

val sync : t -> unit
(** Checkpoint: flush and fsync all relations, then atomically rewrite the
    catalog and clock files (in-memory databases only flush pools). *)

val close : t -> unit

val abandon : t -> unit
(** Drops every relation's file descriptor {e without} flushing or
    syncing — simulated process death, for the fault-injection harness. *)

val reset_io : t -> unit
(** Reset every relation's I/O counters and empty the buffer pools —
    putting the system in the paper's cold-start state before a measured
    query. *)

val total_io : t -> Tdb_storage.Io_stats.snapshot
(** Sum over all user relations. *)
