(** The system catalog: per-relation metadata and its on-disk codec.

    The prototype "modified the system relation to support the various
    combination of implicit temporal attributes according to the type of a
    relation" (paper, section 4).  Here the catalog is a text file —
    one line per relation — so that file-backed databases reopen without
    rebuilding their access methods.  Catalog I/O is deliberately not
    counted by the benchmark, as in the paper. *)

type entry = {
  name : string;
  db_type : Tdb_relation.Db_type.t;
  attrs : Tdb_relation.Schema.attr list;  (** user attributes *)
  meta : Tdb_storage.Relation_file.org_meta;
}

val schema_of_entry : entry -> Tdb_relation.Schema.t

val encode_entry : entry -> string
(** One line, no newline. *)

val decode_entry : string -> (entry, string) result

val save : ?fault:Tdb_storage.Fault.t -> path:string -> entry list -> unit
(** Atomic replacement; [fault] threads the database's fault plan through
    the atomic writer's crash windows. *)

val load : path:string -> (entry list, string) result
(** An absent file is an empty catalog. *)
