module Schema = Tdb_relation.Schema
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Disk = Tdb_storage.Disk
module Fault = Tdb_storage.Fault
module Atomic_file = Tdb_storage.Atomic_file
module Clock = Tdb_time.Clock
module Semck = Tdb_tquel.Semck

type t = {
  dir : string option;
  fault : Fault.t option;
  clock : Clock.t;
  relations : (string, Relation_file.t) Hashtbl.t;
  mutable range_decls : (string * string) list;
  mutable recoveries : (string * Disk.recovery) list;
}

let norm = Schema.norm_name
let catalog_path dir = Filename.concat dir "catalog.tdb"
let clock_path dir = Filename.concat dir "clock.tdb"
let pages_path dir name = Filename.concat dir (name ^ ".pages")

(* The clock must persist: a reopened database may never stamp earlier
   than its existing data.  Written atomically — a torn clock would
   otherwise reset the whole database's notion of "now". *)
let save_clock dir clock =
  Atomic_file.write ~path:(clock_path dir)
    ~content:
      (string_of_int (Tdb_time.Chronon.to_seconds (Clock.now clock)))

let load_clock dir =
  if not (Sys.file_exists (clock_path dir)) then None
  else begin
    let ic = open_in (clock_path dir) in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match int_of_string_opt (String.trim (input_line ic)) with
        | Some s -> Some (Tdb_time.Chronon.of_seconds s)
        | None | (exception End_of_file) -> None)
  end

let entries t =
  Hashtbl.fold
    (fun name rel acc ->
      {
        Catalog.name;
        db_type = Schema.db_type (Relation_file.schema rel);
        attrs = Array.to_list (Schema.user_attrs (Relation_file.schema rel));
        meta = Relation_file.org_meta rel;
      }
      :: acc)
    t.relations []
  |> List.sort (fun a b -> compare a.Catalog.name b.Catalog.name)

let save_catalog t =
  match t.dir with
  | None -> ()
  | Some dir -> Catalog.save ~path:(catalog_path dir) (entries t)

let create ?dir ?fault ?start () =
  let clock = Clock.create ?start () in
  let t =
    {
      dir;
      fault;
      clock;
      relations = Hashtbl.create 16;
      range_decls = [];
      recoveries = [];
    }
  in
  match dir with
  | None -> Ok t
  | Some dir -> (
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      if not (Sys.is_directory dir) then
        Error (Printf.sprintf "%s is not a directory" dir)
      else
        match Catalog.load ~path:(catalog_path dir) with
        | Error e -> Error (Printf.sprintf "corrupt catalog: %s" e)
        | Ok es ->
            (match load_clock dir with
            | Some persisted
              when Tdb_time.Chronon.compare persisted (Clock.now clock) > 0 ->
                Clock.set clock persisted
            | _ -> ());
            (* Recovery-on-open: each relation file is validated (and a
               torn tail repaired) as it is attached.  Unrepairable
               corruption propagates as [Tdb_error.Error]. *)
            List.iter
              (fun (e : Catalog.entry) ->
                let schema = Catalog.schema_of_entry e in
                let rel =
                  Relation_file.attach ?fault
                    ~backing:(`File (pages_path dir e.Catalog.name))
                    ~name:e.Catalog.name ~schema e.Catalog.meta
                in
                (match Relation_file.recovery rel with
                | Some r when Disk.recovery_repaired r ->
                    t.recoveries <- (e.Catalog.name, r) :: t.recoveries
                | _ -> ());
                Hashtbl.replace t.relations e.Catalog.name rel)
              es;
            t.recoveries <- List.rev t.recoveries;
            Ok t)

let recoveries t = t.recoveries

let clock t = t.clock
let now t = Clock.now t.clock

let find_relation t name = Hashtbl.find_opt t.relations (norm name)

let create_relation t ~name schema =
  let name = norm name in
  if Hashtbl.mem t.relations name then
    Error (Printf.sprintf "relation %S already exists" name)
  else begin
    let backing =
      match t.dir with
      | None -> `Mem
      | Some dir -> `File (pages_path dir name)
    in
    let rel = Relation_file.create ~backing ?fault:t.fault ~name ~schema () in
    Hashtbl.replace t.relations name rel;
    save_catalog t;
    Ok rel
  end

let adopt_relation t rel =
  let name = norm (Relation_file.name rel) in
  if t.dir <> None then Error "adopt_relation works on in-memory databases only"
  else if Hashtbl.mem t.relations name then
    Error (Printf.sprintf "relation %S already exists" name)
  else begin
    Hashtbl.replace t.relations name rel;
    Ok ()
  end

let relation_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []
  |> List.sort compare

let destroy_relation t name =
  let name = norm name in
  match Hashtbl.find_opt t.relations name with
  | None -> Error (Printf.sprintf "relation %S does not exist" name)
  | Some rel ->
      Relation_file.close rel;
      Hashtbl.remove t.relations name;
      t.range_decls <-
        List.filter (fun (_, r) -> r <> name) t.range_decls;
      (match t.dir with
      | Some dir ->
          let pages = pages_path dir name in
          if Sys.file_exists pages then Sys.remove pages;
          let fences = pages ^ ".fences" in
          if Sys.file_exists fences then Sys.remove fences
      | None -> ());
      save_catalog t;
      Ok ()

let modify_relation t name org =
  let name = norm name in
  match Hashtbl.find_opt t.relations name with
  | None -> Error (Printf.sprintf "relation %S does not exist" name)
  | Some rel -> (
      match Relation_file.modify rel org with
      | () ->
          save_catalog t;
          Ok ()
      | exception Invalid_argument msg -> Error msg)

let set_range t ~var ~rel =
  let rel = norm rel in
  if not (Hashtbl.mem t.relations rel) then
    Error (Printf.sprintf "relation %S does not exist" rel)
  else begin
    t.range_decls <- (norm var, rel) :: List.remove_assoc (norm var) t.range_decls;
    Ok ()
  end

let find_range t var = List.assoc_opt (norm var) t.range_decls
let ranges t = t.range_decls

let semck_env t =
  {
    Semck.find_relation =
      (fun name ->
        Option.map
          (fun rel ->
            {
              Semck.schema = Relation_file.schema rel;
              db_type = Schema.db_type (Relation_file.schema rel);
            })
          (find_relation t name));
    find_range = (fun var -> find_range t var);
  }

let sync t =
  (* Data pages first (flush + fsync + epoch bump), then the metadata that
     describes them, each file replaced atomically. *)
  Hashtbl.iter (fun _ rel -> Relation_file.sync rel) t.relations;
  save_catalog t;
  match t.dir with None -> () | Some dir -> save_clock dir t.clock

let close t =
  sync t;
  Hashtbl.iter (fun _ rel -> Relation_file.close rel) t.relations;
  Hashtbl.reset t.relations

let abandon t =
  Hashtbl.iter (fun _ rel -> Relation_file.abandon rel) t.relations;
  Hashtbl.reset t.relations

let reset_io t =
  Hashtbl.iter
    (fun _ rel ->
      Buffer_pool.invalidate (Relation_file.pool rel);
      Io_stats.reset (Relation_file.stats rel))
    t.relations

let total_io t =
  Hashtbl.fold
    (fun _ rel acc ->
      Io_stats.add acc (Io_stats.snapshot (Relation_file.stats rel)))
    t.relations Io_stats.zero
