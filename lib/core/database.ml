module Schema = Tdb_relation.Schema
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Disk = Tdb_storage.Disk
module Fault = Tdb_storage.Fault
module Atomic_file = Tdb_storage.Atomic_file
module Journal = Tdb_storage.Journal
module Clock = Tdb_time.Clock
module Semck = Tdb_tquel.Semck

type t = {
  dir : string option;
  fault : Fault.t option;
  clock : Clock.t;
  relations : (string, Relation_file.t) Hashtbl.t;
  mutable range_decls : (string * string) list;
  mutable recoveries : (string * Disk.recovery) list;
  journal : Journal.t option;
      (* the statement journal; present exactly when the database is
         file-backed and journalling was not disabled *)
  journal_recovery : Journal.report option;
      (* what the journal replay found at open, if anything *)
}

let norm = Schema.norm_name
let catalog_path dir = Filename.concat dir "catalog.tdb"
let clock_path dir = Filename.concat dir "clock.tdb"
let pages_path dir name = Filename.concat dir (name ^ ".pages")

(* The clock must persist: a reopened database may never stamp earlier
   than its existing data.  Written atomically — a torn clock would
   otherwise reset the whole database's notion of "now". *)
let save_clock ?fault dir clock =
  Atomic_file.write ?fault ~path:(clock_path dir)
    (string_of_int (Tdb_time.Chronon.to_seconds (Clock.now clock)))

let load_clock dir =
  if not (Sys.file_exists (clock_path dir)) then None
  else begin
    let ic = open_in (clock_path dir) in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match int_of_string_opt (String.trim (input_line ic)) with
        | Some s -> Some (Tdb_time.Chronon.of_seconds s)
        | None | (exception End_of_file) -> None)
  end

let entries t =
  Hashtbl.fold
    (fun name rel acc ->
      {
        Catalog.name;
        db_type = Schema.db_type (Relation_file.schema rel);
        attrs = Array.to_list (Schema.user_attrs (Relation_file.schema rel));
        meta = Relation_file.org_meta rel;
      }
      :: acc)
    t.relations []
  |> List.sort (fun a b -> compare a.Catalog.name b.Catalog.name)

let save_catalog t =
  match t.dir with
  | None -> ()
  | Some dir -> Catalog.save ?fault:t.fault ~path:(catalog_path dir) (entries t)

(* Journalling is on for file-backed databases unless disabled by the
   [journal] argument or TDB_JOURNAL=0 in the environment (the bench's
   on/off comparison uses the former). *)
let journal_wanted journal =
  match journal with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "TDB_JOURNAL" with
      | Some ("0" | "false" | "off") -> false
      | _ -> true)

(* A journal replay can make statements durable that ran after the last
   clock save: their stamps are ahead of the persisted clock, and a
   session that resumed from the stale clock could re-issue chronons
   that already appear in the data (or silently hide the replayed
   versions from as-of-now queries).  After a replay, advance the clock
   past every finite stamp stored in the data. *)
let bump_clock_past_stamps t =
  Hashtbl.iter
    (fun _ rel ->
      let schema = Relation_file.schema rel in
      let idxs =
        List.filter_map
          (fun f -> f schema)
          [
            Schema.transaction_start_index;
            Schema.transaction_stop_index;
            Schema.valid_from_index;
            Schema.valid_to_index;
          ]
      in
      if idxs <> [] then
        Relation_file.scan rel (fun _ tu ->
            List.iter
              (fun i ->
                match tu.(i) with
                | Tdb_relation.Value.Time c
                  when (not (Tdb_time.Chronon.is_forever c))
                       && Tdb_time.Chronon.compare c (Clock.now t.clock) > 0 ->
                    Clock.set t.clock c
                | _ -> ())
              idxs))
    t.relations

let create ?dir ?fault ?journal ?start () =
  let clock = Clock.create ?start () in
  let fresh ?j ?jr () =
    {
      dir;
      fault;
      clock;
      relations = Hashtbl.create 16;
      range_decls = [];
      recoveries = [];
      journal = j;
      journal_recovery = jr;
    }
  in
  match dir with
  | None -> Ok (fresh ())
  | Some dir -> (
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      if not (Sys.is_directory dir) then
        Error (Printf.sprintf "%s is not a directory" dir)
      else
        match Catalog.load ~path:(catalog_path dir) with
        | Error e -> Error (Printf.sprintf "corrupt catalog: %s" e)
        | Ok es ->
            (* Statement recovery first, on the raw files: committed
               statements are replayed, uncommitted ones rolled back, so
               the per-file validation below sees page images exactly on
               a statement boundary.  This runs even when journalling is
               disabled for the new session — a journal left by an
               earlier crashed process must still be honoured. *)
            let jr = Journal.recover ~dir in
            let j =
              if journal_wanted journal then
                Some (Journal.open_ ~dir ?fault ())
              else None
            in
            let t = fresh ?j ?jr () in
            (match load_clock dir with
            | Some persisted
              when Tdb_time.Chronon.compare persisted (Clock.now clock) > 0 ->
                Clock.set clock persisted
            | _ -> ());
            (* Recovery-on-open: each relation file is validated (and a
               torn tail repaired) as it is attached.  Unrepairable
               corruption propagates as [Tdb_error.Error]. *)
            List.iter
              (fun (e : Catalog.entry) ->
                let schema = Catalog.schema_of_entry e in
                let rel =
                  Relation_file.attach ?fault
                    ~backing:(`File (pages_path dir e.Catalog.name))
                    ~name:e.Catalog.name ~schema e.Catalog.meta
                in
                (match Relation_file.recovery rel with
                | Some r when Disk.recovery_repaired r ->
                    t.recoveries <- (e.Catalog.name, r) :: t.recoveries
                | _ -> ());
                Option.iter (Relation_file.set_journal rel) t.journal;
                Hashtbl.replace t.relations e.Catalog.name rel)
              es;
            (match jr with
            | Some r when r.Journal.replayed > 0 -> bump_clock_past_stamps t
            | _ -> ());
            t.recoveries <- List.rev t.recoveries;
            (* Recovery work done at open lands in the statement log as
               notices, so a log reader sees repairs next to the
               statements that followed them. *)
            Option.iter
              (fun r ->
                Tdb_obs.Statement_log.note "journal-recovery"
                  ~attrs:
                    [
                      ("dir", dir);
                      ("report", Format.asprintf "%a" Journal.pp_report r);
                    ])
              jr;
            List.iter
              (fun (name, r) ->
                Tdb_obs.Statement_log.note "relation-recovery"
                  ~attrs:
                    [
                      ("relation", name);
                      ("report", Format.asprintf "%a" Disk.pp_recovery r);
                    ])
              t.recoveries;
            Ok t)

let recoveries t = t.recoveries
let journal_recovery t = t.journal_recovery
let journaling t = t.journal <> None

let begin_statement t = Option.iter Journal.begin_statement t.journal
let commit_statement t = Option.iter Journal.commit_statement t.journal

let clock t = t.clock
let now t = Clock.now t.clock

let find_relation t name = Hashtbl.find_opt t.relations (norm name)

let create_relation t ~name schema =
  let name = norm name in
  if Hashtbl.mem t.relations name then
    Error (Printf.sprintf "relation %S already exists" name)
  else begin
    let backing =
      match t.dir with
      | None -> `Mem
      | Some dir -> `File (pages_path dir name)
    in
    let rel = Relation_file.create ~backing ?fault:t.fault ~name ~schema () in
    (if t.dir <> None then
       Option.iter (Relation_file.set_journal rel) t.journal);
    Hashtbl.replace t.relations name rel;
    save_catalog t;
    Ok rel
  end

let adopt_relation t rel =
  let name = norm (Relation_file.name rel) in
  if t.dir <> None then Error "adopt_relation works on in-memory databases only"
  else if Hashtbl.mem t.relations name then
    Error (Printf.sprintf "relation %S already exists" name)
  else begin
    Hashtbl.replace t.relations name rel;
    Ok ()
  end

let relation_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []
  |> List.sort compare

let destroy_relation t name =
  let name = norm name in
  match Hashtbl.find_opt t.relations name with
  | None -> Error (Printf.sprintf "relation %S does not exist" name)
  | Some rel ->
      Relation_file.close rel;
      Option.iter (fun j -> Journal.unregister_file j ~file:name) t.journal;
      Hashtbl.remove t.relations name;
      t.range_decls <-
        List.filter (fun (_, r) -> r <> name) t.range_decls;
      (match t.dir with
      | Some dir ->
          let pages = pages_path dir name in
          if Sys.file_exists pages then Sys.remove pages;
          let fences = pages ^ ".fences" in
          if Sys.file_exists fences then Sys.remove fences
      | None -> ());
      save_catalog t;
      Ok ()

let modify_relation t name org =
  let name = norm name in
  match Hashtbl.find_opt t.relations name with
  | None -> Error (Printf.sprintf "relation %S does not exist" name)
  | Some rel -> (
      match Relation_file.modify rel org with
      | () ->
          save_catalog t;
          Ok ()
      | exception Invalid_argument msg -> Error msg)

let set_range t ~var ~rel =
  let rel = norm rel in
  if not (Hashtbl.mem t.relations rel) then
    Error (Printf.sprintf "relation %S does not exist" rel)
  else begin
    t.range_decls <- (norm var, rel) :: List.remove_assoc (norm var) t.range_decls;
    Ok ()
  end

let find_range t var = List.assoc_opt (norm var) t.range_decls
let ranges t = t.range_decls

let relations t =
  Hashtbl.fold (fun name rel acc -> (name, rel) :: acc) t.relations []

(* Push every dirty frame down to the disks, without fsync or epoch
   bumps: after this, snapshot reader views (which read the shared disk
   through private pools) see every page the writer has published.
   Called by the session layer before publishing a commit epoch. *)
let flush_pools t =
  Hashtbl.iter (fun _ rel -> Buffer_pool.flush (Relation_file.pool rel)) t.relations

let semck_env t =
  {
    Semck.find_relation =
      (fun name ->
        Option.map
          (fun rel ->
            {
              Semck.schema = Relation_file.schema rel;
              db_type = Schema.db_type (Relation_file.schema rel);
            })
          (find_relation t name));
    find_range = (fun var -> find_range t var);
  }

let sync t =
  (* Data pages first (flush + fsync + epoch bump), then the metadata that
     describes them, each file replaced atomically.  Once everything below
     the journal is durable the journal itself can be truncated — unless a
     statement is still open (copy-from syncs mid-statement), in which
     case [Journal.checkpoint] refuses and the journal keeps its undo
     information. *)
  Hashtbl.iter (fun _ rel -> Relation_file.sync rel) t.relations;
  save_catalog t;
  (match t.dir with
  | None -> ()
  | Some dir -> save_clock ?fault:t.fault dir t.clock);
  Option.iter Journal.checkpoint t.journal

let close t =
  sync t;
  Hashtbl.iter (fun _ rel -> Relation_file.close rel) t.relations;
  Hashtbl.reset t.relations;
  Option.iter Journal.close t.journal

let abandon t =
  Hashtbl.iter (fun _ rel -> Relation_file.abandon rel) t.relations;
  Hashtbl.reset t.relations;
  Option.iter Journal.abandon t.journal

let reset_io t =
  Hashtbl.iter
    (fun _ rel ->
      Buffer_pool.invalidate (Relation_file.pool rel);
      Io_stats.reset (Relation_file.stats rel))
    t.relations

let total_io t =
  Hashtbl.fold
    (fun _ rel acc ->
      Io_stats.add acc (Io_stats.snapshot (Relation_file.stats rel)))
    t.relations Io_stats.zero
