(* Re-export of the storage layer's structured error type so engine-level
   code and the CLI can speak of [Tdb_core.Tdb_error] without reaching
   into [Tdb_storage]. *)
include Tdb_storage.Tdb_error
