(** The engine: parse, check and execute TQuel against a database.

    This is the library's main entry point:

    {[
      let db = Result.get_ok (Tdb_core.Database.create ()) in
      let _ = Tdb_core.Engine.execute db {|
        create persistent interval emp (name = c20, salary = i4)
        range of e is emp
        append to emp (name = "ahn", salary = 30000)
        retrieve (e.name, e.salary) when e overlap "now"
      |}
    ]} *)

type outcome =
  | Rows of {
      schema : Tdb_relation.Schema.t;
      tuples : Tdb_relation.Tuple.t list;
      io : Tdb_query.Executor.io_summary;
      plan : Tdb_query.Plan.t;
      trace : Tdb_obs.Trace.node option;
    }  (** a displayed [retrieve] *)
  | Stored of {
      relation : string;
      count : int;
      io : Tdb_query.Executor.io_summary;
      plan : Tdb_query.Plan.t;
      trace : Tdb_obs.Trace.node option;
    }  (** [retrieve into] *)
  | Modified of {
      matched : int;
      inserted : int;
      trace : Tdb_obs.Trace.node option;
    }
      (** [append] / [delete] / [replace] *)
  | Ack of string  (** DDL and session statements *)

val set_parallelism : int option -> unit
(** Overrides the scan fan-out width for subsequent statements ([Some n],
    clamped to at least 1); [None] restores the default, which honours the
    [TDB_WORKERS] environment variable and otherwise follows
    [Domain.recommended_domain_count].  A width of 1 runs every scan
    sequentially on the calling domain. *)

val parallelism : unit -> int
(** The scan fan-out width the next statement would use. *)

val execute_statement :
  Database.t -> Tdb_tquel.Ast.statement -> (outcome, string) result
(** Checks the statement against the database, then runs it.  Modification
    statements advance the database clock by one second before executing,
    so transaction times are strictly increasing.  Statements are
    serialized under an engine-wide lock: concurrent callers interleave at
    statement granularity; parallelism lives inside a statement (see
    {!set_parallelism}). *)

(** {1 Statement classification and isolation} *)

val mutates : Tdb_tquel.Ast.statement -> bool
(** Whether the statement writes stored pages (and therefore runs inside
    a journal statement). *)

val read_only : Tdb_tquel.Ast.statement -> bool
(** Whether the statement touches neither stored pages nor the catalog —
    a displayed [retrieve] — and so can run against a pinned snapshot
    with no lock held.  Strictly narrower than [not (mutates stmt)]:
    catalog statements and [copy] aren't page writers but aren't
    snapshot-safe either. *)

val isolation_label : ?epoch:int -> Tdb_tquel.Ast.statement -> string
(** ["snapshot@N"] for a read-only statement with a pinned epoch,
    ["serialized (writer)"] otherwise. *)

(** {1 Session entry points}

    [execute_serialized] is {!execute_statement} with log attribution —
    the session layer's writer path.  [execute_snapshot] is the lock-free
    reader path: the caller (see [Tdb_session.Session]) supplies the
    pinned snapshot — timestamp, reader-view sources, a semantic-check
    environment built from the published commit record — and upholds two
    invariants: the calling domain is pinned sequential
    ([Tdb_par.Pool.pin_sequential]) and the sources are private reader
    views ([Relation_file.reader_view]). *)

val execute_serialized :
  Database.t ->
  ?session:string ->
  ?epoch:int ->
  ?log_id:int ->
  Tdb_tquel.Ast.statement ->
  (outcome, string) result

val execute_snapshot :
  now:Tdb_time.Chronon.t ->
  sources:Tdb_query.Executor.source list ->
  semck_env:Tdb_tquel.Semck.env ->
  epoch:int ->
  ?session:string ->
  ?log_id:int ->
  Tdb_tquel.Ast.statement ->
  (outcome, string) result
(** Rejects non-read-only statements with an [Error]. *)

val execute : Database.t -> string -> (outcome list, string) result
(** Parses and runs a whole script, stopping at the first error. *)

val execute_one : Database.t -> string -> (outcome, string) result
(** Parses and runs exactly one statement. *)

val explain : ?epoch:int -> Database.t -> string -> (string, string) result
(** Parses and checks one statement and describes the plan a [retrieve]
    would execute — including fence refinements showing which time
    dimensions the storage layer will prune on — without running it.
    The report ends with the isolation the statement would run at:
    [isolation: snapshot@N] when [?epoch] pins a session snapshot and
    the statement is read-only, [isolation: serialized (writer)]
    otherwise. *)

(** {1 Explain analyze} *)

type analysis = {
  a_outcome : outcome;
  a_kind : string;
  a_text : string;  (** the statement, pretty-printed *)
  a_wall_s : float;
  a_hits : int;  (** buffer-pool hits during the statement *)
  a_misses : int;  (** buffer-pool misses during the statement *)
  a_journal_bytes : int;  (** intent-journal bytes appended *)
  a_workers : int;  (** scan fan-out width in effect *)
  a_parallel : string option;
      (** the parallelism decision line(s) for retrieves — admitted
          fan-out, [declined (too small)], or off — as in [\explain] *)
  a_isolation : string;
      (** the isolation the statement ran at: ["snapshot@N"] or
          ["serialized (writer)"] *)
}

val analyze_statement :
  Database.t -> Tdb_tquel.Ast.statement -> (analysis, string) result
(** Execute the statement with span tracing forced on and return the
    executed plan tree (via the outcome's trace) plus the counter deltas
    a span cannot carry: buffer hits/misses and journal bytes.  Parallel
    scans report one child span per partition with the worker's domain
    id, busy time, pages and rows. *)

val analyze : Database.t -> string -> (analysis, string) result
(** [analyze_statement] on one parsed statement (the CLI's
    [\explain analyze] and the [explain analyze] input prefix). *)

val analyze_snapshot :
  now:Tdb_time.Chronon.t ->
  sources:Tdb_query.Executor.source list ->
  semck_env:Tdb_tquel.Semck.env ->
  epoch:int ->
  ?session:string ->
  ?log_id:int ->
  Tdb_tquel.Ast.statement ->
  (analysis, string) result
(** {!analyze_statement} on the snapshot path: the statement executes
    via {!execute_snapshot} with tracing forced on.  Only sound from the
    main domain (other domains trace silently). *)

val render_analysis : analysis -> string
(** The annotated executed-plan tree plus a wall/workers/rows line and a
    buffer/journal counter line. *)

val analysis_to_json : analysis -> Tdb_obs.Json.t
(** The same report in the shared obs JSON form (tree included). *)

val outcome_trace : outcome -> Tdb_obs.Trace.node option
(** The span tree an outcome carries, if tracing was on ([Ack] never
    carries one). *)

val format_rows :
  ?max_rows:int ->
  Tdb_relation.Schema.t ->
  Tdb_relation.Tuple.t list ->
  string
(** A bordered textual table of query results, times rendered readably. *)
