type err_class = Corruption | Io | Query | Internal

exception Error of err_class * string

let class_to_string = function
  | Corruption -> "corruption"
  | Io -> "io"
  | Query -> "query"
  | Internal -> "internal"

(* Exit codes for the CLI and bench: 0 ok, 1 usage, then one per class. *)
let exit_code = function Query -> 2 | Corruption -> 3 | Io -> 4 | Internal -> 5

let error cls fmt =
  Printf.ksprintf (fun msg -> raise (Error (cls, msg))) fmt

let corruption fmt = error Corruption fmt
let io fmt = error Io fmt
let query fmt = error Query fmt
let internal fmt = error Internal fmt

let message cls msg = Printf.sprintf "%s error: %s" (class_to_string cls) msg

let describe = function Error (cls, msg) -> Some (cls, msg) | _ -> None
