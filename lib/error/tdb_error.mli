(** Structured engine errors.

    Everything the storage and query layers can fail with is funnelled into
    one exception carrying an error class, so boundaries (CLI, bench,
    tests) can react by class — print and continue for a bad query, stop
    with a distinct exit code for corruption — instead of matching on
    [Failure] strings or letting backtraces escape. *)

type err_class =
  | Corruption  (** stored bytes fail validation: checksums, torn tails *)
  | Io  (** the environment failed us: short reads, EIO, ENOSPC *)
  | Query  (** the request was unserviceable; the database is fine *)
  | Internal  (** invariant broken; a bug in this system *)

exception Error of err_class * string

val class_to_string : err_class -> string

val exit_code : err_class -> int
(** Process exit code for a fatal error of this class (2..5; 1 is reserved
    for usage errors). *)

val error : err_class -> ('a, unit, string, 'b) format4 -> 'a
(** [error cls fmt ...] raises {!Error} with a formatted message. *)

val corruption : ('a, unit, string, 'b) format4 -> 'a
val io : ('a, unit, string, 'b) format4 -> 'a
val query : ('a, unit, string, 'b) format4 -> 'a
val internal : ('a, unit, string, 'b) format4 -> 'a

val message : err_class -> string -> string
(** Human-readable ["<class> error: <msg>"]. *)

val describe : exn -> (err_class * string) option
(** [Some (cls, msg)] for {!Error}, [None] for any other exception. *)
