(** A small domain pool for parallel scan partitions.

    The pool's only job is deterministic fan-out/join: [run_tasks] takes
    [n] independent task thunks, executes them on up to [workers ()]
    domains (the calling domain included), and returns their results in
    task-index order.  Exceptions are captured per task; after the join
    the exception of the {e lowest-indexed} failing task is re-raised on
    the caller's domain, so a parallel query fails with exactly one
    structured error — the same one a sequential run would have hit
    first.

    Worker count resolution, highest priority first:
    - an explicit [set_workers] (the CLI [--workers] flag / the engine's
      parallelism knob),
    - the [TDB_WORKERS] environment variable,
    - [Domain.recommended_domain_count ()].

    With one worker (or one task) everything runs inline on the calling
    domain — no domains are spawned, making [workers = 1] literally the
    sequential engine. *)

val set_workers : int option -> unit
(** Override the worker count ([Some n], clamped to >= 1), or drop back
    to environment/hardware resolution ([None]). *)

val workers : unit -> int
(** The resolved worker count (always >= 1).  Returns 1 on a domain pinned
    by {!pin_sequential}. *)

val pin_sequential : bool -> unit
(** Pins (or unpins) the {e calling domain} to sequential execution:
    while pinned, {!workers} answers 1 on this domain regardless of the
    global configuration.  Snapshot-isolated reader sessions pin their
    domain so concurrent statements never fan out into nested domain
    spawns; other domains are unaffected. *)

val pinned_sequential : unit -> bool
(** Whether the calling domain is pinned by {!pin_sequential}. *)

val run_tasks : int -> (int -> 'a) -> 'a array
(** [run_tasks n task] evaluates [task i] for [0 <= i < n] across the
    pool and returns the results indexed by [i].  Re-raises the first
    failing task's exception (by task index) after all tasks finished. *)
