(* Deterministic fan-out/join over OCaml 5 domains.

   Domains are spawned per [run_tasks] call rather than kept hot: a
   parallel scan dispatches a handful of partition drains that each run
   for many pages, so spawn cost is noise, and spawn-per-run keeps the
   pool free of shutdown obligations and cross-query state. *)

let override = ref None

let set_workers = function
  | None -> override := None
  | Some n -> override := Some (max 1 n)

(* Per-domain sequential pin.  A snapshot-isolated reader runs on its own
   domain concurrently with other sessions; pinning that domain to one
   worker keeps its statements from fanning out further (nested spawns,
   cross-domain trace/span interleavings) without touching the global
   worker configuration other sessions resolve against. *)
let sequential_here = Domain.DLS.new_key (fun () -> false)
let pin_sequential v = Domain.DLS.set sequential_here v
let pinned_sequential () = Domain.DLS.get sequential_here

let env_workers () =
  match Sys.getenv_opt "TDB_WORKERS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let workers () =
  if pinned_sequential () then 1
  else
    match !override with
    | Some n -> n
    | None -> (
        match env_workers () with
        | Some n -> n
        | None -> max 1 (Domain.recommended_domain_count ()))

let run_sequential n task =
  (* Explicit 0..n-1 loop: [Array.init]'s evaluation order is
     unspecified, and a failing task must raise exactly where the
     sequential engine would. *)
  let results = Array.make n None in
  for i = 0 to n - 1 do
    results.(i) <- Some (task i)
  done;
  Array.map Option.get results

let run_tasks n task =
  if n <= 0 then [||]
  else
    let k = min (workers ()) n in
    if k <= 1 then run_sequential n task
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <- Some (try Ok (task i) with e -> Error e));
            loop ()
          end
        in
        loop ()
      in
      let domains = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      (* Every task ran to completion (or failure) before the join, so
         re-raising the lowest-indexed failure is deterministic and no
         partial result escapes. *)
      Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
      Array.map (function Some (Ok v) -> v | _ -> assert false) results
    end
