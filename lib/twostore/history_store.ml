module Pfile = Tdb_storage.Pfile
module Tid = Tdb_storage.Tid
module Page = Tdb_storage.Page
module Buffer_pool = Tdb_storage.Buffer_pool
module Time_fence = Tdb_storage.Time_fence
module Cursor = Tdb_storage.Cursor
module Value = Tdb_relation.Value
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period

(* A time-ordered run of pages: fresh pages are only ever allocated to the
   newest segment, so segment creation times — and hence [push_lo] — are
   non-decreasing and an [as of] query can binary-search to its covering
   boundary instead of scanning the whole store.  Placement tails survive
   segment turnover (clustering versions of one tuple into a minimum
   number of pages takes priority); a push landing on an older segment's
   tail page widens that segment's push range and fence. *)
type segment = {
  first_page : int;
  mutable last_page : int;
  mutable push_lo : Chronon.t;
  mutable push_hi : Chronon.t;
  fence : Time_fence.t;
}

type t = {
  pf : Pfile.t;
  tuple_size : int;
  clustered : bool;
  cluster_tail : (Value.t, int) Hashtbl.t;
      (** clustered policy: the page currently receiving this tuple's
          versions *)
  mutable fill_tail : int;
      (** simple policy: the page currently receiving appends (-1 before
          the first) *)
  stamp : (bytes -> Time_fence.stamp) option;
  segment_pages : int;
  mutable segments : segment list;  (** newest first *)
  page_seg : (int, segment) Hashtbl.t;  (** page -> owning segment *)
  page_records : (int, int) Hashtbl.t;
      (** page -> records stored on it.  The store is append-only and
          never deletes, so slots fill [0, 1, 2, ...] in push order and
          these counts are per-page high-water marks: a record at slot
          [s] of page [p] existed at some past instant iff [s] was below
          the count recorded for [p] at that instant.  That turns
          point-in-time visibility into a {!boundary} bounds check. *)
}

let ptr_size = 4

let create ?stamp ?(segment_pages = 16) pool ~tuple_size ~clustered =
  let pf = Pfile.create pool ~record_size:(tuple_size + ptr_size) in
  if Pfile.npages pf <> 0 then
    invalid_arg "History_store.create: disk is not empty";
  if segment_pages < 1 then
    invalid_arg "History_store.create: segment_pages must be >= 1";
  (match stamp with
  | Some stamp -> Pfile.enable_fences pf ~stamp
  | None -> ());
  {
    pf;
    tuple_size;
    clustered;
    cluster_tail = Hashtbl.create 64;
    fill_tail = -1;
    stamp;
    segment_pages;
    segments = [];
    page_seg = Hashtbl.create 64;
    page_records = Hashtbl.create 64;
  }

let clustered t = t.clustered
let npages t = Pfile.npages t.pf

let segment_ranges t =
  List.rev_map (fun s -> (s.first_page, s.last_page)) t.segments

let segment_count t = List.length t.segments

let encode t tuple prev =
  let record = Bytes.create (t.tuple_size + ptr_size) in
  Bytes.blit tuple 0 record 0 t.tuple_size;
  (match prev with
  | None -> Bytes.set_int32_be record t.tuple_size 0l
  | Some p -> Tid.encode p record t.tuple_size);
  (* Tid encoding of page 0 slot 0 is 0, which collides with "none"; shift
     by one so every real pointer is nonzero. *)
  (match prev with
  | Some _ ->
      let raw = Bytes.get_int32_be record t.tuple_size in
      Bytes.set_int32_be record t.tuple_size (Int32.add raw 1l)
  | None -> ());
  record

let decode t record =
  let tuple = Bytes.sub record 0 t.tuple_size in
  let raw = Bytes.get_int32_be record t.tuple_size in
  let prev =
    if raw = 0l then None
    else begin
      let buf = Bytes.create 4 in
      Bytes.set_int32_be buf 0 (Int32.sub raw 1l);
      Some (Tid.decode buf 0)
    end
  in
  (tuple, prev)

let write_at t page record =
  match
    Page.find_free_slot
      ~record_size:(Pfile.record_size t.pf)
      (Buffer_pool.read (Pfile.pool t.pf) page)
  with
  | Some slot ->
      let tid = { Tid.page; slot } in
      Pfile.write_record t.pf tid record;
      Some tid
  | None -> None

let segment_width s = s.last_page - s.first_page + 1

let allocate_segment_page t ~now =
  let page = Pfile.allocate_page t.pf in
  let seg =
    match t.segments with
    | s :: _ when segment_width s < t.segment_pages ->
        s.last_page <- page;
        s
    | _ ->
        let s =
          {
            first_page = page;
            last_page = page;
            push_lo = now;
            push_hi = now;
            fence = Time_fence.empty ();
          }
        in
        t.segments <- s :: t.segments;
        s
  in
  Hashtbl.replace t.page_seg page seg;
  page

let note_push t ~now ~page record =
  let s = Hashtbl.find t.page_seg page in
  if Chronon.compare now s.push_lo < 0 then s.push_lo <- now;
  if Chronon.compare now s.push_hi > 0 then s.push_hi <- now;
  match t.stamp with
  | Some stamp -> Time_fence.note s.fence (stamp record)
  | None -> ()

let push t ~now ~cluster ~tuple ~prev =
  let record = encode t tuple prev in
  let tid =
    if t.clustered then begin
      let try_tail =
        match Hashtbl.find_opt t.cluster_tail cluster with
        | Some page -> write_at t page record
        | None -> None
      in
      match try_tail with
      | Some tid -> tid
      | None ->
          let page = allocate_segment_page t ~now in
          Hashtbl.replace t.cluster_tail cluster page;
          let tid = Option.get (write_at t page record) in
          tid
    end
    else begin
      let try_tail =
        if t.fill_tail >= 0 then write_at t t.fill_tail record else None
      in
      match try_tail with
      | Some tid -> tid
      | None ->
          let page = allocate_segment_page t ~now in
          t.fill_tail <- page;
          Option.get (write_at t page record)
    end
  in
  note_push t ~now ~page:tid.Tid.page record;
  Hashtbl.replace t.page_records tid.Tid.page
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.page_records tid.Tid.page));
  tid

(* --- epoch-fenced visibility --- *)

type boundary = int array

let boundary t =
  Array.init (Pfile.npages t.pf) (fun p ->
      Option.value ~default:0 (Hashtbl.find_opt t.page_records p))

let within b tid =
  tid.Tid.page < Array.length b && tid.Tid.slot < b.(tid.Tid.page)

let read t tid = decode t (Pfile.read_record t.pf tid)

let walk t ~head f =
  let rec go = function
    | None -> ()
    | Some tid ->
        let tuple, prev = read t tid in
        f tid tuple;
        go prev
  in
  go head

let scan_cursor ?window t =
  Cursor.of_pages ?window t.pf ~pages:(Seq.init (Pfile.npages t.pf) Fun.id)

(* Segment-aligned partitions of the full scan: each partition owns a
   contiguous run of whole time segments (oldest first, matching scan
   order), so no page is shared across partitions and the concatenation
   of partition outputs in list order is the sequential scan exactly.
   Each partition reads through a private 1-frame pool with private
   stats, like [Relation_file.partition_scan].

   Segments are the store's time shards: under a bounded window (with
   pruning on) a segment whose fence cannot overlap the window is
   dropped before any worker sees it.  The drop charges exactly what
   the sequential per-page scan would have charged for those pages —
   one fence check and one skip each (the segment fence is the union of
   its page fences, so a refuted segment's pages are all individually
   refutable) — and surviving segments are charged nothing here: their
   workers re-check page by page, as the sequential scan does.  The
   prune counters therefore stay bit-identical to sequential. *)
let prune_window t window =
  match window with
  | Some w
    when Option.is_some t.stamp
         && Time_fence.pruning_enabled ()
         && not (Time_fence.window_is_unbounded w) ->
      Some w
  | _ -> None

let live_segments ~charge t window =
  let segs = List.rev t.segments in
  match prune_window t window with
  | None -> segs
  | Some w ->
      List.filter
        (fun s ->
          Time_fence.may_overlap s.fence w
          ||
          (if charge then begin
             let width = segment_width s in
             for _ = 1 to width do
               Time_fence.note_check ()
             done;
             Time_fence.note_skipped width
           end;
           false))
        segs

let scan_partitions ?window t ~parts =
  max 1 (min parts (List.length (live_segments ~charge:false t window)))

(* Charge-free sizing for the planner's admission decision:
   [(live_pages, pruned_pages)] under [?window]. *)
let scan_preview ?window t =
  let live =
    List.fold_left
      (fun acc s -> acc + segment_width s)
      0
      (live_segments ~charge:false t window)
  in
  (live, Pfile.npages t.pf - live)

let partition_scan ?window t ~parts =
  Buffer_pool.flush (Pfile.pool t.pf);
  let segs = Array.of_list (live_segments ~charge:true t window) in
  let n = Array.length segs in
  let nparts = max 1 (min parts n) in
  if n = 0 then [ (Cursor.empty, Tdb_storage.Io_stats.create ()) ]
  else
    List.init nparts (fun i ->
        let lo = i * n / nparts and hi = ((i + 1) * n / nparts) - 1 in
        let stats = Tdb_storage.Io_stats.create () in
        let pool =
          Buffer_pool.create ~frames:1
            (Buffer_pool.disk (Pfile.pool t.pf))
            stats
        in
        let pf' = Pfile.with_pool t.pf pool in
        let pages =
          Seq.concat_map
            (fun s -> Seq.init (segment_width s) (fun k -> s.first_page + k))
            (Seq.init (hi - lo + 1) (fun k -> segs.(lo + k)))
        in
        (Cursor.of_pages ?window pf' ~pages, stats))

let iter t f =
  Cursor.iter (scan_cursor t) (fun tid record -> f tid (fst (decode t record)))

(* [as of at]: visit (at least) every version whose transaction period
   overlaps [at], in store order.

   The segments' push-time ranges are non-decreasing, so a binary search
   finds the boundary: segments pushed entirely at or before [at] (the
   prefix) hold the terminated versions that may satisfy the rollback and
   must be walked (their pages still get individual fence checks —
   superseded-only pages have max tstop <= at and drop out); segments
   pushed after [at] (the suffix) can only qualify through a version that
   {e started} at or before [at], which the segment fence decides without
   touching any page.  Even if the caller's clock ever ran backwards the
   result stays sound: prefix segments are read, and fence checks do not
   depend on push order. *)
let as_of_cursor t ~at =
  let segs = Array.of_list (List.rev t.segments) in
  let n = Array.length segs in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare segs.(mid).push_lo at <= 0 then lo := mid + 1
    else hi := mid
  done;
  let boundary = !lo in
  let window =
    { Time_fence.transaction = Some (Period.at at); valid = None }
  in
  let prune = Time_fence.pruning_enabled () && Option.is_some t.stamp in
  (* One chunk per surviving page, segment by segment: the segment-level
     fence decision and the per-page checks fire in exactly the order and
     number of the eager walk, just spread over the cursor's pulls. *)
  let seg_i = ref 0 in
  let page = ref 0 in
  let in_segment = ref false in
  let rec chunk () =
    if !in_segment then begin
      let s = segs.(!seg_i) in
      if !page > s.last_page then begin
        in_segment := false;
        incr seg_i;
        chunk ()
      end
      else begin
        let p = !page in
        incr page;
        Some (Pfile.page_step ~window t.pf ~page:p)
      end
    end
    else if !seg_i >= n then None
    else begin
      let s = segs.(!seg_i) in
      let segment_skippable =
        !seg_i >= boundary && prune
        &&
        (Time_fence.note_check ();
         not (Time_fence.may_overlap s.fence window))
      in
      if segment_skippable then begin
        Time_fence.note_skipped (segment_width s);
        incr seg_i;
        chunk ()
      end
      else begin
        in_segment := true;
        page := s.first_page;
        chunk ()
      end
    end
  in
  Cursor.of_chunks chunk

let as_of_iter t ~at f =
  Cursor.iter (as_of_cursor t ~at) (fun tid record ->
      f tid (fst (decode t record)))
