(** The two-level store (paper, section 6): "the primary store contains
    current versions which can satisfy all non-temporal queries ...; the
    history store holds the remaining history versions".

    The primary store is an ordinary {!Tdb_storage.Relation_file} (hash or
    ISAM organized) holding exactly the current version of every tuple —
    updates happen {e in place}, so it never grows and never develops
    overflow chains: non-temporal queries keep their update-count-0 cost
    forever.  Superseded versions move to the {!History_store}, linked from
    the current version through per-tuple back-pointer chains.

    Only temporal-interval relations are supported (the structure exists to
    study the paper's Figure 10, which is about the temporal database). *)

type t

val create :
  ?name:string ->
  ?segment_pages:int ->
  ?journal:Tdb_storage.Journal.t ->
  schema:Tdb_relation.Schema.t ->
  organization:Tdb_storage.Relation_file.organization ->
  clustered:bool ->
  Tdb_relation.Tuple.t list ->
  t
(** Bulk-loads the given current versions into the primary store.  Raises
    [Invalid_argument] unless the schema is temporal-interval and the
    organization is keyed (hash or ISAM).  [segment_pages] sets the
    history store's time-segment page budget (see {!History_store}).

    [journal] routes both levels' page writes through a write-ahead
    journal — the primary store under [name], history pages under
    [name ^ ".history"] — and makes each {!append}, {!replace} and
    {!delete} its own journal statement (or part of the caller's, when
    one is already open).  The bulk load itself is not journalled. *)

val schema : t -> Tdb_relation.Schema.t
val primary : t -> Tdb_storage.Relation_file.t
val history_pages : t -> int
val primary_pages : t -> int

val append : t -> now:Tdb_time.Chronon.t -> Tdb_relation.Tuple.t -> unit
(** Inserts a brand-new tuple (stamped like a temporal append). *)

val replace :
  t ->
  now:Tdb_time.Chronon.t ->
  key:Tdb_relation.Value.t ->
  (Tdb_relation.Tuple.t -> Tdb_relation.Tuple.t) ->
  int
(** The temporal [replace] of section 4, restructured for the two-level
    store: the superseded version and the "validity ended" version go to
    the history store; the new current version overwrites the old one in
    place.  Returns the number of tuples replaced. *)

val delete : t -> now:Tdb_time.Chronon.t -> key:Tdb_relation.Value.t -> int
(** Temporal delete: both closing versions go to history; the tuple leaves
    the primary store. *)

val current_lookup :
  t -> Tdb_relation.Value.t -> (Tdb_relation.Tuple.t -> unit) -> unit
(** A static query by key: touches the primary store only (Q05's shape). *)

val current_scan : t -> (Tdb_relation.Tuple.t -> unit) -> unit
(** A static scan: the primary store only (Q07's shape). *)

val version_scan :
  t -> Tdb_relation.Value.t -> (Tdb_relation.Tuple.t -> unit) -> unit
(** All versions of a tuple as currently known, newest first: the primary
    version, then its history chain (Q01's shape). *)

val scan_all : t -> (Tdb_relation.Tuple.t -> unit) -> unit
(** Every version in both stores (rollback and temporal-join queries). *)

type boundary
(** A snapshot bound: a transaction-time stamp plus the history store's
    append-only extent ({!History_store.boundary}) at capture time — the
    session layer's epoch fence, specialized to the two levels. *)

val boundary : t -> at:Tdb_time.Chronon.t -> boundary
(** Capture a bound pinning stamp [at] (a published commit's stamp, when
    used for snapshot isolation).  O(history pages), no page I/O. *)

val boundary_stamp : boundary -> Tdb_time.Chronon.t

val snapshot_scan : t -> boundary -> (Tdb_relation.Tuple.t -> unit) -> unit
(** Every version visible at the bound: {!as_of_scan} at the boundary
    stamp, with history records filtered to the boundary's extent by a
    bounds check.  A statement later than the bound is never
    half-observed — its history pushes are out of bounds (even when they
    land in the free tail of a pre-boundary page) and its primary
    appends carry a later transaction-start, refuted by value.  Like
    {!as_of_scan} this presents a fence-pruned superset of the
    qualifying versions; callers apply the exact overlap test.  In-place
    primary churn (replace/delete) must still serialize against the
    reader, as at the session layer. *)

val scan_cursor : ?window:Tdb_storage.Time_fence.window -> t -> Tdb_storage.Cursor.t
(** Batched scan of both levels (primary, then history); {!scan_all} is
    this cursor, drained.  Decode records with {!decode_record}. *)

val as_of_cursor : t -> at:Tdb_time.Chronon.t -> Tdb_storage.Cursor.t
(** Batched rollback access; {!as_of_scan} is this cursor, drained. *)

val partition_scan :
  ?window:Tdb_storage.Time_fence.window ->
  t ->
  parts:int ->
  (Tdb_storage.Cursor.t * Tdb_storage.Io_stats.t) list
(** Page-disjoint partitions spanning both levels (primary partitions
    first, then history segments); concatenated in list order they yield
    {!scan_cursor}'s rows exactly.  See
    {!Tdb_storage.Relation_file.partition_scan}. *)

val decode_record : t -> bytes -> Tdb_relation.Tuple.t
(** Decodes a record from either level's cursor (history records carry a
    trailing back-pointer the decoder never reads). *)

module Access : Tdb_storage.Cursor.ACCESS_METHOD with type file = t
(** The two-level store as an access method: keyed probes use the
    primary organization, then filter a history scan on the key. *)

val as_of_scan :
  t -> at:Tdb_time.Chronon.t -> (Tdb_relation.Tuple.t -> unit) -> unit
(** Rollback access: every version whose transaction period can overlap
    [at] — a fence-pruned superset of the qualifying versions (callers
    apply the exact overlap test, as with {!scan_all}).  The primary
    store skip-scans on page fences; the history store binary-searches
    its time segments (see {!History_store.as_of_iter}).  With pruning
    off this reads exactly what {!scan_all} reads. *)

val fetch_current : t -> Tdb_storage.Tid.t -> Tdb_relation.Tuple.t
(** Read one current version by address (for secondary indexes). *)

val fetch_history : t -> Tdb_storage.Tid.t -> Tdb_relation.Tuple.t

val current_tids : t -> (Tdb_storage.Tid.t * Tdb_relation.Tuple.t) list
(** Addresses of all current versions (bulk index builds).  Costs a scan. *)

val history_tids : t -> (Tdb_storage.Tid.t * Tdb_relation.Tuple.t) list

val attach_index :
  t ->
  name:string ->
  attr:int ->
  structure:Secondary_index.structure ->
  unit
(** Builds a 2-level secondary index on user attribute [attr] (a current
    index plus a history index, as in the paper's Figure 10) from the
    store's present contents, and maintains it through every subsequent
    {!append}, {!replace} and {!delete}. *)

val indexed_lookup :
  t ->
  name:string ->
  Tdb_relation.Value.t ->
  (Tdb_relation.Tuple.t -> unit) ->
  unit
(** A current-state query through the named index: reads the (small)
    current level and fetches the listed primary-store tuples — Figure 10's
    2-level-index path.  Raises [Not_found] for an unknown index name. *)

val index_stats : t -> name:string -> current:bool -> int * int
(** (entries, pages) of the current or history level of the named index. *)

val io : t -> Tdb_storage.Io_stats.snapshot
(** Combined primary + history I/O counters (indexes count their own I/O;
    see {!Secondary_index.io}). *)

val reset_io : t -> unit
(** Reset counters and chill both buffer pools. *)
