(** Secondary indexes on non-key attributes (paper, section 6).

    An index entry is 8 bytes: the 4-byte encoded key and a 4-byte tuple
    id, so a page holds 101 entries, exactly the paper's count.  Two
    structures are supported for the index file itself:

    - {e heap}: entries in arrival order; a lookup scans the whole index;
    - {e hash}: entries hashed on the key; a lookup reads one bucket chain.

    A {e 1-level} index covers every version of a relation; a {e 2-level}
    scheme keeps one index over current versions and another over history
    versions, so "a query retrieving records through non-key attributes"
    that only concerns the present reads the small current index
    (reproducing Figure 10's 324 / 30 / 12 / 2 page progression). *)

type structure = Heap_index | Hash_index

type t

val create :
  structure:structure ->
  key_type:Tdb_relation.Attr_type.t ->
  unit ->
  t
(** An empty index with its own disk, one-frame buffer pool and counters. *)

val build :
  structure:structure ->
  key_type:Tdb_relation.Attr_type.t ->
  (Tdb_relation.Value.t * Tdb_storage.Tid.t) list ->
  t
(** Bulk build.  Hash indexes size their primary area from the entry
    count. *)

val insert : t -> Tdb_relation.Value.t -> Tdb_storage.Tid.t -> unit

val remove : t -> Tdb_relation.Value.t -> Tdb_storage.Tid.t -> bool
(** Removes one matching entry; [false] if absent.  (Used when a current
    version moves to the history store and its entry migrates between the
    levels of a 2-level index.) *)

val lookup : t -> Tdb_relation.Value.t -> Tdb_storage.Tid.t list
(** Tuple ids of all entries with the key, in storage order. *)

val entry_count : t -> int
val npages : t -> int
val structure : t -> structure
val io : t -> Tdb_storage.Io_stats.snapshot
val reset_io : t -> unit
