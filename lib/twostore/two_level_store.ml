module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Db_type = Tdb_relation.Db_type
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Disk = Tdb_storage.Disk
module Tid = Tdb_storage.Tid
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
module Cursor = Tdb_storage.Cursor
module Journal = Tdb_storage.Journal

type attached_index = {
  ix_attr : int;
  current_ix : Secondary_index.t;
  history_ix : Secondary_index.t;
}

type t = {
  schema : Schema.t;
  primary : Relation_file.t;
  history : History_store.t;
  history_stats : Io_stats.t;
  history_pool : Buffer_pool.t;
  heads : (Tid.t, Tid.t) Hashtbl.t;
      (* current version's address -> newest history version.  The paper's
         estimates, like the prototype they extend, do not charge the
         primary store for pointer storage; keeping heads out of line
         follows that accounting. *)
  indexes : (string, attached_index) Hashtbl.t;
  journal : Journal.t option;
      (* when attached, every mutating entry point below runs as one
         journal statement (unless the caller already opened one) *)
  key_index : int;
  tstart : int;
  tstop : int;
  valid_from : int;
  valid_to : int;
}

let schema t = t.schema
let primary t = t.primary
let history_pages t = History_store.npages t.history
let primary_pages t = Relation_file.npages t.primary

let create ?(name = "primary") ?segment_pages ?journal ~schema ~organization
    ~clustered tuples =
  (match Schema.db_type schema with
  | Db_type.Temporal Db_type.Interval -> ()
  | ty ->
      invalid_arg
        (Printf.sprintf
           "Two_level_store.create: needs a temporal interval relation, got %s"
           (Db_type.to_string ty)));
  let key_index =
    match organization with
    | Relation_file.Hash { key_attr; _ } | Relation_file.Isam { key_attr; _ } ->
        key_attr
    | Relation_file.Heap ->
        invalid_arg "Two_level_store.create: the primary store must be keyed"
  in
  let primary = Relation_file.create ~name ~schema () in
  List.iter (fun tu -> ignore (Relation_file.insert primary tu)) tuples;
  Relation_file.modify primary organization;
  let history_stats = Io_stats.create () in
  let history_pool = Buffer_pool.create (Disk.create_mem ()) history_stats in
  let history =
    History_store.create
      ?stamp:(Relation_file.stamp_extractor schema)
      ?segment_pages history_pool
      ~tuple_size:(Schema.tuple_size schema)
      ~clustered
  in
  (* Route both levels through the caller's journal: the primary store
     under its own name, the history pages under a derived tag.  The
     bulk load above happens outside any statement, so it is not
     journalled — it is the store's initial state, not an update. *)
  Option.iter
    (fun j ->
      Relation_file.set_journal primary j;
      Buffer_pool.attach_journal history_pool j ~file:(name ^ ".history"))
    journal;
  {
    schema;
    primary;
    history;
    history_stats;
    history_pool;
    heads = Hashtbl.create 1024;
    indexes = Hashtbl.create 4;
    journal;
    key_index;
    tstart = Option.get (Schema.transaction_start_index schema);
    tstop = Option.get (Schema.transaction_stop_index schema);
    valid_from = Option.get (Schema.valid_from_index schema);
    valid_to = Option.get (Schema.valid_to_index schema);
  }

(* --- secondary-index maintenance hooks --- *)

let index_current_insert t tuple tid =
  Hashtbl.iter
    (fun _ ix -> Secondary_index.insert ix.current_ix tuple.(ix.ix_attr) tid)
    t.indexes

let index_current_remove t tuple tid =
  Hashtbl.iter
    (fun _ ix ->
      ignore (Secondary_index.remove ix.current_ix tuple.(ix.ix_attr) tid))
    t.indexes

let index_history_insert t tuple htid =
  Hashtbl.iter
    (fun _ ix -> Secondary_index.insert ix.history_ix tuple.(ix.ix_attr) htid)
    t.indexes

(* One mutating entry point = one journal statement, unless the caller
   (the engine, say) already opened one — then we ride along in it. *)
let journaled t f =
  match t.journal with
  | Some j when not (Journal.in_statement j) ->
      Journal.begin_statement j;
      let r = f () in
      Journal.commit_statement j;
      r
  | _ -> f ()

let append t ~now tuple =
  journaled t @@ fun () ->
  let tuple = Array.copy tuple in
  tuple.(t.tstart) <- Value.Time now;
  tuple.(t.tstop) <- Value.Time Chronon.forever;
  let tid = Relation_file.insert t.primary tuple in
  index_current_insert t tuple tid

let m_history_appends =
  Tdb_obs.Metric.counter "tdb_twostore_history_appends_total"

let m_migrations = Tdb_obs.Metric.counter "tdb_twostore_migrations_total"

let push_history t ~now ~cluster ~tuple ~prev =
  Tdb_obs.Metric.incr m_history_appends;
  let htid =
    History_store.push t.history ~now ~cluster
      ~tuple:(Tuple.encode t.schema tuple)
      ~prev
  in
  index_history_insert t tuple htid;
  htid

(* Move the closing versions of [old_tuple] (at [tid]) into the history
   store: the superseded version (transaction time closed at [now]) and the
   "validity ended at now" version the temporal delete semantics insert. *)
let retire t ~now ~tid ~old_tuple =
  Tdb_obs.Metric.incr m_migrations;
  let cluster = old_tuple.(t.key_index) in
  let prev = Hashtbl.find_opt t.heads tid in
  let superseded = Tuple.set_time old_tuple t.tstop now in
  let head1 = push_history t ~now ~cluster ~tuple:superseded ~prev in
  let terminated = Array.copy old_tuple in
  terminated.(t.valid_to) <- Value.Time now;
  terminated.(t.tstart) <- Value.Time now;
  terminated.(t.tstop) <- Value.Time Chronon.forever;
  push_history t ~now ~cluster ~tuple:terminated ~prev:(Some head1)

let replace t ~now ~key update =
  journaled t @@ fun () ->
  let victims = ref [] in
  Relation_file.lookup t.primary key (fun tid tu -> victims := (tid, tu) :: !victims);
  List.iter
    (fun (tid, old_tuple) ->
      let head = retire t ~now ~tid ~old_tuple in
      let fresh = update (Array.copy old_tuple) in
      let fresh = Array.copy fresh in
      fresh.(t.valid_from) <- Value.Time now;
      fresh.(t.valid_to) <- Value.Time Chronon.forever;
      fresh.(t.tstart) <- Value.Time now;
      fresh.(t.tstop) <- Value.Time Chronon.forever;
      Relation_file.update t.primary tid fresh;
      index_current_remove t old_tuple tid;
      index_current_insert t fresh tid;
      Hashtbl.replace t.heads tid head)
    !victims;
  List.length !victims

let delete t ~now ~key =
  journaled t @@ fun () ->
  let victims = ref [] in
  Relation_file.lookup t.primary key (fun tid tu -> victims := (tid, tu) :: !victims);
  List.iter
    (fun (tid, old_tuple) ->
      ignore (retire t ~now ~tid ~old_tuple);
      Relation_file.delete t.primary tid;
      index_current_remove t old_tuple tid;
      Hashtbl.remove t.heads tid)
    !victims;
  List.length !victims

let current_lookup t key f =
  Relation_file.lookup t.primary key (fun _ tu -> f tu)

let current_scan t f = Relation_file.scan t.primary (fun _ tu -> f tu)

let version_scan t key f =
  let heads = ref [] in
  Relation_file.lookup t.primary key (fun tid tu ->
      f tu;
      heads := Hashtbl.find_opt t.heads tid :: !heads);
  List.iter
    (fun head ->
      History_store.walk t.history ~head (fun _ tuple_bytes ->
          f (Tuple.decode t.schema tuple_bytes 0)))
    (List.rev !heads)

(* --- batched cursors over both levels ---

   Primary and history records alike decode with [Tuple.decode schema _ 0]
   (history records carry a trailing back-pointer past the tuple bytes,
   which the decoder never reads), so one cursor can span the seam. *)

let decode_record t record = Tuple.decode t.schema record 0

let scan_cursor ?window t =
  Cursor.concat
    [
      Relation_file.cursor ?window t.primary Relation_file.Full_scan;
      History_store.scan_cursor ?window t.history;
    ]

(* Partitioned scan of both levels: the primary store's page-disjoint
   partitions followed by the history store's segment-aligned ones.  In
   list order this is exactly [scan_cursor]'s row order. *)
let partition_scan ?window t ~parts =
  Relation_file.partition_scan ?window t.primary ~parts
  @ History_store.partition_scan ?window t.history ~parts

let as_of_cursor t ~at =
  let window =
    {
      Tdb_storage.Time_fence.transaction = Some (Tdb_time.Period.at at);
      valid = None;
    }
  in
  Cursor.concat
    [
      Relation_file.cursor ~window t.primary Relation_file.Full_scan;
      History_store.as_of_cursor t.history ~at;
    ]

let scan_all t f = Cursor.iter (scan_cursor t) (fun _ r -> f (decode_record t r))

(* --- epoch-fenced snapshot reads ---

   The session layer's visibility rule, specialized to the two levels:

   - the history store is append-only, so "what existed at the snapshot"
     is a {!History_store.boundary} bounds check per record — a
     concurrent statement's pushes (which may land in the free tail of a
     pre-boundary page under the clustered policy) are simply out of
     bounds, no lock needed;
   - the primary store answers through the transaction-time window at
     the boundary stamp: versions written by later statements carry a
     later transaction-start and are refuted by value.

   A statement later than the boundary is therefore never half-observed:
   its history pushes are out of bounds and its primary appends are
   refuted.  In-place primary churn (replace/delete overwriting the very
   slot a reader is about to visit) is the one motion a bounds check
   cannot fence — those statements serialize against snapshot readers at
   the session layer, the same caveat class as DDL in the engine. *)

type boundary = { b_stamp : Chronon.t; b_history : History_store.boundary }

let boundary t ~at = { b_stamp = at; b_history = History_store.boundary t.history }
let boundary_stamp b = b.b_stamp

let snapshot_scan t b f =
  let window =
    {
      Tdb_storage.Time_fence.transaction = Some (Period.at b.b_stamp);
      valid = None;
    }
  in
  Cursor.iter
    (Relation_file.cursor ~window t.primary Relation_file.Full_scan)
    (fun _ r -> f (decode_record t r));
  Cursor.iter
    (History_store.as_of_cursor t.history ~at:b.b_stamp)
    (fun tid r ->
      if History_store.within b.b_history tid then f (decode_record t r))

(* Rollback access: both stores restricted to versions whose transaction
   period can overlap [at].  Presents a superset of the qualifying
   versions (callers filter exactly, as with [scan_all]); pruning only
   removes pages whose fences prove no version on them qualifies. *)
let as_of_scan t ~at f =
  Cursor.iter (as_of_cursor t ~at) (fun _ r -> f (decode_record t r))

(* Access-path conformance: the two-level store answers the same three
   questions as the flat access methods, spanning both levels.  Keyed
   probes use the primary store's organization, then filter a history
   scan on the key read straight from the record bytes (history versions
   of one tuple keep its key). *)
module Access = struct
  type file = t

  let scan_cursor = scan_cursor

  let key_of_record t =
    let ty = (Schema.attr t.schema t.key_index).Schema.ty in
    let off = Relation_file.attr_offset t.schema t.key_index in
    fun record -> Value.decode ty record off

  let lookup_cursor ?window t key =
    let key_of = key_of_record t in
    Cursor.concat
      [
        Relation_file.cursor ?window t.primary (Relation_file.Key_lookup key);
        Cursor.filtered
          (History_store.scan_cursor ?window t.history)
          ~keep:(fun record -> Value.equal (key_of record) key);
      ]

  let range_cursor ?window t ~lo ~hi =
    let key_of = key_of_record t in
    let in_range k =
      (match lo with Some l -> Value.compare l k <= 0 | None -> true)
      && match hi with Some h -> Value.compare k h <= 0 | None -> true
    in
    Cursor.concat
      [
        Relation_file.cursor ?window t.primary (Relation_file.Key_range { lo; hi });
        Cursor.filtered
          (History_store.scan_cursor ?window t.history)
          ~keep:(fun record -> in_range (key_of record));
      ]
end

let fetch_current t tid = Relation_file.read t.primary tid

let fetch_history t tid =
  let tuple_bytes, _ = History_store.read t.history tid in
  Tuple.decode t.schema tuple_bytes 0

let current_tids t =
  let acc = ref [] in
  Relation_file.scan t.primary (fun tid tu -> acc := (tid, tu) :: !acc);
  List.rev !acc

let history_tids t =
  let acc = ref [] in
  History_store.iter t.history (fun tid tuple_bytes ->
      acc := (tid, Tuple.decode t.schema tuple_bytes 0) :: !acc);
  List.rev !acc

let attach_index t ~name ~attr ~structure =
  if attr < 0 || attr >= Schema.user_arity t.schema then
    invalid_arg "Two_level_store.attach_index: attribute out of range";
  let key_type = (Schema.attr t.schema attr).Schema.ty in
  let entries_of tids =
    List.map (fun (tid, tu) -> (tu.(attr), tid)) tids
  in
  let ix =
    {
      ix_attr = attr;
      current_ix =
        Secondary_index.build ~structure ~key_type (entries_of (current_tids t));
      history_ix =
        Secondary_index.build ~structure ~key_type (entries_of (history_tids t));
    }
  in
  Hashtbl.replace t.indexes name ix

let find_index t name =
  match Hashtbl.find_opt t.indexes name with
  | Some ix -> ix
  | None -> raise Not_found

let indexed_lookup t ~name key f =
  let ix = find_index t name in
  List.iter
    (fun tid -> f (fetch_current t tid))
    (Secondary_index.lookup ix.current_ix key)

let index_stats t ~name ~current =
  let ix = find_index t name in
  let which = if current then ix.current_ix else ix.history_ix in
  (Secondary_index.entry_count which, Secondary_index.npages which)

let io t =
  Io_stats.add
    (Io_stats.snapshot (Relation_file.stats t.primary))
    (Io_stats.snapshot t.history_stats)

let reset_io t =
  Buffer_pool.invalidate (Relation_file.pool t.primary);
  Io_stats.reset (Relation_file.stats t.primary);
  Buffer_pool.invalidate t.history_pool;
  Io_stats.reset t.history_stats
