(** The history store of the two-level scheme (paper, section 6).

    Holds superseded tuple versions linked into per-tuple chains through
    back-pointers (each record carries the address of the next older
    version).  Two placement policies:

    - {e simple}: records are appended wherever space is free, so a tuple's
      versions scatter — following a chain of [k] versions costs about [k]
      page reads;
    - {e clustered}: each tuple's versions are packed into pages owned by
      that tuple ("clustering history versions of the same tuple into a
      minimum number of pages"), so the chain walk costs
      [ceil(k / capacity)] reads.

    Records are a stored tuple plus a 4-byte back-pointer, so a page holds
    [floor(1012 / (tuple_size + 6))] versions — 7 temporal tuples, matching
    the paper's "28 history versions into 4 pages".

    Pages are additionally grouped into {e time-ordered segments}: fresh
    pages are only ever allocated to the newest segment, so segment
    creation times are non-decreasing and {!as_of_iter} can binary-search
    to the covering boundary and fence-skip later segments wholesale.
    Placement tails survive segment turnover — clustering keeps priority —
    so a push landing on an older segment's tail page widens that
    segment's push range and fence instead. *)

type t

val create :
  ?stamp:(bytes -> Tdb_storage.Time_fence.stamp) ->
  ?segment_pages:int ->
  Tdb_storage.Buffer_pool.t ->
  tuple_size:int ->
  clustered:bool ->
  t
(** Over an empty disk.  [stamp] (usually
    [Relation_file.stamp_extractor schema]) enables page and segment time
    fences; without it {!as_of_iter} reads every page.  [segment_pages]
    (default 16) is the segment page budget. *)

val clustered : t -> bool
val npages : t -> int

val segment_count : t -> int
val segment_ranges : t -> (int * int) list
(** Oldest first, as [(first_page, last_page)] inclusive page ranges. *)

val push :
  t ->
  now:Tdb_time.Chronon.t ->
  cluster:Tdb_relation.Value.t ->
  tuple:bytes ->
  prev:Tdb_storage.Tid.t option ->
  Tdb_storage.Tid.t
(** Stores a version whose next-older version is [prev]; returns its
    address (the new chain head).  [cluster] identifies the tuple for the
    clustered policy (ignored by the simple one); [now] is the push time
    recorded against the receiving segment. *)

val read : t -> Tdb_storage.Tid.t -> bytes * Tdb_storage.Tid.t option
(** The stored tuple and its back-pointer. *)

type boundary
(** A point-in-time extent of the store: per-page record counts at the
    instant {!boundary} was called.  The store is append-only and never
    deletes, so a record is {!within} a boundary iff it had been pushed
    when the boundary was captured — even when a later clustered push
    lands in the free tail of a page that predates the boundary.  This
    is the epoch fence of the session layer: a snapshot reader captures
    the boundary at a published commit and filters scans with {!within},
    so a concurrent statement's pushes are invisible by a bounds check,
    with no lock held. *)

val boundary : t -> boundary
(** Capture the store's current extent.  O(pages), no page I/O. *)

val within : boundary -> Tdb_storage.Tid.t -> bool
(** Whether the record at this address existed when the boundary was
    captured. *)

val walk :
  t ->
  head:Tdb_storage.Tid.t option ->
  (Tdb_storage.Tid.t -> bytes -> unit) ->
  unit
(** Visits versions newest-first along the chain. *)

val iter : t -> (Tdb_storage.Tid.t -> bytes -> unit) -> unit
(** Full sequential scan of the store. *)

val scan_cursor :
  ?window:Tdb_storage.Time_fence.window -> t -> Tdb_storage.Cursor.t
(** Batched sequential scan; {!iter} is this cursor (unwindowed),
    drained.  Records carry the trailing back-pointer — decode the tuple
    prefix with [Tuple.decode schema record 0].  [?window] fence-skips
    pages when the store has stamps. *)

val partition_scan :
  ?window:Tdb_storage.Time_fence.window ->
  t ->
  parts:int ->
  (Tdb_storage.Cursor.t * Tdb_storage.Io_stats.t) list
(** Splits the sequential scan into at most [parts] partitions, each a
    contiguous run of whole time segments (oldest first) read through a
    private 1-frame pool with private stats.  Segments are time shards:
    under a bounded [?window] (pruning on, store stamped) a
    fence-refuted segment is dropped before assignment, charged exactly
    the per-page checks and skips the sequential scan would have
    charged.  No page appears in two partitions; concatenating the
    partitions in list order yields {!scan_cursor}'s rows exactly, with
    identical read and prune accounting. *)

val scan_partitions :
  ?window:Tdb_storage.Time_fence.window -> t -> parts:int -> int
(** How many partitions {!partition_scan} would return (bounded by the
    count of segments surviving shard pruning under [?window]), without
    building them and without charging anything. *)

val scan_preview :
  ?window:Tdb_storage.Time_fence.window -> t -> int * int
(** Charge-free sizing for parallelism admission:
    [(live_pages, pruned_pages)] — pages in segments surviving shard
    pruning under [?window], and pages refuted outright. *)

val as_of_cursor : t -> at:Tdb_time.Chronon.t -> Tdb_storage.Cursor.t
(** Batched rollback access; {!as_of_iter} is this cursor, drained, with
    the same segment binary search, wholesale segment skips, and per-page
    fence checks. *)

val as_of_iter :
  t -> at:Tdb_time.Chronon.t -> (Tdb_storage.Tid.t -> bytes -> unit) -> unit
(** Rollback access: visits at least every version whose transaction
    period overlaps [at], in store order.  Binary-searches the segments'
    push-time ranges to the covering boundary; segments pushed after [at]
    are skipped wholesale when their fence proves no version started by
    [at], and surviving segments still fence-check each page.  Presented
    versions are a superset of the qualifying ones — callers apply the
    exact overlap test; with pruning off this is a full scan. *)
