(** The history store of the two-level scheme (paper, section 6).

    Holds superseded tuple versions linked into per-tuple chains through
    back-pointers (each record carries the address of the next older
    version).  Two placement policies:

    - {e simple}: records are appended wherever space is free, so a tuple's
      versions scatter — following a chain of [k] versions costs about [k]
      page reads;
    - {e clustered}: each tuple's versions are packed into pages owned by
      that tuple ("clustering history versions of the same tuple into a
      minimum number of pages"), so the chain walk costs
      [ceil(k / capacity)] reads.

    Records are a stored tuple plus a 4-byte back-pointer, so a page holds
    [floor(1012 / (tuple_size + 6))] versions — 7 temporal tuples, matching
    the paper's "28 history versions into 4 pages". *)

type t

val create :
  Tdb_storage.Buffer_pool.t -> tuple_size:int -> clustered:bool -> t
(** Over an empty disk. *)

val clustered : t -> bool
val npages : t -> int

val push :
  t ->
  cluster:Tdb_relation.Value.t ->
  tuple:bytes ->
  prev:Tdb_storage.Tid.t option ->
  Tdb_storage.Tid.t
(** Stores a version whose next-older version is [prev]; returns its
    address (the new chain head).  [cluster] identifies the tuple for the
    clustered policy (ignored by the simple one). *)

val read : t -> Tdb_storage.Tid.t -> bytes * Tdb_storage.Tid.t option
(** The stored tuple and its back-pointer. *)

val walk :
  t ->
  head:Tdb_storage.Tid.t option ->
  (Tdb_storage.Tid.t -> bytes -> unit) ->
  unit
(** Visits versions newest-first along the chain. *)

val iter : t -> (Tdb_storage.Tid.t -> bytes -> unit) -> unit
(** Full sequential scan of the store. *)
