(* A session: a handle onto a shared {!Db_instance} with its own logical
   clock and log attribution.

   The concurrency contract:

   - Read-only statements (displayed retrieves) resolve the published
     commit record once, at statement start, and then run with {e no
     lock held}: any number of them proceed concurrently with each
     other and ahead of the writer.  Their sources are private reader
     views (own 1-frame pool, own I/O counters) over the shared disks,
     and the calling domain is pinned sequential so a concurrent
     statement never fans out into nested domain spawns.

   - Everything else serializes through the instance's writer mutex
     (on top of the engine's own statement lock, which additionally
     serializes against direct [Engine] users), then publishes a fresh
     commit record so subsequent snapshots see it.

   The session's logical clock is the transaction-time stamp of the last
   snapshot it resolved (readers) or the last commit it published
   (writers); it is monotone because epochs are. *)

module Database = Tdb_core.Database
module Engine = Tdb_core.Engine
module Relation_file = Tdb_storage.Relation_file
module Chronon = Tdb_time.Chronon
module Schema = Tdb_relation.Schema
module Semck = Tdb_tquel.Semck
module Parser = Tdb_tquel.Parser
module Ast = Tdb_tquel.Ast
module Executor = Tdb_query.Executor
module Metric = Tdb_obs.Metric
module Statement_log = Tdb_obs.Statement_log
module Pool = Tdb_par.Pool

let ( let* ) = Result.bind

type t = {
  inst : Db_instance.t;
  name : string;
  mutable clock : Chronon.t;
  mutable last_epoch : int;
      (* the epoch the session's last statement pinned (readers) or
         published (writers) *)
  mutable is_open : bool;
}

let session_seq = Atomic.make 0

let open_ ?name inst =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "s%d" (Atomic.fetch_and_add session_seq 1)
  in
  let n = 1 + Atomic.fetch_and_add (Db_instance.open_sessions inst) 1 in
  Metric.set_gauge Db_instance.open_sessions_gauge (float_of_int n);
  let c = Db_instance.commit inst in
  {
    inst;
    name;
    clock = c.Db_instance.stamp;
    last_epoch = c.Db_instance.epoch;
    is_open = true;
  }

let close t =
  if t.is_open then begin
    t.is_open <- false;
    let n = Atomic.fetch_and_add (Db_instance.open_sessions t.inst) (-1) - 1 in
    Metric.set_gauge Db_instance.open_sessions_gauge (float_of_int n)
  end

let name t = t.name
let clock t = t.clock
let instance t = t.inst

(* The semantic-check environment as of a commit record: closures over
   its immutable assoc lists, never the live catalog. *)
let semck_env_of (c : Db_instance.commit) =
  {
    Semck.find_relation =
      (fun rel_name ->
        Option.map
          (fun rel ->
            {
              Semck.schema = Relation_file.schema rel;
              db_type = Schema.db_type (Relation_file.schema rel);
            })
          (List.assoc_opt (Schema.norm_name rel_name) c.relations));
    find_range = (fun var -> List.assoc_opt (Schema.norm_name var) c.ranges);
  }

(* Private reader views for every ranged source of the commit. *)
let sources_of (c : Db_instance.commit) =
  List.filter_map
    (fun (var, rel_name) ->
      Option.map
        (fun rel -> { Executor.var; rel = Relation_file.reader_view rel })
        (List.assoc_opt rel_name c.relations))
    c.ranges

let log_id_for inst =
  if Statement_log.enabled () then Some (Db_instance.next_log_id inst)
  else None

(* Resolve the snapshot for a read-only statement and run [f] against it
   with the calling domain pinned sequential. *)
let with_snapshot t f =
  let c = Db_instance.commit t.inst in
  t.clock <- c.Db_instance.stamp;
  t.last_epoch <- c.Db_instance.epoch;
  if Metric.enabled () then
    Metric.incr Db_instance.snapshot_statements_counter;
  let result =
    Pool.pin_sequential true;
    Fun.protect ~finally:(fun () -> Pool.pin_sequential false) @@ fun () ->
    f c
  in
  if Metric.enabled () then
    Metric.set_gauge Db_instance.snapshot_lag_gauge
      (float_of_int (Db_instance.epoch t.inst - c.Db_instance.epoch));
  result

(* Take the writer lock (timing the wait), run [f], publish the next
   commit record. *)
let with_writer t f =
  let metrics = Metric.enabled () in
  let w0 = if metrics then Metric.monotonic_s () else 0.0 in
  Mutex.lock (Db_instance.writer t.inst);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock (Db_instance.writer t.inst))
    (fun () ->
      if metrics then begin
        Metric.observe Db_instance.writer_wait_histogram
          (Metric.monotonic_s () -. w0);
        Metric.incr Db_instance.serialized_statements_counter
      end;
      let epoch = Db_instance.epoch t.inst + 1 in
      let result = f ~epoch in
      Db_instance.publish t.inst;
      t.clock <- (Db_instance.commit t.inst).Db_instance.stamp;
      t.last_epoch <- epoch;
      result)

let execute_statement t stmt =
  if Engine.read_only stmt then
    with_snapshot t (fun c ->
        Engine.execute_snapshot ~now:c.Db_instance.stamp ~sources:(sources_of c)
          ~semck_env:(semck_env_of c) ~epoch:c.Db_instance.epoch
          ~session:t.name
          ?log_id:(log_id_for t.inst)
          stmt)
  else
    with_writer t (fun ~epoch ->
        Engine.execute_serialized
          (Db_instance.database t.inst)
          ~session:t.name ~epoch
          ?log_id:(log_id_for t.inst)
          stmt)

let execute t src =
  let* stmts = Parser.parse_program src in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        let* o = execute_statement t s in
        go (o :: acc) rest
  in
  go [] stmts

let execute_one t src =
  let* stmt = Parser.parse_statement src in
  execute_statement t stmt

let explain t src =
  Engine.explain
    ~epoch:(Db_instance.epoch t.inst)
    (Db_instance.database t.inst)
    src

(* [explain analyze] through the session: read-only statements execute
   on the snapshot path (tracing is main-domain-only, which the CLI
   satisfies); everything else analyzes under the writer lock and
   publishes, exactly as [execute_statement] would. *)
let analyze_statement t stmt =
  if Engine.read_only stmt then
    with_snapshot t (fun c ->
        Engine.analyze_snapshot ~now:c.Db_instance.stamp
          ~sources:(sources_of c) ~semck_env:(semck_env_of c)
          ~epoch:c.Db_instance.epoch ~session:t.name
          ?log_id:(log_id_for t.inst)
          stmt)
  else
    with_writer t (fun ~epoch:_ ->
        Engine.analyze_statement (Db_instance.database t.inst) stmt)

let analyze t src =
  let* stmt = Parser.parse_statement src in
  analyze_statement t stmt

let epoch t = Db_instance.epoch t.inst
let pinned_epoch t = t.last_epoch
