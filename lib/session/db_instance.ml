(* The shared half of the engine after the session split: one database,
   one writer lock, one published commit record.

   The commit record is the heart of "MVCC for free".  Storage is
   append-only in transaction time — updates append new versions and
   stamp old ones, nothing is ever overwritten in place in a way that
   changes what a past timestamp sees — so a consistent snapshot needs
   no page versioning at all.  It is just:

   - [stamp]: the transaction-time instant the snapshot pins.  A reader
     evaluating a retrieve [as of stamp] sees exactly the statements
     committed at or before it; later appends carry later transaction
     times and are refuted by value.
   - [relations]/[ranges]: the catalog as of the commit, as immutable
     assoc lists, so readers never touch the live (mutable) catalog.

   Writers publish a fresh record with a single [Atomic.set] after
   flushing every buffer pool; readers pick it up with one [Atomic.get].
   The record itself is immutable, and OCaml's memory model makes the
   initializing stores of a freshly allocated immutable value visible to
   any domain that obtains the value through an atomic, so no further
   synchronization is needed.

   Publication happens after {e every} serialized statement, not only
   page-writing ones: catalog statements ([range of], [create],
   [destroy]) change what a reader should see even though they write no
   pages. *)

module Database = Tdb_core.Database
module Relation_file = Tdb_storage.Relation_file
module Chronon = Tdb_time.Chronon
module Metric = Tdb_obs.Metric

type commit = {
  epoch : int;
  stamp : Chronon.t;
  relations : (string * Relation_file.t) list;
  ranges : (string * string) list;
}

type t = {
  db : Database.t;
  writer : Mutex.t;
  commit : commit Atomic.t;
  log_seq : int Atomic.t;
      (* per-instance statement-log ids: gap-free and attributable even
         when several instances share one process *)
  open_sessions : int Atomic.t;
}

(* All session metrics are registered at module init: snapshot readers
   run with no lock held and must never call the registry's
   find-or-register (it walks a shared list unlocked). *)
let open_sessions_gauge = Metric.gauge "tdb_session_open_sessions"

let snapshot_statements_counter =
  Metric.counter ~labels:[ ("mode", "snapshot") ] "tdb_session_statements_total"

let serialized_statements_counter =
  Metric.counter
    ~labels:[ ("mode", "serialized") ]
    "tdb_session_statements_total"

let writer_wait_histogram = Metric.histogram "tdb_session_writer_wait_seconds"
let snapshot_lag_gauge = Metric.gauge "tdb_session_snapshot_lag"

let snapshot_of db ~epoch =
  {
    epoch;
    stamp = Database.now db;
    relations = Database.relations db;
    ranges = Database.ranges db;
  }

let of_database db =
  (* Epoch 0 pins whatever the database held at instance creation; any
     dirty frames go down first so reader views (which read the disk)
     see every page. *)
  Database.flush_pools db;
  {
    db;
    writer = Mutex.create ();
    commit = Atomic.make (snapshot_of db ~epoch:0);
    log_seq = Atomic.make 0;
    open_sessions = Atomic.make 0;
  }

let database t = t.db
let writer t = t.writer
let open_sessions t = t.open_sessions
let commit t = Atomic.get t.commit
let epoch t = (Atomic.get t.commit).epoch
let next_log_id t = Atomic.fetch_and_add t.log_seq 1

(* Caller holds [t.writer]. *)
let publish t =
  Database.flush_pools t.db;
  Atomic.set t.commit (snapshot_of t.db ~epoch:((Atomic.get t.commit).epoch + 1))

(* Publish outside a statement (takes the writer lock itself): for
   out-of-band state changes snapshots should see, e.g. the CLI's
   [\advance] moving the clock. *)
let republish t =
  Mutex.lock t.writer;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) (fun () -> publish t)
