(* Batched operator pipelines: the executor's plan shapes rendered as the
   linear operator chains they actually run.  The executor builds one of
   these for every retrieve; the CLI's [\explain] prints it; the trace
   spans carry the stage labels — so the explain output, the span tree and
   the running code name the same operators by construction. *)

type stage =
  | Scan of string  (** row source: an access-path label, or [scan(v')] *)
  | Nest of string  (** inner loop re-running the labelled access per row *)
  | Probe of string  (** keyed inner loop, [v.key<-from.attr] *)
  | Tjoin of string  (** merge temporal join, label pre-rendered *)
  | Filter of int  (** residual (multi-variable) conjuncts *)
  | Emit of bool  (** deliver rows; [true] when folding into aggregates *)
  | Coalesce  (** merge value-equivalent adjacent/overlapping result rows *)
  | Temporal_agg  (** fold aggregates per maximal constant interval *)

type t = {
  detaches : string list;
      (** access labels of the detachment prologue, in execution order *)
  stages : stage list;  (** source first, emit last *)
}

let batch_size = Tdb_storage.Cursor.target

let stage_label = function
  | Scan l -> l
  | Nest l -> Printf.sprintf "nest(%s)" l
  | Probe l -> Printf.sprintf "probe(%s)" l
  | Tjoin l -> l
  | Filter n -> Printf.sprintf "filter(%d)" n
  | Emit agg -> if agg then "emit(agg)" else "emit"
  | Coalesce -> "coalesce"
  | Temporal_agg -> "temporal-agg"

let detach_label access = Printf.sprintf "detach(%s)" access

let to_string t =
  let b = Buffer.create 128 in
  Printf.bprintf b "batch pipeline [batch=%d]" batch_size;
  List.iter (fun d -> Printf.bprintf b "\n  %s" (detach_label d)) t.detaches;
  Printf.bprintf b "\n  %s"
    (String.concat " -> " (List.map stage_label t.stages));
  Buffer.contents b
