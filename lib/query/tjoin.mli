(** Temporal-join candidate generation: sort-merge interval sweeps over
    the operand periods of a classified [when] conjunct
    (see {!Conjuncts.classify_allen}).

    The sweeps emit a {e superset} of the matching pairs in
    O(n log n + candidates) — never missing a pair — and the executor's
    residual filter re-applies the exact predicate to each candidate, so
    results stay bit-identical to the nested-loop strategies. *)

val reduce :
  Conjuncts.allen_endpoint -> Tdb_time.Period.t -> Tdb_time.Period.t
(** The operand period a conjunct actually compares: the variable's valid
    period, or the event at its first/last chronon ([start of] /
    [end of]). *)

val join :
  cls:Conjuncts.allen_class ->
  left:(Tdb_time.Period.t * int) array ->
  right:(Tdb_time.Period.t * int) array ->
  (int * int) list
(** [join ~cls ~left ~right] pairs the tagged (already
    {!reduce}d) periods: [(l, r)] is returned iff the periods tagged [l]
    and [r] satisfy the class's period test ([Period.overlaps] for
    [`Overlap]/[`Equal] — equality implies overlap — and
    [Period.precede] for [`Precede]).  Each qualifying pair appears
    exactly once; order is unspecified. *)
