module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Relation_file = Tdb_storage.Relation_file
module Cursor = Tdb_storage.Cursor
module Trace = Tdb_obs.Trace
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
open Tdb_tquel.Ast

type counts = { matched : int; inserted : int; trace : Trace.node option }

exception Execution_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Execution_error s)) fmt

let zero_value = function
  | Attr_type.I1 | I2 | I4 -> Value.Int 0
  | F4 | F8 -> Value.Float 0.
  | C _ -> Value.Str ""
  | Time -> Value.Time (Chronon.of_seconds 0)

let period_bounds ~now ctx = function
  | Some (Valid_interval (e1, e2)) -> (
      match (Eval.tempexpr ctx e1, Eval.exclusive_end ctx e2) with
      | Some p1, Some to_ ->
          let from_ = Period.from_ p1 in
          if Chronon.compare to_ from_ < 0 then
            errf "valid clause yields an interval that ends before it starts"
          else (from_, to_)
      | _ -> errf "valid clause is undefined for this tuple")
  | Some (Valid_event _) -> errf "valid at used on an interval relation"
  | None -> (now, Chronon.forever)

let event_instant ~now ctx = function
  | Some (Valid_event e) -> (
      match Eval.tempexpr ctx e with
      | Some p -> Period.from_ p
      | None -> errf "valid clause is undefined for this tuple")
  | Some (Valid_interval _) -> errf "valid from/to used on an event relation"
  | None -> now

(* Fill the implicit attributes of a fresh version. *)
let stamp_new ~now ~valid ctx schema user_values =
  let n = Schema.arity schema in
  let tuple = Array.make n (Value.Int 0) in
  Array.blit user_values 0 tuple 0 (Array.length user_values);
  let set idx v = match idx with Some i -> tuple.(i) <- Value.Time v | None -> () in
  (match Db_type.kind (Schema.db_type schema) with
  | Some Db_type.Interval ->
      let from_, to_ = period_bounds ~now ctx valid in
      set (Schema.valid_from_index schema) from_;
      set (Schema.valid_to_index schema) to_
  | Some Db_type.Event ->
      set (Schema.valid_at_index schema) (event_instant ~now ctx valid)
  | None ->
      if valid <> None then
        errf "valid clause on a relation without valid time");
  set (Schema.transaction_start_index schema) now;
  set (Schema.transaction_stop_index schema) Chronon.forever;
  tuple

(* --- qualification: which stored versions does a modification touch? --- *)

(* A modification targets versions that are current in both senses: not
   superseded in transaction time, and still valid (a temporal delete
   inserts a "validity ended" version whose valid-to is in the past; that
   record documents history and must never be re-modified). *)
let modifiable ~now schema tuple =
  (match Schema.transaction_stop_index schema with
  | Some i -> Chronon.is_forever (Tuple.get_time tuple i)
  | None -> true)
  &&
  match Schema.valid_to_index schema with
  | Some i -> Chronon.compare now (Tuple.get_time tuple i) < 0
  | None -> true

let qualifies ~now ~(source : Executor.source) ~where ~when_ tuple =
  let schema = Relation_file.schema source.rel in
  modifiable ~now schema tuple
  &&
  let ctx =
    {
      Eval.bindings = [ { Eval.var = source.var; schema; tuple } ];
      now;
    }
  in
  (match where with Some p -> Eval.pred ctx p | None -> true)
  && match when_ with Some p -> Eval.temppred ctx p | None -> true

let collect_qualifying ~now ~(source : Executor.source) ~where ~when_ =
  (* Use keyed access when the where clause pins the relation's key; the
     qualification scan then drains the access path's cursor in record
     batches, exactly like a retrieve source. *)
  let conjuncts = Conjuncts.split where when_ in
  let schema = Relation_file.schema source.rel in
  let access =
    match
      (Relation_file.organization source.rel, Relation_file.key_attr source.rel)
    with
    | (Relation_file.Hash _ | Relation_file.Isam _), Some i -> (
        let attr = Schema.norm_name (Schema.attr schema i).Schema.name in
        match Conjuncts.constant_key_probe conjuncts ~var:source.var ~attr with
        | Some e ->
            let probe = Eval.expr { Eval.bindings = []; now } e in
            let probe =
              match Value.coerce (Schema.attr schema i).Schema.ty probe with
              | Ok v -> v
              | Error e -> errf "bad key value: %s" e
            in
            Relation_file.Key_lookup probe
        | None -> Relation_file.Full_scan)
    | _ -> Relation_file.Full_scan
  in
  let acc = ref [] in
  Cursor.iter (Relation_file.cursor source.rel access) (fun tid record ->
      let tuple = Relation_file.decode source.rel record in
      if qualifies ~now ~source ~where ~when_ tuple then
        acc := (tid, tuple) :: !acc);
  List.rev !acc

(* --- append --- *)

let constant_user_values ~now rel targets =
  let schema = Relation_file.schema rel in
  let ctx = { Eval.bindings = []; now } in
  Array.map
    (fun (a : Schema.attr) ->
      let supplied =
        List.find_opt
          (fun t ->
            match t.out_name with
            | Some n -> Schema.norm_name n = Schema.norm_name a.Schema.name
            | None -> false)
          targets
      in
      match supplied with
      | None -> zero_value a.Schema.ty
      | Some t -> (
          let v = Eval.expr ctx t.value in
          let v =
            match (a.Schema.ty, v) with
            | Attr_type.Time, Value.Str s -> (
                match Chronon.parse ~now s with
                | Ok c -> Value.Time c
                | Error e -> errf "bad time constant %S: %s" s e)
            | _ -> v
          in
          match Value.coerce a.Schema.ty v with
          | Ok v -> v
          | Error e -> errf "attribute %s: %s" a.Schema.name e))
    (Schema.user_attrs schema)

let insert_version ~now ~valid ctx rel user_values =
  let schema = Relation_file.schema rel in
  let tuple = stamp_new ~now ~valid ctx schema user_values in
  (match Tuple.validate schema tuple with
  | Ok () -> ()
  | Error e -> errf "bad tuple: %s" e);
  ignore (Relation_file.insert rel tuple)

let run_append ~now ~rel ~sources (a : append) =
  let qnode = Trace.start "append" in
  Fun.protect ~finally:(fun () -> Trace.finish qnode) @@ fun () ->
  let has_vars =
    List.exists
      (fun t ->
        let acc = ref [] in
        let rec go = function
          | Eattr (v, _) -> acc := v :: !acc
          | Eint _ | Efloat _ | Estring _ -> ()
          | Ebinop (_, x, y) -> go x; go y
          | Euminus e -> go e
          | Eagg (_, e, by) -> go e; List.iter go by
        in
        go t.value;
        !acc <> [])
      a.targets
    || a.where <> None || a.when_ <> None
  in
  if not has_vars then begin
    let user_values = constant_user_values ~now rel a.targets in
    insert_version ~now ~valid:a.valid { Eval.bindings = []; now } rel
      user_values;
    { matched = 1; inserted = 1; trace = Trace.result qnode }
  end
  else begin
    (* Query append: run the body as a retrieve, then insert each result. *)
    let r =
      {
        into = None;
        unique = false;
        coalesce = false;
        targets = a.targets;
        valid = a.valid;
        where = a.where;
        when_ = a.when_;
        as_of = None;
      }
    in
    let inserted = ref 0 in
    let schema = Relation_file.schema rel in
    (* Map result attributes onto the target relation's user attributes by
       name. *)
    let result_schema = Executor.result_schema ~sources r in
    let mapping =
      Array.map
        (fun (a : Schema.attr) ->
          Schema.index_of result_schema a.Schema.name)
        (Schema.user_attrs schema)
    in
    let outcome2 =
      Executor.run_retrieve ~now ~sources r ~on_tuple:(fun result_tuple ->
          let user_values =
            Array.mapi
              (fun i m ->
                match m with
                | Some j -> (
                    let ty = (Schema.user_attrs schema).(i).Schema.ty in
                    match Value.coerce ty result_tuple.(j) with
                    | Ok v -> v
                    | Error e -> errf "append: %s" e)
                | None -> zero_value (Schema.user_attrs schema).(i).Schema.ty)
              mapping
          in
          (* Carry the result's valid period into the new versions when both
             sides have valid time. *)
          let valid_override =
            match
              ( Tuple.valid_period result_schema result_tuple,
                Db_type.kind (Schema.db_type schema) )
            with
            | Some p, Some Db_type.Interval ->
                Some
                  (Valid_interval
                     ( Tconst (Chronon.to_string (Period.from_ p)),
                       Tconst (Chronon.to_string (Period.to_ p)) ))
            | Some p, Some Db_type.Event ->
                Some (Valid_event (Tconst (Chronon.to_string (Period.from_ p))))
            | _ -> None
          in
          insert_version ~now ~valid:valid_override { Eval.bindings = []; now }
            rel user_values;
          incr inserted)
    in
    { matched = outcome2.Executor.count; inserted = !inserted;
      trace = Trace.result qnode }
  end

(* --- delete --- *)

let set_time_at rel tid tuple idx value =
  let tuple' = Tuple.set_time tuple idx value in
  Relation_file.update rel tid tuple';
  tuple'

let run_delete ~now ~(source : Executor.source) (d : delete) =
  let qnode = Trace.start "delete" in
  Fun.protect ~finally:(fun () -> Trace.finish qnode) @@ fun () ->
  let rel = source.rel in
  let schema = Relation_file.schema rel in
  let victims =
    Trace.within
      (Printf.sprintf "qualify(%s)" source.var)
      (fun qn ->
        let vs = collect_qualifying ~now ~source ~where:d.where ~when_:d.when_ in
        Trace.add_tuples qn (List.length vs);
        vs)
  in
  let inserted = ref 0 in
  Trace.within "apply" @@ fun apply_span ->
  Trace.add_tuples apply_span (List.length victims);
  List.iter
    (fun (tid, tuple) ->
      match Schema.db_type schema with
      | Db_type.Static -> Relation_file.delete rel tid
      | Db_type.Rollback ->
          ignore
            (set_time_at rel tid tuple
               (Option.get (Schema.transaction_stop_index schema))
               now)
      | Db_type.Historical Db_type.Interval ->
          ignore
            (set_time_at rel tid tuple
               (Option.get (Schema.valid_to_index schema))
               now)
      | Db_type.Historical Db_type.Event ->
          (* An instantaneous fact cannot be "terminated"; deleting it can
             only remove the record. *)
          Relation_file.delete rel tid
      | Db_type.Temporal kind ->
          let tuple =
            set_time_at rel tid tuple
              (Option.get (Schema.transaction_stop_index schema))
              now
          in
          (* Record that validity ended now: a fresh version, transaction
             time [now, forever). *)
          let fresh = Array.copy tuple in
          (match kind with
          | Db_type.Interval ->
              fresh.(Option.get (Schema.valid_to_index schema)) <- Value.Time now
          | Db_type.Event -> ());
          fresh.(Option.get (Schema.transaction_start_index schema)) <-
            Value.Time now;
          fresh.(Option.get (Schema.transaction_stop_index schema)) <-
            Value.Time Chronon.forever;
          (match kind with
          | Db_type.Interval ->
              ignore (Relation_file.insert rel fresh);
              incr inserted
          | Db_type.Event ->
              (* A temporal event's deletion is fully described by the
                 transaction-stop stamp; no new version is needed. *)
              ()))
    victims;
  { matched = List.length victims; inserted = !inserted;
    trace = Trace.result qnode }

(* --- replace --- *)

let run_replace ~now ~(source : Executor.source) (r : replace) =
  let qnode = Trace.start "replace" in
  Fun.protect ~finally:(fun () -> Trace.finish qnode) @@ fun () ->
  let rel = source.rel in
  let schema = Relation_file.schema rel in
  let victims =
    Trace.within
      (Printf.sprintf "qualify(%s)" source.var)
      (fun qn ->
        let vs = collect_qualifying ~now ~source ~where:r.where ~when_:r.when_ in
        Trace.add_tuples qn (List.length vs);
        vs)
  in
  let inserted = ref 0 in
  let new_user_values old_tuple =
    let ctx =
      {
        Eval.bindings = [ { Eval.var = source.var; schema; tuple = old_tuple } ];
        now;
      }
    in
    ( ctx,
      Array.mapi
        (fun i (a : Schema.attr) ->
          let supplied =
            List.find_opt
              (fun t ->
                match t.out_name with
                | Some n -> Schema.norm_name n = Schema.norm_name a.Schema.name
                | None -> false)
              r.targets
          in
          match supplied with
          | None -> old_tuple.(i)
          | Some t -> (
              match Value.coerce a.Schema.ty (Eval.expr ctx t.value) with
              | Ok v -> v
              | Error e -> errf "attribute %s: %s" a.Schema.name e))
        (Schema.user_attrs schema) )
  in
  Trace.within "apply" @@ fun apply_span ->
  Trace.add_tuples apply_span (List.length victims);
  List.iter
    (fun (tid, old_tuple) ->
      let ctx, user_values = new_user_values old_tuple in
      match Schema.db_type schema with
      | Db_type.Static ->
          let updated = Array.copy old_tuple in
          Array.blit user_values 0 updated 0 (Array.length user_values);
          Relation_file.update rel tid updated
      | Db_type.Rollback ->
          ignore
            (set_time_at rel tid old_tuple
               (Option.get (Schema.transaction_stop_index schema))
               now);
          insert_version ~now ~valid:None ctx rel user_values;
          incr inserted
      | Db_type.Historical Db_type.Interval ->
          ignore
            (set_time_at rel tid old_tuple
               (Option.get (Schema.valid_to_index schema))
               now);
          insert_version ~now ~valid:r.valid ctx rel user_values;
          incr inserted
      | Db_type.Historical Db_type.Event ->
          Relation_file.delete rel tid;
          insert_version ~now ~valid:r.valid ctx rel user_values;
          incr inserted
      | Db_type.Temporal kind ->
          (* delete ... *)
          let old_tuple =
            set_time_at rel tid old_tuple
              (Option.get (Schema.transaction_stop_index schema))
              now
          in
          (match kind with
          | Db_type.Interval ->
              let terminated = Array.copy old_tuple in
              terminated.(Option.get (Schema.valid_to_index schema)) <-
                Value.Time now;
              terminated.(Option.get (Schema.transaction_start_index schema)) <-
                Value.Time now;
              terminated.(Option.get (Schema.transaction_stop_index schema)) <-
                Value.Time Chronon.forever;
              ignore (Relation_file.insert rel terminated);
              incr inserted
          | Db_type.Event -> ());
          (* ... then append the new version. *)
          insert_version ~now ~valid:r.valid ctx rel user_values;
          incr inserted)
    victims;
  { matched = List.length victims; inserted = !inserted;
    trace = Trace.result qnode }
