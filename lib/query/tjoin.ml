module Period = Tdb_time.Period
module Chronon = Tdb_time.Chronon

(* Candidate generation for temporal joins: near-linear sweeps that emit a
   superset of the matching pairs.  Exactness is the executor's residual
   filter's job — the classified [when] conjunct always mentions both
   variables, so it lands in the multi-variable residual and re-applies the
   precise predicate to every candidate.  The sweeps below only need to
   never *miss* a pair. *)

let reduce ep p =
  match ep with
  | Conjuncts.Ep_whole -> p
  | Conjuncts.Ep_start -> Period.start_of p
  | Conjuncts.Ep_end -> Period.end_of p

(* Normalized half-open bounds: an event at [t] becomes [t, succ t), an
   interval keeps its bounds.  Under this normalization
   [Period.overlaps a b  <=>  max from < min to'] — except for events at
   [forever], where [succ] saturates and the normalized range collapses to
   empty; those are split off and handled directly. *)
let norm p =
  let from_ = Period.from_ p in
  let to_ = if Period.is_event p then Chronon.succ from_ else Period.to_ p in
  (from_, to_)

let saturated (p, _) =
  Period.is_event p && Chronon.is_forever (Period.from_ p)

type item = { nfrom : Chronon.t; nto : Chronon.t; idx : int }

(* Plane sweep over both sides merged in order of normalized start: when an
   item is processed, the other side's still-active items are exactly those
   whose normalized range reaches past this start — each such pair overlaps
   and is emitted exactly once (by whichever item starts later). *)
let overlap_join left right =
  let acc = ref [] in
  let sat_l = Array.to_list left |> List.filter saturated |> List.map snd in
  let sat_r = Array.to_list right |> List.filter saturated |> List.map snd in
  (* events at forever overlap each other and nothing else *)
  List.iter
    (fun li -> List.iter (fun ri -> acc := (li, ri) :: !acc) sat_r)
    sat_l;
  let items side arr =
    Array.to_list arr
    |> List.filter (fun x -> not (saturated x))
    |> List.map (fun (p, idx) ->
           let nfrom, nto = norm p in
           (side, { nfrom; nto; idx }))
  in
  let combined =
    List.sort
      (fun (_, a) (_, b) -> Chronon.compare a.nfrom b.nfrom)
      (items `L left @ items `R right)
  in
  let active_l = ref [] and active_r = ref [] in
  List.iter
    (fun (side, x) ->
      let live y = Chronon.compare y.nto x.nfrom > 0 in
      active_l := List.filter live !active_l;
      active_r := List.filter live !active_r;
      match side with
      | `L ->
          List.iter (fun y -> acc := (x.idx, y.idx) :: !acc) !active_r;
          active_l := x :: !active_l
      | `R ->
          List.iter (fun y -> acc := (y.idx, x.idx) :: !acc) !active_l;
          active_r := x :: !active_r)
    combined;
  !acc

(* [precede] compares raw bounds ([to_ <= from_], no event adjustment), so
   the prefix join runs on the periods as given: walking the right side by
   ascending start, the eligible left items only ever grow. *)
let precede_join left right =
  let by_chronon (a, _) (b, _) = Chronon.compare a b in
  let la =
    Array.map (fun (p, i) -> (Period.to_ p, i)) left
    |> Array.to_list |> List.sort by_chronon |> Array.of_list
  in
  let ra =
    Array.map (fun (p, i) -> (Period.from_ p, i)) right
    |> Array.to_list |> List.sort by_chronon |> Array.of_list
  in
  let acc = ref [] and elig = ref [] and li = ref 0 in
  Array.iter
    (fun (rf, ri) ->
      while
        !li < Array.length la && Chronon.compare (fst la.(!li)) rf <= 0
      do
        elig := snd la.(!li) :: !elig;
        incr li
      done;
      List.iter (fun lidx -> acc := (lidx, ri) :: !acc) !elig)
    ra;
  !acc

let join ~cls ~left ~right =
  match (cls : Conjuncts.allen_class) with
  | `Overlap | `Equal ->
      (* equal implies overlaps: the sweep's candidates cover it *)
      overlap_join left right
  | `Precede -> precede_join left right
