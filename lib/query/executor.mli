(** Execution of [retrieve] statements.

    The executor mirrors the prototype's use of Ingres query decomposition:
    one-variable restriction with selection push-down, one-variable
    detachment into temporary relations, and tuple substitution (paper,
    section 5.3).  Temporary relations are heap files with their own
    one-frame buffer pools; their reads count toward the query's input cost
    and their writes are the query's output cost, matching the paper's
    accounting. *)

type source = { var : string; rel : Tdb_storage.Relation_file.t }

type io_summary = { input_reads : int; output_writes : int }

type outcome = {
  schema : Tdb_relation.Schema.t;  (** shape of the emitted tuples *)
  count : int;  (** number of tuples emitted *)
  io : io_summary;
  plan : Plan.t;
  trace : Tdb_obs.Trace.node option;
      (** per-operator span tree when tracing is enabled; its summed page
          reads equal [io.input_reads] *)
}

exception Execution_error of string

val run_retrieve :
  now:Tdb_time.Chronon.t ->
  sources:source list ->
  Tdb_tquel.Ast.retrieve ->
  on_tuple:(Tdb_relation.Tuple.t -> unit) ->
  outcome
(** [sources] must cover every tuple variable the statement uses (extras are
    ignored).  Emitted tuples conform to [outcome.schema]: the target values
    followed by the implicit time attributes implied by the valid clause (or
    by default, the overlap of the participating valid periods).  Statements
    should have passed {!Tdb_tquel.Semck} first; runtime surprises raise
    {!Execution_error}. *)

val plan_retrieve : sources:source list -> Tdb_tquel.Ast.retrieve -> Plan.t
(** The plan {!run_retrieve} would execute, without running it (drives the
    CLI's [\explain]). *)

val pipeline_retrieve :
  sources:source list -> Tdb_tquel.Ast.retrieve -> Pipeline.t
(** The batched operator pipeline {!run_retrieve} would run for the
    statement — the same stage labels the trace spans carry (drives the
    CLI's [\explain]). *)

val explain_parallelism :
  now:Tdb_time.Chronon.t ->
  sources:source list ->
  Tdb_tquel.Ast.retrieve ->
  string
(** The parallelism line(s) for [\explain]: the decision the executor
    would take for the plan's driving access under the configured worker
    count — [parallel: N workers, scan(v) in K partitions ...] when
    admitted, [parallel: declined (too small): ...] when the post-prune
    page count is under the admission floor, [parallel: off ...]
    otherwise — plus a note for probe-driven inner sides, whose fan-out
    is decided per probe value at run time.  Charge-free: previews size
    partitions from in-memory fence summaries only. *)

val set_temporal_join : bool option -> unit
(** Overrides temporal-join planning.  [Some false] forces the classic
    nested-loop/detachment plans even when a [when] conjunct classifies
    as an Allen overlap/precede join; [Some true] forces it on; [None]
    restores the default chain (the [TDB_TJOIN] environment variable,
    else enabled). *)

val temporal_join_enabled : unit -> bool
(** Whether the planner may currently pick {!Plan.Temporal_join}. *)

val with_temporal_join : bool -> (unit -> 'a) -> 'a
(** Runs the thunk with temporal-join planning pinned to the given value,
    restoring the previous override afterwards (benchmarks use it to
    measure both sides of the crossover). *)

val set_parallel_min_pages : int option -> unit
(** Overrides the parallelism admission floor (minimum post-prune pages
    an access must cover to fan out; default 128, or the
    [TDB_PAR_MIN_PAGES] environment variable).  [Some 0] admits
    everything — the tests use it to exercise fan-out on tiny relations;
    [None] restores the default chain. *)

val parallel_min_pages : unit -> int
(** The admission floor currently in effect. *)

val result_schema :
  sources:source list ->
  Tdb_tquel.Ast.retrieve ->
  Tdb_relation.Schema.t
(** The result shape without running the query. *)
