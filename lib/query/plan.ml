type access =
  | Seq_scan
  | Keyed_probe of Tdb_tquel.Ast.expr
  | Range_probe of Conjuncts.bound option * Conjuncts.bound option
  | Time_fence of {
      transaction : bool;
      valid_const : string option;
      base : access;
    }

type inner_probe = {
  probe_var : string;
  probe_attr : string;
  from_var : string;
  from_attr : string;
}

type t =
  | Const_emit
  | Single of { var : string; access : access }
  | Tuple_substitution of {
      detached : string;
      substituted : string;
      probe_attr : string;
    }
  | Temporal_join of {
      outer : string;
      inner : string;
      cls : Conjuncts.allen_class;
    }
  | Detach_both of { outer : string; inner : string }
  | Nested_scan of { outer : string; inner : string }
  | Nested_general of { vars : string list; probe : inner_probe option }

type source_info = {
  var : string;
  key : (string * [ `Hash | `Isam ]) option;
  transaction_time : bool;
  valid_time : bool;
}

(* Which fence dimensions can prune this source: the transaction window
   applies to every query over a relation with transaction time (the
   default rollback point is "now"); the valid dimension needs an
   extractable [when var overlap "c"] bound. *)
let fence_spec source conjuncts =
  let transaction = source.transaction_time in
  let valid_const =
    if source.valid_time then
      Conjuncts.overlap_constant conjuncts ~var:source.var
    else None
  in
  if transaction || valid_const <> None then Some (transaction, valid_const)
  else None

let refine_access source conjuncts access =
  match fence_spec source conjuncts with
  | Some (transaction, valid_const) ->
      Time_fence { transaction; valid_const; base = access }
  | None -> access

let single_access source conjuncts =
  let base =
    match source.key with
    | Some (attr, kind) -> (
        match Conjuncts.constant_key_probe conjuncts ~var:source.var ~attr with
        | Some e -> Keyed_probe e
        | None -> (
            (* An ISAM key admits range probes; hashing does not. *)
            match kind with
            | `Isam -> (
                match Conjuncts.range_bounds conjuncts ~var:source.var ~attr with
                | (None, None) -> Seq_scan
                | (lo, hi) -> Range_probe (lo, hi))
            | `Hash -> Seq_scan))
    | None -> Seq_scan
  in
  refine_access source conjuncts base

let has_restriction var conjuncts =
  Conjuncts.for_var var conjuncts <> []

(* The innermost variable of a 3+-variable nest reuses the tuple
   substitution idea: when an equi-join lands on its key and the other
   side is an enclosing variable, each enclosing binding probes instead
   of scanning. *)
let innermost_probe sources conjuncts =
  match List.rev sources with
  | [] -> None
  | innermost :: outers -> (
      match innermost.key with
      | None -> None
      | Some (key_attr, _) ->
          let outer_var v = List.exists (fun s -> s.var = v) outers in
          let hit (je : Conjuncts.join_equality) =
            if
              je.left_var = innermost.var && je.left_attr = key_attr
              && outer_var je.right_var
            then
              Some
                {
                  probe_var = innermost.var;
                  probe_attr = key_attr;
                  from_var = je.right_var;
                  from_attr = je.right_attr;
                }
            else if
              je.right_var = innermost.var && je.right_attr = key_attr
              && outer_var je.left_var
            then
              Some
                {
                  probe_var = innermost.var;
                  probe_attr = key_attr;
                  from_var = je.left_var;
                  from_attr = je.left_attr;
                }
            else None
          in
          List.find_map hit (Conjuncts.join_equalities conjuncts))

(* A two-variable query with no keyed equi-join qualifies for the merge
   temporal join when both variables carry valid time and a [when]
   conjunct between them classifies into an Allen class: the sweep
   replaces the nested inner loop of [Detach_both]/[Nested_scan], and
   since both baselines stream outer-order x inner-order, sorting the
   candidate pairs by (outer, inner) sequence restores the identical row
   order. *)
let temporal_join_plan a b conjuncts =
  if a.valid_time && b.valid_time then
    match Conjuncts.temporal_join_between conjuncts ~a:a.var ~b:b.var with
    | Some aj ->
        Some (Temporal_join { outer = a.var; inner = b.var; cls = aj.aj_class })
    | None -> None
  else None

let choose ?(temporal_join = false) ~sources ~conjuncts () =
  match sources with
  | [] -> Const_emit
  | [ s ] -> Single { var = s.var; access = single_access s conjuncts }
  | [ a; b ] -> (
      (* Prefer tuple substitution: an equi-join whose one side is a
         relation's key lets each outer tuple probe instead of scan. *)
      let keyed_side je =
        let hit (s : source_info) v attr =
          match s.key with
          | Some (key_attr, _) -> s.var = v && key_attr = attr
          | None -> false
        in
        let open Conjuncts in
        if hit a je.left_var je.left_attr || hit b je.left_var je.left_attr
        then Some (je.left_var, je.right_var, je.right_attr)
        else if
          hit a je.right_var je.right_attr || hit b je.right_var je.right_attr
        then Some (je.right_var, je.left_var, je.left_attr)
        else None
      in
      match List.find_map keyed_side (Conjuncts.join_equalities conjuncts) with
      | Some (substituted, detached, probe_attr) ->
          Tuple_substitution { detached; substituted; probe_attr }
      | None -> (
          match
            if temporal_join then temporal_join_plan a b conjuncts else None
          with
          | Some plan -> plan
          | None ->
              if
                has_restriction a.var conjuncts
                && has_restriction b.var conjuncts
              then Detach_both { outer = a.var; inner = b.var }
              else Nested_scan { outer = a.var; inner = b.var }))
  | many ->
      Nested_general
        {
          vars = List.map (fun s -> s.var) many;
          probe = innermost_probe many conjuncts;
        }

let rec access_to_string var = function
  | Seq_scan -> Printf.sprintf "scan(%s)" var
  | Keyed_probe _ -> Printf.sprintf "keyed(%s)" var
  | Range_probe _ -> Printf.sprintf "range(%s)" var
  | Time_fence { transaction; valid_const; base } ->
      let dims =
        (if transaction then [ "tx" ] else [])
        @
        match valid_const with
        | Some c -> [ Printf.sprintf "valid@%S" c ]
        | None -> []
      in
      Printf.sprintf "fence[%s](%s)" (String.concat "," dims)
        (access_to_string var base)

let to_string = function
  | Const_emit -> "constant emit"
  | Single { var; access } -> access_to_string var access
  | Tuple_substitution { detached; substituted; probe_attr } ->
      Printf.sprintf "detach(%s) then substitute into %s via %s.%s" detached
        substituted detached probe_attr
  | Temporal_join { outer; inner; cls } ->
      Printf.sprintf "temporal %s join(%s, %s)"
        (match cls with
        | `Overlap -> "overlap"
        | `Equal -> "equal"
        | `Precede -> "precede")
        outer inner
  | Detach_both { outer; inner } ->
      Printf.sprintf "detach(%s) join detach(%s)" outer inner
  | Nested_scan { outer; inner } ->
      Printf.sprintf "nested scan(%s, %s)" outer inner
  | Nested_general { vars; probe } -> (
      Printf.sprintf "nested scans(%s)%s" (String.concat ", " vars)
        (match probe with
        | Some p ->
            Printf.sprintf " with %s probed via %s.%s" p.probe_var p.from_var
              p.from_attr
        | None -> ""))
