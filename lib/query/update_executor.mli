(** Execution of [append], [delete] and [replace], with the version
    semantics of the paper's section 4:

    - static: updates in place, physical deletion;
    - rollback: [append] stamps \[now, forever) transaction time; [delete]
      rewrites the transaction-stop to [now]; [replace] does a delete then
      inserts the new version — append-only except for the stop-stamp;
    - historical: the same dance on \[valid from, valid to), with the
      [valid] clause able to override the defaults (retroactive and
      postactive changes);
    - temporal: [delete] stamps the old version's transaction-stop and
      {e inserts} a new version recording that validity ended at [now];
      [replace] therefore inserts {e two} new versions.

    Event relations carry a single [valid at] attribute: a historical event
    can only be physically deleted, a temporal event is terminated through
    its transaction time. *)

type counts = {
  matched : int;
  inserted : int;
  trace : Tdb_obs.Trace.node option;
}

exception Execution_error of string

val run_append :
  now:Tdb_time.Chronon.t ->
  rel:Tdb_storage.Relation_file.t ->
  sources:Executor.source list ->
  Tdb_tquel.Ast.append ->
  counts
(** Constant appends insert one tuple (unnamed user attributes default to
    zero values); appends whose targets mention tuple variables run as a
    query and insert every result tuple. *)

val run_delete :
  now:Tdb_time.Chronon.t ->
  source:Executor.source ->
  Tdb_tquel.Ast.delete ->
  counts

val run_replace :
  now:Tdb_time.Chronon.t ->
  source:Executor.source ->
  Tdb_tquel.Ast.replace ->
  counts
