(** Batched operator pipelines.

    The executor runs every retrieve as a chain of batch-at-a-time
    operators: a row source (a {!Tdb_storage.Cursor} over an access
    path), optional nested-loop or keyed-probe joins, a residual filter,
    and an emit stage, with rows flowing between stages in batches of
    {!batch_size}.  This module is the {e description} of such a chain:
    the executor builds one per query, charges each trace span under its
    stage's label, and the CLI's [\explain] prints it — the same names
    everywhere by construction. *)

type stage =
  | Scan of string
      (** the row source: an access-path label ([fence\[tx\](scan(h))])
          or a temporary scan ([scan(h')]) *)
  | Nest of string
      (** nested loop: re-runs the labelled access once per input row *)
  | Probe of string
      (** keyed nested loop, labelled [v.key<-from.attr]: probes [v]'s
          key with a value from each input row *)
  | Tjoin of string
      (** merge temporal join: buffers the outer rows, materializes the
          inner side under a valid-envelope-narrowed fence window, sweeps
          for candidate pairs and re-emits them in (outer, inner) order;
          the label carries the Allen class, any equi-partition
          attributes, and the inner access
          ([tjoin\[overlap\](scan(i))]) *)
  | Filter of int  (** applies the residual (multi-variable) conjuncts *)
  | Emit of bool
      (** delivers rows (targets, valid clause, dedup); [true] when the
          query folds into global aggregates instead *)
  | Coalesce
      (** [retrieve coalesced]: buffers emitted rows and merges
          value-equivalent adjacent/overlapping versions into maximal
          periods, delivered sorted *)
  | Temporal_agg
      (** [retrieve coalesced] with global aggregates: folds the
          aggregates once per maximal interval over which the qualifying
          set is constant (snapshot semantics) *)

type t = {
  detaches : string list;
      (** access labels of the detachment prologue, in execution order *)
  stages : stage list;  (** source first, emit last *)
}

val batch_size : int
(** Rows per inter-stage batch (= {!Tdb_storage.Cursor.target}). *)

val stage_label : stage -> string
(** The label used for the stage's trace span and its [\explain] line. *)

val detach_label : string -> string
(** [detach(<access>)] — the prologue stages' span labels. *)

val to_string : t -> string
(** Multi-line rendering: a header naming the batch size, one line per
    detachment, then the stage chain [a -> b -> c]. *)
