(** Query plans: the decomposition strategies of the Ingres-based prototype
    (paper, section 5.3).

    - a one-variable query uses keyed access when a constant equality on the
      relation's hash/ISAM key exists, otherwise a sequential scan;
    - a two-variable query with an equi-join landing on one relation's key
      uses {e one-variable detachment} of the other relation into a
      temporary, then {e tuple substitution} probing the keyed relation
      (Q09/Q10);
    - a two-variable query whose variables both carry selective
      single-variable restrictions is evaluated by detaching both into
      temporaries and joining those (Q12);
    - anything else is a nested sequential scan (Q11), except that the
      innermost variable of a 3+-variable nest is probed by key when an
      equi-join allows it.

    Any access over a relation with transaction or valid time is wrapped in
    a {!access.Time_fence} refinement: the executor pushes the query's
    rollback window (and any constant [when] bound) into the storage layer,
    which skips pages whose time fences prove no qualifying version —
    without changing which tuples the access yields after filtering. *)

type access =
  | Seq_scan
  | Keyed_probe of Tdb_tquel.Ast.expr
      (** constant expression supplying the key *)
  | Range_probe of Conjuncts.bound option * Conjuncts.bound option
      (** ISAM only: read the data pages covering \[lo, hi\] instead of
          scanning (an extension beyond the prototype; strict bounds are
          widened to inclusive and re-filtered by the restriction) *)
  | Time_fence of {
      transaction : bool;
          (** push the as-of window into page fences (the source has
              transaction time) *)
      valid_const : string option;
          (** constant bound on valid time from a [when var overlap "c"]
              conjunct *)
      base : access;  (** never itself [Time_fence] *)
    }

type inner_probe = {
  probe_var : string;  (** innermost variable, keyed on [probe_attr] *)
  probe_attr : string;
  from_var : string;  (** enclosing variable supplying the probe value *)
  from_attr : string;
}

type t =
  | Const_emit  (** no tuple variables at all *)
  | Single of { var : string; access : access }
  | Tuple_substitution of {
      detached : string;  (** scanned into a temporary *)
      substituted : string;  (** probed by key for each temporary tuple *)
      probe_attr : string;  (** the detached variable's attribute whose value probes *)
    }
  | Temporal_join of {
      outer : string;
      inner : string;
      cls : Conjuncts.allen_class;
          (** the Allen class of the classified [when] conjunct driving
              the sweep *)
    }
      (** sort-merge/partition interval join: both sides are materialized
          under their single-variable restrictions, candidate pairs come
          from an endpoint sweep over the conjunct's operand periods, and
          the residual filter re-applies the exact predicates — replacing
          the nested inner loop where {!Detach_both}/{!Nested_scan} would
          otherwise run (chosen only when enabled, both variables carry
          valid time, and a [when] conjunct between them classifies;
          keyed tuple substitution still wins) *)
  | Detach_both of { outer : string; inner : string }
  | Nested_scan of { outer : string; inner : string }
  | Nested_general of { vars : string list; probe : inner_probe option }
      (** 3+ variables: nested scans in order; the innermost is probed by
          key when an equi-join with an enclosing variable lands on it *)

type source_info = {
  var : string;
  key : (string * [ `Hash | `Isam ]) option;
      (** the relation's key attribute name, when hash/ISAM organized *)
  transaction_time : bool;
  valid_time : bool;
}

val choose :
  ?temporal_join:bool ->
  sources:source_info list ->
  conjuncts:Conjuncts.conjunct list ->
  unit ->
  t
(** [sources] in order of first appearance in the query.
    [temporal_join] (default [false]) admits the {!t.Temporal_join}
    strategy for qualifying two-variable queries; the executor passes its
    toggle ({!Executor.temporal_join_enabled}). *)

val refine_access :
  source_info -> Conjuncts.conjunct list -> access -> access
(** Wraps [access] in {!access.Time_fence} when the source's time
    dimensions admit pruning; identity otherwise. *)

val fence_spec :
  source_info -> Conjuncts.conjunct list -> (bool * string option) option
(** [(transaction, valid_const)] when either fence dimension applies. *)

val to_string : t -> string
val access_to_string : string -> access -> string
