open Tdb_tquel.Ast

type conjunct = Where of pred | When of temppred

let rec vars_of_expr acc = function
  | Eattr (v, _) -> if List.mem v acc then acc else v :: acc
  | Eint _ | Efloat _ | Estring _ -> acc
  | Ebinop (_, a, b) -> vars_of_expr (vars_of_expr acc a) b
  | Euminus e -> vars_of_expr acc e
  | Eagg (_, e, by) -> List.fold_left vars_of_expr (vars_of_expr acc e) by

let rec vars_of_pred acc = function
  | Pcompare (_, a, b) -> vars_of_expr (vars_of_expr acc a) b
  | Wand (a, b) | Wor (a, b) -> vars_of_pred (vars_of_pred acc a) b
  | Wnot a -> vars_of_pred acc a

let rec vars_of_tempexpr acc = function
  | Tvar v -> if List.mem v acc then acc else v :: acc
  | Tconst _ -> acc
  | Toverlap (a, b) | Textend (a, b) -> vars_of_tempexpr (vars_of_tempexpr acc a) b
  | Tstart_of e | Tend_of e -> vars_of_tempexpr acc e

let rec vars_of_temppred acc = function
  | Poverlap (a, b) | Pprecede (a, b) | Pequal (a, b) ->
      vars_of_tempexpr (vars_of_tempexpr acc a) b
  | Pand (a, b) | Por (a, b) -> vars_of_temppred (vars_of_temppred acc a) b
  | Pnot a -> vars_of_temppred acc a

let vars_of_conjunct = function
  | Where p -> List.sort_uniq compare (vars_of_pred [] p)
  | When p -> List.sort_uniq compare (vars_of_temppred [] p)

let rec split_pred acc = function
  | Wand (a, b) -> split_pred (split_pred acc a) b
  | p -> Where p :: acc

let rec split_temppred acc = function
  | Pand (a, b) -> split_temppred (split_temppred acc a) b
  | p -> When p :: acc

let split where when_ =
  let acc = match where with Some p -> split_pred [] p | None -> [] in
  let acc = match when_ with Some p -> split_temppred acc p | None -> acc in
  List.rev acc

let for_var var conjuncts =
  List.filter
    (fun c -> match vars_of_conjunct c with [] -> false | vs -> vs = [ var ])
    conjuncts

(* Everything that cannot be pushed down to a single variable: conjuncts
   over two or more variables, and variable-free conjuncts (a constant
   predicate still decides whether rows qualify). *)
let multi_var conjuncts =
  List.filter (fun c -> List.length (vars_of_conjunct c) <> 1) conjuncts

let expr_is_constant e = vars_of_expr [] e = []

let constant_key_probe conjuncts ~var ~attr =
  let matches = function
    | Where (Pcompare (Eq, Eattr (v, a), e))
      when v = var && a = attr && expr_is_constant e ->
        Some e
    | Where (Pcompare (Eq, e, Eattr (v, a)))
      when v = var && a = attr && expr_is_constant e ->
        Some e
    | _ -> None
  in
  List.find_map matches conjuncts

type bound = { expr : expr; inclusive : bool }

let range_bounds conjuncts ~var ~attr =
  let classify = function
    | Where (Pcompare (op, Eattr (v, a), e))
      when v = var && a = attr && expr_is_constant e -> (
        (* var.attr OP e *)
        match op with
        | Lt -> Some (`Hi { expr = e; inclusive = false })
        | Le -> Some (`Hi { expr = e; inclusive = true })
        | Gt -> Some (`Lo { expr = e; inclusive = false })
        | Ge -> Some (`Lo { expr = e; inclusive = true })
        | Eq | Ne -> None)
    | Where (Pcompare (op, e, Eattr (v, a)))
      when v = var && a = attr && expr_is_constant e -> (
        (* e OP var.attr, i.e. the mirror image *)
        match op with
        | Lt -> Some (`Lo { expr = e; inclusive = false })
        | Le -> Some (`Lo { expr = e; inclusive = true })
        | Gt -> Some (`Hi { expr = e; inclusive = false })
        | Ge -> Some (`Hi { expr = e; inclusive = true })
        | Eq | Ne -> None)
    | _ -> None
  in
  List.fold_left
    (fun (lo, hi) c ->
      match classify c with
      | Some (`Lo b) when lo = None -> (Some b, hi)
      | Some (`Hi b) when hi = None -> (lo, Some b)
      | _ -> (lo, hi))
    (None, None) conjuncts

let overlap_constant conjuncts ~var =
  let matches = function
    | When (Poverlap (Tvar v, Tconst c)) when v = var -> Some c
    | When (Poverlap (Tconst c, Tvar v)) when v = var -> Some c
    | _ -> None
  in
  List.find_map matches conjuncts

type join_equality = {
  left_var : string;
  left_attr : string;
  right_var : string;
  right_attr : string;
}

(* --- Allen-relation classification of [when] conjuncts ---

   A temporal-join conjunct relates (endpoints of) two variables' valid
   periods through a single primitive predicate.  The three primitives
   partition Allen's thirteen relations into classes over the operand
   periods:

     overlap  <->  { o, oi, s, si, d, di, f, fi, = }   (intersecting)
     precede  <->  { before, meets }                    (end <= start)
     equal    <->  { = }

   Anything else — compound predicates, constants, derived periods such
   as [a overlap b] used as an operand — is left unclassified and the
   planner falls back to the nested-loop strategies. *)

type allen_endpoint = Ep_whole | Ep_start | Ep_end

type allen_class = [ `Overlap | `Equal | `Precede ]

type allen_operand = { op_var : string; op_endpoint : allen_endpoint }

type allen_join = {
  aj_left : allen_operand;
  aj_right : allen_operand;
  aj_class : allen_class;
}

let allen_operand = function
  | Tvar v -> Some { op_var = v; op_endpoint = Ep_whole }
  | Tstart_of (Tvar v) -> Some { op_var = v; op_endpoint = Ep_start }
  | Tend_of (Tvar v) -> Some { op_var = v; op_endpoint = Ep_end }
  | _ -> None

let classify_allen = function
  | Where _ -> None
  | When p -> (
      let prim = function
        | Poverlap (a, b) -> Some (a, b, `Overlap)
        | Pequal (a, b) -> Some (a, b, `Equal)
        | Pprecede (a, b) -> Some (a, b, `Precede)
        | Pand _ | Por _ | Pnot _ -> None
      in
      match prim p with
      | None -> None
      | Some (a, b, cls) -> (
          match (allen_operand a, allen_operand b) with
          | Some l, Some r when l.op_var <> r.op_var ->
              Some { aj_left = l; aj_right = r; aj_class = cls }
          | _ -> None))

let temporal_join_between conjuncts ~a ~b =
  List.find_map
    (fun c ->
      match classify_allen c with
      | Some aj
        when (aj.aj_left.op_var = a && aj.aj_right.op_var = b)
             || (aj.aj_left.op_var = b && aj.aj_right.op_var = a) ->
          Some aj
      | _ -> None)
    conjuncts

let join_equalities conjuncts =
  List.filter_map
    (function
      | Where (Pcompare (Eq, Eattr (v, a), Eattr (w, b))) when v <> w ->
          Some { left_var = v; left_attr = a; right_var = w; right_attr = b }
      | _ -> None)
    conjuncts
