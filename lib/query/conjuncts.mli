(** Predicate analysis: splitting [where]/[when] clauses into conjuncts and
    classifying them by the tuple variables they mention.  This drives both
    selection push-down (single-variable conjuncts are applied while
    scanning that variable's relation) and access-path / decomposition
    choices. *)

type conjunct =
  | Where of Tdb_tquel.Ast.pred
  | When of Tdb_tquel.Ast.temppred

val vars_of_conjunct : conjunct -> string list
(** Sorted, without duplicates. *)

val split :
  Tdb_tquel.Ast.pred option -> Tdb_tquel.Ast.temppred option -> conjunct list
(** Top-level [and] chains become separate conjuncts; anything under [or] or
    [not] stays whole. *)

val for_var : string -> conjunct list -> conjunct list
(** Conjuncts mentioning exactly (a subset of) [ [var] ] — the push-down
    set. *)

val multi_var : conjunct list -> conjunct list
(** The residual set: conjuncts that cannot be pushed down to a single
    variable — join conditions over two or more variables, and
    variable-free (constant) conjuncts. *)

val expr_is_constant : Tdb_tquel.Ast.expr -> bool
(** No tuple variables inside. *)

val constant_key_probe :
  conjunct list -> var:string -> attr:string -> Tdb_tquel.Ast.expr option
(** A conjunct of the shape [var.attr = e] (or symmetric) with [e]
    variable-free: enables keyed access on [var]. *)

type bound = {
  expr : Tdb_tquel.Ast.expr;  (** variable-free *)
  inclusive : bool;
}

val range_bounds :
  conjunct list -> var:string -> attr:string -> bound option * bound option
(** Lower and upper bounds on [var.attr] from conjuncts of the shapes
    [var.attr < e], [e <= var.attr], etc. with [e] variable-free — the
    basis for ISAM range probes.  When several conjuncts bound the same
    side, one is returned (the rest still filter during the scan). *)

val overlap_constant : conjunct list -> var:string -> string option
(** A conjunct of the shape [when var overlap "c"] (or mirrored) with a
    constant event: bounds the variable's valid time, enabling fence
    pruning on the valid dimension.  The conjunct itself still filters
    exactly during the scan. *)

type join_equality = {
  left_var : string;
  left_attr : string;
  right_var : string;
  right_attr : string;
}

val join_equalities : conjunct list -> join_equality list
(** Conjuncts of the shape [v.a = w.b] with [v <> w], both orientations
    reported once as written. *)

type allen_endpoint =
  | Ep_whole  (** the variable's whole valid period *)
  | Ep_start  (** [start of v] *)
  | Ep_end  (** [end of v] *)

type allen_class = [ `Overlap | `Equal | `Precede ]
(** The partition of Allen's thirteen interval relations induced by
    TQuel's primitive temporal predicates: [`Overlap] covers the nine
    intersecting relations (o, oi, s, si, d, di, f, fi, =), [`Precede]
    covers before and meets (end <= start under the engine's period
    semantics), [`Equal] covers = alone. *)

type allen_operand = { op_var : string; op_endpoint : allen_endpoint }

type allen_join = {
  aj_left : allen_operand;
  aj_right : allen_operand;
  aj_class : allen_class;
}

val classify_allen : conjunct -> allen_join option
(** A [when] conjunct of the shape [e1 OP e2] where [OP] is a primitive
    temporal predicate and each operand is a variable's period or one of
    its endpoints, over two {e distinct} variables.  Compound predicates
    ([and]/[or]/[not]), constants and derived periods classify as [None]
    — the safe fallback to nested-loop evaluation. *)

val temporal_join_between :
  conjunct list -> a:string -> b:string -> allen_join option
(** The first classifiable conjunct joining variables [a] and [b], in
    either orientation. *)
