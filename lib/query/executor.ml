module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Db_type = Tdb_relation.Db_type
module Relation_file = Tdb_storage.Relation_file
module Io_stats = Tdb_storage.Io_stats
module Cursor = Tdb_storage.Cursor
module Time_fence = Tdb_storage.Time_fence
module Pool = Tdb_par.Pool
module Trace = Tdb_obs.Trace
module Metric = Tdb_obs.Metric
module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
open Tdb_tquel.Ast

type source = { var : string; rel : Relation_file.t }
type io_summary = { input_reads : int; output_writes : int }

type outcome = {
  schema : Schema.t;
  count : int;
  io : io_summary;
  plan : Plan.t;
  trace : Trace.node option;
}

exception Execution_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Execution_error s)) fmt

(* --- temporal-join toggle --- *)

let temporal_join_override = ref None
let set_temporal_join v = temporal_join_override := v

let temporal_join_enabled () =
  match !temporal_join_override with
  | Some v -> v
  | None -> (
      match Sys.getenv_opt "TDB_TJOIN" with
      | Some ("0" | "false" | "off") -> false
      | _ -> true)

let with_temporal_join v f =
  let saved = !temporal_join_override in
  temporal_join_override := Some v;
  Fun.protect ~finally:(fun () -> temporal_join_override := saved) f

(* --- operator metrics --- *)

let m_tjoin_statements = Metric.counter "tdb_tjoin_statements_total"
let m_tjoin_input_rows = Metric.counter "tdb_tjoin_input_rows_total"
let m_tjoin_pairs = Metric.counter "tdb_tjoin_candidate_pairs_total"
let m_coalesce_statements = Metric.counter "tdb_coalesce_statements_total"
let m_coalesce_rows_in = Metric.counter "tdb_coalesce_rows_in_total"
let m_coalesce_rows_out = Metric.counter "tdb_coalesce_rows_out_total"

(* --- used variables, in order of first appearance --- *)

let used_vars (r : retrieve) =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec expr = function
    | Eattr (v, _) -> add v
    | Eint _ | Efloat _ | Estring _ -> ()
    | Ebinop (_, a, b) -> expr a; expr b
    | Euminus e -> expr e
    | Eagg (_, e, by) -> expr e; List.iter expr by
  in
  let rec pred = function
    | Pcompare (_, a, b) -> expr a; expr b
    | Wand (a, b) | Wor (a, b) -> pred a; pred b
    | Wnot a -> pred a
  in
  let rec te = function
    | Tvar v -> add v
    | Tconst _ -> ()
    | Toverlap (a, b) | Textend (a, b) -> te a; te b
    | Tstart_of e | Tend_of e -> te e
  in
  let rec tp = function
    | Poverlap (a, b) | Pprecede (a, b) | Pequal (a, b) -> te a; te b
    | Pand (a, b) | Por (a, b) -> tp a; tp b
    | Pnot a -> tp a
  in
  List.iter (fun t -> expr t.value) r.targets;
  (match r.valid with
  | Some (Valid_interval (a, b)) -> te a; te b
  | Some (Valid_event e) -> te e
  | None -> ());
  (match r.where with Some p -> pred p | None -> ());
  (match r.when_ with Some p -> tp p | None -> ());
  List.rev !acc

(* --- attributes of one variable referenced by an expression tree --- *)

let add_attr acc (v, a) = if List.mem (v, a) !acc then () else acc := (v, a) :: !acc

let rec attrs_of_expr acc = function
  | Eattr (v, a) -> add_attr acc (v, a)
  | Eint _ | Efloat _ | Estring _ -> ()
  | Ebinop (_, a, b) -> attrs_of_expr acc a; attrs_of_expr acc b
  | Euminus e -> attrs_of_expr acc e
  | Eagg (_, e, by) ->
      attrs_of_expr acc e;
      List.iter (attrs_of_expr acc) by

let rec attrs_of_pred acc = function
  | Pcompare (_, a, b) -> attrs_of_expr acc a; attrs_of_expr acc b
  | Wand (a, b) | Wor (a, b) -> attrs_of_pred acc a; attrs_of_pred acc b
  | Wnot a -> attrs_of_pred acc a

(* --- result schema --- *)

(* Default names may collide (Q09 retrieves h.id and i.id) and a target may
   shadow one of the result's implicit time attributes (retrieving
   h.valid_from from a valid-time source); both get a numeric suffix. *)
let target_names ?(reserved = []) targets =
  let seen = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace seen (Schema.norm_name r) 1) reserved;
  List.map
    (fun t ->
      let base = match t.out_name with Some n -> n | None -> "column" in
      let key = Schema.norm_name base in
      let n = (Hashtbl.find_opt seen key |> Option.value ~default:0) + 1 in
      Hashtbl.replace seen key n;
      if n = 1 then base else Printf.sprintf "%s#%d" base n)
    targets

let rec infer_type sources = function
  | Eattr (v, a) -> (
      match List.find_opt (fun s -> s.var = v) sources with
      | None -> errf "tuple variable %S is not in range" v
      | Some s -> (
          let schema = Relation_file.schema s.rel in
          match Schema.index_of schema a with
          | Some i -> (Schema.attr schema i).Schema.ty
          | None -> errf "relation of %s has no attribute %S" v a))
  | Eint _ -> Attr_type.I4
  | Efloat _ -> Attr_type.F8
  | Estring s -> Attr_type.C (max 1 (String.length s))
  | Euminus e -> infer_type sources e
  | Ebinop (_, a, b) -> (
      match (infer_type sources a, infer_type sources b) with
      | (Attr_type.F4 | F8), _ | _, (Attr_type.F4 | F8) -> Attr_type.F8
      | _ -> Attr_type.I4)
  | Eagg (agg, e, _) -> (
      match agg with
      | Count | Any -> Attr_type.I4
      | Avg -> Attr_type.F8
      | Sum -> (
          match infer_type sources e with
          | Attr_type.F4 | F8 -> Attr_type.F8
          | _ -> Attr_type.I4)
      | Min | Max -> infer_type sources e)

let source_has_valid_time s =
  Db_type.has_valid_time (Schema.db_type (Relation_file.schema s.rel))

(* Global-aggregate mode: the retrieve collapses to one row.  Aggregates
   with a by-list evaluate per binding instead (see the group tables). *)
let aggregate_mode (r : retrieve) =
  List.exists (fun t -> Tdb_tquel.Semck.expr_has_global_aggregate t.value)
    r.targets

let result_db_type ~sources (r : retrieve) =
  let used = used_vars r in
  let used_sources = List.filter (fun s -> List.mem s.var used) sources in
  if aggregate_mode r then
    if r.coalesce then
      (* Temporal aggregation: one row per maximal constant interval. *)
      Db_type.Historical Db_type.Interval
    else
      (* Aggregation collapses the qualifying versions into one row; the
         result carries no time attributes. *)
      Db_type.Static
  else
    match r.valid with
    | Some (Valid_event _) -> Db_type.Historical Db_type.Event
    | Some (Valid_interval _) -> Db_type.Historical Db_type.Interval
    | None ->
        if List.exists source_has_valid_time used_sources then
          Db_type.Historical Db_type.Interval
        else Db_type.Static

(* --- aggregate folding --- *)

type accumulator = {
  node : expr;  (** the [Eagg] node this accumulator folds *)
  agg : aggregate;
  operand : expr;
  mutable rows : int;
  mutable total : Value.t;
  mutable best : Value.t option;
}

let fresh_accumulator node agg operand =
  { node; agg; operand; rows = 0; total = Value.Int 0; best = None }

let rec aggregate_nodes acc = function
  | Eagg (agg, operand, []) as node ->
      if List.exists (fun a -> a.node = node) acc then acc
      else fresh_accumulator node agg operand :: acc
  | Eagg (_, _, _ :: _) -> acc (* by-aggregates fold per group, not globally *)
  | Ebinop (_, a, b) -> aggregate_nodes (aggregate_nodes acc a) b
  | Euminus e -> aggregate_nodes acc e
  | Eattr _ | Eint _ | Efloat _ | Estring _ -> acc

let accumulate_value v a =
  a.rows <- a.rows + 1;
  (match a.agg with
  | Sum | Avg ->
      a.total <-
        (if a.rows = 1 then v else Eval.apply_binop Add a.total v)
  | Min -> (
      match a.best with
      | Some b when Value.compare b v <= 0 -> ()
      | _ -> a.best <- Some v)
  | Max -> (
      match a.best with
      | Some b when Value.compare b v >= 0 -> ()
      | _ -> a.best <- Some v)
  | Count | Any -> ())

let accumulate ctx a = accumulate_value (Eval.expr ctx a.operand) a

(* The exclusive upper bound of a period: just past an event's instant. *)
let period_end_excl p =
  if Period.is_event p then Chronon.succ (Period.from_ p) else Period.to_ p

let finish a =
  match a.agg with
  | Count -> Value.Int a.rows
  | Any -> Value.Int (if a.rows > 0 then 1 else 0)
  | Sum -> if a.rows = 0 then Value.Int 0 else a.total
  | Avg ->
      if a.rows = 0 then errf "avg over an empty set"
      else
        let as_float = function
          | Value.Int n -> float_of_int n
          | Value.Float f -> f
          | v -> errf "avg of non-numeric value %s" (Value.to_string v)
        in
        Value.Float (as_float a.total /. float_of_int a.rows)
  | Min | Max -> (
      match a.best with
      | Some v -> v
      | None ->
          errf "%s over an empty set" (Tdb_tquel.Ast.aggregate_name a.agg))

(* Evaluate a target expression after folding: every [Eagg] node is looked
   up in the finished accumulators; attribute references cannot appear
   here (the checker confines them to aggregate operands). *)
let rec fold_target accs = function
  | Eagg _ as node -> (
      match List.find_opt (fun a -> a.node = node) accs with
      | Some a -> finish a
      | None -> assert false)
  | Eint n -> Value.Int n
  | Efloat f -> Value.Float f
  | Estring s -> Value.Str s
  | Ebinop (op, a, b) ->
      Eval.apply_binop op (fold_target accs a) (fold_target accs b)
  | Euminus e -> Eval.negate (fold_target accs e)
  | Eattr (v, a) -> errf "attribute %s.%s outside an aggregate" v a

let result_schema ~sources (r : retrieve) =
  let db_type = result_db_type ~sources r in
  let names = target_names ~reserved:(Schema.implicit_names db_type) r.targets in
  let attrs =
    List.map2
      (fun name t -> { Schema.name; ty = infer_type sources t.value })
      names r.targets
  in
  match Schema.create ~db_type attrs with
  | Ok s -> s
  | Error e -> errf "cannot build result schema: %s" e

(* --- as-of window --- *)

(* TQuel's default rollback point is "now": a query without an [as of]
   clause sees the current state of a rollback or temporal relation (only
   versions whose transaction period contains the present).  An explicit
   clause shifts the reference point.  Relations without transaction time
   ignore the window (see {!as_of_ok}). *)
let as_of_window ~now = function
  | None -> Some (Period.at now)
  | Some { at; through } -> (
      let parse s =
        match Chronon.parse ~now s with
        | Ok t -> t
        | Error e -> errf "bad as-of constant %S: %s" s e
      in
      let t1 = parse at in
      match through with
      | None -> Some (Period.at t1)
      | Some s ->
          let t2 = parse s in
          if Chronon.compare t2 t1 < 0 then
            errf "as-of window ends before it starts"
          else Some (Period.make t1 (Chronon.succ t2)))

(* A version qualifies under [as of] iff its transaction period overlaps
   the window (for a point window: contains the instant). *)
let as_of_ok window schema tuple =
  match window with
  | None -> true
  | Some w -> (
      match Tuple.transaction_period schema tuple with
      | Some p -> Period.overlaps p w
      | None -> true)

(* --- per-variable restriction --- *)

type restriction = {
  conjuncts : Conjuncts.conjunct list;  (** single-variable, this var only *)
  window : Period.t option;
}

let check_conjunct ctx = function
  | Conjuncts.Where p -> Eval.pred ctx p
  | Conjuncts.When p -> Eval.temppred ctx p

(* The pushed-down single-variable conjuncts as a tuple predicate, with
   everything per-source hoisted out of the record loop. *)
let conjuncts_check ~now restriction (source : source) =
  match restriction.conjuncts with
  | [] -> fun _ -> true
  | conjuncts ->
      let schema = Relation_file.schema source.rel in
      fun tuple ->
        let ctx =
          { Eval.bindings = [ { Eval.var = source.var; schema; tuple } ]; now }
        in
        List.for_all (check_conjunct ctx) conjuncts

(* The raw-record as-of test: [Tuple.transaction_period]'s overlap check
   replayed over the encoded bytes (see
   {!Relation_file.transaction_overlaps}), so versions outside the
   rollback window are refuted before paying for a full decode.  [None]
   exactly when [as_of_ok] passes every tuple — no window, or a schema
   without transaction time. *)
let prefilter_of ~restriction (source : source) =
  match (restriction.window, Relation_file.transaction_overlaps source.rel) with
  | Some w, Some overlaps -> Some (overlaps w)
  | _ -> None

(* --- access paths --- *)

let coerce_probe schema key_attr v ~now =
  let ty =
    match Schema.index_of schema key_attr with
    | Some i -> (Schema.attr schema i).Schema.ty
    | None -> errf "no key attribute %S" key_attr
  in
  match (ty, v) with
  | Attr_type.Time, Value.Str s -> (
      match Chronon.parse ~now s with
      | Ok t -> Value.Time t
      | Error e -> errf "bad time constant %S: %s" s e)
  | _ -> (
      match Value.coerce ty v with
      | Ok v -> v
      | Error e -> errf "bad key value: %s" e)

(* Resolve a [Time_fence] refinement into the storage layer's window: the
   transaction dimension is the query's as-of window, the valid dimension
   the constant [when] bound.  Pruning on either is sound because the
   restriction re-applies the exact tests ([as_of_ok], the when conjunct)
   to every surviving tuple. *)
let resolve_window ~now ~restriction ~transaction ~valid_const =
  let valid =
    Option.map
      (fun s ->
        match Chronon.parse ~now s with
        | Ok t -> Period.at t
        | Error e -> errf "bad time constant %S: %s" s e)
      valid_const
  in
  let transaction = if transaction then restriction.window else None in
  match (transaction, valid) with
  | None, None -> None
  | _ -> Some { Tdb_storage.Time_fence.transaction; valid }

(* Resolve a plan access into the storage layer's terms: the fence window
   (if the plan wrapped one) and the unified access path.  Evaluating the
   probe constants here costs no I/O, so planners (the parallelism
   admission below, [\explain]) can call this freely. *)
let resolve_access ~now ~restriction ~access (source : source) =
  let key_attr_name () =
    match Relation_file.key_attr source.rel with
    | Some i -> (Schema.attr (Relation_file.schema source.rel) i).Schema.name
    | None -> errf "keyed probe on a heap relation"
  in
  let rec go ?window = function
    | Plan.Seq_scan -> (window, Relation_file.Full_scan)
    | Plan.Keyed_probe e ->
        let probe = Eval.expr { Eval.bindings = []; now } e in
        let probe =
          coerce_probe (Relation_file.schema source.rel) (key_attr_name ())
            probe ~now
        in
        (window, Relation_file.Key_lookup probe)
    | Plan.Range_probe (lo, hi) ->
        (* Strict bounds are widened to inclusive here; the restriction
           conjuncts (which include the original comparisons) re-filter. *)
        let bound (b : Conjuncts.bound option) =
          Option.map
            (fun (b : Conjuncts.bound) ->
              coerce_probe (Relation_file.schema source.rel) (key_attr_name ())
                (Eval.expr { Eval.bindings = []; now } b.Conjuncts.expr)
                ~now)
            b
        in
        (window, Relation_file.Key_range { lo = bound lo; hi = bound hi })
    | Plan.Time_fence { transaction; valid_const; base } ->
        let window = resolve_window ~now ~restriction ~transaction ~valid_const in
        go ?window base
  in
  go access

(* Resolve a plan access into the storage layer's unified batch cursor. *)
let cursor_of_access ~now ~restriction ~access (source : source) =
  let window, path = resolve_access ~now ~restriction ~access source in
  Relation_file.cursor ?window source.rel path

(* Apply the full single-variable restriction to one raw record: the
   as-of test straight on the bytes when possible (skipping the decode of
   refuted versions entirely — with a window, that check decides alone,
   so no [as_of_ok] re-test is needed), then the pushed-down conjuncts on
   the decoded tuple.  Built once per source and partially applied, so
   repeated probes (the inner side of a join) pay none of the setup. *)
let restricted_visitor ~now ~restriction (source : source) =
  let decode = Relation_file.decode source.rel in
  let keep = conjuncts_check ~now restriction source in
  match prefilter_of ~restriction source with
  | Some alive ->
      fun f _tid record ->
        if alive record then begin
          let tuple = decode record in
          if keep tuple then f tuple
        end
  | None ->
      fun f _tid record ->
        let tuple = decode record in
        if keep tuple then f tuple

let iter_restricted ~now ~restriction ~access (source : source) f =
  Cursor.iter
    (cursor_of_access ~now ~restriction ~access source)
    (restricted_visitor ~now ~restriction source f)

(* --- parallel execution ---

   Any access — a full scan, a keyed probe, a range probe, possibly
   fence-refined — can fan out over page-disjoint partitions (see
   {!Relation_file.partition_access}).  Whether it {e should} is an
   admission decision: fan-out costs domain wake-ups and private cold
   pools, which at the paper's 1986 row counts outweigh the work itself.
   The executor therefore declines to parallelize any access whose
   post-prune page count (sized for free from the fence summaries) falls
   below a floor, even when more workers are configured. *)

let default_parallel_min_pages = 128

let parallel_min_pages_override = ref None
let set_parallel_min_pages v = parallel_min_pages_override := v

let parallel_min_pages () =
  match !parallel_min_pages_override with
  | Some v -> max 0 v
  | None -> (
      match Sys.getenv_opt "TDB_PAR_MIN_PAGES" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some v when v >= 0 -> v
          | _ -> default_parallel_min_pages)
      | None -> default_parallel_min_pages)

type parallel_decision =
  | Par_off  (** one worker configured: nothing to decide *)
  | Par_unavailable  (** the access cannot fan out on this organization *)
  | Par_declined of { pages : int; floor : int }
      (** partitionable, but too small to pay for the fan-out *)
  | Par_go of {
      window : Time_fence.window option;
      path : Relation_file.access_path;
      parts : int;
      pages : int;
      pruned : int;
    }

let admit ~window ~path (source : source) =
  let workers = Pool.workers () in
  match
    Relation_file.partition_preview ?window source.rel ~parts:workers path
  with
  | None -> Par_unavailable
  | Some p ->
      let floor = parallel_min_pages () in
      if p.Relation_file.pp_parts < 2 || p.Relation_file.pp_pages < floor then
        Par_declined { pages = p.Relation_file.pp_pages; floor }
      else
        Par_go
          {
            window;
            path;
            parts = p.Relation_file.pp_parts;
            pages = p.Relation_file.pp_pages;
            pruned = p.Relation_file.pp_pruned_pages;
          }

let parallel_decision ~now ~restriction ~access (source : source) =
  if Pool.workers () <= 1 then Par_off
  else
    let window, path = resolve_access ~now ~restriction ~access source in
    admit ~window ~path source

(* Drain pre-built page-disjoint partitions into [emit] through the
   domain pool.

   Each worker drains its partitions through private pools and applies
   the same pure visitor (as-of prefilter, decode, pushed-down
   conjuncts); the main domain then emits the surviving tuples partition
   by partition, in partition order.  Partitions are contiguous ranges
   of the sequential walk order, so the emitted sequence — and
   everything downstream of it — is bit-identical to the sequential
   access's.  Partition I/O and fence skips are folded into the source's
   stats and the current span after the join; a failing worker's error
   is re-raised here (first by partition order) once all workers have
   stopped.  [build_parts] runs inside the skip snapshot so shard-level
   prunes charged at partition-build time land on the span too. *)
let drain_partitions (source : source) build_parts visit emit =
  let skips_before = Time_fence.pages_skipped () in
  let parts = Array.of_list (build_parts ()) in
  let drained =
    Pool.run_tasks (Array.length parts) (fun i ->
        let cursor, _stats = parts.(i) in
        let t0 = Metric.monotonic_s () in
        let acc = ref [] in
        Cursor.iter cursor (visit (fun tuple -> acc := tuple :: !acc));
        (List.rev !acc, Metric.monotonic_s () -. t0,
         (Domain.self () :> int)))
  in
  (* Fold each partition's private I/O into the pool's counters and
     attribute it to a per-partition child span (instead of dumping
     it on the scan span), so [explain analyze] can show per-domain
     busy time, pages and rows while the subtree still sums to the
     query's exact page total.  Fence skips stay on the scan span:
     the prune counter is global, not per-partition. *)
  let scan_span = Trace.current () in
  Array.iteri
    (fun i (_, stats) ->
      Io_stats.absorb ~trace:false ~into:(Relation_file.stats source.rel)
        stats;
      let rows, busy_s, domain = drained.(i) in
      Trace.note_partition ~parent:scan_span ~index:i ~domain ~busy_s
        ~rows:(List.length rows) ~reads:(Io_stats.reads stats)
        ~writes:(Io_stats.writes stats))
    parts;
  Trace.note_skip (Time_fence.pages_skipped () - skips_before);
  Array.iter (fun (tuples, _, _) -> List.iter emit tuples) drained

let drain_admitted (source : source) ~window ~path ~parts visit emit =
  drain_partitions source
    (fun () ->
      match
        Relation_file.partition_access ?window source.rel ~parts path
      with
      | Some ps -> ps
      | None ->
          (* partition_preview admitted, so the access fans out *)
          assert false)
    visit emit

(* Drain a restricted source into [emit], fanning the access out over
   the domain pool when more than one worker is configured and the
   admission rule clears. *)
let scan_restricted ~now ~restriction ~access (source : source) emit =
  match parallel_decision ~now ~restriction ~access source with
  | Par_go { window; path; parts; _ } ->
      let visit = restricted_visitor ~now ~restriction source in
      drain_admitted source ~window ~path ~parts visit emit
  | Par_off | Par_unavailable | Par_declined _ ->
      iter_restricted ~now ~restriction ~access source emit

(* Like {!scan_restricted}, but under an explicitly resolved (possibly
   narrowed) fence window — the temporal join pushes the outer side's
   valid envelope into the inner scan this way.  Parallel admission runs
   against the narrowed window, so envelope-refuted shards are never
   assigned to workers. *)
let scan_with_window ~now ~restriction ~window ~path (source : source) emit =
  let visit = restricted_visitor ~now ~restriction source in
  let inline () =
    Cursor.iter (Relation_file.cursor ?window source.rel path) (visit emit)
  in
  if Pool.workers () <= 1 then inline ()
  else
    match admit ~window ~path source with
    | Par_go { window; path; parts; _ } ->
        drain_admitted source ~window ~path ~parts visit emit
    | Par_off | Par_unavailable | Par_declined _ -> inline ()

(* Keyed probes under an already-resolved window (the inner side of a
   tuple substitution); [visit] is a {!restricted_visitor} partial
   application, built once for the whole join.  Each probe value decides
   parallelism for itself — chain lengths differ per key — against the
   same admission floor as scans; the single-worker / cold-key case
   stays a plain inline cursor walk. *)
let probe_runner ~window (source : source) visit =
  let inline probe emitter =
    Cursor.iter
      (Relation_file.cursor ?window source.rel
         (Relation_file.Key_lookup probe))
      (visit emitter)
  in
  if Pool.workers () <= 1 then inline
  else fun probe emitter ->
    let path = Relation_file.Key_lookup probe in
    match admit ~window ~path source with
    | Par_go { window; path; parts; _ } ->
        drain_admitted source ~window ~path ~parts visit emitter
    | Par_off | Par_unavailable | Par_declined _ -> inline probe emitter

(* --- one-variable detachment --- *)

(* Build a temporary relation holding the restriction of [source] projected
   onto the user attributes in [needed] (implicit time attributes ride
   along via the temporary's schema, which shares the source's database
   type). *)
let detach ~now ~restriction ~access ~needed (source : source) =
  let src_schema = Relation_file.schema source.rel in
  let user_attrs =
    Array.to_list (Schema.user_attrs src_schema)
    |> List.filter (fun a -> List.mem (Schema.norm_name a.Schema.name) needed)
  in
  let user_attrs =
    (* A detachment always keeps at least one user attribute so the schema
       is well-formed. *)
    match user_attrs with
    | [] -> [ (Schema.user_attrs src_schema).(0) ]
    | l -> l
  in
  let temp_schema =
    match Schema.create ~db_type:(Schema.db_type src_schema) user_attrs with
    | Ok s -> s
    | Error e -> errf "cannot build temporary schema: %s" e
  in
  let temp =
    Relation_file.create ~name:(source.var ^ "_temp") ~schema:temp_schema ()
  in
  (* index mapping: temp attr -> source attr *)
  let mapping =
    Array.map
      (fun a ->
        match Schema.index_of src_schema a.Schema.name with
        | Some i -> i
        | None -> assert false)
      (Schema.all_attrs temp_schema)
  in
  let inserted = ref 0 in
  iter_restricted ~now ~restriction ~access source (fun tuple ->
      let projected = Array.map (fun i -> tuple.(i)) mapping in
      ignore (Relation_file.insert temp projected);
      incr inserted);
  (* Flush so every page of the temporary is written (output cost) and the
     pool is cold for the reading phase (input cost), as in the paper. *)
  Tdb_storage.Buffer_pool.invalidate (Relation_file.pool temp);
  (temp, !inserted)

(* --- the main loop --- *)

let schema_of s = Relation_file.schema s.rel

let source_info s =
  let key =
    match (Relation_file.organization s.rel, Relation_file.key_attr s.rel) with
    | Relation_file.Hash _, Some i ->
        Some (Schema.norm_name (Schema.attr (schema_of s) i).Schema.name, `Hash)
    | Relation_file.Isam _, Some i ->
        Some (Schema.norm_name (Schema.attr (schema_of s) i).Schema.name, `Isam)
    | _ -> None
  in
  let dbt = Schema.db_type (schema_of s) in
  {
    Plan.var = s.var;
    key;
    transaction_time = Db_type.has_transaction_time dbt;
    valid_time = Db_type.has_valid_time dbt;
  }

let ordered_sources ~sources r =
  List.map
    (fun v ->
      match List.find_opt (fun s -> s.var = v) sources with
      | Some s -> s
      | None -> errf "tuple variable %S is not in range" v)
    (used_vars r)

(* Best single-variable access path: keyed when a constant equality on
   the relation's key exists — fence-refined like every other access. *)
let access_for conjuncts s =
  let info = source_info s in
  let base =
    match info.Plan.key with
    | Some (attr, _) -> (
        match Conjuncts.constant_key_probe conjuncts ~var:s.var ~attr with
        | Some e -> Plan.Keyed_probe e
        | None -> Plan.Seq_scan)
    | None -> Plan.Seq_scan
  in
  Plan.refine_access info conjuncts base

let fenced_scan conjuncts s =
  Plan.refine_access (source_info s) conjuncts Plan.Seq_scan

(* --- temporal-join helpers --- *)

(* The classified conjunct a [Temporal_join] plan runs on, oriented to the
   plan's outer/inner assignment. *)
type tjoin_spec = {
  tj_class : Conjuncts.allen_class;
  tj_outer_ep : Conjuncts.allen_endpoint;
  tj_inner_ep : Conjuncts.allen_endpoint;
  tj_outer_is_left : bool;
}

let tjoin_spec conjuncts ~outer ~inner =
  match Conjuncts.temporal_join_between conjuncts ~a:outer ~b:inner with
  | None -> None
  | Some aj ->
      let outer_is_left = aj.Conjuncts.aj_left.Conjuncts.op_var = outer in
      let oep, iep =
        if outer_is_left then
          (aj.aj_left.Conjuncts.op_endpoint, aj.aj_right.Conjuncts.op_endpoint)
        else
          (aj.aj_right.Conjuncts.op_endpoint, aj.aj_left.Conjuncts.op_endpoint)
      in
      Some
        {
          tj_class = aj.Conjuncts.aj_class;
          tj_outer_ep = oep;
          tj_inner_ep = iep;
          tj_outer_is_left = outer_is_left;
        }

let tj_class_label = function
  | `Overlap -> "overlap"
  | `Equal -> "equal"
  | `Precede -> "precede"

(* Equi-join conjuncts between the two sides hash-partition the sweep.  A
   partition key must group values exactly like the equality the residual
   filter re-applies: numeric columns canonicalize through float (i4
   values are exact in a double, so int-vs-float equalities land in one
   group), strings through identity.  [time] columns (which the filter
   compares with string-parsing coercion) and mixed families decline —
   partitioning is an optimization, and declining never loses rows,
   whereas under-grouping would. *)
type tjoin_partition = {
  tp_outer_key : Tuple.t -> string;
  tp_inner_key : Tuple.t -> string;
  tp_label : string;
}

let tjoin_partition (so : source) (si : source) ~outer ~inner conjuncts =
  let column schema attr =
    match Schema.index_of schema attr with
    | None -> None
    | Some i -> Some (i, (Schema.attr schema i).Schema.ty)
  in
  let family ty =
    if Attr_type.is_numeric ty then Some `Num
    else if Attr_type.is_string ty then Some `Str
    else None
  in
  let canon fam i (tuple : Tuple.t) =
    match (fam, tuple.(i)) with
    | `Num, Value.Int n -> Printf.sprintf "%h" (float_of_int n)
    | `Num, Value.Float f -> Printf.sprintf "%h" f
    | _, v -> Value.to_string v
  in
  let pairs =
    Conjuncts.join_equalities conjuncts
    |> List.filter_map (fun (je : Conjuncts.join_equality) ->
           let oriented =
             if je.left_var = outer && je.right_var = inner then
               Some (je.left_attr, je.right_attr)
             else if je.left_var = inner && je.right_var = outer then
               Some (je.right_attr, je.left_attr)
             else None
           in
           match oriented with
           | None -> None
           | Some (oa, ia) -> (
               match (column (schema_of so) oa, column (schema_of si) ia) with
               | Some (oi, oty), Some (ii, ity) -> (
                   match (family oty, family ity) with
                   | Some fo, Some fi when fo = fi ->
                       Some
                         ( canon fo oi,
                           canon fi ii,
                           Printf.sprintf "%s=%s" (Schema.norm_name oa)
                             (Schema.norm_name ia) )
                   | _ -> None)
               | _ -> None))
  in
  match pairs with
  | [] -> None
  | ps ->
      let key fns tuple =
        String.concat "\x00" (List.map (fun f -> f tuple) fns)
      in
      Some
        {
          tp_outer_key = key (List.map (fun (f, _, _) -> f) ps);
          tp_inner_key = key (List.map (fun (_, f, _) -> f) ps);
          tp_label =
            String.concat "," (List.map (fun (_, _, l) -> l) ps);
        }

(* Valid envelope of the outer side's reduced operand periods: any inner
   tuple that can pair with some outer tuple has a valid period
   overlapping this window, so pushing it into the inner scan's fence
   window only skips pages that provably produce no candidate.  The
   envelope rests on the same fence invariant as every other valid-window
   prune: no record's valid period starts at [forever].  Degenerate
   envelopes (everything saturated at [forever]) decline — narrowing is
   an optimization. *)
let tjoin_envelope spec outer_periods =
  match outer_periods with
  | [] -> None
  | p0 :: rest -> (
      match spec.tj_class with
      | `Overlap | `Equal ->
          let lo =
            List.fold_left
              (fun acc p -> Chronon.min acc (Period.from_ p))
              (Period.from_ p0) rest
          in
          let hi =
            List.fold_left
              (fun acc p -> Chronon.max acc (period_end_excl p))
              (period_end_excl p0) rest
          in
          if Chronon.compare lo hi < 0 then Some (Period.make lo hi)
          else None
      | `Precede ->
          if spec.tj_outer_is_left then
            (* candidates start at or after the earliest outer end *)
            let lo =
              List.fold_left
                (fun acc p -> Chronon.min acc (Period.to_ p))
                (Period.to_ p0) rest
            in
            if Chronon.is_forever lo then None
            else Some (Period.make lo Chronon.forever)
          else
            (* candidates end at or before the latest outer start *)
            let hi =
              List.fold_left
                (fun acc p -> Chronon.max acc (Period.from_ p))
                (Period.from_ p0) rest
            in
            if Chronon.is_forever hi then None
            else Some (Period.make Chronon.beginning (Chronon.succ hi)))

(* --- the batched operator pipeline --- *)

(* A row is the bindings accumulated so far, outermost variable first. *)
type row = Eval.binding list

type sink = { push : row array -> unit; close : unit -> unit }

(* Accumulate rows into batches of [Pipeline.batch_size] before pushing
   them downstream; [flush] sends a final short batch.  [span], when
   given, counts each pushed batch against the producing stage. *)
let row_batcher ?span down =
  let cap = Pipeline.batch_size in
  let buf = Array.make cap [] in
  let n = ref 0 in
  let flush () =
    if !n > 0 then begin
      let batch = Array.sub buf 0 !n in
      n := 0;
      (match span with Some s -> Trace.note_batch s | None -> ());
      down.push batch
    end
  in
  let push row =
    buf.(!n) <- row;
    incr n;
    if !n = cap then flush ()
  in
  (push, flush)

(* A stage that may yield several output rows per input row (nested inner
   scans, keyed probes): its span is entered for each input batch, so the
   inner access's page I/O lands on it, and its output is re-batched. *)
let expand_stage span expand down =
  let push_out, flush = row_batcher ~span down in
  {
    push =
      (fun rows ->
        Trace.enter span;
        Array.iter
          (fun r ->
            expand r (fun r' ->
                Trace.add_tuples span 1;
                push_out r'))
          rows;
        Trace.exit span);
    close =
      (fun () ->
        flush ();
        down.close ());
  }

(* The residual (multi-variable) conjuncts, applied batch-at-a-time; a
   shrunk batch flows on without re-batching. *)
let filter_stage ~now residual span down =
  {
    push =
      (fun rows ->
        Trace.enter span;
        let keep =
          List.filter
            (fun r ->
              List.for_all
                (check_conjunct { Eval.bindings = r; now })
                residual)
            (Array.to_list rows)
        in
        (match keep with
        | [] -> ()
        | _ ->
            let out = Array.of_list keep in
            Trace.add_tuples span (Array.length out);
            Trace.note_batch span;
            down.push out);
        Trace.exit span);
    close = down.close;
  }

let emit_stage span emit_row =
  {
    push =
      (fun rows ->
        Trace.enter span;
        Trace.add_tuples span (Array.length rows);
        Trace.note_batch span;
        Array.iter emit_row rows;
        Trace.exit span);
    close = (fun () -> ());
  }

(* The pipeline a plan runs as — shared by the executor (span labels) and
   [\explain] (rendering), so both name the same operators. *)
let build_pipeline ~sources ~conjuncts (r : retrieve) plan =
  let residual = Conjuncts.multi_var conjuncts in
  let agg = aggregate_mode r in
  let find v = List.find (fun s -> s.var = v) sources in
  let label v access = Plan.access_to_string v access in
  let key_name s =
    match Relation_file.key_attr s.rel with
    | Some i -> Schema.norm_name (Schema.attr (schema_of s) i).Schema.name
    | None -> "?"
  in
  let tail =
    (if residual = [] then [] else [ Pipeline.Filter (List.length residual) ])
    @ [ Pipeline.Emit agg ]
    @
    if r.coalesce then
      [ (if agg then Pipeline.Temporal_agg else Pipeline.Coalesce) ]
    else []
  in
  match plan with
  | Plan.Const_emit | Plan.Nested_general { vars = []; _ } ->
      { Pipeline.detaches = []; stages = [ Pipeline.Emit agg ] }
  | Plan.Single { var; access } ->
      { Pipeline.detaches = []; stages = Pipeline.Scan (label var access) :: tail }
  | Plan.Tuple_substitution { detached; substituted; probe_attr } ->
      {
        Pipeline.detaches = [ label detached (access_for conjuncts (find detached)) ];
        stages =
          Pipeline.Scan (Printf.sprintf "scan(%s')" detached)
          :: Pipeline.Probe
               (Printf.sprintf "%s.%s<-%s.%s" substituted
                  (key_name (find substituted))
                  detached
                  (Schema.norm_name probe_attr))
          :: tail;
      }
  | Plan.Temporal_join { outer; inner; cls } ->
      let on =
        match tjoin_partition (find outer) (find inner) ~outer ~inner conjuncts
        with
        | None -> ""
        | Some p -> " on " ^ p.tp_label
      in
      {
        Pipeline.detaches = [];
        stages =
          Pipeline.Scan (label outer (access_for conjuncts (find outer)))
          :: Pipeline.Tjoin
               (Printf.sprintf "tjoin[%s%s](%s)" (tj_class_label cls) on
                  (label inner (access_for conjuncts (find inner))))
          :: tail;
      }
  | Plan.Detach_both { outer; inner } ->
      {
        Pipeline.detaches =
          [
            label outer (access_for conjuncts (find outer));
            label inner (access_for conjuncts (find inner));
          ];
        stages =
          Pipeline.Scan (Printf.sprintf "scan(%s')" outer)
          :: Pipeline.Nest (Printf.sprintf "scan(%s')" inner)
          :: tail;
      }
  | Plan.Nested_scan { outer; inner } ->
      {
        Pipeline.detaches = [];
        stages =
          Pipeline.Scan (label outer (fenced_scan conjuncts (find outer)))
          :: Pipeline.Nest (label inner (fenced_scan conjuncts (find inner)))
          :: tail;
      }
  | Plan.Nested_general { vars = v1 :: rest; probe } ->
      let stage_for v ~innermost =
        match probe with
        | Some p when p.Plan.probe_var = v && innermost ->
            Pipeline.Probe
              (Printf.sprintf "%s.%s<-%s.%s" v
                 (Schema.norm_name p.Plan.probe_attr)
                 p.Plan.from_var
                 (Schema.norm_name p.Plan.from_attr))
        | _ -> Pipeline.Nest (label v (fenced_scan conjuncts (find v)))
      in
      let rec mids = function
        | [] -> []
        | [ v ] -> [ stage_for v ~innermost:true ]
        | v :: tl -> stage_for v ~innermost:false :: mids tl
      in
      {
        Pipeline.detaches = [];
        stages =
          Pipeline.Scan (label v1 (fenced_scan conjuncts (find v1)))
          :: (mids rest @ tail);
      }

let plan_retrieve ~sources (r : retrieve) =
  let sources = ordered_sources ~sources r in
  let conjuncts = Conjuncts.split r.where r.when_ in
  Plan.choose ~temporal_join:(temporal_join_enabled ())
      ~sources:(List.map source_info sources) ~conjuncts ()

let pipeline_retrieve ~sources (r : retrieve) =
  let sources = ordered_sources ~sources r in
  let conjuncts = Conjuncts.split r.where r.when_ in
  let plan = Plan.choose ~temporal_join:(temporal_join_enabled ())
      ~sources:(List.map source_info sources) ~conjuncts () in
  build_pipeline ~sources ~conjuncts r plan

(* The parallelism line [\explain] prints: the decision the executor
   would take for the plan's driving access under the currently
   configured worker count — including declines, so the admission floor
   is visible — plus a note for probe-driven inner sides, whose fan-out
   is decided per probe value at run time. *)
let explain_parallelism ~now ~sources (r : retrieve) =
  let sources = ordered_sources ~sources r in
  let conjuncts = Conjuncts.split r.where r.when_ in
  let plan = Plan.choose ~temporal_join:(temporal_join_enabled ())
      ~sources:(List.map source_info sources) ~conjuncts () in
  let workers = Pool.workers () in
  if workers <= 1 then Printf.sprintf "parallel: off (workers=%d)" workers
  else begin
    let window = as_of_window ~now r.as_of in
    let restriction_of var =
      { conjuncts = Conjuncts.for_var var conjuncts; window }
    in
    let find v = List.find (fun s -> s.var = v) sources in
    let driving =
      match plan with
      | Plan.Single { var; access } -> Some (var, access)
      | Plan.Nested_scan { outer; _ } ->
          Some (outer, fenced_scan conjuncts (find outer))
      | Plan.Temporal_join { outer; _ } ->
          Some (outer, access_for conjuncts (find outer))
      | Plan.Nested_general { vars = v :: _; _ } ->
          Some (v, fenced_scan conjuncts (find v))
      | _ -> None
    in
    let kind_of = function
      | Relation_file.Full_scan -> "scan"
      | Relation_file.Key_lookup _ -> "probe"
      | Relation_file.Key_range _ -> "range"
    in
    let main =
      match driving with
      | None ->
          Printf.sprintf "parallel: off (workers=%d, no driving scan)" workers
      | Some (v, access) -> (
          match
            parallel_decision ~now ~restriction:(restriction_of v) ~access
              (find v)
          with
          | Par_off -> Printf.sprintf "parallel: off (workers=%d)" workers
          | Par_unavailable ->
              Printf.sprintf "parallel: off (workers=%d, %s does not fan out)"
                workers v
          | Par_declined { pages; floor } ->
              Printf.sprintf
                "parallel: declined (too small): %s has %d post-prune \
                 page%s, floor %d"
                v pages
                (if pages = 1 then "" else "s")
                floor
          | Par_go { path; parts; pages; pruned; _ } ->
              Printf.sprintf
                "parallel: %d workers, %s(%s) in %d partition%s (%d live \
                 page%s, %d shard-pruned)"
                workers (kind_of path) v parts
                (if parts = 1 then "" else "s")
                pages
                (if pages = 1 then "" else "s")
                pruned)
    in
    let probe_note =
      match plan with
      | Plan.Tuple_substitution { substituted; _ } -> Some substituted
      | Plan.Nested_general { probe = Some p; _ } -> Some p.Plan.probe_var
      | _ -> None
    in
    match probe_note with
    | Some v ->
        main
        ^ Printf.sprintf
            "\nparallel probes: %s decided per key (floor %d pages)" v
            (parallel_min_pages ())
    | None -> main
  end

let run_retrieve ~now ~sources (r : retrieve) ~on_tuple =
  let sources = ordered_sources ~sources r in
  let conjuncts = Conjuncts.split r.where r.when_ in
  let window = as_of_window ~now r.as_of in
  let restriction_of var =
    { conjuncts = Conjuncts.for_var var conjuncts; window }
  in
  let residual = Conjuncts.multi_var conjuncts in
  let access_for = access_for conjuncts in
  let fenced_scan = fenced_scan conjuncts in
  let fence_window_for s ~restriction =
    match Plan.fence_spec (source_info s) conjuncts with
    | Some (transaction, valid_const) ->
        resolve_window ~now ~restriction ~transaction ~valid_const
    | None -> None
  in
  let plan = Plan.choose ~temporal_join:(temporal_join_enabled ())
      ~sources:(List.map source_info sources) ~conjuncts () in
  let pipe = build_pipeline ~sources ~conjuncts r plan in
  let result = result_schema ~sources r in
  (* I/O accounting: deltas on the sources plus everything the temporaries
     do. *)
  let before =
    List.map (fun s -> Io_stats.snapshot (Relation_file.stats s.rel)) sources
  in
  let temps = ref [] in
  let count = ref 0 in
  (* attributes needed downstream of a detachment *)
  let needed_for var =
    let acc = ref [] in
    List.iter (fun t -> attrs_of_expr acc t.value) r.targets;
    List.iter
      (function
        | Conjuncts.Where p -> attrs_of_pred acc p
        | Conjuncts.When _ -> ())
      residual;
    List.filter_map
      (fun (v, a) -> if v = var then Some (Schema.norm_name a) else None)
      !acc
  in
  let agg_mode = aggregate_mode r in
  let accumulators =
    if agg_mode then
      List.fold_left (fun acc t -> aggregate_nodes acc t.value) [] r.targets
    else []
  in
  let seen = if r.unique then Some (Hashtbl.create 64) else None in
  (* [retrieve coalesced]: non-aggregate rows are staged whole and merged
     at pipeline close; aggregate rows contribute (period, operand values)
     triples that the temporal-aggregation sweep folds per elementary
     interval. *)
  let coalesce_staged = ref [] in
  let agg_contribs = ref [] in
  if r.coalesce then Metric.incr m_coalesce_statements;
  let participating_overlap (bindings : Eval.binding list) =
    match
      List.filter_map
        (fun (b : Eval.binding) -> Tuple.valid_period b.schema b.tuple)
        bindings
    with
    | [] -> None
    | p :: rest ->
        List.fold_left
          (fun acc q ->
            match acc with None -> None | Some a -> Period.overlap a q)
          (Some p) rest
  in
  let deliver tuple =
    match seen with
    | None ->
        incr count;
        on_tuple tuple
    | Some tbl ->
        let key =
          String.concat "\x00"
            (Array.to_list (Array.map Value.to_string tuple))
        in
        if not (Hashtbl.mem tbl key) then begin
          Hashtbl.add tbl key ();
          incr count;
          on_tuple tuple
        end
  in
  let binding s tuple = { Eval.var = s.var; schema = schema_of s; tuple } in
  (* By-aggregates: one fold table per distinct node, grouped on the
     by-values, computed up front over the node's whole relation.  Like
     Quel's aggregate functions they are independent of the outer where
     clause; only the rollback window applies (a query must never see
     versions outside its transaction-time view).  The scan's page reads
     count toward the query's input cost. *)
  let by_agg_tables =
    let rec collect acc = function
      | Eagg (agg, operand, (_ :: _ as by)) as node ->
          if List.exists (fun (n, _, _, _, _) -> n = node) acc then acc
          else (node, agg, operand, by, Hashtbl.create 16) :: acc
      | Eagg (_, _, []) | Eattr _ | Eint _ | Efloat _ | Estring _ -> acc
      | Ebinop (_, a, b) -> collect (collect acc a) b
      | Euminus e -> collect acc e
    in
    List.fold_left (fun acc t -> collect acc t.value) [] r.targets
  in
  let group_key ctx by =
    String.concat "\x00"
      (List.map (fun e -> Value.to_string (Eval.expr ctx e)) by)
  in
  (* The root span covers everything that performs page I/O on behalf of
     this query: the by-aggregate pre-scans, the plan operators, and the
     final flush of the temporaries.  [Io_stats] charges every page to the
     innermost active span, so the tree's read total equals the query's
     [input_reads]. *)
  let qnode = Trace.start ("retrieve " ^ Plan.to_string plan) in
  Fun.protect ~finally:(fun () -> Trace.finish qnode) @@ fun () ->
  List.iter
    (fun (node, agg, operand, by, groups) ->
      let var =
        match by with
        | Eattr (v, _) :: _ -> v
        | _ -> errf "by-list entries must be attribute references"
      in
      let s = List.find (fun s -> s.var = var) sources in
      let schema = schema_of s in
      Trace.within (Printf.sprintf "agg-scan(%s)" var) (fun tn ->
          Relation_file.scan s.rel (fun _ tuple ->
              if as_of_ok window schema tuple then begin
                Trace.add_tuples tn 1;
                let ctx = { Eval.bindings = [ binding s tuple ]; now } in
                let key = group_key ctx by in
                let accum =
                  match Hashtbl.find_opt groups key with
                  | Some a -> a
                  | None ->
                      let a = fresh_accumulator node agg operand in
                      Hashtbl.add groups key a;
                      a
                in
                accumulate ctx accum
              end)))
    by_agg_tables;
  let rec eval_target ctx = function
    | Eagg (_, _, _ :: _) as node -> (
        let _, _, _, by, groups =
          List.find (fun (n, _, _, _, _) -> n = node) by_agg_tables
        in
        match Hashtbl.find_opt groups (group_key ctx by) with
        | Some accum -> finish accum
        | None -> errf "by-aggregate group not found for this binding")
    | Ebinop (op, a, b) ->
        Eval.apply_binop op (eval_target ctx a) (eval_target ctx b)
    | Euminus e -> Eval.negate (eval_target ctx e)
    | (Eattr _ | Eint _ | Efloat _ | Estring _ | Eagg (_, _, [])) as e ->
        Eval.expr ctx e
  in
  (* Deliver one row (the residual conjuncts were applied by the filter
     stage; a row that reaches here joins the result). *)
  let emit_row (row : row) =
    let ctx = { Eval.bindings = row; now } in
    if agg_mode then begin
      if r.coalesce then begin
        match participating_overlap ctx.Eval.bindings with
        | None -> ()
        | Some p ->
            let vals =
              List.map (fun a -> Eval.expr ctx a.operand) accumulators
              |> Array.of_list
            in
            agg_contribs :=
              (Period.from_ p, period_end_excl p, vals) :: !agg_contribs
      end
      else List.iter (accumulate ctx) accumulators
    end
    else begin
      let user_values =
        List.map (fun t -> eval_target ctx t.value) r.targets |> Array.of_list
      in
      let time_values =
        match Schema.db_type result with
        | Db_type.Static -> Some [||]
        | Db_type.Historical Db_type.Event -> (
            match r.valid with
            | Some (Valid_event e) -> (
                match Eval.tempexpr ctx e with
                | Some p -> Some [| Value.Time (Period.from_ p) |]
                | None -> None)
            | _ -> errf "event result without a valid-at clause")
        | Db_type.Historical Db_type.Interval -> (
            let exclusive_end p =
              if Period.is_event p then Chronon.succ (Period.from_ p)
              else Period.to_ p
            in
            match r.valid with
            | Some (Valid_interval (e1, e2)) -> (
                match (Eval.tempexpr ctx e1, Eval.exclusive_end ctx e2) with
                | Some p1, Some to_ ->
                    let from_ = Period.from_ p1 in
                    if Chronon.compare to_ from_ < 0 then None
                    else Some [| Value.Time from_; Value.Time to_ |]
                | _ -> None)
            | _ -> (
                (* default: the overlap of the participating valid periods *)
                let periods =
                  List.filter_map
                    (fun (b : Eval.binding) ->
                      Tuple.valid_period b.schema b.tuple)
                    ctx.Eval.bindings
                in
                match periods with
                | [] -> Some [| Value.Time now; Value.Time Chronon.forever |]
                | p :: rest ->
                    let overlap =
                      List.fold_left
                        (fun acc q ->
                          match acc with
                          | None -> None
                          | Some a -> Period.overlap a q)
                        (Some p) rest
                    in
                    (match overlap with
                    | Some p ->
                        Some
                          [| Value.Time (Period.from_ p);
                             Value.Time (exclusive_end p) |]
                    | None -> None)))
        | Db_type.Rollback | Db_type.Temporal _ -> assert false
      in
      match time_values with
      | Some tv ->
          let tuple = Array.append user_values tv in
          if r.coalesce then coalesce_staged := tuple :: !coalesce_staged
          else deliver tuple
      | None -> ()
    end
  in
  (* Coalescing (non-aggregate): merge value-equivalent staged rows whose
     periods touch or overlap into maximal periods.  The output is
     canonical — sorted by (user values, valid-from) and minimal (no two
     remaining value-equivalent rows touch) — so it is independent of the
     order the plan produced the rows in. *)
  let finalize_coalesce cspan =
    let rows = !coalesce_staged in
    Metric.add m_coalesce_rows_in (List.length rows);
    let n = List.length r.targets in
    let chron = function Value.Time t -> t | _ -> assert false in
    let cmp_user (a : Tuple.t) (b : Tuple.t) =
      let rec go i =
        if i >= n then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in
    let cmp a b =
      let c = cmp_user a b in
      if c <> 0 then c else Chronon.compare (chron a.(n)) (chron b.(n))
    in
    let sorted = List.sort cmp rows in
    let out = ref [] in
    let flush = function
      | None -> ()
      | Some (u, f, t) -> out := (u, f, t) :: !out
    in
    let cur = ref None in
    List.iter
      (fun (row : Tuple.t) ->
        let f = chron row.(n) and t = chron row.(n + 1) in
        match !cur with
        | Some (u, cf, ct) when cmp_user u row = 0 && Chronon.compare f ct <= 0
          ->
            cur := Some (u, cf, Chronon.max ct t)
        | prev ->
            flush prev;
            cur := Some (row, f, t))
      sorted;
    flush !cur;
    List.iter
      (fun (u, f, t) ->
        let tuple = Array.copy u in
        tuple.(n) <- Value.Time f;
        tuple.(n + 1) <- Value.Time t;
        Metric.incr m_coalesce_rows_out;
        Trace.add_tuples cspan 1;
        deliver tuple)
      (List.rev !out)
  in
  (* Temporal aggregation (snapshot semantics): every result chronon [c]
     carries the aggregate folded over exactly the contributions whose
     period contains [c] — i.e. the aggregate of the database snapshot at
     [c].  Sweep the elementary intervals between contribution endpoints,
     fold fresh accumulators per interval, then merge adjacent intervals
     with identical values into maximal constant intervals. *)
  let finalize_temporal_agg cspan =
    let contribs = Array.of_list (List.rev !agg_contribs) in
    Metric.add m_coalesce_rows_in (Array.length contribs);
    if Array.length contribs > 0 then begin
      let module Cs = Set.Make (struct
        type t = Chronon.t

        let compare = Chronon.compare
      end) in
      let bounds =
        Array.fold_left
          (fun acc (f, t, _) -> Cs.add f (Cs.add t acc))
          Cs.empty contribs
      in
      let bounds = Array.of_list (Cs.elements bounds) in
      let out = ref [] in
      for k = 0 to Array.length bounds - 2 do
        let lo = bounds.(k) and hi = bounds.(k + 1) in
        let active =
          Array.to_seq contribs
          |> Seq.filter (fun (f, t, _) ->
                 Chronon.compare f lo <= 0 && Chronon.compare lo t < 0)
          |> List.of_seq
        in
        if active <> [] then begin
          let accs =
            List.map
              (fun a -> fresh_accumulator a.node a.agg a.operand)
              accumulators
          in
          List.iter
            (fun (_, _, vals) ->
              List.iteri (fun j a -> accumulate_value vals.(j) a) accs)
            active;
          let user =
            List.map (fun t -> fold_target accs t.value) r.targets
            |> Array.of_list
          in
          out := (lo, hi, user) :: !out
        end
      done;
      let merged =
        List.fold_left
          (fun acc (lo, hi, user) ->
            match acc with
            | (plo, phi, puser) :: tl
              when Chronon.compare phi lo = 0 && Stdlib.compare puser user = 0
              ->
                (plo, hi, puser) :: tl
            | _ -> (lo, hi, user) :: acc)
          []
          (List.rev !out)
      in
      List.iter
        (fun (lo, hi, user) ->
          Metric.incr m_coalesce_rows_out;
          Trace.add_tuples cspan 1;
          deliver
            (Array.append user [| Value.Time lo; Value.Time hi |]))
        (List.rev merged)
    end
  in
  (* The Filter?/Emit tail of the pipeline, with spans chained under
     [parent] so the span tree mirrors the stage order. *)
  let tail_sink parent =
    let tail =
      List.filter
        (function
          | Pipeline.Filter _ | Pipeline.Emit _ | Pipeline.Coalesce
          | Pipeline.Temporal_agg ->
              true
          | _ -> false)
        pipe.Pipeline.stages
    in
    (* A trailing coalesce/temporal-agg stage buffers inside [emit_row]
       and finalizes when the pipeline closes; its span sits under the
       emit span and performs no page I/O, so the subtree-sum invariant
       is untouched. *)
    let with_post espan sink = function
      | None -> sink
      | Some post ->
          let cspan = Trace.branch espan (Pipeline.stage_label post) in
          let finalize =
            match post with
            | Pipeline.Temporal_agg -> finalize_temporal_agg
            | _ -> finalize_coalesce
          in
          {
            push = sink.push;
            close =
              (fun () ->
                sink.close ();
                Trace.enter cspan;
                finalize cspan;
                Trace.exit cspan);
          }
    in
    match tail with
    | [ (Pipeline.Emit _ as e) ] ->
        emit_stage (Trace.branch parent (Pipeline.stage_label e)) emit_row
    | [ (Pipeline.Emit _ as e); ((Pipeline.Coalesce | Pipeline.Temporal_agg) as c) ]
      ->
        let espan = Trace.branch parent (Pipeline.stage_label e) in
        with_post espan (emit_stage espan emit_row) (Some c)
    | [ (Pipeline.Filter _ as fl); (Pipeline.Emit _ as e) ] ->
        let fspan = Trace.branch parent (Pipeline.stage_label fl) in
        let espan = Trace.branch fspan (Pipeline.stage_label e) in
        filter_stage ~now residual fspan (emit_stage espan emit_row)
    | [
        (Pipeline.Filter _ as fl);
        (Pipeline.Emit _ as e);
        ((Pipeline.Coalesce | Pipeline.Temporal_agg) as c);
      ] ->
        let fspan = Trace.branch parent (Pipeline.stage_label fl) in
        let espan = Trace.branch fspan (Pipeline.stage_label e) in
        with_post espan
          (filter_stage ~now residual fspan (emit_stage espan emit_row))
          (Some c)
    | _ -> assert false
  in
  let traced_detach ~restriction ~access ~needed label s =
    Trace.within (Pipeline.detach_label label) (fun tn ->
        let temp, inserted = detach ~now ~restriction ~access ~needed s in
        Trace.add_tuples tn inserted;
        temp)
  in
  let scan_stage_label () =
    match pipe.Pipeline.stages with
    | Pipeline.Scan l :: _ -> l
    | _ -> assert false
  in
  let stage_at i = List.nth pipe.Pipeline.stages i in
  let detach_access_label i = List.nth pipe.Pipeline.detaches i in
  (* Drive rows from a source iterator through the pipeline: the scan span
     stays entered for the whole drive (so its cursor's page pulls charge
     to it); downstream stages enter their spans once per batch. *)
  let drive label build_rest produce =
    Trace.within label (fun span ->
        let sink = build_rest span in
        let push, flush = row_batcher ~span sink in
        produce span push;
        flush ();
        sink.close ())
  in
  (match plan with
  | Plan.Const_emit | Plan.Nested_general { vars = []; _ } ->
      let sink = tail_sink qnode in
      sink.push [| [] |];
      sink.close ()
  | Plan.Single { var; access } ->
      let s = List.find (fun s -> s.var = var) sources in
      drive (scan_stage_label ()) tail_sink (fun span push ->
          scan_restricted ~now ~restriction:(restriction_of var) ~access s
            (fun tuple ->
              Trace.add_tuples span 1;
              push [ binding s tuple ]))
  | Plan.Tuple_substitution { detached; substituted; probe_attr } ->
      let sd = List.find (fun s -> s.var = detached) sources in
      let si = List.find (fun s -> s.var = substituted) sources in
      let needed =
        Schema.norm_name probe_attr :: needed_for detached
      in
      let temp =
        traced_detach ~restriction:(restriction_of detached)
          ~access:(access_for sd) ~needed (detach_access_label 0) sd
      in
      temps := temp :: !temps;
      let temp_source = { var = detached; rel = temp } in
      let probe_index =
        match Schema.index_of (Relation_file.schema temp) probe_attr with
        | Some i -> i
        | None -> assert false
      in
      let inner_key_attr =
        match Relation_file.key_attr si.rel with
        | Some i -> (Schema.attr (schema_of si) i).Schema.name
        | None -> assert false
      in
      let inner_restriction = restriction_of substituted in
      let inner_window = fence_window_for si ~restriction:inner_restriction in
      let inner_visit =
        restricted_visitor ~now ~restriction:inner_restriction si
      in
      let run_probe = probe_runner ~window:inner_window si inner_visit in
      drive (scan_stage_label ())
        (fun scan_span ->
          let pspan =
            Trace.branch scan_span (Pipeline.stage_label (stage_at 1))
          in
          expand_stage pspan
            (fun row push' ->
              let outer_tuple = (List.hd row).Eval.tuple in
              let probe =
                coerce_probe (schema_of si) inner_key_attr
                  outer_tuple.(probe_index) ~now
              in
              run_probe probe (fun inner_tuple ->
                  push' (row @ [ binding si inner_tuple ])))
            (tail_sink pspan))
        (fun span push ->
          Relation_file.scan temp (fun _ ot ->
              Trace.add_tuples span 1;
              push [ binding temp_source ot ]))
  | Plan.Temporal_join { outer; inner; cls = _ } ->
      let so = List.find (fun s -> s.var = outer) sources in
      let si = List.find (fun s -> s.var = inner) sources in
      let spec =
        match tjoin_spec conjuncts ~outer ~inner with
        | Some s -> s
        | None -> assert false (* the plan was chosen off this conjunct *)
      in
      let part = tjoin_partition so si ~outer ~inner conjuncts in
      (* A tuple with no valid period binds the whole lifetime, mirroring
         {!Eval.valid_of_tuple}. *)
      let valid_of s tuple =
        match Tuple.valid_period (schema_of s) tuple with
        | Some p -> p
        | None -> Period.make Chronon.beginning Chronon.forever
      in
      Metric.incr m_tjoin_statements;
      drive (scan_stage_label ())
        (fun scan_span ->
          let jspan =
            Trace.branch scan_span (Pipeline.stage_label (stage_at 1))
          in
          let down = tail_sink jspan in
          let outer_rows = ref [] in
          let close () =
            let outer_arr = Array.of_list (List.rev !outer_rows) in
            Trace.enter jspan;
            Fun.protect ~finally:(fun () -> Trace.exit jspan) @@ fun () ->
            let outer_tuple row = (List.hd row).Eval.tuple in
            let outer_periods =
              Array.map
                (fun row ->
                  Tjoin.reduce spec.tj_outer_ep (valid_of so (outer_tuple row)))
                outer_arr
            in
            (* Inner side materializes under the join span (its page pulls
               and shard partitions charge here), fence-narrowed to the
               outer side's valid envelope. *)
            let inner_tuples = ref [] in
            if Array.length outer_arr > 0 then begin
              let ri = restriction_of inner in
              let window0, path =
                resolve_access ~now ~restriction:ri ~access:(access_for si) si
              in
              let envelope =
                tjoin_envelope spec (Array.to_list outer_periods)
              in
              let window = Time_fence.narrow_valid window0 envelope in
              scan_with_window ~now ~restriction:ri ~window ~path si (fun t ->
                  inner_tuples := t :: !inner_tuples)
            end;
            let inner_arr = Array.of_list (List.rev !inner_tuples) in
            Metric.add m_tjoin_input_rows
              (Array.length outer_arr + Array.length inner_arr);
            let inner_periods =
              Array.map
                (fun t -> Tjoin.reduce spec.tj_inner_ep (valid_of si t))
                inner_arr
            in
            (* Candidate pairs via the interval sweep, hash-partitioned on
               the equi-join keys when the predicate has any; pairs come
               back as (outer index, inner index). *)
            let run o_items i_items =
              if spec.tj_outer_is_left then
                Tjoin.join ~cls:spec.tj_class ~left:o_items ~right:i_items
              else
                Tjoin.join ~cls:spec.tj_class ~left:i_items ~right:o_items
                |> List.map (fun (l, r) -> (r, l))
            in
            let o_tagged = Array.mapi (fun i p -> (p, i)) outer_periods in
            let i_tagged = Array.mapi (fun i p -> (p, i)) inner_periods in
            let raw_pairs =
              match part with
              | None -> run o_tagged i_tagged
              | Some p ->
                  let groups = Hashtbl.create 64 in
                  let add k side item =
                    let o, i =
                      Option.value
                        (Hashtbl.find_opt groups k)
                        ~default:([], [])
                    in
                    Hashtbl.replace groups k
                      (match side with
                      | `O -> (item :: o, i)
                      | `I -> (o, item :: i))
                  in
                  Array.iter
                    (fun (per, i) ->
                      add
                        (p.tp_outer_key (outer_tuple outer_arr.(i)))
                        `O (per, i))
                    o_tagged;
                  Array.iter
                    (fun (per, i) ->
                      add (p.tp_inner_key inner_arr.(i)) `I (per, i))
                    i_tagged;
                  Hashtbl.fold
                    (fun _ (os, is_) acc ->
                      match (os, is_) with
                      | [], _ | _, [] -> acc
                      | _ ->
                          run (Array.of_list os) (Array.of_list is_) @ acc)
                    groups []
            in
            (* Sorting by (outer, inner) index restores the nested-loop
               row order, so results are bit-identical to the fallback. *)
            let pairs = List.sort compare raw_pairs in
            Metric.add m_tjoin_pairs (List.length pairs);
            let push_out, flush_out = row_batcher ~span:jspan down in
            List.iter
              (fun (oi, ii) ->
                Trace.add_tuples jspan 1;
                push_out (outer_arr.(oi) @ [ binding si inner_arr.(ii) ]))
              pairs;
            flush_out ()
          in
          {
            push =
              (fun rows ->
                Array.iter (fun row -> outer_rows := row :: !outer_rows) rows);
            close =
              (fun () ->
                close ();
                down.close ());
          })
        (fun span push ->
          scan_restricted ~now ~restriction:(restriction_of outer)
            ~access:(access_for so) so
            (fun t ->
              Trace.add_tuples span 1;
              push [ binding so t ]))
  | Plan.Detach_both { outer; inner } ->
      let so = List.find (fun s -> s.var = outer) sources in
      let si = List.find (fun s -> s.var = inner) sources in
      let t_outer =
        traced_detach ~restriction:(restriction_of outer)
          ~access:(access_for so) ~needed:(needed_for outer)
          (detach_access_label 0) so
      in
      let t_inner =
        traced_detach ~restriction:(restriction_of inner)
          ~access:(access_for si) ~needed:(needed_for inner)
          (detach_access_label 1) si
      in
      temps := t_outer :: t_inner :: !temps;
      let os = { var = outer; rel = t_outer } in
      let is_ = { var = inner; rel = t_inner } in
      drive (scan_stage_label ())
        (fun scan_span ->
          let nspan =
            Trace.branch scan_span (Pipeline.stage_label (stage_at 1))
          in
          expand_stage nspan
            (fun row push' ->
              Relation_file.scan t_inner (fun _ it ->
                  push' (row @ [ binding is_ it ])))
            (tail_sink nspan))
        (fun span push ->
          Relation_file.scan t_outer (fun _ ot ->
              Trace.add_tuples span 1;
              push [ binding os ot ]))
  | Plan.Nested_scan { outer; inner } ->
      let so = List.find (fun s -> s.var = outer) sources in
      let si = List.find (fun s -> s.var = inner) sources in
      let ro = restriction_of outer and ri = restriction_of inner in
      drive (scan_stage_label ())
        (fun scan_span ->
          let nspan =
            Trace.branch scan_span (Pipeline.stage_label (stage_at 1))
          in
          expand_stage nspan
            (fun row push' ->
              iter_restricted ~now ~restriction:ri ~access:(fenced_scan si) si
                (fun it -> push' (row @ [ binding si it ])))
            (tail_sink nspan))
        (fun span push ->
          scan_restricted ~now ~restriction:ro ~access:(fenced_scan so) so
            (fun ot ->
              Trace.add_tuples span 1;
              push [ binding so ot ]))
  | Plan.Nested_general { vars = v1 :: rest; probe } ->
      let s1 = List.find (fun s -> s.var = v1) sources in
      drive (scan_stage_label ())
        (fun scan_span ->
          (* One stage per remaining variable, spans chained so the tree
             mirrors the loop structure; the innermost variable probes its
             key with the enclosing equi-join binding when the plan found
             one (the tuple substitution move, one row at a time). *)
          let rec build parent i = function
            | [] -> tail_sink parent
            | v :: tl ->
                let s = List.find (fun s -> s.var = v) sources in
                let span =
                  Trace.branch parent (Pipeline.stage_label (stage_at i))
                in
                let down = build span (i + 1) tl in
                let expand =
                  match probe with
                  | Some p when p.Plan.probe_var = v && tl = [] ->
                      let restriction = restriction_of v in
                      let window = fence_window_for s ~restriction in
                      let visit = restricted_visitor ~now ~restriction s in
                      let run_probe = probe_runner ~window s visit in
                      fun row push' ->
                        let b =
                          List.find
                            (fun (b : Eval.binding) ->
                              b.Eval.var = p.Plan.from_var)
                            row
                        in
                        let idx =
                          match
                            Schema.index_of b.Eval.schema p.Plan.from_attr
                          with
                          | Some i -> i
                          | None ->
                              errf "probe attribute %s.%s not found"
                                p.Plan.from_var p.Plan.from_attr
                        in
                        let probe_val =
                          coerce_probe (schema_of s) p.Plan.probe_attr
                            b.Eval.tuple.(idx) ~now
                        in
                        run_probe probe_val (fun t ->
                            push' (row @ [ binding s t ]))
                  | _ ->
                      fun row push' ->
                        iter_restricted ~now ~restriction:(restriction_of v)
                          ~access:(fenced_scan s) s
                          (fun t -> push' (row @ [ binding s t ]))
                in
                expand_stage span expand down
          in
          build scan_span 1 rest)
        (fun span push ->
          scan_restricted ~now ~restriction:(restriction_of v1)
            ~access:(fenced_scan s1) s1
            (fun t ->
              Trace.add_tuples span 1;
              push [ binding s1 t ])));
  if agg_mode && not r.coalesce then
    deliver
      (List.map (fun t -> fold_target accumulators t.value) r.targets
      |> Array.of_list);
  let after =
    List.map (fun s -> Io_stats.snapshot (Relation_file.stats s.rel)) sources
  in
  let source_reads =
    List.fold_left2
      (fun acc b a -> acc + (Io_stats.diff ~before:b ~after:a).Io_stats.reads)
      0 before after
  in
  let temp_io =
    List.fold_left
      (fun (r, w) t ->
        Tdb_storage.Buffer_pool.flush (Relation_file.pool t);
        let s = Io_stats.snapshot (Relation_file.stats t) in
        (r + s.Io_stats.reads, w + s.Io_stats.writes))
      (0, 0) !temps
  in
  List.iter Relation_file.close !temps;
  {
    schema = result;
    count = !count;
    io =
      {
        input_reads = source_reads + fst temp_io;
        output_writes = snd temp_io;
      };
    plan;
    trace = Trace.result qnode;
  }
