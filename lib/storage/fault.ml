exception Crashed

let m_injected kind =
  Tdb_obs.Metric.counter ~labels:[ ("kind", kind) ] "tdb_fault_injections_total"

let inject kind =
  Tdb_obs.Metric.incr (m_injected kind);
  Tdb_obs.Trace.event "fault_injected" ~attrs:[ ("kind", kind) ]

type t = {
  seed : int;
  mutable reads : int;
  mutable writes : int;
  mutable dead : bool;
  crash_after_write : int option;
  crash_at_write : int option;
  torn_write_at : int option;
  eio_write_at : int option;
  eio_read_at : int option;
  short_read_at : int option;
}

let create ?(seed = 0) ?crash_after_write ?crash_at_write ?torn_write_at
    ?eio_write_at ?eio_read_at ?short_read_at () =
  let positive name = function
    | Some n when n < 1 ->
        invalid_arg (Printf.sprintf "Fault.create: %s must be >= 1" name)
    | v -> v
  in
  {
    seed;
    reads = 0;
    writes = 0;
    dead = false;
    crash_after_write = positive "crash_after_write" crash_after_write;
    crash_at_write = positive "crash_at_write" crash_at_write;
    torn_write_at = positive "torn_write_at" torn_write_at;
    eio_write_at = positive "eio_write_at" eio_write_at;
    eio_read_at = positive "eio_read_at" eio_read_at;
    short_read_at = positive "short_read_at" short_read_at;
  }

let reads t = t.reads
let writes t = t.writes
let is_dead t = t.dead
let kill t = t.dead <- true

let check_alive t = if t.dead then raise Crashed

(* splitmix64-style finalizer: a deterministic value from (seed, counter),
   independent of any global Random state. *)
let mix t n =
  let z = ref (t.seed * 0x9E3779B9 + (n * 0xBF58476D) + 0x94D049BB) in
  z := !z lxor (!z lsr 30);
  z := !z * 0xBF58476D;
  z := !z lxor (!z lsr 27);
  z := !z * 0x94D049BB;
  z := !z lxor (!z lsr 31);
  !z land max_int

(* How many bytes of a torn write reach the disk: at least 1 and at most
   len - 1, so a tear is never a no-op and never a complete write. *)
let torn_bytes t n ~len =
  if len <= 1 then 0 else 1 + (mix t n mod (len - 1))

let on_read t ~len =
  check_alive t;
  t.reads <- t.reads + 1;
  if t.eio_read_at = Some t.reads then begin
    inject "eio_read";
    `Eio
  end
  else if t.short_read_at = Some t.reads then begin
    inject "short_read";
    `Short (mix t t.reads mod len)
  end
  else `Ok

let on_write t ~len =
  check_alive t;
  t.writes <- t.writes + 1;
  if t.crash_at_write = Some t.writes then begin
    t.dead <- true;
    inject "crash_at_write";
    `Crash (torn_bytes t t.writes ~len)
  end
  else if t.crash_after_write = Some t.writes then begin
    t.dead <- true;
    inject "crash_after_write";
    `Crash_after
  end
  else if t.torn_write_at = Some t.writes then begin
    inject "torn_write";
    `Torn (torn_bytes t t.writes ~len)
  end
  else if t.eio_write_at = Some t.writes then begin
    inject "eio_write";
    `Eio
  end
  else `Ok
