(** The write-ahead intent journal: statement-atomic durability.

    One journal file per database ([journal.tdb]) makes every mutating
    statement atomic with respect to crashes.  The protocol is classic
    undo/redo logging at page granularity, scoped to single statements
    (the engine serializes statements, so at most one is in flight):

    - [begin_statement] opens a statement and stamps it with a
      monotonically increasing sequence number (the journal's epoch);
    - the buffer pools report every page they are about to dirty; the
      journal captures a {e pre-image} of the first touch of each page
      (the undo record) and notes the file's {e base extent} on first
      contact (so undo can truncate pages the statement appended);
    - before any data page reaches its file the buffered journal records
      are flushed and fsynced ({!ensure_durable} — the write-ahead rule,
      honoured by the buffer pool's flush path, so mid-statement
      evictions are safe even with the paper's 1-frame pools);
    - [commit_statement] appends a {e post-image} of every page the
      statement dirtied plus each touched file's {e final extent} (the
      redo records), then a commit record, and performs one group fsync.

    Recovery ({!recover}) runs before any relation file is attached: it
    parses the journal up to the first torn or checksum-failing record,
    rolls back statements without an intact commit record (pre-images
    restored newest-first, files truncated to their base extents) and
    replays committed ones (post-images re-applied oldest-first, extents
    restored), leaving every file exactly on a statement boundary.  The
    journal is then truncated.  Checkpoints ({!checkpoint}, driven by
    [Database.sync] once data, catalog and clock are durable) also
    truncate it, so the journal never outgrows one checkpoint interval.

    Every record is CRC-32-guarded and stamped with its statement
    sequence number; a torn journal tail therefore parses as "statement
    never committed" and rolls back — exactly the right answer. *)

type t

val open_ : dir:string -> ?fault:Fault.t -> unit -> t
(** Opens (creating if missing) [dir]/journal.tdb for appending.  The
    fault plan, shared with the database's disks, is consulted on every
    journal flush so crash sweeps cover journal writes too. *)

val path : dir:string -> string
(** The journal file's path under [dir]. *)

(* --- registration ---------------------------------------------------- *)

val register_file :
  t -> file:string -> image:(int -> bytes) -> npages:(unit -> int) -> unit
(** Registers a relation under its catalog name ([file] maps to
    [<dir>/<file>.pages] at recovery).  [image page] must return the
    page's {e current} logical content as a sealed, checksummed image
    (resident frame or disk); [npages] the file's current page count.
    Both are consulted when capturing post-images and extents. *)

val unregister_file : t -> file:string -> unit

(* --- the statement protocol ------------------------------------------ *)

val in_statement : t -> bool

val begin_statement : t -> unit
(** Opens a statement.  If one is somehow still open (a caller caught an
    error and moved on), it is committed first: its partial effects are
    what the in-memory database now shows, so durability must agree. *)

val commit_statement : t -> unit
(** Appends redo records and the commit record, then group-fsyncs. *)

val note_page_write : t -> file:string -> page:int -> pre:(unit -> bytes) -> unit
(** The buffer pool is about to dirty [page].  On the statement's first
    touch of the page, [pre ()] (a sealed copy of the current content) is
    journalled as the undo record; later touches are free.  Outside a
    statement this is a no-op (setup writes are not journalled). *)

val note_extend : t -> file:string -> unit
(** The file is about to grow by one page: records the base extent on
    first contact.  The extension itself needs no pre-image — a fresh
    page holds no records, and undo truncates back to the base extent. *)

val note_fresh_page : t -> file:string -> page:int -> unit
(** A page was just allocated: it needs no pre-image (see above) but
    does need a post-image at commit. *)

val note_truncate : t -> file:string -> unit
(** The file is about to be truncated and rebuilt (a [modify]
    reorganization): captures a pre-image of {e every} live page plus
    the base extent, so undo can reconstruct the whole file.  Callers
    must {!ensure_durable} before actually truncating. *)

val ensure_durable : t -> unit
(** Flushes buffered records and fsyncs if anything new was written.
    Must run before any journalled file write reaches stable storage. *)

val checkpoint : t -> unit
(** Truncates the journal — call only once every journalled file, the
    catalog and the clock are durable.  A no-op while a statement is
    open (a statement-internal sync must not discard its undo records). *)

val close : t -> unit
val abandon : t -> unit
(** [close] checkpoints first; [abandon] just drops the descriptor
    (simulated process death). *)

(* --- recovery -------------------------------------------------------- *)

type report = {
  statements : int;  (** statements found in the journal *)
  replayed : int;  (** committed statements whose redo records were re-applied *)
  rolled_back : int;  (** uncommitted statements undone *)
  pages_restored : int;  (** pre-images written back by undo *)
  pages_replayed : int;  (** post-images re-applied by redo *)
  files_resized : int;  (** files truncated or extended to a recorded extent *)
}

val pp_report : Format.formatter -> report -> unit

val recover : dir:string -> report option
(** Replays and truncates [dir]'s journal as described above, using raw
    file I/O (no fault plan: recovery models the fresh process).  [None]
    when no journal exists or it holds no statements.  Raises
    {!Tdb_error.Error} ([Io]) only on real I/O failure — a damaged
    journal tail is data loss already paid for, never an error. *)
