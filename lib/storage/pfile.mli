(** Paged record files: the machinery shared by every access method.

    A [Pfile.t] couples a buffer pool with a fixed record size and provides
    record-level reads and writes plus overflow-chain operations.  All
    records handed out are fresh copies; page frames never escape. *)

type t

val create : Buffer_pool.t -> record_size:int -> t

val with_pool : t -> Buffer_pool.t -> t
(** A read-path clone over a different buffer pool: same record layout and
    the {e same} fencing tables (safe while nothing writes), private
    first-fit hints.  Parallel scan partitions use one clone per worker so
    no page frame is shared across domains and each partition's I/O is
    counted against its own pool. *)

val pool : t -> Buffer_pool.t
val record_size : t -> int
val capacity : t -> int
(** Records per page for this record size. *)

val npages : t -> int
val allocate_page : t -> int

val read_record : t -> Tid.t -> bytes
(** Raises [Invalid_argument] if the slot is free. *)

val record_exists : t -> Tid.t -> bool
val write_record : t -> Tid.t -> bytes -> unit
val clear_record : t -> Tid.t -> unit

val next_overflow : t -> int -> int option
val set_next_overflow : t -> int -> int option -> unit

val set_first_fit : t -> bool -> unit
(** Chooses the overflow placement policy: first-fit (default; reuses slack
    anywhere along the chain, as Ingres does) or tail-append (only the
    newest chain page accepts records).  Exposed for the bench ablation. *)

val first_fit : t -> bool

val chain_insert : t -> head:int -> bytes -> Tid.t
(** First-fit insertion along the overflow chain starting at page [head];
    appends a new overflow page when every page of the chain is full.
    First-fit is what makes odd-numbered update rounds at 50% loading fill
    the slack left by previous rounds (Figure 8(b)'s jagged lines).
    A per-head hint makes repeated insertion into long chains cheap. *)

val chain_iter :
  ?window:Time_fence.window -> t -> head:int -> (Tid.t -> bytes -> unit) -> unit
(** Visits every used record of the chain, touching each page once.  With
    [?window] (and fencing enabled, pruning on), pages whose fence cannot
    overlap the window are skipped without being read: the walk follows
    the mirrored overflow link and charges the page to the prune
    counters.  Visit order of the surviving records is unchanged. *)

val chain_pages : t -> head:int -> int list
val chain_length : t -> head:int -> int

val cached_chain_pages : t -> head:int -> int list option
(** The chain's page list derived from the mirrored overflow links alone —
    no page is read, so nothing is charged to any counter.  [None] when
    fencing is off (the link table only exists, and is only complete,
    with fencing on).  Lets planners size and shard chains for free. *)

val page_iter :
  ?window:Time_fence.window -> t -> page:int -> (Tid.t -> bytes -> unit) -> unit
(** Visits the used records of a single page (no chain traversal); with
    [?window], the page may be fence-skipped as in {!chain_iter}. *)

(** {1 Cursor step primitives}

    One pull of a page-at-a-time walk, shared by {!Cursor} and the eager
    iterators above (which are defined in terms of them, so both paths
    read — and skip — exactly the same pages in the same order). *)

val page_step :
  ?window:Time_fence.window -> t -> page:int -> (Tid.t * bytes) list
(** The used records of one page, copied out of the frame, in slot order.
    A fence-skipped page yields [[]] and is charged to the prune
    counters, exactly like {!page_iter}. *)

val chain_step :
  ?window:Time_fence.window ->
  t ->
  page:int ->
  (Tid.t * bytes) list * int option
(** One step of an overflow-chain walk: the page's records (as
    {!page_step}) and the successor page.  A fence-skipped page yields
    [[]] and follows the mirrored link without any read. *)

val observe_chain_length : int -> unit
(** Feed one completed chain walk's page count to the chain-length
    histogram (what {!chain_iter} records internally). *)

val free_slots_on : t -> page:int -> int
val drop_hints : t -> unit
(** Clears first-fit hints (after a rebuild). *)

(** {1 Time fences}

    Optional per-page pruning metadata (see {!Time_fence}).  When enabled,
    every {!write_record} widens the written page's fence with the
    record's stamp and every {!set_next_overflow} mirrors the overflow
    link, so fence-bounded walks can skip pages without reading them.
    Enabling fences over a file that already holds records requires a
    rebuild pass ({!rebuild_page_fence} / {!rebuild_chain_fences}) or a
    reload of a persisted summary ({!set_fence} / {!set_cached_link}):
    a page without a fence entry is treated as empty and skipped. *)

val enable_fences : t -> stamp:(bytes -> Time_fence.stamp) -> unit
val fences_enabled : t -> bool

val fence_of : t -> int -> Time_fence.t option
val set_fence : t -> int -> Time_fence.t -> unit

val cached_link : t -> int -> int option
val set_cached_link : t -> int -> int option -> unit

val rebuild_page_fence : t -> page:int -> unit
(** Re-derive one page's fence (and mirrored link) from its records. *)

val rebuild_chain_fences : t -> head:int -> unit
(** {!rebuild_page_fence} along a whole overflow chain. *)

val fence_entries : t -> (int * Time_fence.t) list
val link_entries : t -> (int * int) list
(** Snapshots for persisting the per-relation fence summary. *)
