(* The write-ahead intent journal.  See journal.mli for the protocol.

   On-disk layout: a 6-byte magic header ("tdbj1\n") followed by
   records.  Each record is

     kind (1 byte) | seq (4 bytes BE) | paylen (4 bytes BE)
     | payload (paylen bytes) | crc32 (4 bytes BE, over kind..payload)

   Kinds: 'B' begin, 'P' pre-image, 'Q' post-image, 'X' base extent,
   'F' final extent, 'C' commit.  Image payloads are
   [nlen(2) | file-name | page(4) | image(Page.size)]; extent payloads
   [nlen(2) | file-name | npages(4)].  The per-record CRC means a torn
   journal tail simply stops the parse: every record before the tear is
   trusted, everything after is treated as never written. *)

let magic = "tdbj1\n"
let header_len = String.length magic

let m_statements = Tdb_obs.Metric.counter "tdb_journal_statements_total"
let m_records = Tdb_obs.Metric.counter "tdb_journal_records_total"
let m_bytes = Tdb_obs.Metric.counter "tdb_journal_bytes_total"
let m_fsyncs = Tdb_obs.Metric.counter "tdb_journal_fsyncs_total"
let m_checkpoints = Tdb_obs.Metric.counter "tdb_journal_checkpoints_total"
let m_replayed = Tdb_obs.Metric.counter "tdb_journal_replayed_statements_total"

let m_rolled_back =
  Tdb_obs.Metric.counter "tdb_journal_rolled_back_statements_total"

type hooks = { h_image : int -> bytes; h_npages : unit -> int }

type t = {
  jpath : string;
  fd : Unix.file_descr;
  fault : Fault.t option;
  files : (string, hooks) Hashtbl.t;
  buf : Buffer.t;  (* records appended but not yet written to the fd *)
  mutable pos : int;  (* bytes of the file already written *)
  mutable unsynced : bool;  (* bytes written to the fd but not fsynced *)
  mutable seq : int;
  mutable active : bool;
  touched : (string * int, unit) Hashtbl.t;  (* pre-imaged this statement *)
  dirtied : (string * int, unit) Hashtbl.t;  (* need a post-image at commit *)
  based : (string, unit) Hashtbl.t;  (* base extent recorded this statement *)
}

let path ~dir = Filename.concat dir "journal.tdb"

let wrap_unix path f =
  try f ()
  with Unix.Unix_error (e, op, _) ->
    Tdb_error.io "%s: %s during %s" path (Unix.error_message e) op

let write_exactly fd buf ~pos ~len =
  let rec go off =
    if off < len then go (off + Unix.write fd buf (pos + off) (len - off))
  in
  go 0

let open_ ~dir ?fault () =
  let jpath = path ~dir in
  wrap_unix jpath @@ fun () ->
  let fd =
    Unix.openfile jpath [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
  in
  let len = (Unix.fstat fd).Unix.st_size in
  let pos =
    if len < header_len then begin
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      write_exactly fd (Bytes.unsafe_of_string magic) ~pos:0 ~len:header_len;
      header_len
    end
    else begin
      ignore (Unix.lseek fd len Unix.SEEK_SET);
      len
    end
  in
  {
    jpath;
    fd;
    fault;
    files = Hashtbl.create 8;
    buf = Buffer.create 4096;
    pos;
    unsynced = false;
    seq = 0;
    active = false;
    touched = Hashtbl.create 64;
    dirtied = Hashtbl.create 64;
    based = Hashtbl.create 8;
  }

let register_file t ~file ~image ~npages =
  Hashtbl.replace t.files file { h_image = image; h_npages = npages }

let unregister_file t ~file = Hashtbl.remove t.files file
let in_statement t = t.active

(* --- record encoding -------------------------------------------------- *)

let add_u16 b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let add_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let append_record t kind payload =
  let rec_buf = Buffer.create (16 + Bytes.length payload) in
  Buffer.add_char rec_buf kind;
  add_u32 rec_buf t.seq;
  add_u32 rec_buf (Bytes.length payload);
  Buffer.add_bytes rec_buf payload;
  let body = Buffer.to_bytes rec_buf in
  let crc = Crc32.digest body in
  add_u32 rec_buf crc;
  Buffer.add_buffer t.buf rec_buf;
  Tdb_obs.Metric.incr m_records

let image_payload ~file ~page image =
  let b = Buffer.create (8 + String.length file + Bytes.length image) in
  add_u16 b (String.length file);
  Buffer.add_string b file;
  add_u32 b page;
  Buffer.add_bytes b image;
  Buffer.to_bytes b

let extent_payload ~file npages =
  let b = Buffer.create (8 + String.length file) in
  add_u16 b (String.length file);
  Buffer.add_string b file;
  add_u32 b npages;
  Buffer.to_bytes b

(* --- durability -------------------------------------------------------- *)

(* Flush buffered records through the fault filter, then fsync.  A torn
   flush persists a prefix whose last record fails its CRC: everything
   from that record on reads as "never written", which recovery treats
   as an uncommitted statement — the conservative, correct outcome. *)
let ensure_durable t =
  let len = Buffer.length t.buf in
  if len > 0 then begin
    let bytes = Buffer.to_bytes t.buf in
    Buffer.clear t.buf;
    let persist n =
      if n > 0 then
        wrap_unix t.jpath (fun () ->
            ignore (Unix.lseek t.fd t.pos Unix.SEEK_SET);
            write_exactly t.fd bytes ~pos:0 ~len:n;
            t.pos <- t.pos + n;
            t.unsynced <- true)
    in
    (match t.fault with
    | None -> persist len
    | Some f -> (
        match Fault.on_write f ~len with
        | `Ok -> persist len
        | `Eio -> Tdb_error.io "%s: injected EIO on write" t.jpath
        | `Torn n -> persist n
        | `Crash n ->
            persist n;
            raise Fault.Crashed
        | `Crash_after ->
            persist len;
            raise Fault.Crashed));
    Tdb_obs.Metric.add m_bytes len
  end;
  if t.unsynced then begin
    wrap_unix t.jpath (fun () -> Unix.fsync t.fd);
    t.unsynced <- false;
    Tdb_obs.Metric.incr m_fsyncs
  end

(* --- the statement protocol ------------------------------------------- *)

let hooks t file =
  match Hashtbl.find_opt t.files file with
  | Some h -> h
  | None ->
      invalid_arg
        (Printf.sprintf "Journal: file %S was never registered" file)

let ensure_base t file =
  if not (Hashtbl.mem t.based file) then begin
    Hashtbl.add t.based file ();
    append_record t 'X' (extent_payload ~file ((hooks t file).h_npages ()))
  end

let note_page_write t ~file ~page ~pre =
  if t.active then begin
    ensure_base t file;
    if not (Hashtbl.mem t.touched (file, page)) then begin
      Hashtbl.add t.touched (file, page) ();
      append_record t 'P' (image_payload ~file ~page (pre ()))
    end;
    Hashtbl.replace t.dirtied (file, page) ()
  end

let note_extend t ~file = if t.active then ensure_base t file

let note_fresh_page t ~file ~page =
  if t.active then begin
    (* A fresh page needs no pre-image: undo truncates to the base
       extent.  Marking it touched suppresses the pointless pre-image a
       later in-place write would otherwise capture. *)
    Hashtbl.replace t.touched (file, page) ();
    Hashtbl.replace t.dirtied (file, page) ()
  end

let note_truncate t ~file =
  if t.active then begin
    ensure_base t file;
    let h = hooks t file in
    let n = h.h_npages () in
    for page = 0 to n - 1 do
      if not (Hashtbl.mem t.touched (file, page)) then begin
        Hashtbl.add t.touched (file, page) ();
        append_record t 'P' (image_payload ~file ~page (h.h_image page))
      end
    done
  end

let sorted_keys tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let commit_statement t =
  if t.active then begin
    (* Redo records: the current content of every page the statement
       dirtied (bounded by the file's final extent — a reorganization
       may have truncated pages away), then each touched file's final
       extent, then the commit mark.  One fsync covers the group. *)
    List.iter
      (fun (file, page) ->
        let h = hooks t file in
        if page < h.h_npages () then
          append_record t 'Q' (image_payload ~file ~page (h.h_image page)))
      (sorted_keys t.dirtied);
    List.iter
      (fun file ->
        append_record t 'F' (extent_payload ~file ((hooks t file).h_npages ())))
      (sorted_keys t.based);
    append_record t 'C' Bytes.empty;
    t.active <- false;
    Hashtbl.reset t.touched;
    Hashtbl.reset t.dirtied;
    Hashtbl.reset t.based;
    ensure_durable t
  end

let begin_statement t =
  if t.active then commit_statement t;
  t.seq <- t.seq + 1;
  append_record t 'B' Bytes.empty;
  t.active <- true;
  Tdb_obs.Metric.incr m_statements

let checkpoint t =
  if not t.active then begin
    Buffer.clear t.buf;
    if t.pos > header_len || t.unsynced then
      wrap_unix t.jpath (fun () ->
          Unix.ftruncate t.fd header_len;
          Unix.fsync t.fd);
    t.pos <- header_len;
    t.unsynced <- false;
    Tdb_obs.Metric.incr m_checkpoints
  end

let abandon t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let close t =
  checkpoint t;
  abandon t

(* --- recovery ---------------------------------------------------------- *)

type report = {
  statements : int;
  replayed : int;
  rolled_back : int;
  pages_restored : int;
  pages_replayed : int;
  files_resized : int;
}

let pp_report ppf r =
  Fmt.pf ppf "%d statement(s) journalled" r.statements;
  if r.replayed > 0 then
    Fmt.pf ppf ", %d committed statement(s) replayed (%d page(s))" r.replayed
      r.pages_replayed;
  if r.rolled_back > 0 then
    Fmt.pf ppf ", %d uncommitted statement(s) rolled back (%d page(s) restored)"
      r.rolled_back r.pages_restored;
  if r.files_resized > 0 then
    Fmt.pf ppf ", %d file extent(s) restored" r.files_resized

type record =
  | Begin
  | Pre of { file : string; page : int; image : bytes }
  | Post of { file : string; page : int; image : bytes }
  | Base of { file : string; npages : int }
  | Final of { file : string; npages : int }
  | Commit

let u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* Parse records until the data runs out or a record fails its CRC; both
   simply end the trusted prefix. *)
let parse_records data =
  let len = Bytes.length data in
  let records = ref [] in
  let off = ref 0 in
  (try
     while !off + 13 <= len do
       let kind = Bytes.get data !off in
       let paylen = u32 data (!off + 5) in
       if paylen < 0 || !off + 13 + paylen > len then raise Exit;
       let body_len = 9 + paylen in
       let crc = u32 data (!off + body_len) in
       if Crc32.digest ~pos:!off ~len:body_len data <> crc then raise Exit;
       let payload off = off + 9 in
       let parse_image () =
         let p = payload !off in
         let nlen = u16 data p in
         let file = Bytes.sub_string data (p + 2) nlen in
         let page = u32 data (p + 2 + nlen) in
         let image = Bytes.sub data (p + 6 + nlen) Page.size in
         (file, page, image)
       in
       let parse_extent () =
         let p = payload !off in
         let nlen = u16 data p in
         let file = Bytes.sub_string data (p + 2) nlen in
         (file, u32 data (p + 2 + nlen))
       in
       (match kind with
       | 'B' -> records := Begin :: !records
       | 'C' -> records := Commit :: !records
       | 'P' ->
           if paylen < 6 + Page.size then raise Exit;
           let file, page, image = parse_image () in
           records := Pre { file; page; image } :: !records
       | 'Q' ->
           if paylen < 6 + Page.size then raise Exit;
           let file, page, image = parse_image () in
           records := Post { file; page; image } :: !records
       | 'X' ->
           let file, npages = parse_extent () in
           records := Base { file; npages } :: !records
       | 'F' ->
           let file, npages = parse_extent () in
           records := Final { file; npages } :: !records
       | _ -> raise Exit);
       off := !off + body_len + 4
     done
   with Exit | Invalid_argument _ -> ());
  List.rev !records

(* Group the record stream into statements: each begins at 'B' and is
   committed when its 'C' arrived intact. *)
let group_statements records =
  let stmts = ref [] in
  let current = ref None in
  List.iter
    (fun r ->
      match (r, !current) with
      | Begin, Some body -> stmts := (List.rev body, false) :: !stmts;
                            current := Some []
      | Begin, None -> current := Some []
      | Commit, Some body ->
          stmts := (List.rev body, true) :: !stmts;
          current := None
      | Commit, None -> ()
      | r, Some body -> current := Some (r :: body)
      | _, None -> () (* records before any Begin: ignore *))
    records;
  (match !current with
  | Some body -> stmts := (List.rev body, false) :: !stmts
  | None -> ());
  List.rev !stmts

let recover ~dir =
  let jpath = path ~dir in
  if not (Sys.file_exists jpath) then None
  else begin
    wrap_unix jpath @@ fun () ->
    let fd = Unix.openfile jpath [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644 in
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    let len = (Unix.fstat fd).Unix.st_size in
    let data = Bytes.create (max 0 (len - header_len)) in
    let valid_header =
      len >= header_len
      &&
      let hdr = Bytes.create header_len in
      let rec go off =
        if off >= header_len then true
        else
          match Unix.read fd hdr off (header_len - off) with
          | 0 -> false
          | n -> go (off + n)
      in
      go 0 && Bytes.to_string hdr = magic
    in
    let truncate_empty () =
      if len > header_len || not valid_header then begin
        Unix.ftruncate fd 0;
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        write_exactly fd (Bytes.unsafe_of_string magic) ~pos:0 ~len:header_len;
        Unix.fsync fd
      end
    in
    if not valid_header then begin
      (* not a journal we wrote: distrust and reset it *)
      truncate_empty ();
      None
    end
    else begin
      let rec fill off =
        if off < Bytes.length data then
          match Unix.read fd data off (Bytes.length data - off) with
          | 0 -> ()
          | n -> fill (off + n)
      in
      fill 0;
      let stmts = group_statements (parse_records data) in
      if stmts = [] then begin
        truncate_empty ();
        None
      end
      else begin
        let touched_fds : (string, Unix.file_descr) Hashtbl.t =
          Hashtbl.create 8
        in
        let data_fd file =
          match Hashtbl.find_opt touched_fds file with
          | Some fd -> Some fd
          | None ->
              let p = Filename.concat dir (file ^ ".pages") in
              (* A file that no longer exists belonged to a relation
                 destroyed after these records were written: skip it
                 rather than resurrect it. *)
              if not (Sys.file_exists p) then None
              else begin
                let fd =
                  Unix.openfile p [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644
                in
                Hashtbl.add touched_fds file fd;
                Some fd
              end
        in
        let pages_restored = ref 0 in
        let pages_replayed = ref 0 in
        let files_resized = ref 0 in
        let write_image fd page image =
          ignore (Unix.lseek fd (page * Page.size) Unix.SEEK_SET);
          write_exactly fd image ~pos:0 ~len:Page.size
        in
        let resize fd npages =
          let size = (Unix.fstat fd).Unix.st_size in
          if size <> npages * Page.size then begin
            if size < npages * Page.size then begin
              (* extend with sealed empty pages so every page checks *)
              let blank = Page.create () in
              Page.seal ~epoch:0 blank;
              for page = size / Page.size to npages - 1 do
                write_image fd page blank
              done
            end;
            Unix.ftruncate fd (npages * Page.size);
            incr files_resized
          end
        in
        let committed, uncommitted =
          List.partition (fun (_, committed) -> committed) stmts
        in
        (* Undo newest-first: a page touched by two uncommitted
           statements ends at the older one's pre-image. *)
        List.iter
          (fun (body, _) ->
            List.iter
              (fun r ->
                match r with
                | Pre { file; page; image } -> (
                    match data_fd file with
                    | Some fd ->
                        write_image fd page image;
                        incr pages_restored
                    | None -> ())
                | _ -> ())
              (List.rev body);
            List.iter
              (fun r ->
                match r with
                | Base { file; npages } -> (
                    match data_fd file with
                    | Some fd -> resize fd npages
                    | None -> ())
                | _ -> ())
              body)
          (List.rev uncommitted);
        (* Redo oldest-first: post-images then final extents. *)
        List.iter
          (fun (body, _) ->
            List.iter
              (fun r ->
                match r with
                | Post { file; page; image } -> (
                    match data_fd file with
                    | Some fd ->
                        write_image fd page image;
                        incr pages_replayed
                    | None -> ())
                | _ -> ())
              body;
            List.iter
              (fun r ->
                match r with
                | Final { file; npages } -> (
                    match data_fd file with
                    | Some fd -> resize fd npages
                    | None -> ())
                | _ -> ())
              body)
          committed;
        Hashtbl.iter
          (fun _ fd ->
            Unix.fsync fd;
            Unix.close fd)
          touched_fds;
        Hashtbl.reset touched_fds;
        truncate_empty ();
        let report =
          {
            statements = List.length stmts;
            replayed = List.length committed;
            rolled_back = List.length uncommitted;
            pages_restored = !pages_restored;
            pages_replayed = !pages_replayed;
            files_resized = !files_resized;
          }
        in
        Tdb_obs.Metric.add m_replayed report.replayed;
        Tdb_obs.Metric.add m_rolled_back report.rolled_back;
        if report.replayed > 0 || report.rolled_back > 0 then
          Tdb_obs.Trace.event "journal_recovery"
            ~attrs:
              [
                ("dir", dir);
                ("statements", string_of_int report.statements);
                ("replayed", string_of_int report.replayed);
                ("rolled_back", string_of_int report.rolled_back);
                ("pages_restored", string_of_int report.pages_restored);
                ("pages_replayed", string_of_int report.pages_replayed);
              ];
        Some report
      end
    end
  end
