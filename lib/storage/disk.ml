let m_fsyncs = Tdb_obs.Metric.counter "tdb_disk_fsyncs_total"

let m_checksum_failures =
  Tdb_obs.Metric.counter "tdb_disk_checksum_failures_total"

let m_recoveries = Tdb_obs.Metric.counter "tdb_recovery_runs_total"

let m_recovered_torn =
  Tdb_obs.Metric.counter "tdb_recovery_torn_pages_total"

let m_recovered_tail_bytes =
  Tdb_obs.Metric.counter "tdb_recovery_tail_bytes_total"

let m_recovered_overflows =
  Tdb_obs.Metric.counter "tdb_recovery_overflows_cleared_total"

type mem_store = { mutable pages : bytes array; mutable used : int }

type file_store = {
  fd : Unix.file_descr;
  mutable npages : int;
  path : string;
}

type backend = Mem of mem_store | File of file_store

type recovery = {
  pages_scanned : int;
  tail_bytes_dropped : int;
  torn_pages_dropped : int;
  overflows_cleared : int;
  max_epoch : int;
}

let recovery_repaired r =
  r.tail_bytes_dropped > 0 || r.torn_pages_dropped > 0
  || r.overflows_cleared > 0

let pp_recovery ppf r =
  Fmt.pf ppf "scanned %d page(s)" r.pages_scanned;
  if r.tail_bytes_dropped > 0 then
    Fmt.pf ppf ", dropped %d unaligned trailing byte(s)" r.tail_bytes_dropped;
  if r.torn_pages_dropped > 0 then
    Fmt.pf ppf ", truncated %d torn page(s)" r.torn_pages_dropped;
  if r.overflows_cleared > 0 then
    Fmt.pf ppf ", cleared %d dangling overflow pointer(s)" r.overflows_cleared

type t = {
  backend : backend;
  fault : Fault.t option;
  mutable epoch : int;
  mutable recovery : recovery option;
  lock : Mutex.t;
      (* Serializes page-level operations.  Parallel scan partitions share
         one disk through private buffer pools; a File backend positions a
         shared fd with lseek before reading, the Mem backend grows its
         page array in place, and the fault plan steps its counters — all
         unsafe to interleave across domains. *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let describe t =
  match t.backend with Mem _ -> "<mem>" | File f -> f.path

let epoch t = t.epoch
let set_epoch t e = t.epoch <- e
let bump_epoch t = t.epoch <- t.epoch + 1
let recovery_report t = t.recovery

let wrap_unix path f =
  try f ()
  with Unix.Unix_error (e, op, _) ->
    Tdb_error.io "%s: %s during %s" path (Unix.error_message e) op

(* Raw page I/O on a file descriptor: no fault injection, no checksum
   interpretation.  Used by the runtime paths (below a fault filter) and by
   recovery (which must see the bytes as they are). *)

let raw_read_exactly fd buf ~len =
  let rec go off =
    if off < len then begin
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then
        Tdb_error.io "short read: got %d of %d bytes (truncated file?)" off len;
      go (off + n)
    end
  in
  go 0

let raw_write_exactly fd buf ~len =
  let rec go off =
    if off < len then go (off + Unix.write fd buf off (len - off))
  in
  go 0

let raw_read_page fd id buf =
  ignore (Unix.lseek fd (id * Page.size) Unix.SEEK_SET);
  raw_read_exactly fd buf ~len:Page.size

let raw_write_page fd id buf ~len =
  ignore (Unix.lseek fd (id * Page.size) Unix.SEEK_SET);
  raw_write_exactly fd buf ~len

(* --- fault-filtered primitives ------------------------------------- *)

let faulty_read t ~len =
  match t.fault with
  | None -> `Ok
  | Some f -> (
      match Fault.on_read f ~len with
      | `Ok -> `Ok
      | `Eio -> Tdb_error.io "%s: injected EIO on read" (describe t)
      | `Short n -> `Short n)

let fetch_page t id =
  match t.backend with
  | Mem m -> (
      match faulty_read t ~len:Page.size with
      | `Ok -> Bytes.copy m.pages.(id)
      | `Short n ->
          Tdb_error.io "%s: short read: got %d of %d bytes" (describe t) n
            Page.size)
  | File f ->
      let buf = Bytes.create Page.size in
      wrap_unix f.path (fun () ->
          match faulty_read t ~len:Page.size with
          | `Ok -> raw_read_page f.fd id buf
          | `Short n ->
              (* deliver the prefix the kernel managed, then fail as a
                 real short read would *)
              ignore (Unix.lseek f.fd (id * Page.size) Unix.SEEK_SET);
              if n > 0 then raw_read_exactly f.fd buf ~len:n;
              Tdb_error.io "%s: short read: got %d of %d bytes" f.path n
                Page.size);
      buf

(* Writes a sealed page image through the fault filter.  [write_prefix n]
   must persist the first [n] bytes of the image. *)
let faulty_write t ~write_prefix sealed =
  let len = Bytes.length sealed in
  match t.fault with
  | None -> write_prefix len
  | Some f -> (
      match Fault.on_write f ~len with
      | `Ok -> write_prefix len
      | `Eio -> Tdb_error.io "%s: injected EIO on write" (describe t)
      | `Torn n -> write_prefix n
      | `Crash n ->
          write_prefix n;
          raise Fault.Crashed
      | `Crash_after ->
          write_prefix len;
          raise Fault.Crashed)

let create_mem ?fault () =
  {
    backend = Mem { pages = [||]; used = 0 };
    fault;
    epoch = 0;
    recovery = None;
    lock = Mutex.create ();
  }

let npages t =
  match t.backend with Mem m -> m.used | File f -> f.npages

let check_id t id =
  if id < 0 || id >= npages t then
    invalid_arg (Printf.sprintf "Disk: page id %d out of range (npages=%d)" id
                   (npages t))

let seal_copy t page =
  let sealed = Bytes.copy page in
  Page.seal ~epoch:t.epoch sealed;
  sealed

let mem_store m id sealed n =
  (* a torn write leaves the old bytes beyond the torn prefix *)
  if n = Bytes.length sealed then m.pages.(id) <- sealed
  else begin
    let dst = m.pages.(id) in
    Bytes.blit sealed 0 dst 0 n
  end

let allocate t =
  locked t @@ fun () ->
  match t.backend with
  | Mem m ->
      if m.used >= Array.length m.pages then begin
        let cap = max 8 (2 * Array.length m.pages) in
        let pages = Array.make cap Bytes.empty in
        Array.blit m.pages 0 pages 0 m.used;
        m.pages <- pages
      end;
      let id = m.used in
      m.pages.(id) <- Page.create ();
      m.used <- id + 1;
      let sealed = seal_copy t (Page.create ()) in
      faulty_write t sealed ~write_prefix:(fun n -> mem_store m id sealed n);
      id
  | File f ->
      let id = f.npages in
      let sealed = seal_copy t (Page.create ()) in
      wrap_unix f.path (fun () ->
          faulty_write t sealed ~write_prefix:(fun n ->
              if n > 0 then raw_write_page f.fd id sealed ~len:n));
      f.npages <- id + 1;
      id

let read_page t id =
  (* Fetch under the lock (shared fd position / page array), but verify
     the checksum outside it: [fetch_page] hands back a private copy, and
     the CRC over a full page is the expensive part of a read — hoisting
     it lets concurrent snapshot readers overlap their checksum work
     instead of convoying on the disk mutex. *)
  let buf =
    locked t @@ fun () ->
    check_id t id;
    fetch_page t id
  in
  if not (Page.check buf) then begin
    Tdb_obs.Metric.incr m_checksum_failures;
    Tdb_obs.Trace.event "checksum_failure"
      ~attrs:[ ("file", describe t); ("page", string_of_int id) ];
    Tdb_error.corruption
      "%s: page %d failed its checksum (stored epoch %d)" (describe t) id
      (Page.get_epoch buf)
  end;
  buf

let write_page t id page =
  locked t @@ fun () ->
  check_id t id;
  if Bytes.length page <> Page.size then
    invalid_arg "Disk.write_page: wrong page size";
  let sealed = seal_copy t page in
  match t.backend with
  | Mem m ->
      faulty_write t sealed ~write_prefix:(fun n -> mem_store m id sealed n)
  | File f ->
      wrap_unix f.path (fun () ->
          faulty_write t sealed ~write_prefix:(fun n ->
              if n > 0 then raw_write_page f.fd id sealed ~len:n))

let truncate t =
  locked t @@ fun () ->
  match t.backend with
  | Mem m ->
      m.pages <- [||];
      m.used <- 0
  | File f ->
      wrap_unix f.path (fun () -> Unix.ftruncate f.fd 0);
      f.npages <- 0

let fsync t =
  match t.backend with
  | Mem _ -> ()
  | File f ->
      Tdb_obs.Metric.incr m_fsyncs;
      wrap_unix f.path (fun () -> Unix.fsync f.fd)

let close t =
  match t.backend with Mem _ -> () | File f -> Unix.close f.fd

let is_file_backed t =
  match t.backend with Mem _ -> false | File _ -> true

(* --- recovery ------------------------------------------------------- *)

let run_recovery t ~tail_bytes =
  match t.backend with
  | Mem _ -> ()
  | File f ->
      wrap_unix f.path (fun () ->
          if tail_bytes > 0 then Unix.ftruncate f.fd (f.npages * Page.size);
          let n = f.npages in
          let buf = Bytes.create Page.size in
          let overflow = Array.make (max n 1) None in
          let max_epoch = ref 0 in
          let bad = ref [] in
          for id = 0 to n - 1 do
            raw_read_page f.fd id buf;
            if Page.check buf then begin
              max_epoch := max !max_epoch (Page.get_epoch buf);
              overflow.(id) <- Page.get_overflow buf
            end
            else bad := id :: !bad
          done;
          let torn =
            match List.rev !bad with
            | [] -> 0
            | first_bad :: _ ->
                (* Only a contiguous tail of bad pages is explainable as a
                   torn append; a bad page with intact pages after it is
                   damage we cannot undo without a log. *)
                if List.length !bad = n - first_bad then begin
                  Unix.ftruncate f.fd (first_bad * Page.size);
                  f.npages <- first_bad;
                  n - first_bad
                end
                else
                  Tdb_error.corruption
                    "%s: page %d failed its checksum but later pages are \
                     intact; not a torn tail, refusing to repair"
                    f.path first_bad
          in
          let cleared = ref 0 in
          for id = 0 to f.npages - 1 do
            match overflow.(id) with
            | Some next when next >= f.npages ->
                raw_read_page f.fd id buf;
                Page.set_overflow buf None;
                Page.seal ~epoch:(Page.get_epoch buf) buf;
                raw_write_page f.fd id buf ~len:Page.size;
                incr cleared
            | _ -> ()
          done;
          if tail_bytes > 0 || torn > 0 || !cleared > 0 then Unix.fsync f.fd;
          t.epoch <- !max_epoch + 1;
          Tdb_obs.Metric.incr m_recoveries;
          Tdb_obs.Metric.add m_recovered_torn torn;
          Tdb_obs.Metric.add m_recovered_tail_bytes tail_bytes;
          Tdb_obs.Metric.add m_recovered_overflows !cleared;
          if tail_bytes > 0 || torn > 0 || !cleared > 0 then
            Tdb_obs.Trace.event "recovery_repair"
              ~attrs:
                [
                  ("file", f.path);
                  ("tail_bytes", string_of_int tail_bytes);
                  ("torn_pages", string_of_int torn);
                  ("overflows_cleared", string_of_int !cleared);
                ];
          t.recovery <-
            Some
              {
                pages_scanned = n;
                tail_bytes_dropped = tail_bytes;
                torn_pages_dropped = torn;
                overflows_cleared = !cleared;
                max_epoch = !max_epoch;
              })

let open_file ?fault ?(recover = false) path =
  let fd =
    try
      Unix.openfile path
        [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
        0o644
    with Unix.Unix_error (e, op, _) ->
      Tdb_error.io "%s: %s during %s" path (Unix.error_message e) op
  in
  let len = (Unix.fstat fd).Unix.st_size in
  let tail = len mod Page.size in
  if tail <> 0 && not recover then begin
    Unix.close fd;
    Tdb_error.corruption
      "%s: size %d is not page-aligned (%d trailing bytes); reopen with \
       recovery to truncate the torn tail"
      path len tail
  end;
  let t =
    {
      backend = File { fd; npages = len / Page.size; path };
      fault;
      epoch = 0;
      recovery = None;
      lock = Mutex.create ();
    }
  in
  if recover then run_recovery t ~tail_bytes:tail;
  t
