(** ISAM files, after Ingres's [modify ... to isam].

    [modify] sorts the records on the key, packs them into data pages up to
    [capacity * fillfactor] records each, and builds a static multi-level
    directory above them.  Directory entries hold keys only — children are
    physically contiguous, so child pointers are implicit (as in Ingres).
    With 4-byte keys a directory page holds 168 entries, so 128 data pages
    need one directory level and 256 need two, reproducing the fixed costs
    of Figure 9 (1 at 100% loading, 2 at 50%).

    Insertions after the [modify] go to the data page that should hold the
    key, overflowing into a chain hanging off that page; the directory never
    changes (it is "static"). *)

type t

val build :
  Buffer_pool.t ->
  record_size:int ->
  key_of:(bytes -> Tdb_relation.Value.t) ->
  key_type:Tdb_relation.Attr_type.t ->
  fillfactor:int ->
  bytes list ->
  t
(** Builds over an empty disk.  Records need not be pre-sorted. *)

val attach :
  Buffer_pool.t ->
  record_size:int ->
  key_of:(bytes -> Tdb_relation.Value.t) ->
  key_type:Tdb_relation.Attr_type.t ->
  fillfactor:int ->
  ndata:int ->
  levels:(int * int) list ->
  t
(** Re-opens an existing ISAM file from catalog metadata: [ndata] primary
    data pages and the directory [levels] as [(first_page, entry_count)]
    pairs, leaf first.  The per-page key bounds used to delimit duplicate
    runs are rebuilt by scanning the primary pages (their keys can only
    have narrowed since the build, which keeps lookups sound). *)

val levels : t -> (int * int) list
(** Directory layout for the catalog, [(first_page, entry_count)], leaf
    first. *)

val pfile : t -> Pfile.t

val with_pool : t -> Buffer_pool.t -> t
(** A read-path clone over a different (typically private) buffer pool;
    rebinds both the data and the directory pfile.  The underlying pages
    are shared.  See {!Pfile.with_pool}. *)

val fillfactor : t -> int
val data_pages : t -> int
(** Primary data pages (ids [0 .. data_pages - 1]). *)

val directory_pages : t -> int
val directory_height : t -> int

val insert : t -> bytes -> Tid.t
(** Traverses the directory (costing one page read per level), then
    first-fit into the target page's chain. *)

val read : t -> Tid.t -> bytes
val update : t -> Tid.t -> bytes -> unit
val delete : t -> Tid.t -> unit

val lookup :
  ?window:Time_fence.window ->
  t ->
  Tdb_relation.Value.t ->
  (Tid.t -> bytes -> unit) ->
  unit
(** ISAM access: directory descent, then the full chain of the target data
    page, presenting records with an equal key.  With [?window], chain
    pages whose time fence cannot overlap the window are skipped. *)

val iter :
  ?window:Time_fence.window -> t -> (Tid.t -> bytes -> unit) -> unit
(** Sequential scan: data pages and their overflow chains; the directory is
    not touched.  [?window] enables fence skipping as in {!lookup}. *)

val iter_range :
  ?window:Time_fence.window ->
  t ->
  ?lo:Tdb_relation.Value.t ->
  ?hi:Tdb_relation.Value.t ->
  (Tid.t -> bytes -> unit) ->
  unit
(** Ordered scan of records whose key is within \[lo, hi\] (inclusive on
    both ends; either bound may be omitted).  Reads the directory once to
    locate the first data page, then data pages and chains from there. *)

val scan_cursor : ?window:Time_fence.window -> t -> Cursor.t
(** Batched sequential scan; {!iter} is this cursor, drained. *)

val lookup_cursor :
  ?window:Time_fence.window -> t -> Tdb_relation.Value.t -> Cursor.t
(** Batched ISAM access; {!lookup} is this cursor, drained.  The
    directory descent happens at cursor-open time. *)

val range_cursor :
  ?window:Time_fence.window ->
  t ->
  lo:Tdb_relation.Value.t option ->
  hi:Tdb_relation.Value.t option ->
  Cursor.t
(** Batched ordered range scan; {!iter_range} is this cursor, drained. *)

module Access : Cursor.ACCESS_METHOD with type file = t

val npages : t -> int

(** {1 Probe runs}

    A probe's primary data pages always form one contiguous run
    [\[start, stop)]: {!lookup_cursor} over [key] walks exactly the pages
    {!range_cursor} walks at [lo = hi = Some key], with the same record
    filter, so these three suffice to rebuild either probe as partitioned
    sub-runs (each data page owning its whole overflow chain). *)

val range_run :
  t -> lo:Tdb_relation.Value.t option -> hi:Tdb_relation.Value.t option ->
  int * int
(** The probe's data-page run [(start, stop)].  Performs the charged
    directory descent when [lo] is bounded — exactly the reads the
    sequential cursor would pay at open time. *)

val range_run_mem :
  t -> lo:Tdb_relation.Value.t option -> hi:Tdb_relation.Value.t option ->
  int * int
(** {!range_run} recomputed from the in-memory page-key bounds: no page is
    read, nothing is charged.  For admission previews only. *)

val range_filter :
  t -> lo:Tdb_relation.Value.t option -> hi:Tdb_relation.Value.t option ->
  bytes -> bool
(** The record filter {!range_cursor} applies — key within [\[lo, hi\]];
    with [lo = hi = Some key] it is {!lookup_cursor}'s equality filter. *)
