(** Per-page time fences: the pruning metadata behind temporal skip-scans.

    A fence records, for one page (or one history segment), the minimum
    transaction-start / valid-from and maximum transaction-stop / valid-to
    chronon over every record ever written there.  Fences are {e
    conservative}: they only widen — in-place updates and slot clears never
    shrink them — so a fence can at worst cause a page to be read
    needlessly, never skipped wrongly.  Recovery (and any doubt about
    persisted summaries) rebuilds fences from the records themselves. *)

module Chronon := Tdb_time.Chronon
module Period := Tdb_time.Period

type t = {
  mutable min_tstart : Chronon.t;
  mutable max_tstop : Chronon.t;
  mutable min_vfrom : Chronon.t;
  mutable max_vto : Chronon.t;
}

type stamp = {
  tstart : Chronon.t;
  tstop : Chronon.t;
  vfrom : Chronon.t;
  vto : Chronon.t;
}
(** One record's contribution, already normalised to non-empty half-open
    intervals per dimension. *)

val empty : unit -> t
(** The fence of a page with no records; it admits no window. *)

val is_empty : t -> bool
val copy : t -> t

val stamp :
  transaction:(Chronon.t * Chronon.t) option ->
  valid:(Chronon.t * Chronon.t) option ->
  stamp
(** Builds a stamp from raw [start, stop] attribute pairs.  Degenerate
    pairs (stop <= start) denote events and are normalised to
    [start, succ start); a missing dimension becomes the full time range,
    so pages are never skipped on a dimension the schema lacks. *)

val note : t -> stamp -> unit
(** Widen the fence to cover one record. *)

val absorb : t -> t -> unit
(** [absorb dst src] widens [dst] to cover everything [src] covers. *)

(** {1 Query windows} *)

type window = { transaction : Period.t option; valid : Period.t option }
(** The temporal bounds pushed down from [as of] (transaction dimension)
    and a constant [when ... overlap] clause (valid dimension).  [None]
    means unbounded on that dimension. *)

val no_window : window
val window_is_unbounded : window -> bool

val narrow_valid : window option -> Period.t option -> window option
(** [narrow_valid w p] bounds [w]'s valid dimension by [p] when it was
    unbounded — the temporal join pushes the outer side's valid envelope
    into the inner scan this way.  A window whose valid dimension is
    already bounded is returned unchanged: its existing bound was derived
    from a different conjunct, and a page can satisfy two bounds
    separately without any single record satisfying both, so replacing
    either with their intersection could skip wrongly. *)

val may_overlap : t -> window -> bool
(** Whether any record covered by the fence can overlap the window on
    every bounded dimension; mirrors [Period.overlaps] exactly, so a page
    may be skipped iff no record on it can satisfy the corresponding
    [Period.overlaps] test.  [false] on an {!empty} fence. *)

(** {1 Pruning switch and accounting} *)

val set_pruning : bool -> unit
val pruning_enabled : unit -> bool
(** Global skip-scan switch (default on).  Off, every scan reads every
    page as the paper's cost model assumes; fences are still maintained. *)

val with_pruning : bool -> (unit -> 'a) -> 'a
(** Run with the switch forced to a value, restoring it afterwards. *)

val note_check : unit -> unit
(** Count one fence consultation ([tdb_prune_fence_checks_total]). *)

val note_skipped : int -> unit
(** Charge [n] skipped pages to the raw counter, the
    [tdb_prune_pages_skipped_total] metric and the active trace span. *)

val pages_skipped : unit -> int
(** Exact number of pages skipped since the last reset (raw counter,
    counts whether or not metrics are enabled). *)

val reset_pages_skipped : unit -> unit

(** {1 Sidecar text form} *)

val to_fields : t -> string list
val of_fields : string list -> t option

val pp : t Fmt.t
