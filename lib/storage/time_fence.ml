module Chronon = Tdb_time.Chronon
module Period = Tdb_time.Period
module Metric = Tdb_obs.Metric

(* A fence summarises every record ever written to a page as one rectangle
   per time dimension.  Fences only widen: clearing a slot leaves the fence
   alone, so a fence may over-approximate the live records (reading a page
   that could have been skipped) but never under-approximate them (skipping
   a page that holds a qualifying record). *)

type t = {
  mutable min_tstart : Chronon.t;
  mutable max_tstop : Chronon.t;
  mutable min_vfrom : Chronon.t;
  mutable max_vto : Chronon.t;
}

type stamp = {
  tstart : Chronon.t;
  tstop : Chronon.t;
  vfrom : Chronon.t;
  vto : Chronon.t;
}

let empty () =
  {
    min_tstart = Chronon.forever;
    max_tstop = Chronon.beginning;
    min_vfrom = Chronon.forever;
    max_vto = Chronon.beginning;
  }

let is_empty t = Chronon.compare t.min_tstart t.max_tstop > 0

let copy t =
  {
    min_tstart = t.min_tstart;
    max_tstop = t.max_tstop;
    min_vfrom = t.min_vfrom;
    max_vto = t.max_vto;
  }

(* Normalise a stored [start, stop] pair to a non-empty half-open interval.
   Degenerate versions (stop <= start: a tuple superseded in the chronon it
   appeared) are events per [Period.make]; an event at [c] behaves exactly
   like the half-open interval [c, succ c). *)
let interval start stop =
  if Chronon.compare stop start <= 0 then (start, Chronon.succ start)
  else (start, stop)

(* The full-range pair used for a dimension the schema does not carry: a
   page of such records can never be skipped on that dimension. *)
let unbounded = (Chronon.beginning, Chronon.forever)

let stamp ~transaction ~valid =
  let tstart, tstop = match transaction with
    | Some (s, e) -> interval s e
    | None -> unbounded
  and vfrom, vto = match valid with
    | Some (s, e) -> interval s e
    | None -> unbounded
  in
  { tstart; tstop; vfrom; vto }

let note t (s : stamp) =
  t.min_tstart <- Chronon.min t.min_tstart s.tstart;
  t.max_tstop <- Chronon.max t.max_tstop s.tstop;
  t.min_vfrom <- Chronon.min t.min_vfrom s.vfrom;
  t.max_vto <- Chronon.max t.max_vto s.vto

let absorb dst src =
  dst.min_tstart <- Chronon.min dst.min_tstart src.min_tstart;
  dst.max_tstop <- Chronon.max dst.max_tstop src.max_tstop;
  dst.min_vfrom <- Chronon.min dst.min_vfrom src.min_vfrom;
  dst.max_vto <- Chronon.max dst.max_vto src.max_vto

(* --- query windows --- *)

type window = { transaction : Period.t option; valid : Period.t option }

let no_window = { transaction = None; valid = None }

(* Adding a bound is only sound when the dimension was unbounded: a page
   whose records satisfy two independent constraints separately need not
   contain a record satisfying their intersection, so an existing bound is
   kept rather than narrowed. *)
let narrow_valid window period =
  match period with
  | None -> window
  | Some _ -> (
      match window with
      | None -> Some { transaction = None; valid = period }
      | Some w -> if w.valid = None then Some { w with valid = period } else window)

let window_is_unbounded w =
  Option.is_none w.transaction && Option.is_none w.valid

(* Mirror [Period.overlaps]: a window period [p] admits the half-open
   interval [lo, hi) iff lo < w2 && w1 < hi, where [w1, w2) is [p] itself
   made half-open (an event at c becomes [c, succ c), which matches
   [Period.contains] on both events and intervals; [succ] saturates at
   forever, and nothing starts at forever, so the saturated case stays
   exact). *)
let dim_admits ~min_start ~max_stop p =
  let w1 = Period.from_ p in
  let w2 =
    if Period.is_event p then Chronon.succ (Period.from_ p) else Period.to_ p
  in
  Chronon.compare min_start w2 < 0 && Chronon.compare w1 max_stop < 0

let may_overlap t w =
  (match w.transaction with
  | Some p -> dim_admits ~min_start:t.min_tstart ~max_stop:t.max_tstop p
  | None -> true)
  &&
  (match w.valid with
  | Some p -> dim_admits ~min_start:t.min_vfrom ~max_stop:t.max_vto p
  | None -> true)

(* --- global pruning switch and accounting --- *)

let pruning = ref true
let set_pruning v = pruning := v
let pruning_enabled () = !pruning

let with_pruning v f =
  let prev = !pruning in
  pruning := v;
  Fun.protect ~finally:(fun () -> pruning := prev) f

(* Raw counter: the bench must read exact skip counts whether or not the
   metric registry is enabled (same rationale as Io_stats). *)
let skipped_raw = Metric.raw ()
let m_skipped = Metric.counter "tdb_prune_pages_skipped_total"
let m_checks = Metric.counter "tdb_prune_fence_checks_total"

let note_check () = Metric.incr m_checks

let note_skipped n =
  Metric.add skipped_raw n;
  Metric.add m_skipped n;
  Tdb_obs.Trace.note_skip n

let pages_skipped () = Metric.count skipped_raw
let reset_pages_skipped () = Metric.reset_counter skipped_raw

(* --- sidecar text form --- *)

let to_fields t =
  List.map
    (fun c -> string_of_int (Chronon.to_seconds c))
    [ t.min_tstart; t.max_tstop; t.min_vfrom; t.max_vto ]

let of_fields = function
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
         int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d ->
          Some
            {
              min_tstart = Chronon.of_seconds a;
              max_tstop = Chronon.of_seconds b;
              min_vfrom = Chronon.of_seconds c;
              max_vto = Chronon.of_seconds d;
            }
      | _ -> None)
  | _ -> None

let pp ppf t =
  if is_empty t then Fmt.pf ppf "(empty)"
  else
    Fmt.pf ppf "t:[%a,%a) v:[%a,%a)" Chronon.pp t.min_tstart Chronon.pp
      t.max_tstop Chronon.pp t.min_vfrom Chronon.pp t.max_vto
