(** Stored relations: a schema plus an access method over a private disk.

    Every relation owns its own disk, buffer pool (1 frame by default, as in
    the paper's benchmark) and I/O counters.  A relation starts life as a
    heap; [modify] reorganizes it into hash or ISAM with a fillfactor,
    exactly like Ingres's [modify ... to hash/isam ... where fillfactor =
    N]. *)

type organization =
  | Heap
  | Hash of { key_attr : int; fillfactor : int }
  | Isam of { key_attr : int; fillfactor : int }

val organization_to_string : organization -> string

type t

val create :
  ?frames:int ->
  ?backing:[ `Mem | `File of string ] ->
  ?fault:Fault.t ->
  name:string ->
  schema:Tdb_relation.Schema.t ->
  unit ->
  t
(** A new empty heap relation.  [fault] attaches a fault-injection plan to
    the backing disk (see {!Fault}). *)

val set_journal : t -> Journal.t -> unit
(** Routes every write to this relation through the database's
    write-ahead journal (registering the relation under its name as the
    journal's file tag): page modifications capture pre-images, extents
    are recorded, dirty flushes wait for journal durability, and
    {!modify} journals the whole file before truncating it.  Called by
    the database right after create/attach for persistent relations. *)

val name : t -> string
val schema : t -> Tdb_relation.Schema.t
val organization : t -> organization
val stats : t -> Io_stats.t
val pool : t -> Buffer_pool.t
val npages : t -> int
val record_size : t -> int

val reader_view : t -> t
(** A snapshot reader's private view: same disk and pages, but a private
    1-frame buffer pool and private I/O counters, so concurrent readers
    never contend on the relation's own pool or skew its statistics.
    The view must only be read through; it installs no journal hooks.
    Flush the relation's own pool before taking a view so the shared
    disk holds every published page. *)

val key_attr : t -> int option
(** The key attribute index for hash/ISAM organizations. *)

val insert : t -> Tdb_relation.Tuple.t -> Tid.t
val read : t -> Tid.t -> Tdb_relation.Tuple.t
val update : t -> Tid.t -> Tdb_relation.Tuple.t -> unit
val delete : t -> Tid.t -> unit

type access_path =
  | Full_scan
  | Key_lookup of Tdb_relation.Value.t
  | Key_range of {
      lo : Tdb_relation.Value.t option;
      hi : Tdb_relation.Value.t option;
    }
(** The three questions a plan can ask of a stored relation.  Every
    organization answers every question (a heap answers a [Key_lookup]
    with a full scan — it has no key — and the caller filters). *)

val cursor : ?window:Time_fence.window -> t -> access_path -> Cursor.t
(** The unified access-path entry point: a batched cursor over raw
    records.  Batches are page-aligned, so the page I/O and fence-prune
    accounting are identical to the callback iterators below (which are
    these cursors, drained).  Decode records with {!decode}. *)

val decode : t -> bytes -> Tdb_relation.Tuple.t
(** Decodes one raw record yielded by {!cursor}. *)

type par_plan = {
  pp_parts : int;  (** partitions {!partition_access} would build *)
  pp_pages : int;  (** pages a worker would actually read (post-prune) *)
  pp_pruned_pages : int;  (** pages shard pruning would refute outright *)
}
(** What a partitioned execution of an access path would look like —
    the planner's admission evidence, also surfaced by [\explain]. *)

val partition_preview :
  ?window:Time_fence.window -> t -> parts:int -> access_path -> par_plan option
(** Sizes a partitioned execution without performing it: derived entirely
    from in-memory structures (fence tables, mirrored overflow links,
    ISAM page-key bounds), so no page is read and {e nothing} is charged
    to any counter — call it freely before deciding.  [None] when the
    access cannot fan out at all (a keyed hash probe with fencing off:
    its chain cannot even be sized without I/O). *)

val partition_access :
  ?window:Time_fence.window ->
  t ->
  parts:int ->
  access_path ->
  (Cursor.t * Io_stats.t) list option
(** Splits any access path into at most [parts] page-disjoint partitions
    for parallel execution: contiguous ranges of the chain heads the
    access walks (heap pages, hash buckets, ISAM primary pages — each
    owning its overflow chain outright), or, for a keyed hash probe,
    contiguous page runs of the key's single bucket chain.  Probe
    partitions carry the sequential cursor's record filter, and an ISAM
    probe pays its directory descent here, against the relation's own
    stats, exactly as the sequential cursor does at open time.

    With a bounded [?window] (fencing on, pruning on), a head whose
    every page is fence-refuted is dropped before assignment — a time
    shard never handed to any worker — and charged exactly the fence
    checks and page skips the sequential walk would have charged, so
    prune accounting stays bit-identical.

    Each partition reads through a private 1-frame buffer pool counted
    by the returned private stats; the relation's own pool and stats are
    untouched.  Concatenating the partitions in list order yields the
    sequential cursor's rows exactly, and the partitions' summed reads
    (plus fence skips) equal the sequential access's.  Fold the returned
    stats back with {!Io_stats.absorb} after the join.  [None] exactly
    when {!partition_preview} answers [None]. *)

val scan_partitions : ?window:Time_fence.window -> t -> parts:int -> int
(** How many partitions {!partition_scan} would return for [parts]
    requested (bounded by the data area's chain-head count, after shard
    pruning under [?window]), without building them and without charging
    anything.  For planners and [\explain]. *)

val partition_scan :
  ?window:Time_fence.window -> t -> parts:int -> (Cursor.t * Io_stats.t) list
(** [partition_access] at [Full_scan] (which always fans out). *)

val transaction_overlaps :
  t -> (Tdb_time.Period.t -> bytes -> bool) option
(** Tests a record's transaction period against a window straight from
    its encoded bytes — [Tuple.transaction_period] composed with
    [Period.overlaps], exactly, without allocating per record; [None]
    when the schema has no transaction time (then every tuple passes any
    as-of test).  Lets an executor refute a version against an as-of
    window without paying for a full decode.  Partially apply to the
    window outside the record loop. *)

val scan :
  ?window:Time_fence.window -> t -> (Tid.t -> Tdb_relation.Tuple.t -> unit) -> unit
(** Sequential scan (data pages and overflow chains; ISAM directories are
    not read).  With [?window], data pages whose time fence cannot hold a
    record overlapping the window are skipped without being read and
    charged to the prune counters; the surviving tuples and their order
    are exactly those of the unbounded scan that satisfy the window. *)

val lookup :
  ?window:Time_fence.window ->
  t ->
  Tdb_relation.Value.t ->
  (Tid.t -> Tdb_relation.Tuple.t -> unit) ->
  unit
(** Keyed access.  On a heap this degenerates to a filtered sequential scan
    (there is no key).  [?window] fence-skips as in {!scan}. *)

val lookup_range :
  ?window:Time_fence.window ->
  t ->
  ?lo:Tdb_relation.Value.t ->
  ?hi:Tdb_relation.Value.t ->
  (Tid.t -> Tdb_relation.Tuple.t -> unit) ->
  unit
(** Key-ordered access to tuples with key in \[lo, hi\] (inclusive; either
    bound optional).  Reads only the covering data pages on ISAM; on hash
    and heap organizations it degenerates to a filtered sequential scan.
    [?window] fence-skips as in {!scan}. *)

val modify : t -> organization -> unit
(** Reorganizes in place: extracts all records, rebuilds with the new
    organization.  Raises [Invalid_argument] if a key attribute index is out
    of range. *)

val tuple_count : t -> int
(** Counts by scanning. *)

type org_meta =
  | Heap_meta
  | Hash_meta of { key_attr : int; fillfactor : int; buckets : int }
  | Isam_meta of {
      key_attr : int;
      fillfactor : int;
      ndata : int;
      levels : (int * int) list;
    }
(** Everything the catalog must persist to re-open a relation without
    rebuilding it. *)

val org_meta : t -> org_meta

val attach :
  ?frames:int ->
  ?fault:Fault.t ->
  ?recover:bool ->
  backing:[ `Mem | `File of string ] ->
  name:string ->
  schema:Tdb_relation.Schema.t ->
  org_meta ->
  t
(** Re-opens a stored relation from its catalog metadata.  By default
    ([recover] = true) the backing file goes through the disk's recovery
    pass first (torn tails truncated, checksums validated — see
    {!Disk.open_file}); the findings are available via {!recovery}.
    Raises {!Tdb_error.Error} with class [Corruption] if the file is
    damaged beyond repair or too short for the catalog's accounting. *)

val recovery : t -> Disk.recovery option
(** The recovery report from {!attach}, if a pass ran and found work. *)

val set_first_fit : t -> bool -> unit
(** Switches the overflow placement policy of the underlying file (see
    {!Pfile.set_first_fit}); for experimentation. *)

val attr_offset : Tdb_relation.Schema.t -> int -> int
(** Byte offset of attribute [i] within an encoded tuple (exposed for index
    builders). *)

val stamp_extractor :
  Tdb_relation.Schema.t -> (bytes -> Time_fence.stamp) option
(** The fence stamp derived from a schema's implicit time attributes, read
    straight from encoded record bytes; [None] for a static schema (also
    used by the two-level store's history file). *)

val fences_enabled : t -> bool
val fence_sidecar : t -> string option
(** Where the fence summary persists, for file-backed relations. *)

val sync : t -> unit
(** Flushes the pool, fsyncs the backing file, advances the write epoch
    (the per-relation checkpoint), and persists the fence summary sidecar
    so the next open can skip the rebuild scan. *)

val close : t -> unit
(** Flushes, fsyncs and closes the backing disk (persisting the fence
    summary first). *)

val abandon : t -> unit
(** Closes the backing file descriptor {e without} flushing — the
    simulated-crash teardown used by the fault-injection harness. *)
